// Command bench replays the repository benchmark suite (the same bodies
// `go test -bench` runs, hosted in internal/benchsuite) through
// testing.Benchmark and writes a machine-readable JSON baseline, giving
// every PR a recorded perf datum to be judged against:
//
//	go run ./cmd/bench -out BENCH_PR6.json            # full run
//	go run ./cmd/bench -bench 'Fig5|ScaleOut8x'       # subset
//	go run ./cmd/bench -benchtime 1x -out /dev/null   # smoke test
//
// The -check flag turns the run into a regression gate: the fresh
// numbers are compared against a committed baseline JSON and the
// process exits non-zero if the geometric mean of the per-benchmark
// ns/op ratios (current over baseline) exceeds 1 + the -check-threshold
// (default 10%). Benchmarks present on only one side are reported but
// do not gate:
//
//	go run ./cmd/bench -check BENCH_PR4.json -out BENCH_PR6.json
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// benchmark bodies (the CPU profile spans every testing.Benchmark call;
// the heap profile is a snapshot after the last one):
//
//	go run ./cmd/bench -bench Fig5Breakdown -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"
	"time"

	"nmppak/internal/benchsuite"
)

type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// GOMAXPROCS and NumCPU pin the host parallelism every entry was
	// measured under. Host-parallelism-sensitive metrics (the parallel
	// runtime's speedup_vs_serial) are only comparable between records
	// taken on matching core counts, and -check refuses to compare them
	// otherwise.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Extra carries benchmark-reported metrics (testing.B.ReportMetric),
	// e.g. the scale-out benchmarks' comm_frac and model_cycles.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type baseline struct {
	Schema     string   `json:"schema"`
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	BenchTime  string   `json:"benchtime"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_PR6.json", "output JSON path ('-' for stdout only)")
	benchRe := flag.String("bench", ".", "regexp selecting benchmark names")
	benchtime := flag.String("benchtime", "2s", "per-benchmark time budget (Go test -benchtime syntax)")
	check := flag.String("check", "", "baseline JSON `file` to gate against; exit 1 on geomean ns/op regression beyond -check-threshold")
	checkThreshold := flag.Float64("check-threshold", 0.10, "allowed geomean slowdown vs. the -check baseline (0.10 = 10%)")
	list := flag.Bool("list", false, "list benchmark names and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the benchmark runs to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the benchmark runs to `file`")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}

	suite := benchsuite.Suite()
	if *list {
		for _, c := range suite {
			fmt.Println(c.Name)
		}
		return
	}
	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -bench regexp: %v\n", err)
		os.Exit(2)
	}

	base := baseline{
		Schema:     "nmppak-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BenchTime:  *benchtime,
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		// Stopped explicitly after the benchmark loop: the later exit
		// paths use os.Exit, which would skip a deferred flush.
		defer f.Close()
	}
	failed := false
	for _, c := range suite {
		if !re.MatchString(c.Name) {
			continue
		}
		r := testing.Benchmark(c.F)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "bench: %s failed\n", c.Name)
			failed = true
			continue
		}
		rec := record{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
		}
		if r.Bytes > 0 && r.T > 0 {
			rec.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		base.Benchmarks = append(base.Benchmarks, rec)
		fmt.Printf("%-24s %12.0f ns/op %12d B/op %10d allocs/op\n",
			c.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(base.Benchmarks))
	} else {
		os.Stdout.Write(buf)
	}
	if *check != "" {
		if err := checkRegression(*check, base.Benchmarks, *checkThreshold, re); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// compareSpeedup reports the speedup_vs_serial drift for one matched
// benchmark. The metric measures host parallelism, not simulator work,
// so it is only meaningful between runs on identical core counts: the
// comparison is skipped — with a warning naming the mismatch — when the
// baseline record's gomaxprocs/num_cpu differ from the current run's, or
// when a pre-v2 baseline recorded no core counts at all (the baseline
// header's GOMAXPROCS stands in for per-record values when present).
func compareSpeedup(base *baseline, old, cur record) {
	bs, ok1 := old.Extra["speedup_vs_serial"]
	cs, ok2 := cur.Extra["speedup_vs_serial"]
	if !ok1 || !ok2 {
		return
	}
	bProcs, bCPU := old.GOMAXPROCS, old.NumCPU
	if bProcs == 0 {
		bProcs = base.GOMAXPROCS
	}
	if bCPU == 0 {
		bCPU = base.NumCPU
	}
	if bProcs == 0 || bCPU == 0 {
		fmt.Printf("check: %-24s speedup_vs_serial not compared: baseline records no host core counts\n", cur.Name)
		return
	}
	if bProcs != cur.GOMAXPROCS || bCPU != cur.NumCPU {
		fmt.Printf("check: %-24s speedup_vs_serial not compared: baseline host %dP/%dC, current %dP/%dC\n",
			cur.Name, bProcs, bCPU, cur.GOMAXPROCS, cur.NumCPU)
		return
	}
	fmt.Printf("check: %-24s speedup_vs_serial %.2f -> %.2f (same %dP/%dC host)\n",
		cur.Name, bs, cs, cur.GOMAXPROCS, cur.NumCPU)
}

// checkRegression compares the fresh records against the baseline file
// and errors if the geometric mean of the matched ns/op ratios (current
// over baseline) exceeds 1+threshold. Individual outliers are printed
// either way so a localized regression hidden by an overall speedup is
// still visible in the log. Baseline entries outside the -bench
// selection are ignored.
func checkRegression(path string, cur []record, threshold float64, sel *regexp.Regexp) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("check: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("check: parse %s: %v", path, err)
	}
	old := make(map[string]record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		if sel.MatchString(r.Name) {
			old[r.Name] = r
		}
	}
	var logSum float64
	matched := 0
	for _, r := range cur {
		b, ok := old[r.Name]
		if !ok {
			fmt.Printf("check: %-24s new benchmark, not gated\n", r.Name)
			continue
		}
		delete(old, r.Name)
		if b.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		logSum += math.Log(ratio)
		matched++
		if ratio > 1+threshold || ratio < 1/(1+threshold) {
			fmt.Printf("check: %-24s %.2fx vs. baseline (%.0f -> %.0f ns/op)\n",
				r.Name, ratio, b.NsPerOp, r.NsPerOp)
		}
		compareSpeedup(&base, b, r)
	}
	missing := make([]string, 0, len(old))
	for name := range old {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("check: %-24s present only in baseline\n", name)
	}
	if matched == 0 {
		return fmt.Errorf("check: no benchmarks in common with %s", path)
	}
	geomean := math.Exp(logSum / float64(matched))
	fmt.Printf("check: geomean %.3fx vs. %s over %d benchmarks (threshold %.2fx)\n",
		geomean, path, matched, 1+threshold)
	if geomean > 1+threshold {
		return fmt.Errorf("check: geomean regression %.3fx exceeds %.2fx vs. %s",
			geomean, 1+threshold, path)
	}
	return nil
}
