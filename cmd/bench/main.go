// Command bench replays the repository benchmark suite (the same bodies
// `go test -bench` runs, hosted in internal/benchsuite) through
// testing.Benchmark and writes a machine-readable JSON baseline, giving
// every PR a recorded perf datum to be judged against:
//
//	go run ./cmd/bench -out BENCH_PR4.json            # full run
//	go run ./cmd/bench -bench 'Fig5|ScaleOut8x'       # subset
//	go run ./cmd/bench -benchtime 1x -out /dev/null   # smoke test
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"nmppak/internal/benchsuite"
)

type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// Extra carries benchmark-reported metrics (testing.B.ReportMetric),
	// e.g. the scale-out benchmarks' comm_frac and model_cycles.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type baseline struct {
	Schema     string   `json:"schema"`
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	BenchTime  string   `json:"benchtime"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_PR4.json", "output JSON path ('-' for stdout only)")
	benchRe := flag.String("bench", ".", "regexp selecting benchmark names")
	benchtime := flag.String("benchtime", "2s", "per-benchmark time budget (Go test -benchtime syntax)")
	list := flag.Bool("list", false, "list benchmark names and exit")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime %q: %v\n", *benchtime, err)
		os.Exit(2)
	}

	suite := benchsuite.Suite()
	if *list {
		for _, c := range suite {
			fmt.Println(c.Name)
		}
		return
	}
	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -bench regexp: %v\n", err)
		os.Exit(2)
	}

	base := baseline{
		Schema:     "nmppak-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
	}
	failed := false
	for _, c := range suite {
		if !re.MatchString(c.Name) {
			continue
		}
		r := testing.Benchmark(c.F)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "bench: %s failed\n", c.Name)
			failed = true
			continue
		}
		rec := record{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			rec.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		base.Benchmarks = append(base.Benchmarks, rec)
		fmt.Printf("%-24s %12.0f ns/op %12d B/op %10d allocs/op\n",
			c.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(base.Benchmarks))
	} else {
		os.Stdout.Write(buf)
	}
	if failed {
		os.Exit(1)
	}
}
