// Command nmppak assembles short reads (FASTQ) into contigs (FASTA) with
// the PaKman pipeline, optionally simulating the run on the NMP-PaK
// hardware model.
//
// Usage:
//
//	nmppak -in reads.fastq -out contigs.fasta [-k 32] [-min-count 3]
//	       [-batches 1] [-min-contig 200] [-simulate]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nmppak"
	"nmppak/internal/dna"
	"nmppak/internal/fastx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nmppak: ")
	var (
		in        = flag.String("in", "", "input FASTQ file (required)")
		out       = flag.String("out", "contigs.fasta", "output FASTA file")
		k         = flag.Int("k", 32, "k-mer length (2..32)")
		minCount  = flag.Int("min-count", 3, "k-mer pruning threshold")
		batches   = flag.Int("batches", 1, "sequential batches (§4.4 batch processing)")
		minContig = flag.Int("min-contig", 200, "minimum reported contig length")
		simulate  = flag.Bool("simulate", false, "also replay compaction on the NMP hardware model")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := fastx.ReadFastq(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var reads []nmppak.Read
	for _, r := range recs {
		seq, err := dna.ParseSeq(r.Seq)
		if err != nil {
			log.Printf("skipping read %s: %v", r.ID, err)
			continue
		}
		reads = append(reads, nmppak.Read{Seq: seq})
	}
	log.Printf("loaded %d reads", len(reads))

	if *simulate {
		tr, aout, err := nmppak.CaptureTrace(reads, *k, uint32(*minCount), 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nmppak.SimulateNMP(tr, nmppak.DefaultNMPConfig())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("NMP-PaK model: %s", res)
		writeContigs(*out, aout.Contigs, *minContig)
		return
	}

	aout, err := nmppak.Assemble(reads, nmppak.AssemblyConfig{
		K: *k, MinCount: uint32(*minCount), Batches: *batches, MinContigLen: *minContig,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("assembled %d contigs, N50 %d, total %d bp",
		aout.Summary.Contigs, aout.Summary.N50, aout.Summary.TotalBases)
	writeContigs(*out, aout.Contigs, *minContig)
}

func writeContigs(path string, contigs []nmppak.Seq, minLen int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var recs []fastx.Record
	for i, c := range contigs {
		if c.Len() < minLen {
			continue
		}
		recs = append(recs, fastx.Record{ID: fmt.Sprintf("contig_%d len=%d", i, c.Len()), Seq: c.String()})
	}
	if err := fastx.WriteFasta(f, recs, 70); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d contigs to %s", len(recs), path)
}
