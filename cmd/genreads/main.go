// Command genreads synthesizes a reference genome and sequences it into
// FASTQ short reads — the repository's substitute for the ART simulator
// the paper uses (§5.1).
//
// Usage:
//
//	genreads -length 1000000 -coverage 30 -error 0.01 -out reads.fastq
//	         [-genome-out ref.fasta] [-read-len 100] [-gc 0.5]
//	         [-repeat-frac 0] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nmppak"
	"nmppak/internal/fastx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genreads: ")
	var (
		length     = flag.Int("length", 1_000_000, "genome length in bp")
		gc         = flag.Float64("gc", 0.5, "GC content")
		repeatFrac = flag.Float64("repeat-frac", 0, "repeat fraction [0,1)")
		replicons  = flag.Int("replicons", 1, "number of replicons")
		readLen    = flag.Int("read-len", 100, "read length (paper: 100)")
		coverage   = flag.Float64("coverage", 30, "mean coverage (paper: 100)")
		errRate    = flag.Float64("error", 0.01, "substitution error rate")
		seed       = flag.Int64("seed", 42, "PRNG seed")
		out        = flag.String("out", "reads.fastq", "output FASTQ")
		genomeOut  = flag.String("genome-out", "", "also write the reference FASTA")
	)
	flag.Parse()

	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{
		Length: *length, GC: *gc, RepeatFraction: *repeatFrac, Replicons: *replicons, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: *readLen, Coverage: *coverage, ErrorRate: *errRate, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	recs := make([]fastx.Record, len(reads))
	for i, r := range reads {
		recs[i] = fastx.Record{
			ID:   fmt.Sprintf("read_%d pos=%d:%d", i, r.Replicon, r.Pos),
			Seq:  r.Seq.String(),
			Qual: string(r.Qual),
		}
	}
	if err := fastx.WriteFastq(f, recs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d reads (%d bp genome at %.0fx) to %s", len(reads), g.TotalLength(), *coverage, *out)

	if *genomeOut != "" {
		gf, err := os.Create(*genomeOut)
		if err != nil {
			log.Fatal(err)
		}
		defer gf.Close()
		var grecs []fastx.Record
		for i, r := range g.Replicons {
			grecs = append(grecs, fastx.Record{ID: g.Names[i], Seq: r.String()})
		}
		if err := fastx.WriteFasta(gf, grecs, 70); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote reference to %s", *genomeOut)
	}
}
