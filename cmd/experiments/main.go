// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-scale N] <id>|all
//	experiments [-quick] [-scale N] -scaling
//
// where <id> is one of: fig5 fig6 fig7 fig8 fig12 fig13 fig14 fig15
// table1 table3 comm super hybrid footprint gpucap swopt ablation
// scaling. The -scaling flag is shorthand for the scaling study: the
// multi-node scale-out strong/weak-scaling report, including the
// overlapped-halo-exchange-vs-BSP comparison and the partitioner sweep
// (hash / minimizer / weight-aware balanced) on a repeat-heavy workload.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nmppak/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		quick   = flag.Bool("quick", false, "use the small test workload")
		scale   = flag.Int("scale", 0, "override genome length (bp)")
		scaling = flag.Bool("scaling", false, "run the multi-node scale-out scaling study (BSP vs. overlap, partitioner sweep)")
	)
	flag.Parse()
	if (flag.NArg() != 1 && !*scaling) || (flag.NArg() > 0 && *scaling) {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] [-scale N] <fig5|fig6|fig7|fig8|fig12|fig13|fig14|fig15|table1|table3|comm|super|hybrid|footprint|gpucap|swopt|ablation|scaling|all>")
		fmt.Fprintln(os.Stderr, "       experiments [-quick] [-scale N] -scaling")
		os.Exit(2)
	}
	w := experiments.DefaultWorkload()
	if *quick {
		w = experiments.QuickWorkload()
	}
	if *scale > 0 {
		w.GenomeLen = *scale
	}
	ctx, err := experiments.NewContext(w)
	if err != nil {
		log.Fatal(err)
	}

	var runs *experiments.SystemRuns
	needRuns := func() *experiments.SystemRuns {
		if runs == nil {
			log.Printf("simulating all system configurations...")
			r, err := experiments.RunSystems(ctx)
			if err != nil {
				log.Fatal(err)
			}
			runs = r
		}
		return runs
	}

	drivers := map[string]func() (*experiments.Report, error){
		"fig5":      func() (*experiments.Report, error) { return experiments.Fig5(ctx) },
		"fig6":      func() (*experiments.Report, error) { return experiments.Fig6(ctx) },
		"fig7":      func() (*experiments.Report, error) { return experiments.Fig7(ctx) },
		"fig8":      func() (*experiments.Report, error) { return experiments.Fig8(ctx) },
		"fig12":     func() (*experiments.Report, error) { return experiments.Fig12(ctx, needRuns()) },
		"fig13":     func() (*experiments.Report, error) { return experiments.Fig13(ctx, needRuns()) },
		"fig14":     func() (*experiments.Report, error) { return experiments.Fig14(ctx, needRuns()) },
		"fig15":     func() (*experiments.Report, error) { return experiments.Fig15(ctx) },
		"table1":    func() (*experiments.Report, error) { return experiments.Table1(ctx) },
		"table3":    func() (*experiments.Report, error) { return experiments.Table3(ctx) },
		"comm":      func() (*experiments.Report, error) { return experiments.Comm(ctx) },
		"super":     func() (*experiments.Report, error) { return experiments.Super(ctx, needRuns()) },
		"hybrid":    func() (*experiments.Report, error) { return experiments.HybridReport(ctx) },
		"footprint": func() (*experiments.Report, error) { return experiments.Footprint(ctx) },
		"gpucap":    func() (*experiments.Report, error) { return experiments.GPUCap(ctx) },
		"swopt":     func() (*experiments.Report, error) { return experiments.SWOpt(ctx) },
		"ablation":  func() (*experiments.Report, error) { return experiments.Ablation(ctx) },
		"scaling":   func() (*experiments.Report, error) { return experiments.Scaling(ctx) },
	}
	order := []string{"fig5", "fig6", "fig7", "fig8", "table1", "fig12", "fig13", "fig14",
		"fig15", "comm", "super", "table3", "hybrid", "footprint", "gpucap", "swopt", "ablation",
		"scaling"}

	id := flag.Arg(0)
	if *scaling {
		id = "scaling"
	}
	if id == "all" {
		for _, name := range order {
			r, err := drivers[name]()
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Println(r.String())
		}
		return
	}
	d, ok := drivers[id]
	if !ok {
		log.Fatalf("unknown experiment %q", id)
	}
	r, err := d()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.String())
}
