// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-scale N] <id>|all
//	experiments [-quick] [-scale N] -scaling
//	experiments [-quick] [-scale N] -faults
//	experiments [-quick] [-scale N] -tenancy
//	experiments [-quick] [-scale N] -checkpoint <file>
//	experiments [-quick] [-scale N] -restore <file>
//	experiments [-quick] [-scale N] -timeline <out.json> [-inject]
//
// where <id> is one of: fig5 fig6 fig7 fig8 fig12 fig13 fig14 fig15
// table1 table3 comm super hybrid footprint gpucap swopt ablation
// scaling faults tenancy. The -scaling flag is shorthand for the scaling study:
// the multi-node scale-out strong/weak-scaling report, including the
// overlapped-halo-exchange-vs-BSP comparison and the partitioner sweep
// (hash / minimizer / weight-aware balanced) on a repeat-heavy workload.
// The -faults flag is shorthand for the fault-injection study: a
// mid-phase node loss replayed under increasing periodic-checkpoint
// cadences, reporting the recovery overhead (discarded work, detection
// and restore stalls, re-partitioned shard bytes) of each.
// The -tenancy flag runs the multi-tenant fleet study: an 8-node fleet
// time-shares a stream of assembly jobs under checkpoint-based
// preemption, sweeping arrival rate against uniform and skewed job-size
// mixes (p50/p95 latency, throughput, preemption counts, utilization,
// saturation knee) and comparing the FIFO, strict-priority and
// fair-share policies at the knee.
// The -checkpoint/-restore pair demonstrates checkpoint/restore of the
// distributed runtime: -checkpoint pauses the scale-out run mid-compaction
// and writes the versioned state blob to the file (atomically — temp file
// plus rename, so an interrupted save never leaves a truncated blob);
// -restore (same workload flags) resumes it to completion and verifies
// the result bit for bit against the uninterrupted run. The -timeline
// flag captures an 8-node torus overlapped run with telemetry enabled,
// writes the Chrome-trace JSON (open in Perfetto) to the file, and prints
// the utilization table and critical-path report; adding -inject kills a
// node mid-phase under checkpoint cadence 2, putting the elastic
// recovery — fault instant, detection, restore, re-partitioning, capture
// barriers — on the same trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nmppak/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		quick      = flag.Bool("quick", false, "use the small test workload")
		scale      = flag.Int("scale", 0, "override genome length (bp)")
		scaling    = flag.Bool("scaling", false, "run the multi-node scale-out scaling study (BSP vs. overlap, partitioner sweep)")
		faults     = flag.Bool("faults", false, "run the fault-injection study (recovery overhead vs. checkpoint cadence under a node loss)")
		tenancy    = flag.Bool("tenancy", false, "run the multi-tenant fleet study (load sweep + policy comparison under checkpoint-preemptive scheduling)")
		checkpoint = flag.String("checkpoint", "", "pause the scale-out run mid-compaction and write the checkpoint blob to this `file` (atomic temp-file + rename)")
		restore    = flag.String("restore", "", "resume the scale-out run from this checkpoint `file` and verify against the uninterrupted run")
		timeline   = flag.String("timeline", "", "capture an instrumented 8-node torus overlapped run and write the Chrome-trace JSON to this `file`")
		inject     = flag.Bool("inject", false, "with -timeline: kill a node mid-phase (checkpoint cadence 2) so the trace shows the elastic recovery")
		workers    = flag.Int("workers", 0, "host worker goroutines for the parallel simulation runtimes in every mode (0 = one per core, 1 = serial; results are identical either way)")
	)
	flag.Parse()
	modes := 0
	for _, on := range []bool{*scaling, *faults, *tenancy, *checkpoint != "", *restore != "", *timeline != ""} {
		if on {
			modes++
		}
	}
	if (flag.NArg() != 1 && modes == 0) || (flag.NArg() > 0 && modes > 0) || modes > 1 ||
		(*inject && *timeline == "") {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] [-scale N] <fig5|fig6|fig7|fig8|fig12|fig13|fig14|fig15|table1|table3|comm|super|hybrid|footprint|gpucap|swopt|ablation|scaling|faults|tenancy|all>")
		fmt.Fprintln(os.Stderr, "       experiments [-quick] [-scale N] -scaling")
		fmt.Fprintln(os.Stderr, "       experiments [-quick] [-scale N] -faults")
		fmt.Fprintln(os.Stderr, "       experiments [-quick] [-scale N] -tenancy")
		fmt.Fprintln(os.Stderr, "       experiments [-quick] [-scale N] -checkpoint <file>")
		fmt.Fprintln(os.Stderr, "       experiments [-quick] [-scale N] -restore <file>")
		fmt.Fprintln(os.Stderr, "       experiments [-quick] [-scale N] -timeline <out.json> [-inject]")
		os.Exit(2)
	}
	w := experiments.DefaultWorkload()
	if *quick {
		w = experiments.QuickWorkload()
	}
	if *scale > 0 {
		w.GenomeLen = *scale
	}
	if *workers != 0 {
		w.Workers = *workers
	}
	ctx, err := experiments.NewContext(w)
	if err != nil {
		log.Fatal(err)
	}

	if *checkpoint != "" || *restore != "" {
		if err := runCheckpointMode(ctx, *checkpoint, *restore); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *timeline != "" {
		if err := runTimelineMode(ctx, *timeline, *inject); err != nil {
			log.Fatal(err)
		}
		return
	}

	var runs *experiments.SystemRuns
	needRuns := func() *experiments.SystemRuns {
		if runs == nil {
			log.Printf("simulating all system configurations...")
			r, err := experiments.RunSystems(ctx)
			if err != nil {
				log.Fatal(err)
			}
			runs = r
		}
		return runs
	}

	drivers := map[string]func() (*experiments.Report, error){
		"fig5":      func() (*experiments.Report, error) { return experiments.Fig5(ctx) },
		"fig6":      func() (*experiments.Report, error) { return experiments.Fig6(ctx) },
		"fig7":      func() (*experiments.Report, error) { return experiments.Fig7(ctx) },
		"fig8":      func() (*experiments.Report, error) { return experiments.Fig8(ctx) },
		"fig12":     func() (*experiments.Report, error) { return experiments.Fig12(ctx, needRuns()) },
		"fig13":     func() (*experiments.Report, error) { return experiments.Fig13(ctx, needRuns()) },
		"fig14":     func() (*experiments.Report, error) { return experiments.Fig14(ctx, needRuns()) },
		"fig15":     func() (*experiments.Report, error) { return experiments.Fig15(ctx) },
		"table1":    func() (*experiments.Report, error) { return experiments.Table1(ctx) },
		"table3":    func() (*experiments.Report, error) { return experiments.Table3(ctx) },
		"comm":      func() (*experiments.Report, error) { return experiments.Comm(ctx) },
		"super":     func() (*experiments.Report, error) { return experiments.Super(ctx, needRuns()) },
		"hybrid":    func() (*experiments.Report, error) { return experiments.HybridReport(ctx) },
		"footprint": func() (*experiments.Report, error) { return experiments.Footprint(ctx) },
		"gpucap":    func() (*experiments.Report, error) { return experiments.GPUCap(ctx) },
		"swopt":     func() (*experiments.Report, error) { return experiments.SWOpt(ctx) },
		"ablation":  func() (*experiments.Report, error) { return experiments.Ablation(ctx) },
		"scaling":   func() (*experiments.Report, error) { return experiments.Scaling(ctx) },
		"faults":    func() (*experiments.Report, error) { return experiments.Faults(ctx) },
		"tenancy":   func() (*experiments.Report, error) { return experiments.Tenancy(ctx) },
	}
	order := []string{"fig5", "fig6", "fig7", "fig8", "table1", "fig12", "fig13", "fig14",
		"fig15", "comm", "super", "table3", "hybrid", "footprint", "gpucap", "swopt", "ablation",
		"scaling", "faults", "tenancy"}

	id := flag.Arg(0)
	if *scaling {
		id = "scaling"
	}
	if *faults {
		id = "faults"
	}
	if *tenancy {
		id = "tenancy"
	}
	if id == "all" {
		for _, name := range order {
			r, err := drivers[name]()
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Println(r.String())
		}
		return
	}
	d, ok := drivers[id]
	if !ok {
		log.Fatalf("unknown experiment %q", id)
	}
	r, err := d()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.String())
}

// runTimelineMode captures an instrumented run — optionally with an
// injected node loss — and writes the Chrome-trace JSON to the given file.
func runTimelineMode(ctx *experiments.Context, out string, inject bool) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	capture := experiments.Timeline
	if inject {
		capture = experiments.FaultTimeline
	}
	rep, err := capture(ctx, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	fmt.Printf("timeline written to %s\n", out)
	return nil
}

// runCheckpointMode writes or consumes a checkpoint blob file. The save
// side hands the path straight to CheckpointSave, which publishes the
// blob atomically (temp file + rename).
func runCheckpointMode(ctx *experiments.Context, checkpointTo, restoreFrom string) error {
	if checkpointTo != "" {
		rep, err := experiments.CheckpointSave(ctx, checkpointTo)
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
		return nil
	}
	f, err := os.Open(restoreFrom)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := experiments.RestoreLoad(ctx, f)
	if rep != nil {
		fmt.Println(rep.String())
	}
	return err
}
