// Benchmarks regenerating each table and figure of the paper's evaluation
// on the quick workload (one benchmark per artifact; see DESIGN.md §3 for
// the experiment index and cmd/experiments for full-scale runs). The
// bodies live in internal/benchsuite so cmd/bench can replay the exact
// same code when regenerating the BENCH_*.json regression baseline.
package nmppak_test

import (
	"testing"

	"nmppak/internal/benchsuite"
)

// BenchmarkFig5Breakdown measures the end-to-end software pipeline whose
// stage split is Fig. 5.
func BenchmarkFig5Breakdown(b *testing.B) { benchsuite.Run(b, "Fig5Breakdown") }

// BenchmarkFig6StallModel measures the CPU stall-attribution model run.
func BenchmarkFig6StallModel(b *testing.B) { benchsuite.Run(b, "Fig6StallModel") }

// BenchmarkFig7SizeDistribution measures the instrumented-compaction size
// histogram extraction (Figs. 7 and 8 share the trace).
func BenchmarkFig7SizeDistribution(b *testing.B) { benchsuite.Run(b, "Fig7SizeDistribution") }

// BenchmarkFig8OversizeProportion measures the per-iteration threshold
// scan of Fig. 8.
func BenchmarkFig8OversizeProportion(b *testing.B) { benchsuite.Run(b, "Fig8OversizeProportion") }

// BenchmarkTable1BatchSweep measures one batched assembly (the Table 1
// sweep's 10%-batch point).
func BenchmarkTable1BatchSweep(b *testing.B) { benchsuite.Run(b, "Table1BatchSweep") }

// BenchmarkFig12NMP measures the NMP-PaK hardware simulation (the headline
// Fig. 12 bar).
func BenchmarkFig12NMP(b *testing.B) { benchsuite.Run(b, "Fig12NMP") }

// BenchmarkFig12GPU measures the GPU baseline model (Fig. 12/§6.6).
func BenchmarkFig12GPU(b *testing.B) { benchsuite.Run(b, "Fig12GPU") }

// BenchmarkFig13Utilization exercises the utilization accounting path
// (Fig. 13 derives from the same runs as Fig. 12).
func BenchmarkFig13Utilization(b *testing.B) { benchsuite.Run(b, "Fig13Utilization") }

// BenchmarkFig14Traffic measures the logical flow-traffic accounting of
// Fig. 14 over the trace.
func BenchmarkFig14Traffic(b *testing.B) { benchsuite.Run(b, "Fig14Traffic") }

// BenchmarkFig15PESweep measures one point of the PE/channel sensitivity
// sweep (16 PEs).
func BenchmarkFig15PESweep(b *testing.B) { benchsuite.Run(b, "Fig15PESweep") }

// BenchmarkTable3AreaPower measures the area/power model (Table 3).
func BenchmarkTable3AreaPower(b *testing.B) { benchsuite.Run(b, "Table3AreaPower") }

// BenchmarkCommSplit measures the §6.3 communication-split simulation.
func BenchmarkCommSplit(b *testing.B) { benchsuite.Run(b, "CommSplit") }

// BenchmarkFootprint measures the §3.5/§4.4 footprint accounting.
func BenchmarkFootprint(b *testing.B) { benchsuite.Run(b, "Footprint") }

// BenchmarkAblationStaticMapping measures the static-DIMM-mapping ablation
// configuration (the per-iteration remap's counterfactual).
func BenchmarkAblationStaticMapping(b *testing.B) { benchsuite.Run(b, "AblationStaticMapping") }

// BenchmarkAblationNoHybrid measures NMP-PaK with CPU offload disabled.
func BenchmarkAblationNoHybrid(b *testing.B) { benchsuite.Run(b, "AblationNoHybrid") }

// BenchmarkKmerCount measures one optimized counting pass over the quick
// workload's reads (the §4.5 software path in isolation).
func BenchmarkKmerCount(b *testing.B) { benchsuite.Run(b, "KmerCount") }

// BenchmarkScaleOut8xBSP measures the 8-node distributed pipeline with
// BSP supersteps (compute, exchange, barrier every iteration).
func BenchmarkScaleOut8xBSP(b *testing.B) { benchsuite.Run(b, "ScaleOut8xBSP") }

// BenchmarkScaleOut8xOverlap measures the same machine under the
// overlapped halo-exchange runtime.
func BenchmarkScaleOut8xOverlap(b *testing.B) { benchsuite.Run(b, "ScaleOut8xOverlap") }

// BenchmarkScaleOut8xTorus measures the BSP machine on a routed 4x2
// torus instead of the idealized full mesh (comm_frac shows the cost of
// dimension-order routing and shared channels).
func BenchmarkScaleOut8xTorus(b *testing.B) { benchsuite.Run(b, "ScaleOut8xTorus") }

// BenchmarkScaleOut8xDragonfly measures the BSP machine on a dragonfly
// (all-to-all groups, per-group-pair global channels).
func BenchmarkScaleOut8xDragonfly(b *testing.B) { benchsuite.Run(b, "ScaleOut8xDragonfly") }

// BenchmarkScaleOut64xMeshParallel measures the 64-node overlapped
// machine under the conservative-PDES parallel runtime on a full mesh,
// reporting speedup_vs_serial against a Workers=1 anchor run off the
// clock (and failing unless both produce identical results).
func BenchmarkScaleOut64xMeshParallel(b *testing.B) { benchsuite.Run(b, "ScaleOut64xMeshParallel") }

// BenchmarkScaleOut64xTorusParallel is the parallel-runtime bench on the
// routed 8x8 torus.
func BenchmarkScaleOut64xTorusParallel(b *testing.B) { benchsuite.Run(b, "ScaleOut64xTorusParallel") }

// BenchmarkScaleOut64xDragonflyParallel is the parallel-runtime bench on
// the dragonfly.
func BenchmarkScaleOut64xDragonflyParallel(b *testing.B) {
	benchsuite.Run(b, "ScaleOut64xDragonflyParallel")
}

// BenchmarkScaleOut64xBSPParallel measures the windowed chunked
// superstep driver on the 64-node BSP machine (same speedup_vs_serial
// contract as the overlapped parallel benches, plus a Workers ∈ {2, 4}
// sweep off the clock).
func BenchmarkScaleOut64xBSPParallel(b *testing.B) { benchsuite.Run(b, "ScaleOut64xBSPParallel") }

// BenchmarkScaleOut64xRebalanceParallel measures the rebalancing runtime
// under the parallel scheduler, with migrations bounding every window.
func BenchmarkScaleOut64xRebalanceParallel(b *testing.B) {
	benchsuite.Run(b, "ScaleOut64xRebalanceParallel")
}

// BenchmarkScaleOut64xElasticParallel measures the elastic overlapped
// runtime — periodic captures plus a mid-phase node loss and recovery —
// under the parallel scheduler.
func BenchmarkScaleOut64xElasticParallel(b *testing.B) {
	benchsuite.Run(b, "ScaleOut64xElasticParallel")
}

// BenchmarkTenancyFleet measures one multi-tenant fleet simulation: six
// mixed-width jobs time-sharing an 8-node fleet under fair-share
// checkpoint preemption (seed blobs built off the clock).
func BenchmarkTenancyFleet(b *testing.B) { benchsuite.Run(b, "TenancyFleet") }
