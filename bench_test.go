// Benchmarks regenerating each table and figure of the paper's evaluation
// on the quick workload (one benchmark per artifact; see DESIGN.md §3 for
// the experiment index and cmd/experiments for full-scale runs).
package nmppak_test

import (
	"sync"
	"testing"

	"nmppak/internal/cpumodel"
	"nmppak/internal/experiments"
	"nmppak/internal/gpumodel"
	"nmppak/internal/nmp"
	"nmppak/internal/trace"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchTr   *trace.Trace
)

func setup(b *testing.B) (*experiments.Context, *trace.Trace) {
	b.Helper()
	benchOnce.Do(func() {
		c, err := experiments.NewContext(experiments.QuickWorkload())
		if err != nil {
			b.Fatal(err)
		}
		tr, err := c.Trace()
		if err != nil {
			b.Fatal(err)
		}
		benchCtx, benchTr = c, tr
	})
	return benchCtx, benchTr
}

// BenchmarkFig5Breakdown measures the end-to-end software pipeline whose
// stage split is Fig. 5.
func BenchmarkFig5Breakdown(b *testing.B) {
	c, _ := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6StallModel measures the CPU stall-attribution model run.
func BenchmarkFig6StallModel(b *testing.B) {
	_, tr := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpumodel.Simulate(tr, cpumodel.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7SizeDistribution measures the instrumented-compaction size
// histogram extraction (Figs. 7 and 8 share the trace).
func BenchmarkFig7SizeDistribution(b *testing.B) {
	c, _ := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8OversizeProportion measures the per-iteration threshold
// scan of Fig. 8.
func BenchmarkFig8OversizeProportion(b *testing.B) {
	c, _ := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1BatchSweep measures one batched assembly (the Table 1
// sweep's 10%-batch point).
func BenchmarkTable1BatchSweep(b *testing.B) {
	c, _ := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Assemble(10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12NMP measures the NMP-PaK hardware simulation (the headline
// Fig. 12 bar).
func BenchmarkFig12NMP(b *testing.B) {
	_, tr := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmp.Simulate(tr, nmp.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12GPU measures the GPU baseline model (Fig. 12/§6.6).
func BenchmarkFig12GPU(b *testing.B) {
	_, tr := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpumodel.Simulate(tr, gpumodel.A100_40GB()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13Utilization exercises the utilization accounting path
// (Fig. 13 derives from the same runs as Fig. 12).
func BenchmarkFig13Utilization(b *testing.B) {
	_, tr := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nmp.Simulate(tr, nmp.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Utilization <= 0 {
			b.Fatal("no utilization")
		}
	}
}

// BenchmarkFig14Traffic measures the logical flow-traffic accounting of
// Fig. 14 over the trace.
func BenchmarkFig14Traffic(b *testing.B) {
	c, tr := setup(b)
	_ = tr
	runs := &experiments.SystemRuns{}
	var err error
	runs.CPUBaseline, err = cpumodel.Simulate(benchTr, cpumodel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(c, runs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15PESweep measures one point of the PE/channel sensitivity
// sweep (16 PEs).
func BenchmarkFig15PESweep(b *testing.B) {
	_, tr := setup(b)
	cfg := nmp.DefaultConfig()
	cfg.PEsPerChannel = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmp.Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3AreaPower measures the area/power model (Table 3).
func BenchmarkTable3AreaPower(b *testing.B) {
	c, _ := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommSplit measures the §6.3 communication-split simulation.
func BenchmarkCommSplit(b *testing.B) {
	_, tr := setup(b)
	cfg := nmp.DefaultConfig()
	cfg.PEsPerChannel = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nmp.Simulate(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TNInterDIMM == 0 {
			b.Fatal("no routing")
		}
	}
}

// BenchmarkFootprint measures the §3.5/§4.4 footprint accounting.
func BenchmarkFootprint(b *testing.B) {
	c, _ := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Footprint(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStaticMapping measures the static-DIMM-mapping ablation
// configuration (the per-iteration remap's counterfactual).
func BenchmarkAblationStaticMapping(b *testing.B) {
	_, tr := setup(b)
	cfg := nmp.DefaultConfig()
	cfg.StaticMapping = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmp.Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoHybrid measures NMP-PaK with CPU offload disabled.
func BenchmarkAblationNoHybrid(b *testing.B) {
	_, tr := setup(b)
	cfg := nmp.DefaultConfig()
	cfg.HybridThresholdBytes = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmp.Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
