// Scale-out: capture one compaction trace, then replay it on 1-8 virtual
// NMP-PaK nodes joined by a 25 GB/s mesh — distributed k-mer counting,
// distributed MacroNode construction, and lockstep Iterative Compaction
// with halo exchange — and print the strong-scaling curve.
package main

import (
	"fmt"
	"log"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 200_000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 30, ErrorRate: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genome %d bp, %d reads, %d compaction iterations\n\n",
		g.TotalLength(), len(reads), len(tr.Iterations))

	var base, res *nmppak.ScaleOutResult
	fmt.Println("nodes  total ms  speedup  efficiency  comm    remote TNs  imbalance")
	for _, n := range []int{1, 2, 4, 8} {
		cfg := nmppak.DefaultScaleOutConfig(n)
		res, err = nmppak.SimulateScaleOut(reads, tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%5d  %8.3f  %6.2fx  %9.1f%%  %5.1f%%  %9.1f%%  %9.2f\n",
			n, res.Seconds*1e3, res.Speedup(base), res.Efficiency(base)*100,
			res.CommFraction*100, res.RemoteTNFrac*100, res.Imbalance)
	}
	fmt.Printf("\nphases at %d nodes (cycles):\n", res.Nodes)
	fmt.Printf("  count      compute %10d  exchange %8d  barrier %6d\n",
		res.Count.Compute, res.Count.Exchange, res.Count.Barrier)
	fmt.Printf("  construct  compute %10d  exchange %8d  barrier %6d\n",
		res.Construct.Compute, res.Construct.Exchange, res.Construct.Barrier)
	fmt.Printf("  compact    compute %10d  exchange %8d  barrier %6d\n",
		res.Compact.Compute, res.Compact.Exchange, res.Compact.Barrier)
}
