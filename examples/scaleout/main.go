// Scale-out: capture one compaction trace, then replay it on 1-8 virtual
// NMP-PaK nodes joined by a 25 GB/s mesh — distributed k-mer counting,
// distributed MacroNode construction, and distributed Iterative
// Compaction with halo exchange. Prints the strong-scaling curve under
// both replay disciplines (BSP supersteps vs. overlapped halo exchange)
// and a partitioner comparison (hash / minimizer / weight-aware balanced)
// at the largest machine.
package main

import (
	"fmt"
	"log"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{
		Length: 200_000, Seed: 1,
		RepeatFraction: 0.3, RepeatUnit: 200, // some skew so partitioning matters
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 30, ErrorRate: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genome %d bp, %d reads, %d compaction iterations\n\n",
		g.TotalLength(), len(reads), len(tr.Iterations))

	var base, res *nmppak.ScaleOutResult
	fmt.Println("nodes  mode     total ms  speedup  efficiency  comm    remote TNs  imbalance")
	for _, n := range []int{1, 2, 4, 8} {
		for _, overlap := range []bool{false, true} {
			cfg := nmppak.DefaultScaleOutConfig(n)
			cfg.Overlap = overlap
			res, err = nmppak.SimulateScaleOut(reads, tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if base == nil {
				base = res
			}
			mode := "bsp"
			if overlap {
				mode = "overlap"
			}
			fmt.Printf("%5d  %-7s  %8.3f  %6.2fx  %9.1f%%  %5.1f%%  %9.1f%%  %9.2f\n",
				n, mode, res.Seconds*1e3, res.Speedup(base), res.Efficiency(base)*100,
				res.CommFraction*100, res.RemoteTNFrac*100, res.Imbalance)
		}
	}
	fmt.Printf("\nphases at %d nodes, overlapped (cycles):\n", res.Nodes)
	fmt.Printf("  count      compute %10d  exchange %8d  barrier %6d\n",
		res.Count.Compute, res.Count.Exchange, res.Count.Barrier)
	fmt.Printf("  construct  compute %10d  exchange %8d  barrier %6d\n",
		res.Construct.Compute, res.Construct.Exchange, res.Construct.Barrier)
	fmt.Printf("  compact    compute %10d  exposed  %8d  barrier %6d\n",
		res.Compact.Compute, res.Compact.Exchange, res.Compact.Barrier)

	// Partitioner comparison at 8 nodes: the balanced partitioner bins
	// minimizer super-buckets by the k-mer mass observed in a counting
	// pass, recovering the minimizer scheme's locality without its load
	// imbalance.
	kres, err := nmppak.CountKmers(reads, 32, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npartitioner    total ms  comm    remote TNs  imbalance")
	for _, p := range []nmppak.Partitioner{
		nmppak.HashPartitioner{},
		nmppak.NewMinimizerPartitioner(12),
		nmppak.NewBalancedPartitioner(kres, 12, 8),
	} {
		cfg := nmppak.DefaultScaleOutConfig(8)
		cfg.Overlap = true
		cfg.Partitioner = p
		r, err := nmppak.SimulateScaleOut(reads, tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %8.3f  %5.1f%%  %9.1f%%  %9.2f\n",
			p.Name(), r.Seconds*1e3, r.CommFraction*100, r.RemoteTNFrac*100, r.Imbalance)
	}
}
