// Scale-out: capture one compaction trace, then replay it on 1-8 virtual
// NMP-PaK nodes joined by a 25 GB/s interconnect — distributed k-mer
// counting, distributed MacroNode construction, and distributed Iterative
// Compaction with halo exchange. Prints the strong-scaling curve under
// both replay disciplines (BSP supersteps vs. overlapped halo exchange),
// a topology comparison (idealized full mesh vs. routed torus and
// dragonfly), and a partitioner comparison (hash / minimizer /
// weight-aware balanced / measurement-driven rebalancing) at the largest
// machine.
package main

import (
	"fmt"
	"log"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{
		Length: 200_000, Seed: 1,
		RepeatFraction: 0.3, RepeatUnit: 200, // some skew so partitioning matters
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 30, ErrorRate: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genome %d bp, %d reads, %d compaction iterations\n\n",
		g.TotalLength(), len(reads), len(tr.Iterations))

	var base, res *nmppak.ScaleOutResult
	fmt.Println("nodes  mode     total ms  speedup  efficiency  comm    remote TNs  imbalance")
	for _, n := range []int{1, 2, 4, 8} {
		for _, overlap := range []bool{false, true} {
			cfg := nmppak.DefaultScaleOutConfig(n)
			cfg.Overlap = overlap
			res, err = nmppak.SimulateScaleOut(reads, tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if base == nil {
				base = res
			}
			mode := "bsp"
			if overlap {
				mode = "overlap"
			}
			fmt.Printf("%5d  %-7s  %8.3f  %6.2fx  %9.1f%%  %5.1f%%  %9.1f%%  %9.2f\n",
				n, mode, res.Seconds*1e3, res.Speedup(base), res.Efficiency(base)*100,
				res.CommFraction*100, res.RemoteTNFrac*100, res.Imbalance)
		}
	}
	fmt.Printf("\nphases at %d nodes, overlapped (cycles):\n", res.Nodes)
	fmt.Printf("  count      compute %10d  exchange %8d  barrier %6d\n",
		res.Count.Compute, res.Count.Exchange, res.Count.Barrier)
	fmt.Printf("  construct  compute %10d  exchange %8d  barrier %6d\n",
		res.Construct.Compute, res.Construct.Exchange, res.Construct.Barrier)
	fmt.Printf("  compact    compute %10d  exposed  %8d  barrier %6d\n",
		res.Compact.Compute, res.Compact.Exchange, res.Compact.Barrier)

	// Topology comparison at 8 nodes: the same shards and traffic routed
	// through a full mesh of dedicated wires, a 2D torus (dimension-order
	// routing, shared channels) and a dragonfly (per-group-pair global
	// channels). Routed contention turns the idealized mesh numbers into
	// the honest ones.
	fmt.Println("\ntopology       mode     total ms  comm    speedup vs mesh")
	var meshTotal float64
	for _, tc := range []nmppak.TopoConfig{
		nmppak.DefaultTopo(),
		nmppak.TorusTopo(0, 0),
		nmppak.DragonflyTopo(0),
	} {
		for _, overlap := range []bool{false, true} {
			cfg := nmppak.DefaultScaleOutConfig(8)
			cfg.Topo = tc
			cfg.Overlap = overlap
			r, err := nmppak.SimulateScaleOut(reads, tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if meshTotal == 0 {
				meshTotal = float64(r.TotalCycles)
			}
			mode := "bsp"
			if overlap {
				mode = "overlap"
			}
			fmt.Printf("%-13s  %-7s  %8.3f  %5.1f%%  %14.2fx\n",
				r.Topology, mode, r.Seconds*1e3, r.CommFraction*100,
				meshTotal/float64(r.TotalCycles))
		}
	}

	// Partitioner comparison at 8 nodes: the balanced partitioner bins
	// minimizer super-buckets by the k-mer mass observed in a counting
	// pass; the rebalancer starts from a plain minimizer-bucket split and
	// migrates buckets off measured stragglers between iterations (BSP).
	kres, err := nmppak.CountKmers(reads, 32, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npartitioner    total ms  comm    remote TNs  imbalance")
	var static, rebalanced *nmppak.ScaleOutResult
	for _, p := range []nmppak.Partitioner{
		nmppak.HashPartitioner{},
		nmppak.NewMinimizerPartitioner(12),
		nmppak.NewBalancedPartitioner(kres, 12, 8),
		nmppak.NewRebalancePartitioner(12, 1),
	} {
		cfg := nmppak.DefaultScaleOutConfig(8)
		cfg.Partitioner = p
		r, err := nmppak.SimulateScaleOut(reads, tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		switch p.(type) {
		case nmppak.MinimizerPartitioner:
			static = r
		case *nmppak.RebalancePartitioner:
			rebalanced = r
		}
		fmt.Printf("%-13s  %8.3f  %5.1f%%  %9.1f%%  %9.2f\n",
			p.Name(), r.Seconds*1e3, r.CommFraction*100, r.RemoteTNFrac*100, r.Imbalance)
	}
	fmt.Printf("\nrebalancing: imbalance %.3f (static minimizer buckets) -> %.3f after %d migrations moving %.2f MB\n",
		static.Imbalance, rebalanced.Imbalance, rebalanced.Rebalances,
		float64(rebalanced.MigratedBytes)/1e6)
}
