// Multi-tenant fleet walkthrough: four assembly jobs of mixed width and
// priority time-share an 8-node simulated fleet under checkpoint-based
// preemption. A fleet-wide low-priority batch job arrives first; narrow
// high-priority jobs land behind it and the strict-priority policy
// checkpoints the batch at its next iteration boundary to let them
// through. The schedule, the per-tenant latency decomposition and the
// tenant-colored Chrome trace (open in Perfetto) come out the other end,
// and every preempted tenant's result is verified bit for bit against
// its own uninterrupted run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 120_000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 25, ErrorRate: 0.01, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}

	// One iteration-0 seed blob per job width: jobs of the same shape
	// share it, so admission skips re-running the software prelude.
	seeds := map[int][]byte{}
	for _, n := range []int{2, 8} {
		blob, err := nmppak.CheckpointScaleOut(reads, tr, nmppak.DefaultScaleOutConfig(n), 0)
		if err != nil {
			log.Fatal(err)
		}
		seeds[n] = blob
	}

	job := func(name string, prio int, arrival nmppak.Cycle, width int) nmppak.FleetJob {
		return nmppak.FleetJob{
			Name: name, Priority: prio, Arrival: arrival,
			Trace: tr, Config: nmppak.DefaultScaleOutConfig(width), Seed: seeds[width],
		}
	}
	jobs := []nmppak.FleetJob{
		job("batch", 0, 0, 8), // fleet-wide, low priority, first
		job("interactive-a", 5, 50_000, 2),
		job("interactive-b", 5, 90_000, 2),
		job("interactive-c", 5, 130_000, 2),
	}

	col := nmppak.NewTelemetry()
	fleet := nmppak.Fleet{Nodes: 8, Policy: nmppak.FleetPriority{}, Telemetry: col}
	sched, err := fleet.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(nmppak.FormatFleetSchedule(sched))

	// Preemption must not perturb the simulated machine: each tenant's
	// result equals its uninterrupted run, bit for bit.
	for i := range sched.Tenants {
		t := &sched.Tenants[i]
		want, err := nmppak.RestoreScaleOut(tr, nmppak.DefaultScaleOutConfig(t.Demand), seeds[t.Demand])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s preempted %dx, result bit-identical to uninterrupted run: %v\n",
			t.Name, t.Preemptions, reflect.DeepEqual(t.Result, want))
	}

	// The fleet timeline: per-node possession slices named (and therefore
	// Perfetto-colored) by tenant, plus per-tenant lifecycle tracks.
	path := filepath.Join(os.TempDir(), "nmppak-tenancy-trace.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := col.WriteChrome(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntenant-colored fleet timeline -> %s (open in Perfetto)\n", path)
}
