// Metagenome scenario: patient-microbiome analysis (the paper's
// personalized-medicine motivation) assembles a mixture of organisms at
// different abundances. This example builds a three-member community,
// assembles it with the paper's batch processing, and checks how much of
// each member was recovered.
package main

import (
	"fmt"
	"log"

	"nmppak"
)

func main() {
	type member struct {
		name     string
		length   int
		coverage float64
		seed     int64
	}
	community := []member{
		{"bacteroides-like", 400_000, 45, 11},
		{"lactobacillus-like", 250_000, 25, 12},
		{"low-abundance phage", 60_000, 12, 13},
	}

	var reads []nmppak.Read
	genomes := make(map[string]*nmppak.Genome)
	for _, m := range community {
		g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: m.length, GC: 0.5, Seed: m.seed})
		if err != nil {
			log.Fatal(err)
		}
		genomes[m.name] = g
		r, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
			ReadLen: 100, Coverage: m.coverage, ErrorRate: 0.01, Seed: m.seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		reads = append(reads, r...)
		fmt.Printf("%-22s %7d bp at %4.0fx -> %d reads\n", m.name, m.length, m.coverage, len(r))
	}

	// Batch processing (§4.4): the community is assembled in 4 sequential
	// batches to bound the in-flight graph size.
	out, err := nmppak.Assemble(reads, nmppak.AssemblyConfig{
		K: 32, MinCount: 3, Batches: 4, MinContigLen: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommunity assembly: %d contigs, total %d bp, peak graph %d MacroNodes\n",
		out.Summary.Contigs, out.Summary.TotalBases, out.PeakGraphNodes)

	for _, m := range community {
		sum := nmppak.Summarize(out.Contigs, genomes[m.name].Replicons)
		fmt.Printf("%-22s genome fraction %.3f  NG50 %d\n", m.name, sum.GenomeFrac, sum.NG50)
	}
}
