// Batch-size sweep: reproduces the paper's Table 1 trade-off interactively
// — smaller batches reduce peak memory but fragment the assembly (lower
// N50), because per-batch coverage drops below the error-pruning threshold.
package main

import (
	"fmt"
	"log"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 300_000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 30, ErrorRate: 0.01, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("batch size   batches   N50     contigs   peak MacroNodes")
	for _, frac := range []float64{0.005, 0.01, 0.03, 0.05, 0.10, 1.0} {
		batches := int(1/frac + 0.5)
		out, err := nmppak.Assemble(reads, nmppak.AssemblyConfig{
			K: 32, MinCount: 3, Batches: batches,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum := nmppak.Summarize(out.Contigs, g.Replicons)
		fmt.Printf("%8.1f%%   %7d   %5d   %7d   %15d\n",
			frac*100, batches, sum.N50, sum.Contigs, out.PeakGraphNodes)
	}
}
