// Quickstart: synthesize a small genome, sequence it with 1% errors,
// assemble it with the PaKman pipeline, and print the assembly metrics.
package main

import (
	"fmt"
	"log"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 100_000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 30, ErrorRate: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genome: %d bp, reads: %d (30x coverage, 1%% error)\n", g.TotalLength(), len(reads))

	out, err := nmppak.Assemble(reads, nmppak.AssemblyConfig{K: 32, MinCount: 3, MinContigLen: 100})
	if err != nil {
		log.Fatal(err)
	}
	sum := nmppak.Summarize(out.Contigs, g.Replicons)
	fmt.Printf("contigs: %d   N50: %d   longest: %d   genome fraction: %.3f\n",
		sum.Contigs, sum.N50, sum.LongestLen, sum.GenomeFrac)
	fmt.Printf("stage times: kmer %.3fs  construct %.3fs  compact %.3fs  walk %.3fs\n",
		out.Times.KmerCount.Seconds(), out.Times.Construct.Seconds(),
		out.Times.Compact.Seconds(), out.Times.Walk.Seconds())
}
