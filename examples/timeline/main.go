// Observability walkthrough: run an instrumented multi-node scale-out
// simulation, export the cycle-domain timeline as Chrome-trace JSON
// (open it in https://ui.perfetto.dev or chrome://tracing), and derive
// the aggregate views from the same span stream — the per-node and
// per-link utilization tables, and the critical-path attribution that
// names the resource bounding each compaction iteration. The derived
// communication fraction reproduces the runtime's own accounting
// exactly, which is checked here.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{
		Length: 150_000, Seed: 5,
		RepeatFraction: 0.3, RepeatUnit: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 25, ErrorRate: 0.01, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}

	// An 8-node torus under the overlapped halo-streaming discipline —
	// the timeline with the most to show: deliveries hiding behind
	// compute, contended links booking ahead, stragglers idling peers.
	cfg := nmppak.DefaultScaleOutConfig(8)
	cfg.Topo = nmppak.TorusTopo(0, 0)
	cfg.Overlap = true
	cfg.Telemetry = nmppak.NewTelemetry()

	res, err := nmppak.SimulateScaleOut(reads, tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %s\n\n", res)

	// The raw timeline, loadable in Perfetto (1 ts = 1 cycle).
	path := filepath.Join(os.TempDir(), "nmppak-timeline.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := cfg.Telemetry.WriteChrome(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	spans := 0
	for _, t := range cfg.Telemetry.Tracks() {
		spans += t.Len()
	}
	fmt.Printf("wrote %s: %d tracks, %d spans (open in https://ui.perfetto.dev)\n\n",
		path, len(cfg.Telemetry.Tracks()), spans)

	// Aggregate views, derived from the same spans the trace contains.
	u := nmppak.AnalyzeTelemetry(cfg.Telemetry)
	fmt.Printf("comm fraction: telemetry %.6f, runtime %.6f (must match exactly)\n\n",
		u.CommFraction, res.CommFraction)
	fmt.Print(nmppak.FormatUtilization(u))
	fmt.Println()
	fmt.Print(nmppak.FormatCriticalPath(nmppak.TelemetryCriticalPath(cfg.Telemetry)))
}
