// Viral assembly scenario: the paper's motivating use case is assembling
// an unknown virus from infected-host samples. This example assembles a
// 1.8 Mbp "novel pathogen" genome from error-prone short reads, writes the
// contigs as FASTA, and reports quality against the (normally unknown)
// truth.
package main

import (
	"fmt"
	"log"
	"os"

	"nmppak"
	"nmppak/internal/fastx"
)

func main() {
	// An unknown pathogen with some internal repeat structure.
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{
		Length: 1_800_000, GC: 0.42, RepeatFraction: 0.05, RepeatUnit: 400, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 40, ErrorRate: 0.008, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pathogen: %d bp (GC %.2f), reads: %d\n", g.TotalLength(), 0.42, len(reads))

	out, err := nmppak.Assemble(reads, nmppak.AssemblyConfig{
		K: 32, MinCount: 3, MinContigLen: 200, Batches: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := nmppak.Summarize(out.Contigs, g.Replicons)
	fmt.Printf("assembled %d contigs, N50 %d, genome fraction %.3f\n",
		sum.Contigs, sum.N50, sum.GenomeFrac)

	var recs []fastx.Record
	for i, c := range out.Contigs {
		if i >= 10 {
			break // keep the demo output small
		}
		recs = append(recs, fastx.Record{ID: fmt.Sprintf("contig_%d len=%d", i, c.Len()), Seq: c.String()})
	}
	f, err := os.CreateTemp("", "viral_contigs_*.fasta")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fastx.WriteFasta(f, recs, 70); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote top contigs to %s\n", f.Name())
}
