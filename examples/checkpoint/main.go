// Checkpoint/restore walkthrough: capture a compaction trace, start a
// multi-node scale-out simulation, pause it between compaction iterations
// into a versioned byte blob (here: a temp file, as a preempted job
// would), then restore from the blob and finish — and verify the resumed
// run lands bit-identically on the uninterrupted one. Also demonstrates
// the failure modes Restore guards against: truncated blobs and a
// mismatched configuration.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{
		Length: 150_000, Seed: 5,
		RepeatFraction: 0.3, RepeatUnit: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 25, ErrorRate: 0.01, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}

	// An 8-node torus running the measurement-driven rebalancing
	// partitioner — the runtime with the most mid-run state (migrated
	// ownership table, measured busy times) and therefore the most
	// interesting thing to checkpoint.
	cfg := nmppak.DefaultScaleOutConfig(8)
	cfg.Topo = nmppak.TorusTopo(0, 0)
	cfg.Partitioner = nmppak.NewRebalancePartitioner(12, 1)

	uninterrupted, err := nmppak.SimulateScaleOut(reads, tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted: %s\n", uninterrupted)

	// Pause mid-compaction and write the blob where a preempted job would.
	at := len(tr.Iterations) / 2
	blob, err := nmppak.CheckpointScaleOut(reads, tr, cfg, at)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "nmppak-checkpoint.bin")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	fmt.Printf("checkpointed before iteration %d/%d: %d-byte version-%d blob -> %s\n",
		at, len(tr.Iterations), len(blob), nmppak.ScaleOutCheckpointVersion, path)

	// A later process restores: it needs the blob plus the same trace and
	// configuration (the blob's digests enforce the match) — not the reads.
	saved, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := nmppak.RestoreScaleOut(tr, cfg, saved)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed:       %s\n", resumed)
	fmt.Printf("bit-identical resume: %v (rebalances %d, migrated %d bytes in both)\n\n",
		reflect.DeepEqual(resumed, uninterrupted), resumed.Rebalances, resumed.MigratedBytes)

	// What Restore refuses.
	if _, err := nmppak.RestoreScaleOut(tr, cfg, saved[:len(saved)/3]); err != nil {
		fmt.Printf("truncated blob:       %v\n", err)
	}
	wrong := cfg
	wrong.Topo = nmppak.DragonflyTopo(0)
	if _, err := nmppak.RestoreScaleOut(tr, wrong, saved); err != nil {
		fmt.Printf("wrong topology:       %v\n", err)
	}
}
