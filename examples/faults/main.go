// Fault-tolerance walkthrough: run the multi-node scale-out simulation
// with periodic checkpointing, kill a node mid-compaction, and watch the
// elastic runtime recover — detect the loss at an iteration boundary,
// roll the survivors back to the last checkpoint, re-partition the dead
// node's shard across them, and finish the run. The committed output is
// verified to match the fault-free run exactly (every global iteration is
// committed exactly once despite the discard/re-execute cycle), and a
// small cadence sweep shows the classic checkpoint-interval trade:
// sparser checkpoints stall less but discard more work on a loss.
package main

import (
	"fmt"
	"log"

	"nmppak"
)

// committed sums the MacroNodes processed on the NMP and CPU paths over
// every node — the quantity a recovery must conserve.
func committed(res *nmppak.ScaleOutResult) int64 {
	var work int64
	for _, r := range res.NMP {
		work += r.NodesNMP + r.NodesCPU
	}
	return work
}

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 120_000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 25, ErrorRate: 0.01, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}

	// A 4-node routed torus, BSP. First the fault-free run — the baseline
	// every recovery below is judged against, and the clock the fault is
	// positioned on.
	cfg := nmppak.DefaultScaleOutConfig(4)
	cfg.Topo = nmppak.TorusTopo(0, 0)
	golden, err := nmppak.SimulateScaleOut(reads, tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free: %s\n\n", golden)

	// Kill node 2 halfway through the compaction phase, detected after a
	// 2000-cycle heartbeat timeout, with a checkpoint every 2 iterations.
	at := golden.Compact.Total() / 2
	cfg.CheckpointEvery = 2
	cfg.Faults = nmppak.NodeLossAt(2, at, 2000)
	res, err := nmppak.SimulateScaleOut(reads, tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 2 killed at compaction cycle %d:\n", at)
	fmt.Printf("  recovered:         %d recovery (%d node lost, %d fault injected)\n",
		res.Recoveries, res.NodesLost, res.FaultsInjected)
	fmt.Printf("  checkpoints:       %d captured, %d cycles of capture stall\n",
		res.Checkpoints, res.CheckpointCycles)
	fmt.Printf("  rollback:          %d node-iterations discarded and re-executed\n", res.LostIterations)
	fmt.Printf("  detection+restore: %d cycles\n", res.RecoveryCycles)
	fmt.Printf("  re-partitioning:   %.1f KiB of the dead shard moved to survivors\n",
		float64(res.RepartitionBytes)/1024)
	fmt.Printf("  end to end:        %d cycles vs. %d fault-free (+%.2f%%)\n\n",
		res.TotalCycles, golden.TotalCycles,
		100*float64(res.TotalCycles-golden.TotalCycles)/float64(golden.TotalCycles))

	if got, want := committed(res), committed(golden); got != want {
		log.Fatalf("output NOT conserved: %d MacroNodes committed, fault-free committed %d", got, want)
	}
	fmt.Printf("output conserved: both runs committed %d MacroNodes\n\n", committed(golden))

	// The cadence trade, in miniature: no checkpoints (restart the phase
	// on the survivors) vs. sparse vs. dense.
	fmt.Println("checkpoint cadence sweep (same fault):")
	fmt.Printf("  %8s %9s %10s %12s\n", "cadence", "lost-it", "ckpt-cyc", "total-cyc")
	for _, every := range []int{0, 4, 1} {
		run := cfg
		run.CheckpointEvery = every
		r, err := nmppak.SimulateScaleOut(reads, tr, run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8d %9d %10d %12d\n", every, r.LostIterations, r.CheckpointCycles, r.TotalCycles)
	}
}
