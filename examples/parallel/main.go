// Parallel execution: run the same 64-node overlapped scale-out
// simulation twice — once on the sequential event-driven scheduler
// (Workers=1) and once on the conservative-PDES parallel runtime
// (Workers=0, one worker per GOMAXPROCS thread) — and verify the two are
// cycle-exact: identical Result structs, down to every phase counter.
//
// The parallel runtime advances each node's engine on its own goroutine
// inside windows bounded by the topology's minimum link latency (the
// lookahead), so it can never need an inbound halo flight that has not
// been computed yet. Wall-clock speedup therefore comes without any
// change in simulated behavior; on a single-core host the runtime falls
// back to the sequential scheduler and the two timings match.
package main

import (
	"fmt"
	"log"
	"reflect"
	"runtime"
	"time"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{
		Length: 200_000, Seed: 1,
		RepeatFraction: 0.3, RepeatUnit: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 30, ErrorRate: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}

	const nodes = 64
	run := func(workers int) (*nmppak.ScaleOutResult, time.Duration) {
		cfg := nmppak.DefaultScaleOutConfig(nodes)
		cfg.Overlap = true
		cfg.Workers = workers
		start := time.Now()
		res, err := nmppak.SimulateScaleOut(reads, tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}

	fmt.Printf("simulating %d nodes, %d compaction iterations, GOMAXPROCS=%d\n\n",
		nodes, len(tr.Iterations), runtime.GOMAXPROCS(0))

	serial, serialWall := run(1) // sequential scheduler
	parallel, parWall := run(0)  // conservative-PDES, one worker per thread

	fmt.Printf("serial   (Workers=1): %8.1f ms wall, %d model cycles\n",
		serialWall.Seconds()*1e3, serial.TotalCycles)
	fmt.Printf("parallel (Workers=0): %8.1f ms wall, %d model cycles\n",
		parWall.Seconds()*1e3, parallel.TotalCycles)
	fmt.Printf("wall-clock speedup:   %8.2fx\n\n", serialWall.Seconds()/parWall.Seconds())

	// Cycle-exactness is a hard contract, not a tolerance: every field of
	// the two results — phase cycle counts, communication fraction, link
	// statistics, assembly outcome — must be identical.
	if !reflect.DeepEqual(serial, parallel) {
		log.Fatalf("parallel result diverges from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	fmt.Println("results are identical: the parallel runtime is cycle-exact.")
}
