// Parallel execution: run the same 64-node scale-out simulation under
// every runtime discipline — overlapped halo exchange, BSP supersteps,
// and elastic recovery from a mid-phase node loss — twice each: once on
// the sequential event-driven scheduler (Workers=1) and once on the
// conservative-PDES parallel runtime (Workers=0, one worker per
// GOMAXPROCS thread). Each pair must be cycle-exact: identical Result
// structs, down to every phase counter.
//
// The parallel runtime pre-steps each node's engine on the worker pool
// inside windows bounded by per-pair route latencies (the lookahead
// matrix), so it can never need an inbound halo flight that has not been
// computed yet. BSP runs chunk whole supersteps between barriers; the
// elastic runtime windows each recovery segment on its degraded network,
// treating checkpoint captures and fault boundaries as window horizons.
// Wall-clock speedup therefore comes without any change in simulated
// behavior; on a single-core host the runtime falls back to the
// sequential scheduler and the two timings match.
package main

import (
	"fmt"
	"log"
	"reflect"
	"runtime"
	"time"

	"nmppak"
)

func main() {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{
		Length: 200_000, Seed: 1,
		RepeatFraction: 0.3, RepeatUnit: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{
		ReadLen: 100, Coverage: 30, ErrorRate: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 3, 200)
	if err != nil {
		log.Fatal(err)
	}

	const nodes = 64
	run := func(workers int, mut func(*nmppak.ScaleOutConfig)) (*nmppak.ScaleOutResult, time.Duration) {
		cfg := nmppak.DefaultScaleOutConfig(nodes)
		cfg.Overlap = true
		cfg.Workers = workers
		if mut != nil {
			mut(&cfg)
		}
		start := time.Now()
		res, err := nmppak.SimulateScaleOut(reads, tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}

	// compare runs one discipline serial-then-parallel and enforces the
	// cycle-exactness contract: every field of the two results — phase
	// cycle counts, communication fraction, link statistics, assembly
	// outcome — must be identical. No tolerance.
	compare := func(name string, mut func(*nmppak.ScaleOutConfig)) {
		serial, serialWall := run(1, mut) // sequential scheduler
		parallel, parWall := run(0, mut)  // conservative-PDES, one worker per thread
		fmt.Printf("%-9s serial %8.1f ms | parallel %8.1f ms | speedup %5.2fx | %d model cycles\n",
			name, serialWall.Seconds()*1e3, parWall.Seconds()*1e3,
			serialWall.Seconds()/parWall.Seconds(), parallel.TotalCycles)
		if !reflect.DeepEqual(serial, parallel) {
			log.Fatalf("%s: parallel result diverges from serial:\nserial:   %+v\nparallel: %+v",
				name, serial, parallel)
		}
	}

	fmt.Printf("simulating %d nodes, %d compaction iterations, GOMAXPROCS=%d\n\n",
		nodes, len(tr.Iterations), runtime.GOMAXPROCS(0))

	// Overlapped halo exchange: per-pair lookahead windows.
	compare("overlap", nil)

	// BSP supersteps: chunked compute/exchange/barrier rounds.
	compare("bsp", func(cfg *nmppak.ScaleOutConfig) { cfg.Overlap = false })

	// Elastic recovery: kill a node halfway through the fault-free run's
	// span under checkpoint cadence 2, so the parallel scheduler must
	// reproduce the capture, detection, restore, and re-partitioned
	// survivor segments byte for byte too.
	golden, _ := run(1, func(cfg *nmppak.ScaleOutConfig) { cfg.CheckpointEvery = 2 })
	at := nmppak.Cycle(float64(golden.Compact.Total()) / 2)
	compare("elastic", func(cfg *nmppak.ScaleOutConfig) {
		cfg.CheckpointEvery = 2
		cfg.Faults = nmppak.NodeLossAt(nodes/2, at, 500)
	})

	fmt.Println("\nall disciplines identical: the parallel runtime is cycle-exact.")
}
