package nmppak_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"nmppak"
)

// TestPublicAPIEndToEnd drives the whole public surface: genome, reads,
// assembly, metrics, trace capture and all three hardware models.
func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{ReadLen: 100, Coverage: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := nmppak.Assemble(reads, nmppak.AssemblyConfig{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	sum := nmppak.Summarize(out.Contigs, g.Replicons)
	if sum.GenomeFrac < 0.99 {
		t.Fatalf("genome fraction %v", sum.GenomeFrac)
	}
	ref := g.Replicons[0].String()
	for _, c := range out.Contigs {
		if !strings.Contains(ref, c.String()) {
			t.Fatal("contig not a genome substring")
		}
	}

	tr, _, err := nmppak.CaptureTrace(reads, 32, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := nmppak.SimulateNMP(tr, nmppak.DefaultNMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	cres, err := nmppak.SimulateCPU(tr, nmppak.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	gres, err := nmppak.SimulateGPU(tr, nmppak.DefaultGPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if nres.Seconds <= 0 || cres.Seconds <= 0 || gres.Seconds <= 0 {
		t.Fatal("degenerate model results")
	}
	if nres.Seconds >= cres.Seconds {
		t.Fatalf("NMP (%.4fs) must beat the CPU baseline (%.4fs)", nres.Seconds, cres.Seconds)
	}
}

// TestPublicScaleOutAPI drives the distributed-runtime surface: the
// stepwise engine, both replay disciplines and all three partitioners.
func TestPublicScaleOutAPI(t *testing.T) {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{ReadLen: 100, Coverage: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 0, 200)
	if err != nil {
		t.Fatal(err)
	}

	// Stepwise engine == SimulateNMP.
	want, err := nmppak.SimulateNMP(tr, nmppak.DefaultNMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := nmppak.NewNMPEngine(tr, nmppak.DefaultNMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		e.StepIteration(e.NextStart())
	}
	if got := e.Result(); got.Cycles != want.Cycles {
		t.Fatalf("stepwise engine %d cycles, SimulateNMP %d", got.Cycles, want.Cycles)
	}

	// BSP vs overlapped on every partitioner.
	res, err := nmppak.CountKmers(reads, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []nmppak.Partitioner{
		nmppak.HashPartitioner{},
		nmppak.NewMinimizerPartitioner(12),
		nmppak.NewBalancedPartitioner(res, 12, 4),
	} {
		cfg := nmppak.DefaultScaleOutConfig(4)
		cfg.MinCount = 1
		cfg.Partitioner = p
		bsp, err := nmppak.SimulateScaleOut(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Overlap = true
		ov, err := nmppak.SimulateScaleOut(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ov.TotalCycles > bsp.TotalCycles {
			t.Fatalf("%s: overlapped run slower than BSP (%d vs %d cycles)",
				p.Name(), ov.TotalCycles, bsp.TotalCycles)
		}
	}

	// Routed topologies and measurement-driven rebalancing through the
	// public surface: multi-hop contention must cost more than the
	// idealized mesh, and the rebalancer must report its migrations.
	mesh, err := nmppak.SimulateScaleOut(reads, tr, func() nmppak.ScaleOutConfig {
		cfg := nmppak.DefaultScaleOutConfig(4)
		cfg.MinCount = 1
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []nmppak.TopoConfig{nmppak.TorusTopo(2, 2), nmppak.DragonflyTopo(2)} {
		cfg := nmppak.DefaultScaleOutConfig(4)
		cfg.MinCount = 1
		cfg.Topo = tc
		r, err := nmppak.SimulateScaleOut(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalCycles <= mesh.TotalCycles {
			t.Fatalf("%s: routed run not costlier than the idealized mesh (%d vs %d cycles)",
				r.Topology, r.TotalCycles, mesh.TotalCycles)
		}
	}
	rcfg := nmppak.DefaultScaleOutConfig(4)
	rcfg.MinCount = 1
	rcfg.Partitioner = nmppak.NewRebalancePartitioner(12, 1)
	reb, err := nmppak.SimulateScaleOut(reads, tr, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if reb.Rebalances == 0 || reb.MigratedBytes == 0 {
		t.Fatalf("rebalancer reported no migrations: %+v", reb)
	}

	// Checkpoint/restore through the public surface: pause mid-compaction,
	// inspect the blob, resume, and land bit-identically on the
	// uninterrupted rebalanced run.
	at := len(tr.Iterations) / 2
	blob, err := nmppak.CheckpointScaleOut(reads, tr, rcfg, at)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := nmppak.UnmarshalScaleOutCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != nmppak.ScaleOutCheckpointVersion || ck.ResumeIter != at {
		t.Fatalf("blob reports version %d resume %d, want %d/%d",
			ck.Version, ck.ResumeIter, nmppak.ScaleOutCheckpointVersion, at)
	}
	resumed, err := nmppak.RestoreScaleOut(tr, rcfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, reb) {
		t.Fatal("restored scale-out result differs from the uninterrupted run")
	}
	if _, err := nmppak.RestoreScaleOut(tr, rcfg, blob[:len(blob)/2]); err == nil {
		t.Fatal("RestoreScaleOut accepted a truncated blob")
	}
}

func TestKmerGraphHelpers(t *testing.T) {
	seq, err := nmppak.ParseSeq("ACGTACGTACGTACGTACGTACGTACGTACGTACGT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := nmppak.CountKmers([]nmppak.Read{{Seq: seq}}, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := nmppak.BuildGraph(res)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Fatal("empty graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicTelemetryAPI drives the observability surface: an
// instrumented scale-out run, Chrome-trace export, the derived
// utilization aggregate (which must reproduce the runtime's comm
// fraction exactly), critical-path attribution and the text renderers.
func TestPublicTelemetryAPI(t *testing.T) {
	g, err := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := nmppak.SimulateReads(g, nmppak.ReadConfig{ReadLen: 100, Coverage: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := nmppak.CaptureTrace(reads, 32, 0, 200)
	if err != nil {
		t.Fatal(err)
	}

	cfg := nmppak.DefaultScaleOutConfig(4)
	cfg.MinCount = 1
	cfg.Topo = nmppak.TorusTopo(2, 2)
	cfg.Overlap = true
	cfg.Telemetry = nmppak.NewTelemetry()
	res, err := nmppak.SimulateScaleOut(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cfg.Telemetry.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	u := nmppak.AnalyzeTelemetry(cfg.Telemetry)
	if u.CommFraction != res.CommFraction {
		t.Fatalf("telemetry comm fraction %v != runtime %v", u.CommFraction, res.CommFraction)
	}
	if len(u.Nodes) != cfg.Nodes || len(u.Links) == 0 {
		t.Fatalf("aggregate covers %d nodes / %d links", len(u.Nodes), len(u.Links))
	}
	cp := nmppak.TelemetryCriticalPath(cfg.Telemetry)
	if len(cp) == 0 {
		t.Fatal("no critical path")
	}
	if s := nmppak.FormatUtilization(u); !strings.Contains(s, "per-node breakdown") {
		t.Fatalf("utilization rendering missing node table:\n%s", s)
	}
	if s := nmppak.FormatCriticalPath(cp); !strings.Contains(s, "critical path") {
		t.Fatalf("critical-path rendering missing title:\n%s", s)
	}
}
