module nmppak

go 1.24
