// Package nmppak is the public API of the NMP-PaK reproduction: a de novo
// short-read genome assembler built on PaKman's MacroNode/PaK-graph
// algorithm (k-mer counting, MacroNode construction, Iterative Compaction,
// graph walk) together with trace-driven timing models of the paper's
// near-memory-processing hardware, CPU and GPU baselines.
//
// Quick start:
//
//	g, _ := nmppak.GenerateGenome(nmppak.GenomeConfig{Length: 100000, Seed: 1})
//	reads, _ := nmppak.SimulateReads(g, nmppak.ReadConfig{ReadLen: 100, Coverage: 30, ErrorRate: 0.01, Seed: 1})
//	out, _ := nmppak.Assemble(reads, nmppak.AssemblyConfig{K: 32, MinCount: 3})
//	fmt.Println(out.Summary.N50)
//
// The hardware models are reached through CaptureTrace + the Simulate*
// functions, and every table/figure of the paper's evaluation can be
// regenerated through the Experiments entry points (see cmd/experiments).
package nmppak

import (
	"nmppak/internal/assemble"
	"nmppak/internal/compact"
	"nmppak/internal/cpumodel"
	"nmppak/internal/dna"
	"nmppak/internal/fault"
	"nmppak/internal/genome"
	"nmppak/internal/gpumodel"
	"nmppak/internal/kmer"
	"nmppak/internal/metrics"
	"nmppak/internal/nmp"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
	"nmppak/internal/report"
	"nmppak/internal/scaleout"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/tenancy"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// Re-exported configuration and result types. The internal packages hold
// the implementations; these aliases are the supported public surface.
type (
	// GenomeConfig controls synthetic reference generation.
	GenomeConfig = genome.Config
	// Genome is a set of synthesized replicons.
	Genome = genome.Genome
	// ReadConfig controls Illumina-like read simulation.
	ReadConfig = readsim.Config
	// Read is one simulated short read.
	Read = readsim.Read
	// AssemblyConfig parameterizes the assembly pipeline.
	AssemblyConfig = assemble.Config
	// AssemblyOutput is the pipeline result (contigs, metrics, timings).
	AssemblyOutput = assemble.Output
	// AssemblySummary holds N50/NG50/coverage statistics.
	AssemblySummary = metrics.Summary
	// Seq is a 2-bit packed DNA sequence.
	Seq = dna.Seq
	// Trace is a recorded Iterative Compaction event stream.
	Trace = trace.Trace
	// NMPConfig parameterizes the near-memory-processing system model.
	NMPConfig = nmp.Config
	// NMPResult is the NMP simulation outcome.
	NMPResult = nmp.Result
	// CPUConfig parameterizes the multicore baseline model.
	CPUConfig = cpumodel.Config
	// CPUResult is the CPU simulation outcome.
	CPUResult = cpumodel.Result
	// GPUConfig parameterizes the A100-class baseline model.
	GPUConfig = gpumodel.Config
	// GPUResult is the GPU model outcome.
	GPUResult = gpumodel.Result
	// ScaleOutConfig parameterizes the multi-node scale-out simulator.
	ScaleOutConfig = scaleout.Config
	// ScaleOutResult is the scale-out simulation outcome.
	ScaleOutResult = scaleout.Result
	// NMPEngine is the resumable stepwise NMP simulator: one compaction
	// iteration per StepIteration call, for drivers that interleave their
	// own events between iterations (SimulateNMP is a thin loop over it).
	NMPEngine = nmp.Engine
	// Partitioner assigns k-mer and MacroNode-key ownership to scale-out
	// nodes; ownership is a pure function of the key.
	Partitioner = scaleout.Partitioner
	// HashPartitioner scatters every key independently (maximal balance,
	// no locality).
	HashPartitioner = scaleout.HashPartitioner
	// MinimizerPartitioner co-locates keys sharing a minimizer
	// (communication locality at some load-balance cost).
	MinimizerPartitioner = scaleout.MinimizerPartitioner
	// BalancedPartitioner greedy-bins minimizer super-buckets by observed
	// k-mer mass (locality and balance; built from a counting result).
	BalancedPartitioner = scaleout.BalancedPartitioner
	// RebalancePartitioner lets the distributed runtime migrate minimizer
	// super-buckets from measured stragglers to idle nodes between
	// compaction iterations (measurement-driven re-partitioning; the
	// migrated MacroNode bytes are charged to the interconnect).
	RebalancePartitioner = scaleout.RebalancePartitioner
	// TopoConfig declares the scale-out interconnect: topology kind
	// (full mesh, 2D torus, dragonfly), shape and per-link parameters.
	TopoConfig = topo.Config
	// TopoKind selects the interconnect topology family.
	TopoKind = topo.Kind
	// Network is a routed interconnect instance (built from a TopoConfig
	// and a node count); messages traverse it hop by hop through
	// contended serializing links.
	Network = topo.Network
	// KmerResult is a counting outcome (input to BuildGraph and
	// NewBalancedPartitioner).
	KmerResult = kmer.Result
	// ScaleOutCheckpoint is the decoded form of a scale-out checkpoint
	// blob (see CheckpointScaleOut/RestoreScaleOut); most callers move the
	// opaque blob around and never touch this.
	ScaleOutCheckpoint = scaleout.CheckpointState
	// NMPEngineState is a quiescent mid-run snapshot of an NMPEngine
	// (trace cursor, local clock, accumulated result, DRAM timing), the
	// per-node building block of a scale-out checkpoint.
	NMPEngineState = nmp.EngineState
	// TelemetryCollector accumulates one instrumented run's cycle-domain
	// timeline: spans on per-resource tracks (node engines, interconnect
	// links, DRAM channel buses, the runtime phase schedule), dependency
	// records and counters. Attach one to ScaleOutConfig.Telemetry and
	// export with its WriteChrome method (Perfetto / chrome://tracing).
	TelemetryCollector = telemetry.Collector
	// TelemetryTrack is one resource's recorded span stream.
	TelemetryTrack = telemetry.Track
	// TelemetrySpan is one recorded time window on a track.
	TelemetrySpan = telemetry.Span
	// TelemetryUtilization is the aggregate counter set AnalyzeTelemetry
	// derives from a collector: per-node busy/idle/stall, per-link
	// occupancy and peak backlog, DRAM bus time, and the comm fraction
	// (which reproduces ScaleOutResult.CommFraction exactly).
	TelemetryUtilization = telemetry.Utilization
	// TelemetryCPEntry is one iteration of the critical-path attribution:
	// the node whose compute bounded it and the wait that preceded it.
	TelemetryCPEntry = telemetry.CPEntry
	// Cycle is the simulator's time unit (one NMP core clock).
	Cycle = sim.Cycle
	// FaultPlan is a deterministic fault schedule for one scale-out run:
	// node losses, link degradations and link outages pinned to chosen
	// compaction-phase cycles, plus the failure-detection latency. Attach
	// one to ScaleOutConfig.Faults (usually with ScaleOutConfig.
	// CheckpointEvery set) and the elastic runtime detects losses at
	// iteration boundaries, restores the survivors from the last periodic
	// checkpoint, re-partitions the dead shard and finishes the run with
	// the global output conserved.
	FaultPlan = fault.Plan
	// FaultEvent is one scheduled fault of a FaultPlan.
	FaultEvent = fault.Event
	// FaultKind classifies a FaultEvent (node loss, link degrade/outage).
	FaultKind = fault.Kind
	// ScaleOutSession is a pausable scale-out run: Step executes
	// compaction iterations in slices, Checkpoint exports the paused
	// state as a blob (byte-identical to CheckpointScaleOut at the same
	// boundary), Finish completes the run bit-identically to
	// SimulateScaleOut. The multi-tenant fleet scheduler preempts through
	// it.
	ScaleOutSession = scaleout.Session
	// Fleet is a fixed pool of simulated NMP nodes time-shared by many
	// assembly jobs under checkpoint-based preemption (see FleetJob,
	// FleetPolicy and Fleet.Run).
	Fleet = tenancy.Fleet
	// FleetJob is one tenant's admission request: workload trace, node
	// demand (Config.Nodes), priority and deterministic arrival cycle.
	FleetJob = tenancy.Job
	// FleetSchedule is a fleet simulation outcome: makespan, utilization,
	// preemption totals and per-tenant stats.
	FleetSchedule = tenancy.Schedule
	// FleetTenantStats is one tenant's measured outcome (latency
	// decomposition, preemptions, checkpoint traffic, final result).
	FleetTenantStats = tenancy.TenantStats
	// FleetPolicy decides tenant placement and preemption.
	FleetPolicy = tenancy.Policy
	// FleetFIFO is strict arrival order, non-preemptive.
	FleetFIFO = tenancy.FIFO
	// FleetPriority is strict-priority with checkpoint preemption.
	FleetPriority = tenancy.Priority
	// FleetFairShare is deficit round-robin over measured machine cycles.
	FleetFairShare = tenancy.FairShare
)

// ErrElasticConfig is the sentinel wrapped by checkpoint, restore and
// session construction when the config carries elastic state
// (CheckpointEvery/Faults): elastic runs manage their own recovery
// checkpoints and cannot be externally paused. Detect it with errors.Is;
// the fleet scheduler uses it to classify non-preemptible tenants.
var ErrElasticConfig = scaleout.ErrElasticConfig

// ScaleOutCheckpointVersion is the checkpoint blob format version this
// build reads and writes.
const ScaleOutCheckpointVersion = scaleout.CheckpointVersion

// Interconnect topology kinds for ScaleOutConfig.Topo.Kind.
const (
	TopoFullMesh  = topo.FullMesh
	TopoTorus2D   = topo.Torus2D
	TopoDragonfly = topo.Dragonfly
)

// Fault event kinds for FaultEvent.Kind.
const (
	// FaultNodeLoss kills a node; the elastic runtime recovers the run on
	// the survivors.
	FaultNodeLoss = fault.NodeLoss
	// FaultLinkDegrade multiplies the bandwidth of every link on the
	// minimal Src -> Dst route by Factor.
	FaultLinkDegrade = fault.LinkDegrade
	// FaultLinkOutage removes the minimal Src -> Dst route's links; later
	// traffic detours around the cut.
	FaultLinkOutage = fault.LinkOutage
)

// GenerateGenome synthesizes a reference genome.
func GenerateGenome(cfg GenomeConfig) (*Genome, error) { return genome.Generate(cfg) }

// SimulateReads sequences a genome into short reads (ART substitute).
func SimulateReads(g *Genome, cfg ReadConfig) ([]Read, error) { return readsim.Simulate(g, cfg) }

// Assemble runs the full PaKman pipeline: k-mer counting, MacroNode
// construction, per-batch Iterative Compaction, graph merge and walk.
func Assemble(reads []Read, cfg AssemblyConfig) (*AssemblyOutput, error) {
	return assemble.Run(reads, cfg)
}

// Summarize computes assembly quality metrics against an optional
// reference.
func Summarize(contigs []Seq, ref []Seq) AssemblySummary { return metrics.Summarize(contigs, ref) }

// CaptureTrace assembles a read set (single batch) while recording the
// Iterative Compaction event stream the hardware models replay. The
// threshold semantics follow the paper: compaction stops once the live
// node count falls below compactThreshold (0 compacts to a fixed point).
func CaptureTrace(reads []Read, k int, minCount uint32, compactThreshold int) (*Trace, *AssemblyOutput, error) {
	b := trace.NewBuilder(k)
	out, err := assemble.Run(reads, assemble.Config{
		K: k, MinCount: minCount, CompactThreshold: compactThreshold,
		Flow: compact.FlowPipelined, Observer: b,
	})
	if err != nil {
		return nil, nil, err
	}
	return b.Trace(), out, nil
}

// DefaultNMPConfig returns the paper's NMP-PaK system (Table 2).
func DefaultNMPConfig() NMPConfig { return nmp.DefaultConfig() }

// SimulateNMP replays a compaction trace on the NMP-PaK hardware model.
func SimulateNMP(tr *Trace, cfg NMPConfig) (*NMPResult, error) { return nmp.Simulate(tr, cfg) }

// DefaultCPUConfig returns the 64-thread CPU baseline model.
func DefaultCPUConfig() CPUConfig { return cpumodel.DefaultConfig() }

// SimulateCPU replays a compaction trace on the CPU baseline model.
func SimulateCPU(tr *Trace, cfg CPUConfig) (*CPUResult, error) { return cpumodel.Simulate(tr, cfg) }

// DefaultGPUConfig returns the A100 40 GB baseline model.
func DefaultGPUConfig() GPUConfig { return gpumodel.A100_40GB() }

// SimulateGPU replays a compaction trace on the GPU baseline model.
func SimulateGPU(tr *Trace, cfg GPUConfig) (*GPUResult, error) { return gpumodel.Simulate(tr, cfg) }

// NewNMPEngine prepares a resumable stepwise replay of tr; drive it with
// StepIteration/NextStart and seal with Result.
func NewNMPEngine(tr *Trace, cfg NMPConfig) (*NMPEngine, error) { return nmp.NewEngine(tr, cfg) }

// DefaultScaleOutConfig returns an n-node scale-out system: paper-default
// NMP nodes joined by a 25 GB/s full-mesh interconnect, hash-partitioned,
// BSP replay. Set Overlap for the overlapped halo-exchange runtime and
// Topo for a routed topology (TorusTopo / DragonflyTopo) instead of the
// idealized mesh.
func DefaultScaleOutConfig(nodes int) ScaleOutConfig { return scaleout.DefaultConfig(nodes) }

// DefaultTopo returns the default interconnect declaration: a 25 GB/s,
// 1 us full mesh.
func DefaultTopo() TopoConfig { return topo.Default() }

// TorusTopo returns the default link parameters on an x-by-y 2D torus
// with dimension-order routing (zero dims: auto near-square).
func TorusTopo(x, y int) TopoConfig { return topo.Torus(x, y) }

// DragonflyTopo returns the default link parameters on a dragonfly of
// all-to-all groups joined by per-group-pair global channels (zero group
// size: auto near-square).
func DragonflyTopo(groupSize int) TopoConfig { return topo.DragonflyGroups(groupSize) }

// NewRebalancePartitioner returns a measurement-driven rebalancing
// partitioner: minimizer super-buckets of m-mers, migrated between
// straggler and idle nodes every `every` compaction iterations based on
// the busy times the distributed runtime measures (BSP discipline).
func NewRebalancePartitioner(m, every int) *RebalancePartitioner {
	return scaleout.NewRebalancePartitioner(m, every)
}

// SimulateScaleOut runs the sharded multi-node pipeline — distributed
// k-mer counting, distributed MacroNode construction, and a distributed
// per-iteration replay of the compaction trace with halo exchange (BSP
// supersteps by default, overlapped when cfg.Overlap is set) — returning
// per-phase and per-node timing. With nodes == 1 the compaction phase
// equals SimulateNMP on the same trace exactly, in either mode.
func SimulateScaleOut(reads []Read, tr *Trace, cfg ScaleOutConfig) (*ScaleOutResult, error) {
	return scaleout.Simulate(reads, tr, cfg)
}

// CheckpointScaleOut runs the scale-out pipeline up to (but not
// including) compaction iteration beforeIter and exports the paused run
// as a versioned, deterministic byte blob. RestoreScaleOut — under the
// same trace and configuration — resumes it and finishes bit-identically
// to the uninterrupted SimulateScaleOut (the internal/conformance suite
// pins this across the whole topology × discipline × partitioner matrix).
func CheckpointScaleOut(reads []Read, tr *Trace, cfg ScaleOutConfig, beforeIter int) ([]byte, error) {
	return scaleout.Checkpoint(reads, tr, cfg, beforeIter)
}

// RestoreScaleOut reconstructs a checkpointed scale-out run and drives it
// to completion. It rejects truncated or version-mismatched blobs and
// blobs taken under a different configuration or trace.
func RestoreScaleOut(tr *Trace, cfg ScaleOutConfig, blob []byte) (*ScaleOutResult, error) {
	return scaleout.Restore(tr, cfg, blob)
}

// UnmarshalScaleOutCheckpoint decodes and validates a checkpoint blob for
// inspection (resume iteration, recorded state) without restoring it.
func UnmarshalScaleOutCheckpoint(blob []byte) (*ScaleOutCheckpoint, error) {
	return scaleout.UnmarshalCheckpoint(blob)
}

// NodeLossAt returns the common single-event fault plan: node dies at the
// given compaction-phase cycle, acted on after a detect-cycle latency.
func NodeLossAt(node int, cycle, detect Cycle) *FaultPlan {
	return fault.NodeLossAt(node, cycle, detect)
}

// NewMinimizerPartitioner returns a minimizer partitioner with m-mer
// length m.
func NewMinimizerPartitioner(m int) MinimizerPartitioner {
	return scaleout.NewMinimizerPartitioner(m)
}

// NewBalancedPartitioner builds a weight-aware partitioner for an n-node
// machine from a counting result (see CountKmers), binning minimizer
// super-buckets by observed k-mer mass.
func NewBalancedPartitioner(res *KmerResult, m, nodes int) BalancedPartitioner {
	return scaleout.NewBalancedPartitioner(res, m, nodes)
}

// NewTelemetry returns an empty telemetry collector, ready to attach to
// ScaleOutConfig.Telemetry. Collection is deterministic and does not
// perturb the simulated machine; pass a fresh (or Reset) collector per
// run.
func NewTelemetry() *TelemetryCollector { return telemetry.New() }

// AnalyzeTelemetry folds a collected timeline into aggregate utilization
// counters.
func AnalyzeTelemetry(c *TelemetryCollector) *TelemetryUtilization { return telemetry.Analyze(c) }

// TelemetryCriticalPath walks the recorded dependency graph backwards
// from the last-finishing node iteration, attributing each compaction
// iteration's share of the end-to-end cycles to its bounding resource.
func TelemetryCriticalPath(c *TelemetryCollector) []TelemetryCPEntry {
	return telemetry.CriticalPath(c)
}

// FormatUtilization renders an analyzed timeline as the aligned text
// tables cmd/experiments -timeline prints.
func FormatUtilization(u *TelemetryUtilization) string { return report.Utilization(u) }

// FormatCriticalPath renders a critical-path attribution as an aligned
// text table.
func FormatCriticalPath(entries []TelemetryCPEntry) string { return report.CriticalPath(entries) }

// NewScaleOutSession starts a pausable scale-out run (BSP preemptible
// configurations only: overlapped and elastic configs cannot be paused —
// the latter is reported via ErrElasticConfig).
func NewScaleOutSession(reads []Read, tr *Trace, cfg ScaleOutConfig) (*ScaleOutSession, error) {
	return scaleout.NewSession(reads, tr, cfg)
}

// ResumeScaleOutSession reopens a paused run from a checkpoint blob
// (written by CheckpointScaleOut or ScaleOutSession.Checkpoint) for
// further stepping; the input reads are not needed again.
func ResumeScaleOutSession(tr *Trace, cfg ScaleOutConfig, blob []byte) (*ScaleOutSession, error) {
	return scaleout.ResumeSession(tr, cfg, blob)
}

// FormatFleetSchedule renders a fleet schedule as the fleet summary plus
// a per-tenant latency-decomposition table.
func FormatFleetSchedule(s *FleetSchedule) string { return report.Tenancy(s) }

// ParseSeq parses an ASCII DNA string.
func ParseSeq(s string) (Seq, error) { return dna.ParseSeq(s) }

// CountKmers runs the optimized parallel k-mer counting pass.
func CountKmers(reads []Read, k int, minCount uint32) (*kmer.Result, error) {
	return kmer.Count(reads, kmer.Config{K: k, MinCount: minCount})
}

// BuildGraph constructs the PaK-graph from counted k-mers.
func BuildGraph(res *kmer.Result) (*pakgraph.Graph, error) { return pakgraph.Build(res) }
