// Package fastx reads and writes FASTA and FASTQ files, the interchange
// formats between the read simulator (the paper uses ART) and the assembler.
package fastx

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Record is a single FASTA/FASTQ entry. Qual is empty for FASTA records.
type Record struct {
	ID   string
	Seq  string
	Qual string
}

// WriteFasta writes records in FASTA format with the given line wrap width
// (no wrapping when wrap <= 0).
func WriteFasta(w io.Writer, recs []Record, wrap int) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", r.ID); err != nil {
			return err
		}
		s := r.Seq
		if wrap <= 0 {
			if _, err := fmt.Fprintln(bw, s); err != nil {
				return err
			}
			continue
		}
		for len(s) > 0 {
			n := wrap
			if n > len(s) {
				n = len(s)
			}
			if _, err := fmt.Fprintln(bw, s[:n]); err != nil {
				return err
			}
			s = s[n:]
		}
	}
	return bw.Flush()
}

// WriteFastq writes records in 4-line FASTQ format. Records without quality
// strings get a constant maximum-quality string.
func WriteFastq(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		q := r.Qual
		if q == "" {
			q = strings.Repeat("I", len(r.Seq))
		}
		if len(q) != len(r.Seq) {
			return fmt.Errorf("fastx: record %q quality length %d != sequence length %d", r.ID, len(q), len(r.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, q); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFasta parses a FASTA stream. Sequences may span multiple lines.
func ReadFasta(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var recs []Record
	var cur *Record
	var sb strings.Builder
	flush := func() {
		if cur != nil {
			cur.Seq = sb.String()
			recs = append(recs, *cur)
			sb.Reset()
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			flush()
			cur = &Record{ID: strings.TrimSpace(line[1:])}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fastx: sequence data before first FASTA header")
		}
		sb.WriteString(line)
	}
	flush()
	return recs, sc.Err()
}

// ReadFastq parses a 4-line-per-record FASTQ stream.
func ReadFastq(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var recs []Record
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimRight(sc.Text(), "\r\n")
			return s, true
		}
		return "", false
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		if hdr == "" {
			continue
		}
		if hdr[0] != '@' {
			return nil, fmt.Errorf("fastx: line %d: expected @ header, got %q", line, hdr)
		}
		seq, ok := next()
		if !ok {
			return nil, fmt.Errorf("fastx: truncated record at line %d", line)
		}
		plus, ok := next()
		if !ok || len(plus) == 0 || plus[0] != '+' {
			return nil, fmt.Errorf("fastx: line %d: expected + separator", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("fastx: truncated quality at line %d", line)
		}
		if len(qual) != len(seq) {
			return nil, fmt.Errorf("fastx: line %d: quality length %d != sequence length %d", line, len(qual), len(seq))
		}
		recs = append(recs, Record{ID: strings.TrimSpace(hdr[1:]), Seq: seq, Qual: qual})
	}
	return recs, sc.Err()
}
