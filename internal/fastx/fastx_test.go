package fastx

import (
	"bytes"
	"strings"
	"testing"
)

func TestFastaRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "contig_1", Seq: "ACGTACGTACGT"},
		{ID: "contig_2 with description", Seq: strings.Repeat("ACGT", 40)},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 60); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || got[i].Seq != recs[i].Seq {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestFastaMultiline(t *testing.T) {
	in := ">a\nACGT\nTTTT\n\n>b\nGG\n"
	got, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != "ACGTTTTT" || got[1].Seq != "GG" {
		t.Fatalf("parse: %+v", got)
	}
}

func TestFastaErrorOnHeaderlessData(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Fatal("expected error")
	}
}

func TestFastqRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "read/1", Seq: "ACGTA", Qual: "IIIH!"},
		{ID: "read/2", Seq: "TTTT"},
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].Qual != "IIIH!" {
		t.Fatalf("qual mismatch: %q", got[0].Qual)
	}
	if got[1].Qual != "IIII" {
		t.Fatalf("default qual: %q", got[1].Qual)
	}
}

func TestFastqRejectsLengthMismatch(t *testing.T) {
	in := "@r\nACGT\n+\nII\n"
	if _, err := ReadFastq(strings.NewReader(in)); err == nil {
		t.Fatal("expected error")
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, []Record{{ID: "r", Seq: "ACGT", Qual: "I"}}); err == nil {
		t.Fatal("expected write error")
	}
}

func TestFastqRejectsMalformed(t *testing.T) {
	for _, in := range []string{"ACGT\n", "@r\nACGT\nII\nII\n", "@r\nACGT\n"} {
		if _, err := ReadFastq(strings.NewReader(in)); err == nil {
			t.Fatalf("expected error for %q", in)
		}
	}
}
