// Telemetry glue for the distributed runtime: one probes value per
// instrumented run owns the track layout (runtime phase schedule, one
// track per node engine, per DRAM channel, per topology link), the
// engine/link/DRAM probe attachments, and the local-to-global re-basing
// that pins spans recorded on a node's back-to-back clock onto the run's
// shared timeline.
//
// Concurrency contract: beforeStep/afterStep run on the worker goroutine
// that owns node i and touch only node-i scratch and node-i DRAM tracks
// (each track is single-writer); every other method runs on the
// single-threaded scheduling path, after the workers have joined. A nil
// *probes disables everything — the recording sites in runtime.go and
// rebalance.go are nil-guarded, so a telemetry-free run takes one branch
// per site and allocates nothing.
package scaleout

import (
	"fmt"

	"nmppak/internal/nmp"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
)

// stepScratch is the per-node bracket state around one engine step.
type stepScratch struct {
	dramFrom   []int // per-channel track length before the step
	busPrev    []int64
	busCur     []int64
	start, end sim.Cycle // the step's local-clock window
	busDelta   int64     // DRAM bus cycles the step consumed
}

// stepRec is one buffered engine step of the parallel (windowed) runtime:
// the bracket state snapshotted on the worker goroutine right after the
// step, placed onto the global timeline later, when the macro scheduler
// reaches the iteration. dramFrom/dramTo bracket the step's span batch on
// each DRAM track so placeBuffered can re-base exactly that batch —
// later iterations' spans may already sit past dramTo by then, still on
// their local clock, waiting for their own placement.
type stepRec struct {
	start, end sim.Cycle
	busDelta   int64
	dramFrom   []int
	dramTo     []int

	// Post-step engine event-kernel counters, so dropBuffered can rewind
	// pr.kern when a recovery discards pre-stepped iterations (the serial
	// schedule never ran them, and the counters end up in the trace).
	ev   int64
	pend int
}

type probes struct {
	c      *telemetry.Collector
	phases *telemetry.Track     // the runtime's phase schedule
	node   []*telemetry.Track   // per node engine
	dram   [][]*telemetry.Track // [node][channel]
	links  []*telemetry.Track   // per dense link ID

	kern []sim.Probe // per-node engine event-kernel counters
	loop sim.Probe   // the overlapped discipline's global event loop

	// base is the compaction phase's global start (the software phases
	// end there); set by prelude.
	base sim.Cycle

	lp      topo.Probe // reusable link-probe header for serial exchanges
	scratch []stepScratch

	// buf holds the windowed runtime's per-iteration step records,
	// [node][iteration]; nil on every serial path (enableBuffer sizes it).
	buf [][]stepRec
}

// newProbes lays out every track of the run up front, in a fixed order
// (the export order), before any parallel section.
func newProbes(c *telemetry.Collector, net topo.Network, cfg Config) *probes {
	n := cfg.Nodes
	chs := cfg.NMP.Channels
	pr := &probes{c: c}
	pr.phases = c.NewTrack(telemetry.TrackRuntime, 0, "phases")
	pr.node = make([]*telemetry.Track, n)
	for i := 0; i < n; i++ {
		pr.node[i] = c.NewTrack(telemetry.TrackNode, i, fmt.Sprintf("node%d", i))
	}
	pr.dram = make([][]*telemetry.Track, n)
	for i := 0; i < n; i++ {
		pr.dram[i] = make([]*telemetry.Track, chs)
		for ch := 0; ch < chs; ch++ {
			pr.dram[i][ch] = c.NewTrack(telemetry.TrackDRAM, i*chs+ch, fmt.Sprintf("node%d/ch%d", i, ch))
		}
	}
	pr.links = make([]*telemetry.Track, net.NumLinks())
	for l := range pr.links {
		pr.links[l] = c.NewTrack(telemetry.TrackLink, l, fmt.Sprintf("%s/link%d", net.Name(), l))
	}
	pr.kern = make([]sim.Probe, n)
	pr.scratch = make([]stepScratch, n)
	pr.lp.Links = pr.links
	return pr
}

// attach hooks the per-node engines: DRAM channel tracks and event-kernel
// counters.
func (pr *probes) attach(engines []*nmp.Engine) {
	for i, e := range engines {
		e.SetKernelProbe(&pr.kern[i])
		e.SetDRAMProbes(pr.dram[i])
	}
}

// linkAt returns the link probe positioned at global time off, for a
// serial exchange about to run on its own local engine.
func (pr *probes) linkAt(off sim.Cycle) *topo.Probe {
	pr.lp.Offset = off
	return &pr.lp
}

// phaseSpans renders one software phase at global time t on the runtime
// track (compute, then exchange, then the interconnect barrier — the
// order finalize sums them in) and returns the phase end.
func (pr *probes) phaseSpans(p PhaseCycles, t sim.Cycle) sim.Cycle {
	if p.Compute > 0 {
		pr.phases.Add(telemetry.SpanCompute, t, t+p.Compute, -1, 0)
		t += p.Compute
	}
	if p.Exchange > 0 {
		pr.phases.Add(telemetry.SpanExchangeWait, t, t+p.Exchange, -1, 0)
		t += p.Exchange
	}
	if p.Barrier > 0 {
		pr.phases.Add(telemetry.SpanLinkBarrier, t, t+p.Barrier, -1, 0)
		t += p.Barrier
	}
	return t
}

// prelude records the software phases (counting, construction) and
// anchors the compaction phase's global start.
func (pr *probes) prelude(res *Result) {
	t := pr.phaseSpans(res.Count, 0)
	pr.base = pr.phaseSpans(res.Construct, t)
}

// beforeStep and afterStep bracket one engine step; both run on the
// worker goroutine that owns node i.
func (pr *probes) beforeStep(i int, e *nmp.Engine) {
	s := &pr.scratch[i]
	s.dramFrom = s.dramFrom[:0]
	for _, t := range pr.dram[i] {
		s.dramFrom = append(s.dramFrom, t.Len())
	}
	s.busPrev = e.AppendBusBusy(s.busPrev[:0])
}

func (pr *probes) afterStep(i int, e *nmp.Engine, ti nmp.IterTiming) {
	s := &pr.scratch[i]
	s.busCur = e.AppendBusBusy(s.busCur[:0])
	s.busDelta = 0
	for c := range s.busCur {
		s.busDelta += s.busCur[c] - s.busPrev[c]
	}
	s.start, s.end = ti.Start, ti.End
}

// placeIter pins node i's just-stepped iteration onto the global timeline
// at gs: the iteration span lands on the node track (Arg2 = the step's
// DRAM bus cycles) and the step's DRAM spans are re-based from the
// engine's local clock. Runs after the step's worker has joined.
func (pr *probes) placeIter(i, it int, gs sim.Cycle) {
	s := &pr.scratch[i]
	delta := gs - s.start
	for c, t := range pr.dram[i] {
		t.ShiftTail(s.dramFrom[c], delta)
	}
	pr.node[i].Add(telemetry.SpanIter, gs, gs+(s.end-s.start), int64(it), s.busDelta)
}

// placeReplayed records an iteration whose engine step happened before a
// checkpoint: the overlapped restore replays its recorded duration, so
// there is no DRAM attribution to re-base.
func (pr *probes) placeReplayed(i, it int, gs, d sim.Cycle) {
	pr.node[i].Add(telemetry.SpanIter, gs, gs+d, int64(it), 0)
}

// enableBuffer sizes the step buffers for a windowed (parallel) run.
func (pr *probes) enableBuffer(n, iters int) {
	pr.buf = make([][]stepRec, n)
	for i := range pr.buf {
		pr.buf[i] = make([]stepRec, iters)
	}
}

// bufferStep snapshots the just-stepped iteration's bracket state into
// the node's step buffer. Runs on the worker goroutine that owns node i
// during a parallel window — it touches only node-i state, preserving the
// single-writer contract.
func (pr *probes) bufferStep(i, it int) {
	s := &pr.scratch[i]
	r := &pr.buf[i][it]
	r.start, r.end, r.busDelta = s.start, s.end, s.busDelta
	r.dramFrom = append(r.dramFrom[:0], s.dramFrom...)
	r.dramTo = r.dramTo[:0]
	for _, t := range pr.dram[i] {
		r.dramTo = append(r.dramTo, t.Len())
	}
	r.ev, r.pend = pr.kern[i].Dispatched, pr.kern[i].MaxPending
}

// placeBuffered is placeIter for a pre-stepped iteration: the same spans,
// the same re-basing delta, but shifting only the buffered step's own
// span batch (ShiftRange) because the track tail may already hold later
// pre-stepped iterations. Runs on the single-threaded scheduling path.
func (pr *probes) placeBuffered(i, it int, gs sim.Cycle) {
	r := &pr.buf[i][it]
	delta := gs - r.start
	for c, t := range pr.dram[i] {
		t.ShiftRange(r.dramFrom[c], r.dramTo[c], delta)
	}
	pr.node[i].Add(telemetry.SpanIter, gs, gs+(r.end-r.start), int64(it), r.busDelta)
}

// dropBuffered discards node i's un-placed DRAM spans from pre-stepped
// iteration `from` on: the windowed elastic runtime calls it before a
// recovery rolls the run back past those iterations, since the serial
// schedule never stepped them and their spans must not survive on the
// tracks. The spans of iterations >= from form the track tail (placement
// happens in iteration order), so truncating to the buffered batch start
// removes exactly them.
func (pr *probes) dropBuffered(i, from int) {
	r := &pr.buf[i][from]
	for c, t := range pr.dram[i] {
		t.Truncate(r.dramFrom[c])
	}
	k := &pr.kern[i]
	if from > 0 {
		p := &pr.buf[i][from-1]
		k.Dispatched, k.MaxPending = p.ev, p.pend
	} else {
		k.Dispatched, k.MaxPending = 0, 0
	}
}

// stall records one d-cycle whole-machine wait starting at gnow on the
// runtime track and every node track, returning the new global time.
func (pr *probes) stall(kind telemetry.SpanKind, it int, gnow, d sim.Cycle, bytes int64) sim.Cycle {
	if d <= 0 {
		return gnow
	}
	pr.phases.Add(kind, gnow, gnow+d, int64(it), bytes)
	for i := range pr.node {
		pr.node[i].Add(kind, gnow, gnow+d, int64(it), 0)
	}
	return gnow + d
}

// place pins node i's iteration it onto the global timeline at gs: from
// its live bracket scratch (serial paths, the step just ran) or from its
// step buffer (windowed paths, the step ran rounds ago on a worker).
func (pr *probes) place(i, it int, gs sim.Cycle, buffered bool) {
	if buffered {
		pr.placeBuffered(i, it, gs)
	} else {
		pr.placeIter(i, it, gs)
	}
}

// superstepCompute places every node's just-stepped iteration at gnow,
// fills the stragglers' idle windows up to the slowest node, records the
// phase compute segment and returns the new global time. buffered selects
// the step-buffer placement of the windowed (parallel) runtimes.
func (pr *probes) superstepCompute(it int, gnow sim.Cycle, durs []sim.Cycle, max sim.Cycle, buffered bool) sim.Cycle {
	for i := range pr.node {
		pr.place(i, it, gnow, buffered)
		if durs[i] < max {
			pr.node[i].Add(telemetry.SpanIdle, gnow+durs[i], gnow+max, int64(it), 0)
		}
	}
	if max > 0 {
		pr.phases.Add(telemetry.SpanCompute, gnow, gnow+max, int64(it), 0)
	}
	return gnow + max
}

// superstepComm records the iteration's halo exchange and, between
// supersteps, the closing barrier pair plus the barrier dependency gating
// every node's next iteration on the superstep's slowest node.
func (pr *probes) superstepComm(it, iters int, gnow sim.Cycle, hx topo.ExchangeStats, lb, sb sim.Cycle, slowest int) sim.Cycle {
	gnow = pr.stall(telemetry.SpanExchangeWait, it, gnow, hx.Cycles, hx.TotalBytes)
	if it < iters-1 {
		gnow = pr.stall(telemetry.SpanLinkBarrier, it, gnow, lb, 0)
		gnow = pr.stall(telemetry.SpanSyncBarrier, it, gnow, sb, 0)
		for i := range pr.node {
			pr.c.AddDep(i, it+1, telemetry.BoundBarrier, slowest)
		}
	}
	return gnow
}

// bspStart computes the compaction-phase global time after `executed`
// supersteps, given the accumulated compute/exchange partial sums — the
// re-entry point for runs split at an iteration boundary (checkpoints).
func (pr *probes) bspStart(compute, exchange sim.Cycle, executed, iters int, lb, sb sim.Cycle) sim.Cycle {
	if m := iters - 1; executed > m {
		executed = m
	}
	return pr.base + compute + exchange + sim.Cycle(executed)*(lb+sb)
}

// instant drops a zero-length marker span on the runtime track (exported
// to Chrome traces as an instant event).
func (pr *probes) instant(kind telemetry.SpanKind, at sim.Cycle, a1, a2 int64) {
	pr.phases.Add(kind, at, at, a1, a2)
}

// liveStall is stall restricted to the live nodes of an elastic run: dead
// engines record nothing (their tracks simply end at the iteration they
// died in).
func (pr *probes) liveStall(kind telemetry.SpanKind, it int, gnow, d sim.Cycle, bytes int64, live []bool) {
	if d <= 0 {
		return
	}
	pr.phases.Add(kind, gnow, gnow+d, int64(it), bytes)
	for i := range pr.node {
		if live[i] {
			pr.node[i].Add(kind, gnow, gnow+d, int64(it), 0)
		}
	}
}

// liveCompute is superstepCompute restricted to live nodes.
func (pr *probes) liveCompute(it int, gnow sim.Cycle, durs []sim.Cycle, live []bool, max sim.Cycle, buffered bool) {
	for i := range pr.node {
		if !live[i] {
			continue
		}
		pr.place(i, it, gnow, buffered)
		if durs[i] < max {
			pr.node[i].Add(telemetry.SpanIdle, gnow+durs[i], gnow+max, int64(it), 0)
		}
	}
	if max > 0 {
		pr.phases.Add(telemetry.SpanCompute, gnow, gnow+max, int64(it), 0)
	}
}

// probeMark captures the recording position across every track and the
// dependency stream, so a speculative window (an elastic overlapped
// segment) can be rewound when a fault discards its work.
type probeMark struct {
	tracks []int
	deps   int
}

func (pr *probes) mark() probeMark {
	ts := pr.c.Tracks()
	m := probeMark{tracks: make([]int, len(ts)), deps: pr.c.NumDeps()}
	for i, t := range ts {
		m.tracks[i] = t.Len()
	}
	return m
}

func (pr *probes) rewind(m probeMark) {
	for i, t := range pr.c.Tracks() {
		if i < len(m.tracks) {
			t.Truncate(m.tracks[i])
		}
	}
	pr.c.TruncateDeps(m.deps)
}

// seal records the end-of-run event-loop counters.
func (pr *probes) seal() {
	var ev int64
	var maxPend int
	for i := range pr.kern {
		ev += pr.kern[i].Dispatched
		if pr.kern[i].MaxPending > maxPend {
			maxPend = pr.kern[i].MaxPending
		}
	}
	pr.c.AddCounter("engine_events", ev)
	pr.c.AddCounter("engine_max_pending", int64(maxPend))
	if pr.loop.Dispatched > 0 {
		pr.c.AddCounter("overlap_events", pr.loop.Dispatched)
		pr.c.AddCounter("overlap_max_pending", int64(pr.loop.MaxPending))
	}
}
