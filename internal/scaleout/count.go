package scaleout

import (
	"sort"

	"nmppak/internal/dna"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/par"
	"nmppak/internal/readsim"
)

// Wire-format record sizes: a k-mer is one 8-byte word, a (k-mer, count)
// record adds a 4-byte count, and terminal-marker records are the same
// shape keyed by a (k-1)-mer.
const (
	countRecordBytes = 12
	graphRecordBytes = 12
)

// ShardedCount is the outcome of distributed k-mer counting: reads are
// split round-robin across nodes, each node extracts and locally
// pre-aggregates its k-mers (sort + dedup, PaKman's combining step), the
// partial counts travel all-to-all to their owners, and each owner merges
// and prunes. The union of the per-node results is byte-identical to a
// single-node kmer.Count run, which TestShardedCountMergeEquivalence
// asserts.
type ShardedCount struct {
	K     int
	Nodes int
	// Shards[i] holds exactly the k-mers owned by node i, in ascending
	// order, with the same pruning statistics kmer.Count would produce
	// for that subset.
	Shards []*kmer.Result

	ReadsPerNode     []int
	ExtractedPerNode []int64 // raw k-mer instances before local dedup
	RecordsToNode    []int64 // partial-count records each owner merges
	// CountExchange[src][dst] is the bytes of partial-count records node
	// src ships to owner dst (diagonal = locally retained, free).
	CountExchange [][]int64
}

// CountSharded runs the distributed counting pass. Partition, k and
// MinCount come from cfg; reads are split round-robin so every node gets a
// near-equal share regardless of input order.
func CountSharded(reads []readsim.Read, cfg Config) (*ShardedCount, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Nodes
	kc := kmer.Config{K: cfg.K, MinCount: cfg.MinCount}
	if err := kc.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Partitioner

	sc := &ShardedCount{
		K:                cfg.K,
		Nodes:            n,
		Shards:           make([]*kmer.Result, n),
		ReadsPerNode:     make([]int, n),
		ExtractedPerNode: make([]int64, n),
		RecordsToNode:    make([]int64, n),
		CountExchange:    mat(n),
	}
	for i := range reads {
		sc.ReadsPerNode[i%n]++
	}

	// Per-node extraction + local pre-aggregation, each node in parallel
	// (the intra-node parallelism of kmer.Count is already exercised by the
	// single-node path; here the unit of concurrency is the virtual node).
	// Buffers are pre-sized from read counts like kmer.Count's, and the
	// per-owner buckets are sorted flat vectors carved out of the sorted
	// local streams — no maps anywhere on the path.
	type bucketSet struct {
		recs [][]kmer.Counted  // by owner, each ascending
		tp   []kmer.TermCounts // terminal prefixes by key owner, ascending
		ts   []kmer.TermCounts // terminal suffixes by key owner, ascending
	}
	buckets := make([]bucketSet, n)
	par.ForIdx(n, cfg.Workers, func(src int) {
		total, terms := 0, 0
		for ri := src; ri < len(reads); ri += n {
			if c := reads[ri].Seq.Len() - cfg.K + 1; c > 0 {
				total += c
				terms++
			}
		}
		raw := make([]uint64, 0, total)
		tpRaw := make([]uint64, 0, terms)
		tsRaw := make([]uint64, 0, terms)
		for ri := src; ri < len(reads); ri += n {
			kmer.ExtractInto(&raw, &tpRaw, &tsRaw, reads[ri].Seq, cfg.K)
		}
		sc.ExtractedPerNode[src] = int64(len(raw))
		kmer.ParallelSortUint64(raw, 1)
		tpc := kmer.CountTerms(tpRaw, 1)
		tsc := kmer.CountTerms(tsRaw, 1)

		bs := bucketSet{
			recs: make([][]kmer.Counted, n),
			tp:   make([]kmer.TermCounts, n),
			ts:   make([]kmer.TermCounts, n),
		}
		i := 0
		for i < len(raw) {
			j := i + 1
			for j < len(raw) && raw[j] == raw[i] {
				j++
			}
			km := dna.Kmer(raw[i])
			d := p.Owner(km, cfg.K, n)
			bs.recs[d] = append(bs.recs[d], kmer.Counted{Km: km, Count: uint32(j - i)})
			i = j
		}
		for _, e := range tpc {
			d := p.Owner(e.Km, cfg.K-1, n)
			bs.tp[d] = append(bs.tp[d], e)
		}
		for _, e := range tsc {
			d := p.Owner(e.Km, cfg.K-1, n)
			bs.ts[d] = append(bs.ts[d], e)
		}
		buckets[src] = bs
	})

	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			b := int64(len(buckets[src].recs[dst])) * countRecordBytes
			b += int64(len(buckets[src].tp[dst])+len(buckets[src].ts[dst])) * countRecordBytes
			sc.CountExchange[src][dst] = b
		}
	}

	// Owner-side merge: gather the src-sorted partial lists (total size
	// known up front), re-sort, sum runs, prune. Pruning after the exchange
	// sees the complete count of every owned k-mer, so it is exactly the
	// single-node threshold.
	par.ForIdx(n, cfg.Workers, func(dst int) {
		total := 0
		for src := 0; src < n; src++ {
			total += len(buckets[src].recs[dst])
		}
		recs := make([]kmer.Counted, 0, total)
		tpLists := make([]kmer.TermCounts, n)
		tsLists := make([]kmer.TermCounts, n)
		for src := 0; src < n; src++ {
			recs = append(recs, buckets[src].recs[dst]...)
			tpLists[src] = buckets[src].tp[dst]
			tsLists[src] = buckets[src].ts[dst]
		}
		sc.RecordsToNode[dst] = int64(len(recs))
		kmer.SortCounted(recs)
		res := &kmer.Result{
			K:          cfg.K,
			TermPrefix: kmer.MergeTerms(tpLists),
			TermSuffix: kmer.MergeTerms(tsLists),
		}
		i := 0
		for i < len(recs) {
			j := i + 1
			c := recs[i].Count
			for j < len(recs) && recs[j].Km == recs[i].Km {
				c += recs[j].Count
				j++
			}
			res.TotalExtracted += int64(c)
			if c >= max32(cfg.MinCount, 1) {
				res.Kmers = append(res.Kmers, kmer.Counted{Km: recs[i].Km, Count: c})
			} else {
				res.PrunedKinds++
				res.PrunedMass += int64(c)
			}
			i = j
		}
		sc.Shards[dst] = res
	})
	return sc, nil
}

// Merge reassembles the global counting result from the shards; the output
// is ordered and structured exactly like kmer.Count's.
func (sc *ShardedCount) Merge() *kmer.Result {
	res := &kmer.Result{K: sc.K}
	total := 0
	tpLists := make([]kmer.TermCounts, 0, len(sc.Shards))
	tsLists := make([]kmer.TermCounts, 0, len(sc.Shards))
	for _, sh := range sc.Shards {
		total += len(sh.Kmers)
		tpLists = append(tpLists, sh.TermPrefix)
		tsLists = append(tsLists, sh.TermSuffix)
	}
	res.Kmers = make([]kmer.Counted, 0, total)
	for _, sh := range sc.Shards {
		res.Kmers = append(res.Kmers, sh.Kmers...)
		res.TotalExtracted += sh.TotalExtracted
		res.PrunedKinds += sh.PrunedKinds
		res.PrunedMass += sh.PrunedMass
	}
	kmer.SortCounted(res.Kmers)
	res.TermPrefix = kmer.MergeTerms(tpLists)
	res.TermSuffix = kmer.MergeTerms(tsLists)
	return res
}

// OwnedKmers sums the distinct k-mers surviving on each node.
func (sc *ShardedCount) OwnedKmers() int64 {
	var t int64
	for _, sh := range sc.Shards {
		t += int64(len(sh.Kmers))
	}
	return t
}

// ShardGraphs is the outcome of distributed MacroNode construction: every
// counted k-mer is shipped to the owners of its leading and trailing
// (k-1)-mers (PaKman's second all-to-all), and each node builds the
// MacroNodes it owns. The shard graphs tile the single-node PaK-graph:
// their key sets partition it and every node is structurally identical.
type ShardGraphs struct {
	Graphs []*pakgraph.Graph
	// GraphExchange[src][dst] is the construction-exchange traffic; a
	// k-mer whose two key owners coincide is shipped once.
	GraphExchange [][]int64
	RecvPerNode   []int64 // construction records each node processes
}

// graphRec is one k-mer delivered to a key owner, with the roles it plays
// there (a k-mer is a suffix extension of its leading (k-1)-mer's node and
// a prefix extension of its trailing one's; both keys may be owned by the
// same node).
type graphRec struct {
	km       dna.Kmer
	count    uint32
	sufAtPre bool // owner holds Prefix(km): add suffix extension
	preAtSuf bool // owner holds Suffix(km): add prefix extension
}

// BuildShardGraphs runs distributed MacroNode construction over a sharded
// count.
func (sc *ShardedCount) BuildShardGraphs(cfg Config) (*ShardGraphs, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := sc.Nodes
	p := cfg.Partitioner
	sg := &ShardGraphs{
		Graphs:        make([]*pakgraph.Graph, n),
		GraphExchange: mat(n),
		RecvPerNode:   make([]int64, n),
	}
	buckets := make([][][]graphRec, n) // [src][dst]
	par.ForIdx(n, cfg.Workers, func(src int) {
		bs := make([][]graphRec, n)
		for _, kc := range sc.Shards[src].Kmers {
			po := p.Owner(kc.Km.Prefix(), sc.K-1, n)
			so := p.Owner(kc.Km.Suffix(sc.K), sc.K-1, n)
			if po == so {
				bs[po] = append(bs[po], graphRec{km: kc.Km, count: kc.Count, sufAtPre: true, preAtSuf: true})
			} else {
				bs[po] = append(bs[po], graphRec{km: kc.Km, count: kc.Count, sufAtPre: true})
				bs[so] = append(bs[so], graphRec{km: kc.Km, count: kc.Count, preAtSuf: true})
			}
		}
		buckets[src] = bs
	})
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			sg.GraphExchange[src][dst] = int64(len(buckets[src][dst])) * graphRecordBytes
		}
	}
	par.ForIdx(n, cfg.Workers, func(dst int) {
		var recs []graphRec
		for src := 0; src < n; src++ {
			recs = append(recs, buckets[src][dst]...)
		}
		sg.RecvPerNode[dst] = int64(len(recs))
		// Ascending k-mer order reproduces pakgraph.Build's insertion
		// order within every owned node, so the shard graphs are
		// structurally identical to the corresponding single-node slices.
		sort.Slice(recs, func(i, j int) bool { return recs[i].km < recs[j].km })
		g := &pakgraph.Graph{K: sc.K, Nodes: make(map[dna.Kmer]*pakgraph.MacroNode, len(recs))}
		node := func(key dna.Kmer) *pakgraph.MacroNode {
			mn := g.Nodes[key]
			if mn == nil {
				mn = &pakgraph.MacroNode{Key: key}
				g.Nodes[key] = mn
			}
			return mn
		}
		for _, r := range recs {
			if r.sufAtPre {
				mn := node(r.km.Prefix())
				pakgraph.AddExt(&mn.Suffixes, baseSeq(r.km.Last()), r.count, false)
			}
			if r.preAtSuf {
				mn := node(r.km.Suffix(sc.K))
				pakgraph.AddExt(&mn.Prefixes, baseSeq(r.km.First(sc.K)), r.count, false)
			}
		}
		for _, mn := range g.Nodes {
			mn.Rewire()
		}
		sg.Graphs[dst] = g
	})
	return sg, nil
}

// TotalMacroNodes sums the shard graph sizes; key ownership partitions the
// global graph, so this equals the single-node pakgraph.Build node count.
func (sg *ShardGraphs) TotalMacroNodes() int {
	t := 0
	for _, g := range sg.Graphs {
		t += g.Len()
	}
	return t
}

var singleBase [4]dna.Seq

func init() {
	for b := 0; b < 4; b++ {
		singleBase[b] = dna.FromBases([]dna.Base{dna.Base(b)})
	}
}

func baseSeq(b dna.Base) dna.Seq { return singleBase[b&3] }

func mat(n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	return m
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
