package scaleout

import (
	"reflect"
	"testing"

	"nmppak/internal/sim"
	"nmppak/internal/topo"
)

// parTestRuntime builds a runtime over a small live trace with the given
// worker count and overlap discipline.
func parTestRuntime(t *testing.T, cfg Config, tr *ShardedTrace) *runtime {
	t.Helper()
	net, err := cfg.Topo.Build(cfg.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := newRuntime(tr, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestParallelGate pins when the conservative-PDES path engages: a
// multi-node run with more than one effective worker takes it — windowed
// chunked supersteps for BSP, the lookahead window protocol for overlap —
// while Workers==1 and single-node machines fall back to the serial
// scheduler. The windowed flag doubles as the witness that the parallel
// driver actually ran (it trips the protocol panic if the serial path
// were to re-enter stepping).
func TestParallelGate(t *testing.T) {
	reads := testReads(t, 12_000)
	tr := testTrace(t, reads, 32, 3)

	run := func(nodes, workers int, overlap bool) *runtime {
		cfg := DefaultConfig(nodes)
		cfg.Overlap = overlap
		cfg.Workers = workers
		st := ShardTrace(tr, nodes, cfg.Partitioner)
		rt := parTestRuntime(t, cfg, st)
		rt.run()
		return rt
	}

	if rt := run(4, 4, true); !rt.windowed {
		t.Error("overlap/4 nodes/4 workers: serial path taken, want parallel")
	}
	if rt := run(4, 1, true); rt.windowed {
		t.Error("Workers=1: parallel path taken, want serial fallback")
	}
	if rt := run(1, 4, true); rt.windowed {
		t.Error("single node: parallel path taken, want serial fallback")
	}
	if rt := run(4, 4, false); !rt.windowed {
		t.Error("BSP/4 nodes/4 workers: serial supersteps taken, want windowed chunks")
	}
	if rt := run(4, 1, false); rt.windowed {
		t.Error("BSP Workers=1: windowed path taken, want serial fallback")
	}
	if rt := run(1, 4, false); rt.windowed {
		t.Error("BSP single node: windowed path taken, want serial fallback")
	}
}

// TestPairLookaheadWidensHorizon pins the point of the per-pair lookahead
// matrix: on distance-varying topologies the windowed horizons computed
// from PairMinLatency are never below — and for at least one window
// strictly above — the horizons a flat MinLatency matrix would give. A
// wider horizon means the macro loop drains further per window, i.e. the
// route-aware bounds buy real scheduling slack, not just safety.
func TestPairLookaheadWidensHorizon(t *testing.T) {
	reads := testReads(t, 12_000)
	tr := testTrace(t, reads, 32, 3)
	const nodes = 8

	for name, tc := range map[string]topo.Config{
		"torus":     topo.Torus(0, 0),
		"dragonfly": topo.DragonflyGroups(0),
	} {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(nodes)
			cfg.Overlap = true
			cfg.Workers = 4
			cfg.Topo = tc
			st := ShardTrace(tr, nodes, cfg.Partitioner)
			rt := parTestRuntime(t, cfg, st)
			rt.run() // fills rt.durations across the whole phase

			min := rt.net.MinLatency()
			pair := pairLookahead(rt.net, nodes)
			flat := make([][]sim.Cycle, nodes)
			widened := false
			for src := 0; src < nodes; src++ {
				flat[src] = make([]sim.Cycle, nodes)
				for dst := 0; dst < nodes; dst++ {
					if dst == src {
						continue
					}
					flat[src][dst] = min
					if pair[src][dst] > min {
						widened = true
					}
				}
			}
			if !widened {
				t.Fatalf("%s: no pair bound exceeds the flat MinLatency %d", name, min)
			}

			// Replay the depth-1 window recurrence over the recorded
			// durations and compare the two horizon sequences.
			sb := cfg.NMP.SyncBarrierCycles
			lb := make([]sim.Cycle, nodes)
			le := make([]sim.Cycle, nodes)
			strict := false
			for r := 0; r < rt.iters-1; r++ {
				for i := 0; i < nodes; i++ {
					le[i] = lb[i] + rt.durations[i][r]
					lb[i] = le[i] + sb
				}
				hp := rt.horizon(r, pair, lb, le)
				hf := rt.horizon(r, flat, lb, le)
				if hp < hf {
					t.Fatalf("%s: window %d: per-pair horizon %d below flat horizon %d", name, r, hp, hf)
				}
				if hp > hf {
					strict = true
				}
			}
			if !strict {
				t.Errorf("%s: per-pair horizons never strictly above the flat bound — the matrix buys no slack", name)
			}
		})
	}
}

// TestParallelOutcomeMatchesSerial compares the two overlapped schedulers
// directly at the runtime layer — same sharded trace, same network —
// across every topology, including a Degraded wrapper with slowed and cut
// links (whose MinLatency delegates to the healthy bound).
func TestParallelOutcomeMatchesSerial(t *testing.T) {
	reads := testReads(t, 12_000)
	tr := testTrace(t, reads, 32, 3)
	const nodes = 8

	topos := map[string]topo.Config{
		"fullmesh":  topo.Default(),
		"torus":     topo.Torus(0, 0),
		"dragonfly": topo.DragonflyGroups(0),
	}
	for name, tc := range topos {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(nodes)
			cfg.Overlap = true
			cfg.Topo = tc
			st := ShardTrace(tr, nodes, cfg.Partitioner)

			scfg := cfg
			scfg.Workers = 1
			srt := parTestRuntime(t, scfg, st)
			want := srt.run()

			pcfg := cfg
			pcfg.Workers = 4
			prt := parTestRuntime(t, pcfg, st)
			got := prt.run()
			if !prt.windowed {
				t.Fatal("parallel runtime did not take the windowed path")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("parallel outcome diverges: %+v vs %+v", got.Phase, want.Phase)
			}
		})
	}

	t.Run("degraded", func(t *testing.T) {
		cfg := DefaultConfig(nodes)
		cfg.Overlap = true
		cfg.Topo = topo.Torus(0, 0)
		st := ShardTrace(tr, nodes, cfg.Partitioner)
		net, err := cfg.Topo.Build(nodes)
		if err != nil {
			t.Fatal(err)
		}
		degrade := func() *topo.Degraded {
			d := topo.NewDegraded(net)
			if err := d.Slow(0, 1, 0.5); err != nil {
				t.Fatal(err)
			}
			if err := d.CutRoute(2, 3); err != nil {
				t.Fatal(err)
			}
			if err := d.Verify(nil); err != nil {
				t.Fatal(err)
			}
			return d
		}

		scfg := cfg
		scfg.Workers = 1
		srt, err := newRuntime(st, degrade(), scfg)
		if err != nil {
			t.Fatal(err)
		}
		want := srt.run()

		pcfg := cfg
		pcfg.Workers = 4
		prt, err := newRuntime(st, degrade(), pcfg)
		if err != nil {
			t.Fatal(err)
		}
		got := prt.run()
		if !prt.windowed {
			t.Fatal("degraded network should still take the parallel path")
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("degraded parallel outcome diverges: %+v vs %+v", got.Phase, want.Phase)
		}
	})
}
