package scaleout

import (
	"nmppak/internal/dna"
	"nmppak/internal/trace"
)

// ShardedTrace is a global compaction trace split by MacroNode-key
// ownership: node i's sub-trace contains exactly the node visits, local
// TransferNode routes and destination updates of the keys it owns, while
// cross-node TransferNodes are lifted out of the sub-traces into a
// per-iteration halo-exchange byte matrix. Every sub-trace keeps all
// iterations (possibly empty) so the per-iteration lockstep of the
// distributed runtime lines up across nodes.
type ShardedTrace struct {
	Nodes  int
	Traces []*trace.Trace
	// Halo[it][src][dst] is the TransferNode bytes crossing from node src
	// to node dst during iteration it.
	Halo [][][]int64

	LocalTNs  int64 // TransferNodes whose source and destination share a node
	RemoteTNs int64 // TransferNodes crossing the interconnect
	HaloBytes int64
}

// shardIteration splits one global iteration across n nodes under ownerOf
// (a pure key -> node assignment): per-node sub-iterations carry the node
// visits, local transfers and updates of the keys each node owns, while
// cross-node TransferNode bytes accumulate into halo[src][dst]. The
// returned counters split transfers into local and remote; haloBytes is
// the remote payload total. This is the unit of work ShardTrace applies
// to every iteration at once and the rebalancing runtime applies one
// iteration at a time, between migrations.
func shardIteration(iter *trace.Iteration, n int, ownerOf func(dna.Kmer) int, halo [][]int64) (subs []trace.Iteration, localTNs, remoteTNs, haloBytes int64) {
	owner := make([]int, len(iter.Nodes))
	local := make([]int32, len(iter.Nodes))
	subs = make([]trace.Iteration, n)
	for i := range iter.Nodes {
		o := ownerOf(iter.Nodes[i].Key)
		owner[i] = o
		local[i] = int32(len(subs[o].Nodes))
		subs[o].Nodes = append(subs[o].Nodes, iter.Nodes[i])
	}
	for _, tn := range iter.Transfers {
		s, d := owner[tn.SrcIdx], owner[tn.DstIdx]
		if s == d {
			localTNs++
			subs[s].Transfers = append(subs[s].Transfers, trace.TransferOp{
				SrcIdx: local[tn.SrcIdx], DstIdx: local[tn.DstIdx],
				TNBytes: tn.TNBytes, SuffixSide: tn.SuffixSide,
			})
			continue
		}
		remoteTNs++
		halo[s][d] += int64(tn.TNBytes)
		haloBytes += int64(tn.TNBytes)
	}
	for _, u := range iter.Updates {
		o := owner[u.DstIdx]
		subs[o].Updates = append(subs[o].Updates, trace.UpdateOp{
			DstIdx: local[u.DstIdx], ReadBytes: u.ReadBytes, WriteBytes: u.WriteBytes,
		})
	}
	for o := 0; o < n; o++ {
		subs[o].Stats = iter.Stats
		subs[o].Quantiles = trace.BuildQuantiles(subs[o].Nodes)
	}
	return subs, localTNs, remoteTNs, haloBytes
}

// ShardTrace splits tr across n nodes under partitioner p. With n == 1 the
// single sub-trace reproduces tr exactly (same nodes, transfers, updates
// and quantile tables), which is what pins the N=1 scale-out result to the
// single-node nmp.Simulate outcome.
func ShardTrace(tr *trace.Trace, n int, p Partitioner) *ShardedTrace {
	k1 := tr.K - 1
	st := &ShardedTrace{
		Nodes:  n,
		Traces: make([]*trace.Trace, n),
		Halo:   make([][][]int64, len(tr.Iterations)),
	}
	for i := range st.Traces {
		st.Traces[i] = &trace.Trace{K: tr.K}
	}
	ownerOf := func(key dna.Kmer) int { return p.Owner(key, k1, n) }
	for it := range tr.Iterations {
		st.Halo[it] = mat(n)
		subs, l, r, hb := shardIteration(&tr.Iterations[it], n, ownerOf, st.Halo[it])
		st.LocalTNs += l
		st.RemoteTNs += r
		st.HaloBytes += hb
		for o := 0; o < n; o++ {
			if it == 0 {
				st.Traces[o].Quantiles = subs[o].Quantiles
			}
			st.Traces[o].Iterations = append(st.Traces[o].Iterations, subs[o])
		}
	}
	return st
}

// RemoteTNFrac is the fraction of all TransferNodes that cross the
// interconnect.
func (st *ShardedTrace) RemoteTNFrac() float64 {
	return remoteTNFrac(st.LocalTNs, st.RemoteTNs)
}

// remoteTNFrac is the remote share of a local/remote transfer split.
func remoteTNFrac(local, remote int64) float64 {
	t := local + remote
	if t == 0 {
		return 0
	}
	return float64(remote) / float64(t)
}
