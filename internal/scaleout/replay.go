package scaleout

import (
	"nmppak/internal/trace"
)

// ShardedTrace is a global compaction trace split by MacroNode-key
// ownership: node i's sub-trace contains exactly the node visits, local
// TransferNode routes and destination updates of the keys it owns, while
// cross-node TransferNodes are lifted out of the sub-traces into a
// per-iteration halo-exchange byte matrix. Every sub-trace keeps all
// iterations (possibly empty) so the per-iteration lockstep of the
// distributed runtime lines up across nodes.
type ShardedTrace struct {
	Nodes  int
	Traces []*trace.Trace
	// Halo[it][src][dst] is the TransferNode bytes crossing from node src
	// to node dst during iteration it.
	Halo [][][]int64

	LocalTNs  int64 // TransferNodes whose source and destination share a node
	RemoteTNs int64 // TransferNodes crossing the interconnect
	HaloBytes int64
}

// ShardTrace splits tr across n nodes under partitioner p. With n == 1 the
// single sub-trace reproduces tr exactly (same nodes, transfers, updates
// and quantile tables), which is what pins the N=1 scale-out result to the
// single-node nmp.Simulate outcome.
func ShardTrace(tr *trace.Trace, n int, p Partitioner) *ShardedTrace {
	k1 := tr.K - 1
	st := &ShardedTrace{
		Nodes:  n,
		Traces: make([]*trace.Trace, n),
		Halo:   make([][][]int64, len(tr.Iterations)),
	}
	for i := range st.Traces {
		st.Traces[i] = &trace.Trace{K: tr.K}
	}
	for it := range tr.Iterations {
		iter := &tr.Iterations[it]
		st.Halo[it] = mat(n)

		owner := make([]int, len(iter.Nodes))
		local := make([]int32, len(iter.Nodes))
		subs := make([]trace.Iteration, n)
		for i := range iter.Nodes {
			o := p.Owner(iter.Nodes[i].Key, k1, n)
			owner[i] = o
			local[i] = int32(len(subs[o].Nodes))
			subs[o].Nodes = append(subs[o].Nodes, iter.Nodes[i])
		}
		for _, tn := range iter.Transfers {
			s, d := owner[tn.SrcIdx], owner[tn.DstIdx]
			if s == d {
				st.LocalTNs++
				subs[s].Transfers = append(subs[s].Transfers, trace.TransferOp{
					SrcIdx: local[tn.SrcIdx], DstIdx: local[tn.DstIdx],
					TNBytes: tn.TNBytes, SuffixSide: tn.SuffixSide,
				})
				continue
			}
			st.RemoteTNs++
			st.Halo[it][s][d] += int64(tn.TNBytes)
			st.HaloBytes += int64(tn.TNBytes)
		}
		for _, u := range iter.Updates {
			o := owner[u.DstIdx]
			subs[o].Updates = append(subs[o].Updates, trace.UpdateOp{
				DstIdx: local[u.DstIdx], ReadBytes: u.ReadBytes, WriteBytes: u.WriteBytes,
			})
		}
		for o := 0; o < n; o++ {
			subs[o].Stats = iter.Stats
			subs[o].Quantiles = trace.BuildQuantiles(subs[o].Nodes)
			if it == 0 {
				st.Traces[o].Quantiles = subs[o].Quantiles
			}
			st.Traces[o].Iterations = append(st.Traces[o].Iterations, subs[o])
		}
	}
	return st
}

// RemoteTNFrac is the fraction of all TransferNodes that cross the
// interconnect.
func (st *ShardedTrace) RemoteTNFrac() float64 {
	t := st.LocalTNs + st.RemoteTNs
	if t == 0 {
		return 0
	}
	return float64(st.RemoteTNs) / float64(t)
}
