// Package scaleout models a multi-node NMP-PaK deployment: N virtual
// nodes, each a full single-node system (channels, PEs, host CPU —
// internal/nmp's model), joined by a routed, topology-aware interconnect
// (internal/topo). The paper evaluates one NMP node against a 1,024-node
// PaKman supercomputer run (§6.4); PaKman itself is natively an MPI
// assembler, and this package supplies the missing scale-out story by
// simulating its distributed structure end to end:
//
//  1. Reads are split round-robin across nodes; each node extracts and
//     pre-aggregates k-mers, ships partial counts to their hash- or
//     minimizer-determined owners (all-to-all #1), and the owners merge
//     and prune. The per-node results tile the single-node kmer.Count
//     output exactly (see CountSharded/Merge).
//  2. Counted k-mers travel to the owners of their boundary (k-1)-mers
//     (all-to-all #2) and every node builds the MacroNodes it owns
//     (BuildShardGraphs).
//  3. Iterative Compaction replays in per-iteration lockstep, BSP style:
//     each node runs its shard of the global trace on its own
//     internal/nmp system, cross-node TransferNodes are exchanged over
//     the interconnect at the iteration boundary (halo exchange), and a
//     log-tree barrier closes the iteration — the distributed analogue
//     of the paper's "both the CPU and NMP engines must operate on the
//     same iteration in lockstep".
//
// Timing is fully deterministic: software phases use an instruction-count
// model over exact operation counts, exchanges route hop-by-hop through
// the contended links of the configured topology (full mesh, 2D torus or
// dragonfly — see internal/topo) on the internal/sim event kernel, and
// the per-node replays are internal/nmp simulations. With Nodes == 1
// every exchange is empty and the compaction phase equals the single-node
// nmp.Simulate result cycle for cycle.
package scaleout

import (
	"fmt"
	"math"

	"nmppak/internal/dna"
	"nmppak/internal/fault"
	"nmppak/internal/nmp"
	"nmppak/internal/readsim"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// SoftwareModel prices the software pipeline stages (counting, merging,
// MacroNode construction) in 1.6 GHz cycles per unit of work. These are
// the scale-out analogue of cpumodel's per-node compute constants.
type SoftwareModel struct {
	ExtractCyclesPerKmer     float64 // sliding-window extraction, per instance
	SortCyclesPerKmer        float64 // local sort, per instance per log2(n)
	MergeCyclesPerRecord     float64 // owner-side merge of partial counts
	ConstructCyclesPerRecord float64 // MacroNode hash insert + extension merge
}

// DefaultSoftwareModel returns constants calibrated to the optimized
// (§4.5) software pipeline.
func DefaultSoftwareModel() SoftwareModel {
	return SoftwareModel{
		ExtractCyclesPerKmer:     4,
		SortCyclesPerKmer:        0.5,
		MergeCyclesPerRecord:     2,
		ConstructCyclesPerRecord: 24,
	}
}

// Config parameterizes a scale-out simulation.
type Config struct {
	Nodes    int
	K        int
	MinCount uint32
	// Workers bounds host parallelism while running the real sharded
	// software (not modeled time); <=0 means GOMAXPROCS.
	Workers int
	// PrestepDepth bounds how many iterations ahead of the conservative
	// window the parallel runtime pre-steps each node's engine per round
	// (depth-k pre-stepping); <= 0 means 1. Purely a host-side batching
	// knob — pre-stepping further is always safe because engine durations
	// are schedule-independent, so results, traces and checkpoint blobs
	// are identical at every depth. Like Workers it is excluded from
	// checkpoint identity.
	PrestepDepth int

	Partitioner Partitioner
	// Topo declares the interconnect: topology family, shape and per-link
	// parameters (see internal/topo). Every exchange and halo message is
	// routed hop-by-hop through its contended links.
	Topo topo.Config
	// Overlap selects the compaction-replay discipline: false (default)
	// runs BSP supersteps — compute, then exchange, then barrier — while
	// true streams each node's halo bytes as soon as it finishes an
	// iteration and lets the next iteration wait only on the deliveries it
	// depends on (see runtime.go). Counting and construction are bulk
	// all-to-alls either way.
	Overlap bool
	// NMP is the per-node hardware model; every virtual node runs a full
	// copy.
	NMP      nmp.Config
	Software SoftwareModel
	// CheckpointEvery > 0 captures a full checkpoint of the compaction
	// replay every that many iterations into an in-memory ring, pricing
	// each capture at blob-bytes / CheckpointBytesPerCycle. Recovery from
	// an injected node loss restores from the newest ring entry; 0 (the
	// default) disables periodic checkpointing — a loss then restarts the
	// compaction phase from iteration 0 on the survivors.
	CheckpointEvery int
	// CheckpointBytesPerCycle prices checkpoint capture and restore I/O;
	// <= 0 means DefaultCheckpointBytesPerCycle.
	CheckpointBytesPerCycle float64
	// Faults, when non-empty, is the deterministic fault plan injected
	// into the compaction replay (see internal/fault): node losses trigger
	// detection + restore + survivor re-partitioning, link events degrade
	// or cut interconnect channels in place. Either Faults or
	// CheckpointEvery switches Simulate to the elastic runtime
	// (elastic.go); with both zero the legacy runtimes run untouched.
	Faults *fault.Plan
	// Telemetry, when non-nil, collects the run's cycle-domain timeline —
	// per-node iteration/idle/stall spans, link occupancy windows, DRAM
	// bus windows and the runtime phase schedule (see internal/telemetry).
	// nil (the default) disables collection entirely: the simulated result
	// is cycle-exact and the hot paths allocation-identical with an
	// uninstrumented run. Like Workers, it does not affect checkpoint
	// identity. Pass a fresh (or Reset) collector per run.
	Telemetry *telemetry.Collector
}

// DefaultConfig returns an n-node system of paper-default NMP nodes
// joined by the default 25 GB/s mesh, hash-partitioned.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:       n,
		K:           32,
		MinCount:    3,
		Partitioner: HashPartitioner{},
		Topo:        topo.Default(),
		NMP:         nmp.DefaultConfig(),
		Software:    DefaultSoftwareModel(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("scaleout: Nodes must be >= 1, got %d", c.Nodes)
	}
	if c.K < 1 || c.K > dna.MaxK {
		return fmt.Errorf("scaleout: K must be in [1, %d], got %d", dna.MaxK, c.K)
	}
	if c.Workers < 0 {
		return fmt.Errorf("scaleout: Workers must be >= 0, got %d", c.Workers)
	}
	if c.PrestepDepth < 0 {
		return fmt.Errorf("scaleout: PrestepDepth must be >= 0, got %d", c.PrestepDepth)
	}
	if c.Partitioner == nil {
		return fmt.Errorf("scaleout: Partitioner must be set")
	}
	if rp, ok := c.Partitioner.(*RebalancePartitioner); ok {
		if c.Overlap {
			return fmt.Errorf("scaleout: RebalancePartitioner requires the BSP discipline (the migration decision is a global synchronization); unset Overlap")
		}
		if rp.M < 1 || rp.Every < 1 {
			return fmt.Errorf("scaleout: RebalancePartitioner needs M >= 1 and Every >= 1, got M=%d Every=%d (use NewRebalancePartitioner)", rp.M, rp.Every)
		}
		if c.elastic() {
			return fmt.Errorf("scaleout: RebalancePartitioner cannot run under the elastic runtime (its ownership history is not checkpointable); unset CheckpointEvery and Faults")
		}
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("scaleout: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	if c.CheckpointBytesPerCycle < 0 {
		return fmt.Errorf("scaleout: CheckpointBytesPerCycle must be >= 0, got %g", c.CheckpointBytesPerCycle)
	}
	if err := c.Faults.Validate(c.Nodes); err != nil {
		return fmt.Errorf("scaleout: %w", err)
	}
	if err := c.Topo.Validate(c.Nodes); err != nil {
		return err
	}
	if c.Overlap && c.Workers > 1 {
		// An explicitly parallel overlapped run needs a positive
		// lookahead window: the conservative-PDES scheduler may only
		// advance nodes ahead of their inbound senders by the network's
		// minimum send-to-delivery latency. Every current topology has
		// one (a message crosses at least two serializing links), so
		// this guards future zero-latency network models.
		if net, err := c.Topo.Build(c.Nodes); err == nil && net.MinLatency() <= 0 {
			return fmt.Errorf("scaleout: Workers=%d with Overlap needs a topology with positive MinLatency for conservative lookahead; %s has none", c.Workers, net.Name())
		}
	}
	return c.NMP.Validate()
}

// depth is the effective pre-step depth of the parallel window protocol:
// PrestepDepth iterations per round, minimum 1.
func (c Config) depth() int {
	if c.PrestepDepth < 1 {
		return 1
	}
	return c.PrestepDepth
}

// elastic reports whether the configuration routes the compaction replay
// through the elastic runtime (elastic.go): periodic checkpointing, a
// fault plan, or both. False keeps the legacy runtimes byte-for-byte on
// their existing paths.
func (c Config) elastic() bool {
	return c.CheckpointEvery > 0 || !c.Faults.Empty()
}

// PhaseCycles splits one pipeline phase into compute (slowest node),
// interconnect exchange, and barrier time.
type PhaseCycles struct {
	Compute  sim.Cycle
	Exchange sim.Cycle
	Barrier  sim.Cycle
}

// Total sums the phase.
func (p PhaseCycles) Total() sim.Cycle { return p.Compute + p.Exchange + p.Barrier }

// NodeStats is one virtual node's share of the work.
type NodeStats struct {
	Reads          int
	KmersExtracted int64
	KmersOwned     int
	MacroNodes     int
	CompactCycles  sim.Cycle // summed per-iteration busy time of this node
}

// Result is a scale-out simulation outcome.
type Result struct {
	Nodes       int
	Partitioner string
	Topology    string // Network.Name() of the configured interconnect

	Count     PhaseCycles // distributed k-mer counting
	Construct PhaseCycles // distributed MacroNode construction
	Compact   PhaseCycles // lockstep Iterative Compaction replay

	TotalCycles sim.Cycle
	Seconds     float64

	// Communication accounting (exchanges + interconnect barriers).
	CommCycles     sim.Cycle
	CommFraction   float64
	ExchangedBytes int64
	HaloBytes      int64
	RemoteTNFrac   float64

	// Imbalance is the slowest node's summed per-iteration compaction
	// time over the mean (1.0 = perfectly balanced).
	Imbalance float64

	// Rebalancing accounting (zero unless the partitioner is a
	// RebalancePartitioner): migrations performed between compaction
	// iterations and the MacroNode bytes they moved over the network.
	Rebalances    int
	MigratedBytes int64

	// Elastic-runtime accounting (zero unless CheckpointEvery or Faults
	// put the run on the elastic runtime — see elastic.go).
	Checkpoints      int       // periodic checkpoint captures
	CheckpointBytes  int64     // blob bytes captured
	CheckpointCycles sim.Cycle // capture stalls charged to the run
	FaultsInjected   int       // fault-plan events applied
	NodesLost        int       // nodes killed by the plan
	Recoveries       int       // rollback-recovery rounds performed
	LostIterations   int64     // node-iterations of discarded (re-executed) work
	RecoveryCycles   sim.Cycle // detection + restore stalls charged
	RepartitionBytes int64     // shard bytes migrated to new owners on recovery

	PerNode []NodeStats
	// NMP holds the per-node replay results (index = node).
	NMP []*nmp.Result
}

// Speedup computes r's speedup over a baseline (typically the 1-node run
// of the same workload). A missing or zero-cycle baseline — an empty
// trace, for instance — yields 0 rather than a meaningless ratio.
func (r *Result) Speedup(base *Result) float64 {
	if r.TotalCycles == 0 || base == nil || base.TotalCycles == 0 {
		return 0
	}
	return float64(base.TotalCycles) / float64(r.TotalCycles)
}

// Efficiency is Speedup divided by the node ratio, with the same
// zero-baseline guard.
func (r *Result) Efficiency(base *Result) float64 {
	if base == nil || r.Nodes == 0 {
		return 0
	}
	return r.Speedup(base) * float64(base.Nodes) / float64(r.Nodes)
}

// String renders a short summary.
func (r *Result) String() string {
	return fmt.Sprintf("scaleout: %d nodes (%s, %s), %.3f ms total, comm %.1f%%, remote TNs %.1f%%, imbalance %.2f",
		r.Nodes, r.Partitioner, r.Topology, r.Seconds*1e3, r.CommFraction*100, r.RemoteTNFrac*100, r.Imbalance)
}

// Simulate runs the full scale-out pipeline: distributed counting and
// MacroNode construction over reads (real software, modeled time) and the
// lockstep compaction replay of tr (captured once from the single-node
// execution, e.g. via nmppak.CaptureTrace or the experiments Context).
func Simulate(reads []readsim.Read, tr *trace.Trace, cfg Config) (*Result, error) {
	net, err := validateRun(tr, cfg)
	if err != nil {
		return nil, err
	}
	var pr *probes
	if cfg.Telemetry != nil {
		pr = newProbes(cfg.Telemetry, net, cfg)
	}
	res, err := runPrelude(reads, cfg, net, pr)
	if err != nil {
		return nil, err
	}

	// Phase 3: compaction replay on the distributed runtime — N stepwise
	// per-node engines and the interconnect on one shared event timeline,
	// scheduled BSP or overlapped per cfg.Overlap (see runtime.go). A
	// RebalancePartitioner switches to the dynamic-ownership runtime
	// (rebalance.go), which re-shards between iterations.
	var co *compactOutcome
	if cfg.elastic() {
		eo, err := runElastic(tr, net, cfg, res, pr)
		if err != nil {
			return nil, err
		}
		co = &eo.compactOutcome
		res.HaloBytes = eo.HaloBytes
		res.RemoteTNFrac = remoteTNFrac(eo.LocalTNs, eo.RemoteTNs)
		res.Checkpoints = eo.Checkpoints
		res.CheckpointBytes = eo.CheckpointBytes
		res.CheckpointCycles = eo.CheckpointCycles
		res.FaultsInjected = eo.FaultsInjected
		res.NodesLost = eo.NodesLost
		res.Recoveries = eo.Recoveries
		res.LostIterations = eo.LostIterations
		res.RecoveryCycles = eo.RecoveryCycles
		res.RepartitionBytes = eo.RepartitionBytes
	} else if rp, ok := cfg.Partitioner.(*RebalancePartitioner); ok {
		ro, err := runRebalanced(tr, net, cfg, rp, pr)
		if err != nil {
			return nil, err
		}
		co = &ro.compactOutcome
		res.HaloBytes = ro.HaloBytes
		res.RemoteTNFrac = remoteTNFrac(ro.LocalTNs, ro.RemoteTNs)
		res.Rebalances = ro.Rebalances
		res.MigratedBytes = ro.MigratedBytes
	} else {
		st := ShardTrace(tr, cfg.Nodes, cfg.Partitioner)
		res.HaloBytes = st.HaloBytes
		res.RemoteTNFrac = st.RemoteTNFrac()
		rt, err := newRuntime(st, net, cfg)
		if err != nil {
			return nil, err
		}
		rt.setProbes(pr)
		co = rt.run()
	}
	finalize(res, co)
	if pr != nil {
		pr.seal()
	}
	return res, nil
}

// validateRun performs the shared entry checks of Simulate, Checkpoint and
// Restore and builds the interconnect.
func validateRun(tr *trace.Trace, cfg Config) (topo.Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("scaleout: nil trace")
	}
	if tr.K != cfg.K {
		return nil, fmt.Errorf("scaleout: trace k=%d but config K=%d", tr.K, cfg.K)
	}
	return cfg.Topo.Build(cfg.Nodes)
}

// runPrelude executes the pre-compaction pipeline — distributed counting
// (phase 1) and MacroNode construction (phase 2) — and returns a Result
// with those phases and the per-node software statistics filled in. The
// checkpoint layer snapshots exactly these fields, so a restored run can
// skip the software phases entirely. A non-nil pr records the phase spans
// and the exchanges' link occupancy on the run's timeline.
func runPrelude(reads []readsim.Read, cfg Config, net topo.Network, pr *probes) (*Result, error) {
	n := cfg.Nodes
	sw := cfg.Software
	res := &Result{
		Nodes: n, Partitioner: cfg.Partitioner.Name(), Topology: net.Name(),
		PerNode: make([]NodeStats, n),
	}

	// Phase 1: distributed counting.
	sc, err := CountSharded(reads, cfg)
	if err != nil {
		return nil, err
	}
	var extract, merge sim.Cycle
	for i := 0; i < n; i++ {
		e := sc.ExtractedPerNode[i]
		c := sim.Cycle(sw.ExtractCyclesPerKmer*float64(e) + sw.SortCyclesPerKmer*float64(e)*log2(e))
		if c > extract {
			extract = c
		}
		m := sim.Cycle(sw.MergeCyclesPerRecord * float64(sc.RecordsToNode[i]))
		if m > merge {
			merge = m
		}
		res.PerNode[i].Reads = sc.ReadsPerNode[i]
		res.PerNode[i].KmersExtracted = e
		res.PerNode[i].KmersOwned = len(sc.Shards[i].Kmers)
	}
	var cx topo.ExchangeStats
	if pr != nil {
		cx = topo.ExchangeProbed(net, sc.CountExchange, pr.linkAt(extract+merge))
	} else {
		cx = topo.Exchange(net, sc.CountExchange)
	}
	res.Count = PhaseCycles{Compute: extract + merge, Exchange: cx.Cycles, Barrier: net.BarrierCycles()}
	res.ExchangedBytes += cx.TotalBytes

	// Phase 2: distributed MacroNode construction.
	sg, err := sc.BuildShardGraphs(cfg)
	if err != nil {
		return nil, err
	}
	var construct sim.Cycle
	for i := 0; i < n; i++ {
		c := sim.Cycle(sw.ConstructCyclesPerRecord * float64(sg.RecvPerNode[i]))
		if c > construct {
			construct = c
		}
		res.PerNode[i].MacroNodes = sg.Graphs[i].Len()
	}
	var gx topo.ExchangeStats
	if pr != nil {
		gx = topo.ExchangeProbed(net, sg.GraphExchange, pr.linkAt(res.Count.Total()+construct))
	} else {
		gx = topo.Exchange(net, sg.GraphExchange)
	}
	res.Construct = PhaseCycles{Compute: construct, Exchange: gx.Cycles, Barrier: net.BarrierCycles()}
	res.ExchangedBytes += gx.TotalBytes
	if pr != nil {
		pr.prelude(res)
	}
	return res, nil
}

// finalize folds a compaction outcome into the prelude result and derives
// the aggregate metrics.
func finalize(res *Result, co *compactOutcome) {
	n := res.Nodes
	res.NMP = co.NMP
	res.Compact = co.Phase
	res.ExchangedBytes += co.ExchangedBytes
	for i := 0; i < n; i++ {
		for _, d := range co.Durations[i] {
			res.PerNode[i].CompactCycles += d
		}
	}

	res.TotalCycles = res.Count.Total() + res.Construct.Total() + res.Compact.Total()
	res.Seconds = sim.Seconds(res.TotalCycles)
	// Communication = interconnect time: the exchanges plus the
	// interconnect share of every barrier (the NMP runtime's own sync
	// barrier exists on a single node too, so it stays out; in overlapped
	// mode Compact.Exchange is the exposed — unhidden — link time).
	res.CommCycles = res.Count.Exchange + res.Construct.Exchange + res.Compact.Exchange +
		res.Count.Barrier + res.Construct.Barrier + co.LinkBarrier
	if res.TotalCycles > 0 {
		res.CommFraction = float64(res.CommCycles) / float64(res.TotalCycles)
	}
	var sum sim.Cycle
	var slowest sim.Cycle
	for i := 0; i < n; i++ {
		sum += res.PerNode[i].CompactCycles
		if res.PerNode[i].CompactCycles > slowest {
			slowest = res.PerNode[i].CompactCycles
		}
	}
	if sum > 0 {
		res.Imbalance = float64(slowest) * float64(n) / float64(sum)
	}
}

// log2 returns log base 2 of x, 0 for x < 2.
func log2(x int64) float64 {
	if x < 2 {
		return 0
	}
	return math.Log2(float64(x))
}
