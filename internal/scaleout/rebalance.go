// Measurement-driven re-partitioning: a RebalancePartitioner starts from
// a static minimizer super-bucket assignment (the communication-friendly
// scheme) and lets the distributed runtime migrate whole super-buckets
// from measured stragglers to measured idle nodes between compaction
// iterations. Unlike BalancedPartitioner — which predicts load once from
// a counting sample — the rebalancer reacts to the busy times the
// runtime actually records (compactOutcome.Durations), so it corrects
// skew the static sample could not see (repeat families whose replay
// cost is out of proportion to their k-mer mass, drift as compaction
// drains the graph). Migration is not free: every MacroNode whose bucket
// moves is charged over the interconnect at its traced size before the
// next iteration begins.
package scaleout

import (
	"fmt"
	"sort"

	"nmppak/internal/dna"
	"nmppak/internal/nmp"
	"nmppak/internal/par"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// RebalancePartitioner assigns ownership by minimizer super-bucket (the
// BalancedBuckets-wide table every bucket scheme here shares) and marks
// the assignment as migratable: the distributed runtime re-shards the
// compaction replay between iterations, moving buckets off measured
// stragglers. Outside the compaction replay (counting, construction) the
// static initial assignment applies, so ownership stays a pure function
// of the key wherever nodes must agree without coordination.
type RebalancePartitioner struct {
	// M is the minimizer length defining the super-bucket migration unit.
	M int
	// Every is the rebalance period: ownership may change before
	// iterations Every, 2*Every, ... (>= 1).
	Every int
	// Trigger is the measured per-iteration imbalance (slowest node over
	// mean) below which a rebalance point leaves ownership alone; the
	// hysteresis keeps near-balanced replays from thrashing buckets back
	// and forth for marginal gains.
	Trigger float64
}

// NewRebalancePartitioner returns a rebalancing partitioner with m-mer
// buckets migrated every `every` iterations and the default 1.05
// imbalance trigger.
func NewRebalancePartitioner(m, every int) *RebalancePartitioner {
	if m < 1 {
		m = 1
	}
	if every < 1 {
		every = 1
	}
	return &RebalancePartitioner{M: m, Every: every, Trigger: 1.05}
}

// Name implements Partitioner.
func (p *RebalancePartitioner) Name() string {
	return fmt.Sprintf("rebalance%d/%d", p.M, p.Every)
}

// bucket maps a word to its minimizer super-bucket.
func (p *RebalancePartitioner) bucket(key dna.Kmer, kk int) int {
	return superBucket(key, kk, p.M)
}

// Owner implements Partitioner with the static initial assignment
// (initialOwner; the runtime's ownership table starts there and diverges
// as measurements arrive).
func (p *RebalancePartitioner) Owner(key dna.Kmer, kk, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	return initialOwner(p.bucket(key, kk), nodes)
}

// rebalanceOutcome extends the compaction outcome with the traffic and
// migration accounting the dynamic runtime produces itself (the static
// path reads these off ShardTrace).
type rebalanceOutcome struct {
	compactOutcome
	LocalTNs      int64
	RemoteTNs     int64
	HaloBytes     int64
	Rebalances    int
	MigratedBytes int64
}

// migrate mutates the bucket ownership table, moving buckets from
// predicted stragglers to predicted idle nodes so that the end-of-run
// cumulative busy times — the quantity Result.Imbalance measures — meet
// in the middle. cum is the measured cumulative busy time per node, dur
// the last iteration's measured busy time, weight the last iteration's
// per-bucket traced MacroNode bytes (the proxy attributing a node's
// measured time to its buckets), and decay the trace-derived ratio of
// remaining work to the last iteration's work, which converts a one-
// iteration transfer into its effect on the rest of the run. Returns
// whether any bucket moved. Deterministic: ties break on the lower node
// index and lower bucket index.
func (p *RebalancePartitioner) migrate(table []uint16, cum, dur []sim.Cycle, weight []int64, decay float64, nodes int) bool {
	if decay <= 0 {
		return false // nothing left to rebalance for
	}
	// Predicted final cumulative busy time: what is banked plus the last
	// iteration's rate carried over the estimated remaining work.
	est := make([]float64, nodes)
	for i := range est {
		est[i] = float64(cum[i]) + float64(dur[i])*decay
	}
	load := make([]int64, nodes) // weight currently attributed per node
	for b, w := range weight {
		load[table[b]] += w
	}
	// Buckets grouped per node, heaviest first, for donor scans.
	byNode := make([][]int, nodes)
	for b, w := range weight {
		if w > 0 {
			o := table[b]
			byNode[o] = append(byNode[o], b)
		}
	}
	for _, bs := range byNode {
		sort.Slice(bs, func(i, j int) bool {
			if weight[bs[i]] != weight[bs[j]] {
				return weight[bs[i]] > weight[bs[j]]
			}
			return bs[i] < bs[j]
		})
	}
	moved := false
	for round := 0; round < nodes; round++ {
		donor, idle := 0, 0
		var mean float64
		for i := range est {
			mean += est[i]
			if est[i] > est[donor] {
				donor = i
			}
			if est[i] < est[idle] {
				idle = i
			}
		}
		mean /= float64(nodes)
		if mean <= 0 || est[donor] < p.Trigger*mean || donor == idle {
			break
		}
		if load[donor] <= 0 || dur[donor] <= 0 {
			break // no attributable weight to move
		}
		// cycles-per-weight rate of the donor, carried over the remaining
		// run, converts bucket weight into predicted final busy time; move
		// buckets until half the gap closes.
		rate := float64(dur[donor]) / float64(load[donor]) * decay
		target := (est[donor] - est[idle]) / 2
		var transferred float64
		rest := byNode[donor][:0]
		for _, b := range byNode[donor] {
			w := float64(weight[b]) * rate
			if transferred < target && transferred+w <= target*2 {
				table[b] = uint16(idle)
				load[donor] -= weight[b]
				load[idle] += weight[b]
				transferred += w
				byNode[idle] = append(byNode[idle], b)
				moved = true
				continue
			}
			rest = append(rest, b)
		}
		byNode[donor] = rest
		if transferred == 0 {
			break // every remaining donor bucket overshoots; stop
		}
		// Restore the recipient's heaviest-first order (the received batch
		// was appended out of place) in case a later round makes it the
		// donor.
		sort.Slice(byNode[idle], func(i, j int) bool {
			bi, bj := byNode[idle][i], byNode[idle][j]
			if weight[bi] != weight[bj] {
				return weight[bi] > weight[bj]
			}
			return bi < bj
		})
		est[donor] -= transferred
		est[idle] += transferred
	}
	return moved
}

// rebalanceRun is the dynamic-ownership compaction runtime, restructured
// so a run can be advanced iteration range by iteration range: runRebalanced
// drives it start to finish, while the checkpoint layer (checkpoint.go)
// stops mid-way, snapshots the mutable state (ownership table, measured
// busy times, bucket weights, engines, accounting) and later reconstructs
// an equivalent run that finishes bit-identically.
type rebalanceRun struct {
	tr  *trace.Trace
	net topo.Network
	cfg Config
	p   *RebalancePartitioner

	n, iters, k1 int

	out     *rebalanceOutcome
	traces  []*trace.Trace
	engines []*nmp.Engine

	table []uint16 // bucket -> owning node (mutated by migrations)
	// iterBytes[it] is the global traced MacroNode bytes remaining from
	// iteration it on; the suffix sums estimate how much work remains at
	// each rebalance point (compaction decays fast, so "rest of run over
	// last iteration" is the honest horizon for a migration's payoff).
	iterBytes []float64

	lastDur []sim.Cycle // previous iteration's measured busy time
	cum     []sim.Cycle // measured cumulative busy time
	weight  []int64     // previous iteration's per-bucket bytes
	prev    []uint16    // scratch: ownership before the last migration

	compute, exchange sim.Cycle

	// pr is the run's telemetry glue; nil disables every recording site.
	pr *probes
}

// setProbes attaches (or, with nil, skips) the run's telemetry glue.
func (rr *rebalanceRun) setProbes(pr *probes) {
	rr.pr = pr
	if pr != nil {
		pr.attach(rr.engines)
	}
}

// newRebalanceRun prepares a fresh dynamic-ownership run: static initial
// assignment, empty per-node traces, engines at iteration 0.
func newRebalanceRun(tr *trace.Trace, net topo.Network, cfg Config, p *RebalancePartitioner) (*rebalanceRun, error) {
	rr := newRebalanceState(tr, net, cfg, p)
	for i := 0; i < rr.n; i++ {
		rr.traces[i] = &trace.Trace{K: tr.K}
		e, err := nmp.NewEngine(rr.traces[i], cfg.NMP)
		if err != nil {
			return nil, err
		}
		rr.engines[i] = e
	}
	for b := range rr.table {
		rr.table[b] = uint16(initialOwner(b, rr.n))
	}
	return rr, nil
}

// newRebalanceState allocates the run skeleton shared by the fresh and the
// restored constructors: everything derivable from the immutable inputs
// (the remaining-work suffix sums), plus zeroed mutable state.
func newRebalanceState(tr *trace.Trace, net topo.Network, cfg Config, p *RebalancePartitioner) *rebalanceRun {
	n := cfg.Nodes
	iters := len(tr.Iterations)
	rr := &rebalanceRun{
		tr: tr, net: net, cfg: cfg, p: p,
		n: n, iters: iters, k1: tr.K - 1,
		out:       &rebalanceOutcome{},
		traces:    make([]*trace.Trace, n),
		engines:   make([]*nmp.Engine, n),
		table:     make([]uint16, BalancedBuckets),
		iterBytes: make([]float64, iters+1),
		lastDur:   make([]sim.Cycle, n),
		cum:       make([]sim.Cycle, n),
		weight:    make([]int64, BalancedBuckets),
		prev:      make([]uint16, BalancedBuckets),
	}
	rr.out.Durations = make([][]sim.Cycle, n)
	for i := 0; i < n; i++ {
		rr.out.Durations[i] = make([]sim.Cycle, iters)
	}
	for it := iters - 1; it >= 0; it-- {
		var b float64
		for i := range tr.Iterations[it].Nodes {
			nd := &tr.Iterations[it].Nodes[i]
			b += float64(nd.D1 + nd.D2)
		}
		rr.iterBytes[it] = b + rr.iterBytes[it+1]
	}
	return rr
}

// migrateAt runs the iteration-it migration decision against the
// measurements accumulated so far and, when buckets move, prices the
// transfer over the network. Returns the advanced telemetry clock.
//
// Every live MacroNode appears in its iteration's trace (P1 visits the
// full live population each iteration), so pricing the move off
// iter.Nodes charges every node a bucket move relocates; a migration
// that moves only drained buckets (no live nodes left) is a no-op and
// is not counted.
func (rr *rebalanceRun) migrateAt(it int, gnow sim.Cycle) sim.Cycle {
	n, out, p, pr := rr.n, rr.out, rr.p, rr.pr
	iter := &rr.tr.Iterations[it]
	copy(rr.prev, rr.table)
	lastBytes := rr.iterBytes[it-1] - rr.iterBytes[it]
	decay := 0.0
	if lastBytes > 0 {
		decay = rr.iterBytes[it] / lastBytes
	}
	if !p.migrate(rr.table, rr.cum, rr.lastDur, rr.weight, decay, n) {
		return gnow
	}
	move := mat(n)
	for i := range iter.Nodes {
		nd := &iter.Nodes[i]
		b := p.bucket(nd.Key, rr.k1)
		if rr.prev[b] != rr.table[b] {
			move[rr.prev[b]][rr.table[b]] += int64(nd.D1 + nd.D2)
		}
	}
	var mx topo.ExchangeStats
	if pr != nil {
		mx = topo.ExchangeProbed(rr.net, move, pr.linkAt(gnow))
	} else {
		mx = topo.Exchange(rr.net, move)
	}
	if mx.TotalBytes > 0 {
		rr.exchange += mx.Cycles
		out.ExchangedBytes += mx.TotalBytes
		out.MigratedBytes += mx.TotalBytes
		out.Rebalances++
		if pr != nil {
			gnow = pr.stall(telemetry.SpanMigration, it, gnow, mx.Cycles, mx.TotalBytes)
		}
	}
	return gnow
}

// shard slices iteration it across the nodes under the current ownership
// table: the halo matrix is returned, the per-node sub-iterations are
// appended to the node traces and the traffic counters accumulate.
func (rr *rebalanceRun) shard(it int) [][]int64 {
	halo := mat(rr.n)
	subs, l, r, hb := shardIteration(&rr.tr.Iterations[it], rr.n, rr.ownerOf, halo)
	rr.out.LocalTNs += l
	rr.out.RemoteTNs += r
	rr.out.HaloBytes += hb
	for o := 0; o < rr.n; o++ {
		if it == 0 {
			rr.traces[o].Quantiles = subs[o].Quantiles
		}
		rr.traces[o].Iterations = append(rr.traces[o].Iterations, subs[o])
	}
	return halo
}

// refreshWeights rebuilds the per-bucket bytes that attribute iteration
// it's measured time for the next migration decision.
func (rr *rebalanceRun) refreshWeights(it int) {
	clear(rr.weight)
	for i := range rr.tr.Iterations[it].Nodes {
		nd := &rr.tr.Iterations[it].Nodes[i]
		rr.weight[rr.p.bucket(nd.Key, rr.k1)] += int64(nd.D1 + nd.D2)
	}
}

// parallelOK reports whether the advancement takes the windowed chunked
// path (advanceWindowed) — cycle-exact either way, like every parallel
// dispatch in this package.
func (rr *rebalanceRun) parallelOK() bool {
	return par.Threads(rr.cfg.Workers) > 1 && rr.n > 1
}

// advance executes iterations [from, to): between iterations, re-fit
// ownership to the measured busy times and charge the moved MacroNodes
// over the network (straggler -> new owner); then shard the iteration
// under the current table, step every engine, and refresh the measurement
// state the next migration decision reads.
func (rr *rebalanceRun) advance(from, to int) {
	if rr.parallelOK() {
		rr.advanceWindowed(from, to)
		return
	}
	n, out := rr.n, rr.out
	pr := rr.pr
	lb := rr.net.BarrierCycles()
	sb := rr.cfg.NMP.SyncBarrierCycles
	var gnow sim.Cycle
	if pr != nil {
		gnow = pr.bspStart(rr.compute, rr.exchange, from, rr.iters, lb, sb)
	}
	for it := from; it < to; it++ {
		if it > 0 && it%rr.p.Every == 0 && n > 1 {
			gnow = rr.migrateAt(it, gnow)
		}
		halo := rr.shard(it)

		par.ForIdx(n, rr.cfg.Workers, func(i int) {
			e := rr.engines[i]
			if pr != nil {
				pr.beforeStep(i, e)
			}
			ti := e.StepIteration(e.NextStart())
			out.Durations[i][it] = ti.End - ti.Start
			if pr != nil {
				pr.afterStep(i, e, ti)
			}
		})
		var slowest sim.Cycle
		maxIdx := 0
		for i := 0; i < n; i++ {
			rr.lastDur[i] = out.Durations[i][it]
			rr.cum[i] += rr.lastDur[i]
			if rr.lastDur[i] > slowest {
				slowest = rr.lastDur[i]
				maxIdx = i
			}
		}
		rr.compute += slowest
		var hx topo.ExchangeStats
		if pr != nil {
			gnow = pr.superstepCompute(it, gnow, rr.lastDur, slowest, false)
			hx = topo.ExchangeProbed(rr.net, halo, pr.linkAt(gnow))
		} else {
			hx = topo.Exchange(rr.net, halo)
		}
		rr.exchange += hx.Cycles
		out.ExchangedBytes += hx.TotalBytes
		if pr != nil {
			gnow = pr.superstepComm(it, rr.iters, gnow, hx, lb, sb, maxIdx)
		}

		rr.refreshWeights(it)
	}
}

// advanceWindowed is advance on the window protocol of
// runtime_parallel.go: migrations are window barriers — the ownership
// table is frozen between them, so the shard feed and the engine
// stepping of every iteration inside a window are already determined at
// its start. Each window (further chunked by Config.PrestepDepth)
// pre-shards its iterations, pre-steps all engines across the worker
// pool, then drains the measurement refresh and exchange/barrier pricing
// serially in the exact serial order — cycle-exact and byte-identical in
// traces, results and checkpoints.
func (rr *rebalanceRun) advanceWindowed(from, to int) {
	n, out, p := rr.n, rr.out, rr.p
	pr := rr.pr
	if pr != nil && pr.buf == nil {
		pr.enableBuffer(n, rr.iters)
	}
	k := rr.cfg.depth()
	lb := rr.net.BarrierCycles()
	sb := rr.cfg.NMP.SyncBarrierCycles
	var gnow sim.Cycle
	if pr != nil {
		gnow = pr.bspStart(rr.compute, rr.exchange, from, rr.iters, lb, sb)
	}
	halos := make([][][]int64, 0, k)
	for it := from; it < to; {
		if it > 0 && it%p.Every == 0 && n > 1 {
			gnow = rr.migrateAt(it, gnow)
		}
		// Window: up to k iterations, never crossing the next migration
		// boundary (a migration re-reads the measurements the drain below
		// refreshes, and rewrites the table the shard feed reads).
		hi := it + k
		if next := (it/p.Every + 1) * p.Every; next < hi {
			hi = next
		}
		if hi > to {
			hi = to
		}
		halos = halos[:0]
		for j := it; j < hi; j++ {
			halos = append(halos, rr.shard(j))
		}
		par.ForIdx(n, rr.cfg.Workers, func(i int) {
			e := rr.engines[i]
			for j := it; j < hi; j++ {
				if pr != nil {
					pr.beforeStep(i, e)
				}
				ti := e.StepIteration(e.NextStart())
				out.Durations[i][j] = ti.End - ti.Start
				if pr != nil {
					pr.afterStep(i, e, ti)
					pr.bufferStep(i, j)
				}
			}
		})
		for j := it; j < hi; j++ {
			var slowest sim.Cycle
			maxIdx := 0
			for i := 0; i < n; i++ {
				rr.lastDur[i] = out.Durations[i][j]
				rr.cum[i] += rr.lastDur[i]
				if rr.lastDur[i] > slowest {
					slowest = rr.lastDur[i]
					maxIdx = i
				}
			}
			rr.compute += slowest
			var hx topo.ExchangeStats
			if pr != nil {
				gnow = pr.superstepCompute(j, gnow, rr.lastDur, slowest, true)
				hx = topo.ExchangeProbed(rr.net, halos[j-it], pr.linkAt(gnow))
			} else {
				hx = topo.Exchange(rr.net, halos[j-it])
			}
			rr.exchange += hx.Cycles
			out.ExchangedBytes += hx.TotalBytes
			if pr != nil {
				gnow = pr.superstepComm(j, rr.iters, gnow, hx, lb, sb, maxIdx)
			}
			rr.refreshWeights(j)
		}
		it = hi
	}
}

// ownerOf resolves a key under the current ownership table.
func (rr *rebalanceRun) ownerOf(key dna.Kmer) int {
	return int(rr.table[rr.p.bucket(key, rr.k1)])
}

// finish prices the closing barriers and seals the engines.
func (rr *rebalanceRun) finish() *rebalanceOutcome {
	out := rr.out
	linkBarrier, syncBarrier := bspBarriers(rr.net, rr.cfg, rr.iters)
	out.Phase = PhaseCycles{Compute: rr.compute, Exchange: rr.exchange, Barrier: linkBarrier + syncBarrier}
	out.LinkBarrier = linkBarrier
	out.NMP = make([]*nmp.Result, rr.n)
	for i, e := range rr.engines {
		out.NMP[i] = e.Result()
	}
	return out
}

// runRebalanced executes the compaction phase with dynamic ownership:
// BSP supersteps (the migration decision is itself a global
// synchronization, so the BSP barrier it needs is already there), with
// the bucket table re-fit between iterations from the measured per-node
// busy times, and the moved MacroNodes charged over the network at their
// traced sizes before the iteration that uses the new placement.
func runRebalanced(tr *trace.Trace, net topo.Network, cfg Config, p *RebalancePartitioner, pr *probes) (*rebalanceOutcome, error) {
	rr, err := newRebalanceRun(tr, net, cfg, p)
	if err != nil {
		return nil, err
	}
	rr.setProbes(pr)
	rr.advance(0, rr.iters)
	return rr.finish(), nil
}
