package scaleout

import (
	"bytes"
	"sort"
	"testing"

	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
)

// telemetryCase is one cell of the topology x discipline matrix the
// conservation invariants are checked over.
type telemetryCase struct {
	name   string
	mutate func(*Config)
}

func telemetryCases() []telemetryCase {
	return []telemetryCase{
		{"mesh-bsp", func(c *Config) {}},
		{"mesh-overlap", func(c *Config) { c.Overlap = true }},
		{"torus-bsp", func(c *Config) { c.Topo = topo.Torus(0, 0) }},
		{"torus-overlap", func(c *Config) { c.Topo = topo.Torus(0, 0); c.Overlap = true }},
		{"mesh-rebalance", func(c *Config) { c.Partitioner = NewRebalancePartitioner(12, 2) }},
	}
}

func telemetryConfig(mutate func(*Config)) Config {
	cfg := DefaultConfig(4)
	mutate(&cfg)
	return cfg
}

// byStart sorts a span slice by start cycle (stable on ties).
func byStart(spans []telemetry.Span) []telemetry.Span {
	s := append([]telemetry.Span(nil), spans...)
	sort.SliceStable(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	return s
}

// checkTiles asserts the spans partition [start, end) exactly: sorted,
// gap-free, overlap-free.
func checkTiles(t *testing.T, what string, spans []telemetry.Span, start, end sim.Cycle) {
	t.Helper()
	at := start
	for i, s := range byStart(spans) {
		if s.Start != at {
			t.Fatalf("%s: span %d (%v) starts at %d, want %d (gap or overlap)", what, i, s.Kind, s.Start, at)
		}
		if s.End < s.Start {
			t.Fatalf("%s: span %d (%v) ends before it starts: [%d, %d)", what, i, s.Kind, s.Start, s.End)
		}
		at = s.End
	}
	if at != end {
		t.Fatalf("%s: spans end at %d, want %d", what, at, end)
	}
}

// The conservation invariants: per-resource spans never overlap, node
// busy+idle+stall tiles the compaction phase exactly, link occupancy
// windows match the Flight's store-and-forward duration for their bytes,
// DRAM bus windows sum to the channels' BusBusyCycles, the telemetry
// comm fraction reproduces the runtime's bit for bit — and collection
// itself never perturbs the simulated machine.
func TestTelemetryConservation(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)

	for _, tc := range telemetryCases() {
		t.Run(tc.name, func(t *testing.T) {
			base, err := Simulate(reads, tr, telemetryConfig(tc.mutate))
			if err != nil {
				t.Fatal(err)
			}

			cfg := telemetryConfig(tc.mutate)
			cfg.Telemetry = telemetry.New()
			res, err := Simulate(reads, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Collection must not perturb the model.
			if res.TotalCycles != base.TotalCycles || res.CommFraction != base.CommFraction {
				t.Fatalf("instrumented run differs: %d cycles / %v comm vs. %d / %v disabled",
					res.TotalCycles, res.CommFraction, base.TotalCycles, base.CommFraction)
			}
			if res.Compact != base.Compact {
				t.Fatalf("instrumented compact phase %+v != disabled %+v", res.Compact, base.Compact)
			}

			// The derived aggregate must reproduce the runtime's own
			// accounting exactly (not approximately).
			u := telemetry.Analyze(cfg.Telemetry)
			if u.Total != res.TotalCycles {
				t.Fatalf("telemetry horizon %d != TotalCycles %d", u.Total, res.TotalCycles)
			}
			if u.CommFraction != res.CommFraction {
				t.Fatalf("telemetry comm fraction %v != runtime %v", u.CommFraction, res.CommFraction)
			}

			net, err := cfg.Topo.Build(cfg.Nodes)
			if err != nil {
				t.Fatal(err)
			}
			compactStart := res.Count.Total() + res.Construct.Total()
			iterSpans := 0
			for _, trk := range cfg.Telemetry.Tracks() {
				switch trk.Kind {
				case telemetry.TrackRuntime:
					// The phase schedule tiles the whole run.
					checkTiles(t, "runtime phases", trk.Spans, 0, res.TotalCycles)
				case telemetry.TrackNode:
					// Busy + idle + stall tiles the compaction phase, and
					// the busy share is exactly the node's recorded
					// per-iteration compute.
					checkTiles(t, trk.Name, trk.Spans, compactStart, res.TotalCycles)
					var busy sim.Cycle
					for _, s := range trk.Spans {
						if s.Kind == telemetry.SpanIter {
							busy += s.End - s.Start
							iterSpans++
						}
					}
					if want := res.PerNode[trk.ID].CompactCycles; busy != want {
						t.Fatalf("%s: iteration spans sum to %d cycles, want CompactCycles %d", trk.Name, busy, want)
					}
				case telemetry.TrackLink:
					// Each occupancy window is exactly the link's
					// store-and-forward duration for its bytes, reserved at
					// or after request time, and windows never overlap.
					var at sim.Cycle
					for i, s := range byStart(trk.Spans) {
						if s.Start < at {
							t.Fatalf("%s: span %d overlaps its predecessor", trk.Name, i)
						}
						at = s.End
						if want := sim.Cycle(float64(s.Arg1)/net.BytesPerCycle()) + 1; s.End-s.Start != want {
							t.Fatalf("%s: span %d is %d cycles for %d bytes, want Dur %d",
								trk.Name, i, s.End-s.Start, s.Arg1, want)
						}
						if s.Arg1 <= 0 || sim.Cycle(s.Arg2) > s.Start {
							t.Fatalf("%s: span %d has bytes %d, request %d after start %d",
								trk.Name, i, s.Arg1, s.Arg2, s.Start)
						}
					}
				case telemetry.TrackDRAM:
					// Bus windows never overlap and sum exactly to the
					// channel's BusBusyCycles.
					node := trk.ID / cfg.NMP.Channels
					ch := trk.ID % cfg.NMP.Channels
					var busy sim.Cycle
					var at sim.Cycle
					for i, s := range byStart(trk.Spans) {
						if s.Start < at {
							t.Fatalf("%s: span %d overlaps its predecessor", trk.Name, i)
						}
						at = s.End
						busy += s.End - s.Start
					}
					if want := sim.Cycle(res.NMP[node].Mem[ch].BusBusyCycles); busy != want {
						t.Fatalf("%s: bus windows sum to %d cycles, want BusBusyCycles %d", trk.Name, busy, want)
					}
				}
			}
			if iterSpans == 0 {
				t.Fatal("no iteration spans recorded")
			}

			// The critical path must attribute every iteration.
			cp := telemetry.CriticalPath(cfg.Telemetry)
			if len(cp) == 0 {
				t.Fatal("no critical path")
			}
			for i, e := range cp {
				if e.Iter != i {
					t.Fatalf("critical path entry %d covers iteration %d", i, e.Iter)
				}
				if e.Compute < 0 || e.Wait < 0 {
					t.Fatalf("critical path entry %d has negative attribution: %+v", i, e)
				}
			}
		})
	}
}

// Two identical instrumented runs must serialize to byte-identical
// Chrome-trace JSON: collection is deterministic under the runtime's
// parallel stepping.
func TestTelemetryDeterministicTrace(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)

	for _, tc := range []telemetryCase{telemetryCases()[1], telemetryCases()[2]} {
		t.Run(tc.name, func(t *testing.T) {
			capture := func() []byte {
				cfg := telemetryConfig(tc.mutate)
				cfg.Telemetry = telemetry.New()
				if _, err := Simulate(reads, tr, cfg); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := cfg.Telemetry.WriteChrome(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			if !bytes.Equal(capture(), capture()) {
				t.Fatal("two identical runs produced different traces")
			}
		})
	}
}
