package scaleout

import (
	"strings"
	"testing"

	"nmppak/internal/nmp"
	"nmppak/internal/topo"
)

// Overlapped execution relaxes the BSP barriers without adding work, so
// on the same shards, trace and topology it must never lose — on the
// compaction phase it is scheduling, and therefore end to end. The
// property must hold on every topology: multi-hop routing changes how
// much link time there is to hide, not the direction of the comparison.
func TestOverlapNeverSlowerThanBSP(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	for _, tc := range []topo.Config{topo.Default(), topo.Torus(0, 0), topo.DragonflyGroups(0)} {
		for _, n := range []int{1, 2, 4, 8} {
			for _, p := range []Partitioner{HashPartitioner{}, NewMinimizerPartitioner(12)} {
				bsp := DefaultConfig(n)
				bsp.Partitioner = p
				bsp.Topo = tc
				ov := bsp
				ov.Overlap = true
				rb, err := Simulate(reads, tr, bsp)
				if err != nil {
					t.Fatal(err)
				}
				ro, err := Simulate(reads, tr, ov)
				if err != nil {
					t.Fatal(err)
				}
				if ro.Compact.Total() > rb.Compact.Total() {
					t.Fatalf("n=%d %s %s: overlapped compact %d cycles slower than BSP %d",
						n, rb.Topology, p.Name(), ro.Compact.Total(), rb.Compact.Total())
				}
				if ro.TotalCycles > rb.TotalCycles {
					t.Fatalf("n=%d %s %s: overlapped total %d cycles slower than BSP %d",
						n, rb.Topology, p.Name(), ro.TotalCycles, rb.TotalCycles)
				}
				// Same compute, same traffic: only the schedule differs.
				if ro.ExchangedBytes != rb.ExchangedBytes || ro.HaloBytes != rb.HaloBytes {
					t.Fatalf("n=%d %s %s: overlap moved different bytes: %d/%d vs %d/%d",
						n, rb.Topology, p.Name(), ro.ExchangedBytes, ro.HaloBytes, rb.ExchangedBytes, rb.HaloBytes)
				}
				if ro.Imbalance != rb.Imbalance {
					t.Fatalf("n=%d %s %s: per-node busy time should not depend on the schedule: %v vs %v",
						n, rb.Topology, p.Name(), ro.Imbalance, rb.Imbalance)
				}
			}
		}
	}
}

// The overlap win comes from hiding link time behind lagging compute, so
// it must grow monotonically as the links get slower (and the BSP
// exchange more expensive).
func TestOverlapBenefitGrowsAsLinkShrinks(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	prev := int64(-1)
	for _, gbps := range []float64{15.625, 8, 4, 2} { // B/cycle: 25 -> 3.2 GB/s
		bsp := DefaultConfig(8)
		bsp.Topo.BytesPerCycle = gbps
		ov := bsp
		ov.Overlap = true
		rb, err := Simulate(reads, tr, bsp)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := Simulate(reads, tr, ov)
		if err != nil {
			t.Fatal(err)
		}
		benefit := int64(rb.Compact.Total() - ro.Compact.Total())
		if benefit < 0 {
			t.Fatalf("bw=%v: negative overlap benefit %d", gbps, benefit)
		}
		if benefit < prev {
			t.Fatalf("bw=%v: overlap benefit %d shrank below %d at higher bandwidth", gbps, benefit, prev)
		}
		prev = benefit
	}
	if prev == 0 {
		t.Fatal("overlap never beat BSP at any bandwidth")
	}
}

// With one node there is nothing to exchange or synchronize across the
// interconnect: overlapped and BSP replays must both equal the
// single-node nmp.Simulate outcome cycle for cycle.
func TestOverlapN1MatchesBSPAndNMP(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	bsp := DefaultConfig(1)
	ov := DefaultConfig(1)
	ov.Overlap = true
	rb, err := Simulate(reads, tr, bsp)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Simulate(reads, tr, ov)
	if err != nil {
		t.Fatal(err)
	}
	single, err := nmp.Simulate(tr, bsp.NMP)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Compact.Total() != single.Cycles || rb.Compact.Total() != single.Cycles {
		t.Fatalf("N=1: overlap %d / BSP %d / nmp.Simulate %d cycles disagree",
			ro.Compact.Total(), rb.Compact.Total(), single.Cycles)
	}
	if ro.TotalCycles != rb.TotalCycles {
		t.Fatalf("N=1 totals differ: overlap %d vs BSP %d", ro.TotalCycles, rb.TotalCycles)
	}
	if ro.Compact.Exchange != 0 || ro.CommCycles != 0 {
		t.Fatalf("N=1 overlap exposed communication: %d exchange, %d comm",
			ro.Compact.Exchange, ro.CommCycles)
	}
}

// Overlapped scheduling runs on the shared event kernel and must be as
// reproducible as the BSP arithmetic it replaces.
func TestOverlapDeterminism(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	cfg := DefaultConfig(8)
	cfg.Overlap = true
	a, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || a.Compact != b.Compact || a.CommCycles != b.CommCycles {
		t.Fatalf("nondeterministic overlap: %+v vs %+v", a.Compact, b.Compact)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	base := DefaultConfig(2)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"nodes", func(c *Config) { c.Nodes = 0 }, "Nodes"},
		{"k zero", func(c *Config) { c.K = 0 }, "K must be"},
		{"k negative", func(c *Config) { c.K = -3 }, "K must be"},
		{"k too large", func(c *Config) { c.K = 33 }, "K must be"},
		{"workers", func(c *Config) { c.Workers = -1 }, "Workers"},
		{"partitioner", func(c *Config) { c.Partitioner = nil }, "Partitioner"},
		{"link", func(c *Config) { c.Topo.BytesPerCycle = 0 }, "bandwidth"},
		{"latency", func(c *Config) { c.Topo.LatencyCycles = -1 }, "latency"},
		{"torus", func(c *Config) { c.Topo.Kind = topo.Torus2D; c.Topo.TorusX, c.Topo.TorusY = 3, 1 }, "rectangular"},
		{"dragonfly", func(c *Config) { c.Topo.Kind = topo.Dragonfly; c.Topo.GroupSize = 3 }, "divide"},
		{"overlap+rebalance", func(c *Config) { c.Partitioner = NewRebalancePartitioner(12, 1); c.Overlap = true }, "BSP"},
		{"rebalance zero period", func(c *Config) { c.Partitioner = &RebalancePartitioner{M: 12} }, "Every"},
		{"nmp", func(c *Config) { c.NMP.Channels = 0 }, "channel"},
	} {
		cfg := base
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		// The validation must also gate the simulation entry points.
		if _, err := Simulate(nil, nil, cfg); err == nil {
			t.Errorf("%s: Simulate accepted invalid config", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}
