// Elastic recovery for the distributed compaction runtime: periodic
// in-memory checkpoints plus a deterministic fault plan (internal/fault)
// turn the fixed-membership replay into a run that survives node loss and
// link failure mid-flight.
//
// The protocol composes three pieces that already existed separately —
// the exact engine snapshot of checkpoint.go, the ownership-change
// migration pricing of rebalance.go, and the degradable interconnect of
// topo.Degraded — into the classic rollback-recovery loop:
//
//   - Every Config.CheckpointEvery iterations the runtime captures the
//     full checkpoint blob (the same versioned bytes Checkpoint emits,
//     decoded by the same hardened UnmarshalCheckpoint on the way back)
//     into a small in-memory ring, charging len(blob)/CheckpointBytesPerCycle
//     as a global stall — the coordinated-checkpoint cost.
//   - fault.Plan events are applied at iteration boundaries, the first
//     point a lockstep run can act on them. Link events mutate the
//     Degraded interconnect in place (every later exchange sees the lost
//     bandwidth or the detour). A node loss is detected at the next
//     boundary: the plan's DetectCycles stall, then every node —
//     survivors live, casualties frozen — is restored from the newest
//     ring blob, the work since that checkpoint is discarded, and the
//     dead node's shard fails over to the survivors
//     (key-hash-partitioned across the live set). The MacroNodes that
//     changed owners are charged over the degraded network before the
//     run resumes — the re-partition migration, priced exactly like a
//     rebalance migration.
//
// The global clock never rolls back: discarded work, detection, restore
// and migration all stay in the elapsed phase time (that is the recovery
// overhead the cadence sweep in internal/experiments measures), while the
// logical output — engine results, per-iteration durations, halo
// accounting — is rolled back and re-executed so the finished run's
// output equals a fault-free run over the surviving membership. With no
// checkpoints configured (CheckpointEvery == 0) a loss restarts the
// compaction phase from iteration 0 on the survivors, the degenerate
// cadence the sweep's zero point measures.
//
// A fault-free configuration with CheckpointEvery == 0 never enters this
// file: Simulate dispatches here only when cfg.elastic() — the legacy
// runtimes stay cycle-exact and allocation-identical.
package scaleout

import (
	"fmt"
	"math"

	"nmppak/internal/dna"
	"nmppak/internal/fault"
	"nmppak/internal/nmp"
	"nmppak/internal/par"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// DefaultCheckpointBytesPerCycle prices checkpoint capture and restore
// I/O when Config.CheckpointBytesPerCycle is zero: 16 B/cycle is about
// 25.6 GB/s at the modeled 1.6 GHz — a striped local NVMe target.
const DefaultCheckpointBytesPerCycle = 16

// elasticRingCap bounds the in-memory checkpoint ring. Recovery restores
// from the newest entry; the older ones are the safety margin against a
// blob that fails to decode.
const elasticRingCap = 4

// elasticOutcome extends the compaction outcome with the traffic the
// elastic runtime accounts itself plus the recovery bookkeeping Result
// surfaces.
type elasticOutcome struct {
	compactOutcome
	LocalTNs  int64
	RemoteTNs int64
	HaloBytes int64

	Checkpoints      int
	CheckpointBytes  int64
	CheckpointCycles sim.Cycle
	FaultsInjected   int
	NodesLost        int
	Recoveries       int
	LostIterations   int64
	RecoveryCycles   sim.Cycle
	RepartitionBytes int64
}

// ringEntry is one captured checkpoint: the iteration it resumes at and
// the marshaled blob (real bytes — restore decodes them through
// UnmarshalCheckpoint, so the ring exercises the same hardened path an
// on-disk blob does).
type ringEntry struct {
	iter int
	blob []byte
}

// elasticRun drives the fault-aware compaction replay. Accounting
// invariant: compute + exchange + barrier == now at every boundary — the
// three buckets tile the phase clock, with halo exchanges and re-partition
// migrations in exchange (communication), link barriers in barrier with
// their comm share tracked in linkBarrier, and sync barriers, checkpoint
// captures, detection and restore stalls in barrier as protocol overhead.
type elasticRun struct {
	tr  *trace.Trace
	deg *topo.Degraded
	cfg Config
	res *Result // prelude outcome, embedded in every captured blob

	n, iters, k1 int
	every        int     // checkpoint cadence (0 = none)
	ckBPC        float64 // checkpoint capture/restore bytes per cycle

	events []fault.Event // plan events in application order
	next   int           // first pending event
	detect sim.Cycle     // failure-detection latency per recovery

	live []bool
	surv []int // live node indices, ascending (failover hash targets)

	engines   []*nmp.Engine
	traces    []*trace.Trace
	durations [][]sim.Cycle

	now         sim.Cycle // compaction-phase clock
	compute     sim.Cycle
	exchange    sim.Cycle
	barrier     sim.Cycle
	linkBarrier sim.Cycle // comm share of the barrier bucket

	localTNs, remoteTNs, haloBytes int64 // committed logical traffic

	cfgDigest, trDigest uint64
	ring                []ringEntry

	out elasticOutcome
	pr  *probes
}

// runElastic executes the compaction phase with periodic checkpoints and
// the configured fault plan, on a degradable wrapper of net.
func runElastic(tr *trace.Trace, net topo.Network, cfg Config, res *Result, pr *probes) (*elasticOutcome, error) {
	er, err := newElasticRun(tr, net, cfg, res, pr)
	if err != nil {
		return nil, err
	}
	if cfg.Overlap {
		err = er.runOverlapped()
	} else {
		err = er.runBSP()
	}
	if err != nil {
		return nil, err
	}
	return er.finish(), nil
}

func newElasticRun(tr *trace.Trace, net topo.Network, cfg Config, res *Result, pr *probes) (*elasticRun, error) {
	n := cfg.Nodes
	er := &elasticRun{
		tr:        tr,
		deg:       topo.NewDegraded(net),
		cfg:       cfg,
		res:       res,
		n:         n,
		iters:     len(tr.Iterations),
		k1:        tr.K - 1,
		every:     cfg.CheckpointEvery,
		ckBPC:     cfg.CheckpointBytesPerCycle,
		live:      make([]bool, n),
		engines:   make([]*nmp.Engine, n),
		traces:    make([]*trace.Trace, n),
		durations: make([][]sim.Cycle, n),
		cfgDigest: configDigest(cfg, net.Name()),
		trDigest:  traceDigest(tr),
		pr:        pr,
	}
	if er.ckBPC <= 0 {
		er.ckBPC = DefaultCheckpointBytesPerCycle
	}
	if cfg.Faults != nil {
		er.events = cfg.Faults.Sorted()
		er.detect = cfg.Faults.DetectCycles
	}
	for i := 0; i < n; i++ {
		er.live[i] = true
		er.surv = append(er.surv, i)
		er.traces[i] = &trace.Trace{K: tr.K}
		e, err := nmp.NewEngine(er.traces[i], cfg.NMP)
		if err != nil {
			return nil, err
		}
		er.engines[i] = e
		er.durations[i] = make([]sim.Cycle, er.iters)
	}
	if pr != nil {
		pr.attach(er.engines)
	}
	return er, nil
}

// ownerOf resolves a key under the current membership: the static
// partitioner's owner while it lives, otherwise a deterministic
// key-hashed survivor — every node computes the same failover assignment
// without coordination, like the base partitioners.
func (er *elasticRun) ownerOf(key dna.Kmer) int {
	return ownerUnder(er.cfg.Partitioner, key, er.k1, er.n, er.live, er.surv)
}

func ownerUnder(p Partitioner, key dna.Kmer, k1, n int, live []bool, surv []int) int {
	o := p.Owner(key, k1, n)
	if live[o] {
		return o
	}
	return surv[mix64(uint64(key))%uint64(len(surv))]
}

// nextLive is the replica node holding the dead node's shard copy in the
// recovery model: the next live node in ring order.
func (er *elasticRun) nextLive(i int) int {
	for d := 1; d <= er.n; d++ {
		if j := (i + d) % er.n; er.live[j] {
			return j
		}
	}
	return i
}

// parallelOK reports whether the elastic run's window drivers engage
// (see runtime_parallel.go) — cycle-exact either way: the BSP chunks and
// the overlapped segments produce byte-identical traces, results and
// checkpoint blobs on both paths.
func (er *elasticRun) parallelOK() bool {
	return par.Threads(er.cfg.Workers) > 1 && er.n > 1
}

// pendingLoss reports whether the next boundary pass will act on a node
// loss — an event already due at the current phase time. The windowed
// BSP driver peeks so it can drop the un-placed telemetry of pre-stepped
// iterations before the recovery's own spans are recorded.
func (er *elasticRun) pendingLoss() bool {
	for _, ev := range er.events[er.next:] {
		if ev.Cycle > er.now {
			return false
		}
		if ev.Kind == fault.NodeLoss {
			return true
		}
	}
	return false
}

// step advances node i by one iteration on its local clock (only live
// nodes are ever stepped).
func (er *elasticRun) step(i int) sim.Cycle {
	e := er.engines[i]
	it := e.Next()
	if er.pr != nil {
		er.pr.beforeStep(i, e)
	}
	ti := e.StepIteration(e.NextStart())
	d := ti.End - ti.Start
	er.durations[i][it] = d
	if er.pr != nil {
		er.pr.afterStep(i, e, ti)
	}
	return d
}

// exchange prices one all-to-all over the (possibly degraded) network at
// the current phase time.
func (er *elasticRun) doExchange(b [][]int64) topo.ExchangeStats {
	if er.pr != nil {
		return topo.ExchangeProbed(er.deg, b, er.pr.linkAt(er.pr.base+er.now))
	}
	return topo.Exchange(er.deg, b)
}

// stallBarrier charges a whole-machine wait to the barrier bucket (with
// comm == true also to the link-barrier comm share) and records it on the
// runtime and live node tracks.
func (er *elasticRun) stallBarrier(kind telemetry.SpanKind, it int, d sim.Cycle, bytes int64, comm bool) {
	if d <= 0 {
		return
	}
	if er.pr != nil {
		er.pr.liveStall(kind, it, er.pr.base+er.now, d, bytes, er.live)
	}
	er.barrier += d
	if comm {
		er.linkBarrier += d
	}
	er.now += d
}

// stallComm charges a whole-machine wait to the exchange (communication)
// bucket.
func (er *elasticRun) stallComm(kind telemetry.SpanKind, it int, d sim.Cycle, bytes int64) {
	if d <= 0 {
		return
	}
	if er.pr != nil {
		er.pr.liveStall(kind, it, er.pr.base+er.now, d, bytes, er.live)
	}
	er.exchange += d
	er.now += d
}

// captureDue reports whether a periodic checkpoint should be captured
// before iteration it (never re-captured after a recovery pushed a
// baseline at the same boundary).
func (er *elasticRun) captureDue(it int) bool {
	if er.every <= 0 || it == 0 || it%er.every != 0 {
		return false
	}
	return len(er.ring) == 0 || er.ring[len(er.ring)-1].iter < it
}

// snapshot marshals the current state as a standard checkpoint blob
// resuming at iteration it, with the elastic membership section attached.
func (er *elasticRun) snapshot(it int) ([]byte, error) {
	ck := &CheckpointState{
		Version:               CheckpointVersion,
		ConfigDigest:          er.cfgDigest,
		TraceDigest:           er.trDigest,
		Nodes:                 er.n,
		K:                     er.cfg.K,
		Overlap:               er.cfg.Overlap,
		Partitioner:           er.cfg.Partitioner.Name(),
		Topology:              er.deg.Name(),
		Count:                 er.res.Count,
		Construct:             er.res.Construct,
		PerNode:               er.res.PerNode,
		PreludeExchangedBytes: er.res.ExchangedBytes,
		ResumeIter:            it,
		Elastic: &ElasticState{
			Live:      append([]bool(nil), er.live...),
			LocalTNs:  er.localTNs,
			RemoteTNs: er.remoteTNs,
			HaloBytes: er.haloBytes,
		},
	}
	if err := snapshotInto(ck, er.durations, er.engines); err != nil {
		return nil, err
	}
	return ck.Marshal()
}

// capture pushes a periodic checkpoint into the ring and charges the
// capture stall.
func (er *elasticRun) capture(it int) error {
	blob, err := er.snapshot(it)
	if err != nil {
		return err
	}
	if len(er.ring) == elasticRingCap {
		copy(er.ring, er.ring[1:])
		er.ring = er.ring[:elasticRingCap-1]
	}
	er.ring = append(er.ring, ringEntry{iter: it, blob: blob})
	d := sim.Cycle(float64(len(blob)) / er.ckBPC)
	er.out.Checkpoints++
	er.out.CheckpointBytes += int64(len(blob))
	er.out.CheckpointCycles += d
	er.stallBarrier(telemetry.SpanCheckpoint, it, d, int64(len(blob)), false)
	return nil
}

// boundary processes the iteration boundary before iteration it: every
// pending fault event whose cycle has been reached is applied — link
// events mutate the interconnect immediately, node losses trigger a
// recovery. Returns the iteration to resume at when a recovery rewound
// the run, -1 otherwise.
func (er *elasticRun) boundary(it int) (int, error) {
	var losses []fault.Event
	for er.next < len(er.events) && er.events[er.next].Cycle <= er.now {
		e := er.events[er.next]
		er.next++
		er.out.FaultsInjected++
		if er.pr != nil {
			arg := e.Node
			if e.Kind != fault.NodeLoss {
				arg = e.Src
			}
			er.pr.instant(telemetry.SpanFault, er.pr.base+e.Cycle, int64(arg), int64(e.Kind))
		}
		switch e.Kind {
		case fault.NodeLoss:
			losses = append(losses, e)
		case fault.LinkDegrade:
			if err := er.deg.Slow(e.Src, e.Dst, e.Factor); err != nil {
				return 0, err
			}
		case fault.LinkOutage:
			if err := er.deg.CutRoute(e.Src, e.Dst); err != nil {
				return 0, err
			}
			if err := er.deg.Verify(er.live); err != nil {
				return 0, fmt.Errorf("scaleout: %s is unrecoverable: %w", e, err)
			}
		}
	}
	if len(losses) == 0 {
		return -1, nil
	}
	return er.recover(losses, it)
}

// recover handles one or more node losses surfacing at the boundary
// before iteration bIter: detection stall, restore from the newest ring
// checkpoint (or a from-scratch restart when none exists), rollback of
// everything since, re-partition migration of the shards that changed
// owners, and a fresh baseline checkpoint at the resume point. Returns
// the iteration the run resumes at.
func (er *elasticRun) recover(losses []fault.Event, bIter int) (int, error) {
	liveBefore := len(er.surv)
	oldLive := append([]bool(nil), er.live...)
	oldSurv := append([]int(nil), er.surv...)
	for _, e := range losses {
		if !er.live[e.Node] {
			return 0, fmt.Errorf("scaleout: %s kills an already-dead node", e)
		}
		er.live[e.Node] = false
		er.out.NodesLost++
	}
	er.surv = er.surv[:0]
	for i, l := range er.live {
		if l {
			er.surv = append(er.surv, i)
		}
	}
	if len(er.surv) == 0 {
		return 0, fmt.Errorf("scaleout: no survivors after %s", losses[0])
	}
	if err := er.deg.Verify(er.live); err != nil {
		return 0, fmt.Errorf("scaleout: survivors are disconnected: %w", err)
	}

	// Detection: the heartbeat/membership latency before survivors act.
	er.out.RecoveryCycles += er.detect
	er.stallBarrier(telemetry.SpanDetect, bIter, er.detect, int64(losses[0].Node), false)

	// Restore from the newest ring checkpoint; with an empty ring the
	// survivors restart the compaction phase from scratch (the
	// no-checkpointing degenerate cadence).
	var ck *CheckpointState
	resume := 0
	if len(er.ring) > 0 {
		ent := &er.ring[len(er.ring)-1]
		dec, err := UnmarshalCheckpoint(ent.blob)
		if err != nil {
			return 0, fmt.Errorf("scaleout: recovery checkpoint (iteration %d): %w", ent.iter, err)
		}
		ck = dec
		resume = ck.ResumeIter
		d := sim.Cycle(float64(len(ent.blob)) / er.ckBPC)
		er.out.RecoveryCycles += d
		er.stallBarrier(telemetry.SpanRestore, resume, d, int64(len(ent.blob)), false)
	}
	er.out.LostIterations += int64(bIter-resume) * int64(liveBefore)

	if err := er.rollback(ck, resume); err != nil {
		return 0, err
	}

	// Re-partition: every MacroNode whose owner changed under the new
	// membership moves from its replica holder (the next live node after
	// the old owner) to the new owner, over the degraded interconnect.
	if resume < er.iters {
		move := mat(er.n)
		iter := &er.tr.Iterations[resume]
		for i := range iter.Nodes {
			nd := &iter.Nodes[i]
			ob := ownerUnder(er.cfg.Partitioner, nd.Key, er.k1, er.n, oldLive, oldSurv)
			oa := er.ownerOf(nd.Key)
			if ob == oa {
				continue
			}
			src := ob
			if !er.live[src] {
				src = er.nextLive(src)
			}
			if src != oa {
				move[src][oa] += int64(nd.D1 + nd.D2)
			}
		}
		mx := er.doExchange(move)
		if mx.TotalBytes > 0 {
			er.out.ExchangedBytes += mx.TotalBytes
			er.out.RepartitionBytes += mx.TotalBytes
			er.stallComm(telemetry.SpanRepartition, resume, mx.Cycles, mx.TotalBytes)
		}
	}

	// The old ring describes the dead membership; replace it with a free
	// baseline at the resume point (the state is already in memory), so a
	// later loss restores here instead of replaying from scratch.
	blob, err := er.snapshot(resume)
	if err != nil {
		return 0, err
	}
	er.ring = er.ring[:0]
	er.ring = append(er.ring, ringEntry{iter: resume, blob: blob})
	er.out.Recoveries++
	return resume, nil
}

// rollback restores every node to the checkpoint state at iteration
// resume: survivors continue from there, casualties stay frozen at their
// own last committed iteration. The discarded durations and logical
// traffic counters are rewound; the phase clock is not (lost time is the
// recovery overhead).
func (er *elasticRun) rollback(ck *CheckpointState, resume int) error {
	for i := 0; i < er.n; i++ {
		if ck == nil {
			er.traces[i] = &trace.Trace{K: er.tr.K}
			e, err := nmp.NewEngine(er.traces[i], er.cfg.NMP)
			if err != nil {
				return err
			}
			er.engines[i] = e
		} else {
			if len(er.traces[i].Iterations) > resume {
				er.traces[i].Iterations = er.traces[i].Iterations[:resume]
			}
			e, err := nmp.ResumeEngine(er.traces[i], er.cfg.NMP, ck.Engines[i])
			if err != nil {
				return err
			}
			er.engines[i] = e
		}
		d := er.durations[i]
		for j := range d {
			d[j] = 0
		}
		if ck != nil {
			copy(d, ck.Durations[i])
		}
	}
	if ck != nil {
		er.localTNs = ck.Elastic.LocalTNs
		er.remoteTNs = ck.Elastic.RemoteTNs
		er.haloBytes = ck.Elastic.HaloBytes
	} else {
		er.localTNs, er.remoteTNs, er.haloBytes = 0, 0, 0
	}
	if er.pr != nil {
		er.pr.attach(er.engines)
	}
	return nil
}

// shardInto splits global iteration it under the current membership,
// appending each live node's sub-iteration to its trace and accumulating
// the committed traffic counters.
func (er *elasticRun) shardInto(it int, halo [][]int64) {
	subs, l, r, hb := shardIteration(&er.tr.Iterations[it], er.n, er.ownerOf, halo)
	er.localTNs += l
	er.remoteTNs += r
	er.haloBytes += hb
	for o := 0; o < er.n; o++ {
		if !er.live[o] {
			continue
		}
		if it == 0 {
			er.traces[o].Quantiles = subs[o].Quantiles
		}
		er.traces[o].Iterations = append(er.traces[o].Iterations, subs[o])
	}
}

// runBSP is the elastic BSP discipline: golden supersteps over the live
// membership, with fault boundaries, periodic captures and recoveries
// spliced between them. Fault-free it reproduces the legacy BSP schedule
// plus the checkpoint stalls. With a worker pool the supersteps advance
// through the window protocol (bspChunk) in chunks of up to PrestepDepth
// iterations, never crossing a capture boundary — byte-identical to the
// serial path either way.
func (er *elasticRun) runBSP() error {
	lb := er.deg.BarrierCycles()
	sb := er.cfg.NMP.SyncBarrierCycles
	windowed := er.parallelOK()
	if windowed && er.pr != nil {
		er.pr.enableBuffer(er.n, er.iters)
	}
	k := er.cfg.depth()
	durs := make([]sim.Cycle, er.n)
	halos := make([][][]int64, 0, k)
	it := 0
	for {
		cont, err := er.boundary(it)
		if err != nil {
			return err
		}
		if cont >= 0 {
			it = cont
			continue
		}
		if it == er.iters {
			return nil
		}
		if er.captureDue(it) {
			if err := er.capture(it); err != nil {
				return err
			}
		}

		if windowed {
			// Chunk [it, end): capped by the pre-step depth and by the
			// next capture boundary (a capture is a global horizon).
			end := it + k
			if er.every > 0 {
				if b := (it/er.every + 1) * er.every; b < end {
					end = b
				}
			}
			if end > er.iters {
				end = er.iters
			}
			cont, err = er.bspChunk(it, end, lb, sb, durs, &halos)
			if err != nil {
				return err
			}
			if cont >= 0 {
				it = cont
				continue
			}
			it = end
			continue
		}

		halo := mat(er.n)
		er.shardInto(it, halo)
		for i := range durs {
			durs[i] = 0
		}
		par.ForIdx(er.n, er.cfg.Workers, func(i int) {
			if er.live[i] {
				durs[i] = er.step(i)
			}
		})
		var slowest sim.Cycle
		maxIdx := 0
		for i, d := range durs {
			if d > slowest {
				slowest = d
				maxIdx = i
			}
		}
		if er.pr != nil {
			er.pr.liveCompute(it, er.pr.base+er.now, durs, er.live, slowest, false)
		}
		er.compute += slowest
		er.now += slowest

		hx := er.doExchange(halo)
		er.out.ExchangedBytes += hx.TotalBytes
		er.stallComm(telemetry.SpanExchangeWait, it, hx.Cycles, hx.TotalBytes)

		if it+1 < er.iters {
			er.stallBarrier(telemetry.SpanLinkBarrier, it, lb, 0, true)
			er.stallBarrier(telemetry.SpanSyncBarrier, it, sb, 0, false)
			if er.pr != nil {
				for i := 0; i < er.n; i++ {
					if er.live[i] {
						er.pr.c.AddDep(i, it+1, telemetry.BoundBarrier, maxIdx)
					}
				}
			}
		}
		it++
	}
}

// bspChunk advances the windowed elastic BSP through supersteps
// [from, to): pre-shard the chunk's halos, pre-step the live engines
// across the worker pool (buffering their telemetry), then drain the
// fault boundaries, measurement placement and exchange/barrier pricing
// serially in the exact serial order. Interior fault boundaries stay
// conservative because a recovery rolls engines, durations, traces and
// counters back wholesale (rollback); the only window state with no
// serial counterpart is the un-placed telemetry of iterations pre-stepped
// past the detection boundary, which is dropped (dropBuffered) before the
// recovery records its own spans so the tracks stay byte-identical.
// Returns the resume iteration when a recovery rewound the run, -1
// otherwise.
func (er *elasticRun) bspChunk(from, to int, lb, sb sim.Cycle, durs []sim.Cycle, halos *[][][]int64) (int, error) {
	hs := (*halos)[:0]
	for j := from; j < to; j++ {
		h := mat(er.n)
		er.shardInto(j, h)
		hs = append(hs, h)
	}
	*halos = hs
	par.ForIdx(er.n, er.cfg.Workers, func(i int) {
		if !er.live[i] {
			return
		}
		for j := from; j < to; j++ {
			er.step(i)
			if er.pr != nil {
				er.pr.bufferStep(i, j)
			}
		}
	})
	for j := from; j < to; j++ {
		if j > from {
			if er.pr != nil && er.pendingLoss() {
				for i := 0; i < er.n; i++ {
					if er.live[i] {
						er.pr.dropBuffered(i, j)
					}
				}
			}
			cont, err := er.boundary(j)
			if err != nil {
				return 0, err
			}
			if cont >= 0 {
				return cont, nil
			}
		}
		var slowest sim.Cycle
		maxIdx := 0
		for i := 0; i < er.n; i++ {
			if er.live[i] {
				durs[i] = er.durations[i][j]
			} else {
				durs[i] = 0
			}
			if durs[i] > slowest {
				slowest = durs[i]
				maxIdx = i
			}
		}
		if er.pr != nil {
			er.pr.liveCompute(j, er.pr.base+er.now, durs, er.live, slowest, true)
		}
		er.compute += slowest
		er.now += slowest

		hx := er.doExchange(hs[j-from])
		er.out.ExchangedBytes += hx.TotalBytes
		er.stallComm(telemetry.SpanExchangeWait, j, hx.Cycles, hx.TotalBytes)

		if j+1 < er.iters {
			er.stallBarrier(telemetry.SpanLinkBarrier, j, lb, 0, true)
			er.stallBarrier(telemetry.SpanSyncBarrier, j, sb, 0, false)
			if er.pr != nil {
				for i := 0; i < er.n; i++ {
					if er.live[i] {
						er.pr.c.AddDep(i, j+1, telemetry.BoundBarrier, maxIdx)
					}
				}
			}
		}
	}
	return -1, nil
}

// segOutcome summarizes one speculative overlapped segment.
type segOutcome struct {
	makespan sim.Cycle   // segment completion (last halo delivery)
	compute  sim.Cycle   // longest live node's local chain in the segment
	boundary []sim.Cycle // boundary[j]: latest live finish of iteration s+j
	bytes    int64       // halo bytes streamed
}

// runOverlapped is the elastic overlapped discipline: the event-driven
// halo-streaming schedule runs in segments bounded by checkpoint
// boundaries (a coordinated checkpoint is a global synchronization, so a
// link barrier + sync barrier close each segment). A segment is executed
// speculatively; if a node loss lands inside it, the segment's recording
// is rewound, the committed window up to the detection boundary is
// charged as compute (the simplification: an overlapped window does not
// decompose further once discarded), and the shared recovery path takes
// over. With CheckpointEvery == 0 the whole phase is one segment and a
// fault-free run reproduces the legacy overlapped schedule exactly.
func (er *elasticRun) runOverlapped() error {
	lb := er.deg.BarrierCycles()
	sb := er.cfg.NMP.SyncBarrierCycles
	it := 0
	for {
		cont, err := er.boundary(it)
		if err != nil {
			return err
		}
		if cont >= 0 {
			it = cont
			continue
		}
		if it == er.iters {
			return nil
		}
		if it > 0 {
			er.stallBarrier(telemetry.SpanLinkBarrier, it-1, lb, 0, true)
			er.stallBarrier(telemetry.SpanSyncBarrier, it-1, sb, 0, false)
		}
		if er.captureDue(it) {
			if err := er.capture(it); err != nil {
				return err
			}
		}
		end := er.iters
		if er.every > 0 {
			if b := (it/er.every + 1) * er.every; b < end {
				end = b
			}
		}

		var marks probeMark
		if er.pr != nil {
			marks = er.pr.mark()
		}
		seg := er.runSegment(it, end)

		// A loss inside the segment window invalidates it: rewind the
		// speculative recording, commit the window up to the detection
		// boundary as compute, and recover.
		var fc sim.Cycle = -1
		for _, ev := range er.events[er.next:] {
			if ev.Cycle > er.now+seg.makespan {
				break
			}
			if ev.Kind == fault.NodeLoss {
				fc = ev.Cycle
				break
			}
		}
		if fc >= 0 {
			bj := -1
			for j := range seg.boundary {
				if er.now+seg.boundary[j] >= fc {
					bj = j
					break
				}
			}
			if bj >= 0 {
				if er.pr != nil {
					er.pr.rewind(marks)
					if seg.boundary[bj] > 0 {
						er.pr.phases.Add(telemetry.SpanCompute, er.pr.base+er.now, er.pr.base+er.now+seg.boundary[bj], int64(it), 0)
					}
				}
				er.compute += seg.boundary[bj]
				er.now += seg.boundary[bj]
				cont, err := er.boundary(it + bj + 1)
				if err != nil {
					return err
				}
				if cont >= 0 {
					it = cont
					continue
				}
				return fmt.Errorf("scaleout: fault at cycle %d detected but not consumed", fc)
			}
			// The loss lands past the segment's last iteration boundary:
			// commit the segment and let the next boundary pass detect it.
		}

		if er.pr != nil {
			if seg.compute > 0 {
				er.pr.phases.Add(telemetry.SpanCompute, er.pr.base+er.now, er.pr.base+er.now+seg.compute, int64(it), 0)
			}
			if seg.makespan > seg.compute {
				er.pr.phases.Add(telemetry.SpanExchangeWait, er.pr.base+er.now+seg.compute, er.pr.base+er.now+seg.makespan, int64(it), seg.bytes)
			}
		}
		er.compute += seg.compute
		er.exchange += seg.makespan - seg.compute
		er.now += seg.makespan
		er.out.ExchangedBytes += seg.bytes
		it = end
	}
}

// runSegment executes iterations [s, e) of the overlapped schedule over
// the live membership on a fresh event timeline: the same
// finish-stream-start dependency structure as the legacy runtime, scoped
// to the segment and routed over the degraded network.
func (er *elasticRun) runSegment(s, e int) *segOutcome {
	n, m := er.n, e-s
	pr := er.pr
	sb := er.cfg.NMP.SyncBarrierCycles
	seg := &segOutcome{boundary: make([]sim.Cycle, m)}

	halo := make([][][]int64, m)
	for j := 0; j < m; j++ {
		halo[j] = mat(n)
		er.shardInto(s+j, halo[j])
	}

	g := &sim.Engine{}
	if pr != nil {
		g.SetProbe(&pr.loop)
	}
	type segNode struct {
		pendingIn []int
		readyAt   sim.Cycle
		finished  []bool
		started   []bool
	}
	nodes := make([]*segNode, n)
	local0 := make([]sim.Cycle, n)
	lastEnd := make([]sim.Cycle, n)
	for i := 0; i < n; i++ {
		if !er.live[i] {
			continue
		}
		nodes[i] = &segNode{
			pendingIn: make([]int, m),
			finished:  make([]bool, m),
			started:   make([]bool, m),
		}
		local0[i] = er.engines[i].Now()
	}
	for j := 0; j < m; j++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if dst != src && halo[j][src][dst] > 0 {
					nodes[dst].pendingIn[j]++
					seg.bytes += halo[j][src][dst]
				}
			}
		}
	}
	fl := topo.NewFlight(er.deg, g)
	var off sim.Cycle
	if pr != nil {
		off = pr.base + er.now
		fl.SetProbe(&topo.Probe{Links: pr.links, Offset: off})
	}
	note := func(t sim.Cycle) {
		if t > seg.makespan {
			seg.makespan = t
		}
	}

	// The window protocol engages per segment: the live membership and the
	// degraded routes both shift at fault boundaries, so the gate and the
	// lookahead matrix are segment-local. A degenerate segment (single
	// survivor, zero-lookahead network) runs the lazy serial schedule.
	windowed := er.parallelOK() && len(er.surv) > 1 && er.deg.MinLatency() > 0
	prestepped := 0

	var begin func(i, j int, at sim.Cycle)
	tryStart := func(i, j, src int) {
		nd := nodes[i]
		if j >= m || nd.started[j] || !nd.finished[j-1] || nd.pendingIn[j-1] > 0 {
			return
		}
		nd.started[j] = true
		at := nd.readyAt
		bound := telemetry.BoundSync
		if now := g.Now(); now > at {
			at = now
			if src >= 0 {
				bound = telemetry.BoundDelivery
			}
		}
		if pr != nil {
			sn := src
			if bound != telemetry.BoundDelivery {
				sn = -1
			}
			pr.c.AddDep(i, s+j, bound, sn)
		}
		begin(i, j, at)
	}
	finish := func(i, j int) {
		nd := nodes[i]
		now := g.Now()
		nd.finished[j] = true
		if now > seg.boundary[j] {
			seg.boundary[j] = now
		}
		note(now)
		for off := 1; off < n; off++ {
			dst := (i + off) % n
			if !er.live[dst] {
				continue
			}
			b := halo[j][i][dst]
			if b <= 0 {
				continue
			}
			d := dst
			fl.Send(i, d, b, func() {
				note(g.Now())
				nodes[d].pendingIn[j]--
				tryStart(d, j+1, i)
			})
		}
		if j+1 < m {
			nd.readyAt = now + sb
			tryStart(i, j+1, -1)
		}
	}
	begin = func(i, j int, at sim.Cycle) {
		g.At(at, func() {
			if pr != nil && j > 0 {
				e0 := lastEnd[i]
				if sb > 0 {
					pr.node[i].Add(telemetry.SpanSyncBarrier, off+e0, off+e0+sb, int64(s+j), 0)
				}
				if at > e0+sb {
					pr.node[i].Add(telemetry.SpanDeliveryWait, off+e0+sb, off+at, int64(s+j), 0)
				}
			}
			var d sim.Cycle
			if j < prestepped {
				d = er.durations[i][s+j]
				if pr != nil {
					pr.placeBuffered(i, s+j, off+at)
				}
			} else {
				if windowed {
					panic("scaleout: windowed elastic segment reached an un-stepped iteration")
				}
				d = er.step(i)
				if pr != nil {
					pr.placeIter(i, s+j, off+at)
				}
			}
			lastEnd[i] = at + d
			g.After(d, func() { finish(i, j) })
		})
	}
	for i := 0; i < n; i++ {
		if er.live[i] {
			nodes[i].started[0] = true
			begin(i, 0, 0)
		}
	}
	if windowed {
		// Window driver on the segment-local clock: pre-step the live
		// engines in chunks of up to PrestepDepth iterations, derive the
		// conservative horizon from the chain bounds plus the degraded
		// per-pair lookahead, and drain the segment's event loop up to it.
		// Identical closures in identical order — the segment stays
		// byte-identical, so the mark/rewind speculation in runOverlapped
		// composes unchanged.
		if pr != nil && pr.buf == nil {
			pr.enableBuffer(n, er.iters)
		}
		look := pairLookahead(er.deg, n)
		k := er.cfg.depth()
		workers := er.cfg.Workers
		lbound := make([]sim.Cycle, n)
		lend := make([]sim.Cycle, n)
		for r := 0; r < m; r += k {
			hi := r + k
			if hi > m {
				hi = m
			}
			par.ForIdx(n, workers, func(i int) {
				if !er.live[i] {
					return
				}
				for j := r; j < hi; j++ {
					er.step(i)
					if pr != nil {
						pr.bufferStep(i, s+j)
					}
				}
			})
			prestepped = hi
			for i := 0; i < n; i++ {
				if !er.live[i] {
					continue
				}
				for j := r; j < hi; j++ {
					lend[i] = lbound[i] + er.durations[i][s+j]
					lbound[i] = lend[i] + sb
				}
			}
			if hi >= m {
				break
			}
			h := sim.Cycle(math.MaxInt64)
			hj := halo[hi-1]
			for i := 0; i < n; i++ {
				if !er.live[i] {
					continue
				}
				bound := lbound[i]
				for src := 0; src < n; src++ {
					if src != i && er.live[src] && hj[src][i] > 0 {
						if d := lend[src] + look[src][i]; d > bound {
							bound = d
						}
					}
				}
				if bound < h {
					h = bound
				}
			}
			g.RunUntil(h)
		}
	}
	g.Run()

	for i := 0; i < n; i++ {
		if !er.live[i] {
			continue
		}
		// A segment past iteration 0 re-enters each engine through
		// NextStart(), whose leading sync barrier the global schedule has
		// already charged between segments — drop it from the local chain
		// so compute never exceeds the segment makespan.
		lead := sim.Cycle(0)
		if s > 0 {
			lead = sb
		}
		if c := er.engines[i].Now() - local0[i] - lead; c > seg.compute {
			seg.compute = c
		}
		if pr != nil && lastEnd[i] < seg.makespan {
			pr.node[i].Add(telemetry.SpanIdle, off+lastEnd[i], off+seg.makespan, int64(e-1), 0)
		}
	}
	return seg
}

// finish seals the outcome: the three accounting buckets tile the phase
// clock, and every engine — survivors complete, casualties frozen at
// their last committed iteration — reports its result.
func (er *elasticRun) finish() *elasticOutcome {
	out := &er.out
	out.Phase = PhaseCycles{Compute: er.compute, Exchange: er.exchange, Barrier: er.barrier}
	out.LinkBarrier = er.linkBarrier
	out.Durations = er.durations
	out.LocalTNs, out.RemoteTNs, out.HaloBytes = er.localTNs, er.remoteTNs, er.haloBytes
	out.NMP = make([]*nmp.Result, er.n)
	for i, e := range er.engines {
		out.NMP[i] = e.Result()
	}
	return out
}
