package scaleout

import (
	"testing"

	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/readsim"
)

// skewedReads builds a repeat-heavy read set: short repeat units copied
// over a large genome fraction concentrate k-mer mass into few minimizer
// super-buckets, the load profile balanced partitioning targets.
func skewedReads(t *testing.T) []readsim.Read {
	t.Helper()
	g, err := genome.Generate(genome.Config{
		Length: 30_000, Seed: 11, RepeatFraction: 0.45, RepeatUnit: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 15, ErrorRate: 0.005, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return reads
}

// On a repeat-heavy genome the weight-aware partitioner must not lose to
// hash partitioning on compaction-load balance — and must fix the plain
// minimizer partitioner's imbalance — while keeping most of the minimizer
// scheme's communication locality.
func TestBalancedImbalanceOnSkewedGenome(t *testing.T) {
	reads := skewedReads(t)
	tr := testTrace(t, reads, 32, 3)
	res, err := kmer.Count(reads, kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	run := func(p Partitioner) *Result {
		cfg := DefaultConfig(n)
		cfg.Partitioner = p
		r, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	hash := run(HashPartitioner{})
	mini := run(NewMinimizerPartitioner(12))
	bal := run(NewBalancedPartitioner(res, 12, n))
	t.Logf("imbalance: hash=%.4f minimizer=%.4f balanced=%.4f; remote TNs: %.1f%%/%.1f%%/%.1f%%",
		hash.Imbalance, mini.Imbalance, bal.Imbalance,
		hash.RemoteTNFrac*100, mini.RemoteTNFrac*100, bal.RemoteTNFrac*100)
	if bal.Imbalance > hash.Imbalance {
		t.Errorf("balanced imbalance %.4f worse than hash %.4f", bal.Imbalance, hash.Imbalance)
	}
	if bal.Imbalance > mini.Imbalance {
		t.Errorf("balanced imbalance %.4f worse than plain minimizer %.4f", bal.Imbalance, mini.Imbalance)
	}
	if bal.RemoteTNFrac > hash.RemoteTNFrac {
		t.Errorf("balanced remote TN fraction %.3f lost the locality it was supposed to keep (hash %.3f)",
			bal.RemoteTNFrac, hash.RemoteTNFrac)
	}
}

// A sample too sparse for the spill divisor must disable the heavy-bucket
// spill rather than letting the integer threshold truncate to zero and
// scatter every bucket (which would silently degenerate the partitioner
// into per-key hashing).
func TestBalancedSparseSampleNoSpill(t *testing.T) {
	res := &kmer.Result{K: 32}
	for i := uint64(1); i <= 20; i++ {
		res.Kmers = append(res.Kmers, kmer.Counted{Km: dnaKmer(i * 2654435761), Count: 1})
	}
	p := NewBalancedPartitioner(res, 12, 8)
	perNode := make([]int, 8)
	for b, o := range p.table {
		if o == scatterOwner {
			t.Fatalf("bucket %d spilled on a sparse sample (total mass %d)", b, 2*len(res.Kmers))
		}
		perNode[o]++
	}
	// Unseen buckets must spread across the machine, not pile onto the
	// initially least-loaded node.
	for i, c := range perNode {
		if c == 0 || c > BalancedBuckets/2 {
			t.Fatalf("sparse-sample bucket distribution degenerate: node %d owns %d of %d buckets (%v)",
				i, c, BalancedBuckets, perNode)
		}
	}
}

// Ownership must be a pure function of the key: identical on every call,
// in range, and matched by the actual shard placement — every node can
// compute the assignment locally with no coordination.
func TestBalancedOwnershipPureFunction(t *testing.T) {
	reads := skewedReads(t)
	res, err := kmer.Count(reads, kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	p := NewBalancedPartitioner(res, 12, n)
	// A second build from the same sample must agree everywhere (the
	// greedy binning has deterministic tie-breaks).
	q := NewBalancedPartitioner(res, 12, n)
	for km := uint64(0); km < 30_000; km++ {
		key := dnaKmer(km * 2654435761)
		for _, kk := range []int{31, 32} {
			o := p.Owner(key, kk, n)
			if o < 0 || o >= n {
				t.Fatalf("owner %d out of range for kk=%d", o, kk)
			}
			if o != p.Owner(key, kk, n) || o != q.Owner(key, kk, n) {
				t.Fatalf("ownership of %v not a pure function of the key", key)
			}
		}
		// The fallback for machine sizes the table was not built for must
		// be pure as well.
		if o := p.Owner(key, 31, 3); o != p.Owner(key, 31, 3) || o < 0 || o >= 3 {
			t.Fatalf("fallback ownership impure or out of range")
		}
	}
	if p.Owner(dnaKmer(12345), 31, 1) != 0 {
		t.Fatal("single node must own everything")
	}
	if p.Nodes() != n {
		t.Fatalf("Nodes() = %d, want %d", p.Nodes(), n)
	}
	// Sharded counting must place every k-mer on the node Owner names.
	cfg := DefaultConfig(n)
	cfg.Partitioner = p
	sc, err := CountSharded(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range sc.Shards {
		for _, kc := range sh.Kmers {
			if o := p.Owner(kc.Km, 32, n); o != i {
				t.Fatalf("k-mer on node %d but owned by %d", i, o)
			}
		}
	}
	// And the merged result must still be the single-node one.
	want, err := kmer.Count(reads, kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := sc.Merge()
	if len(got.Kmers) != len(want.Kmers) || got.TotalExtracted != want.TotalExtracted {
		t.Fatalf("balanced-partitioned sharded count diverged: %d/%d kmers, %d/%d extracted",
			len(got.Kmers), len(want.Kmers), got.TotalExtracted, want.TotalExtracted)
	}
}
