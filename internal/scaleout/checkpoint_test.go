package scaleout

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/readsim"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// Checkpointing mid-run and restoring must finish bit-identically to the
// uninterrupted run, on both disciplines.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	mid := len(tr.Iterations) / 2
	for _, overlap := range []bool{false, true} {
		cfg := DefaultConfig(4)
		cfg.Overlap = overlap
		want, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Checkpoint(reads, tr, cfg, mid)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Restore(tr, cfg, blob)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("overlap=%v: restored result differs from uninterrupted run:\n%+v\nvs\n%+v", overlap, got, want)
		}
	}
}

// The blob must be byte-deterministic and stable under a decode/encode
// round trip.
func TestCheckpointBlobDeterminism(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	cfg := DefaultConfig(4)
	mid := len(tr.Iterations) / 2
	a, err := Checkpoint(reads, tr, cfg, mid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Checkpoint(reads, tr, cfg, mid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same config produced different checkpoint blobs")
	}
	ck, err := UnmarshalCheckpoint(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ck.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("decode/encode round trip changed the blob bytes")
	}
}

// Restore must reject — with an error, never a panic — every malformed or
// mismatched blob: truncations at any layer, wrong magic or version, and
// checkpoints taken under a different configuration or trace.
func TestRestoreErrorPaths(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	cfg := DefaultConfig(4)
	blob, err := Checkpoint(reads, tr, cfg, len(tr.Iterations)/2)
	if err != nil {
		t.Fatal(err)
	}
	otherTrace := testTrace(t, reads, 32, 4) // different MinCount: different compaction
	head := len(checkpointMagic) + 4
	// A blob whose header tag and gob payload disagree about the version.
	mismatch := func() []byte {
		ck, err := UnmarshalCheckpoint(blob)
		if err != nil {
			t.Fatal(err)
		}
		ck.Version = CheckpointVersion + 1
		b, err := ck.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(b[len(checkpointMagic):], CheckpointVersion)
		return b
	}()

	for _, tc := range []struct {
		name string
		tr   *trace.Trace
		cfg  func() Config
		blob func() []byte
		want string
	}{
		{"empty blob", tr, nil, func() []byte { return nil }, "truncated"},
		{"header-only blob", tr, nil, func() []byte { return blob[:head] }, "decode"},
		{"truncated header", tr, nil, func() []byte { return blob[:head/2] }, "truncated"},
		{"truncated payload", tr, nil, func() []byte { return blob[:head+(len(blob)-head)/2] }, "decode"},
		{"truncated tail", tr, nil, func() []byte { return blob[:len(blob)-1] }, "decode"},
		{"header/payload version mismatch", tr, nil, func() []byte { return mismatch }, "match payload"},
		{"trailing garbage", tr, nil, func() []byte {
			return append(append([]byte(nil), blob...), 0xde, 0xad)
		}, "trailing"},
		{"bad magic", tr, nil, func() []byte {
			b := append([]byte(nil), blob...)
			b[0] ^= 0xff
			return b
		}, "magic"},
		{"wrong version", tr, nil, func() []byte {
			b := append([]byte(nil), blob...)
			binary.LittleEndian.PutUint32(b[len(checkpointMagic):], CheckpointVersion+1)
			return b
		}, "version"},
		{"corrupt payload", tr, nil, func() []byte {
			b := append([]byte(nil), blob...)
			for i := head; i < len(b); i += 7 {
				b[i] ^= 0xa5
			}
			return b
		}, "decode"},
		{"different K", tr, func() Config {
			c := DefaultConfig(4)
			c.K = 24
			return c
		}, nil, "K"},
		{"different topology", tr, func() Config {
			c := DefaultConfig(4)
			c.Topo = topo.Torus(0, 0)
			return c
		}, nil, "topology"},
		{"different node count", tr, func() Config { return DefaultConfig(8) }, nil, "nodes"},
		{"different discipline", tr, func() Config {
			c := DefaultConfig(4)
			c.Overlap = true
			return c
		}, nil, "overlap"},
		{"different partitioner", tr, func() Config {
			c := DefaultConfig(4)
			c.Partitioner = NewMinimizerPartitioner(12)
			return c
		}, nil, "partitioner"},
		{"different link bandwidth", tr, func() Config {
			c := DefaultConfig(4)
			c.Topo.BytesPerCycle = 2
			return c
		}, nil, "digest"},
		{"different NMP model", tr, func() Config {
			c := DefaultConfig(4)
			c.NMP.PEsPerChannel = 16
			return c
		}, nil, "digest"},
		{"different trace", otherTrace, nil, nil, "trace digest"},
		{"nil trace", nil, nil, nil, "nil trace"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			if tc.cfg != nil {
				c = tc.cfg()
			}
			b := blob
			if tc.blob != nil {
				b = tc.blob()
			}
			res, err := Restore(tc.tr, c, b)
			if err == nil {
				t.Fatalf("Restore accepted the blob (result: %v)", res)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Checkpoint itself must reject out-of-range pause points.
	if _, err := Checkpoint(reads, tr, cfg, -1); err == nil {
		t.Error("Checkpoint accepted a negative iteration")
	}
	if _, err := Checkpoint(reads, tr, cfg, len(tr.Iterations)+1); err == nil {
		t.Error("Checkpoint accepted an iteration past the trace end")
	}
}

// A BalancedPartitioner's identity is its assignment table, not the Go
// form it is stored in: a blob captured with the value form must restore
// under the pointer form (same table), while a same-named partitioner
// built from a different sample must be rejected by the config digest.
func TestBalancedPartitionerIdentity(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	kres, err := kmer.Count(reads, kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBalancedPartitioner(kres, 12, 4)
	cfg := DefaultConfig(4)
	cfg.Partitioner = bp
	blob, err := Checkpoint(reads, tr, cfg, len(tr.Iterations)/2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ptrCfg := cfg
	ptrCfg.Partitioner = &bp
	got, err := Restore(tr, ptrCfg, blob)
	if err != nil {
		t.Fatalf("pointer-form restore of a value-form blob: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pointer-form restore diverged from the uninterrupted run")
	}

	other, err := kmer.Count(reads[:len(reads)/2], kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Partitioner{
		NewBalancedPartitioner(other, 12, 4),
		func() *BalancedPartitioner { o := NewBalancedPartitioner(other, 12, 4); return &o }(),
	} {
		bad := cfg
		bad.Partitioner = p
		if _, err := Restore(tr, bad, blob); err == nil || !strings.Contains(err.Error(), "digest") {
			t.Fatalf("same-named partitioner with a different table accepted: %v", err)
		}
	}
}

// A checkpoint taken immediately after a bucket migration must carry the
// migrated ownership table and the accumulated migration accounting, and
// the restored run must reproduce Result.Rebalances and
// Result.MigratedBytes of the uninterrupted run exactly.
func TestRebalanceCheckpointRoundTrip(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 30_000, Seed: 11, RepeatFraction: 0.4, RepeatUnit: 700})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 15, ErrorRate: 0.005, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t, reads, 32, 3)
	cfg := DefaultConfig(8)
	cfg.Partitioner = NewRebalancePartitioner(12, 1)

	want, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Rebalances == 0 {
		t.Fatal("workload never triggered a migration; the round trip would be vacuous")
	}

	// Pause right after the first migration point has executed (the
	// migration at iteration `Every` runs while advancing to Every+1), and
	// at every later boundary for good measure.
	for cut := 2; cut <= len(tr.Iterations); cut++ {
		blob, err := Checkpoint(reads, tr, cfg, cut)
		if err != nil {
			t.Fatal(err)
		}
		ck, err := UnmarshalCheckpoint(blob)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Rebalance == nil {
			t.Fatalf("cut %d: no rebalance state in the blob", cut)
		}
		got, err := Restore(tr, cfg, blob)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rebalances != want.Rebalances || got.MigratedBytes != want.MigratedBytes {
			t.Fatalf("cut %d: restored run migrated %d buckets / %d bytes, uninterrupted %d / %d",
				cut, got.Rebalances, got.MigratedBytes, want.Rebalances, want.MigratedBytes)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: restored rebalance result differs from uninterrupted run", cut)
		}
		if cut == 2 && ck.Rebalance.Rebalances == 0 {
			t.Error("checkpoint right after the first migration point recorded no migration")
		}
	}
}
