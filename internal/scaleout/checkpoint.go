// Checkpoint/restore for the distributed runtime: a paused run is
// exported as a versioned, deterministic byte blob between compaction
// iterations and later reconstructed into a runtime that resumes and
// finishes with results bit-identical to the uninterrupted run.
//
// What goes in the blob is exactly the state that is not a pure function
// of the immutable inputs (reads, trace, Config):
//
//   - the pre-compaction phases (counting, construction): their timing and
//     per-node software statistics, so a restored run never re-runs the
//     software pipeline;
//   - each node's stepwise nmp.Engine: trace cursor, local clock,
//     accumulated result and every DRAM channel's bank/rank/bus timing
//     (nmp.EngineState) — the engines are quiescent between iterations, so
//     this snapshot is complete;
//   - the measured per-node, per-iteration compute durations of the
//     iterations already executed. The BSP discipline resumes from partial
//     superstep sums; the overlapped discipline replays its global
//     event-driven macro-schedule from cycle 0 with the recorded durations
//     standing in for the already-executed engine steps (the schedule is a
//     deterministic function of durations × halo traffic × topology, so
//     the replay reproduces the uninterrupted timeline exactly while
//     skipping the engine micro-simulation);
//   - for a RebalancePartitioner: the migrated ownership table and the
//     measurement state (cumulative and last-iteration busy times, bucket
//     weights) the next migration decision reads, plus the accumulated
//     migration/halo accounting.
//
// The sharded sub-traces and link clocks are deliberately NOT in the blob:
// sharding is a pure function of (trace, partitioner table) and is
// recomputed on restore, and every topo link clock is reconstructed by the
// deterministic schedule replay. That keeps the blob small (engine timing
// state + durations, not the trace) and keeps one source of truth.
//
// Restore refuses blobs it cannot honour: short or truncated blobs, an
// unknown version tag, and any drift between the blob's recorded identity
// (node count, K, discipline, partitioner, topology, full config digest,
// trace digest) and the (trace, Config) presented at restore time.
package scaleout

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"

	"nmppak/internal/dna"
	"nmppak/internal/nmp"
	"nmppak/internal/readsim"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// CheckpointVersion is the current blob format version. Restore rejects
// any other version; bump it whenever CheckpointState (or anything it
// embeds, such as nmp.EngineState) changes incompatibly.
// Version 2 added the elastic membership section (ElasticState).
const CheckpointVersion = 2

// Structural ceilings applied while validating a decoded blob, before any
// of its counts size an allocation or a loop: far above any simulated
// machine, low enough that a corrupt or adversarial length field cannot
// make Restore balloon.
const (
	maxCheckpointNodes = 1 << 16
	maxCheckpointIters = 1 << 24
)

// checkpointMagic prefixes every blob, before the little-endian uint32
// version tag and the gob-encoded CheckpointState payload.
const checkpointMagic = "NMPPAK-CKPT\n"

// ErrElasticConfig is wrapped by Checkpoint and Restore when the
// configuration routes through the elastic runtime (CheckpointEvery /
// Faults): elastic runs manage their own in-memory recovery ring and are
// not externally pause-and-resumable. Schedulers detect non-preemptible
// jobs with errors.Is(err, ErrElasticConfig) — the tenancy layer queues
// such fault-plan tenants on dedicated nodes instead of time-slicing them.
var ErrElasticConfig = errors.New("elastic config (CheckpointEvery/Faults) manages its own recovery checkpoints")

// RebalanceState is the dynamic-ownership runtime's extra checkpoint
// state: the migrated bucket table and the measurements feeding the next
// migration decision.
type RebalanceState struct {
	// Table is the super-bucket ownership table after the migrations
	// performed so far.
	Table []uint16
	// Cum and LastDur are the measured cumulative and last-iteration busy
	// times per node; Weight is the last iteration's per-bucket traced
	// MacroNode bytes.
	Cum     []sim.Cycle
	LastDur []sim.Cycle
	Weight  []int64
	// Accumulated traffic and migration accounting over the executed
	// iterations.
	LocalTNs      int64
	RemoteTNs     int64
	HaloBytes     int64
	Rebalances    int
	MigratedBytes int64
}

// ElasticState is the elastic runtime's extra checkpoint state: the live
// membership the blob was captured under and the committed logical
// traffic counters a recovery rolls back to. Present exactly on the
// in-memory ring blobs the elastic runtime captures (Config.CheckpointEvery
// / Config.Faults); the external Checkpoint/Restore surface never carries
// it.
type ElasticState struct {
	// Live[i] reports whether node i was still alive at capture time; a
	// dead node's engine is frozen at its own last committed iteration
	// (Engines[i].Next <= ResumeIter).
	Live []bool
	// Committed halo accounting up to ResumeIter.
	LocalTNs  int64
	RemoteTNs int64
	HaloBytes int64
}

// CheckpointState is the decoded form of a checkpoint blob: everything a
// Restore needs beyond the immutable (trace, Config) inputs. Most callers
// only move the opaque blob around; the struct is exported so tools and
// the conformance harness can introspect it.
type CheckpointState struct {
	Version uint32

	// Identity of the run the blob belongs to. Restore matches these
	// against the presented configuration and trace.
	ConfigDigest uint64
	TraceDigest  uint64
	Nodes        int
	K            int
	Overlap      bool
	Partitioner  string
	Topology     string

	// Pre-compaction result (phases 1 and 2 plus per-node software
	// statistics), so a restored run skips the software pipeline.
	Count                 PhaseCycles
	Construct             PhaseCycles
	PerNode               []NodeStats
	PreludeExchangedBytes int64

	// ResumeIter is the first compaction iteration still to execute;
	// Durations[i][it] holds node i's measured compute time for every
	// it < ResumeIter, and Engines[i] is node i's quiescent mid-run state.
	ResumeIter int
	Durations  [][]sim.Cycle
	Engines    []nmp.EngineState

	// BSP partial sums over the executed iterations (ignored by the
	// overlapped discipline, which replays its schedule from the recorded
	// durations instead).
	Compute               sim.Cycle
	Exchange              sim.Cycle
	CompactExchangedBytes int64

	// Rebalance is present exactly when the run uses a
	// RebalancePartitioner.
	Rebalance *RebalanceState

	// Elastic is present exactly on the elastic runtime's internal ring
	// blobs (see ElasticState).
	Elastic *ElasticState
}

// Checkpoint runs the scale-out pipeline — the software phases and the
// first beforeIter compaction iterations — and exports the paused state as
// a versioned, deterministic blob instead of finishing. beforeIter may be
// 0 (pause right after MacroNode construction) up to the trace's iteration
// count (pause after the last iteration, before sealing). The same
// (reads, trace, cfg, beforeIter) always yields a byte-identical blob.
//
// Restore(tr, cfg, blob) — same trace, same config — resumes the run and
// returns a Result bit-identical to Simulate(reads, tr, cfg).
func Checkpoint(reads []readsim.Read, tr *trace.Trace, cfg Config, beforeIter int) ([]byte, error) {
	net, err := validateRun(tr, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.elastic() {
		return nil, fmt.Errorf("scaleout: Checkpoint pauses a deterministic run; %w", ErrElasticConfig)
	}
	iters := len(tr.Iterations)
	if beforeIter < 0 || beforeIter > iters {
		return nil, fmt.Errorf("scaleout: checkpoint iteration %d outside [0, %d]", beforeIter, iters)
	}
	// A capture can be instrumented too: the BSP disciplines record the
	// executed iteration range plus a checkpoint marker at the pause point
	// (the overlapped capture has no global schedule of its own — its
	// restore replays the whole macro-schedule — so it records only the
	// software phases and the marker).
	var pr *probes
	if cfg.Telemetry != nil {
		pr = newProbes(cfg.Telemetry, net, cfg)
	}
	res, err := runPrelude(reads, cfg, net, pr)
	if err != nil {
		return nil, err
	}
	ck := checkpointHeader(cfg, net, tr, res, beforeIter)

	// Advance the compaction runtime to the pause point. The engines are
	// stepped on their local back-to-back clocks (identical in both
	// disciplines — the schedule only composes durations on the global
	// timeline). A BSP capture also accumulates the partial superstep
	// sums its restore resumes from; an overlapped capture skips them
	// (its restore replays the macro-schedule from the recorded durations
	// and never reads them).
	var ckCompute, ckExchange sim.Cycle
	if rp, ok := cfg.Partitioner.(*RebalancePartitioner); ok {
		rr, err := newRebalanceRun(tr, net, cfg, rp)
		if err != nil {
			return nil, err
		}
		rr.setProbes(pr)
		rr.advance(0, beforeIter)
		ck.Compute, ck.Exchange = rr.compute, rr.exchange
		ck.CompactExchangedBytes = rr.out.ExchangedBytes
		ck.Rebalance = &RebalanceState{
			Table:         append([]uint16(nil), rr.table...),
			Cum:           append([]sim.Cycle(nil), rr.cum...),
			LastDur:       append([]sim.Cycle(nil), rr.lastDur...),
			Weight:        append([]int64(nil), rr.weight...),
			LocalTNs:      rr.out.LocalTNs,
			RemoteTNs:     rr.out.RemoteTNs,
			HaloBytes:     rr.out.HaloBytes,
			Rebalances:    rr.out.Rebalances,
			MigratedBytes: rr.out.MigratedBytes,
		}
		if err := snapshotInto(ck, rr.out.Durations, rr.engines); err != nil {
			return nil, err
		}
		ckCompute, ckExchange = rr.compute, rr.exchange
	} else {
		st := ShardTrace(tr, cfg.Nodes, cfg.Partitioner)
		rt, err := newRuntime(st, net, cfg)
		if err != nil {
			return nil, err
		}
		if cfg.Overlap {
			rt.stepAdvance(0, beforeIter)
		} else {
			rt.setProbes(pr)
			rt.bspAdvance(0, beforeIter)
		}
		ck.Compute, ck.Exchange = rt.compute, rt.exchange
		ck.CompactExchangedBytes = rt.exchangedBytes
		if err := snapshotInto(ck, rt.durations, rt.engines); err != nil {
			return nil, err
		}
		ckCompute, ckExchange = rt.compute, rt.exchange
	}
	if pr != nil {
		at := pr.base
		if !cfg.Overlap {
			at = pr.bspStart(ckCompute, ckExchange, beforeIter, iters,
				net.BarrierCycles(), cfg.NMP.SyncBarrierCycles)
		}
		pr.phases.Add(telemetry.SpanCheckpoint, at, at, int64(beforeIter), 0)
		pr.seal()
	}
	return ck.Marshal()
}

// checkpointHeader builds the identity and prelude sections of a
// CheckpointState from a prelude Result: everything except the live
// compaction-runtime state (durations, engines, partial sums). Shared by
// Checkpoint and Session.Checkpoint so an incrementally advanced session
// snapshots byte-identically to a one-shot capture at the same boundary.
func checkpointHeader(cfg Config, net topo.Network, tr *trace.Trace, res *Result, beforeIter int) *CheckpointState {
	return &CheckpointState{
		Version:               CheckpointVersion,
		ConfigDigest:          configDigest(cfg, net.Name()),
		TraceDigest:           traceDigest(tr),
		Nodes:                 cfg.Nodes,
		K:                     cfg.K,
		Overlap:               cfg.Overlap,
		Partitioner:           cfg.Partitioner.Name(),
		Topology:              net.Name(),
		Count:                 res.Count,
		Construct:             res.Construct,
		PerNode:               res.PerNode,
		PreludeExchangedBytes: res.ExchangedBytes,
		ResumeIter:            beforeIter,
	}
}

// snapshotInto records the executed durations and the per-node engine
// snapshots on the checkpoint.
func snapshotInto(ck *CheckpointState, durations [][]sim.Cycle, engines []*nmp.Engine) error {
	ck.Durations = make([][]sim.Cycle, len(engines))
	ck.Engines = make([]nmp.EngineState, len(engines))
	for i, e := range engines {
		ck.Durations[i] = append([]sim.Cycle(nil), durations[i][:ck.ResumeIter]...)
		st, err := e.Snapshot()
		if err != nil {
			return err
		}
		ck.Engines[i] = st
	}
	return nil
}

// Restore reconstructs a distributed run from a checkpoint blob — taken
// under the same trace and configuration — and drives it to completion.
// The returned Result is bit-identical to the uninterrupted
// Simulate(reads, tr, cfg) the checkpoint was carved out of; the reads
// themselves are not needed, because the blob carries the software-phase
// outcome.
func Restore(tr *trace.Trace, cfg Config, blob []byte) (*Result, error) {
	ck, err := UnmarshalCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	net, err := validateRun(tr, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.elastic() {
		return nil, fmt.Errorf("scaleout: Restore resumes a deterministic run; %w", ErrElasticConfig)
	}
	if err := ck.matches(tr, cfg, net); err != nil {
		return nil, err
	}
	res := &Result{
		Nodes:          cfg.Nodes,
		Partitioner:    cfg.Partitioner.Name(),
		Topology:       net.Name(),
		Count:          ck.Count,
		Construct:      ck.Construct,
		PerNode:        append([]NodeStats(nil), ck.PerNode...),
		ExchangedBytes: ck.PreludeExchangedBytes,
	}
	// An instrumented restore records the software phases from the blob's
	// timing and the live compaction range: the BSP disciplines re-enter
	// the global timeline at the checkpointed partial sums, the overlapped
	// discipline replays its whole macro-schedule (so even the pre-pause
	// iterations get spans, with recorded durations standing in).
	var pr *probes
	if cfg.Telemetry != nil {
		pr = newProbes(cfg.Telemetry, net, cfg)
		pr.prelude(res)
	}
	var co *compactOutcome
	if rp, ok := cfg.Partitioner.(*RebalancePartitioner); ok {
		rr, err := resumeRebalanceRun(tr, net, cfg, rp, ck)
		if err != nil {
			return nil, err
		}
		rr.setProbes(pr)
		rr.advance(ck.ResumeIter, rr.iters)
		ro := rr.finish()
		co = &ro.compactOutcome
		res.HaloBytes = ro.HaloBytes
		res.RemoteTNFrac = remoteTNFrac(ro.LocalTNs, ro.RemoteTNs)
		res.Rebalances = ro.Rebalances
		res.MigratedBytes = ro.MigratedBytes
	} else {
		st := ShardTrace(tr, cfg.Nodes, cfg.Partitioner)
		res.HaloBytes = st.HaloBytes
		res.RemoteTNFrac = st.RemoteTNFrac()
		rt, err := resumeRuntime(st, net, cfg, ck)
		if err != nil {
			return nil, err
		}
		rt.setProbes(pr)
		co = rt.run()
	}
	finalize(res, co)
	if pr != nil {
		pr.seal()
	}
	return res, nil
}

// resumeRuntime rebuilds the static-partitioner runtime at the blob's
// pause point: restored engines, recorded durations, BSP partial sums.
func resumeRuntime(st *ShardedTrace, net topo.Network, cfg Config, ck *CheckpointState) (*runtime, error) {
	iters := len(st.Traces[0].Iterations)
	rt := &runtime{
		cfg:            cfg,
		st:             st,
		net:            net,
		n:              cfg.Nodes,
		iters:          iters,
		start:          ck.ResumeIter,
		engines:        make([]*nmp.Engine, cfg.Nodes),
		durations:      make([][]sim.Cycle, cfg.Nodes),
		compute:        ck.Compute,
		exchange:       ck.Exchange,
		exchangedBytes: ck.CompactExchangedBytes,
	}
	for i := range rt.engines {
		e, err := nmp.ResumeEngine(st.Traces[i], cfg.NMP, ck.Engines[i])
		if err != nil {
			return nil, err
		}
		rt.engines[i] = e
		rt.durations[i] = make([]sim.Cycle, iters)
		copy(rt.durations[i], ck.Durations[i])
	}
	return rt, nil
}

// resumeRebalanceRun rebuilds the dynamic-ownership run at the blob's
// pause point. The per-node sub-traces of the executed iterations are
// replaced by empty placeholders (a resumed engine never reads behind its
// cursor); only the iteration-0 quantile tables — the engines' static DIMM
// mapping option — are reconstructed, by re-sharding iteration 0 under the
// deterministic initial assignment the run started from.
func resumeRebalanceRun(tr *trace.Trace, net topo.Network, cfg Config, p *RebalancePartitioner, ck *CheckpointState) (*rebalanceRun, error) {
	rr := newRebalanceState(tr, net, cfg, p)
	rs := ck.Rebalance
	copy(rr.table, rs.Table)
	copy(rr.cum, rs.Cum)
	copy(rr.lastDur, rs.LastDur)
	copy(rr.weight, rs.Weight)
	rr.compute, rr.exchange = ck.Compute, ck.Exchange
	rr.out.ExchangedBytes = ck.CompactExchangedBytes
	rr.out.LocalTNs, rr.out.RemoteTNs, rr.out.HaloBytes = rs.LocalTNs, rs.RemoteTNs, rs.HaloBytes
	rr.out.Rebalances, rr.out.MigratedBytes = rs.Rebalances, rs.MigratedBytes
	for i := range rr.out.Durations {
		copy(rr.out.Durations[i], ck.Durations[i])
	}

	var quantiles [][]dna.Kmer
	if ck.ResumeIter > 0 && rr.iters > 0 {
		init := make([]uint16, BalancedBuckets)
		for b := range init {
			init[b] = uint16(initialOwner(b, rr.n))
		}
		subs, _, _, _ := shardIteration(&tr.Iterations[0], rr.n,
			func(key dna.Kmer) int { return int(init[p.bucket(key, rr.k1)]) }, mat(rr.n))
		quantiles = make([][]dna.Kmer, rr.n)
		for o := range subs {
			quantiles[o] = subs[o].Quantiles
		}
	}
	for i := 0; i < rr.n; i++ {
		rr.traces[i] = &trace.Trace{K: tr.K, Iterations: make([]trace.Iteration, ck.ResumeIter)}
		if quantiles != nil {
			rr.traces[i].Quantiles = quantiles[i]
		}
		e, err := nmp.ResumeEngine(rr.traces[i], cfg.NMP, ck.Engines[i])
		if err != nil {
			return nil, err
		}
		rr.engines[i] = e
	}
	return rr, nil
}

// Marshal encodes the checkpoint as magic + version tag + gob payload.
// Encoding is deterministic: the same state always yields the same bytes.
func (ck *CheckpointState) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	var vtag [4]byte
	binary.LittleEndian.PutUint32(vtag[:], ck.Version)
	buf.Write(vtag[:])
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("scaleout: checkpoint encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalCheckpoint decodes and structurally validates a checkpoint
// blob. It returns an error — never panics — on truncated input, a wrong
// magic or version tag, or internally inconsistent state.
func UnmarshalCheckpoint(blob []byte) (*CheckpointState, error) {
	head := len(checkpointMagic) + 4
	if len(blob) < head {
		return nil, fmt.Errorf("scaleout: checkpoint blob truncated (%d bytes, header is %d)", len(blob), head)
	}
	if string(blob[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("scaleout: not a checkpoint blob (bad magic)")
	}
	v := binary.LittleEndian.Uint32(blob[len(checkpointMagic):head])
	if v != CheckpointVersion {
		return nil, fmt.Errorf("scaleout: checkpoint version %d unsupported (this build reads version %d)", v, CheckpointVersion)
	}
	ck := &CheckpointState{}
	r := bytes.NewReader(blob[head:])
	if err := gob.NewDecoder(r).Decode(ck); err != nil {
		return nil, fmt.Errorf("scaleout: checkpoint decode (truncated or corrupt blob): %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("scaleout: checkpoint blob has %d trailing bytes past the payload", r.Len())
	}
	if ck.Version != v {
		return nil, fmt.Errorf("scaleout: checkpoint header version %d does not match payload version %d", v, ck.Version)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// validate checks the decoded state's internal consistency, so Restore
// can index into it without panicking even on adversarial blobs.
func (ck *CheckpointState) validate() error {
	if ck.Nodes < 1 || ck.Nodes > maxCheckpointNodes {
		return fmt.Errorf("scaleout: checkpoint has %d nodes (valid range [1, %d])", ck.Nodes, maxCheckpointNodes)
	}
	if ck.ResumeIter < 0 || ck.ResumeIter > maxCheckpointIters {
		return fmt.Errorf("scaleout: checkpoint resume iteration %d outside [0, %d]", ck.ResumeIter, maxCheckpointIters)
	}
	if len(ck.PerNode) != ck.Nodes || len(ck.Engines) != ck.Nodes || len(ck.Durations) != ck.Nodes {
		return fmt.Errorf("scaleout: checkpoint per-node state sized %d/%d/%d for %d nodes",
			len(ck.PerNode), len(ck.Engines), len(ck.Durations), ck.Nodes)
	}
	if es := ck.Elastic; es != nil {
		if len(es.Live) != ck.Nodes {
			return fmt.Errorf("scaleout: checkpoint live mask sized %d for %d nodes", len(es.Live), ck.Nodes)
		}
		alive := 0
		for _, l := range es.Live {
			if l {
				alive++
			}
		}
		if alive == 0 {
			return fmt.Errorf("scaleout: checkpoint live mask has no survivors")
		}
	}
	for i := range ck.Durations {
		if len(ck.Durations[i]) != ck.ResumeIter {
			return fmt.Errorf("scaleout: checkpoint node %d records %d durations, resume iteration is %d",
				i, len(ck.Durations[i]), ck.ResumeIter)
		}
		// A dead node of an elastic blob is frozen at its own last
		// committed iteration; everyone else must be exactly at the
		// resume point.
		if ck.Elastic != nil && !ck.Elastic.Live[i] {
			if ck.Engines[i].Next < 0 || ck.Engines[i].Next > ck.ResumeIter {
				return fmt.Errorf("scaleout: checkpoint dead node %d engine cursor %d outside [0, %d]",
					i, ck.Engines[i].Next, ck.ResumeIter)
			}
		} else if ck.Engines[i].Next != ck.ResumeIter {
			return fmt.Errorf("scaleout: checkpoint node %d engine cursor %d, resume iteration is %d",
				i, ck.Engines[i].Next, ck.ResumeIter)
		}
	}
	if rs := ck.Rebalance; rs != nil {
		if len(rs.Table) != BalancedBuckets || len(rs.Weight) != BalancedBuckets {
			return fmt.Errorf("scaleout: checkpoint rebalance tables sized %d/%d, want %d",
				len(rs.Table), len(rs.Weight), BalancedBuckets)
		}
		if len(rs.Cum) != ck.Nodes || len(rs.LastDur) != ck.Nodes {
			return fmt.Errorf("scaleout: checkpoint rebalance measurements sized %d/%d for %d nodes",
				len(rs.Cum), len(rs.LastDur), ck.Nodes)
		}
		for b, o := range rs.Table {
			if int(o) >= ck.Nodes {
				return fmt.Errorf("scaleout: checkpoint rebalance bucket %d owned by node %d of %d", b, o, ck.Nodes)
			}
		}
	}
	return nil
}

// matches verifies the blob belongs to the presented (trace, Config) pair.
func (ck *CheckpointState) matches(tr *trace.Trace, cfg Config, net topo.Network) error {
	if cfg.Nodes != ck.Nodes {
		return fmt.Errorf("scaleout: checkpoint taken on %d nodes, config has %d", ck.Nodes, cfg.Nodes)
	}
	if cfg.K != ck.K {
		return fmt.Errorf("scaleout: checkpoint taken at K=%d, config has K=%d", ck.K, cfg.K)
	}
	if cfg.Overlap != ck.Overlap {
		return fmt.Errorf("scaleout: checkpoint taken with overlap=%v, config has overlap=%v", ck.Overlap, cfg.Overlap)
	}
	if name := cfg.Partitioner.Name(); name != ck.Partitioner {
		return fmt.Errorf("scaleout: checkpoint taken under partitioner %q, config has %q", ck.Partitioner, name)
	}
	if name := net.Name(); name != ck.Topology {
		return fmt.Errorf("scaleout: checkpoint taken on topology %q, config builds %q", ck.Topology, name)
	}
	if _, isRb := cfg.Partitioner.(*RebalancePartitioner); isRb != (ck.Rebalance != nil) {
		return fmt.Errorf("scaleout: checkpoint rebalance state presence (%v) does not match the partitioner", ck.Rebalance != nil)
	}
	if ck.Elastic != nil {
		return fmt.Errorf("scaleout: blob carries elastic membership state (an internal recovery checkpoint); only the elastic runtime's ring restores it")
	}
	if d := configDigest(cfg, net.Name()); d != ck.ConfigDigest {
		return fmt.Errorf("scaleout: configuration digest %016x does not match checkpoint %016x", d, ck.ConfigDigest)
	}
	if ck.ResumeIter > len(tr.Iterations) {
		return fmt.Errorf("scaleout: checkpoint resumes at iteration %d, trace has %d", ck.ResumeIter, len(tr.Iterations))
	}
	if d := traceDigest(tr); d != ck.TraceDigest {
		return fmt.Errorf("scaleout: trace digest %016x does not match checkpoint %016x", d, ck.TraceDigest)
	}
	return nil
}

// configDigest fingerprints every configuration field the simulation
// outcome depends on. Workers is deliberately excluded: it bounds host
// parallelism while computing the (deterministic) result, so a blob may be
// restored on a machine with a different core count.
func configDigest(cfg Config, topoName string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "nodes=%d k=%d min=%d overlap=%v part=%s topo=%s|%+v nmp=%+v sw=%+v ckpt=%d/%g faults=%s",
		cfg.Nodes, cfg.K, cfg.MinCount, cfg.Overlap,
		partitionerID(cfg.Partitioner), topoName, cfg.Topo, cfg.NMP, cfg.Software,
		cfg.CheckpointEvery, cfg.CheckpointBytesPerCycle, cfg.Faults.Fingerprint())
	return h.Sum64()
}

// partitionerID renders a partitioner's identity beyond its name: a
// BalancedPartitioner folds in its assignment-table fingerprint (two
// same-named instances built from different samples shard differently)
// and a RebalancePartitioner its migration trigger.
func partitionerID(p Partitioner) string {
	switch pp := p.(type) {
	case BalancedPartitioner:
		return fmt.Sprintf("%s#%016x", pp.Name(), pp.Fingerprint())
	case *BalancedPartitioner:
		// The pointer form satisfies Partitioner through the value
		// receivers; identity must not depend on which form the caller
		// happened to store.
		return fmt.Sprintf("%s#%016x", pp.Name(), pp.Fingerprint())
	case *RebalancePartitioner:
		return fmt.Sprintf("%s@%g", pp.Name(), pp.Trigger)
	default:
		return p.Name()
	}
}

// traceDigest fingerprints the compaction trace's full contents — shape
// plus every recorded operation (node keys and sizes, transfer routing
// and payloads, update volumes) — so a blob cannot be restored against a
// different trace that merely shares the shape. One FNV pass over the
// packed fields; the quantile tables are derived from the node streams
// and need no separate hashing.
func traceDigest(tr *trace.Trace) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w(uint64(tr.K))
	w(uint64(len(tr.Iterations)))
	for i := range tr.Iterations {
		it := &tr.Iterations[i]
		w(uint64(len(it.Nodes)))
		w(uint64(len(it.Transfers)))
		w(uint64(len(it.Updates)))
		for j := range it.Nodes {
			nd := &it.Nodes[j]
			w(uint64(nd.Key))
			w(uint64(uint32(nd.D1)) | uint64(uint32(nd.D2))<<32)
			w(uint64(uint32(nd.Exts)) | uint64(uint32(nd.Wires))<<32)
			if nd.Invalidated {
				w(1)
			} else {
				w(0)
			}
		}
		for j := range it.Transfers {
			tn := &it.Transfers[j]
			w(uint64(uint32(tn.SrcIdx)) | uint64(uint32(tn.DstIdx))<<32)
			v := uint64(uint32(tn.TNBytes))
			if tn.SuffixSide {
				v |= 1 << 32
			}
			w(v)
		}
		for j := range it.Updates {
			u := &it.Updates[j]
			w(uint64(uint32(u.DstIdx)))
			w(uint64(uint32(u.ReadBytes)) | uint64(uint32(u.WriteBytes))<<32)
		}
	}
	return h.Sum64()
}
