package scaleout

import (
	"testing"

	"nmppak/internal/kmer"
	"nmppak/internal/nmp"
	"nmppak/internal/topo"
)

// On a link-constrained machine the routed topologies must report
// strictly more exposed communication than the full mesh: their multi-hop
// store-and-forward routes share channels the mesh's dedicated wires do
// not, in both replay disciplines. Totals grow accordingly.
func TestRoutedTopologiesExposeMoreComm(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	for _, overlap := range []bool{false, true} {
		base := DefaultConfig(8)
		base.Topo.BytesPerCycle = 2 // 3.2 GB/s links: comm-bound
		base.Overlap = overlap
		mesh, err := Simulate(reads, tr, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []topo.Kind{topo.Torus2D, topo.Dragonfly} {
			cfg := base
			cfg.Topo.Kind = kind
			r, err := Simulate(reads, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.CommFraction <= mesh.CommFraction {
				t.Errorf("overlap=%v %s: comm fraction %.4f not above fullmesh %.4f",
					overlap, r.Topology, r.CommFraction, mesh.CommFraction)
			}
			if r.TotalCycles <= mesh.TotalCycles {
				t.Errorf("overlap=%v %s: total %d not above fullmesh %d",
					overlap, r.Topology, r.TotalCycles, mesh.TotalCycles)
			}
			// Routing changes time, never traffic volume.
			if r.ExchangedBytes != mesh.ExchangedBytes || r.HaloBytes != mesh.HaloBytes {
				t.Errorf("overlap=%v %s: moved %d/%d bytes vs fullmesh %d/%d",
					overlap, r.Topology, r.ExchangedBytes, r.HaloBytes, mesh.ExchangedBytes, mesh.HaloBytes)
			}
		}
	}
}

// Measurement-driven re-partitioning must beat every static scheme on
// measured straggler imbalance — in particular the weight-aware
// BalancedPartitioner, whose counting sample cannot see replay-time skew
// — while keeping the minimizer family's communication locality, and it
// must charge its migrations to the network.
func TestRebalanceReducesImbalance(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	kres, err := kmer.Count(reads, kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Partitioner) *Result {
		t.Helper()
		cfg := DefaultConfig(8)
		cfg.Partitioner = p
		r, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	hash := run(HashPartitioner{})
	min := run(NewMinimizerPartitioner(12))
	bal := run(NewBalancedPartitioner(kres, 12, 8))
	reb := run(NewRebalancePartitioner(12, 1))

	if reb.Imbalance >= bal.Imbalance {
		t.Errorf("rebalance imbalance %.4f not below balanced %.4f", reb.Imbalance, bal.Imbalance)
	}
	if reb.Imbalance >= min.Imbalance {
		t.Errorf("rebalance imbalance %.4f not below minimizer %.4f", reb.Imbalance, min.Imbalance)
	}
	if reb.RemoteTNFrac >= hash.RemoteTNFrac {
		t.Errorf("rebalance lost minimizer locality: remote TNs %.3f vs hash %.3f",
			reb.RemoteTNFrac, hash.RemoteTNFrac)
	}
	if reb.Rebalances == 0 || reb.MigratedBytes == 0 {
		t.Errorf("no migrations recorded: %d rebalances, %d bytes", reb.Rebalances, reb.MigratedBytes)
	}
	if reb.ExchangedBytes <= reb.HaloBytes {
		t.Errorf("migration bytes not charged to the network: exchanged %d, halo %d",
			reb.ExchangedBytes, reb.HaloBytes)
	}
	for _, r := range []*Result{hash, min, bal} {
		if r.Rebalances != 0 || r.MigratedBytes != 0 {
			t.Errorf("%s: static partitioner recorded migrations", r.Partitioner)
		}
	}
}

// The rebalancing replay is measurement-driven but fully deterministic:
// two runs of the same configuration agree on every number.
func TestRebalanceDeterminism(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	cfg := DefaultConfig(8)
	cfg.Partitioner = NewRebalancePartitioner(12, 2)
	a, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || a.Compact != b.Compact ||
		a.MigratedBytes != b.MigratedBytes || a.Rebalances != b.Rebalances ||
		a.Imbalance != b.Imbalance || a.ExchangedBytes != b.ExchangedBytes {
		t.Fatalf("nondeterministic rebalance:\n%+v\n%+v", a, b)
	}
	if a.Rebalances == 0 {
		t.Fatal("period-2 rebalancer never migrated")
	}
}

// With one node there is nothing to migrate: the rebalanced replay
// reduces to the single-node nmp.Simulate outcome cycle for cycle, with
// no traffic and no migrations.
func TestRebalanceN1MatchesNMP(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	cfg := DefaultConfig(1)
	cfg.Partitioner = NewRebalancePartitioner(12, 1)
	res, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := nmp.Simulate(tr, cfg.NMP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compact.Total() != want.Cycles {
		t.Fatalf("N=1 rebalanced compact %d cycles, nmp.Simulate %d", res.Compact.Total(), want.Cycles)
	}
	if res.Rebalances != 0 || res.MigratedBytes != 0 || res.ExchangedBytes != 0 || res.CommCycles != 0 {
		t.Fatalf("N=1 rebalance moved data: %+v", res)
	}
}
