// Conservative-PDES parallel execution of the overlapped discipline.
//
// The serial overlapped runtime (runtime.go) interleaves two very
// different kinds of work on one event timeline: the heavy per-node
// engine micro-simulation (rt.step — the DRAM/NMP cycle model) and the
// light macro schedule (halo flights, dependency resolution). The
// parallel mode splits them: each node's stepwise nmp.Engine plus its
// DRAM channels is a logical process that advances on its private
// sim.Engine, and the macro timeline becomes a window-based synchronous
// protocol loop —
//
//  1. every node pre-steps its next iteration in parallel (goroutine
//     pool, Config.Workers), recording the iteration duration and
//     buffering the step's telemetry on its local clock;
//  2. the scheduler derives a conservative horizon: no event that needs
//     a still-unknown duration can occur before it (see horizon below,
//     whose delivery term comes from the topology's MinLatency — the
//     classic PDES lookahead);
//  3. the shared macro event loop advances up to that horizon
//     (sim.Engine.RunUntil), exchanging the halo flights that became
//     ready and resolving iteration starts, then the next round begins.
//
// Because engine iteration durations are schedule-independent (each
// engine advances on its local back-to-back clock, identical to
// nmp.Simulate — the same invariant the checkpoint replay path relies
// on), pre-stepping cannot change any duration, and because the macro
// loop runs the exact serial closures in the exact serial order, every
// event sequence number, every Result field, every telemetry span and
// every checkpoint blob is byte-identical to the serial runtime. The
// conformance suite pins this across the full topology x discipline x
// node-count matrix.
//
// Fallbacks: one effective worker, a single node, an empty compaction
// phase, or a zero-lookahead network all take the serial path (BSP
// supersteps are already worker-parallel; the rebalance and elastic
// runtimes keep their own serial drivers in v1).
package scaleout

import (
	"math"

	"nmppak/internal/par"
	"nmppak/internal/sim"
)

// parallelOK reports whether the overlapped compaction replay may take
// the conservative-PDES path. The result is identical either way; this
// only gates where the host cycles are spent.
func (rt *runtime) parallelOK() bool {
	return par.Threads(rt.cfg.Workers) > 1 &&
		rt.n > 1 &&
		rt.iters > rt.start &&
		rt.net.MinLatency() > 0
}

// runOverlappedParallel drives the overlapped discipline through the
// window protocol described in the package comment.
func (rt *runtime) runOverlappedParallel() *compactOutcome {
	rt.windowed = true
	rt.stepped = rt.start
	if rt.pr != nil {
		rt.pr.enableBuffer(rt.n, rt.iters)
	}
	lat := rt.net.MinLatency()
	sb := rt.cfg.NMP.SyncBarrierCycles
	workers := rt.cfg.Workers

	// Chain lower bounds on the macro schedule, per node: every
	// iteration begins no earlier than its predecessor's begin plus that
	// predecessor's duration plus the sync barrier (delivery waits only
	// push it later). lb[i] is the bound on node i's next un-stepped
	// iteration's begin; le[i] on its last pre-stepped iteration's end.
	// A restored runtime seeds them from the checkpointed durations.
	lb := make([]sim.Cycle, rt.n)
	le := make([]sim.Cycle, rt.n)
	for i := 0; i < rt.n; i++ {
		for it := 0; it < rt.start; it++ {
			le[i] = lb[i] + rt.durations[i][it]
			lb[i] = le[i] + sb
		}
	}

	return rt.runOverlappedWith(func(g *sim.Engine) {
		for r := rt.start; r < rt.iters; r++ {
			// Round r: all logical processes advance one iteration in
			// parallel. Each worker owns node i exclusively for the
			// step, so the engine, its duration row, its DRAM tracks and
			// its telemetry scratch stay single-writer.
			par.ForIdx(rt.n, workers, func(i int) {
				rt.step(i)
				if rt.pr != nil {
					rt.pr.bufferStep(i, r)
				}
			})
			rt.stepped = r + 1
			for i := 0; i < rt.n; i++ {
				le[i] = lb[i] + rt.durations[i][r]
				lb[i] = le[i] + sb
			}
			if rt.stepped >= rt.iters {
				// Every duration is known; the closing Run drains the
				// macro loop with nothing left to look ahead of.
				return
			}
			g.RunUntil(rt.horizon(r, lat, lb, le))
		}
	})
}

// horizon returns the conservative bound after pre-stepping round r: no
// macro event that needs iteration r+1's (unknown) duration can occur
// strictly before it. Node i's iteration r+1 begins at the later of
//
//   - its own chain bound lb[i] (previous end + sync barrier), and
//   - for every halo sender src of iteration r, that sender's finish
//     bound le[src] plus the network's minimum send-to-delivery latency
//     (contention and degradation only delay further) — the PDES
//     lookahead term that lets a node with pending inbound halo run
//     ahead of a slow sender by the wire latency.
//
// The global horizon is the minimum over nodes.
func (rt *runtime) horizon(r int, lat sim.Cycle, lb, le []sim.Cycle) sim.Cycle {
	h := sim.Cycle(math.MaxInt64)
	halo := rt.st.Halo[r]
	for i := 0; i < rt.n; i++ {
		bound := lb[i]
		for src := 0; src < rt.n; src++ {
			if src != i && halo[src][i] > 0 {
				if d := le[src] + lat; d > bound {
					bound = d
				}
			}
		}
		if bound < h {
			h = bound
		}
	}
	return h
}
