// Conservative-PDES parallel execution of the compaction disciplines.
//
// The serial runtimes interleave two very different kinds of work on one
// timeline: the heavy per-node engine micro-simulation (rt.step — the
// DRAM/NMP cycle model) and the light macro schedule (halo flights,
// supersteps, dependency resolution). The parallel mode splits them: each
// node's stepwise nmp.Engine plus its DRAM channels is a logical process
// that advances on its private sim.Engine, and the macro timeline becomes
// a window-based synchronous protocol loop —
//
//  1. every node pre-steps its next k iterations in parallel (goroutine
//     pool, Config.Workers; k = Config.PrestepDepth), recording the
//     iteration durations and buffering the steps' telemetry on its
//     local clock;
//  2. the scheduler derives a conservative horizon: no event that needs
//     a still-unknown duration can occur before it (see horizon below,
//     whose delivery terms come from the per-pair lookahead matrix —
//     topo.Network.PairMinLatency — so each node's bound uses only its
//     actual halo senders' route distances, not the topology-wide
//     minimum);
//  3. the shared macro event loop advances up to that horizon
//     (sim.Engine.RunUntil), exchanging the halo flights that became
//     ready and resolving iteration starts, then the next round begins.
//
// Because engine iteration durations are schedule-independent (each
// engine advances on its local back-to-back clock, identical to
// nmp.Simulate — the same invariant the checkpoint replay path relies
// on), pre-stepping cannot change any duration — to any depth — and
// because the macro loop runs the exact serial closures in the exact
// serial order, every event sequence number, every Result field, every
// telemetry span and every checkpoint blob is byte-identical to the
// serial runtime. The conformance suite pins this across the full
// topology x discipline x node-count x depth matrix.
//
// The BSP discipline needs no lookahead at all: its supersteps are
// barrier-synchronized, so every iteration boundary is a horizon and
// bspAdvanceWindowed simply pre-steps chunks of k supersteps on the pool
// and drains their exchange/barrier pricing serially. The rebalance and
// elastic runtimes build their own window drivers on the same protocol
// (rebalance.go, elastic.go): migrations, checkpoint captures and fault
// boundaries are conservative horizons there.
//
// Fallbacks: one effective worker, a single node, an empty compaction
// phase, or (overlapped only) a zero-lookahead network all take the
// serial path.
package scaleout

import (
	"math"

	"nmppak/internal/par"
	"nmppak/internal/sim"
	"nmppak/internal/topo"
)

// pairLookahead precomputes the parallel runtime's lookahead matrix:
// look[src][dst] is a conservative lower bound on src -> dst delivery
// (topo.Network.PairMinLatency). On distance-varying topologies distant
// sender pairs get strictly wider bounds than the global MinLatency,
// which widens the windows correspondingly. A Degraded network
// recomputes detour-forced pairs from its actual routes, so the matrix
// must be built only after the degradation events it should observe —
// the elastic runtime rebuilds it per recovery segment.
func pairLookahead(net topo.Network, n int) [][]sim.Cycle {
	look := make([][]sim.Cycle, n)
	for src := 0; src < n; src++ {
		look[src] = make([]sim.Cycle, n)
		for dst := 0; dst < n; dst++ {
			if dst != src {
				look[src][dst] = net.PairMinLatency(src, dst)
			}
		}
	}
	return look
}

// parallelOK reports whether the overlapped compaction replay may take
// the conservative-PDES path. The result is identical either way; this
// only gates where the host cycles are spent.
func (rt *runtime) parallelOK() bool {
	return par.Threads(rt.cfg.Workers) > 1 &&
		rt.n > 1 &&
		rt.iters > rt.start &&
		rt.net.MinLatency() > 0
}

// bspParallelOK reports whether a BSP advancement takes the windowed
// chunked path. Supersteps are barrier-synchronized — iteration
// boundaries are the horizons — so no lookahead condition applies; only
// the worker pool and a multi-node machine matter.
func (rt *runtime) bspParallelOK(from, to int) bool {
	return par.Threads(rt.cfg.Workers) > 1 && rt.n > 1 && to > from
}

// runOverlappedParallel drives the overlapped discipline through the
// window protocol described in the package comment.
func (rt *runtime) runOverlappedParallel() *compactOutcome {
	rt.windowed = true
	rt.stepped = rt.start
	if rt.pr != nil {
		rt.pr.enableBuffer(rt.n, rt.iters)
	}
	look := pairLookahead(rt.net, rt.n)
	sb := rt.cfg.NMP.SyncBarrierCycles
	workers := rt.cfg.Workers
	k := rt.cfg.depth()

	// Chain lower bounds on the macro schedule, per node: every
	// iteration begins no earlier than its predecessor's begin plus that
	// predecessor's duration plus the sync barrier (delivery waits only
	// push it later). lb[i] is the bound on node i's next un-stepped
	// iteration's begin; le[i] on its last pre-stepped iteration's end.
	// A restored runtime seeds them from the checkpointed durations.
	lb := make([]sim.Cycle, rt.n)
	le := make([]sim.Cycle, rt.n)
	for i := 0; i < rt.n; i++ {
		for it := 0; it < rt.start; it++ {
			le[i] = lb[i] + rt.durations[i][it]
			lb[i] = le[i] + sb
		}
	}

	return rt.runOverlappedWith(func(g *sim.Engine) {
		for r := rt.start; r < rt.iters; r += k {
			hi := r + k
			if hi > rt.iters {
				hi = rt.iters
			}
			// Round: all logical processes advance up to k iterations in
			// parallel. Each worker owns node i exclusively for its
			// chunk, so the engine, its duration rows, its DRAM tracks
			// and its telemetry scratch stay single-writer.
			par.ForIdx(rt.n, workers, func(i int) {
				for it := r; it < hi; it++ {
					rt.step(i)
					if rt.pr != nil {
						rt.pr.bufferStep(i, it)
					}
				}
			})
			rt.stepped = hi
			for i := 0; i < rt.n; i++ {
				for it := r; it < hi; it++ {
					le[i] = lb[i] + rt.durations[i][it]
					lb[i] = le[i] + sb
				}
			}
			if rt.stepped >= rt.iters {
				// Every duration is known; the closing Run drains the
				// macro loop with nothing left to look ahead of.
				return
			}
			g.RunUntil(rt.horizon(hi-1, look, lb, le))
		}
	})
}

// horizon returns the conservative bound after pre-stepping through
// iteration r: no macro event that needs iteration r+1's (unknown)
// duration can occur strictly before it. Node i's iteration r+1 begins
// at the later of
//
//   - its own chain bound lb[i] (previous end + sync barrier), and
//   - for every halo sender src of iteration r, that sender's finish
//     bound le[src] plus the pair's minimum send-to-delivery latency
//     look[src][i] (contention and degradation only delay further) —
//     the PDES lookahead term that lets a node with pending inbound
//     halo run ahead of a slow sender by that pair's wire distance.
//
// The global horizon is the minimum over nodes.
func (rt *runtime) horizon(r int, look [][]sim.Cycle, lb, le []sim.Cycle) sim.Cycle {
	h := sim.Cycle(math.MaxInt64)
	halo := rt.st.Halo[r]
	for i := 0; i < rt.n; i++ {
		bound := lb[i]
		for src := 0; src < rt.n; src++ {
			if src != i && halo[src][i] > 0 {
				if d := le[src] + look[src][i]; d > bound {
					bound = d
				}
			}
		}
		if bound < h {
			h = bound
		}
	}
	return h
}

// bspAdvanceWindowed is bspAdvance on the window protocol: chunks of up
// to k supersteps are pre-stepped on the worker pool (buffering their
// telemetry), then each superstep's exchange and barrier pricing drains
// serially in the exact serial order, reading the recorded durations.
// The split is safe because superstep pricing depends only on the
// durations and the static halo matrix, and cycle-exact because the
// drain emits the same spans with the same global times the serial loop
// would.
func (rt *runtime) bspAdvanceWindowed(from, to int) {
	rt.windowed = true
	pr := rt.pr
	if pr != nil && pr.buf == nil {
		pr.enableBuffer(rt.n, rt.iters)
	}
	k := rt.cfg.depth()
	lb := rt.net.BarrierCycles()
	sb := rt.cfg.NMP.SyncBarrierCycles
	var gnow sim.Cycle
	if pr != nil {
		gnow = pr.bspStart(rt.compute, rt.exchange, from, rt.iters, lb, sb)
	}
	durs := make([]sim.Cycle, rt.n)
	for base := from; base < to; base += k {
		hi := base + k
		if hi > to {
			hi = to
		}
		par.ForIdx(rt.n, rt.cfg.Workers, func(i int) {
			for it := base; it < hi; it++ {
				rt.step(i)
				if pr != nil {
					pr.bufferStep(i, it)
				}
			}
		})
		rt.stepped = hi
		for it := base; it < hi; it++ {
			var max sim.Cycle
			maxIdx := 0
			for i := 0; i < rt.n; i++ {
				durs[i] = rt.durations[i][it]
				if durs[i] > max {
					max = durs[i]
					maxIdx = i
				}
			}
			rt.compute += max
			var hx topo.ExchangeStats
			if pr != nil {
				gnow = pr.superstepCompute(it, gnow, durs, max, true)
				hx = topo.ExchangeProbed(rt.net, rt.st.Halo[it], pr.linkAt(gnow))
			} else {
				hx = topo.Exchange(rt.net, rt.st.Halo[it])
			}
			rt.exchange += hx.Cycles
			rt.exchangedBytes += hx.TotalBytes
			if pr != nil {
				gnow = pr.superstepComm(it, rt.iters, gnow, hx, lb, sb, maxIdx)
			}
		}
	}
}
