package scaleout

import (
	"fmt"

	"nmppak/internal/sim"
)

// LinkConfig models the inter-node interconnect: a full mesh of
// point-to-point links where every node has one serializing egress port
// and one serializing ingress port (store-and-forward). Contention is
// modeled as link occupancy: a message holds its source's egress port for
// bytes/BytesPerCycle cycles, travels LatencyCycles, then holds the
// destination's ingress port for the same duration. This is the same
// occupancy discipline internal/nmp uses for its DIMM-to-DIMM bridges,
// lifted to node granularity.
type LinkConfig struct {
	LatencyCycles sim.Cycle // one-way message latency (1600 cy = 1 us at 1.6 GHz)
	BytesPerCycle float64   // per-port bandwidth (15.625 B/cy = 25 GB/s)
}

// DefaultLink returns a 25 GB/s, 1 us full-mesh link — a 200 Gb/s-class
// NIC with RDMA-ish latency.
func DefaultLink() LinkConfig {
	return LinkConfig{LatencyCycles: 1600, BytesPerCycle: 15.625}
}

// Validate checks the configuration.
func (lc LinkConfig) Validate() error {
	if lc.BytesPerCycle <= 0 {
		return fmt.Errorf("scaleout: link bandwidth must be positive, got %v", lc.BytesPerCycle)
	}
	if lc.LatencyCycles < 0 {
		return fmt.Errorf("scaleout: link latency must be non-negative, got %d", lc.LatencyCycles)
	}
	return nil
}

// ExchangeStats summarizes one all-to-all exchange.
type ExchangeStats struct {
	Cycles         sim.Cycle // completion time of the whole exchange
	TotalBytes     int64     // bytes crossing the interconnect
	MaxEgressBytes int64     // heaviest sender (the bandwidth bottleneck)
	Messages       int64
}

// Exchange runs an all-to-all personalized exchange of bytes[src][dst]
// over the interconnect and returns its completion time. Senders issue
// their messages in the classic shifted schedule (node s sends to s+1,
// s+2, ... mod n) so that early rounds do not all target the same
// receiver; ingress contention is resolved in arrival order on the shared
// event kernel, which keeps the result deterministic. Diagonal entries
// (local data) cost nothing.
func (lc LinkConfig) Exchange(n int, bytes [][]int64) ExchangeStats {
	var st ExchangeStats
	if n <= 1 {
		return st
	}
	eng := &sim.Engine{}
	msgs := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst != src && bytes[src][dst] > 0 {
				msgs++
			}
		}
	}
	eng.Reserve(msgs)
	egress := make([]sim.Cycle, n)
	ingress := make([]sim.Cycle, n)
	finish := sim.Cycle(0)
	for src := 0; src < n; src++ {
		for off := 1; off < n; off++ {
			dst := (src + off) % n
			b := bytes[src][dst]
			if b <= 0 {
				continue
			}
			st.TotalBytes += b
			st.Messages++
			dur := sim.Cycle(float64(b)/lc.BytesPerCycle) + 1
			sent := egress[src] + dur
			egress[src] = sent
			d := dst
			eng.At(sent+lc.LatencyCycles, func() {
				slot := eng.Now()
				if ingress[d] > slot {
					slot = ingress[d]
				}
				ingress[d] = slot + dur
				if ingress[d] > finish {
					finish = ingress[d]
				}
			})
		}
		if egress[src] > finish {
			finish = egress[src]
		}
	}
	eng.Run()
	st.Cycles = finish
	for src := 0; src < n; src++ {
		var eb int64
		for dst := 0; dst < n; dst++ {
			if dst != src {
				eb += bytes[src][dst]
			}
		}
		if eb > st.MaxEgressBytes {
			st.MaxEgressBytes = eb
		}
	}
	return st
}

// BarrierCycles is the cost of a full barrier across n nodes: a
// reduce-then-broadcast tree of ceil(log2 n) message hops each way. A
// single node synchronizes for free.
func (lc LinkConfig) BarrierCycles(n int) sim.Cycle {
	if n <= 1 {
		return 0
	}
	hops := 0
	for c := 1; c < n; c <<= 1 {
		hops++
	}
	return 2 * sim.Cycle(hops) * lc.LatencyCycles
}
