package scaleout

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"nmppak/internal/sim"
)

// A session sliced into arbitrary Step / Checkpoint / ResumeSession
// sequences must finish reflect.DeepEqual to the uninterrupted Simulate,
// and every mid-run snapshot must be byte-identical to the one-shot
// Checkpoint at the same boundary — for the static partitioners and the
// dynamic-ownership (rebalance) runtime alike.
func TestSessionSliceEquivalence(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	iters := len(tr.Iterations)
	if iters < 3 {
		t.Fatalf("workload too small: %d iterations", iters)
	}
	for _, tc := range []struct {
		name string
		cfg  func() Config
	}{
		{"hash", func() Config { return DefaultConfig(4) }},
		{"minimizer", func() Config {
			c := DefaultConfig(4)
			c.Partitioner = NewMinimizerPartitioner(12)
			return c
		}},
		{"rebalance", func() Config {
			c := DefaultConfig(4)
			c.Partitioner = NewRebalancePartitioner(12, 1)
			return c
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			want, err := Simulate(reads, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// One session advanced iteration by iteration to completion.
			s, err := NewSession(reads, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if s.Iterations() != iters || s.Next() != 0 || s.Remaining() != iters {
				t.Fatalf("fresh session at %d/%d (remaining %d)", s.Next(), s.Iterations(), s.Remaining())
			}
			last := s.Progress()
			for s.Remaining() > 0 {
				if got := s.Step(1); got != 1 {
					t.Fatalf("Step(1) executed %d iterations", got)
				}
				if p := s.Progress(); p < last {
					t.Fatalf("Progress went backwards: %d after %d", p, last)
				} else {
					last = p
				}
			}
			got, err := s.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stepped session result differs from Simulate:\n%+v\nvs\n%+v", got, want)
			}
			if got.TotalCycles != last {
				t.Fatalf("final Progress %d != TotalCycles %d", last, got.TotalCycles)
			}
			if _, err := s.Finish(); err == nil {
				t.Fatal("second Finish succeeded")
			}
			if _, err := s.Checkpoint(); err == nil {
				t.Fatal("Checkpoint after Finish succeeded")
			}

			// A preemption chain: advance, snapshot, drop the session, resume
			// from the blob, repeat across every boundary — each snapshot must
			// match the one-shot Checkpoint blob, and the final Result the
			// uninterrupted run.
			s2, err := NewSession(reads, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for b := 1; b < iters; b++ {
				s2.Step(1)
				blob, err := s2.Checkpoint()
				if err != nil {
					t.Fatal(err)
				}
				oneShot, err := Checkpoint(reads, tr, cfg, b)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(blob, oneShot) {
					t.Fatalf("session blob at boundary %d differs from one-shot Checkpoint", b)
				}
				s2, err = ResumeSession(tr, cfg, blob)
				if err != nil {
					t.Fatal(err)
				}
				if s2.Next() != b {
					t.Fatalf("resumed session at boundary %d, want %d", s2.Next(), b)
				}
			}
			got2, err := s2.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got2, want) {
				t.Fatalf("preempted-and-resumed result differs from Simulate:\n%+v\nvs\n%+v", got2, want)
			}
		})
	}
}

// Progress differences are the slice costs a fleet scheduler charges; the
// sum over any slicing must land exactly on TotalCycles, and a resumed
// session must report the same clock as the one it was carved from.
func TestSessionProgressComposes(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	cfg := DefaultConfig(3)
	want, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total sim.Cycle
	prev := s.Progress()
	for s.Remaining() > 0 {
		s.Step(2) // uneven slicing on purpose
		blob, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		s, err = ResumeSession(tr, cfg, blob)
		if err != nil {
			t.Fatal(err)
		}
		p := s.Progress()
		total += p - prev
		prev = p
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("sliced session result differs from Simulate")
	}
	base := res.Count.Total() + res.Construct.Total()
	if base+total != res.TotalCycles {
		t.Fatalf("slice costs sum to %d + base %d, TotalCycles is %d", total, base, res.TotalCycles)
	}
}

// Session rejects what it cannot slice: elastic configs (with the
// ErrElasticConfig sentinel), the overlapped discipline, and telemetry.
func TestSessionValidation(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)

	elastic := DefaultConfig(2)
	elastic.CheckpointEvery = 2
	if _, err := NewSession(reads, tr, elastic); !errors.Is(err, ErrElasticConfig) {
		t.Fatalf("elastic NewSession error = %v, want ErrElasticConfig", err)
	}

	overlap := DefaultConfig(2)
	overlap.Overlap = true
	if _, err := NewSession(reads, tr, overlap); err == nil {
		t.Fatal("overlapped NewSession succeeded")
	}

	blob, err := Checkpoint(reads, tr, DefaultConfig(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSession(tr, elastic, blob); !errors.Is(err, ErrElasticConfig) {
		t.Fatalf("elastic ResumeSession error = %v, want ErrElasticConfig", err)
	}
	other := DefaultConfig(4)
	if _, err := ResumeSession(tr, other, blob); err == nil {
		t.Fatal("ResumeSession accepted a blob from a different node count")
	}
}

// The exported sentinel must surface through Checkpoint and Restore so a
// scheduler can errors.Is-detect non-preemptible (fault-plan) tenants.
func TestErrElasticConfigSentinel(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	elastic := DefaultConfig(2)
	elastic.CheckpointEvery = 2

	if _, err := Checkpoint(reads, tr, elastic, 1); !errors.Is(err, ErrElasticConfig) {
		t.Fatalf("Checkpoint error = %v, want ErrElasticConfig", err)
	}
	blob, err := Checkpoint(reads, tr, DefaultConfig(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(tr, elastic, blob); !errors.Is(err, ErrElasticConfig) {
		t.Fatalf("Restore error = %v, want ErrElasticConfig", err)
	}
}
