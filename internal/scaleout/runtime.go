// The distributed compaction runtime: N stepwise per-node NMP engines
// (nmp.Engine) and the interconnect driven together on one shared
// internal/sim event timeline, replacing the post-hoc per-phase
// aggregation the package started with. Two execution disciplines share
// the machinery:
//
//   - BSP (Config.Overlap == false, the default): every iteration is a
//     global superstep — all nodes compute, the slowest paces the step,
//     the iteration's halo exchange runs serially on the links, and a
//     log-tree barrier plus the NMP runtime's own sync barrier close the
//     step. This reproduces the original aggregation model cycle for
//     cycle (TestGoldenEquivalence pins it).
//   - Overlapped (Config.Overlap == true): a node that finishes iteration
//     i immediately streams its outgoing halo bytes while lagging nodes
//     are still computing, and only the dependent work waits — node j may
//     begin iteration i+1 as soon as (a) its own iteration i ended plus
//     the local sync barrier and (b) every iteration-i halo message
//     destined to j has been delivered. There is no global barrier; halo
//     messages route hop-by-hop through the same contended topology links
//     (topo.Flight) that price topo.Exchange.
//
// In both modes each engine advances on its local back-to-back clock
// (identical to nmp.Simulate), so per-iteration durations — and therefore
// every per-node Result — are identical across modes; the modes differ
// only in how those durations and the halo traffic compose on the global
// timeline. That makes the BSP/overlap comparison exact: same compute,
// different schedule.
package scaleout

import (
	"nmppak/internal/nmp"
	"nmppak/internal/par"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
)

// compactOutcome is the compaction phase as scheduled by the runtime.
type compactOutcome struct {
	Phase          PhaseCycles
	LinkBarrier    sim.Cycle // interconnect share of Phase.Barrier
	ExchangedBytes int64
	NMP            []*nmp.Result
	// Durations[i][it] is node i's compute time for iteration it.
	Durations [][]sim.Cycle
}

// runtime owns the per-node engines and the shard schedule. A fresh
// runtime starts at iteration 0; one reconstructed from a checkpoint
// (resumeRuntime, checkpoint.go) carries the recorded durations and BSP partial sums
// of the iterations already executed and steps its engines only from
// `start` on.
type runtime struct {
	cfg   Config
	st    *ShardedTrace
	net   topo.Network
	n     int
	iters int
	start int // first iteration the engines step live

	engines   []*nmp.Engine
	durations [][]sim.Cycle

	// Parallel (conservative-PDES) execution state, zero on the serial
	// path: windowed marks the run, stepped is the first iteration the
	// window driver has NOT yet pre-stepped (uniform across nodes — the
	// synchronous protocol advances every node one iteration per round).
	windowed bool
	stepped  int

	// BSP partial sums over iterations [0, start) (zero for fresh runs;
	// bspAdvance accumulates into them).
	compute        sim.Cycle
	exchange       sim.Cycle
	exchangedBytes int64

	// pr is the run's telemetry glue; nil disables every recording site.
	pr *probes
}

// setProbes attaches (or, with nil, skips) the run's telemetry glue.
func (rt *runtime) setProbes(pr *probes) {
	rt.pr = pr
	if pr != nil {
		pr.attach(rt.engines)
	}
}

func newRuntime(st *ShardedTrace, net topo.Network, cfg Config) (*runtime, error) {
	rt := &runtime{
		cfg:       cfg,
		st:        st,
		net:       net,
		n:         cfg.Nodes,
		iters:     len(st.Traces[0].Iterations),
		engines:   make([]*nmp.Engine, cfg.Nodes),
		durations: make([][]sim.Cycle, cfg.Nodes),
	}
	for i := range rt.engines {
		e, err := nmp.NewEngine(st.Traces[i], cfg.NMP)
		if err != nil {
			return nil, err
		}
		rt.engines[i] = e
		rt.durations[i] = make([]sim.Cycle, len(st.Traces[0].Iterations))
	}
	return rt, nil
}

// step advances node i by one iteration on its local clock and records the
// duration. The overlapped scheduler calls this lazily from inside global
// events — serially, unlike runBSP's per-superstep fan-out — which is what
// lets interconnect events interleave with engine stepping on one
// timeline; the replay is a small share of Simulate's wall-clock (the
// software phases dominate), so the lost fan-out is not measurable in the
// ScaleOut8x benchmarks.
func (rt *runtime) step(i int) sim.Cycle {
	e := rt.engines[i]
	it := e.Next()
	if rt.pr != nil {
		rt.pr.beforeStep(i, e)
	}
	ti := e.StepIteration(e.NextStart())
	d := ti.End - ti.Start
	rt.durations[i][it] = d
	if rt.pr != nil {
		rt.pr.afterStep(i, e, ti)
	}
	return d
}

// run executes the compaction phase under the configured discipline. An
// overlapped run takes the conservative-PDES parallel path when the
// machine and host shape support it (see parallelOK); BSP advancement
// takes the windowed chunked path under the same worker-pool condition
// (see bspParallelOK, inside bspAdvance).
func (rt *runtime) run() *compactOutcome {
	var out *compactOutcome
	if rt.cfg.Overlap {
		if rt.parallelOK() {
			out = rt.runOverlappedParallel()
		} else {
			out = rt.runOverlapped()
		}
	} else {
		out = rt.runBSP()
	}
	out.Durations = rt.durations
	out.NMP = make([]*nmp.Result, rt.n)
	for i, e := range rt.engines {
		out.NMP[i] = e.Result()
	}
	return out
}

// bspAdvance drives the engines superstep by superstep through iterations
// [from, to): all nodes step iteration it (concurrently — the engines are
// independent), the slowest node paces the step, then the iteration's halo
// exchange is appended serially, exactly as the original aggregation loop
// priced them. The partial sums accumulate on the runtime so a run can be
// split at any iteration boundary — runBSP finishes the whole trace, the
// checkpoint capture stops mid-way and snapshots. With a real worker pool
// the windowed variant (runtime_parallel.go) pre-steps whole chunks of
// supersteps and drains their pricing serially — cycle-exact either way.
func (rt *runtime) bspAdvance(from, to int) {
	if rt.bspParallelOK(from, to) {
		rt.bspAdvanceWindowed(from, to)
		return
	}
	pr := rt.pr
	lb := rt.net.BarrierCycles()
	sb := rt.cfg.NMP.SyncBarrierCycles
	var gnow sim.Cycle
	if pr != nil {
		gnow = pr.bspStart(rt.compute, rt.exchange, from, rt.iters, lb, sb)
	}
	for it := from; it < to; it++ {
		slowest := make([]sim.Cycle, rt.n)
		par.ForIdx(rt.n, rt.cfg.Workers, func(i int) {
			slowest[i] = rt.step(i)
		})
		var max sim.Cycle
		maxIdx := 0
		for i, d := range slowest {
			if d > max {
				max = d
				maxIdx = i
			}
		}
		rt.compute += max
		var hx topo.ExchangeStats
		if pr != nil {
			gnow = pr.superstepCompute(it, gnow, slowest, max, false)
			hx = topo.ExchangeProbed(rt.net, rt.st.Halo[it], pr.linkAt(gnow))
		} else {
			hx = topo.Exchange(rt.net, rt.st.Halo[it])
		}
		rt.exchange += hx.Cycles
		rt.exchangedBytes += hx.TotalBytes
		if pr != nil {
			gnow = pr.superstepComm(it, rt.iters, gnow, hx, lb, sb, maxIdx)
		}
	}
}

// stepAdvance steps every engine through iterations [from, to) without
// pricing the per-iteration BSP exchanges. The overlap-discipline
// checkpoint capture uses it: an overlapped restore rebuilds its own
// event-driven schedule (and ExchangedBytes) from the halo matrix and
// never reads the BSP partial sums, so simulating the exchanges during
// capture would be discarded work. Probes are never attached on this
// path, so each worker can batch its node's whole iteration range.
func (rt *runtime) stepAdvance(from, to int) {
	par.ForIdx(rt.n, rt.cfg.Workers, func(i int) {
		for it := from; it < to; it++ {
			rt.step(i)
		}
	})
}

// runBSP completes the BSP discipline from the runtime's start iteration
// and prices the closing barriers (which depend only on the total
// iteration count, so a restored run reproduces them exactly).
func (rt *runtime) runBSP() *compactOutcome {
	rt.bspAdvance(rt.start, rt.iters)
	out := &compactOutcome{ExchangedBytes: rt.exchangedBytes}
	linkBarrier, syncBarrier := bspBarriers(rt.net, rt.cfg, rt.iters)
	out.Phase = PhaseCycles{Compute: rt.compute, Exchange: rt.exchange, Barrier: linkBarrier + syncBarrier}
	out.LinkBarrier = linkBarrier
	return out
}

// bspBarriers prices the closing barriers of a BSP compaction phase:
// iters-1 interconnect log-tree barriers and as many NMP-runtime sync
// barriers between consecutive supersteps. Shared by runBSP and the
// rebalancing runtime (rebalance.go), whose supersteps must stay priced
// identically for the partitioner comparisons to mean anything.
func bspBarriers(net topo.Network, cfg Config, iters int) (link, sync sim.Cycle) {
	if iters > 1 {
		link = sim.Cycle(iters-1) * net.BarrierCycles()
		sync = sim.Cycle(iters-1) * cfg.NMP.SyncBarrierCycles
	}
	return link, sync
}

// ovNode is one node's overlap-mode scheduling state on the global
// timeline (link occupancy lives in the shared topo.Flight).
type ovNode struct {
	// pendingIn[it] counts halo messages of iteration it still in flight
	// toward this node.
	pendingIn []int
	// readyAt is when the node's own compute-side constraint for its next
	// iteration is satisfied (previous end + sync barrier).
	readyAt sim.Cycle
	// finished[it] is set once the node's iteration it has completed.
	finished []bool
	started  []bool
}

// runOverlapped schedules the same per-node iteration durations
// event-driven: finishing nodes stream their halo bytes while laggards
// compute, and each node's next iteration waits only on its own finish
// (plus sync barrier) and on the delivery of the halo traffic it depends
// on. The phase is split as Compute = the slowest node's unconstrained
// local chain (what a zero-cost interconnect would yield) and Exchange =
// the communication time the schedule failed to hide.
func (rt *runtime) runOverlapped() *compactOutcome {
	return rt.runOverlappedWith(nil)
}

// runOverlappedWith is runOverlapped with an optional window driver: when
// windows is non-nil it is handed the global engine after the iteration-0
// events are seeded and owns the interleaving of engine pre-stepping with
// bounded event-loop advancement (runtime_parallel.go); the closing Run
// drains whatever the driver left pending. The macro schedule — every
// event closure, in creation order — is byte-for-byte the serial one
// either way, which is what makes the parallel mode cycle-exact: the
// event kernel orders ties by sequence number, and identical closure
// creation order means identical sequence numbers.
func (rt *runtime) runOverlappedWith(windows func(g *sim.Engine)) *compactOutcome {
	out := &compactOutcome{}
	n, iters := rt.n, rt.iters
	if iters == 0 {
		return out
	}
	pr := rt.pr
	sb := rt.cfg.NMP.SyncBarrierCycles
	// lastEnd[i] is node i's last iteration end on the compaction-phase
	// clock (global minus pr.base), for the gap spans between iterations.
	lastEnd := make([]sim.Cycle, n)
	g := &sim.Engine{}
	if pr != nil {
		g.SetProbe(&pr.loop)
	}
	nodes := make([]*ovNode, n)
	for i := range nodes {
		nodes[i] = &ovNode{
			pendingIn: make([]int, iters),
			finished:  make([]bool, iters),
			started:   make([]bool, iters),
		}
	}
	for it := 0; it < iters; it++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if dst != src && rt.st.Halo[it][src][dst] > 0 {
					nodes[dst].pendingIn[it]++
					out.ExchangedBytes += rt.st.Halo[it][src][dst]
				}
			}
		}
	}
	fl := topo.NewFlight(rt.net, g)
	if pr != nil {
		fl.SetProbe(&topo.Probe{Links: pr.links, Offset: pr.base})
	}
	var makespan sim.Cycle
	note := func(t sim.Cycle) {
		if t > makespan {
			makespan = t
		}
	}

	var begin func(i, it int, at sim.Cycle)
	// tryStart launches node i's iteration it once both its compute-side
	// and delivery-side dependencies have resolved; the triggering event
	// supplies the later of the two times. src is the halo sender when a
	// delivery triggered the call, -1 when the node's own finish did.
	tryStart := func(i, it, src int) {
		nd := nodes[i]
		if it >= iters || nd.started[it] || !nd.finished[it-1] || nd.pendingIn[it-1] > 0 {
			return
		}
		nd.started[it] = true
		at := nd.readyAt
		bound := telemetry.BoundSync
		if now := g.Now(); now > at {
			at = now
			if src >= 0 {
				// The last constraint to resolve was a halo delivery that
				// landed after the node's own compute-side readiness: the
				// interconnect bounded this iteration.
				bound = telemetry.BoundDelivery
			}
		}
		if pr != nil {
			s := src
			if bound != telemetry.BoundDelivery {
				s = -1
			}
			pr.c.AddDep(i, it, bound, s)
		}
		begin(i, it, at)
	}
	finish := func(i, it int) {
		nd := nodes[i]
		now := g.Now()
		nd.finished[it] = true
		note(now)
		// Stream this iteration's outgoing halo through the topology: the
		// Flight reserves the first route link immediately (the sender's
		// serializing injection port) and store-and-forwards through every
		// contended downstream link, the same occupancy discipline
		// topo.Exchange uses.
		for off := 1; off < n; off++ {
			dst := (i + off) % n
			b := rt.st.Halo[it][i][dst]
			if b <= 0 {
				continue
			}
			d := dst
			fl.Send(i, d, b, func() {
				note(g.Now())
				nodes[d].pendingIn[it]--
				tryStart(d, it+1, i)
			})
		}
		if it+1 < iters {
			nd.readyAt = now + sb
			tryStart(i, it+1, -1)
		}
	}
	begin = func(i, it int, at sim.Cycle) {
		g.At(at, func() {
			// The gap since the node's previous iteration decomposes into
			// the sync barrier and, past it, the halo-delivery wait (the
			// start is never earlier than readyAt = previous end + sb).
			if pr != nil && it > 0 {
				e0 := lastEnd[i]
				if sb > 0 {
					pr.node[i].Add(telemetry.SpanSyncBarrier, pr.base+e0, pr.base+e0+sb, int64(it), 0)
				}
				if at > e0+sb {
					pr.node[i].Add(telemetry.SpanDeliveryWait, pr.base+e0+sb, pr.base+at, int64(it), 0)
				}
			}
			// A restored run replays the recorded duration of an already-
			// executed iteration instead of re-stepping the engine: the
			// global schedule is a deterministic function of (durations,
			// halo, topology), so replaying the macro-schedule with the
			// checkpointed durations reproduces the uninterrupted timeline
			// exactly while skipping the engine micro-simulation. A
			// windowed (parallel) run extends the same replay idea to live
			// iterations: the window driver pre-steps the engines in
			// parallel, so by the time an iteration begins here its
			// duration is already recorded and its telemetry buffered.
			var d sim.Cycle
			switch {
			case it < rt.start:
				d = rt.durations[i][it]
				if pr != nil {
					pr.placeReplayed(i, it, pr.base+at, d)
				}
			case it < rt.stepped:
				d = rt.durations[i][it]
				if pr != nil {
					pr.placeBuffered(i, it, pr.base+at)
				}
			default:
				if rt.windowed {
					// The lookahead bound admitted an event it must
					// exclude — a conservative-PDES protocol violation,
					// never a recoverable condition.
					panic("scaleout: parallel runtime reached an un-stepped iteration")
				}
				d = rt.step(i)
				if pr != nil {
					pr.placeIter(i, it, pr.base+at)
				}
			}
			lastEnd[i] = at + d
			g.After(d, func() { finish(i, it) })
		})
	}
	for i := 0; i < n; i++ {
		nodes[i].started[0] = true
		begin(i, 0, 0)
	}
	if windows != nil {
		windows(g)
	}
	g.Run()

	// The unconstrained local chains are what a free interconnect would
	// run; anything beyond the slowest of them is exposed communication.
	var compute sim.Cycle
	for _, e := range rt.engines {
		if e.Now() > compute {
			compute = e.Now()
		}
	}
	if pr != nil {
		for i := 0; i < n; i++ {
			if lastEnd[i] < makespan {
				pr.node[i].Add(telemetry.SpanIdle, pr.base+lastEnd[i], pr.base+makespan, int64(iters-1), 0)
			}
		}
		if compute > 0 {
			pr.phases.Add(telemetry.SpanCompute, pr.base, pr.base+compute, -1, 0)
		}
		if makespan > compute {
			pr.phases.Add(telemetry.SpanExchangeWait, pr.base+compute, pr.base+makespan, -1, out.ExchangedBytes)
		}
	}
	out.Phase = PhaseCycles{Compute: compute, Exchange: makespan - compute, Barrier: 0}
	return out
}
