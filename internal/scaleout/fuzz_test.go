package scaleout

import (
	"testing"

	"nmppak/internal/trace"
)

// fuzzSeedBlob builds a tiny valid checkpoint blob (and the trace/config
// it belongs to) for the corpus: flipped and truncated variants of real
// bytes probe much deeper than random noise.
func fuzzSeedBlob(t interface{ Fatal(...any) }) ([]byte, *trace.Trace, Config) {
	tr := &trace.Trace{K: 32}
	cfg := DefaultConfig(2)
	blob, err := Checkpoint(nil, tr, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return blob, tr, cfg
}

// FuzzRestoreBlob feeds arbitrary bytes into the checkpoint decode and
// restore paths. The contract under fuzzing: corrupted input must produce
// a clean error — never a panic, and never an allocation sized by an
// unvalidated length field (the structural caps in validate() bound every
// count before it sizes anything).
func FuzzRestoreBlob(f *testing.F) {
	blob, tr, cfg := fuzzSeedBlob(f)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:len(checkpointMagic)+2])
	f.Add([]byte("NMPPAK-CKPT\n\x02\x00\x00\x00garbage"))
	f.Add([]byte{})
	for _, i := range []int{len(checkpointMagic) + 1, len(blob) / 2, len(blob) - 3} {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := UnmarshalCheckpoint(data)
		if err != nil {
			return
		}
		// Structurally valid decodes must still restore without panicking:
		// either a clean run (the seed blob round-tripping) or a clean
		// mismatch error.
		if ck.Nodes != cfg.Nodes {
			return
		}
		if _, err := Restore(tr, cfg, data); err != nil {
			return
		}
	})
}
