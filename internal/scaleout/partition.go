package scaleout

import (
	"fmt"
	"sort"

	"nmppak/internal/dna"
	"nmppak/internal/kmer"
)

// Partitioner assigns ownership of k-mers (during counting) and MacroNode
// keys (during graph construction and compaction replay) to scale-out
// nodes. Ownership must be a pure function of the key so that every node
// computes the same assignment without coordination, exactly as PaKman's
// MPI ranks do.
type Partitioner interface {
	// Name identifies the strategy in reports.
	Name() string
	// Owner returns the owning node in [0, nodes) for a length-kk word.
	Owner(key dna.Kmer, kk, nodes int) int
}

// mix64 is the splitmix64 finalizer, a cheap high-quality bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashPartitioner owns a key by a hash of the full word — the maximally
// balanced assignment (every key is an independent coin flip), at the cost
// of scattering adjacent graph nodes across the machine, which makes
// essentially all TransferNode traffic cross-node at large N.
type HashPartitioner struct{}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

// Owner implements Partitioner.
func (HashPartitioner) Owner(key dna.Kmer, kk, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	return int(mix64(uint64(key)) % uint64(nodes))
}

// MinimizerPartitioner owns a key by the hash of its minimizer: the m-mer
// of the word with the smallest hashed value. Words sharing a minimizer —
// in particular most consecutive k-mers of a read, and a MacroNode key
// with most of its graph neighbors — land on the same node, trading some
// load balance for communication locality.
type MinimizerPartitioner struct {
	M int // minimizer length; clamped to the word length
}

// NewMinimizerPartitioner returns a minimizer partitioner with m-mer
// length m (the literature's common choice for k=32 is m in [8,16]).
func NewMinimizerPartitioner(m int) MinimizerPartitioner {
	if m < 1 {
		m = 1
	}
	return MinimizerPartitioner{M: m}
}

// Name implements Partitioner.
func (p MinimizerPartitioner) Name() string { return fmt.Sprintf("minimizer%d", p.M) }

// Owner implements Partitioner.
func (p MinimizerPartitioner) Owner(key dna.Kmer, kk, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	return int(mix64(p.minimizer(key, kk)) % uint64(nodes))
}

// minimizer returns the hash-minimal m-mer of the kk-length word.
func (p MinimizerPartitioner) minimizer(key dna.Kmer, kk int) uint64 {
	return minimizerOf(key, kk, p.M)
}

// minimizerOf returns the hash-minimal m-mer of a kk-length word (the
// word itself when m >= kk).
func minimizerOf(key dna.Kmer, kk, m int) uint64 {
	if m >= kk {
		return uint64(key)
	}
	mask := dna.KmerMask(m)
	w := uint64(key)
	best := ^uint64(0)
	for i := 0; i+m <= kk; i++ {
		mm := (w >> (2 * uint(kk-m-i))) & mask
		if h := mix64(mm); h < best {
			best = h
		}
	}
	return best
}

// BalancedBuckets is the number of minimizer super-buckets a
// BalancedPartitioner bins; with B buckets over n nodes the greedy
// assignment can equalize any mass profile to within the heaviest single
// bucket's weight.
const BalancedBuckets = 4096

// balancedSpillDivisor sets the heavy-bucket threshold: a super-bucket
// holding more than 1/(divisor*nodes) of the total observed mass is
// scattered per key instead of owned whole. The heavy buckets are exactly
// the repeat-family ones whose replay cost is both large and strongly
// time-correlated, so binning them whole puts an unpredictable lump on
// one node; per-key scattering dilutes that lump machine-wide the way
// hash partitioning does, while the long tail of light buckets keeps its
// minimizer locality and weight-aware placement.
const balancedSpillDivisor = 128

// scatterOwner marks a spilled bucket in the assignment table.
const scatterOwner = ^uint16(0)

// superBucket maps a word to its minimizer super-bucket; every
// bucket-table scheme (BalancedPartitioner, RebalancePartitioner) shares
// this mapping so their tables stay comparable.
func superBucket(key dna.Kmer, kk, m int) int {
	return int(mix64(minimizerOf(key, kk, m)) % BalancedBuckets)
}

// initialOwner is the coordination-free bucket-coherent hash assignment
// of a super-bucket: BalancedPartitioner uses it for buckets its sample
// never saw (and for foreign node counts), RebalancePartitioner as the
// static assignment its runtime migrations start from.
func initialOwner(bucket, nodes int) int {
	return int(mix64(uint64(bucket)+0x9e3779b97f4a7c15) % uint64(nodes))
}

// BalancedPartitioner owns keys by minimizer super-bucket, with buckets
// assigned to nodes by greedy weight-aware binning instead of a hash: the
// buckets are ranked by observed k-mer mass (sampled from a counting
// result) and handed, heaviest first, to the least-loaded node (LPT
// scheduling), except that buckets heavy enough to distort any binning
// are scattered per key. This attacks the measured Result.Imbalance head
// on — pure minimizer partitioning is blind to the mass skew that
// repeat-heavy genomes concentrate in a few minimizer buckets — while
// keeping most of the minimizer scheme's communication locality.
// Ownership stays a pure function of the key: the bucket table is built
// once from the counting sample and baked into the value, so every node
// computes the same assignment without coordination.
type BalancedPartitioner struct {
	M     int
	nodes int      // node count the table was built for
	table []uint16 // bucket -> owning node, or scatterOwner
}

// NewBalancedPartitioner builds a weight-aware partitioner for an n-node
// machine from an observed counting result: every counted k-mer deposits
// its count on the super-buckets of its two boundary (k-1)-mers — the
// MacroNode keys the compaction replay partitions by — and the buckets
// are then greedy-binned (heavy outliers: scattered). m is the minimizer
// length (clamped to >= 1).
func NewBalancedPartitioner(res *kmer.Result, m, nodes int) BalancedPartitioner {
	if m < 1 {
		m = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	p := BalancedPartitioner{M: m, nodes: nodes, table: make([]uint16, BalancedBuckets)}
	weight := make([]int64, BalancedBuckets)
	k1 := res.K - 1
	var total int64
	for _, kc := range res.Kmers {
		weight[p.bucket(kc.Km.Prefix(), k1)] += int64(kc.Count)
		weight[p.bucket(kc.Km.Suffix(res.K), k1)] += int64(kc.Count)
		total += 2 * int64(kc.Count)
	}
	// Spill the heavy outliers, then LPT the rest: heaviest bucket first
	// onto the least-loaded node, with deterministic tie-breaks (bucket
	// index, then node index). On a sample too sparse for the divisor the
	// integer threshold would truncate to 0 and spill every non-empty
	// bucket (degenerating into per-key hashing); spill nothing instead.
	thresh := total / (balancedSpillDivisor * int64(nodes))
	if thresh == 0 {
		thresh = total
	}
	order := make([]int, 0, BalancedBuckets)
	for b, w := range weight {
		if w > thresh {
			p.table[b] = scatterOwner
			continue
		}
		if w == 0 {
			// Buckets the sample never touched carry no information; LPT
			// would pile them all onto the least-loaded (initially first)
			// node. Hash the bucket instead — pure and bucket-coherent —
			// so unseen keys spread evenly.
			p.table[b] = uint16(initialOwner(b, nodes))
			continue
		}
		order = append(order, b)
	}
	sort.Slice(order, func(a, b int) bool {
		if weight[order[a]] != weight[order[b]] {
			return weight[order[a]] > weight[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]int64, nodes)
	for _, b := range order {
		least := 0
		for i := 1; i < nodes; i++ {
			if load[i] < load[least] {
				least = i
			}
		}
		p.table[b] = uint16(least)
		load[least] += weight[b]
	}
	return p
}

// Name implements Partitioner.
func (p BalancedPartitioner) Name() string { return fmt.Sprintf("balanced%d", p.M) }

// Fingerprint digests the assignment table (FNV-1a over the bucket
// owners), distinguishing same-named partitioners built from different
// samples or node counts; memoizing callers fold it into their cache
// keys.
func (p BalancedPartitioner) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	h = (h ^ uint64(p.nodes)) * 1099511628211
	for _, o := range p.table {
		h = (h ^ uint64(o)) * 1099511628211
	}
	return h
}

// Nodes returns the machine size the assignment table was built for.
func (p BalancedPartitioner) Nodes() int { return p.nodes }

// bucket maps a word to its minimizer super-bucket.
func (p BalancedPartitioner) bucket(key dna.Kmer, kk int) int {
	return superBucket(key, kk, p.M)
}

// Owner implements Partitioner. For the node count the table was built
// for, ownership follows the weight-aware binning (spilled buckets:
// per-key scatter); any other count falls back to hashing the
// super-bucket (still pure and bucket-coherent, just not weight-aware).
func (p BalancedPartitioner) Owner(key dna.Kmer, kk, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	b := p.bucket(key, kk)
	if nodes == p.nodes && p.table != nil {
		if o := p.table[b]; o != scatterOwner {
			return int(o)
		}
		return int(mix64(uint64(key)) % uint64(nodes))
	}
	return initialOwner(b, nodes)
}
