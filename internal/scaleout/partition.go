package scaleout

import (
	"fmt"

	"nmppak/internal/dna"
)

// Partitioner assigns ownership of k-mers (during counting) and MacroNode
// keys (during graph construction and compaction replay) to scale-out
// nodes. Ownership must be a pure function of the key so that every node
// computes the same assignment without coordination, exactly as PaKman's
// MPI ranks do.
type Partitioner interface {
	// Name identifies the strategy in reports.
	Name() string
	// Owner returns the owning node in [0, nodes) for a length-kk word.
	Owner(key dna.Kmer, kk, nodes int) int
}

// mix64 is the splitmix64 finalizer, a cheap high-quality bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashPartitioner owns a key by a hash of the full word — the maximally
// balanced assignment (every key is an independent coin flip), at the cost
// of scattering adjacent graph nodes across the machine, which makes
// essentially all TransferNode traffic cross-node at large N.
type HashPartitioner struct{}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

// Owner implements Partitioner.
func (HashPartitioner) Owner(key dna.Kmer, kk, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	return int(mix64(uint64(key)) % uint64(nodes))
}

// MinimizerPartitioner owns a key by the hash of its minimizer: the m-mer
// of the word with the smallest hashed value. Words sharing a minimizer —
// in particular most consecutive k-mers of a read, and a MacroNode key
// with most of its graph neighbors — land on the same node, trading some
// load balance for communication locality.
type MinimizerPartitioner struct {
	M int // minimizer length; clamped to the word length
}

// NewMinimizerPartitioner returns a minimizer partitioner with m-mer
// length m (the literature's common choice for k=32 is m in [8,16]).
func NewMinimizerPartitioner(m int) MinimizerPartitioner {
	if m < 1 {
		m = 1
	}
	return MinimizerPartitioner{M: m}
}

// Name implements Partitioner.
func (p MinimizerPartitioner) Name() string { return fmt.Sprintf("minimizer%d", p.M) }

// Owner implements Partitioner.
func (p MinimizerPartitioner) Owner(key dna.Kmer, kk, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	return int(mix64(p.minimizer(key, kk)) % uint64(nodes))
}

// minimizer returns the hash-minimal m-mer of the kk-length word.
func (p MinimizerPartitioner) minimizer(key dna.Kmer, kk int) uint64 {
	m := p.M
	if m >= kk {
		return uint64(key)
	}
	mask := dna.KmerMask(m)
	w := uint64(key)
	best := ^uint64(0)
	for i := 0; i+m <= kk; i++ {
		mm := (w >> (2 * uint(kk-m-i))) & mask
		if h := mix64(mm); h < best {
			best = h
		}
	}
	return best
}
