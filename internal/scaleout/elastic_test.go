package scaleout

import (
	"reflect"
	"strings"
	"testing"

	"nmppak/internal/fault"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// conserved sums the sharding-invariant output aggregates over every
// node's replay result: the total MacroNodes processed on the NMP and CPU
// paths. A recovered run must commit each global iteration's work exactly
// once, so these equal the fault-free totals regardless of who executed
// what.
func conserved(res *Result) (nmpTot, cpuTot int64) {
	for _, r := range res.NMP {
		nmpTot += r.NodesNMP
		cpuTot += r.NodesCPU
	}
	return
}

// A dormant fault plan (events scheduled far past the end of the run) and
// no checkpoint cadence routes the run through the elastic runtime but
// changes nothing: the result must be identical to the legacy runtime's,
// field for field, in both disciplines.
func TestElasticDormantPlanMatchesGolden(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	for _, overlap := range []bool{false, true} {
		cfg := DefaultConfig(4)
		cfg.Overlap = overlap
		want, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = fault.NodeLossAt(1, 1<<40, 500)
		got, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.FaultsInjected != 0 || got.NodesLost != 0 || got.Recoveries != 0 {
			t.Fatalf("overlap=%v: dormant plan injected %d faults, lost %d nodes",
				overlap, got.FaultsInjected, got.NodesLost)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("overlap=%v: elastic run with a dormant plan differs from golden:\n%+v\nvs\n%+v",
				overlap, got, want)
		}
	}
}

// The recovery matrix: a node loss mid-compaction on every topology, in
// both disciplines, with and without periodic checkpoints. The run must
// complete, conserve the committed output against the fault-free run, pay
// for the recovery in cycles, and repeat deterministically.
func TestElasticRecoveryMatrix(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	topos := []struct {
		name string
		c    topo.Config
	}{
		{"mesh", topo.Default()},
		{"torus", topo.Torus(0, 0)},
		{"dragonfly", topo.DragonflyGroups(0)},
	}
	for _, tp := range topos {
		for _, overlap := range []bool{false, true} {
			for _, every := range []int{0, 2} {
				name := tp.name + map[bool]string{false: "-bsp", true: "-overlap"}[overlap]
				if every > 0 {
					name += "-ckpt"
				}
				t.Run(name, func(t *testing.T) {
					base := DefaultConfig(4)
					base.Topo = tp.c
					base.Overlap = overlap
					golden, err := Simulate(reads, tr, base)
					if err != nil {
						t.Fatal(err)
					}
					wantNMP, wantCPU := conserved(golden)

					cfg := base
					cfg.CheckpointEvery = every
					cfg.Faults = fault.NodeLossAt(2, golden.Compact.Total()/2, 500)
					res, err := Simulate(reads, tr, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if res.NodesLost != 1 || res.Recoveries != 1 || res.FaultsInjected != 1 {
						t.Fatalf("lost=%d recoveries=%d injected=%d, want 1/1/1",
							res.NodesLost, res.Recoveries, res.FaultsInjected)
					}
					if gotNMP, gotCPU := conserved(res); gotNMP != wantNMP || gotCPU != wantCPU {
						t.Fatalf("committed output not conserved: %d/%d MacroNodes vs fault-free %d/%d",
							gotNMP, gotCPU, wantNMP, wantCPU)
					}
					if res.TotalCycles <= golden.TotalCycles {
						t.Fatalf("recovered run (%d cycles) not slower than fault-free (%d)",
							res.TotalCycles, golden.TotalCycles)
					}
					if res.RecoveryCycles < 500 {
						t.Fatalf("recovery cycles %d below the detection latency", res.RecoveryCycles)
					}
					if res.RepartitionBytes <= 0 && len(tr.Iterations) > 0 {
						t.Fatal("recovery moved no shard bytes to the survivors")
					}
					if every > 0 && res.Checkpoints == 0 {
						t.Fatal("periodic checkpointing captured nothing")
					}
					if every == 0 && res.Checkpoints != 0 {
						t.Fatalf("cadence 0 captured %d periodic checkpoints", res.Checkpoints)
					}
					again, err := Simulate(reads, tr, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(again, res) {
						t.Fatalf("recovered run not deterministic:\n%+v\nvs\n%+v", again, res)
					}
				})
			}
		}
	}
}

// Checkpoint cadence bounds the work a recovery discards: with the same
// mid-run loss, a tighter cadence never loses more node-iterations than a
// looser one, and no checkpoints loses the most.
func TestElasticCadenceBoundsLostWork(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	base := DefaultConfig(4)
	golden, err := Simulate(reads, tr, base)
	if err != nil {
		t.Fatal(err)
	}
	fc := golden.Compact.Total() * 3 / 4
	lost := map[int]int64{}
	for _, every := range []int{0, 1, 4} {
		cfg := base
		cfg.CheckpointEvery = every
		cfg.Faults = fault.NodeLossAt(1, fc, 500)
		res, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lost[every] = res.LostIterations
		if every > 0 {
			if res.Checkpoints == 0 || res.CheckpointBytes <= 0 || res.CheckpointCycles <= 0 {
				t.Fatalf("every=%d: no checkpoint accounting: %+v", every, res)
			}
		}
	}
	if lost[1] > lost[4] || lost[4] > lost[0] {
		t.Fatalf("lost work not bounded by cadence: every=1 %d, every=4 %d, none %d",
			lost[1], lost[4], lost[0])
	}
	if lost[0] <= 0 {
		t.Fatal("a loss without checkpoints must discard work")
	}
}

// Link faults change timing, not output: a degraded route slows the run,
// an outage on a multi-hop topology detours and completes, and an outage
// that disconnects live nodes is a run error, not a hang or a panic.
func TestElasticLinkFaults(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)

	base := DefaultConfig(4)
	base.Topo = topo.Torus(0, 0)
	golden, err := Simulate(reads, tr, base)
	if err != nil {
		t.Fatal(err)
	}
	wantNMP, wantCPU := conserved(golden)

	cfg := base
	cfg.Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.LinkDegrade, Cycle: 0, Src: 0, Dst: 1, Factor: 0.1},
	}}
	slow, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalCycles <= golden.TotalCycles {
		t.Fatalf("degraded run (%d cycles) not slower than healthy (%d)", slow.TotalCycles, golden.TotalCycles)
	}
	if gotNMP, gotCPU := conserved(slow); gotNMP != wantNMP || gotCPU != wantCPU {
		t.Fatal("link degradation changed the committed output")
	}
	if slow.NodesLost != 0 || slow.Recoveries != 0 {
		t.Fatalf("link degradation triggered a recovery: %+v", slow)
	}

	cfg = base
	cfg.Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.LinkOutage, Cycle: 0, Src: 0, Dst: 1},
	}}
	cut, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cut.TotalCycles < golden.TotalCycles {
		t.Fatalf("detoured run (%d cycles) beat the healthy run (%d)", cut.TotalCycles, golden.TotalCycles)
	}
	if gotNMP, gotCPU := conserved(cut); gotNMP != wantNMP || gotCPU != wantCPU {
		t.Fatal("link outage changed the committed output")
	}

	// A full-mesh route is port-to-port: cutting it severs the endpoints,
	// which with both still live is an unrecoverable configuration.
	mesh := DefaultConfig(4)
	mesh.Faults = cfg.Faults
	if _, err := Simulate(reads, tr, mesh); err == nil ||
		!strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("disconnecting outage returned %v, want a disconnection error", err)
	}
}

// An instrumented recovered run must surface the fault, detection,
// restore and re-partition on the timeline, and its telemetry comm
// accounting must still reproduce the runtime's bit for bit.
func TestElasticTelemetry(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	for _, overlap := range []bool{false, true} {
		plain := DefaultConfig(4)
		plain.Overlap = overlap
		golden, err := Simulate(reads, tr, plain)
		if err != nil {
			t.Fatal(err)
		}
		cfg := plain
		cfg.CheckpointEvery = 2
		cfg.Faults = fault.NodeLossAt(2, golden.Compact.Total()/2, 500)

		bare, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Telemetry = telemetry.New()
		res, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCycles != bare.TotalCycles || res.Compact != bare.Compact {
			t.Fatalf("overlap=%v: collection perturbed the run: %d vs %d cycles",
				overlap, res.TotalCycles, bare.TotalCycles)
		}

		u := telemetry.Analyze(cfg.Telemetry)
		if u.Total != res.TotalCycles {
			t.Fatalf("overlap=%v: telemetry horizon %d != TotalCycles %d", overlap, u.Total, res.TotalCycles)
		}
		if u.CommFraction != res.CommFraction {
			t.Fatalf("overlap=%v: telemetry comm fraction %v != runtime %v", overlap, u.CommFraction, res.CommFraction)
		}

		seen := map[telemetry.SpanKind]int{}
		var runtimeTrack *telemetry.Track
		for _, trk := range cfg.Telemetry.Tracks() {
			if trk.Kind == telemetry.TrackRuntime {
				runtimeTrack = trk
			}
		}
		if runtimeTrack == nil {
			t.Fatal("no runtime track recorded")
		}
		for _, s := range runtimeTrack.Spans {
			seen[s.Kind]++
			if s.End < s.Start {
				t.Fatalf("span %v ends before it starts", s)
			}
		}
		for _, k := range []telemetry.SpanKind{
			telemetry.SpanFault, telemetry.SpanDetect, telemetry.SpanRestore,
			telemetry.SpanRepartition, telemetry.SpanCheckpoint,
		} {
			if seen[k] == 0 {
				t.Fatalf("overlap=%v: no %v span on the runtime track", overlap, k)
			}
		}
	}
}

// Elastic knobs are rejected where they cannot work, and the external
// checkpoint surface refuses elastic runs (they manage their own ring).
func TestElasticValidation(t *testing.T) {
	tiny := &trace.Trace{K: 32}
	mk := func(mutate func(*Config)) Config {
		cfg := DefaultConfig(4)
		mutate(&cfg)
		return cfg
	}
	for _, tc := range []struct {
		name   string
		cfg    Config
		substr string
	}{
		{"negative cadence", mk(func(c *Config) { c.CheckpointEvery = -1 }), "CheckpointEvery"},
		{"negative rate", mk(func(c *Config) { c.CheckpointBytesPerCycle = -1 }), "CheckpointBytesPerCycle"},
		{"rebalance", mk(func(c *Config) {
			c.Partitioner = NewRebalancePartitioner(12, 2)
			c.CheckpointEvery = 2
		}), "elastic"},
		{"kills all", mk(func(c *Config) {
			c.Faults = &fault.Plan{Events: []fault.Event{
				{Kind: fault.NodeLoss, Node: 0}, {Kind: fault.NodeLoss, Node: 1},
				{Kind: fault.NodeLoss, Node: 2}, {Kind: fault.NodeLoss, Node: 3},
			}}
		}), "survivor"},
		{"bad factor", mk(func(c *Config) {
			c.Faults = &fault.Plan{Events: []fault.Event{
				{Kind: fault.LinkDegrade, Src: 0, Dst: 1, Factor: 2},
			}}
		}), "factor"},
	} {
		if _, err := Simulate(nil, tiny, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: Simulate error %v does not mention %q", tc.name, err, tc.substr)
		}
	}

	elastic := mk(func(c *Config) { c.CheckpointEvery = 2 })
	if _, err := Checkpoint(nil, tiny, elastic, 0); err == nil || !strings.Contains(err.Error(), "elastic") {
		t.Errorf("Checkpoint with elastic config returned %v", err)
	}
	if _, err := Restore(tiny, elastic, nil); err == nil {
		t.Error("Restore with elastic config must fail")
	}
}

// A recovered run's casualties stay frozen: the dead node's engine result
// covers only the iterations committed before the restore point, and
// survivors cover everything else.
func TestElasticFrozenCasualty(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	base := DefaultConfig(4)
	golden, err := Simulate(reads, tr, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.CheckpointEvery = 2
	cfg.Faults = fault.NodeLossAt(3, golden.Compact.Total()/2, 500)
	res, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dead, live := res.NMP[3], golden.NMP[3]
	if dead.NodesNMP+dead.NodesCPU >= live.NodesNMP+live.NodesCPU {
		t.Fatalf("dead node processed %d MacroNodes, fault-free self processed %d — nothing was lost?",
			dead.NodesNMP+dead.NodesCPU, live.NodesNMP+live.NodesCPU)
	}
	var survivors int64
	for i, r := range res.NMP {
		if i != 3 {
			survivors += r.NodesNMP + r.NodesCPU
		}
	}
	wantNMP, wantCPU := conserved(golden)
	if survivors+dead.NodesNMP+dead.NodesCPU != wantNMP+wantCPU {
		t.Fatal("survivors + frozen casualty do not tile the global work")
	}
}

// Two node losses landing inside one detection window on an 8-node
// machine: the recovery must absorb both casualties (whether it detects
// them together or back to back), conserve the committed output against
// the fault-free run, and replay deterministically. This is the scenario
// a pairwise-only recovery path gets wrong — e.g. re-partitioning to
// survivors of the first loss while the second victim is already dead.
func TestElasticDoubleLossSameWindow(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	for _, overlap := range []bool{false, true} {
		name := map[bool]string{false: "bsp", true: "overlap"}[overlap]
		t.Run(name, func(t *testing.T) {
			base := DefaultConfig(8)
			base.Overlap = overlap
			golden, err := Simulate(reads, tr, base)
			if err != nil {
				t.Fatal(err)
			}
			wantNMP, wantCPU := conserved(golden)

			const detect = 500
			at := golden.Compact.Total() / 2
			cfg := base
			cfg.CheckpointEvery = 2
			cfg.Faults = &fault.Plan{
				Events: []fault.Event{
					{Kind: fault.NodeLoss, Node: 2, Cycle: at},
					{Kind: fault.NodeLoss, Node: 5, Cycle: at + detect/5},
				},
				DetectCycles: detect,
			}
			res, err := Simulate(reads, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.NodesLost != 2 || res.FaultsInjected != 2 {
				t.Fatalf("lost=%d injected=%d, want 2/2", res.NodesLost, res.FaultsInjected)
			}
			if res.Recoveries < 1 || res.Recoveries > 2 {
				t.Fatalf("recoveries=%d, want 1 (batched) or 2 (back to back)", res.Recoveries)
			}
			if gotNMP, gotCPU := conserved(res); gotNMP != wantNMP || gotCPU != wantCPU {
				t.Fatalf("committed output not conserved: %d/%d MacroNodes vs fault-free %d/%d",
					gotNMP, gotCPU, wantNMP, wantCPU)
			}
			if res.TotalCycles <= golden.TotalCycles {
				t.Fatalf("doubly-recovered run (%d cycles) not slower than fault-free (%d)",
					res.TotalCycles, golden.TotalCycles)
			}
			if res.RecoveryCycles < detect {
				t.Fatalf("recovery cycles %d below the detection latency", res.RecoveryCycles)
			}
			again, err := Simulate(reads, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, res) {
				t.Fatalf("double-loss recovery not deterministic:\n%+v\nvs\n%+v", again, res)
			}
		})
	}
}
