// Session: an incrementally advanced distributed run, the pause/resume
// surface the multi-tenant fleet scheduler (internal/tenancy) drives.
//
// Checkpoint/Restore (checkpoint.go) pause a run exactly once, at one
// pre-chosen iteration; a Session instead holds the live runtime between
// iteration boundaries, so a scheduler can interleave "advance one
// iteration", "how many machine cycles has this job consumed so far",
// "snapshot it and give the nodes to someone else" and "finish it" in any
// order. The invariants that make time-slicing exact:
//
//   - Step composes: the BSP partial sums (and the rebalance runtime's
//     migration schedule) accumulate identically whether the iteration
//     range is covered by one advance or many, so a session's final
//     Result is reflect.DeepEqual to the uninterrupted Simulate.
//   - Checkpoint at boundary b is byte-identical to the one-shot
//     scaleout.Checkpoint(reads, tr, cfg, b) blob, whether the session
//     was fresh or itself resumed from an earlier blob. ResumeSession
//     continues from any such blob.
//   - Progress is the run's cumulative machine-cycle clock at the current
//     boundary — software prelude, compute and exchange partial sums, and
//     the inter-superstep barriers between executed iterations — so slice
//     costs on a shared fleet timeline are exact differences of Progress.
//     At the final boundary Progress equals Result.TotalCycles.
//
// Sessions are BSP-only: the overlapped discipline replays its whole
// macro-schedule at restore time and exposes no mid-run global clock, so
// its slices cannot be priced on a fleet timeline. Elastic configurations
// (CheckpointEvery/Faults) are rejected with ErrElasticConfig, exactly
// like Checkpoint — their recovery ring owns the checkpoint machinery.
package scaleout

import (
	"fmt"

	"nmppak/internal/nmp"
	"nmppak/internal/readsim"
	"nmppak/internal/sim"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// Session is a paused-between-iterations distributed run. Create one with
// NewSession (runs the software prelude) or ResumeSession (from a
// checkpoint blob); drive it with Step, snapshot it with Checkpoint, and
// seal it with Finish. Not safe for concurrent use.
type Session struct {
	tr  *trace.Trace
	cfg Config
	net topo.Network
	res *Result // prelude result; finalized by Finish

	rt *runtime      // static-partitioner runtime (nil iff rr != nil)
	rr *rebalanceRun // dynamic-ownership runtime

	next  int // first unexecuted iteration (the current boundary)
	iters int
	done  bool
}

// validateSession rejects the configurations a Session cannot time-slice.
func validateSession(cfg Config) error {
	if cfg.elastic() {
		return fmt.Errorf("scaleout: Session pauses a deterministic run; %w", ErrElasticConfig)
	}
	if cfg.Overlap {
		return fmt.Errorf("scaleout: Session requires the BSP discipline (the overlapped schedule has no mid-run global clock to slice on); unset Overlap")
	}
	if cfg.Telemetry != nil {
		return fmt.Errorf("scaleout: Session does not drive run-level telemetry (the scheduler owns the fleet timeline); unset Telemetry")
	}
	return nil
}

// NewSession runs the software prelude (distributed counting and
// MacroNode construction) and returns a session paused at iteration 0.
func NewSession(reads []readsim.Read, tr *trace.Trace, cfg Config) (*Session, error) {
	net, err := validateRun(tr, cfg)
	if err != nil {
		return nil, err
	}
	if err := validateSession(cfg); err != nil {
		return nil, err
	}
	res, err := runPrelude(reads, cfg, net, nil)
	if err != nil {
		return nil, err
	}
	s := &Session{tr: tr, cfg: cfg, net: net, res: res, iters: len(tr.Iterations)}
	if rp, ok := cfg.Partitioner.(*RebalancePartitioner); ok {
		rr, err := newRebalanceRun(tr, net, cfg, rp)
		if err != nil {
			return nil, err
		}
		s.rr = rr
	} else {
		st := ShardTrace(tr, cfg.Nodes, cfg.Partitioner)
		rt, err := newRuntime(st, net, cfg)
		if err != nil {
			return nil, err
		}
		s.rt = rt
	}
	return s, nil
}

// ResumeSession reconstructs a session from a checkpoint blob taken under
// the same (trace, config) — by scaleout.Checkpoint or a prior
// Session.Checkpoint — paused at the blob's resume iteration. The reads
// are not needed: the blob carries the software-phase outcome.
func ResumeSession(tr *trace.Trace, cfg Config, blob []byte) (*Session, error) {
	ck, err := UnmarshalCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	net, err := validateRun(tr, cfg)
	if err != nil {
		return nil, err
	}
	if err := validateSession(cfg); err != nil {
		return nil, err
	}
	if err := ck.matches(tr, cfg, net); err != nil {
		return nil, err
	}
	res := &Result{
		Nodes:          cfg.Nodes,
		Partitioner:    cfg.Partitioner.Name(),
		Topology:       net.Name(),
		Count:          ck.Count,
		Construct:      ck.Construct,
		PerNode:        append([]NodeStats(nil), ck.PerNode...),
		ExchangedBytes: ck.PreludeExchangedBytes,
	}
	s := &Session{tr: tr, cfg: cfg, net: net, res: res,
		next: ck.ResumeIter, iters: len(tr.Iterations)}
	if rp, ok := cfg.Partitioner.(*RebalancePartitioner); ok {
		rr, err := resumeRebalanceRun(tr, net, cfg, rp, ck)
		if err != nil {
			return nil, err
		}
		s.rr = rr
	} else {
		st := ShardTrace(tr, cfg.Nodes, cfg.Partitioner)
		rt, err := resumeRuntime(st, net, cfg, ck)
		if err != nil {
			return nil, err
		}
		s.rt = rt
	}
	return s, nil
}

// Iterations returns the trace's total compaction iteration count.
func (s *Session) Iterations() int { return s.iters }

// Next returns the current boundary: the first unexecuted iteration.
func (s *Session) Next() int { return s.next }

// Remaining returns how many iterations are still to execute.
func (s *Session) Remaining() int { return s.iters - s.next }

// Step advances the run by up to n iterations (fewer if the trace ends
// first) and returns how many it executed. n <= 0 is a no-op.
func (s *Session) Step(n int) int {
	if s.done || n <= 0 {
		return 0
	}
	to := s.next + n
	if to > s.iters {
		to = s.iters
	}
	if to <= s.next {
		return 0
	}
	if s.rr != nil {
		s.rr.advance(s.next, to)
	} else {
		s.rt.bspAdvance(s.next, to)
	}
	executed := to - s.next
	s.next = to
	return executed
}

// Progress returns the run's cumulative machine cycles at the current
// boundary: the software prelude, the executed supersteps' compute and
// exchange sums, and the min(next, iters-1) inter-superstep barriers
// already crossed. At the final boundary this equals the finished
// Result.TotalCycles.
func (s *Session) Progress() sim.Cycle {
	base := s.res.Count.Total() + s.res.Construct.Total()
	var compute, exchange sim.Cycle
	if s.rr != nil {
		compute, exchange = s.rr.compute, s.rr.exchange
	} else {
		compute, exchange = s.rt.compute, s.rt.exchange
	}
	crossed := s.next
	if m := s.iters - 1; crossed > m {
		crossed = m
	}
	if crossed < 0 {
		crossed = 0
	}
	return base + compute + exchange +
		sim.Cycle(crossed)*(s.net.BarrierCycles()+s.cfg.NMP.SyncBarrierCycles)
}

// Checkpoint exports the session's state at the current boundary as a
// versioned blob, byte-identical to scaleout.Checkpoint(reads, tr, cfg,
// s.Next()). The session stays usable; a preempting scheduler typically
// drops it and later calls ResumeSession with the blob.
func (s *Session) Checkpoint() ([]byte, error) {
	if s.done {
		return nil, fmt.Errorf("scaleout: Session already finished")
	}
	ck := checkpointHeader(s.cfg, s.net, s.tr, s.res, s.next)
	if s.rr != nil {
		ck.Compute, ck.Exchange = s.rr.compute, s.rr.exchange
		ck.CompactExchangedBytes = s.rr.out.ExchangedBytes
		ck.Rebalance = &RebalanceState{
			Table:         append([]uint16(nil), s.rr.table...),
			Cum:           append([]sim.Cycle(nil), s.rr.cum...),
			LastDur:       append([]sim.Cycle(nil), s.rr.lastDur...),
			Weight:        append([]int64(nil), s.rr.weight...),
			LocalTNs:      s.rr.out.LocalTNs,
			RemoteTNs:     s.rr.out.RemoteTNs,
			HaloBytes:     s.rr.out.HaloBytes,
			Rebalances:    s.rr.out.Rebalances,
			MigratedBytes: s.rr.out.MigratedBytes,
		}
		if err := snapshotInto(ck, s.rr.out.Durations, s.rr.engines); err != nil {
			return nil, err
		}
	} else {
		ck.Compute, ck.Exchange = s.rt.compute, s.rt.exchange
		ck.CompactExchangedBytes = s.rt.exchangedBytes
		if err := snapshotInto(ck, s.rt.durations, s.rt.engines); err != nil {
			return nil, err
		}
	}
	return ck.Marshal()
}

// Finish advances any remaining iterations, prices the closing barriers
// and returns the completed Result — reflect.DeepEqual to the
// uninterrupted Simulate(reads, tr, cfg), however the preceding Step /
// Checkpoint / ResumeSession sequence sliced the run. The session is
// sealed afterwards.
func (s *Session) Finish() (*Result, error) {
	if s.done {
		return nil, fmt.Errorf("scaleout: Session already finished")
	}
	s.Step(s.Remaining())
	s.done = true
	res := s.res
	var co *compactOutcome
	if s.rr != nil {
		ro := s.rr.finish()
		co = &ro.compactOutcome
		res.HaloBytes = ro.HaloBytes
		res.RemoteTNFrac = remoteTNFrac(ro.LocalTNs, ro.RemoteTNs)
		res.Rebalances = ro.Rebalances
		res.MigratedBytes = ro.MigratedBytes
	} else {
		res.HaloBytes = s.rt.st.HaloBytes
		res.RemoteTNFrac = s.rt.st.RemoteTNFrac()
		out := &compactOutcome{ExchangedBytes: s.rt.exchangedBytes}
		linkBarrier, syncBarrier := bspBarriers(s.rt.net, s.rt.cfg, s.rt.iters)
		out.Phase = PhaseCycles{Compute: s.rt.compute, Exchange: s.rt.exchange, Barrier: linkBarrier + syncBarrier}
		out.LinkBarrier = linkBarrier
		out.Durations = s.rt.durations
		out.NMP = make([]*nmp.Result, s.rt.n)
		for i, e := range s.rt.engines {
			out.NMP[i] = e.Result()
		}
		co = out
	}
	finalize(res, co)
	return res, nil
}
