package scaleout

import (
	"reflect"
	"testing"

	"nmppak/internal/assemble"
	"nmppak/internal/compact"
	"nmppak/internal/dna"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/nmp"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
	"nmppak/internal/trace"
)

// dnaKmer builds a valid 31-base key from an arbitrary word.
func dnaKmer(x uint64) dna.Kmer { return dna.Kmer(x & dna.KmerMask(31)) }

func testReads(t *testing.T, length int) []readsim.Read {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: length, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 15, ErrorRate: 0.005, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return reads
}

func testTrace(t *testing.T, reads []readsim.Read, k int, minCount uint32) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder(k)
	_, err := assemble.Run(reads, assemble.Config{
		K: k, MinCount: minCount, Flow: compact.FlowPipelined, Observer: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.Trace()
}

// Sharded counting must merge to the byte-identical single-node result:
// same k-mers, counts, terminal maps and pruning statistics, for any node
// count and either partitioner.
func TestShardedCountMergeEquivalence(t *testing.T) {
	reads := testReads(t, 20_000)
	want, err := kmer.Count(reads, kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Partitioner{HashPartitioner{}, NewMinimizerPartitioner(12)} {
		for _, n := range []int{1, 2, 3, 4, 8} {
			cfg := DefaultConfig(n)
			cfg.Partitioner = p
			sc, err := CountSharded(reads, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := sc.Merge()
			if !reflect.DeepEqual(got.Kmers, want.Kmers) {
				t.Fatalf("%s n=%d: merged k-mers differ (%d vs %d entries)", p.Name(), n, len(got.Kmers), len(want.Kmers))
			}
			if !reflect.DeepEqual(got.TermPrefix, want.TermPrefix) || !reflect.DeepEqual(got.TermSuffix, want.TermSuffix) {
				t.Fatalf("%s n=%d: terminal maps differ", p.Name(), n)
			}
			if got.TotalExtracted != want.TotalExtracted || got.PrunedKinds != want.PrunedKinds || got.PrunedMass != want.PrunedMass {
				t.Fatalf("%s n=%d: stats differ: %d/%d/%d vs %d/%d/%d", p.Name(), n,
					got.TotalExtracted, got.PrunedKinds, got.PrunedMass,
					want.TotalExtracted, want.PrunedKinds, want.PrunedMass)
			}
			// Every k-mer must live on the node the partitioner names.
			for i, sh := range sc.Shards {
				for _, kc := range sh.Kmers {
					if o := p.Owner(kc.Km, 32, n); o != i {
						t.Fatalf("%s n=%d: k-mer on node %d owned by %d", p.Name(), n, i, o)
					}
				}
			}
		}
	}
}

// Shard graphs must tile the single-node PaK-graph: the key sets partition
// it, and every MacroNode is structurally identical (sizes and extension
// mass).
func TestShardGraphEquivalence(t *testing.T) {
	reads := testReads(t, 20_000)
	res, err := kmer.Count(reads, kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 4} {
		cfg := DefaultConfig(n)
		sc, err := CountSharded(reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sg, err := sc.BuildShardGraphs(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sg.TotalMacroNodes() != want.Len() {
			t.Fatalf("n=%d: %d shard MacroNodes vs %d global", n, sg.TotalMacroNodes(), want.Len())
		}
		// A shard on its own has cross-shard extensions (its neighbors live
		// elsewhere), so structural validation runs on the stitched union.
		merged := &pakgraph.Graph{K: 32, Nodes: make(map[dna.Kmer]*pakgraph.MacroNode)}
		for _, g := range sg.Graphs {
			if err := merged.Merge(g); err != nil {
				t.Fatal(err)
			}
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("n=%d: merged shard graphs invalid: %v", n, err)
		}
		for i, g := range sg.Graphs {
			for key, mn := range g.Nodes {
				ref := want.Nodes[key]
				if ref == nil {
					t.Fatalf("n=%d shard %d: node %v not in global graph", n, i, key)
				}
				if mn.SizeBytes() != ref.SizeBytes() ||
					mn.TotalPrefixCount() != ref.TotalPrefixCount() ||
					mn.TotalSuffixCount() != ref.TotalSuffixCount() {
					t.Fatalf("n=%d shard %d: node %v structurally differs", n, i, key)
				}
			}
		}
	}
}

// An N=1 scale-out run is the single-node system: no exchange traffic, and
// a compaction phase cycle-identical to nmp.Simulate on the same trace.
func TestScaleOutN1MatchesNMP(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	cfg := DefaultConfig(1)
	res, err := Simulate(reads, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := nmp.Simulate(tr, cfg.NMP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compact.Total() != want.Cycles {
		t.Fatalf("N=1 compact phase %d cycles, single-node nmp.Simulate %d", res.Compact.Total(), want.Cycles)
	}
	if res.ExchangedBytes != 0 || res.HaloBytes != 0 || res.CommCycles != 0 {
		t.Fatalf("N=1 moved bytes over the interconnect: %d exchanged, %d halo, %d comm cycles",
			res.ExchangedBytes, res.HaloBytes, res.CommCycles)
	}
	if res.RemoteTNFrac != 0 {
		t.Fatalf("N=1 remote TN fraction %v", res.RemoteTNFrac)
	}
}

// ShardTrace with N=1 must reproduce the input trace exactly.
func TestShardTraceN1Identity(t *testing.T) {
	reads := testReads(t, 15_000)
	tr := testTrace(t, reads, 32, 3)
	st := ShardTrace(tr, 1, HashPartitioner{})
	if !reflect.DeepEqual(st.Traces[0], tr) {
		t.Fatal("N=1 sub-trace differs from the input trace")
	}
}

// ShardTrace must conserve ops: every node visit and update lands on
// exactly one shard, and transfers split local/remote.
func TestShardTraceConservation(t *testing.T) {
	reads := testReads(t, 15_000)
	tr := testTrace(t, reads, 32, 3)
	for _, n := range []int{2, 4, 8} {
		st := ShardTrace(tr, n, HashPartitioner{})
		var nodes, tns, upds int64
		for _, sub := range st.Traces {
			nodes += sub.TotalNodeOps()
			tns += sub.TotalTransfers()
			for i := range sub.Iterations {
				upds += int64(len(sub.Iterations[i].Updates))
			}
		}
		if nodes != tr.TotalNodeOps() {
			t.Fatalf("n=%d: %d node ops sharded vs %d global", n, nodes, tr.TotalNodeOps())
		}
		if tns != st.LocalTNs || st.LocalTNs+st.RemoteTNs != tr.TotalTransfers() {
			t.Fatalf("n=%d: transfers local %d remote %d vs global %d", n, st.LocalTNs, st.RemoteTNs, tr.TotalTransfers())
		}
		var wantUpds int64
		for i := range tr.Iterations {
			wantUpds += int64(len(tr.Iterations[i].Updates))
		}
		if upds != wantUpds {
			t.Fatalf("n=%d: %d updates sharded vs %d global", n, upds, wantUpds)
		}
	}
}

// Two runs of the same configuration must agree cycle for cycle, and
// scaling out must monotonically shrink total time on a
// compute-dominated workload.
func TestScaleOutDeterminismAndMonotonicity(t *testing.T) {
	reads := testReads(t, 20_000)
	tr := testTrace(t, reads, 32, 3)
	var prev *Result
	for _, n := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig(n)
		a, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(reads, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalCycles != b.TotalCycles || a.ExchangedBytes != b.ExchangedBytes || a.CommCycles != b.CommCycles {
			t.Fatalf("n=%d: nondeterministic result: %d/%d cycles, %d/%d bytes",
				n, a.TotalCycles, b.TotalCycles, a.ExchangedBytes, b.ExchangedBytes)
		}
		if prev != nil && a.TotalCycles >= prev.TotalCycles {
			t.Fatalf("n=%d: %d cycles, not faster than %d nodes (%d cycles)",
				n, a.TotalCycles, prev.Nodes, prev.TotalCycles)
		}
		prev = a
	}
}

func TestPartitionerRangeAndDeterminism(t *testing.T) {
	for _, p := range []Partitioner{HashPartitioner{}, NewMinimizerPartitioner(8), NewRebalancePartitioner(8, 1)} {
		counts := make([]int, 7)
		for km := uint64(0); km < 10_000; km++ {
			o := p.Owner(dnaKmer(km*2654435761), 31, 7)
			if o < 0 || o >= 7 {
				t.Fatalf("%s: owner %d out of range", p.Name(), o)
			}
			if o != p.Owner(dnaKmer(km*2654435761), 31, 7) {
				t.Fatalf("%s: nondeterministic", p.Name())
			}
			counts[o]++
		}
		for i, c := range counts {
			if c == 0 {
				t.Fatalf("%s: node %d owns nothing", p.Name(), i)
			}
		}
		if p.Owner(dnaKmer(12345), 31, 1) != 0 {
			t.Fatalf("%s: single node must own everything", p.Name())
		}
	}
}
