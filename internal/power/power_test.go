package power

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPEMatchesTable3(t *testing.T) {
	area, pw := Totals(PEDesign())
	if !approx(area, 0.109, 0.003) {
		t.Fatalf("PE area %.4f mm^2, Table 3 says 0.110", area)
	}
	if !approx(pw, 30.3, 1.0) {
		t.Fatalf("PE power %.2f mW, Table 3 says 30.6", pw)
	}
}

func TestSixteenPEOverheadNegligible(t *testing.T) {
	s := Analyze(16)
	if !approx(s.TotalAreaMM2, 1.75, 0.1) {
		t.Fatalf("16-PE area %.3f, Table 3 says 1.763", s.TotalAreaMM2)
	}
	if !approx(s.TotalPowerMW, 485, 15) {
		t.Fatalf("16-PE power %.1f, Table 3 says 489.3", s.TotalPowerMW)
	}
	// §6.5: 1.8% area, 3.8% power.
	if s.AreaOverhead > 0.025 || s.PowerOverhead > 0.05 {
		t.Fatalf("overheads %.3f/%.3f not negligible", s.AreaOverhead, s.PowerOverhead)
	}
}

func TestTable3Rows(t *testing.T) {
	rows := Table3()
	if len(rows) != 6 {
		t.Fatalf("rows = %d want 6", len(rows))
	}
	if rows[4].Name != "PE" || rows[5].Name != "16 PEs" {
		t.Fatalf("row names: %+v", rows)
	}
	if rows[5].AreaMM2 <= rows[4].AreaMM2*15 {
		t.Fatal("16 PEs must be ~16x one PE")
	}
}

func TestCompareGPU(t *testing.T) {
	// §6.6: a 379 GB working set needs five 80 GB A100s; NMP-PaK wins on
	// power and area by orders of magnitude.
	c := CompareGPU(379)
	if c.GPUsNeeded != 5 {
		t.Fatalf("GPUs = %d want 5", c.GPUsNeeded)
	}
	if c.PowerRatio < 100 || c.AreaRatio < 100 {
		t.Fatalf("ratios %.0f/%.0f should be in the hundreds", c.PowerRatio, c.AreaRatio)
	}
	if CompareGPU(10).GPUsNeeded != 1 {
		t.Fatal("small set needs one GPU")
	}
}
