// Package power reproduces the paper's area and power analysis (Table 3,
// §6.5) from per-component post-synthesis constants at a commercial 28 nm
// node, and the GPU comparison of §6.6.
package power

import "fmt"

// Component is one PE building block with its silicon costs.
type Component struct {
	Name     string
	Quantity int
	AreaMM2  float64 // per instance
	PowerMW  float64 // per instance
}

// PEDesign describes one processing element. Constants follow Table 3: a
// PE comprises two 4 KB MacroNode buffers, two 1 KB TransferNode
// scratchpads, three ALUs (one per pipeline stage), and its slice of the
// crossbar switch.
func PEDesign() []Component {
	return []Component{
		{Name: "MacroNode Buffer (4 KB)", Quantity: 2, AreaMM2: 0.038 / 2, PowerMW: 9.2 / 2},
		{Name: "TransferNode Scratchpad (1 KB)", Quantity: 2, AreaMM2: 0.009 / 2, PowerMW: 2.3 / 2},
		{Name: "ALU", Quantity: 3, AreaMM2: 0.037 / 3, PowerMW: 18.5 / 3},
		{Name: "Crossbar Switch", Quantity: 1, AreaMM2: 0.025, PowerMW: 0.3},
	}
}

// Totals aggregates a component list.
func Totals(components []Component) (areaMM2, powerMW float64) {
	for _, c := range components {
		areaMM2 += c.AreaMM2 * float64(c.Quantity)
		powerMW += c.PowerMW * float64(c.Quantity)
	}
	return areaMM2, powerMW
}

// System summarizes an n-PE deployment against the host DIMM budget.
type System struct {
	PEs           int
	PEAreaMM2     float64
	PEPowerMW     float64
	TotalAreaMM2  float64
	TotalPowerMW  float64
	BufferChipMM2 float64 // typical buffer chip area (§6.5: 100 mm²)
	DIMMPowerW    float64 // single DIMM power budget (§6.5: 13 W)
	AreaOverhead  float64 // fraction of buffer chip
	PowerOverhead float64 // fraction of DIMM power
}

// Analyze computes the Table 3 bottom line for n PEs per buffer chip.
func Analyze(n int) System {
	area, pw := Totals(PEDesign())
	s := System{
		PEs:           n,
		PEAreaMM2:     area,
		PEPowerMW:     pw,
		TotalAreaMM2:  area * float64(n),
		TotalPowerMW:  pw * float64(n),
		BufferChipMM2: 100,
		DIMMPowerW:    13,
	}
	s.AreaOverhead = s.TotalAreaMM2 / s.BufferChipMM2
	s.PowerOverhead = s.TotalPowerMW / 1000 / s.DIMMPowerW
	return s
}

// GPUComparison reproduces the §6.6 resource arithmetic: serving a given
// working set with A100 80 GB GPUs versus NMP-PaK DIMMs.
type GPUComparison struct {
	WorkingSetGB float64
	GPUsNeeded   int
	GPUPowerW    float64
	GPUAreaMM2   float64
	NMPPowerW    float64
	NMPAreaMM2   float64
	PowerRatio   float64
	AreaRatio    float64
}

// CompareGPU computes the comparison for a working set in GB. Constants
// follow §6.6: an A100 80 GB draws 300 W over 826 mm²; the NMP-PaK
// 8-DIMM/512 GB configuration draws 3.9 W of PE power over 14.1 mm².
func CompareGPU(workingSetGB float64) GPUComparison {
	gpus := int((workingSetGB + 79.999) / 80)
	if gpus < 1 {
		gpus = 1
	}
	nmpPEs := 8 * 16
	_, pePowerMW := Totals(PEDesign())
	peArea, _ := Totals(PEDesign())
	c := GPUComparison{
		WorkingSetGB: workingSetGB,
		GPUsNeeded:   gpus,
		GPUPowerW:    float64(gpus) * 300,
		GPUAreaMM2:   float64(gpus) * 826,
		NMPPowerW:    float64(nmpPEs) * pePowerMW / 1000,
		NMPAreaMM2:   float64(nmpPEs) * peArea,
	}
	c.PowerRatio = c.GPUPowerW / c.NMPPowerW
	c.AreaRatio = c.GPUAreaMM2 / c.NMPAreaMM2
	return c
}

// TableRow is one formatted Table 3 line.
type TableRow struct {
	Name    string
	AreaMM2 float64
	PowerMW float64
}

// Table3 renders the paper's Table 3 rows: per-component totals, one PE,
// and 16 PEs.
func Table3() []TableRow {
	var rows []TableRow
	for _, c := range PEDesign() {
		rows = append(rows, TableRow{
			Name:    fmt.Sprintf("%s x%d", c.Name, c.Quantity),
			AreaMM2: c.AreaMM2 * float64(c.Quantity),
			PowerMW: c.PowerMW * float64(c.Quantity),
		})
	}
	pe, pw := Totals(PEDesign())
	rows = append(rows, TableRow{Name: "PE", AreaMM2: pe, PowerMW: pw})
	rows = append(rows, TableRow{Name: "16 PEs", AreaMM2: pe * 16, PowerMW: pw * 16})
	return rows
}
