// Package hybrid analyzes the CPU-NMP work split of §4.3: which MacroNodes
// exceed the PE-buffer-friendly size threshold, how much work each side
// carries per iteration, and whether the CPU side hides under the NMP side
// (the paper measures offloaded >1 KB work at 49.8% of the NMP compute
// time, i.e. fully overlapped).
//
// The timing itself is simulated by internal/nmp (which implements the
// offload and the per-iteration lockstep); this package provides the
// analytical model the runtime uses to pick the threshold, and the
// population statistics for the §4.3 and Fig. 7/8 discussions.
package hybrid

import (
	"sort"

	"nmppak/internal/trace"
)

// SplitStats summarizes the node population split at a size threshold.
type SplitStats struct {
	ThresholdBytes int
	NodesNMP       int64
	NodesCPU       int64
	BytesNMP       int64
	BytesCPU       int64
	// FracCPU* are population fractions.
	FracCPUNodes float64
	FracCPUBytes float64
}

// Split scans a whole trace and splits node visits at the threshold.
func Split(tr *trace.Trace, thresholdBytes int) SplitStats {
	s := SplitStats{ThresholdBytes: thresholdBytes}
	for i := range tr.Iterations {
		for j := range tr.Iterations[i].Nodes {
			n := &tr.Iterations[i].Nodes[j]
			size := int64(n.D1 + n.D2)
			if thresholdBytes > 0 && size > int64(thresholdBytes) {
				s.NodesCPU++
				s.BytesCPU += size
			} else {
				s.NodesNMP++
				s.BytesNMP += size
			}
		}
	}
	if t := s.NodesNMP + s.NodesCPU; t > 0 {
		s.FracCPUNodes = float64(s.NodesCPU) / float64(t)
	}
	if t := s.BytesNMP + s.BytesCPU; t > 0 {
		s.FracCPUBytes = float64(s.BytesCPU) / float64(t)
	}
	return s
}

// SizeQuantiles returns the node-size values at the given quantiles
// (0..1) over the whole trace, for threshold selection.
func SizeQuantiles(tr *trace.Trace, qs []float64) []int {
	var sizes []int
	for i := range tr.Iterations {
		for j := range tr.Iterations[i].Nodes {
			n := &tr.Iterations[i].Nodes[j]
			sizes = append(sizes, int(n.D1+n.D2))
		}
	}
	sort.Ints(sizes)
	out := make([]int, len(qs))
	for i, q := range qs {
		if len(sizes) == 0 {
			continue
		}
		idx := int(q * float64(len(sizes)-1))
		out[i] = sizes[idx]
	}
	return out
}

// OverlapModel estimates, per iteration, the CPU-side service demand as a
// fraction of the NMP-side demand under a simple service-rate model: NMP
// throughput scales with PEs x channels at near-memory bandwidth, the CPU
// with its thread count at far-memory latency. It reproduces the §4.3
// analysis that sizes the threshold so CPU work hides under NMP work.
type OverlapModel struct {
	// Service cost in abstract cycles per byte on each side.
	NMPCyclesPerByte float64
	CPUCyclesPerByte float64
	NMPParallelism   float64 // PEs x channels
	CPUParallelism   float64 // threads
}

// DefaultOverlapModel mirrors the simulator defaults (16 PEs x 8 channels
// vs 64 threads; the CPU pays ~4x per byte for far-memory access and
// software overheads).
func DefaultOverlapModel() OverlapModel {
	return OverlapModel{
		NMPCyclesPerByte: 0.25,
		CPUCyclesPerByte: 1.0,
		NMPParallelism:   128,
		CPUParallelism:   64,
	}
}

// CPUOverNMP returns the ratio of CPU time to NMP time for a split; values
// below 1 mean the CPU work hides completely under the NMP work.
func (m OverlapModel) CPUOverNMP(s SplitStats) float64 {
	nmp := float64(s.BytesNMP) * m.NMPCyclesPerByte / m.NMPParallelism
	cpu := float64(s.BytesCPU) * m.CPUCyclesPerByte / m.CPUParallelism
	if nmp == 0 {
		return 0
	}
	return cpu / nmp
}

// PickThreshold returns the smallest of the candidate thresholds whose CPU
// work still hides under the NMP work (ratio <= maxRatio), or the largest
// candidate if none qualifies.
func (m OverlapModel) PickThreshold(tr *trace.Trace, candidates []int, maxRatio float64) int {
	sorted := append([]int(nil), candidates...)
	sort.Ints(sorted)
	for _, c := range sorted {
		if m.CPUOverNMP(Split(tr, c)) <= maxRatio {
			return c
		}
	}
	return sorted[len(sorted)-1]
}
