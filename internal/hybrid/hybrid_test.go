package hybrid

import (
	"testing"

	"nmppak/internal/compact"
	"nmppak/internal/dna"
	"nmppak/internal/trace"
)

// synthTrace builds a one-iteration trace with a controlled size mix.
func synthTrace(sizes []int) *trace.Trace {
	it := trace.Iteration{}
	for i, s := range sizes {
		d2 := 16
		it.Nodes = append(it.Nodes, trace.NodeOp{
			Key: dna.Kmer(i), D1: int32(s - d2), D2: int32(d2), Exts: 2, Wires: 1,
		})
	}
	it.Stats = compact.IterStats{LiveNodes: len(sizes)}
	return &trace.Trace{K: 32, Iterations: []trace.Iteration{it}}
}

func TestSplitThreshold(t *testing.T) {
	tr := synthTrace([]int{100, 200, 500, 1500, 3000, 100, 100})
	s := Split(tr, 1024)
	if s.NodesCPU != 2 || s.NodesNMP != 5 {
		t.Fatalf("split %+v", s)
	}
	if s.BytesCPU != 4500 {
		t.Fatalf("cpu bytes %d", s.BytesCPU)
	}
	if s.FracCPUNodes <= 0 || s.FracCPUBytes <= s.FracCPUNodes {
		t.Fatalf("fractions %+v (big nodes carry more bytes than population share)", s)
	}
}

func TestSplitDisabled(t *testing.T) {
	tr := synthTrace([]int{100, 5000})
	s := Split(tr, 0)
	if s.NodesCPU != 0 || s.NodesNMP != 2 {
		t.Fatalf("split with disabled threshold: %+v", s)
	}
}

func TestSizeQuantiles(t *testing.T) {
	tr := synthTrace([]int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000})
	q := SizeQuantiles(tr, []float64{0, 0.5, 1})
	if q[0] != 100 || q[2] != 1000 {
		t.Fatalf("quantiles %v", q)
	}
	if q[1] < 400 || q[1] > 600 {
		t.Fatalf("median %d", q[1])
	}
}

func TestOverlapModel(t *testing.T) {
	m := DefaultOverlapModel()
	tr := synthTrace([]int{100, 100, 100, 100, 100, 100, 100, 100, 100, 2000})
	s := Split(tr, 1024)
	r := m.CPUOverNMP(s)
	if r <= 0 {
		t.Fatalf("ratio %v", r)
	}
	// All offloaded -> NMP side empty -> ratio defined as 0.
	all := Split(tr, 10)
	if got := m.CPUOverNMP(all); got == 0 && all.BytesNMP != 0 {
		t.Fatal("inconsistent overlap")
	}
}

func TestPickThreshold(t *testing.T) {
	m := DefaultOverlapModel()
	tr := synthTrace([]int{100, 100, 100, 100, 2000, 4000})
	// With a generous allowance the smallest candidate qualifies.
	if got := m.PickThreshold(tr, []int{512, 1024, 4096}, 1000); got != 512 {
		t.Fatalf("picked %d", got)
	}
	// With a zero allowance nothing qualifies: pick the largest.
	if got := m.PickThreshold(tr, []int{512, 1024, 4096}, 0); got != 4096 {
		t.Fatalf("picked %d", got)
	}
}
