package readsim

import (
	"math"
	"testing"

	"nmppak/internal/genome"
)

func mustGenome(t *testing.T, length int) *genome.Genome {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: length, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimulateCoverage(t *testing.T) {
	g := mustGenome(t, 50000)
	reads, err := Simulate(g, Config{ReadLen: 100, Coverage: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	depth := MeanDepth(g, reads)
	if math.Abs(depth-20) > 0.5 {
		t.Fatalf("depth = %v want ~20", depth)
	}
	for _, rd := range reads {
		if rd.Seq.Len() != 100 {
			t.Fatalf("read length %d", rd.Seq.Len())
		}
		if len(rd.Qual) != 100 {
			t.Fatalf("qual length %d", len(rd.Qual))
		}
	}
}

func TestErrorFreeReadsMatchGenome(t *testing.T) {
	g := mustGenome(t, 5000)
	reads, err := Simulate(g, Config{ReadLen: 80, Coverage: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref := g.Replicons[0].String()
	for i, rd := range reads {
		want := ref[rd.Pos : rd.Pos+80]
		if rd.Seq.String() != want {
			t.Fatalf("read %d does not match genome at %d", i, rd.Pos)
		}
	}
}

func TestErrorRateRealized(t *testing.T) {
	g := mustGenome(t, 20000)
	const rate = 0.02
	reads, err := Simulate(g, Config{ReadLen: 100, Coverage: 30, ErrorRate: rate, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref := g.Replicons[0].String()
	mismatches, total := 0, 0
	for _, rd := range reads {
		want := ref[rd.Pos : rd.Pos+100]
		got := rd.Seq.String()
		for i := range want {
			total++
			if want[i] != got[i] {
				mismatches++
			}
		}
	}
	observed := float64(mismatches) / float64(total)
	if math.Abs(observed-rate) > rate*0.15 {
		t.Fatalf("observed error rate %v want ~%v", observed, rate)
	}
}

func TestErrorProfileRampsToward3Prime(t *testing.T) {
	p := errorProfile(100, 0.01)
	if p[0] >= p[99] {
		t.Fatalf("profile must ramp up: p[0]=%v p[99]=%v", p[0], p[99])
	}
	mean := 0.0
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	if math.Abs(mean-0.01) > 1e-9 {
		t.Fatalf("profile mean %v want 0.01", mean)
	}
}

func TestBothStrands(t *testing.T) {
	g := mustGenome(t, 10000)
	reads, err := Simulate(g, Config{ReadLen: 100, Coverage: 10, BothStrands: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fwd, rev := 0, 0
	ref := g.Replicons[0].String()
	for _, rd := range reads {
		if rd.Reverse {
			rev++
			rc := rd.Seq.ReverseComplement().String()
			if rc != ref[rd.Pos:rd.Pos+100] {
				t.Fatal("reverse read RC does not match genome")
			}
		} else {
			fwd++
		}
	}
	if fwd == 0 || rev == 0 {
		t.Fatalf("expected both strands, got fwd=%d rev=%d", fwd, rev)
	}
}

func TestPhredQualities(t *testing.T) {
	if phred(0) != 'I' {
		t.Fatal("zero error must map to max quality")
	}
	if q := phred(0.1); q != '!'+10 {
		t.Fatalf("phred(0.1) = %c", q)
	}
	if phred(1) != '!' {
		t.Fatalf("phred(1) = %c", phred(1))
	}
}

func TestSimulateValidation(t *testing.T) {
	g := mustGenome(t, 1000)
	if _, err := Simulate(g, Config{ReadLen: 0, Coverage: 1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Simulate(g, Config{ReadLen: 100, Coverage: 0}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Simulate(g, Config{ReadLen: 2000, Coverage: 1}); err == nil {
		t.Fatal("expected error: read longer than replicon")
	}
}
