// Package readsim simulates Illumina-style short-read sequencing.
//
// It substitutes for the ART simulator the paper uses (Huang et al., 2012):
// fixed-length reads (100 bp in the paper), a target coverage (100× in the
// paper), and a per-base substitution error profile that rises toward the
// 3' end of the read, with matching Phred quality strings. Reads are drawn
// from the forward strand by default (see DESIGN.md §1 on strand handling);
// both-strand simulation is available for workloads that want it.
package readsim

import (
	"fmt"
	"math"
	"math/rand"

	"nmppak/internal/dna"
	"nmppak/internal/genome"
)

// Config controls read simulation.
type Config struct {
	ReadLen  int     // read length in bases (paper: 100)
	Coverage float64 // mean sequencing depth (paper: 100)
	// ErrorRate is the mean substitution probability per base (Illumina
	// short reads are <1% per the paper's §2.1; default 0 = error-free).
	ErrorRate float64
	// BothStrands samples reads from forward and reverse-complement
	// strands when true. The assembly pipeline in this repository is
	// strand-directed, so the default is forward-only.
	BothStrands bool
	Seed        int64
}

// Read is one simulated read with its originating coordinates (for
// debugging and genome-fraction metrics).
type Read struct {
	Seq      dna.Seq
	Qual     []byte // Phred+33
	Replicon int
	Pos      int
	Reverse  bool
}

// Simulate draws reads from g to reach cfg.Coverage mean depth.
func Simulate(g *genome.Genome, cfg Config) ([]Read, error) {
	if cfg.ReadLen <= 0 {
		return nil, fmt.Errorf("readsim: ReadLen must be positive, got %d", cfg.ReadLen)
	}
	if cfg.Coverage <= 0 {
		return nil, fmt.Errorf("readsim: Coverage must be positive, got %v", cfg.Coverage)
	}
	if cfg.ErrorRate < 0 || cfg.ErrorRate >= 1 {
		return nil, fmt.Errorf("readsim: ErrorRate %v out of [0,1)", cfg.ErrorRate)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	profile := errorProfile(cfg.ReadLen, cfg.ErrorRate)
	var reads []Read
	for ri, replicon := range g.Replicons {
		if replicon.Len() < cfg.ReadLen {
			return nil, fmt.Errorf("readsim: replicon %d length %d < read length %d", ri, replicon.Len(), cfg.ReadLen)
		}
		n := int(math.Ceil(cfg.Coverage * float64(replicon.Len()) / float64(cfg.ReadLen)))
		for i := 0; i < n; i++ {
			pos := r.Intn(replicon.Len() - cfg.ReadLen + 1)
			rd := Read{Replicon: ri, Pos: pos}
			frag := replicon.Slice(pos, pos+cfg.ReadLen)
			if cfg.BothStrands && r.Intn(2) == 1 {
				frag = frag.ReverseComplement()
				rd.Reverse = true
			}
			rd.Seq, rd.Qual = applyErrors(r, frag, profile)
			reads = append(reads, rd)
		}
	}
	return reads, nil
}

// errorProfile returns per-position substitution probabilities averaging
// rate, ramping linearly from 0.4× at the 5' end to 1.6× at the 3' end —
// the qualitative Illumina degradation ART models.
func errorProfile(readLen int, rate float64) []float64 {
	p := make([]float64, readLen)
	for i := range p {
		frac := 0.0
		if readLen > 1 {
			frac = float64(i) / float64(readLen-1)
		}
		p[i] = rate * (0.4 + 1.2*frac)
	}
	return p
}

func applyErrors(r *rand.Rand, frag dna.Seq, profile []float64) (dna.Seq, []byte) {
	bases := frag.Bases()
	qual := make([]byte, len(bases))
	for i := range bases {
		p := profile[i]
		qual[i] = phred(p)
		if p > 0 && r.Float64() < p {
			// Substitute with one of the three other bases.
			bases[i] = (bases[i] + dna.Base(1+r.Intn(3))) & 3
		}
	}
	return dna.FromBases(bases), qual
}

// phred converts an error probability to a Phred+33 quality character,
// clamped to the Illumina 1.8 range [!, I].
func phred(p float64) byte {
	if p <= 0 {
		return 'I'
	}
	q := -10 * math.Log10(p)
	if q < 0 {
		q = 0
	}
	if q > 40 {
		q = 40
	}
	return byte('!' + int(q+0.5))
}

// MeanDepth computes the realized average coverage of reads over g.
func MeanDepth(g *genome.Genome, reads []Read) float64 {
	total := 0
	for _, rd := range reads {
		total += rd.Seq.Len()
	}
	if g.TotalLength() == 0 {
		return 0
	}
	return float64(total) / float64(g.TotalLength())
}
