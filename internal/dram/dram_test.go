package dram

import (
	"testing"

	"nmppak/internal/sim"
)

func TestRowHitFasterThanMiss(t *testing.T) {
	ch := NewChannel(DDR4_3200())
	cfg := ch.Config()
	// First access: row miss (ACT + RCD + CL + BL).
	d1 := ch.AccessRow(0, 0, 0, 5, 1, false)
	wantMiss := sim.Cycle(cfg.TRCD + cfg.TCL + cfg.TBL)
	if d1 != wantMiss {
		t.Fatalf("miss latency %d want %d", d1, wantMiss)
	}
	// Same row again: hit, no ACT.
	d2 := ch.AccessRow(d1, 0, 0, 5, 1, false)
	if d2-d1 >= d1 {
		t.Fatalf("row hit latency %d not faster than miss %d", d2-d1, d1)
	}
	if ch.Stats.Activates != 1 {
		t.Fatalf("activates = %d want 1", ch.Stats.Activates)
	}
}

func TestRowConflictRequiresPrecharge(t *testing.T) {
	ch := NewChannel(DDR4_3200())
	cfg := ch.Config()
	d1 := ch.AccessRow(0, 0, 0, 5, 1, false)
	// Different row in the same bank: PRE + ACT. tRAS from the first ACT
	// dominates the earliest PRE.
	d2 := ch.AccessRow(d1, 0, 0, 9, 1, false)
	minGap := sim.Cycle(cfg.TRP + cfg.TRCD + cfg.TCL + cfg.TBL)
	if d2-d1 < minGap {
		t.Fatalf("conflict gap %d < %d", d2-d1, minGap)
	}
	if ch.Stats.Activates != 2 || ch.Stats.RowMisses != 2 {
		t.Fatalf("stats %+v", ch.Stats)
	}
}

func TestBankParallelismBeatsSameBank(t *testing.T) {
	// 8 single-burst accesses to different rows: across banks they overlap
	// (bus-limited), in one bank they serialize on tRC-ish gaps.
	same := NewChannel(DDR4_3200())
	var doneSame sim.Cycle
	for i := 0; i < 8; i++ {
		doneSame = same.AccessRow(0, 0, 0, i, 1, false)
	}
	diff := NewChannel(DDR4_3200())
	var doneDiff sim.Cycle
	for i := 0; i < 8; i++ {
		d := diff.AccessRow(0, 0, i, 0, 1, false)
		if d > doneDiff {
			doneDiff = d
		}
	}
	if doneDiff >= doneSame {
		t.Fatalf("bank parallelism %d not faster than same-bank %d", doneDiff, doneSame)
	}
}

func TestStreamingApproachesPeakBandwidth(t *testing.T) {
	ch := NewChannel(DDR4_3200())
	// Stream 128 blocks (one full row) repeatedly across banks.
	var done sim.Cycle
	for b := 0; b < 16; b++ {
		done = ch.AccessRow(done, 0, b, 0, 128, false)
	}
	util := ch.Stats.Utilization(ch.Config(), done)
	if util < 0.85 {
		t.Fatalf("streaming utilization %.2f < 0.85", util)
	}
	if util > 1.0001 {
		t.Fatalf("utilization %v exceeds peak", util)
	}
}

func TestUtilizationNeverExceedsPeak(t *testing.T) {
	ch := NewChannel(DDR4_3200())
	var done sim.Cycle
	for i := 0; i < 200; i++ {
		d := ch.AccessRow(sim.Cycle(i), i%2, i%16, i%7, 1+i%9, i%3 == 0)
		if d > done {
			done = d
		}
	}
	if util := ch.Stats.Utilization(ch.Config(), done); util > 1.0001 {
		t.Fatalf("utilization %v > 1", util)
	}
	if ch.Stats.TotalBytes() == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestWriteReadTurnaround(t *testing.T) {
	ch := NewChannel(DDR4_3200())
	cfg := ch.Config()
	dw := ch.AccessRow(0, 0, 0, 3, 1, true)
	dr := ch.AccessRow(dw, 0, 0, 3, 1, false)
	// Read data cannot start before write data end + tWTR + tCL.
	if dr < dw+sim.Cycle(cfg.TWTR) {
		t.Fatalf("read completed %d, too soon after write end %d", dr, dw)
	}
}

func TestMonotoneNonDecreasingCompletion(t *testing.T) {
	ch := NewChannel(DDR4_3200())
	var prev sim.Cycle
	for i := 0; i < 500; i++ {
		d := ch.AccessRow(prev, (i/16)%2, i%16, i%3, 1+(i%4), i%5 == 0)
		if d < prev {
			t.Fatalf("completion went backwards: %d after %d", d, prev)
		}
		prev = d
	}
}

func TestRefreshInterference(t *testing.T) {
	cfg := DDR4_3200()
	ch := NewChannel(cfg)
	// Access right at the refresh deadline: should be pushed past tRFC.
	at := sim.Cycle(cfg.TREFI)
	d := ch.AccessRow(at, 0, 0, 0, 1, false)
	if d < at+sim.Cycle(cfg.TRFC) {
		t.Fatalf("refresh not applied: done %d < %d", d, at+sim.Cycle(cfg.TRFC))
	}
}

func TestEarliestRespected(t *testing.T) {
	ch := NewChannel(DDR4_3200())
	d := ch.AccessRow(1000, 0, 0, 0, 1, false)
	if d < 1000 {
		t.Fatalf("completed %d before earliest 1000", d)
	}
	if got := ch.AccessRow(500, 1, 0, 0, 0, false); got != 500 {
		t.Fatalf("zero blocks must be a no-op returning earliest, got %d", got)
	}
}

func TestBlocksFor(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {8192, 128}} {
		if got := BlocksFor(tc.n); got != tc.want {
			t.Errorf("BlocksFor(%d) = %d want %d", tc.n, got, tc.want)
		}
	}
}

func TestPeakBytesPerCycle(t *testing.T) {
	if got := DDR4_3200().PeakBytesPerCycle(); got != 16 {
		t.Fatalf("peak = %v want 16 B/cycle (25.6 GB/s at 1.6 GHz)", got)
	}
}
