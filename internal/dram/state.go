package dram

import (
	"fmt"

	"nmppak/internal/sim"
)

// BankState is one bank's timing state, exported for checkpointing.
type BankState struct {
	OpenRow   int
	HasOpen   bool
	ActAt     sim.Cycle
	ReadyPre  sim.Cycle
	ReadyCmd  sim.Cycle
	PreDoneAt sim.Cycle
}

// RankState is one rank's timing state, exported for checkpointing.
type RankState struct {
	ActTimes    [4]sim.Cycle
	ActPtr      int
	LastActAt   sim.Cycle
	WrDataEnd   sim.Cycle
	NextRefresh sim.Cycle
}

// ChannelState is a complete mid-run snapshot of a Channel: every bank and
// rank timing constraint, the data-bus reservation pointer and the
// accumulated statistics. Restoring it into a fresh channel of the same
// geometry resumes the timing model bit-identically — the channel's
// behaviour is a pure function of (Config, ChannelState, access stream).
type ChannelState struct {
	Banks   [][]BankState // [rank][bank]
	Ranks   []RankState
	BusFree sim.Cycle
	Stats   Stats
}

// State deep-copies the channel's mutable state.
func (ch *Channel) State() ChannelState {
	st := ChannelState{
		Banks:   make([][]BankState, len(ch.banks)),
		Ranks:   make([]RankState, len(ch.ranks)),
		BusFree: ch.busFree,
		Stats:   ch.Stats,
	}
	for r := range ch.banks {
		st.Banks[r] = make([]BankState, len(ch.banks[r]))
		for b := range ch.banks[r] {
			bk := &ch.banks[r][b]
			st.Banks[r][b] = BankState{
				OpenRow: bk.openRow, HasOpen: bk.hasOpen, ActAt: bk.actAt,
				ReadyPre: bk.readyPre, ReadyCmd: bk.readyCmd, PreDoneAt: bk.preDoneAt,
			}
		}
	}
	for r := range ch.ranks {
		rk := &ch.ranks[r]
		st.Ranks[r] = RankState{
			ActTimes: rk.actTimes, ActPtr: rk.actPtr, LastActAt: rk.lastActAt,
			WrDataEnd: rk.wrDataEnd, NextRefresh: rk.nextRefresh,
		}
	}
	return st
}

// SetState overwrites the channel's mutable state with a snapshot taken
// from a channel of the same geometry. The snapshot shape must match the
// channel's configured ranks and banks.
func (ch *Channel) SetState(st ChannelState) error {
	if len(st.Banks) != len(ch.banks) || len(st.Ranks) != len(ch.ranks) {
		return fmt.Errorf("dram: state has %d ranks (%d rank entries), channel has %d",
			len(st.Banks), len(st.Ranks), len(ch.banks))
	}
	for r := range st.Banks {
		if len(st.Banks[r]) != len(ch.banks[r]) {
			return fmt.Errorf("dram: state rank %d has %d banks, channel has %d",
				r, len(st.Banks[r]), len(ch.banks[r]))
		}
	}
	for r := range st.Banks {
		for b := range st.Banks[r] {
			sb := &st.Banks[r][b]
			ch.banks[r][b] = bank{
				openRow: sb.OpenRow, hasOpen: sb.HasOpen, actAt: sb.ActAt,
				readyPre: sb.ReadyPre, readyCmd: sb.ReadyCmd, preDoneAt: sb.PreDoneAt,
			}
		}
	}
	for r := range st.Ranks {
		sr := &st.Ranks[r]
		ch.ranks[r] = rank{
			actTimes: sr.ActTimes, actPtr: sr.ActPtr, lastActAt: sr.LastActAt,
			wrDataEnd: sr.WrDataEnd, nextRefresh: sr.NextRefresh,
		}
	}
	ch.busFree = st.BusFree
	ch.Stats = st.Stats
	return nil
}
