// Package dram models a DDR4-3200 memory channel with bank-level timing —
// the repository's substitute for Ramulator (§5.2 of the paper).
//
// The model is transaction-level with exact command-timing algebra rather
// than per-cycle state machines: every access computes its ACT/RD/WR/PRE
// issue times from per-bank and per-rank timestamp constraints (tRCD, tRP,
// tCL, tRAS, tRRD, tFAW, tWR, tRTP, tWTR, refresh) and reserves the shared
// data bus, so row-buffer hits, bank-level parallelism, bus serialization
// and refresh interference all behave as in a cycle-accurate simulator
// while remaining fast enough to sweep whole-system configurations.
//
// The unit of access is a row streak: n consecutive 64-byte bursts within
// one row of one bank, which is exactly how MacroNodes are laid out (the
// paper leans on MacroNodes fitting the 8 KB row buffer; see §3.4).
package dram

import (
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
)

// Config holds the channel geometry and timing parameters in 1.6 GHz
// cycles (DDR4-3200: one command-clock cycle = 0.625 ns).
type Config struct {
	Ranks        int // ranks per channel (paper: 2)
	BanksPerRank int // DDR4: 16
	RowBytes     int // row buffer size (8 KB)

	// Core timing (cycles). Defaults follow DDR4-3200AA (22-22-22).
	TRCD  int // ACT -> RD/WR
	TRP   int // PRE -> ACT
	TCL   int // RD -> first data
	TCWL  int // WR -> first data
	TBL   int // data burst length on the bus (BL8 = 4 clocks)
	TRAS  int // ACT -> PRE
	TRRD  int // ACT -> ACT, different bank, same rank
	TFAW  int // four-activate window per rank
	TWR   int // end of write data -> PRE
	TRTP  int // RD -> PRE
	TWTR  int // end of write data -> RD (same rank)
	TRFC  int // refresh cycle time
	TREFI int // refresh interval
}

// DDR4_3200 returns the paper's memory configuration (Table 2).
func DDR4_3200() Config {
	return Config{
		Ranks:        2,
		BanksPerRank: 16,
		RowBytes:     8192,
		TRCD:         22,
		TRP:          22,
		TCL:          22,
		TCWL:         16,
		TBL:          4,
		TRAS:         52,
		TRRD:         6,
		TFAW:         26,
		TWR:          24,
		TRTP:         12,
		TWTR:         12,
		TRFC:         560,   // 350 ns
		TREFI:        12480, // 7.8 us
	}
}

// BlockBytes is the burst granularity (one BL8 burst on a x64 DIMM).
const BlockBytes = 64

// PeakBytesPerCycle is the channel's data-bus peak (64 B per tBL=4 cycles).
func (c Config) PeakBytesPerCycle() float64 { return BlockBytes / float64(c.TBL) }

// Stats aggregates channel activity.
type Stats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	Activates               int64
	RowHits                 int64 // bursts served from an already-open row
	RowMisses               int64 // bursts requiring an activate
	BusBusyCycles           int64
	LastDone                sim.Cycle
}

// TotalBytes moved in both directions.
func (s *Stats) TotalBytes() int64 { return s.BytesRead + s.BytesWritten }

// Utilization is achieved bandwidth as a fraction of peak over [0, end].
func (s *Stats) Utilization(cfg Config, end sim.Cycle) float64 {
	if end <= 0 {
		return 0
	}
	peak := cfg.PeakBytesPerCycle() * float64(end)
	return float64(s.TotalBytes()) / peak
}

type bank struct {
	openRow   int
	hasOpen   bool
	actAt     sim.Cycle // last ACT time
	readyPre  sim.Cycle // earliest PRE
	readyCmd  sim.Cycle // earliest next RD/WR issue (tCCD-style, folded into bus)
	preDoneAt sim.Cycle // earliest next ACT (after PRE + tRP)
}

type rank struct {
	actTimes    [4]sim.Cycle // ring buffer for tFAW
	actPtr      int
	lastActAt   sim.Cycle
	wrDataEnd   sim.Cycle // for tWTR
	nextRefresh sim.Cycle
}

// Channel is one DDR4 channel with its banks and shared data bus.
type Channel struct {
	cfg   Config
	banks [][]bank // [rank][bank]
	ranks []rank
	// busFree is the earliest cycle at which the next data burst may begin.
	busFree sim.Cycle
	Stats   Stats
	// probe, when non-nil, receives one data-bus occupancy span per burst
	// train (nil = telemetry disabled, zero overhead beyond one branch).
	probe *telemetry.Track
}

// SetProbe attaches (or, with nil, detaches) a data-bus occupancy track.
// Spans are recorded on the channel's local clock; callers re-base them to
// global time with Track.ShiftTail.
func (ch *Channel) SetProbe(t *telemetry.Track) { ch.probe = t }

// NewChannel builds a channel from cfg (zero fields filled with DDR4-3200
// defaults).
func NewChannel(cfg Config) *Channel {
	def := DDR4_3200()
	if cfg.Ranks == 0 {
		cfg = def
	}
	ch := &Channel{cfg: cfg}
	ch.banks = make([][]bank, cfg.Ranks)
	for r := range ch.banks {
		ch.banks[r] = make([]bank, cfg.BanksPerRank)
		for b := range ch.banks[r] {
			ch.banks[r][b].openRow = -1
		}
	}
	ch.ranks = make([]rank, cfg.Ranks)
	for r := range ch.ranks {
		rk := &ch.ranks[r]
		rk.nextRefresh = sim.Cycle(cfg.TREFI)
		// Far-past initial timestamps so window constraints are inactive
		// at t=0.
		const past = -1 << 30
		rk.lastActAt = past
		rk.wrDataEnd = past
		for i := range rk.actTimes {
			rk.actTimes[i] = past
		}
	}
	return ch
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// BlocksFor returns the number of 64 B bursts needed for n bytes.
func BlocksFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + BlockBytes - 1) / BlockBytes
}

// AccessRow performs blocks consecutive bursts to/from one row of one bank,
// no earlier than `earliest`, and returns the cycle at which the last data
// beat completes. It encapsulates the full command sequence: (optional PRE
// +) ACT on a row miss, then the burst train, honoring all timing
// constraints and bus availability.
func (ch *Channel) AccessRow(earliest sim.Cycle, rk, bk, row, blocks int, write bool) sim.Cycle {
	if blocks <= 0 {
		return earliest
	}
	cfg := ch.cfg
	b := &ch.banks[rk][bk]
	r := &ch.ranks[rk]

	t := earliest
	// Refresh: if the access would overlap the rank's pending refresh
	// window, slide past it.
	if t >= r.nextRefresh {
		refEnd := r.nextRefresh + sim.Cycle(cfg.TRFC)
		for t >= r.nextRefresh {
			if t < refEnd {
				t = refEnd
			}
			r.nextRefresh += sim.Cycle(cfg.TREFI)
			refEnd = r.nextRefresh + sim.Cycle(cfg.TRFC)
			// A refresh closes all rows in the rank.
			for i := range ch.banks[rk] {
				ch.banks[rk][i].hasOpen = false
			}
		}
	}

	rowHit := b.hasOpen && b.openRow == row
	if !rowHit {
		// PRE (if a different row is open) then ACT.
		actReady := t
		if b.hasOpen {
			pre := maxCycle(t, b.readyPre)
			actReady = pre + sim.Cycle(cfg.TRP)
		} else if b.preDoneAt > actReady {
			actReady = b.preDoneAt
		}
		// tRRD from the rank's last ACT and the tFAW window.
		if v := r.lastActAt + sim.Cycle(cfg.TRRD); v > actReady {
			actReady = v
		}
		if v := r.actTimes[r.actPtr] + sim.Cycle(cfg.TFAW); v > actReady {
			actReady = v
		}
		act := actReady
		b.actAt = act
		b.hasOpen = true
		b.openRow = row
		b.readyPre = act + sim.Cycle(cfg.TRAS)
		r.actTimes[r.actPtr] = act
		r.actPtr = (r.actPtr + 1) % 4
		r.lastActAt = act
		ch.Stats.Activates++
		t = act + sim.Cycle(cfg.TRCD)
	}

	// Write-to-read turnaround.
	if !write {
		if v := r.wrDataEnd + sim.Cycle(cfg.TWTR); v > t {
			t = v
		}
	}

	// Burst train: each 64 B burst occupies tBL on the shared bus. The
	// bus reservation pointer advances by tBL per burst from its own
	// position (clamped to the request's arrival), so a burst delayed by
	// its bank's timing consumes capacity without head-of-line blocking
	// unrelated accesses — the first-ready-first-served behaviour of an
	// FR-FCFS controller.
	lat := sim.Cycle(cfg.TCL)
	if write {
		lat = sim.Cycle(cfg.TCWL)
	}
	if ch.busFree < earliest {
		ch.busFree = earliest
	}
	busStart := ch.busFree
	var done sim.Cycle
	for i := 0; i < blocks; i++ {
		dataStart := maxCycle(t+lat, ch.busFree)
		ch.busFree += sim.Cycle(cfg.TBL)
		ch.Stats.BusBusyCycles += int64(cfg.TBL)
		done = dataStart + sim.Cycle(cfg.TBL)
		t = done - lat // next command slot
	}
	if ch.probe != nil {
		// The reservation pointer is monotone, so [busStart, busFree)
		// windows never overlap and their lengths sum to BusBusyCycles.
		wr := int64(0)
		if write {
			wr = 1
		}
		ch.probe.Add(telemetry.SpanBus, busStart, ch.busFree, int64(blocks*BlockBytes), wr)
	}
	if write {
		r.wrDataEnd = done
		if v := done + sim.Cycle(cfg.TWR); v > b.readyPre {
			b.readyPre = v
		}
		ch.Stats.Writes++
		ch.Stats.BytesWritten += int64(blocks * BlockBytes)
	} else {
		if v := t - lat + sim.Cycle(cfg.TRTP); v > b.readyPre {
			b.readyPre = v
		}
		ch.Stats.Reads++
		ch.Stats.BytesRead += int64(blocks * BlockBytes)
	}
	// The first burst of a row miss is the miss; every subsequent burst in
	// the streak is a row hit.
	if rowHit {
		ch.Stats.RowHits += int64(blocks)
	} else {
		ch.Stats.RowMisses++
		ch.Stats.RowHits += int64(blocks - 1)
	}
	if done > ch.Stats.LastDone {
		ch.Stats.LastDone = done
	}
	return done
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}
