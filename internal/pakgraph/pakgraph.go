// Package pakgraph implements PaKman's MacroNode data structure and the
// PaK-graph (Figs. 2C and 3 of the paper).
//
// A MacroNode groups all k-mers sharing a (k-1)-mer: the (k-1)-mer is the
// node key; each k-mer contributes a one-base prefix or suffix extension.
// Extensions grow to multi-base strings as Iterative Compaction merges
// neighboring nodes. Terminal extensions mark positions where reads (and
// hence contigs) begin or end; their sequences carry any bases accumulated
// from compacted-away boundary nodes.
//
// Wires record the internal prefix<->suffix pairing of a node (PaKman's
// wiring information): a wire (p, s, count) says that `count` read
// traversals entered the node through prefix extension p and left through
// suffix extension s. Contig generation walks wires; compaction transfers
// them.
package pakgraph

import (
	"fmt"
	"slices"

	"nmppak/internal/dna"
	"nmppak/internal/kmer"
)

// Ext is one prefix or suffix extension of a MacroNode.
//
// Count is the structural multiplicity: the number of wires routed through
// this extension (1 except at forks/merges created during compaction
// splits). Weight is the sequencing-coverage mass (k-mer occurrence count)
// and is used only to order the prefix<->suffix pairing so that high-
// coverage paths pair with each other; it plays no role in the graph's
// structural invariants.
type Ext struct {
	Seq      dna.Seq
	Count    uint32
	Weight   uint32
	Terminal bool // read/contig boundary marker; Seq may still carry bases
}

// Wire pairs prefix extension P with suffix extension S for Count
// traversals.
type Wire struct {
	P, S  int32
	Count uint32
}

// MacroNode is one node of the PaK-graph. See the package comment.
type MacroNode struct {
	Key      dna.Kmer // the (k-1)-mer
	Prefixes []Ext
	Suffixes []Ext
	Wires    []Wire
}

// Graph is the PaK-graph: a keyed set of MacroNodes for a fixed k.
type Graph struct {
	K     int // k-mer length; keys are (K-1)-mers
	Nodes map[dna.Kmer]*MacroNode
}

// K1 returns the node key length (k-1).
func (g *Graph) K1() int { return g.K - 1 }

// Len returns the number of MacroNodes.
func (g *Graph) Len() int { return len(g.Nodes) }

// Build constructs the PaK-graph from counted k-mers (Fig. 3): each k-mer
// adds a suffix extension to the node of its leading (k-1)-mer and a prefix
// extension to the node of its trailing (k-1)-mer, weighted by the k-mer's
// occurrence count. Rewire then pairs each node's prefixes with its
// suffixes; extensions left unpaired (graph tips from genome/batch ends or
// pruned error k-mers, and the extra arms of forks and merges) receive
// terminal pads, which is where contigs will begin and end.
func Build(res *kmer.Result) (*Graph, error) {
	if res.K < 2 {
		return nil, fmt.Errorf("pakgraph: invalid k=%d", res.K)
	}
	g := &Graph{K: res.K, Nodes: make(map[dna.Kmer]*MacroNode, len(res.Kmers))}
	// Nodes are carved out of slab blocks: one allocation per 512 nodes
	// instead of one each, which cuts both Build time and the GC scan load
	// of the finished graph.
	var slab []MacroNode
	node := func(key dna.Kmer) *MacroNode {
		n := g.Nodes[key]
		if n == nil {
			if len(slab) == 0 {
				slab = make([]MacroNode, 512)
			}
			n = &slab[0]
			slab = slab[1:]
			n.Key = key
			g.Nodes[key] = n
		}
		return n
	}
	for _, kc := range res.Kmers {
		l, r := kc.Km.Prefix(), kc.Km.Suffix(res.K)
		first, last := kc.Km.First(res.K), kc.Km.Last()
		addExt(&node(l).Suffixes, extKey1(last), kc.Count, false)
		addExt(&node(r).Prefixes, extKey1(first), kc.Count, false)
	}
	for _, n := range g.Nodes {
		n.Rewire()
	}
	return g, nil
}

var base1 [4]dna.Seq

func init() {
	for b := 0; b < 4; b++ {
		base1[b] = dna.FromBases([]dna.Base{dna.Base(b)})
	}
}

func extKey1(b dna.Base) dna.Seq { return base1[b&3] }

// addExt merges (seq, weight, terminal) into the extension list, combining
// entries with identical sequence and terminal flag. Structural counts are
// assigned later by Rewire.
func addExt(exts *[]Ext, seq dna.Seq, weight uint32, terminal bool) {
	for i := range *exts {
		e := &(*exts)[i]
		if e.Terminal == terminal && e.Seq.Equal(seq) {
			e.Weight += weight
			return
		}
	}
	*exts = append(*exts, Ext{Seq: seq, Weight: weight, Terminal: terminal})
}

// AddExt exposes addExt for graph merging.
func AddExt(exts *[]Ext, seq dna.Seq, weight uint32, terminal bool) {
	addExt(exts, seq, weight, terminal)
}

// Rewire recomputes the node's wires from scratch: prefixes and suffixes
// are sorted by coverage weight (descending) and paired one-to-one, so the
// dominant incoming path continues into the dominant outgoing path, as in
// PaKman's count-proportional wiring. Extensions left over on the longer
// side are wired to freshly added terminal pads — those are the unitig
// break points at forks, merges and tips. Extension counts are then set to
// their wire degree, the structural invariant Validate checks.
func (n *MacroNode) Rewire() {
	n.Wires = n.Wires[:0]
	// Index scratch lives on the stack for typical extension counts; only
	// heavily forked nodes spill to the heap.
	var pbuf, sbuf [16]int
	pi := sortedByWeight(pbuf[:0], n.Prefixes)
	si := sortedByWeight(sbuf[:0], n.Suffixes)
	m := len(pi)
	if len(si) < m {
		m = len(si)
	}
	for i := 0; i < m; i++ {
		n.Wires = append(n.Wires, Wire{P: int32(pi[i]), S: int32(si[i]), Count: 1})
	}
	for _, p := range pi[m:] { // unpaired prefixes: contig ends here
		n.Suffixes = append(n.Suffixes, Ext{Weight: n.Prefixes[p].Weight, Terminal: true})
		n.Wires = append(n.Wires, Wire{P: int32(p), S: int32(len(n.Suffixes) - 1), Count: 1})
	}
	for _, s := range si[m:] { // unpaired suffixes: contig starts here
		n.Prefixes = append(n.Prefixes, Ext{Weight: n.Suffixes[s].Weight, Terminal: true})
		n.Wires = append(n.Wires, Wire{P: int32(len(n.Prefixes) - 1), S: int32(s), Count: 1})
	}
	// Counts = wire degree.
	for i := range n.Prefixes {
		n.Prefixes[i].Count = 0
	}
	for i := range n.Suffixes {
		n.Suffixes[i].Count = 0
	}
	for _, w := range n.Wires {
		n.Prefixes[w.P].Count += w.Count
		n.Suffixes[w.S].Count += w.Count
	}
}

func sortedByWeight(buf []int, exts []Ext) []int {
	idx := buf
	for i := range exts {
		idx = append(idx, i)
	}
	// Extension lists are tiny (a handful of entries), so an insertion sort
	// beats sort.Slice here and avoids its comparator closure and reflect-
	// based swapper; the (terminal, weight, index) key is a total order, so
	// the result is identical.
	less := func(a, b int) bool {
		ea, eb := &exts[a], &exts[b]
		// Real extensions outrank terminal pads at equal weight, so pads
		// pair with pads only as a last resort.
		if ea.Terminal != eb.Terminal {
			return eb.Terminal
		}
		if ea.Weight != eb.Weight {
			return ea.Weight > eb.Weight
		}
		return a < b
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// NeighborKeys returns the distinct keys of all nodes adjacent to n
// (reachable through any non-terminal extension), and whether any extension
// is a self-loop. Extension lists are small, so duplicates are filtered by
// a linear scan instead of a throwaway map.
func (n *MacroNode) NeighborKeys(k1 int) (keys []dna.Kmer, selfLoop bool) {
	keys = make([]dna.Kmer, 0, len(n.Prefixes)+len(n.Suffixes))
	add := func(k dna.Kmer) {
		if k == n.Key {
			selfLoop = true
			return
		}
		for _, have := range keys {
			if have == k {
				return
			}
		}
		keys = append(keys, k)
	}
	for _, e := range n.Prefixes {
		if !e.Terminal {
			add(dna.NeighborViaPrefix(n.Key, k1, e.Seq))
		}
	}
	for _, e := range n.Suffixes {
		if !e.Terminal {
			add(dna.NeighborViaSuffix(n.Key, k1, e.Seq))
		}
	}
	if len(keys) == 0 {
		keys = nil
	}
	return keys, selfLoop
}

// IsInvalidationTarget implements the paper's Fig. 4(b) check: the node is
// removable when it has at least one real neighbor, no self-loop, and its
// key is strictly the lexicographically largest among all neighbor keys.
// This is the P1 decision evaluated once per live node per compaction
// iteration, so it runs allocation-free and bails out at the first
// neighbor that disqualifies the node (a self-loop is a neighbor key equal
// to n.Key, so the single >= comparison covers both conditions).
func (n *MacroNode) IsInvalidationTarget(k1 int) bool {
	has := false
	for i := range n.Prefixes {
		if e := &n.Prefixes[i]; !e.Terminal {
			if dna.NeighborViaPrefix(n.Key, k1, e.Seq) >= n.Key {
				return false
			}
			has = true
		}
	}
	for i := range n.Suffixes {
		if e := &n.Suffixes[i]; !e.Terminal {
			if dna.NeighborViaSuffix(n.Key, k1, e.Seq) >= n.Key {
				return false
			}
			has = true
		}
	}
	return has
}

// Data1Bytes models the size of the fields Stage P1/P2 load ("MN data1" in
// Fig. 10): the (k-1)-mer plus the packed prefix and suffix extension
// sequences and counts.
func (n *MacroNode) Data1Bytes() int {
	// Indexed loops: this is called once per live node per compaction
	// iteration, and ranging by value would copy each Ext (seq header +
	// counts) just to read one length.
	b := 8
	for i := range n.Prefixes {
		b += n.Prefixes[i].Seq.PackedBytes() + 7 // count(4) + len(2) + flags(1)
	}
	for i := range n.Suffixes {
		b += n.Suffixes[i].Seq.PackedBytes() + 7
	}
	return b
}

// Data2Bytes models the internal wiring information ("MN data2" in Fig.
// 10).
func (n *MacroNode) Data2Bytes() int { return 8 + 8*len(n.Wires) }

// SizeBytes is the full serialized MacroNode size used for the Fig. 7/8
// size distributions and the hybrid CPU-offload threshold.
func (n *MacroNode) SizeBytes() int { return n.Data1Bytes() + n.Data2Bytes() }

// TotalPrefixCount sums prefix extension counts (== suffix total when
// balanced).
func (n *MacroNode) TotalPrefixCount() uint64 {
	var t uint64
	for _, e := range n.Prefixes {
		t += uint64(e.Count)
	}
	return t
}

// TotalSuffixCount sums suffix extension counts.
func (n *MacroNode) TotalSuffixCount() uint64 {
	var t uint64
	for _, e := range n.Suffixes {
		t += uint64(e.Count)
	}
	return t
}

// TerminalCount returns the summed counts of terminal prefix and suffix
// extensions; its graph-wide total is invariant under compaction.
func (n *MacroNode) TerminalCount() (prefix, suffix uint64) {
	for _, e := range n.Prefixes {
		if e.Terminal {
			prefix += uint64(e.Count)
		}
	}
	for _, e := range n.Suffixes {
		if e.Terminal {
			suffix += uint64(e.Count)
		}
	}
	return prefix, suffix
}

// SortedKeys returns all node keys in ascending order — the layout order
// the paper's static DIMM mapping table assumes ("MacroNodes are stored in
// ascending (k-1)-mer order across DIMMs").
func (g *Graph) SortedKeys() []dna.Kmer {
	keys := make([]dna.Kmer, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Validate checks structural invariants: balance, wire index bounds, wire
// count conservation, and that every non-terminal extension points at an
// existing node. Used heavily by tests.
func (g *Graph) Validate() error {
	k1 := g.K1()
	for key, n := range g.Nodes {
		if n.Key != key {
			return fmt.Errorf("node keyed %s stores key %s", key.StringK(k1), n.Key.StringK(k1))
		}
		if tp, ts := n.TotalPrefixCount(), n.TotalSuffixCount(); tp != ts {
			return fmt.Errorf("node %s unbalanced: prefixes %d suffixes %d", key.StringK(k1), tp, ts)
		}
		wiredP := make([]uint64, len(n.Prefixes))
		wiredS := make([]uint64, len(n.Suffixes))
		for _, w := range n.Wires {
			if int(w.P) >= len(n.Prefixes) || int(w.S) >= len(n.Suffixes) || w.P < 0 || w.S < 0 {
				return fmt.Errorf("node %s wire (%d,%d) out of range", key.StringK(k1), w.P, w.S)
			}
			wiredP[w.P] += uint64(w.Count)
			wiredS[w.S] += uint64(w.Count)
		}
		for i, e := range n.Prefixes {
			if wiredP[i] != uint64(e.Count) {
				return fmt.Errorf("node %s prefix %d wired %d of %d", key.StringK(k1), i, wiredP[i], e.Count)
			}
			if !e.Terminal {
				nb := dna.NeighborViaPrefix(n.Key, k1, e.Seq)
				if g.Nodes[nb] == nil {
					return fmt.Errorf("node %s prefix %q dangles (neighbor %s missing)", key.StringK(k1), e.Seq.String(), nb.StringK(k1))
				}
			}
		}
		for i, e := range n.Suffixes {
			if wiredS[i] != uint64(e.Count) {
				return fmt.Errorf("node %s suffix %d wired %d of %d", key.StringK(k1), i, wiredS[i], e.Count)
			}
			if !e.Terminal {
				nb := dna.NeighborViaSuffix(n.Key, k1, e.Seq)
				if g.Nodes[nb] == nil {
					return fmt.Errorf("node %s suffix %q dangles (neighbor %s missing)", key.StringK(k1), e.Seq.String(), nb.StringK(k1))
				}
			}
		}
	}
	return nil
}

// TotalTerminals sums terminal counts graph-wide; compaction must conserve
// this quantity.
func (g *Graph) TotalTerminals() (prefix, suffix uint64) {
	for _, n := range g.Nodes {
		p, s := n.TerminalCount()
		prefix += p
		suffix += s
	}
	return prefix, suffix
}

// SizeHistogram buckets node sizes by power of two between 2^minPow and
// 2^maxPow (Fig. 7's x-axis); bucket i counts nodes in [2^(minPow+i),
// 2^(minPow+i+1)), with underflow in bucket 0 and overflow in the last.
func (g *Graph) SizeHistogram(minPow, maxPow int) []int {
	h := make([]int, maxPow-minPow+1)
	for _, n := range g.Nodes {
		sz := n.SizeBytes()
		b := 0
		for p := minPow; p < maxPow; p++ {
			if sz >= 1<<(p+1) {
				b++
			}
		}
		h[b]++
	}
	return h
}

// Merge folds other into g (used to combine per-batch compacted graphs,
// §4.4): nodes with the same key have their extensions merged and wires
// recomputed; balancing is preserved because both inputs are balanced.
func (g *Graph) Merge(other *Graph) error {
	if g.K != other.K {
		return fmt.Errorf("pakgraph: merging graphs with k=%d and k=%d", g.K, other.K)
	}
	for key, on := range other.Nodes {
		n := g.Nodes[key]
		if n == nil {
			g.Nodes[key] = on
			continue
		}
		for _, e := range on.Prefixes {
			addExt(&n.Prefixes, e.Seq, e.Count, e.Terminal)
		}
		for _, e := range on.Suffixes {
			addExt(&n.Suffixes, e.Seq, e.Count, e.Terminal)
		}
		n.Rewire()
	}
	return nil
}
