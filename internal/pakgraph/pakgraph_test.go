package pakgraph

import (
	"testing"

	"nmppak/internal/dna"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/readsim"
)

// singleRead builds a read set containing one read spelling the whole
// string s.
func singleRead(t *testing.T, s string) []readsim.Read {
	t.Helper()
	return []readsim.Read{{Seq: dna.MustParseSeq(s)}}
}

func buildGraph(t *testing.T, reads []readsim.Read, k int) *Graph {
	t.Helper()
	res, err := kmer.Count(reads, kmer.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildSingleReadPath(t *testing.T) {
	// "ACGTT" with k=4 has k-mers ACGT, CGTT; nodes are 3-mers ACG, CGT,
	// GTT. Fig. 3(b): each k-mer wires two MacroNodes.
	g := buildGraph(t, singleRead(t, "ACGTT"), 4)
	if g.Len() != 3 {
		t.Fatalf("nodes = %d want 3", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	start := g.Nodes[dna.MustParseKmer("ACG")]
	if start == nil {
		t.Fatal("missing node ACG")
	}
	// Start node: terminal prefix (read start), suffix 'T' (from ACGT).
	tp, _ := start.TerminalCount()
	if tp != 1 {
		t.Fatalf("start node terminal prefix = %d want 1", tp)
	}
	mid := g.Nodes[dna.MustParseKmer("CGT")]
	if len(mid.Prefixes) != 1 || len(mid.Suffixes) != 1 {
		t.Fatalf("middle node exts: %d/%d", len(mid.Prefixes), len(mid.Suffixes))
	}
	if mid.Prefixes[0].Terminal || mid.Suffixes[0].Terminal {
		t.Fatal("middle node must have no terminals")
	}
	if mid.Prefixes[0].Seq.String() != "A" || mid.Suffixes[0].Seq.String() != "T" {
		t.Fatalf("middle exts %q/%q", mid.Prefixes[0].Seq, mid.Suffixes[0].Seq)
	}
	end := g.Nodes[dna.MustParseKmer("GTT")]
	_, ts := end.TerminalCount()
	if ts != 1 {
		t.Fatalf("end node terminal suffix = %d want 1", ts)
	}
}

func TestBuildPaperFig3Example(t *testing.T) {
	// Fig. 3(a): with k=5, k-mers AGTCA, CGTCA, TGTCA, GTCAT, GTCAG all
	// share (k-1)-mer GTCA and collapse into one MacroNode with three
	// prefixes and two suffixes.
	reads := []readsim.Read{
		{Seq: dna.MustParseSeq("AGTCAT")},
		{Seq: dna.MustParseSeq("CGTCAG")},
		{Seq: dna.MustParseSeq("TGTCAT")},
	}
	g := buildGraph(t, reads, 5)
	n := g.Nodes[dna.MustParseKmer("GTCA")]
	if n == nil {
		t.Fatal("missing MacroNode GTCA")
	}
	realP, realS := 0, 0
	for _, e := range n.Prefixes {
		if !e.Terminal {
			realP++
		}
	}
	for _, e := range n.Suffixes {
		if !e.Terminal {
			realS++
		}
	}
	if realP != 3 || realS != 2 {
		t.Fatalf("GTCA has %d prefixes / %d suffixes, want 3/2", realP, realS)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBalancedAndValid(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pg := buildGraph(t, reads, 32)
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Roughly one node per genome position.
	if pg.Len() < 4000 || pg.Len() > 5100 {
		t.Fatalf("node count %d out of expected range", pg.Len())
	}
}

func TestBuildWithPruningStillValid(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 4000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 15, ErrorRate: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmer.Count(reads, kmer.Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	// Pruning breaks chains; balance padding must keep the graph valid.
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRewirePairsByWeight(t *testing.T) {
	n := &MacroNode{Key: dna.MustParseKmer("ACGT")}
	n.Prefixes = []Ext{{Seq: dna.MustParseSeq("A"), Weight: 10}, {Seq: dna.MustParseSeq("C"), Weight: 4}}
	n.Suffixes = []Ext{{Seq: dna.MustParseSeq("T"), Weight: 8}, {Seq: dna.MustParseSeq("G"), Weight: 6}}
	n.Rewire()
	// Heavy pairs with heavy: A(10)<->T(8), C(4)<->G(6).
	want := []Wire{{0, 0, 1}, {1, 1, 1}}
	if len(n.Wires) != len(want) {
		t.Fatalf("wires = %v", n.Wires)
	}
	for i, w := range want {
		if n.Wires[i] != w {
			t.Fatalf("wire %d = %v want %v", i, n.Wires[i], w)
		}
	}
	if n.TotalPrefixCount() != n.TotalSuffixCount() {
		t.Fatal("not balanced")
	}
}

func TestRewirePadsForkAndMerge(t *testing.T) {
	// Fork: one prefix feeding two suffixes. The lighter suffix must start
	// a new contig via a terminal-prefix pad (unitig break).
	n := &MacroNode{Key: dna.MustParseKmer("ACGT")}
	n.Prefixes = []Ext{{Seq: dna.MustParseSeq("A"), Weight: 10}}
	n.Suffixes = []Ext{{Seq: dna.MustParseSeq("T"), Weight: 7}, {Seq: dna.MustParseSeq("G"), Weight: 3}}
	n.Rewire()
	tp, ts := n.TerminalCount()
	if tp != 1 || ts != 0 {
		t.Fatalf("fork terminals %d/%d want 1/0", tp, ts)
	}
	if len(n.Wires) != 2 {
		t.Fatalf("wires = %v", n.Wires)
	}
	if n.TotalPrefixCount() != n.TotalSuffixCount() {
		t.Fatal("not balanced")
	}
	// Merge: two prefixes into one suffix -> terminal-suffix pad.
	m := &MacroNode{Key: dna.MustParseKmer("ACGT")}
	m.Prefixes = []Ext{{Seq: dna.MustParseSeq("A"), Weight: 5}, {Seq: dna.MustParseSeq("C"), Weight: 9}}
	m.Suffixes = []Ext{{Seq: dna.MustParseSeq("T"), Weight: 14}}
	m.Rewire()
	tp, ts = m.TerminalCount()
	if tp != 0 || ts != 1 {
		t.Fatalf("merge terminals %d/%d want 0/1", tp, ts)
	}
	// The heavier prefix C keeps the real suffix.
	for _, w := range m.Wires {
		if w.P == 1 && m.Suffixes[w.S].Terminal {
			t.Fatal("heavy prefix was wired to the pad")
		}
	}
}

func TestIsInvalidationTarget(t *testing.T) {
	// "ATGA" with k=3: k-mers ATG, TGA; nodes AT, TG, GA. Under the A<C<T<G
	// order (Fig. 4b), GA is the largest key; its only neighbor is TG, so
	// GA is the unique invalidation target.
	g := buildGraph(t, singleRead(t, "ATGA"), 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Nodes[dna.MustParseKmer("GA")].IsInvalidationTarget(2) {
		t.Fatal("GA must be an invalidation target (larger than neighbor TG)")
	}
	if g.Nodes[dna.MustParseKmer("TG")].IsInvalidationTarget(2) {
		t.Fatal("TG must not be a target (neighbor GA is larger)")
	}
	if g.Nodes[dna.MustParseKmer("AT")].IsInvalidationTarget(2) {
		t.Fatal("AT must not be a target")
	}
}

func TestSelfLoopNeverInvalidated(t *testing.T) {
	// Homopolymer: "TTTTT" with k=3 -> single node "TT" with self-loop.
	g := buildGraph(t, singleRead(t, "TTTTT"), 3)
	n := g.Nodes[dna.MustParseKmer("TT")]
	if n == nil {
		t.Fatal("missing TT")
	}
	_, selfLoop := n.NeighborKeys(2)
	if !selfLoop {
		t.Fatal("expected self-loop")
	}
	if n.IsInvalidationTarget(2) {
		t.Fatal("self-loop node must not be invalidated")
	}
}

func TestSizeBytesAndHistogram(t *testing.T) {
	g := buildGraph(t, singleRead(t, "ACGTTGCAAC"), 4)
	for _, n := range g.Nodes {
		if n.SizeBytes() <= 8 {
			t.Fatalf("node size %d too small", n.SizeBytes())
		}
		if n.Data1Bytes()+n.Data2Bytes() != n.SizeBytes() {
			t.Fatal("size decomposition mismatch")
		}
	}
	h := g.SizeHistogram(5, 8) // 32B..256B buckets
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.Len() {
		t.Fatalf("histogram covers %d of %d nodes", total, g.Len())
	}
}

func TestSortedKeysAscending(t *testing.T) {
	g := buildGraph(t, singleRead(t, "ACGTTGCAACGGTCA"), 5)
	keys := g.SortedKeys()
	if len(keys) != g.Len() {
		t.Fatal("length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not strictly ascending")
		}
	}
}

func TestMergePreservesValidity(t *testing.T) {
	gA := buildGraph(t, singleRead(t, "ACGTTGCA"), 4)
	gB := buildGraph(t, singleRead(t, "TTGCAACG"), 4)
	if err := gA.Merge(gB); err != nil {
		t.Fatal(err)
	}
	if err := gA.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shared node TGC must have merged coverage weight.
	n := gA.Nodes[dna.MustParseKmer("TGC")]
	if n == nil {
		t.Fatal("missing merged node TGC")
	}
	var w uint32
	for _, e := range n.Prefixes {
		w += e.Weight
	}
	if w != 2 {
		t.Fatalf("merged node weight %d want 2", w)
	}
}

func TestMergeRejectsDifferentK(t *testing.T) {
	gA := buildGraph(t, singleRead(t, "ACGTTGCA"), 4)
	gB := buildGraph(t, singleRead(t, "ACGTTGCA"), 5)
	if err := gA.Merge(gB); err == nil {
		t.Fatal("expected error merging different k")
	}
}

func TestTotalTerminalsMatchesReadCount(t *testing.T) {
	reads := []readsim.Read{
		{Seq: dna.MustParseSeq("ACGTTGCAGG")},
		{Seq: dna.MustParseSeq("GGTCAATCGA")},
	}
	g := buildGraph(t, reads, 4)
	tp, ts := g.TotalTerminals()
	if tp != 2 || ts != 2 {
		t.Fatalf("terminals %d/%d want 2/2", tp, ts)
	}
}
