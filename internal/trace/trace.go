// Package trace captures the memory-access behaviour of an Iterative
// Compaction run so the hardware models can replay it, mirroring the
// paper's methodology (§5.2): "We generate memory traces of read and write
// operations from the actual assembly execution to feed them into
// Ramulator... we use 'mn_idx' metadata to control their operation timing
// and track their status."
//
// A Trace records, per iteration, every live MacroNode visit (sizes,
// extension/wire counts, invalidation decision), every TransferNode routed
// (source, destination, payload size), and every destination update (bytes
// read and written). Node identity is positional (mn_idx within the
// iteration's ascending-key order) plus the node key, from which the
// simulators derive DIMM placement via the paper's static ascending-range
// mapping table.
package trace

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"nmppak/internal/compact"
	"nmppak/internal/dna"
)

// NodeOp is one P1 visit of a live MacroNode.
type NodeOp struct {
	Key         dna.Kmer
	D1, D2      int32 // MN data1 / data2 bytes (Fig. 10)
	Exts, Wires int32
	Invalidated bool
}

// TransferOp is one TransferNode routed from a source (invalidated) node to
// a destination node, identified by mn_idx within the same iteration.
type TransferOp struct {
	SrcIdx, DstIdx int32
	TNBytes        int32
	SuffixSide     bool
}

// UpdateOp is one P3 destination update.
type UpdateOp struct {
	DstIdx                int32
	ReadBytes, WriteBytes int32
}

// Iteration is the full event record of one compaction iteration.
type Iteration struct {
	Nodes     []NodeOp
	Transfers []TransferOp
	Updates   []UpdateOp
	Stats     compact.IterStats
	// Quantiles is this iteration's key-space partition table (257
	// edges). Because compaction preferentially removes lexicographically
	// large keys, a static iteration-0 table would drain the high-key
	// DIMMs and pile survivors into DIMM 0; the runtime refreshes the
	// range table at each iteration's reallocation, which this field
	// records.
	Quantiles []dna.Kmer
}

// Trace is a complete compaction recording.
type Trace struct {
	K          int
	Iterations []Iteration
	// Quantiles are 257 key-space edges computed from the iteration-0 node
	// population; the simulators map a key to a DIMM by quantile bucket,
	// reproducing the paper's equal-population ascending-key partition.
	Quantiles []dna.Kmer
}

// TotalNodeOps counts node visits across all iterations.
func (t *Trace) TotalNodeOps() int64 {
	var n int64
	for i := range t.Iterations {
		n += int64(len(t.Iterations[i].Nodes))
	}
	return n
}

// TotalTransfers counts TransferNodes across all iterations.
func (t *Trace) TotalTransfers() int64 {
	var n int64
	for i := range t.Iterations {
		n += int64(len(t.Iterations[i].Transfers))
	}
	return n
}

// DIMMOf maps a key to a DIMM index in [0, nDIMMs) using the iteration-0
// quantile table.
func (t *Trace) DIMMOf(key dna.Kmer, nDIMMs int) int {
	return dimmOf(t.Quantiles, key, nDIMMs)
}

// DIMMOf maps a key to a DIMM using this iteration's refreshed table.
func (it *Iteration) DIMMOf(key dna.Kmer, nDIMMs int) int {
	return dimmOf(it.Quantiles, key, nDIMMs)
}

func dimmOf(q []dna.Kmer, key dna.Kmer, nDIMMs int) int {
	if len(q) == 0 || nDIMMs <= 1 {
		return 0
	}
	buckets := len(q) - 1
	i := sort.Search(buckets, func(i int) bool { return q[i+1] > key })
	if i >= buckets {
		i = buckets - 1
	}
	d := i * nDIMMs / buckets
	if d >= nDIMMs {
		d = nDIMMs - 1
	}
	return d
}

// Save writes the trace with gob encoding.
func (t *Trace) Save(w io.Writer) error { return gob.NewEncoder(w).Encode(t) }

// Load reads a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// Builder implements compact.Observer and accumulates a Trace.
type Builder struct {
	trace   Trace
	cur     *Iteration
	idxOf   map[dna.Kmer]int32
	pendTN  []pendingTN
	pendUpd []pendingUpd
}

type pendingTN struct {
	src, dst   dna.Kmer
	tnBytes    int
	suffixSide bool
}

type pendingUpd struct {
	dst         dna.Kmer
	read, write int
}

// NewBuilder returns a Builder for a graph with k-mer length k.
func NewBuilder(k int) *Builder {
	return &Builder{trace: Trace{K: k}}
}

// BeginIteration implements compact.Observer.
func (b *Builder) BeginIteration(iter, liveNodes int) {
	b.cur = &Iteration{Nodes: make([]NodeOp, 0, liveNodes)}
	b.idxOf = make(map[dna.Kmer]int32, liveNodes)
	b.pendTN = b.pendTN[:0]
	b.pendUpd = b.pendUpd[:0]
}

// ScanNode implements compact.Observer.
func (b *Builder) ScanNode(key dna.Kmer, d1, d2, exts, wires int, invalidated bool) {
	b.idxOf[key] = int32(len(b.cur.Nodes))
	b.cur.Nodes = append(b.cur.Nodes, NodeOp{
		Key: key, D1: int32(d1), D2: int32(d2),
		Exts: int32(exts), Wires: int32(wires), Invalidated: invalidated,
	})
}

// Transfer implements compact.Observer. Destinations may not be scanned
// yet, so resolution is deferred to EndIteration.
func (b *Builder) Transfer(src, dst dna.Kmer, tnBytes int, suffixSide bool) {
	b.pendTN = append(b.pendTN, pendingTN{src, dst, tnBytes, suffixSide})
}

// UpdateNode implements compact.Observer.
func (b *Builder) UpdateNode(key dna.Kmer, readBytes, writeBytes int) {
	b.pendUpd = append(b.pendUpd, pendingUpd{key, readBytes, writeBytes})
}

// EndIteration implements compact.Observer.
func (b *Builder) EndIteration(st compact.IterStats) {
	for _, p := range b.pendTN {
		si, sok := b.idxOf[p.src]
		di, dok := b.idxOf[p.dst]
		if !sok || !dok {
			continue // target outside this batch's graph; dropped by compact too
		}
		b.cur.Transfers = append(b.cur.Transfers, TransferOp{
			SrcIdx: si, DstIdx: di, TNBytes: int32(p.tnBytes), SuffixSide: p.suffixSide,
		})
	}
	for _, p := range b.pendUpd {
		di, ok := b.idxOf[p.dst]
		if !ok {
			continue
		}
		b.cur.Updates = append(b.cur.Updates, UpdateOp{
			DstIdx: di, ReadBytes: int32(p.read), WriteBytes: int32(p.write),
		})
	}
	b.cur.Stats = st
	b.cur.Quantiles = BuildQuantiles(b.cur.Nodes)
	if len(b.trace.Iterations) == 0 {
		b.trace.Quantiles = b.cur.Quantiles
	}
	b.trace.Iterations = append(b.trace.Iterations, *b.cur)
	b.cur = nil
}

// BuildQuantiles derives a DIMM mapping table from an iteration's key
// population (nodes arrive in ascending key order). It is exported for
// internal/scaleout, which rebuilds per-node tables after sharding a trace.
func BuildQuantiles(nodes []NodeOp) []dna.Kmer {
	const buckets = 256
	n := len(nodes)
	if n == 0 {
		return nil
	}
	q := make([]dna.Kmer, buckets+1)
	for i := 0; i <= buckets; i++ {
		idx := i * (n - 1) / buckets
		q[i] = nodes[idx].Key
	}
	return q
}

// Trace returns the accumulated trace. The Builder must not be reused
// afterwards.
func (b *Builder) Trace() *Trace { return &b.trace }
