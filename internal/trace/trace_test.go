package trace

import (
	"bytes"
	"testing"

	"nmppak/internal/compact"
	"nmppak/internal/dna"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
)

func record(t testing.TB, length int, seed int64) *Trace {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: length, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 10, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmer.Count(reads, kmer.Config{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(32)
	if _, err := compact.Run(pg, compact.Options{Observer: b, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	return b.Trace()
}

func TestBuilderCapturesIterations(t *testing.T) {
	tr := record(t, 4000, 1)
	if len(tr.Iterations) < 3 {
		t.Fatalf("iterations = %d", len(tr.Iterations))
	}
	// Node counts must be non-increasing.
	for i := 1; i < len(tr.Iterations); i++ {
		if len(tr.Iterations[i].Nodes) > len(tr.Iterations[i-1].Nodes) {
			t.Fatal("node count increased across iterations")
		}
	}
	// Every transfer's src must be invalidated and dst must not be.
	for it, iter := range tr.Iterations {
		for _, tn := range iter.Transfers {
			if !iter.Nodes[tn.SrcIdx].Invalidated {
				t.Fatalf("iter %d: transfer src not invalidated", it)
			}
			if iter.Nodes[tn.DstIdx].Invalidated {
				t.Fatalf("iter %d: transfer dst invalidated", it)
			}
		}
		for _, up := range iter.Updates {
			if iter.Nodes[up.DstIdx].Invalidated {
				t.Fatalf("iter %d: update dst invalidated", it)
			}
			if up.WriteBytes <= 0 || up.ReadBytes <= 0 {
				t.Fatalf("iter %d: empty update", it)
			}
		}
	}
}

func TestTraceStatsMatchNodes(t *testing.T) {
	tr := record(t, 3000, 2)
	for _, iter := range tr.Iterations {
		inval := 0
		for _, n := range iter.Nodes {
			if n.Invalidated {
				inval++
			}
			if n.D1 <= 0 {
				t.Fatal("node without data1 size")
			}
		}
		if inval != iter.Stats.Invalidated {
			t.Fatalf("invalidated mismatch: %d vs %d", inval, iter.Stats.Invalidated)
		}
		if len(iter.Nodes) != iter.Stats.LiveNodes {
			t.Fatalf("live mismatch: %d vs %d", len(iter.Nodes), iter.Stats.LiveNodes)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := record(t, 2000, 3)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != tr.K || len(got.Iterations) != len(tr.Iterations) {
		t.Fatal("round trip mismatch")
	}
	if got.TotalNodeOps() != tr.TotalNodeOps() || got.TotalTransfers() != tr.TotalTransfers() {
		t.Fatal("totals mismatch")
	}
}

func TestDIMMMappingBalancedAndOrdered(t *testing.T) {
	tr := record(t, 4000, 4)
	const nd = 8
	counts := make([]int, nd)
	prev := -1
	for _, n := range tr.Iterations[0].Nodes { // ascending key order
		d := tr.DIMMOf(n.Key, nd)
		if d < prev {
			t.Fatal("DIMM mapping not monotonic in key order")
		}
		prev = d
		counts[d]++
	}
	total := len(tr.Iterations[0].Nodes)
	for d, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.08 || frac > 0.18 {
			t.Fatalf("DIMM %d holds %.1f%% of nodes (want ~12.5%%)", d, frac*100)
		}
	}
}

func TestDIMMOfEdgeCases(t *testing.T) {
	tr := &Trace{}
	if tr.DIMMOf(dna.Kmer(123), 8) != 0 {
		t.Fatal("empty quantiles must map to 0")
	}
	tr2 := record(t, 1000, 5)
	if tr2.DIMMOf(dna.Kmer(0), 1) != 0 {
		t.Fatal("single DIMM must map to 0")
	}
	max := tr2.DIMMOf(dna.Kmer(^uint64(0)), 8)
	if max != 7 {
		t.Fatalf("max key maps to %d want 7", max)
	}
}
