// Package walk generates contigs from a (typically compacted) PaK-graph —
// Stage E of the PaKman pipeline (Fig. 2E). The paper measures this stage
// at ~1% of runtime once Iterative Compaction has shrunk the graph.
//
// A contig is spelled by starting at a wire whose prefix side is terminal
// (a read/contig beginning), emitting prefix + key + suffix, and repeatedly
// hopping to the successor node through the suffix extension: arriving at
// node w via suffix s of node v, the traversal entered through w's prefix
// extension (v+s)[:|s|] and continues through an unused wire of that
// prefix, appending its suffix extension — until a terminal suffix or a
// dead end. Each wire is traversed at most once; remaining unused wires
// (cycles) are walked from an arbitrary start.
package walk

import (
	"sort"

	"nmppak/internal/dna"
	"nmppak/internal/pakgraph"
)

// Options controls contig generation.
type Options struct {
	// MinLen drops contigs shorter than this many bases (0 keeps all).
	MinLen int
}

// Contigs walks g and returns the spelled contigs, longest first.
// Completed contigs finished during compaction should be appended by the
// caller (assemble does this).
func Contigs(g *pakgraph.Graph, opt Options) []dna.Seq {
	k1 := g.K1()
	used := make(map[dna.Kmer][]bool, g.Len())
	for key, n := range g.Nodes {
		used[key] = make([]bool, len(n.Wires))
	}
	var out []dna.Seq

	keys := g.SortedKeys()
	// Pass 1: walks beginning at terminal prefixes.
	for _, key := range keys {
		n := g.Nodes[key]
		for wi, w := range n.Wires {
			if used[key][wi] || !n.Prefixes[w.P].Terminal {
				continue
			}
			out = append(out, traverse(g, used, key, wi, k1))
		}
	}
	// Pass 2: leftover wires (cycles or dead-start fragments).
	for _, key := range keys {
		n := g.Nodes[key]
		for wi := range n.Wires {
			if !used[key][wi] {
				out = append(out, traverse(g, used, key, wi, k1))
			}
		}
	}

	if opt.MinLen > 0 {
		kept := out[:0]
		for _, c := range out {
			if c.Len() >= opt.MinLen {
				kept = append(kept, c)
			}
		}
		out = kept
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() > out[j].Len()
		}
		return out[i].Cmp(out[j]) < 0
	})
	return out
}

// traverse spells one contig starting at wire wi of node key, consuming
// wires as it goes.
func traverse(g *pakgraph.Graph, used map[dna.Kmer][]bool, key dna.Kmer, wi int, k1 int) dna.Seq {
	n := g.Nodes[key]
	w := n.Wires[wi]
	used[key][wi] = true
	contig := n.Prefixes[w.P].Seq.Concat(key.Seq(k1))
	for {
		s := n.Suffixes[w.S]
		contig = contig.Concat(s.Seq)
		if s.Terminal {
			return contig
		}
		nextKey := dna.NeighborViaSuffix(n.Key, k1, s.Seq)
		next := g.Nodes[nextKey]
		if next == nil {
			return contig // dangling edge (possible only on merged noisy graphs)
		}
		// The traversal entered next through prefix extension
		// (key+s)[:|s|].
		arr := n.Key.Seq(k1).Concat(s.Seq).Slice(0, s.Seq.Len())
		pj := -1
		for i, e := range next.Prefixes {
			if !e.Terminal && e.Seq.Equal(arr) {
				pj = i
				break
			}
		}
		if pj < 0 {
			return contig
		}
		// Choose the highest-count unused wire departing from that prefix.
		best, bestCount := -1, uint32(0)
		for i, nw := range next.Wires {
			if int(nw.P) == pj && !used[nextKey][i] && nw.Count > bestCount {
				best, bestCount = i, nw.Count
			}
		}
		if best < 0 {
			return contig
		}
		used[nextKey][best] = true
		key, n, w = nextKey, next, next.Wires[best]
	}
}
