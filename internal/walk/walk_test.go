package walk

import (
	"math/rand"
	"strings"
	"testing"

	"nmppak/internal/compact"
	"nmppak/internal/dna"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
)

func buildGraph(t testing.TB, k int, minCount uint32, reads []readsim.Read) *pakgraph.Graph {
	t.Helper()
	res, err := kmer.Count(reads, kmer.Config{K: k, MinCount: minCount})
	if err != nil {
		t.Fatal(err)
	}
	g, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func readsFromStrings(seqs ...string) []readsim.Read {
	var out []readsim.Read
	for _, s := range seqs {
		out = append(out, readsim.Read{Seq: dna.MustParseSeq(s)})
	}
	return out
}

func randDNA(r *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(dna.Alphabet[r.Intn(4)])
	}
	return sb.String()
}

func TestSingleReadYieldsItself(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		s := randDNA(r, 50+r.Intn(300))
		g := buildGraph(t, 8, 0, readsFromStrings(s))
		contigs := Contigs(g, Options{})
		if len(contigs) != 1 {
			// Repeated 7-mers can legitimately fragment; only insist when
			// the graph is a simple path.
			if g.Len() == len(s)-8+2 {
				t.Fatalf("path graph produced %d contigs", len(contigs))
			}
			continue
		}
		if contigs[0].String() != s {
			t.Fatalf("contig %q want %q", contigs[0], s)
		}
	}
}

func TestWalkAfterCompaction(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		s := randDNA(r, 400)
		g := buildGraph(t, 9, 0, readsFromStrings(s))
		if g.Len() != len(s)-9+2 {
			continue // non-path draw
		}
		res, err := compact.Run(g, compact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		contigs := append(Contigs(g, Options{}), res.Completed...)
		if len(contigs) != 1 || contigs[0].String() != s {
			t.Fatalf("after compaction got %d contigs, first %v", len(contigs), contigs[0].Len())
		}
	}
}

func TestTwoDisjointReads(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	// k=12 makes a shared 11-mer between two random 120-mers vanishingly
	// unlikely, so the two reads stay disconnected in the graph.
	a, b := randDNA(r, 120), randDNA(r, 120)
	g := buildGraph(t, 12, 0, readsFromStrings(a, b))
	contigs := Contigs(g, Options{})
	found := map[string]bool{}
	for _, c := range contigs {
		found[c.String()] = true
	}
	if !found[a] || !found[b] {
		t.Fatalf("missing expected contigs; got %d contigs", len(contigs))
	}
}

// TestContigsAreGenomeSubstrings is the no-misassembly property: with
// error-free reads from a repeat-free genome, every walked contig must be
// an exact substring of the genome.
func TestContigsAreGenomeSubstrings(t *testing.T) {
	gen, err := genome.Generate(genome.Config{Length: 8000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(gen, readsim.Config{ReadLen: 100, Coverage: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref := gen.Replicons[0].String()
	for _, doCompact := range []bool{false, true} {
		g := buildGraph(t, 32, 0, reads)
		var completed []dna.Seq
		if doCompact {
			res, err := compact.Run(g, compact.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			completed = res.Completed
		}
		contigs := append(Contigs(g, Options{}), completed...)
		for _, c := range contigs {
			if !strings.Contains(ref, c.String()) {
				t.Fatalf("compact=%v: contig of length %d is not a genome substring", doCompact, c.Len())
			}
		}
		// Coverage: every 31-mer present in the reads must appear in some
		// contig (the genome's extreme ends may legitimately be unread).
		covered := make(map[string]bool)
		for _, c := range contigs {
			s := c.String()
			for i := 0; i+31 <= len(s); i++ {
				covered[s[i:i+31]] = true
			}
		}
		for ri, rd := range reads {
			s := rd.Seq.String()
			for i := 0; i+31 <= len(s); i++ {
				if !covered[s[i:i+31]] {
					t.Fatalf("compact=%v: read %d 31-mer at %d not covered", doCompact, ri, i)
				}
			}
		}
		// With structural wiring and no errors, the dominant contig should
		// span nearly the whole genome.
		if contigs[0].Len() < len(ref)*8/10 {
			t.Fatalf("compact=%v: longest contig %d < 80%% of genome %d", doCompact, contigs[0].Len(), len(ref))
		}
	}
}

func TestMinLenFilter(t *testing.T) {
	g := buildGraph(t, 6, 0, readsFromStrings(strings.Repeat("ACGT", 30), "ACGTTTA"))
	all := Contigs(g, Options{})
	long := Contigs(g, Options{MinLen: 50})
	if len(long) >= len(all) {
		t.Fatalf("filter did not drop short contigs: %d vs %d", len(long), len(all))
	}
	for _, c := range long {
		if c.Len() < 50 {
			t.Fatal("short contig leaked through filter")
		}
	}
}

func TestContigsSortedLongestFirst(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := buildGraph(t, 7, 0, readsFromStrings(randDNA(r, 500), randDNA(r, 100), randDNA(r, 50)))
	contigs := Contigs(g, Options{})
	for i := 1; i < len(contigs); i++ {
		if contigs[i-1].Len() < contigs[i].Len() {
			t.Fatal("not sorted by length desc")
		}
	}
}

func TestWalkDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	seqs := []string{randDNA(r, 600), randDNA(r, 600)}
	g1 := buildGraph(t, 8, 0, readsFromStrings(seqs...))
	g2 := buildGraph(t, 8, 0, readsFromStrings(seqs...))
	c1 := Contigs(g1, Options{})
	c2 := Contigs(g2, Options{})
	if len(c1) != len(c2) {
		t.Fatalf("contig counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if !c1[i].Equal(c2[i]) {
			t.Fatalf("contig %d differs between identical runs", i)
		}
	}
}
