// Package genome synthesizes reference genomes for assembly experiments.
//
// The paper evaluates on the full human genome; this repository substitutes
// synthetic genomes whose assembly-relevant properties are tunable: length,
// GC content, repeat families (the feature that fragments de Bruijn graph
// assemblies and produces branching MacroNodes), and multiple replicons
// (chromosomes / metagenome members).
package genome

import (
	"fmt"
	"math/rand"

	"nmppak/internal/dna"
)

// Config controls synthesis.
type Config struct {
	Length int // total bases per replicon
	// GC in [0,1] is the probability of drawing G or C (default 0.5).
	GC float64
	// RepeatFraction in [0,1) is the fraction of the genome covered by
	// copies of repeat elements (default 0: repeat-free, which assembles
	// into a single contig from error-free reads).
	RepeatFraction float64
	// RepeatUnit is the repeat element length (default 500).
	RepeatUnit int
	// Replicons is the number of independent sequences (default 1).
	Replicons int
	// Seed drives the deterministic PRNG.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.GC == 0 {
		c.GC = 0.5
	}
	if c.RepeatUnit == 0 {
		c.RepeatUnit = 500
	}
	if c.Replicons == 0 {
		c.Replicons = 1
	}
}

// Genome is a set of synthesized replicons.
type Genome struct {
	Replicons []dna.Seq
	Names     []string
}

// TotalLength returns the summed replicon length.
func (g *Genome) TotalLength() int {
	n := 0
	for _, r := range g.Replicons {
		n += r.Len()
	}
	return n
}

// Generate synthesizes a genome deterministically from cfg.
func Generate(cfg Config) (*Genome, error) {
	cfg.setDefaults()
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("genome: Length must be positive, got %d", cfg.Length)
	}
	if cfg.GC < 0 || cfg.GC > 1 {
		return nil, fmt.Errorf("genome: GC %v out of [0,1]", cfg.GC)
	}
	if cfg.RepeatFraction < 0 || cfg.RepeatFraction >= 1 {
		return nil, fmt.Errorf("genome: RepeatFraction %v out of [0,1)", cfg.RepeatFraction)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &Genome{}
	for rep := 0; rep < cfg.Replicons; rep++ {
		g.Replicons = append(g.Replicons, synthesize(r, cfg))
		g.Names = append(g.Names, fmt.Sprintf("synthetic_%d_len%d", rep, cfg.Length))
	}
	return g, nil
}

// drawBase samples one base honoring the GC bias.
func drawBase(r *rand.Rand, gc float64) dna.Base {
	if r.Float64() < gc {
		if r.Intn(2) == 0 {
			return dna.G
		}
		return dna.C
	}
	if r.Intn(2) == 0 {
		return dna.A
	}
	return dna.T
}

func synthesize(r *rand.Rand, cfg Config) dna.Seq {
	bases := make([]dna.Base, 0, cfg.Length)
	// Pre-draw a small library of repeat units.
	var units [][]dna.Base
	if cfg.RepeatFraction > 0 {
		nUnits := 4
		for u := 0; u < nUnits; u++ {
			unit := make([]dna.Base, cfg.RepeatUnit)
			for i := range unit {
				unit[i] = drawBase(r, cfg.GC)
			}
			units = append(units, unit)
		}
	}
	for len(bases) < cfg.Length {
		if len(units) > 0 && r.Float64() < cfg.RepeatFraction {
			unit := units[r.Intn(len(units))]
			n := len(unit)
			if rem := cfg.Length - len(bases); n > rem {
				n = rem
			}
			bases = append(bases, unit[:n]...)
			continue
		}
		// Unique stretch: geometric run between repeat insertions.
		run := cfg.RepeatUnit
		if rem := cfg.Length - len(bases); run > rem {
			run = rem
		}
		for i := 0; i < run; i++ {
			bases = append(bases, drawBase(r, cfg.GC))
		}
	}
	return dna.FromBases(bases)
}

// GC computes the observed G+C fraction of a sequence.
func GC(q dna.Seq) float64 {
	if q.Len() == 0 {
		return 0
	}
	gc := 0
	for i := 0; i < q.Len(); i++ {
		if b := q.At(i); b == dna.G || b == dna.C {
			gc++
		}
	}
	return float64(gc) / float64(q.Len())
}
