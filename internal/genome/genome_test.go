package genome

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Length: 5000, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(cfg)
	if !a.Replicons[0].Equal(b.Replicons[0]) {
		t.Fatal("same seed must give same genome")
	}
	c, _ := Generate(Config{Length: 5000, Seed: 43})
	if a.Replicons[0].Equal(c.Replicons[0]) {
		t.Fatal("different seeds gave identical genomes")
	}
}

func TestGenerateLengthAndReplicons(t *testing.T) {
	g, err := Generate(Config{Length: 1234, Replicons: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Replicons) != 3 {
		t.Fatalf("replicons = %d", len(g.Replicons))
	}
	for i, r := range g.Replicons {
		if r.Len() != 1234 {
			t.Fatalf("replicon %d length %d", i, r.Len())
		}
	}
	if g.TotalLength() != 3*1234 {
		t.Fatalf("TotalLength = %d", g.TotalLength())
	}
}

func TestGCBias(t *testing.T) {
	for _, want := range []float64{0.3, 0.5, 0.7} {
		g, err := Generate(Config{Length: 200000, GC: want, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		got := GC(g.Replicons[0])
		if math.Abs(got-want) > 0.01 {
			t.Errorf("GC bias %v: observed %v", want, got)
		}
	}
}

func TestRepeatsCreateDuplicateContent(t *testing.T) {
	g, err := Generate(Config{Length: 100000, RepeatFraction: 0.4, RepeatUnit: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// With 40% repeat content from 4 units, distinct 31-mers must be far
	// fewer than in a repeat-free genome of the same length.
	distinct := func(gn int64) int {
		gg, _ := Generate(Config{Length: 100000, RepeatFraction: map[int64]float64{0: 0, 1: 0.4}[gn], RepeatUnit: 300, Seed: 9})
		seen := make(map[string]struct{})
		s := gg.Replicons[0].String()
		for i := 0; i+31 <= len(s); i += 7 {
			seen[s[i:i+31]] = struct{}{}
		}
		return len(seen)
	}
	free, rep := distinct(0), distinct(1)
	if rep >= free {
		t.Fatalf("repeat genome has %d distinct 31-mers, repeat-free %d", rep, free)
	}
	_ = g
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Length: 0}); err == nil {
		t.Fatal("expected error for zero length")
	}
	if _, err := Generate(Config{Length: 10, GC: 1.5}); err == nil {
		t.Fatal("expected error for GC out of range")
	}
	if _, err := Generate(Config{Length: 10, RepeatFraction: 1.0}); err == nil {
		t.Fatal("expected error for RepeatFraction = 1")
	}
}
