package experiments

import (
	"strings"
	"testing"
)

// tenancyCtx is a dedicated extra-small workload: the sweep runs the
// whole fleet simulation at five load levels per mix, so the per-job
// service time has to stay tiny.
var tenancyCtxCache *Context

func tenancyCtx(t *testing.T) *Context {
	t.Helper()
	if tenancyCtxCache == nil {
		w := QuickWorkload()
		w.GenomeLen = 20_000
		w.Coverage = 15
		c, err := NewContext(w)
		if err != nil {
			t.Fatal(err)
		}
		tenancyCtxCache = c
	}
	return tenancyCtxCache
}

func TestTenancyReport(t *testing.T) {
	r, err := Tenancy(tenancyCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Load sweep, uniform mix", "Load sweep, skewed mix",
		"Policy comparison", "per-tenant outcome", "saturation knee"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("report missing %q:\n%s", want, r.Text)
		}
	}
	// Acceptance: preemption round-trips stay exact under every policy.
	if r.Measured["bit_identical_resume"] != 1 {
		t.Fatalf("preempted tenants not bit-identical to uninterrupted runs:\n%s", r.Text)
	}
	// The skewed mix must saturate inside the swept range, and latency
	// must degrade across the knee.
	knee := r.Measured["knee_load_skewed"]
	if knee == 0 {
		t.Fatalf("no saturation knee on the skewed mix:\n%s", r.Text)
	}
	lo := r.Measured["p95_ms_skewed_load0.25"]
	hi := r.Measured["p95_ms_skewed_load4"]
	if !(0 < lo && lo < hi) {
		t.Fatalf("p95 latency did not grow with load: %.3f -> %.3f", lo, hi)
	}
	// Priority must protect the narrow high-priority jobs relative to
	// FIFO's head-of-line blocking, and must actually preempt.
	if r.Measured["preemptions_priority"] == 0 {
		t.Fatalf("priority policy never preempted:\n%s", r.Text)
	}
	if r.Measured["narrow_p95_ms_priority"] > r.Measured["narrow_p95_ms_fifo"] {
		t.Fatalf("priority narrow-job p95 %.3f worse than FIFO %.3f",
			r.Measured["narrow_p95_ms_priority"], r.Measured["narrow_p95_ms_fifo"])
	}
	// Utilization stays a fraction at light load.
	if u := r.Measured["util_uniform_load0.25"]; u <= 0 || u > 1 {
		t.Fatalf("light-load utilization %v out of range", u)
	}
}
