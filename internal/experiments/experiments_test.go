package experiments

import (
	"strings"
	"testing"
)

// quickCtx builds a shared small-workload context for driver tests.
var quickCtx *Context

func ctx(t testing.TB) *Context {
	t.Helper()
	if quickCtx == nil {
		c, err := NewContext(QuickWorkload())
		if err != nil {
			t.Fatal(err)
		}
		quickCtx = c
	}
	return quickCtx
}

var quickRuns *SystemRuns

func runs(t testing.TB) *SystemRuns {
	t.Helper()
	if quickRuns == nil {
		r, err := RunSystems(ctx(t))
		if err != nil {
			t.Fatal(err)
		}
		quickRuns = r
	}
	return quickRuns
}

func TestFig5CompactionDominates(t *testing.T) {
	r, err := Fig5(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	// The headline of Fig. 5: Iterative Compaction is the dominant stage
	// and the graph walk is negligible.
	if r.Measured["frac_compaction"] < 0.25 {
		t.Fatalf("compaction fraction %.2f too low: %s", r.Measured["frac_compaction"], r.Text)
	}
	if r.Measured["frac_walk"] > 0.15 {
		t.Fatalf("walk fraction %.2f too high", r.Measured["frac_walk"])
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["frac_dram"] < 0.35 {
		t.Fatalf("dram stall %.2f too low", r.Measured["frac_dram"])
	}
	if r.Measured["frac_futex"] <= 0 {
		t.Fatal("no futex stall")
	}
}

func TestFig7Tail(t *testing.T) {
	r, err := Fig7(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Long tail: most nodes stay small; oversized nodes are a tiny
	// minority even at completion.
	if f := r.Measured["final_frac_gt_1024B"]; f > 0.25 {
		t.Fatalf(">1KB fraction %.3f too high", f)
	}
	if f := r.Measured["final_frac_gt_8192B"]; f > 0.02 {
		t.Fatalf(">8KB fraction %.4f too high", f)
	}
}

func TestFig8Bounded(t *testing.T) {
	r, err := Fig8(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["max_frac_gt_1KB"] > 0.3 || r.Measured["max_frac_gt_8KB"] > 0.05 {
		t.Fatalf("oversized proportions too high: %+v", r.Measured)
	}
}

func TestTable1Trend(t *testing.T) {
	r, err := Table1(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	small := r.Measured["n50_batch_0.5%"]
	large := r.Measured["n50_batch_10%"]
	if large <= small {
		t.Fatalf("N50 must improve with batch size: 0.5%%=%v 10%%=%v", small, large)
	}
}

func TestFig12Ordering(t *testing.T) {
	r, err := Fig12(ctx(t), runs(t))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Measured
	if !(m["wo_swopt"] < 1 && 1 < m["cpu_pak"] && m["cpu_pak"] < m["nmp_pak"]) {
		t.Fatalf("Fig12 ordering broken: %+v", m)
	}
	if m["nmp_pak"] < 5 {
		t.Fatalf("NMP speedup %.1f too small (paper 16x)", m["nmp_pak"])
	}
	// Ideal PE must be near real NMP-PaK (PEs not the bottleneck): no
	// large gain, and no more than contention noise of a loss.
	if r := m["ideal_pe"] / m["nmp_pak"]; r > 1.35 || r < 0.6 {
		t.Fatalf("ideal PE ratio %.2f out of range: %+v", r, m)
	}
	if m["ideal_fwd"] < m["nmp_pak"]*0.95 {
		t.Fatalf("ideal forwarding clearly slower than NMP-PaK: %+v", m)
	}
}

func TestFig13Ordering(t *testing.T) {
	r, err := Fig13(ctx(t), runs(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["nmp_pak"] <= r.Measured["cpu_baseline"]*1.5 {
		t.Fatalf("NMP utilization must clearly beat the CPU baseline: %+v", r.Measured)
	}
}

func TestFig14Ratios(t *testing.T) {
	r, err := Fig14(ctx(t), runs(t))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Measured
	if m["nmp_reads"] >= 0.8 || m["nmp_reads"] <= 0.2 {
		t.Fatalf("NMP read ratio %.2f outside plausible range (paper 0.5)", m["nmp_reads"])
	}
	if m["nmp_writes"] >= m["cpu_baseline_writes"] {
		t.Fatal("NMP writes must be below baseline writes")
	}
	if m["ideal_fwd_reads"] >= m["nmp_reads"] {
		t.Fatal("ideal forwarding must reduce reads")
	}
}

func TestFig15Saturates(t *testing.T) {
	r, err := Fig15(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Measured
	if !(m["perf_1pe"] < m["perf_4pe"] && m["perf_4pe"] < m["perf_16pe"]) {
		t.Fatalf("performance must grow with PEs: %+v", m)
	}
	// Saturation: 64 PEs gain little over 32.
	if m["perf_64pe"] > m["perf_32pe"]*1.25 {
		t.Fatalf("no saturation at 32 PEs: %+v", m)
	}
}

func TestCommSplit(t *testing.T) {
	r, err := Comm(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["inter_dimm"] < 0.7 {
		t.Fatalf("inter-DIMM %.2f, expected ~0.875", r.Measured["inter_dimm"])
	}
}

func TestSuperArithmetic(t *testing.T) {
	r, err := Super(ctx(t), runs(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["throughput_gain"] <= 0 {
		t.Fatalf("degenerate throughput gain: %+v", r.Measured)
	}
}

func TestTable3(t *testing.T) {
	r, err := Table3(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["pe_area_mm2"] < 0.1 || r.Measured["pe_area_mm2"] > 0.12 {
		t.Fatalf("PE area %v", r.Measured["pe_area_mm2"])
	}
}

func TestHybridReport(t *testing.T) {
	r, err := HybridReport(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["cpu_node_frac_1KB"] > 0.2 {
		t.Fatalf("too many nodes above 1KB: %+v", r.Measured)
	}
}

func TestFootprintAndGPUCap(t *testing.T) {
	fp, err := Footprint(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if fp.Measured["overall_ratio"] < 4 {
		t.Fatalf("overall footprint reduction %.1f too small", fp.Measured["overall_ratio"])
	}
	gc, err := GPUCap(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if gc.Measured["max_batch_80GB"] >= 0.5 {
		t.Fatalf("GPU capacity analysis degenerate: %+v", gc.Measured)
	}
}

func TestSWOpt(t *testing.T) {
	r, err := SWOpt(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["kmer_count_speedup"] <= 1 {
		t.Logf("note: optimized counting not faster on this machine (%.2fx)", r.Measured["kmer_count_speedup"])
	}
}

func TestReportString(t *testing.T) {
	r, err := Table3(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "paper") || !strings.Contains(s, "table3") {
		t.Fatalf("report rendering: %q", s)
	}
}
