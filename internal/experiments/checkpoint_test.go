package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"nmppak/internal/trace"
)

// CheckpointSave used to compute the pause boundary as iters/2 with no
// clamp: a single-iteration trace rounded down to boundary 0 (a blob that
// replays the whole run on restore) and an empty trace slid through to
// the simulator. The boundary must land in [1, iters] and an empty trace
// must fail cleanly before anything touches the filesystem.
func TestCheckpointSaveClampsBoundary(t *testing.T) {
	c := tenancyCtx(t)
	tr, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	short := &Context{W: c.W, Genome: c.Genome, Reads: c.Reads}
	short.tr = &trace.Trace{K: tr.K, Iterations: tr.Iterations[:1], Quantiles: tr.Quantiles}
	rep, err := CheckpointSave(short, filepath.Join(dir, "ck.blob"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Measured["checkpoint_iter"]; got != 1 {
		t.Fatalf("single-iteration trace checkpointed at boundary %v, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "ck.blob")); err != nil {
		t.Fatalf("blob not written: %v", err)
	}

	empty := &Context{W: c.W, Genome: c.Genome, Reads: c.Reads}
	empty.tr = &trace.Trace{K: tr.K, Quantiles: tr.Quantiles}
	if _, err := CheckpointSave(empty, filepath.Join(dir, "no.blob")); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := os.Stat(filepath.Join(dir, "no.blob")); !os.IsNotExist(err) {
		t.Fatal("failed save left a file behind")
	}
}
