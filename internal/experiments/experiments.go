// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6), plus the motivational measurements of §3. Each
// driver returns a rendered text report and a map of named measured values
// that EXPERIMENTS.md records against the paper's numbers.
//
// All drivers share a Context: a scaled-down workload (synthetic genome +
// simulated short reads; see DESIGN.md §1 for the substitution argument)
// whose compaction trace is captured once and replayed by the hardware
// models.
package experiments

import (
	"fmt"
	"time"

	"nmppak/internal/assemble"
	"nmppak/internal/compact"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
	"nmppak/internal/trace"
)

// Workload defines the shared experiment input.
type Workload struct {
	GenomeLen int
	Coverage  float64
	ErrorRate float64
	ReadLen   int
	K         int
	MinCount  uint32
	Seed      int64
	Workers   int
	// RepeatFraction / RepeatUnit skew the synthetic genome with repeat
	// families (0 = repeat-free); the scaling study's partitioner sweep
	// uses them to build the repeat-heavy workload load balancing is
	// judged on.
	RepeatFraction float64
	RepeatUnit     int
}

// DefaultWorkload is the standard experiment scale: large enough for the
// size distributions and compaction dynamics to show the paper's shapes,
// small enough that the full suite runs in minutes.
func DefaultWorkload() Workload {
	return Workload{
		GenomeLen: 500_000,
		Coverage:  30,
		ErrorRate: 0.01,
		ReadLen:   100,
		K:         32,
		MinCount:  3,
		Seed:      42,
		Workers:   0,
	}
}

// QuickWorkload is a smaller configuration for tests and benchmarks.
func QuickWorkload() Workload {
	w := DefaultWorkload()
	w.GenomeLen = 60_000
	w.Coverage = 20
	return w
}

// Context caches the derived artifacts of a workload.
type Context struct {
	W      Workload
	Genome *genome.Genome
	Reads  []readsim.Read

	kres      *kmer.Result
	tr        *trace.Trace
	deepTr    *trace.Trace
	traceTime time.Duration
}

// NewContext generates the genome and reads.
func NewContext(w Workload) (*Context, error) {
	g, err := genome.Generate(genome.Config{
		Length: w.GenomeLen, Seed: w.Seed,
		RepeatFraction: w.RepeatFraction, RepeatUnit: w.RepeatUnit,
	})
	if err != nil {
		return nil, err
	}
	reads, err := readsim.Simulate(g, readsim.Config{
		ReadLen: w.ReadLen, Coverage: w.Coverage, ErrorRate: w.ErrorRate, Seed: w.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Context{W: w, Genome: g, Reads: reads}, nil
}

// Kmers returns the workload's counting result (computed once and
// cached; the trace capture and the weight-aware partitioners share it).
func (c *Context) Kmers() (*kmer.Result, error) {
	if c.kres != nil {
		return c.kres, nil
	}
	res, err := kmer.Count(c.Reads, kmer.Config{K: c.W.K, Workers: c.W.Workers, MinCount: c.W.MinCount})
	if err != nil {
		return nil, err
	}
	c.kres = res
	return res, nil
}

// Trace returns the compaction trace of the workload (single batch,
// captured once and cached).
func (c *Context) Trace() (*trace.Trace, error) {
	if c.tr != nil {
		return c.tr, nil
	}
	res, err := c.Kmers()
	if err != nil {
		return nil, err
	}
	g, err := pakgraph.Build(res)
	if err != nil {
		return nil, err
	}
	// Like the paper, compaction for the performance studies stops at a
	// node-count threshold ("iterate until # MN < threshold") rather than
	// running to fixed point: the last iterations consist of a handful of
	// giant fully-compacted nodes whose processing the threshold (and the
	// graph walk) is designed to avoid.
	threshold := g.Len() / 100
	if threshold < 1 {
		threshold = 1
	}
	b := trace.NewBuilder(c.W.K)
	t0 := time.Now()
	if _, err := compact.Run(g, compact.Options{Workers: c.W.Workers, Observer: b, Threshold: threshold}); err != nil {
		return nil, err
	}
	c.traceTime = time.Since(t0)
	c.tr = b.Trace()
	return c.tr, nil
}

// DeepTrace returns a compaction trace taken to its fixed point (no
// threshold) — the configuration the paper uses for the Fig. 7/8 size
// studies ("iteration 219 (completion)"), where the surviving MacroNodes
// accumulate multi-kilobyte extensions.
func (c *Context) DeepTrace() (*trace.Trace, error) {
	if c.deepTr != nil {
		return c.deepTr, nil
	}
	res, err := kmer.Count(c.Reads, kmer.Config{K: c.W.K, Workers: c.W.Workers, MinCount: c.W.MinCount})
	if err != nil {
		return nil, err
	}
	g, err := pakgraph.Build(res)
	if err != nil {
		return nil, err
	}
	b := trace.NewBuilder(c.W.K)
	if _, err := compact.Run(g, compact.Options{Workers: c.W.Workers, Observer: b}); err != nil {
		return nil, err
	}
	c.deepTr = b.Trace()
	return c.deepTr, nil
}

// Assemble runs the full pipeline on the workload with the given batch
// count and flow.
func (c *Context) Assemble(batches int, flow compact.Flow) (*assemble.Output, error) {
	return assemble.Run(c.Reads, assemble.Config{
		K: c.W.K, Workers: c.W.Workers, MinCount: c.W.MinCount,
		Batches: batches, Flow: flow,
	})
}

// Report is the uniform driver result.
type Report struct {
	ID       string // e.g. "fig12"
	Title    string
	Text     string
	Measured map[string]float64
	Paper    map[string]float64 // the paper's reported values for comparison
}

// String renders the report with a paper-vs-measured footer.
func (r *Report) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Text)
	if len(r.Paper) > 0 {
		s += "\npaper-vs-measured:\n"
		for _, k := range sortedKeys(r.Paper) {
			m, ok := r.Measured[k]
			if !ok {
				continue
			}
			s += fmt.Sprintf("  %-28s paper %10.4g   measured %10.4g\n", k, r.Paper[k], m)
		}
	}
	return s
}

// pakgraphBuild is a short alias keeping driver code readable.
func pakgraphBuild(res *kmer.Result) (*pakgraph.Graph, error) { return pakgraph.Build(res) }

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
