package experiments

import "testing"

func TestAblation(t *testing.T) {
	r, err := Ablation(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	// The per-iteration mapping refresh must clearly beat the static
	// table (the compaction-skew pathology).
	if r.Measured["static_mapping_slowdown"] < 1.2 {
		t.Fatalf("static mapping not slower: %+v", r.Measured)
	}
	// The other ablations must not show impossible speedups.
	for k, v := range r.Measured {
		if v < 0.95 {
			t.Fatalf("%s = %.2f: removing a feature should not speed the system up", k, v)
		}
	}
}
