// Fault-injection driver: the cmd/experiments -faults flag, plus the
// -timeline -inject variant. The sweep kills one node of a 4-node routed
// torus mid-compaction and replays the run under increasing periodic
// checkpoint cadences, measuring the recovery-overhead trade the elastic
// runtime embodies: sparse checkpoints pay little capture stall but
// discard (and re-execute) many iterations of survivor work on a loss;
// dense checkpoints invert the balance. Every recovered run is verified
// to commit exactly the fault-free run's global MacroNode work — the same
// conservation property internal/conformance pins across its fault
// matrix — so the overhead numbers reported here are for runs whose
// output provably survived the failure.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"nmppak/internal/fault"
	"nmppak/internal/scaleout"
	"nmppak/internal/topo"
)

// faultDetectCycles is the failure-detection latency (heartbeat timeout +
// membership agreement) charged by every fault driver, chosen well above
// a sync barrier so detection is visible in the accounting.
const faultDetectCycles = 2000

// faultsConfig is the fixed -faults sweep configuration: a 4-node routed
// torus under BSP, hash-partitioned (the failover assignment composes
// with any static partitioner, so the simplest one keeps the sweep about
// recovery, not placement).
func faultsConfig(c *Context) scaleout.Config {
	cfg := scaleout.DefaultConfig(4)
	cfg.K = c.W.K
	cfg.MinCount = c.W.MinCount
	cfg.Workers = c.W.Workers
	cfg.Topo = topo.Torus(0, 0)
	return cfg
}

// committedWork sums the MacroNodes committed on the NMP and CPU paths
// across every node — the conserved quantity of a recovered run.
func committedWork(res *scaleout.Result) int64 {
	var work int64
	for _, r := range res.NMP {
		work += r.NodesNMP + r.NodesCPU
	}
	return work
}

// Faults runs the recovery-overhead vs. checkpoint-cadence sweep: a fixed
// mid-phase node loss, replayed under cadences from none (restart the
// phase on the survivors) to every iteration.
func Faults(c *Context) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	cfg := faultsConfig(c)
	golden, err := scaleout.Simulate(c.Reads, tr, cfg)
	if err != nil {
		return nil, fmt.Errorf("fault-free run: %w", err)
	}
	at := golden.Compact.Total() / 2
	wantWork := committedWork(golden)
	lost := cfg.Nodes / 2

	var b strings.Builder
	fmt.Fprintf(&b,
		"node %d of %d killed at compaction cycle %d of %d (mid-phase), detection latency %d cycles\n"+
			"fault-free run: %d cycles over %d compaction iterations; every recovered run below\n"+
			"committed exactly the fault-free run's %d MacroNodes (verified)\n\n",
		lost, cfg.Nodes, at, golden.Compact.Total(), faultDetectCycles,
		golden.TotalCycles, len(tr.Iterations), wantWork)
	fmt.Fprintf(&b, "%8s %7s %10s %9s %9s %10s %12s %9s\n",
		"cadence", "ckpts", "ckpt-cyc", "lost-it", "rec-cyc", "moved-KiB", "total-cyc", "overhead")

	measured := map[string]float64{
		"golden_cycles": float64(golden.TotalCycles),
		"fault_cycle":   float64(at),
		"detect_cycles": float64(faultDetectCycles),
	}
	for _, every := range []int{0, 1, 2, 4, 8} {
		run := cfg
		run.CheckpointEvery = every
		run.Faults = fault.NodeLossAt(lost, at, faultDetectCycles)
		res, err := scaleout.Simulate(c.Reads, tr, run)
		if err != nil {
			return nil, fmt.Errorf("cadence %d: %w", every, err)
		}
		if got := committedWork(res); got != wantWork {
			return nil, fmt.Errorf("cadence %d: recovered run committed %d MacroNodes, fault-free committed %d",
				every, got, wantWork)
		}
		over := res.TotalCycles - golden.TotalCycles
		fmt.Fprintf(&b, "%8d %7d %10d %9d %9d %10.1f %12d %8.2f%%\n",
			every, res.Checkpoints, res.CheckpointCycles, res.LostIterations,
			res.RecoveryCycles, float64(res.RepartitionBytes)/1024,
			res.TotalCycles, 100*float64(over)/float64(golden.TotalCycles))
		measured[fmt.Sprintf("overhead_cycles_ckpt%d", every)] = float64(over)
		measured[fmt.Sprintf("lost_iters_ckpt%d", every)] = float64(res.LostIterations)
		measured[fmt.Sprintf("checkpoint_cycles_ckpt%d", every)] = float64(res.CheckpointCycles)
		measured[fmt.Sprintf("repartition_bytes_ckpt%d", every)] = float64(res.RepartitionBytes)
	}
	b.WriteString("\ncadence 0 recovers by restarting the phase on the survivors: maximal lost work,\n" +
		"zero capture stall. Denser cadences bound the discarded iterations at the price of\n" +
		"periodic capture barriers — the classic checkpoint-interval trade, measured in cycles.\n")
	return &Report{
		ID:       "faults",
		Title:    "recovery overhead vs. checkpoint cadence under a mid-phase node loss",
		Text:     b.String(),
		Measured: measured,
	}, nil
}

// FaultTimeline is the -timeline -inject variant: the same instrumented
// 8-node torus overlapped run as Timeline, with periodic checkpoints and
// a mid-phase node loss, so the exported Chrome trace shows the recovery
// machinery on the runtime track — the fault instant, the detection and
// restore stalls, the re-partition transfer, and the capture barriers —
// against the per-node rollback visible on the engine tracks.
func FaultTimeline(c *Context, w io.Writer) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	cfg := timelineConfig(c)
	golden, err := scaleout.Simulate(c.Reads, tr, cfg)
	if err != nil {
		return nil, fmt.Errorf("fault-free probe run: %w", err)
	}
	lost := cfg.Nodes / 2
	at := golden.Compact.Total() / 2
	cfg.CheckpointEvery = 2
	cfg.Faults = fault.NodeLossAt(lost, at, faultDetectCycles)
	pre := fmt.Sprintf(
		"injected: node %d killed at compaction cycle %d, checkpoint cadence 2\n"+
			"look for fault/detect/restore/repartition/checkpoint spans on the runtime track\n",
		lost, at)
	return captureTimeline(c, w, cfg, "timeline-faults",
		"recovery timeline: node loss, rollback and re-partitioning on the Chrome trace", pre)
}
