package experiments

import (
	"fmt"

	"nmppak/internal/nmp"
	"nmppak/internal/report"
)

// Ablation studies the design choices DESIGN.md calls out, beyond the
// paper's own sensitivity analysis (Fig. 15):
//
//   - static vs. refreshed DIMM mapping: the paper's mapping table is a
//     static ascending-key partition; because compaction removes the
//     lexicographically largest keys first, a table frozen at iteration 0
//     funnels the surviving population into the low-key DIMMs, and the
//     per-iteration refresh (free, since compaction reallocates nodes
//     every iteration anyway) restores balance;
//   - hybrid offload on/off: what the >threshold nodes cost when forced
//     through the PEs (streamed through the MacroNode buffer) instead of
//     the host CPU;
//   - TransferNode scratchpad sizing: occupancy and overflow pressure at
//     the paper's 1 KB versus smaller scratchpads.
func Ablation(c *Context) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	tab := &report.Table{
		Title:   "Design-choice ablations (cycles, lower is better)",
		Headers: []string{"configuration", "cycles", "vs NMP-PaK", "note"},
	}
	base, err := nmp.Simulate(tr, nmp.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rel := func(r *nmp.Result) string {
		return fmt.Sprintf("%.2fx", float64(r.Cycles)/float64(base.Cycles))
	}
	tab.AddRow("NMP-PaK (default)", base.Cycles, "1.00x", "")

	scfg := nmp.DefaultConfig()
	scfg.StaticMapping = true
	static, err := nmp.Simulate(tr, scfg)
	if err != nil {
		return nil, err
	}
	tab.AddRow("static DIMM mapping", static.Cycles, rel(static), "high-key DIMMs drain; survivors pile into DIMM 0")

	hcfg := nmp.DefaultConfig()
	hcfg.HybridThresholdBytes = 0
	noHybrid, err := nmp.Simulate(tr, hcfg)
	if err != nil {
		return nil, err
	}
	tab.AddRow("no CPU offload", noHybrid.Cycles, rel(noHybrid), "oversized nodes streamed through PEs")

	qcfg := nmp.DefaultConfig()
	qcfg.PELoadQueueDepth = 1
	qcfg.P3QueueDepth = 1
	shallow, err := nmp.Simulate(tr, qcfg)
	if err != nil {
		return nil, err
	}
	tab.AddRow("no prefetch buffers", shallow.Cycles, rel(shallow), "single outstanding load/update per PE")

	bcfg := nmp.DefaultConfig()
	bcfg.BridgeBytesPerCy /= 4
	slowBridge, err := nmp.Simulate(tr, bcfg)
	if err != nil {
		return nil, err
	}
	tab.AddRow("bridge at 6.25 GB/s", slowBridge.Cycles, rel(slowBridge), "quarter-rate inter-DIMM links")

	text := tab.String() + fmt.Sprintf(
		"scratchpad pressure at default 1KB: peak %d B, overflow events %d\n",
		base.ScratchPeakBytes, base.ScratchOverflows)
	return &Report{
		ID: "ablation", Title: "Design-choice ablations", Text: text,
		Measured: map[string]float64{
			"static_mapping_slowdown": float64(static.Cycles) / float64(base.Cycles),
			"no_hybrid_slowdown":      float64(noHybrid.Cycles) / float64(base.Cycles),
			"no_prefetch_slowdown":    float64(shallow.Cycles) / float64(base.Cycles),
			"slow_bridge_slowdown":    float64(slowBridge.Cycles) / float64(base.Cycles),
		},
	}, nil
}
