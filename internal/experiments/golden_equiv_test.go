package experiments

import (
	"fmt"
	"hash/fnv"
	"testing"

	"nmppak/internal/cpumodel"
	"nmppak/internal/kmer"
	"nmppak/internal/nmp"
	"nmppak/internal/pakgraph"
	"nmppak/internal/scaleout"
)

// Golden output digests captured from the pre-optimization implementation
// (comparator merge sort, container/heap event kernel, map-based terminal
// counts). The hot-path rewrites must reproduce these byte-identical
// counting results and cycle-exact simulation outcomes.
const (
	goldenKmerDistinct  = 59771
	goldenKmerHash      = uint64(0x9971a4eae85dc82c)
	goldenKmerExtracted = 828000
	goldenPrunedKinds   = 226610
	goldenPrunedMass    = 229864
	goldenTermTotal     = 12000 // reads with len >= k, on both ends
	goldenGraphNodes    = 59804
	goldenTraceIters    = 18
	goldenNMPCycles     = 308182
	goldenCPUCycles     = 16955021
	// Scale-out totals under the pre-refactor flat LinkConfig model; the
	// topology-aware FullMesh must reproduce them cycle for cycle, in
	// both replay disciplines (captured immediately before the
	// internal/topo refactor).
	goldenScale1Total   = 13766386
	goldenScale4Total   = 3894413
	goldenScale4Overlap = 3780697
	goldenScale8Total   = 2110251
	goldenScale8Overlap = 1941983
)

// TestGoldenEquivalence locks the full pipeline — counting, graph
// construction, trace capture, NMP replay and scale-out replay — to the
// exact outputs of the pre-optimization implementation on the quick
// workload. Any deviation in sort order handling, event scheduling order
// or terminal accounting shows up here as a digest or cycle mismatch.
func TestGoldenEquivalence(t *testing.T) {
	c, err := NewContext(QuickWorkload())
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmer.Count(c.Reads, kmer.Config{K: 32, Workers: 4, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, kc := range res.Kmers {
		fmt.Fprintf(h, "%d:%d;", uint64(kc.Km), kc.Count)
	}
	if len(res.Kmers) != goldenKmerDistinct {
		t.Errorf("distinct kmers = %d, golden %d", len(res.Kmers), goldenKmerDistinct)
	}
	if got := h.Sum64(); got != goldenKmerHash {
		t.Errorf("kmer stream hash = %#x, golden %#x", got, goldenKmerHash)
	}
	if res.TotalExtracted != goldenKmerExtracted {
		t.Errorf("TotalExtracted = %d, golden %d", res.TotalExtracted, goldenKmerExtracted)
	}
	if res.PrunedKinds != goldenPrunedKinds || res.PrunedMass != goldenPrunedMass {
		t.Errorf("pruned = %d/%d, golden %d/%d", res.PrunedKinds, res.PrunedMass, goldenPrunedKinds, goldenPrunedMass)
	}
	var tp, ts uint64
	for _, e := range res.TermPrefix {
		tp += uint64(e.Count)
	}
	for _, e := range res.TermSuffix {
		ts += uint64(e.Count)
	}
	if tp != goldenTermTotal || ts != goldenTermTotal {
		t.Errorf("terminal totals = %d/%d, golden %d", tp, ts, goldenTermTotal)
	}

	g, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != goldenGraphNodes {
		t.Errorf("graph nodes = %d, golden %d", g.Len(), goldenGraphNodes)
	}

	tr, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Iterations) != goldenTraceIters {
		t.Errorf("trace iterations = %d, golden %d", len(tr.Iterations), goldenTraceIters)
	}
	nres, err := nmp.Simulate(tr, nmp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if nres.Cycles != goldenNMPCycles {
		t.Errorf("nmp cycles = %d, golden %d", nres.Cycles, goldenNMPCycles)
	}
	cres, err := cpumodel.Simulate(tr, cpumodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cres.Cycles != goldenCPUCycles {
		t.Errorf("cpumodel cycles = %d, golden %d", cres.Cycles, goldenCPUCycles)
	}

	for _, tc := range []struct {
		nodes   int
		overlap bool
		want    int64
	}{
		{1, false, goldenScale1Total},
		{1, true, goldenScale1Total},
		{4, false, goldenScale4Total},
		{4, true, goldenScale4Overlap},
		{8, false, goldenScale8Total},
		{8, true, goldenScale8Overlap},
	} {
		scfg := scaleout.DefaultConfig(tc.nodes)
		scfg.Workers = 4
		scfg.Overlap = tc.overlap
		sres, err := scaleout.Simulate(c.Reads, tr, scfg)
		if err != nil {
			t.Fatal(err)
		}
		if int64(sres.TotalCycles) != tc.want {
			t.Errorf("scaleout n=%d overlap=%v total cycles = %d, golden %d",
				tc.nodes, tc.overlap, sres.TotalCycles, tc.want)
		}
		if sres.Topology != "fullmesh" {
			t.Errorf("default topology = %q, want fullmesh", sres.Topology)
		}
	}
}
