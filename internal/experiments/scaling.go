package experiments

import (
	"fmt"

	"nmppak/internal/report"
	"nmppak/internal/scaleout"
	"nmppak/internal/topo"
)

// scalingNodes are the machine sizes the scaling study sweeps.
var scalingNodes = []int{1, 2, 4, 8}

// topoSweepNodes are the machine sizes of the topology sweep; the larger
// points are where routed contention separates the topologies.
var topoSweepNodes = []int{8, 16, 64}

// skewedScalingWorkload derives the repeat-heavy variant of the workload
// the partitioner sweep is judged on: short repeat units covering almost
// half the genome concentrate k-mer mass into few minimizer super-buckets.
func skewedScalingWorkload(w Workload) Workload {
	w.RepeatFraction = 0.45
	w.RepeatUnit = 150
	return w
}

// scaleOutConfig builds the study's scale-out system for the workload.
func scaleOutConfig(w Workload, n int) scaleout.Config {
	cfg := scaleout.DefaultConfig(n)
	cfg.K = w.K
	cfg.MinCount = w.MinCount
	cfg.Workers = w.Workers
	return cfg
}

// scalingRuns memoizes scale-out simulations within one study so that
// identical configurations — in particular the 1-node baseline, which
// every partitioner column shares because a single node owns every key
// regardless of partitioner — are simulated once and reused.
type scalingRuns struct {
	ctx   *Context
	cache map[string]*scaleout.Result
}

// run simulates (or replays from cache) the study workload under cfg.
// The cache key is the full timing-relevant configuration (machine size,
// discipline, partitioner, counting knobs, topology and per-node NMP
// hardware); on one node ownership is trivial, so the partitioner drops
// out of the key and every 1-node partitioner column shares one cached
// baseline. The replay discipline stays in the key even at n=1 — totals
// coincide there, but the Compact phase split attributes barriers
// differently. Partitioners are keyed by Name() plus, when they expose
// one, a Fingerprint of their internal state (BalancedPartitioner does),
// so same-named instances built from different samples cannot collide.
func (sr *scalingRuns) run(cfg scaleout.Config) (*scaleout.Result, error) {
	pkey := cfg.Partitioner.Name()
	if fp, ok := cfg.Partitioner.(interface{ Fingerprint() uint64 }); ok {
		pkey = fmt.Sprintf("%s:%x", pkey, fp.Fingerprint())
	}
	if cfg.Nodes == 1 {
		pkey = "-"
	}
	key := fmt.Sprintf("n%d|ov%t|p%s|k%d|m%d|t%+v|h%+v", cfg.Nodes, cfg.Overlap,
		pkey, cfg.K, cfg.MinCount, cfg.Topo, cfg.NMP)
	if r, ok := sr.cache[key]; ok {
		return r, nil
	}
	tr, err := sr.ctx.Trace()
	if err != nil {
		return nil, err
	}
	r, err := scaleout.Simulate(sr.ctx.Reads, tr, cfg)
	if err != nil {
		return nil, err
	}
	sr.cache[key] = r
	return r, nil
}

// Scaling runs the scale-out study the paper's §6.4 supercomputer
// comparison gestures at but never measures: the same sharded
// multi-node structure as PaKman's MPI runs (distributed counting,
// distributed MacroNode construction, distributed Iterative Compaction
// with halo exchange), with every node a full NMP-PaK system.
//
// Strong scaling holds the workload fixed while nodes grow; weak scaling
// holds the per-node genome share fixed (GenomeLen/8 per node, so the
// 8-node point is the full workload). On top of the BSP baseline the
// study sweeps the runtime knobs: overlapped halo exchange
// (Config.Overlap) against BSP at every machine size, the interconnect
// topology (idealized full mesh vs. routed torus and dragonfly, both
// disciplines, up to 64 nodes), and the partitioner choice (hash /
// minimizer / weight-aware balanced / measurement-driven rebalancing) on
// a repeat-heavy skewed workload at 8 nodes. The N=1 compaction phase is
// cycle-identical to the single-node SimulateNMP result; speedups are
// deterministic replays, reproducible bit for bit.
func Scaling(c *Context) (*Report, error) {
	sr := &scalingRuns{ctx: c, cache: map[string]*scaleout.Result{}}

	// Strong scaling: fixed workload, growing machine, BSP replay.
	strong := make([]*scaleout.Result, 0, len(scalingNodes))
	for _, n := range scalingNodes {
		res, err := sr.run(scaleOutConfig(c.W, n))
		if err != nil {
			return nil, err
		}
		strong = append(strong, res)
	}

	// Overlapped replay on the same machines (the 1-node entry is the
	// shared cached baseline: with one node both disciplines coincide).
	overlap := make([]*scaleout.Result, 0, len(scalingNodes))
	for _, n := range scalingNodes {
		cfg := scaleOutConfig(c.W, n)
		cfg.Overlap = true
		res, err := sr.run(cfg)
		if err != nil {
			return nil, err
		}
		overlap = append(overlap, res)
	}

	// Weak scaling: per-node share fixed at 1/8 of the workload genome.
	perNode := c.W.GenomeLen / scalingNodes[len(scalingNodes)-1]
	weak := make([]*scaleout.Result, 0, len(scalingNodes))
	for _, n := range scalingNodes {
		w := c.W
		w.GenomeLen = perNode * n
		wc, err := NewContext(w)
		if err != nil {
			return nil, err
		}
		wtr, err := wc.Trace()
		if err != nil {
			return nil, err
		}
		res, err := scaleout.Simulate(wc.Reads, wtr, scaleOutConfig(w, n))
		if err != nil {
			return nil, err
		}
		weak = append(weak, res)
	}

	cycles := func(rs []*scaleout.Result) []float64 {
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = float64(r.TotalCycles)
		}
		return out
	}
	comm := func(rs []*scaleout.Result) []float64 {
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = r.CommFraction
		}
		return out
	}
	text := report.Scaling("Strong scaling (fixed workload, BSP)", scalingNodes, cycles(strong), comm(strong)) +
		"\n" + report.Scaling(fmt.Sprintf("Weak scaling (%d bp genome per node)", perNode),
		scalingNodes, cycles(weak), comm(weak))

	// Overlap-vs-BSP: same shards, same per-node compute, different
	// schedule; the win is whatever link time hides behind lagging nodes.
	ovt := &report.Table{
		Title:   "Overlapped halo exchange vs. BSP (same shards and trace)",
		Headers: []string{"nodes", "bsp compact", "overlap compact", "gain", "bsp total", "overlap total", "gain", "exposed comm"},
	}
	for i := range scalingNodes {
		b, o := strong[i], overlap[i]
		ovt.AddRow(scalingNodes[i],
			fmt.Sprintf("%d", b.Compact.Total()),
			fmt.Sprintf("%d", o.Compact.Total()),
			report.Ratio(float64(b.Compact.Total()), float64(o.Compact.Total())),
			fmt.Sprintf("%d", b.TotalCycles),
			fmt.Sprintf("%d", o.TotalCycles),
			report.Ratio(float64(b.TotalCycles), float64(o.TotalCycles)),
			fmt.Sprintf("%d", o.Compact.Exchange))
	}
	text += "\n" + ovt.String()

	// Topology sweep: the same workload and shards on a full mesh, a 2D
	// torus and a dragonfly (auto shapes), BSP and overlapped, at the
	// machine sizes where routed contention separates them. Runs are
	// memoized like everything else in the study; the full-mesh 8-node
	// rows are the strong-scaling runs replayed from cache.
	topoCfgs := []struct {
		label string
		cfg   topo.Config
	}{
		{"mesh", topo.Default()},
		{"torus", topo.Torus(0, 0)},
		{"dfly", topo.DragonflyGroups(0)},
	}
	tt := &report.Table{
		Title:   "Topology sweep (routed contention vs. the idealized full mesh)",
		Headers: []string{"nodes", "topology", "bsp cycles", "bsp comm", "overlap cycles", "overlap comm", "bsp speedup"},
	}
	topoMeasured := map[string]float64{}
	for _, n := range topoSweepNodes {
		for _, tc := range topoCfgs {
			cfg := scaleOutConfig(c.W, n)
			cfg.Topo = tc.cfg
			rb, err := sr.run(cfg)
			if err != nil {
				return nil, err
			}
			cfg.Overlap = true
			ro, err := sr.run(cfg)
			if err != nil {
				return nil, err
			}
			tt.AddRow(n, rb.Topology,
				fmt.Sprintf("%d", rb.TotalCycles),
				report.Percent(rb.CommFraction),
				fmt.Sprintf("%d", ro.TotalCycles),
				report.Percent(ro.CommFraction),
				fmt.Sprintf("%.2fx", rb.Speedup(strong[0])))
			if n == topoSweepNodes[0] || n == topoSweepNodes[len(topoSweepNodes)-1] {
				topoMeasured[fmt.Sprintf("comm_frac_%s_%dx", tc.label, n)] = rb.CommFraction
				topoMeasured[fmt.Sprintf("speedup_%s_%dx", tc.label, n)] = rb.Speedup(strong[0])
				topoMeasured[fmt.Sprintf("overlap_gain_%s_%dx", tc.label, n)] =
					float64(rb.TotalCycles) / float64(ro.TotalCycles)
			}
		}
	}
	text += "\n" + tt.String()

	// Partitioner sweep on the skewed (repeat-heavy) workload: the
	// balanced partitioner must recover the minimizer scheme's locality
	// without its load imbalance. The 1-node baseline is derived once and
	// shared by every partitioner column (ownership is trivial on one
	// node), and the weight-aware table is built from the same counting
	// result the sharded pipeline recounts.
	sw := skewedScalingWorkload(c.W)
	sctx, err := NewContext(sw)
	if err != nil {
		return nil, err
	}
	skres, err := sctx.Kmers()
	if err != nil {
		return nil, err
	}
	const sweepNodes = 8
	ssr := &scalingRuns{ctx: sctx, cache: map[string]*scaleout.Result{}}
	sbase, err := ssr.run(scaleOutConfig(sw, 1))
	if err != nil {
		return nil, err
	}
	pt := &report.Table{
		Title: fmt.Sprintf("Partitioner sweep, skewed workload (repeats %.0f%%/%d bp), %d nodes",
			sw.RepeatFraction*100, sw.RepeatUnit, sweepNodes),
		Headers: []string{"partitioner", "cycles", "speedup", "imbalance", "remote TNs", "comm"},
	}
	sweepParts := []scaleout.Partitioner{
		scaleout.HashPartitioner{},
		scaleout.NewMinimizerPartitioner(12),
		scaleout.NewBalancedPartitioner(skres, 12, sweepNodes),
		scaleout.NewRebalancePartitioner(12, 1),
	}
	sweep := make([]*scaleout.Result, len(sweepParts))
	for i, p := range sweepParts {
		cfg := scaleOutConfig(sw, sweepNodes)
		cfg.Partitioner = p
		res, err := ssr.run(cfg)
		if err != nil {
			return nil, err
		}
		sweep[i] = res
		pt.AddRow(p.Name(),
			fmt.Sprintf("%d", res.TotalCycles),
			fmt.Sprintf("%.2fx", res.Speedup(sbase)),
			fmt.Sprintf("%.3f", res.Imbalance),
			report.Percent(res.RemoteTNFrac),
			report.Percent(res.CommFraction))
	}
	text += "\n" + pt.String()
	reb8 := sweep[len(sweep)-1]
	text += fmt.Sprintf("rebalance: %d migrations moved %.2f MB of MacroNodes between iterations (charged to the network).\n",
		reb8.Rebalances, float64(reb8.MigratedBytes)/1e6)

	phase := &report.Table{
		Title:   "Strong-scaling phase split (cycles, BSP)",
		Headers: []string{"nodes", "count", "construct", "compact", "exchange", "remote TNs", "imbalance"},
	}
	for _, r := range strong {
		phase.AddRow(r.Nodes,
			fmt.Sprintf("%d", r.Count.Total()),
			fmt.Sprintf("%d", r.Construct.Total()),
			fmt.Sprintf("%d", r.Compact.Total()),
			fmt.Sprintf("%d", r.Count.Exchange+r.Construct.Exchange+r.Compact.Exchange),
			report.Percent(r.RemoteTNFrac),
			fmt.Sprintf("%.2f", r.Imbalance))
	}
	text += "\n" + phase.String() +
		"N=1 compaction is cycle-identical to the single-node SimulateNMP replay.\n"

	hash8, min8, bal8 := sweep[0], sweep[1], sweep[2]
	measured := map[string]float64{
		"imbalance_reb_8x":      reb8.Imbalance,
		"remote_tn_reb_8x":      reb8.RemoteTNFrac,
		"rebalance_moved_mb_8x": float64(reb8.MigratedBytes) / 1e6,
		"comm_frac_8x":          strong[len(strong)-1].CommFraction,
		"weak_eff_8x":           weak[len(weak)-1].Speedup(weak[0]),
		"imbalance_8x":          strong[len(strong)-1].Imbalance,
		"remote_tn_8x":          strong[len(strong)-1].RemoteTNFrac,
		"n1_compact_cy":         float64(strong[0].Compact.Total()),
		"overlap_compact_8x":    float64(overlap[len(overlap)-1].Compact.Total()),
		"bsp_compact_8x":        float64(strong[len(strong)-1].Compact.Total()),
		"overlap_total_gain_8x": float64(strong[len(strong)-1].TotalCycles) / float64(overlap[len(overlap)-1].TotalCycles),
		"imbalance_hash_8x":     hash8.Imbalance,
		"imbalance_min_8x":      min8.Imbalance,
		"imbalance_bal_8x":      bal8.Imbalance,
		"remote_tn_bal_8x":      bal8.RemoteTNFrac,
		"remote_tn_hash_8x":     hash8.RemoteTNFrac,
	}
	for i, n := range scalingNodes {
		if n == 1 {
			continue
		}
		measured[fmt.Sprintf("speedup_%dx", n)] = strong[i].Speedup(strong[0])
		measured[fmt.Sprintf("eff_%dx", n)] = strong[i].Efficiency(strong[0])
	}
	for k, v := range topoMeasured {
		measured[k] = v
	}
	return &Report{
		ID:       "scaling",
		Title:    "Scale-out strong/weak scaling, overlap and partitioner study",
		Text:     text,
		Measured: measured,
	}, nil
}
