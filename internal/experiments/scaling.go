package experiments

import (
	"fmt"

	"nmppak/internal/report"
	"nmppak/internal/scaleout"
)

// scalingNodes are the machine sizes the scaling study sweeps.
var scalingNodes = []int{1, 2, 4, 8}

// scaleOutConfig builds the study's scale-out system for the workload.
func scaleOutConfig(w Workload, n int) scaleout.Config {
	cfg := scaleout.DefaultConfig(n)
	cfg.K = w.K
	cfg.MinCount = w.MinCount
	cfg.Workers = w.Workers
	return cfg
}

// Scaling runs the scale-out study the paper's §6.4 supercomputer
// comparison gestures at but never measures: the same sharded
// multi-node structure as PaKman's MPI runs (distributed counting,
// distributed MacroNode construction, lockstep Iterative Compaction with
// halo exchange), with every node a full NMP-PaK system.
//
// Strong scaling holds the workload fixed while nodes grow; weak scaling
// holds the per-node genome share fixed (GenomeLen/8 per node, so the
// 8-node point is the full workload). The N=1 compaction phase is
// cycle-identical to the single-node SimulateNMP result; speedups are
// deterministic replays, reproducible bit for bit.
func Scaling(c *Context) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}

	// Strong scaling: fixed workload, growing machine.
	strong := make([]*scaleout.Result, 0, len(scalingNodes))
	for _, n := range scalingNodes {
		res, err := scaleout.Simulate(c.Reads, tr, scaleOutConfig(c.W, n))
		if err != nil {
			return nil, err
		}
		strong = append(strong, res)
	}

	// Weak scaling: per-node share fixed at 1/8 of the workload genome.
	perNode := c.W.GenomeLen / scalingNodes[len(scalingNodes)-1]
	weak := make([]*scaleout.Result, 0, len(scalingNodes))
	for _, n := range scalingNodes {
		w := c.W
		w.GenomeLen = perNode * n
		wc, err := NewContext(w)
		if err != nil {
			return nil, err
		}
		wtr, err := wc.Trace()
		if err != nil {
			return nil, err
		}
		res, err := scaleout.Simulate(wc.Reads, wtr, scaleOutConfig(w, n))
		if err != nil {
			return nil, err
		}
		weak = append(weak, res)
	}

	cycles := func(rs []*scaleout.Result) []float64 {
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = float64(r.TotalCycles)
		}
		return out
	}
	comm := func(rs []*scaleout.Result) []float64 {
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = r.CommFraction
		}
		return out
	}
	text := report.Scaling("Strong scaling (fixed workload)", scalingNodes, cycles(strong), comm(strong)) +
		"\n" + report.Scaling(fmt.Sprintf("Weak scaling (%d bp genome per node)", perNode),
		scalingNodes, cycles(weak), comm(weak))

	phase := &report.Table{
		Title:   "Strong-scaling phase split (cycles)",
		Headers: []string{"nodes", "count", "construct", "compact", "exchange", "remote TNs", "imbalance"},
	}
	for _, r := range strong {
		phase.AddRow(r.Nodes,
			fmt.Sprintf("%d", r.Count.Total()),
			fmt.Sprintf("%d", r.Construct.Total()),
			fmt.Sprintf("%d", r.Compact.Total()),
			fmt.Sprintf("%d", r.Count.Exchange+r.Construct.Exchange+r.Compact.Exchange),
			report.Percent(r.RemoteTNFrac),
			fmt.Sprintf("%.2f", r.Imbalance))
	}
	text += "\n" + phase.String() +
		"N=1 compaction is cycle-identical to the single-node SimulateNMP replay.\n"

	measured := map[string]float64{
		"comm_frac_8x":  strong[len(strong)-1].CommFraction,
		"weak_eff_8x":   weak[len(weak)-1].Speedup(weak[0]),
		"imbalance_8x":  strong[len(strong)-1].Imbalance,
		"remote_tn_8x":  strong[len(strong)-1].RemoteTNFrac,
		"n1_compact_cy": float64(strong[0].Compact.Total()),
	}
	for i, n := range scalingNodes {
		if n == 1 {
			continue
		}
		measured[fmt.Sprintf("speedup_%dx", n)] = strong[i].Speedup(strong[0])
		measured[fmt.Sprintf("eff_%dx", n)] = strong[i].Efficiency(strong[0])
	}
	return &Report{
		ID:       "scaling",
		Title:    "Scale-out strong/weak scaling",
		Text:     text,
		Measured: measured,
	}, nil
}
