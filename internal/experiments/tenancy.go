// Multi-tenant fleet study: the cmd/experiments -tenancy flag. A fixed
// 8-node fleet time-shares a stream of assembly jobs under the
// checkpoint-preemptive scheduler (internal/tenancy); the sweep walks
// offered load (arrival rate) against two job-size mixes and reports the
// latency/throughput curve, locating the saturation knee where queueing
// takes over. A policy comparison at the knee shows what strict-priority
// and fair-share preemption buy over FIFO on the skewed mix, and every
// preempted tenant's result is cross-checked bit for bit against its
// uninterrupted run — the same property the tenancy test suite pins.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"

	"nmppak/internal/report"
	"nmppak/internal/scaleout"
	"nmppak/internal/sim"
	"nmppak/internal/tenancy"
)

// tenancyFleetNodes is the fixed fleet size of the study.
const tenancyFleetNodes = 8

// tenancyJobsPerRun is the jobs admitted per sweep point.
const tenancyJobsPerRun = 8

// tenancyLoads are the offered-load levels: demanded node-cycles per
// fleet-node-cycle. Below 1 the fleet keeps up; above 1 queues grow with
// the backlog and latency is dominated by waiting.
var tenancyLoads = []float64{0.25, 0.5, 1, 2, 4}

// tenancyMixes are the job-size mixes (repeating node-demand patterns).
// The skewed mix interleaves a fleet-hogging wide job among narrow ones —
// the case head-of-line blocking and preemption actually separate on.
var tenancyMixes = []struct {
	name    string
	demands []int
}{
	{"uniform", []int{2, 2, 2, 2}},
	{"skewed", []int{2, 2, 2, 6}},
}

// tenancySeeds memoizes, per node demand, the iteration-0 checkpoint
// blob every identical-shape job shares (skipping the software prelude
// at each admission) and the uninterrupted reference result used for
// load normalization and the bit-exactness cross-check.
type tenancySeeds struct {
	c     *Context
	seeds map[int][]byte
	refs  map[int]*scaleout.Result
}

func newTenancySeeds(c *Context) *tenancySeeds {
	return &tenancySeeds{c: c, seeds: map[int][]byte{}, refs: map[int]*scaleout.Result{}}
}

func (s *tenancySeeds) cfg(demand int) scaleout.Config { return scaleOutConfig(s.c.W, demand) }

func (s *tenancySeeds) seed(demand int) ([]byte, error) {
	if b, ok := s.seeds[demand]; ok {
		return b, nil
	}
	tr, err := s.c.Trace()
	if err != nil {
		return nil, err
	}
	b, err := scaleout.Checkpoint(s.c.Reads, tr, s.cfg(demand), 0)
	if err != nil {
		return nil, err
	}
	s.seeds[demand] = b
	return b, nil
}

func (s *tenancySeeds) ref(demand int) (*scaleout.Result, error) {
	if r, ok := s.refs[demand]; ok {
		return r, nil
	}
	b, err := s.seed(demand)
	if err != nil {
		return nil, err
	}
	tr, err := s.c.Trace()
	if err != nil {
		return nil, err
	}
	r, err := scaleout.Restore(tr, s.cfg(demand), b)
	if err != nil {
		return nil, err
	}
	s.refs[demand] = r
	return r, nil
}

// jobs builds the deterministic arrival stream for one sweep point: the
// mix pattern repeated over tenancyJobsPerRun jobs, inter-arrival gaps
// jittered around the mean implied by the offered load (seeded PRNG, so
// the stream is a pure function of mix, load and seed). prio maps a
// job's demand to its priority (nil = all zero).
func (s *tenancySeeds) jobs(demands []int, load float64, seed int64, prio func(demand int) int) ([]tenancy.Job, error) {
	tr, err := s.c.Trace()
	if err != nil {
		return nil, err
	}
	// Mean demanded node-cycles per job over the mix pattern sets the
	// arrival gap: load = meanNodeCycles / (gap × fleetNodes).
	var mean float64
	for _, d := range demands {
		r, err := s.ref(d)
		if err != nil {
			return nil, err
		}
		mean += float64(r.TotalCycles) * float64(d)
	}
	mean /= float64(len(demands))
	gap := mean / (load * tenancyFleetNodes)
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]tenancy.Job, 0, tenancyJobsPerRun)
	at := 0.0
	for i := 0; i < tenancyJobsPerRun; i++ {
		d := demands[i%len(demands)]
		blob, err := s.seed(d)
		if err != nil {
			return nil, err
		}
		p := 0
		if prio != nil {
			p = prio(d)
		}
		jobs = append(jobs, tenancy.Job{
			Name:     fmt.Sprintf("j%02d-n%d", i, d),
			Priority: p,
			Arrival:  sim.Cycle(at),
			Trace:    tr,
			Config:   s.cfg(d),
			Seed:     blob,
		})
		at += gap * (0.5 + rng.Float64())
	}
	return jobs, nil
}

// latencyMS collects per-tenant latencies in milliseconds.
func latencyMS(sched *tenancy.Schedule) []float64 {
	out := make([]float64, len(sched.Tenants))
	for i := range sched.Tenants {
		out[i] = sim.Seconds(sched.Tenants[i].Latency) * 1e3
	}
	return out
}

// pctile returns the p-th percentile (nearest-rank) of v.
func pctile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}

// exactResumes counts tenants whose fleet Result is reflect.DeepEqual to
// the uninterrupted run of the same shape.
func (s *tenancySeeds) exactResumes(sched *tenancy.Schedule) (int, error) {
	n := 0
	for i := range sched.Tenants {
		want, err := s.ref(sched.Tenants[i].Demand)
		if err != nil {
			return 0, err
		}
		if reflect.DeepEqual(sched.Tenants[i].Result, want) {
			n++
		}
	}
	return n, nil
}

// Tenancy runs the multi-tenant fleet study: the load sweep per job-size
// mix under fair-share scheduling, the saturation knee per mix, and the
// policy comparison (FIFO vs. strict priority vs. fair share) on the
// skewed mix at the knee.
func Tenancy(c *Context) (*Report, error) {
	s := newTenancySeeds(c)
	measured := map[string]float64{}
	text := ""

	for _, mix := range tenancyMixes {
		t := &report.Table{
			Title: fmt.Sprintf("Load sweep, %s mix (demands %v), %d nodes, fair-share",
				mix.name, mix.demands, tenancyFleetNodes),
			Headers: []string{"load", "p50 lat (ms)", "p95 lat (ms)", "jobs/s", "preempt", "ckpt MB", "util"},
		}
		base, knee := 0.0, 0.0
		for _, load := range tenancyLoads {
			jobs, err := s.jobs(mix.demands, load, 1, nil)
			if err != nil {
				return nil, err
			}
			f := tenancy.Fleet{Nodes: tenancyFleetNodes, Policy: tenancy.FairShare{}}
			sched, err := f.Run(jobs)
			if err != nil {
				return nil, err
			}
			lat := latencyMS(sched)
			p50, p95 := pctile(lat, 0.50), pctile(lat, 0.95)
			if base == 0 {
				base = p95
			}
			// Saturation knee: the first load whose p95 latency more than
			// doubles the light-load p95 — queueing has taken over.
			if knee == 0 && p95 > 2*base {
				knee = load
			}
			t.AddRow(fmt.Sprintf("%.2f", load), fmt.Sprintf("%.3f", p50), fmt.Sprintf("%.3f", p95),
				fmt.Sprintf("%.1f", sched.Throughput()), sched.Preemptions,
				fmt.Sprintf("%.2f", float64(sched.CheckpointBytes)/1e6),
				report.Percent(sched.Utilization))
			measured[fmt.Sprintf("p95_ms_%s_load%g", mix.name, load)] = p95
			measured[fmt.Sprintf("util_%s_load%g", mix.name, load)] = sched.Utilization
		}
		text += t.String()
		if knee > 0 {
			text += fmt.Sprintf("saturation knee at load %.2f (p95 latency > 2x the light-load p95)\n\n", knee)
		} else {
			text += "no saturation knee inside the swept range\n\n"
		}
		measured["knee_load_"+mix.name] = knee
	}

	// Policy comparison at the skewed mix's knee load, on the pattern the
	// three policies actually separate on: a fleet-wide batch job arrives
	// first, narrow high-priority jobs queue behind it. FIFO head-of-line
	// blocks the narrows for the whole batch; strict priority checkpoints
	// the batch at its next iteration boundary; fair share rotates.
	policyDemands := []int{tenancyFleetNodes, 2, 2, 2}
	prio := func(demand int) int {
		if demand <= 2 {
			return 1
		}
		return 0
	}
	kneeLoad := measured["knee_load_skewed"]
	if kneeLoad == 0 {
		kneeLoad = tenancyLoads[len(tenancyLoads)-1]
	}
	pt := &report.Table{
		Title: fmt.Sprintf("Policy comparison, fleet-wide batch + narrow mix (demands %v) at load %.2f",
			policyDemands, kneeLoad),
		Headers: []string{"policy", "p50 lat (ms)", "p95 lat (ms)", "narrow p95", "jobs/s", "preempt", "util", "exact resumes"},
	}
	var fairSched *tenancy.Schedule
	exactAll := true
	for _, pol := range []tenancy.Policy{tenancy.FIFO{}, tenancy.Priority{}, tenancy.FairShare{}} {
		jobs, err := s.jobs(policyDemands, kneeLoad, 1, prio)
		if err != nil {
			return nil, err
		}
		f := tenancy.Fleet{Nodes: tenancyFleetNodes, Policy: pol}
		sched, err := f.Run(jobs)
		if err != nil {
			return nil, err
		}
		lat := latencyMS(sched)
		var narrow []float64
		for i := range sched.Tenants {
			if sched.Tenants[i].Demand <= 2 {
				narrow = append(narrow, sim.Seconds(sched.Tenants[i].Latency)*1e3)
			}
		}
		exact, err := s.exactResumes(sched)
		if err != nil {
			return nil, err
		}
		exactAll = exactAll && exact == len(sched.Tenants)
		pt.AddRow(pol.Name(), fmt.Sprintf("%.3f", pctile(lat, 0.5)), fmt.Sprintf("%.3f", pctile(lat, 0.95)),
			fmt.Sprintf("%.3f", pctile(narrow, 0.95)), fmt.Sprintf("%.1f", sched.Throughput()),
			sched.Preemptions, report.Percent(sched.Utilization),
			fmt.Sprintf("%d/%d", exact, len(sched.Tenants)))
		measured["p95_ms_"+pol.Name()] = pctile(lat, 0.95)
		measured["narrow_p95_ms_"+pol.Name()] = pctile(narrow, 0.95)
		measured["preemptions_"+pol.Name()] = float64(sched.Preemptions)
		if pol.Name() == "fair" {
			fairSched = sched
		}
	}
	text += pt.String()
	measured["bit_identical_resume"] = b2f(exactAll)
	text += fmt.Sprintf("every preempted-and-resumed tenant result bit-identical to its uninterrupted run: %v\n\n", exactAll)
	text += report.Tenancy(fairSched)

	return &Report{
		ID:       "tenancy",
		Title:    "Multi-tenant fleet: checkpoint-preemptive scheduling under load",
		Text:     text,
		Measured: measured,
	}, nil
}
