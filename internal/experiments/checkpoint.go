// Checkpoint/restore driver: the cmd/experiments -checkpoint/-restore
// flag pair. CheckpointSave runs the scale-out workload up to the middle
// of its compaction trace and writes the paused state as a blob;
// RestoreLoad reads the blob back, finishes the run, and verifies the
// resumed result against the uninterrupted one — the same property the
// internal/conformance suite sweeps across the whole config matrix,
// demonstrated here on a real workload and a real file.
package experiments

import (
	"fmt"
	"io"
	"reflect"

	"nmppak/internal/scaleout"
	"nmppak/internal/topo"
)

// checkpointConfig is the fixed demo configuration the -checkpoint and
// -restore invocations share (a blob is only restorable under the exact
// configuration it was taken under; the blob's digests enforce that): a
// 4-node routed torus running the measurement-driven rebalancing
// partitioner under BSP.
func checkpointConfig(c *Context) scaleout.Config {
	cfg := scaleout.DefaultConfig(4)
	cfg.K = c.W.K
	cfg.MinCount = c.W.MinCount
	cfg.Workers = c.W.Workers
	cfg.Topo = topo.Torus(0, 0)
	cfg.Partitioner = scaleout.NewRebalancePartitioner(12, 1)
	return cfg
}

// CheckpointSave pauses the scale-out run mid-compaction and writes the
// versioned blob to w.
func CheckpointSave(c *Context, w io.Writer) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	cfg := checkpointConfig(c)
	at := len(tr.Iterations) / 2
	blob, err := scaleout.Checkpoint(c.Reads, tr, cfg, at)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(blob); err != nil {
		return nil, err
	}
	text := fmt.Sprintf(
		"checkpointed a %d-node %s %s run before compaction iteration %d of %d\n"+
			"blob: version %d, %d bytes (engine timing state + measured durations; the trace itself stays outside)\n"+
			"restore with: experiments -restore <file> (same workload flags)\n",
		cfg.Nodes, cfg.Topo.Kind, cfg.Partitioner.Name(), at, len(tr.Iterations),
		scaleout.CheckpointVersion, len(blob))
	return &Report{
		ID:    "checkpoint",
		Title: "mid-run checkpoint of the distributed runtime",
		Text:  text,
		Measured: map[string]float64{
			"blob_bytes":      float64(len(blob)),
			"checkpoint_iter": float64(at),
		},
	}, nil
}

// RestoreLoad reads a blob written by CheckpointSave (under the same
// workload), resumes the run to completion, and cross-checks the result
// bit for bit against the uninterrupted simulation.
func RestoreLoad(c *Context, r io.Reader) (*Report, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	cfg := checkpointConfig(c)
	ck, err := scaleout.UnmarshalCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	res, err := scaleout.Restore(tr, cfg, blob)
	if err != nil {
		return nil, err
	}
	want, err := scaleout.Simulate(c.Reads, tr, cfg)
	if err != nil {
		return nil, err
	}
	identical := reflect.DeepEqual(res, want)
	text := fmt.Sprintf(
		"resumed at compaction iteration %d of %d: %s\n"+
			"uninterrupted run:                       %s\n"+
			"bit-identical resume: %v\n",
		ck.ResumeIter, len(tr.Iterations), res, want, identical)
	rep := &Report{
		ID:    "restore",
		Title: "resume from a checkpoint blob, verified against the uninterrupted run",
		Text:  text,
		Measured: map[string]float64{
			"resume_iter":          float64(ck.ResumeIter),
			"bit_identical_resume": b2f(identical),
			"total_ms":             res.Seconds * 1e3,
			"rebalances":           float64(res.Rebalances),
		},
	}
	if !identical {
		return rep, fmt.Errorf("restored result is not bit-identical to the uninterrupted run")
	}
	return rep, nil
}

// b2f renders a boolean as a measured 0/1.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
