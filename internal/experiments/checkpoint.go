// Checkpoint/restore driver: the cmd/experiments -checkpoint/-restore
// flag pair. CheckpointSave runs the scale-out workload up to the middle
// of its compaction trace and writes the paused state as a blob;
// RestoreLoad reads the blob back, finishes the run, and verifies the
// resumed result against the uninterrupted one — the same property the
// internal/conformance suite sweeps across the whole config matrix,
// demonstrated here on a real workload and a real file.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"

	"nmppak/internal/scaleout"
	"nmppak/internal/topo"
)

// checkpointConfig is the fixed demo configuration the -checkpoint and
// -restore invocations share (a blob is only restorable under the exact
// configuration it was taken under; the blob's digests enforce that): a
// 4-node routed torus running the measurement-driven rebalancing
// partitioner under BSP.
func checkpointConfig(c *Context) scaleout.Config {
	cfg := scaleout.DefaultConfig(4)
	cfg.K = c.W.K
	cfg.MinCount = c.W.MinCount
	cfg.Workers = c.W.Workers
	cfg.Topo = topo.Torus(0, 0)
	cfg.Partitioner = scaleout.NewRebalancePartitioner(12, 1)
	return cfg
}

// CheckpointSave pauses the scale-out run mid-compaction and writes the
// versioned blob to path. The write is crash-safe: the blob lands in a
// temp file beside the destination and is renamed into place only after a
// successful sync, so an interrupted save leaves either the previous file
// or nothing — never a truncated blob that a later -restore would reject.
func CheckpointSave(c *Context, path string) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	cfg := checkpointConfig(c)
	// Pause at the middle boundary, clamped into [1, iters]: a one- or
	// two-iteration trace would otherwise round down to boundary 0 — a
	// legal blob, but a degenerate demo that replays the entire run on
	// restore. An empty trace has no boundary to pause at.
	iters := len(tr.Iterations)
	if iters == 0 {
		return nil, fmt.Errorf("experiments: workload compacted in zero iterations; nothing to checkpoint mid-run")
	}
	at := iters / 2
	if at < 1 {
		at = 1
	}
	if at > iters {
		at = iters
	}
	blob, err := scaleout.Checkpoint(c.Reads, tr, cfg, at)
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(path, blob); err != nil {
		return nil, err
	}
	text := fmt.Sprintf(
		"checkpointed a %d-node %s %s run before compaction iteration %d of %d\n"+
			"blob: version %d, %d bytes (engine timing state + measured durations; the trace itself stays outside)\n"+
			"written atomically (temp file + rename); restore with: experiments -restore <file> (same workload flags)\n",
		cfg.Nodes, cfg.Topo.Kind, cfg.Partitioner.Name(), at, len(tr.Iterations),
		scaleout.CheckpointVersion, len(blob))
	return &Report{
		ID:    "checkpoint",
		Title: "mid-run checkpoint of the distributed runtime",
		Text:  text,
		Measured: map[string]float64{
			"blob_bytes":      float64(len(blob)),
			"checkpoint_iter": float64(at),
		},
	}, nil
}

// RestoreLoad reads a blob written by CheckpointSave (under the same
// workload), resumes the run to completion, and cross-checks the result
// bit for bit against the uninterrupted simulation.
func RestoreLoad(c *Context, r io.Reader) (*Report, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	cfg := checkpointConfig(c)
	ck, err := scaleout.UnmarshalCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	res, err := scaleout.Restore(tr, cfg, blob)
	if err != nil {
		return nil, err
	}
	want, err := scaleout.Simulate(c.Reads, tr, cfg)
	if err != nil {
		return nil, err
	}
	identical := reflect.DeepEqual(res, want)
	text := fmt.Sprintf(
		"resumed at compaction iteration %d of %d: %s\n"+
			"uninterrupted run:                       %s\n"+
			"bit-identical resume: %v\n",
		ck.ResumeIter, len(tr.Iterations), res, want, identical)
	rep := &Report{
		ID:    "restore",
		Title: "resume from a checkpoint blob, verified against the uninterrupted run",
		Text:  text,
		Measured: map[string]float64{
			"resume_iter":          float64(ck.ResumeIter),
			"bit_identical_resume": b2f(identical),
			"total_ms":             res.Seconds * 1e3,
			"rebalances":           float64(res.Rebalances),
		},
	}
	if !identical {
		return rep, fmt.Errorf("restored result is not bit-identical to the uninterrupted run")
	}
	return rep, nil
}

// writeFileAtomic publishes data at path through a same-directory temp
// file, fsync and rename — the standard crash-safe write: a reader (or a
// rerun after a crash) sees either the old complete file or the new
// complete file, never a prefix.
func writeFileAtomic(path string, data []byte) (err error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Chmod(tmp, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// b2f renders a boolean as a measured 0/1.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
