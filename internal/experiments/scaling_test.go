package experiments

import (
	"fmt"
	"strings"
	"testing"

	"nmppak/internal/nmp"
	"nmppak/internal/scaleout"
)

func TestScalingReport(t *testing.T) {
	c := ctx(t)
	r, err := Scaling(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Strong scaling", "Weak scaling", "Overlapped halo exchange", "Topology sweep", "Partitioner sweep", "rebalance"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("report missing %q table:\n%s", want, r.Text)
		}
	}
	// Scale-out must actually scale: more nodes, more speedup, and the
	// 8-node machine must beat half of linear on this compute-heavy
	// workload.
	s2, s4, s8 := r.Measured["speedup_2x"], r.Measured["speedup_4x"], r.Measured["speedup_8x"]
	if !(1 < s2 && s2 < s4 && s4 < s8) {
		t.Fatalf("speedups not monotone: 2x=%.2f 4x=%.2f 8x=%.2f", s2, s4, s8)
	}
	if s8 > 8 {
		t.Fatalf("super-linear 8-node speedup %.2f", s8)
	}
	if r.Measured["eff_8x"] < 0.5 {
		t.Fatalf("8-node efficiency %.2f below 50%%", r.Measured["eff_8x"])
	}
	if f := r.Measured["comm_frac_8x"]; f <= 0 || f >= 1 {
		t.Fatalf("comm fraction %.3f out of range", f)
	}

	// The N=1 compaction phase is pinned to the single-node replay.
	tr, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	single, err := nmp.Simulate(tr, nmp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Measured["n1_compact_cy"]; got != float64(single.Cycles) {
		t.Fatalf("N=1 compact phase %v cycles, SimulateNMP %d", got, single.Cycles)
	}

	// Overlapped halo exchange must reduce the 8-node compaction phase
	// below BSP's (the acceptance bar for the event-driven runtime).
	ov, bsp := r.Measured["overlap_compact_8x"], r.Measured["bsp_compact_8x"]
	if !(0 < ov && ov < bsp) {
		t.Fatalf("8-node overlap compact %v cycles did not beat BSP %v", ov, bsp)
	}
	if g := r.Measured["overlap_total_gain_8x"]; g < 1 {
		t.Fatalf("8-node overlap end-to-end gain %.3f below 1", g)
	}

	// The weight-aware partitioner must not lose to hash on the skewed
	// workload's load balance, and must beat the plain minimizer scheme,
	// while keeping (most of) its communication locality.
	ih, im, ib := r.Measured["imbalance_hash_8x"], r.Measured["imbalance_min_8x"], r.Measured["imbalance_bal_8x"]
	if !(0 < ib && ib <= ih) {
		t.Fatalf("balanced imbalance %.4f worse than hash %.4f on the skewed workload", ib, ih)
	}
	if ib > im {
		t.Fatalf("balanced imbalance %.4f worse than plain minimizer %.4f", ib, im)
	}
	if r.Measured["remote_tn_bal_8x"] >= r.Measured["remote_tn_hash_8x"] {
		t.Fatalf("balanced partitioner lost the minimizer locality: remote TNs %.3f vs hash %.3f",
			r.Measured["remote_tn_bal_8x"], r.Measured["remote_tn_hash_8x"])
	}

	// Measurement-driven rebalancing must at least match the static
	// weight-aware binning on measured imbalance, keep minimizer-class
	// locality, and actually move bytes over the network doing it.
	if ir := r.Measured["imbalance_reb_8x"]; !(0 < ir && ir <= ib) {
		t.Fatalf("rebalance imbalance %.4f worse than static balanced %.4f", ir, ib)
	}
	if r.Measured["remote_tn_reb_8x"] >= r.Measured["remote_tn_hash_8x"] {
		t.Fatalf("rebalancer lost the minimizer locality: remote TNs %.3f vs hash %.3f",
			r.Measured["remote_tn_reb_8x"], r.Measured["remote_tn_hash_8x"])
	}
	if r.Measured["rebalance_moved_mb_8x"] <= 0 {
		t.Fatal("rebalancer reported no migration traffic")
	}

	// Routed topologies must expose strictly more communication than the
	// idealized full mesh and scale worse, and overlap must still win on
	// each (the exact acceptance shape of the topo refactor).
	for _, tpo := range []string{"torus", "dfly"} {
		for _, n := range []int{8, 64} {
			cf := r.Measured[fmt.Sprintf("comm_frac_%s_%dx", tpo, n)]
			mesh := r.Measured[fmt.Sprintf("comm_frac_mesh_%dx", n)]
			if !(0 < mesh && mesh < cf && cf < 1) {
				t.Fatalf("%s %dx comm fraction %.4f not above fullmesh %.4f", tpo, n, cf, mesh)
			}
			sp := r.Measured[fmt.Sprintf("speedup_%s_%dx", tpo, n)]
			msp := r.Measured[fmt.Sprintf("speedup_mesh_%dx", n)]
			if !(0 < sp && sp < msp) {
				t.Fatalf("%s %dx speedup %.2f not below fullmesh %.2f", tpo, n, sp, msp)
			}
			if g := r.Measured[fmt.Sprintf("overlap_gain_%s_%dx", tpo, n)]; g < 1 {
				t.Fatalf("%s %dx overlap gain %.3f below 1", tpo, n, g)
			}
		}
	}

	// Deterministic replays: a second run reproduces every number.
	r2, err := Scaling(c)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r.Measured {
		if r2.Measured[k] != v {
			t.Fatalf("measure %q not reproducible: %v vs %v", k, v, r2.Measured[k])
		}
	}
}

// The per-study run cache must collapse identical configurations — the
// 1-node baseline in particular is partitioner- and schedule-independent
// and must be simulated exactly once.
func TestScalingRunCache(t *testing.T) {
	c := ctx(t)
	sr := &scalingRuns{ctx: c, cache: map[string]*scaleout.Result{}}
	cfg := scaleOutConfig(c.W, 1)
	a, err := sr.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Partitioner = scaleout.NewMinimizerPartitioner(12)
	b, err := sr.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("1-node baseline re-derived for an identical-timing configuration")
	}
	if len(sr.cache) != 1 {
		t.Fatalf("cache holds %d entries for one distinct configuration", len(sr.cache))
	}
	// The replay discipline stays in the key even at n=1: totals coincide
	// but the phase split attributes barriers differently.
	cfg.Partitioner = scaleout.HashPartitioner{}
	cfg.Overlap = true
	o, err := sr.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o == a {
		t.Fatal("1-node overlap run shared the BSP cache entry (phase splits differ)")
	}
	if o.TotalCycles != a.TotalCycles {
		t.Fatalf("1-node overlap total %d differs from BSP %d", o.TotalCycles, a.TotalCycles)
	}
	// Distinct configurations must not collide.
	cfg = scaleOutConfig(c.W, 2)
	r2, err := sr.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	r2o, err := sr.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2 == r2o || len(sr.cache) != 4 {
		t.Fatalf("2-node BSP and overlapped runs collided (cache size %d)", len(sr.cache))
	}
	// A slower link is a different configuration.
	cfg.Topo.BytesPerCycle /= 2
	slow, err := sr.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow == r2o || len(sr.cache) != 5 {
		t.Fatalf("link-bandwidth variant collided (cache size %d)", len(sr.cache))
	}
}

// Speedup and Efficiency must be guarded against a zero-cycle baseline
// rather than reporting nonsense ratios.
func TestSpeedupZeroBaselineGuard(t *testing.T) {
	r := &scaleout.Result{Nodes: 8, TotalCycles: 100}
	zero := &scaleout.Result{Nodes: 1}
	if s := r.Speedup(zero); s != 0 {
		t.Fatalf("Speedup over zero-cycle baseline = %v, want 0", s)
	}
	if e := r.Efficiency(zero); e != 0 {
		t.Fatalf("Efficiency over zero-cycle baseline = %v, want 0", e)
	}
	if s := r.Speedup(nil); s != 0 {
		t.Fatalf("Speedup over nil baseline = %v, want 0", s)
	}
	if e := r.Efficiency(nil); e != 0 {
		t.Fatalf("Efficiency over nil baseline = %v, want 0", e)
	}
	if s := zero.Speedup(r); s != 0 {
		t.Fatalf("zero-cycle result speedup = %v, want 0", s)
	}
}
