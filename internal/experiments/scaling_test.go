package experiments

import (
	"strings"
	"testing"

	"nmppak/internal/nmp"
)

func TestScalingReport(t *testing.T) {
	c := ctx(t)
	r, err := Scaling(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "Strong scaling") || !strings.Contains(r.Text, "Weak scaling") {
		t.Fatalf("report missing scaling tables:\n%s", r.Text)
	}
	// Scale-out must actually scale: more nodes, more speedup, and the
	// 8-node machine must beat half of linear on this compute-heavy
	// workload.
	s2, s4, s8 := r.Measured["speedup_2x"], r.Measured["speedup_4x"], r.Measured["speedup_8x"]
	if !(1 < s2 && s2 < s4 && s4 < s8) {
		t.Fatalf("speedups not monotone: 2x=%.2f 4x=%.2f 8x=%.2f", s2, s4, s8)
	}
	if s8 > 8 {
		t.Fatalf("super-linear 8-node speedup %.2f", s8)
	}
	if r.Measured["eff_8x"] < 0.5 {
		t.Fatalf("8-node efficiency %.2f below 50%%", r.Measured["eff_8x"])
	}
	if f := r.Measured["comm_frac_8x"]; f <= 0 || f >= 1 {
		t.Fatalf("comm fraction %.3f out of range", f)
	}

	// The N=1 compaction phase is pinned to the single-node replay.
	tr, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	single, err := nmp.Simulate(tr, nmp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Measured["n1_compact_cy"]; got != float64(single.Cycles) {
		t.Fatalf("N=1 compact phase %v cycles, SimulateNMP %d", got, single.Cycles)
	}

	// Deterministic replays: a second run reproduces every number.
	r2, err := Scaling(c)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r.Measured {
		if r2.Measured[k] != v {
			t.Fatalf("measure %q not reproducible: %v vs %v", k, v, r2.Measured[k])
		}
	}
}
