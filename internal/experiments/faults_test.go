package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFaultsSweepShape(t *testing.T) {
	r, err := Faults(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Every cadence column must report its overhead, and the no-checkpoint
	// recovery (restart the phase) must discard the most work.
	for _, e := range []int{0, 1, 2, 4, 8} {
		if _, ok := r.Measured["overhead_cycles_ckpt"+itoa(e)]; !ok {
			t.Fatalf("missing overhead for cadence %d", e)
		}
		if r.Measured["overhead_cycles_ckpt"+itoa(e)] <= 0 {
			t.Fatalf("cadence %d reports non-positive recovery overhead", e)
		}
	}
	if r.Measured["lost_iters_ckpt1"] > r.Measured["lost_iters_ckpt0"] {
		t.Fatalf("per-iteration checkpoints discarded more work (%g) than none (%g)",
			r.Measured["lost_iters_ckpt1"], r.Measured["lost_iters_ckpt0"])
	}
	if r.Measured["checkpoint_cycles_ckpt0"] != 0 {
		t.Fatal("cadence 0 charged checkpoint capture cycles")
	}
	if r.Measured["checkpoint_cycles_ckpt1"] <= 0 {
		t.Fatal("cadence 1 charged no checkpoint capture cycles")
	}
}

func TestFaultTimelineReconciles(t *testing.T) {
	var buf bytes.Buffer
	r, err := FaultTimeline(ctx(t), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured["recoveries"] != 1 {
		t.Fatalf("recoveries = %g, want 1", r.Measured["recoveries"])
	}
	if r.Measured["reconcile_diff"] != 0 {
		t.Fatalf("comm fraction did not reconcile exactly: diff %g", r.Measured["reconcile_diff"])
	}
	// The Chrome trace must carry the recovery vocabulary.
	for _, name := range []string{"fault", "detect", "restore", "repartition", "checkpoint"} {
		if !strings.Contains(buf.String(), `"name":"`+name+`"`) {
			t.Fatalf("trace JSON has no %q span", name)
		}
	}
}

func TestCheckpointSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.blob")
	if _, err := CheckpointSave(ctx(t), path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("empty blob")
	}
	// No temp residue: the only directory entry is the published file.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "ck.blob" {
		t.Fatalf("directory not clean after save: %v", ents)
	}
	// Saving over an existing file replaces it atomically (same content).
	if _, err := CheckpointSave(ctx(t), path); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("re-saved blob differs")
	}
	// An unwritable destination errors cleanly and leaves nothing behind.
	if _, err := CheckpointSave(ctx(t), filepath.Join(dir, "missing", "ck.blob")); err == nil {
		t.Fatal("save into a missing directory did not error")
	}
}

// itoa avoids pulling strconv into the test for single digits.
func itoa(n int) string { return string(rune('0' + n)) }
