// Timeline driver: the cmd/experiments -timeline flag. Runs the 8-node
// routed-torus overlapped scale-out workload with telemetry enabled,
// writes the captured span stream as Chrome-trace JSON (loadable in
// Perfetto or chrome://tracing), and prints the utilization table and
// critical-path attribution derived from the same stream. The derived
// comm fraction is cross-checked against the runtime's own CommFraction
// before anything is written — the trace is refused if the two
// accountings disagree.
package experiments

import (
	"fmt"
	"io"
	"math"

	"nmppak/internal/report"
	"nmppak/internal/scaleout"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
)

// timelineConfig is the fixed -timeline demo configuration: an 8-node
// routed torus under the overlapped halo-streaming discipline, where the
// timeline actually has something to show (deliveries hiding behind
// compute, link contention, straggler idling).
func timelineConfig(c *Context) scaleout.Config {
	cfg := scaleout.DefaultConfig(8)
	cfg.K = c.W.K
	cfg.MinCount = c.W.MinCount
	cfg.Workers = c.W.Workers
	cfg.Topo = topo.Torus(0, 0)
	cfg.Overlap = true
	return cfg
}

// Timeline captures the instrumented run and writes the Chrome-trace
// JSON to w; the returned report carries the utilization and
// critical-path text.
func Timeline(c *Context, w io.Writer) (*Report, error) {
	return captureTimeline(c, w, timelineConfig(c), "timeline",
		"cycle-domain timeline capture (Chrome trace), utilization and critical path", "")
}

// captureTimeline runs cfg instrumented, cross-checks the derived comm
// fraction against the runtime's, and writes the Chrome trace — shared by
// the fault-free Timeline and the fault-injected FaultTimeline.
func captureTimeline(c *Context, w io.Writer, cfg scaleout.Config, id, title, preamble string) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	col := telemetry.New()
	cfg.Telemetry = col
	res, err := scaleout.Simulate(c.Reads, tr, cfg)
	if err != nil {
		return nil, err
	}
	u := telemetry.Analyze(col)
	if d := math.Abs(u.CommFraction - res.CommFraction); d > 1e-9 {
		return nil, fmt.Errorf("telemetry comm fraction %.12f does not reconcile with the runtime's %.12f (|d|=%g)",
			u.CommFraction, res.CommFraction, d)
	}
	if err := col.WriteChrome(w); err != nil {
		return nil, err
	}
	cp := telemetry.CriticalPath(col)

	spans := 0
	for _, t := range col.Tracks() {
		spans += t.Len()
	}
	text := preamble + fmt.Sprintf(
		"captured an %d-node %s overlapped run: %d tracks, %d spans\n"+
			"comm fraction reconciles: telemetry %.6f == runtime %.6f\n"+
			"open the JSON in https://ui.perfetto.dev or chrome://tracing (1 ts = 1 cycle = 0.625 ns)\n\n",
		cfg.Nodes, res.Topology, len(col.Tracks()), spans,
		u.CommFraction, res.CommFraction)
	text += report.Utilization(u) + "\n" + report.CriticalPath(cp)
	measured := map[string]float64{
		"tracks":         float64(len(col.Tracks())),
		"spans":          float64(spans),
		"comm_frac":      u.CommFraction,
		"total_cycles":   float64(u.Total),
		"cp_iters":       float64(len(cp)),
		"reconcile_diff": math.Abs(u.CommFraction - res.CommFraction),
	}
	if res.Recoveries > 0 {
		measured["recoveries"] = float64(res.Recoveries)
		measured["recovery_cycles"] = float64(res.RecoveryCycles)
		measured["repartition_bytes"] = float64(res.RepartitionBytes)
		measured["checkpoints"] = float64(res.Checkpoints)
	}
	return &Report{
		ID:       id,
		Title:    title,
		Text:     text,
		Measured: measured,
	}, nil
}
