package experiments

import (
	"fmt"
	"time"

	"nmppak/internal/assemble"
	"nmppak/internal/compact"
	"nmppak/internal/footprint"
	"nmppak/internal/kmer"
	"nmppak/internal/metrics"
	"nmppak/internal/readsim"
	"nmppak/internal/report"
)

// Fig5 measures the runtime breakdown of the assembly pipeline stages
// (paper: A 2%, B 25%, C 24%, D 48%, E 1% on the optimized algorithm).
func Fig5(c *Context) (*Report, error) {
	out, err := c.Assemble(1, compact.FlowPipelined)
	if err != nil {
		return nil, err
	}
	total := out.Times.Total().Seconds()
	frac := func(d time.Duration) float64 { return d.Seconds() / total }
	tab := &report.Table{
		Title:   "Runtime breakdown of the PaKman pipeline (optimized algorithm)",
		Headers: []string{"stage", "seconds", "fraction"},
	}
	tab.AddRow("A access+distribute", out.Times.Distribute.Seconds(), report.Percent(frac(out.Times.Distribute)))
	tab.AddRow("B k-mer counting", out.Times.KmerCount.Seconds(), report.Percent(frac(out.Times.KmerCount)))
	tab.AddRow("C MN construct+wiring", out.Times.Construct.Seconds(), report.Percent(frac(out.Times.Construct)))
	tab.AddRow("D iterative compaction", out.Times.Compact.Seconds(), report.Percent(frac(out.Times.Compact)))
	tab.AddRow("E graph walk+contig gen", out.Times.Walk.Seconds(), report.Percent(frac(out.Times.Walk)))
	return &Report{
		ID: "fig5", Title: "Pipeline runtime breakdown", Text: tab.String(),
		Measured: map[string]float64{
			"frac_kmer_counting": frac(out.Times.KmerCount),
			"frac_construct":     frac(out.Times.Construct),
			"frac_compaction":    frac(out.Times.Compact),
			"frac_walk":          frac(out.Times.Walk),
		},
		Paper: map[string]float64{
			"frac_kmer_counting": 0.25,
			"frac_construct":     0.24,
			"frac_compaction":    0.48,
			"frac_walk":          0.01,
		},
	}, nil
}

// Fig7 reports the MacroNode size distribution at iterations 0, 7 and the
// final iteration (paper Fig. 7: long tail, most nodes under 1 KB).
func Fig7(c *Context) (*Report, error) {
	tr, err := c.DeepTrace()
	if err != nil {
		return nil, err
	}
	iters := []int{0, 7, len(tr.Iterations) - 1}
	if iters[1] >= len(tr.Iterations) {
		iters[1] = len(tr.Iterations) / 2
	}
	// Buckets: <256B, 256-512, 512-1K, 1-2K, 2-4K, 4-8K, 8-16K, 16-32K, >32K
	bounds := []int{256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	labels := []string{"<256B", "256B", "512B", "1KB", "2KB", "4KB", "8KB", "16KB", ">32KB"}
	tab := &report.Table{
		Title:   "MacroNode size distribution during Iterative Compaction (counts)",
		Headers: append([]string{"iteration"}, labels...),
	}
	measured := map[string]float64{}
	for _, it := range iters {
		h := make([]int, len(bounds)+1)
		for _, n := range tr.Iterations[it].Nodes {
			sz := int(n.D1 + n.D2)
			b := 0
			for b < len(bounds) && sz >= bounds[b] {
				b++
			}
			h[b]++
		}
		row := make([]any, 0, len(h)+1)
		row = append(row, fmt.Sprintf("iter %d", it))
		for _, cnt := range h {
			row = append(row, cnt)
		}
		tab.AddRow(row...)
	}
	// Final-iteration tail fractions (paper: >1KB 7.4%, >2KB 1.2%, >4KB
	// 0.1%, >8KB 0.03% at completion).
	last := tr.Iterations[len(tr.Iterations)-1]
	total := float64(len(last.Nodes))
	for _, th := range []int{1024, 2048, 4096, 8192} {
		n := 0
		for _, nd := range last.Nodes {
			if int(nd.D1+nd.D2) > th {
				n++
			}
		}
		measured[fmt.Sprintf("final_frac_gt_%dB", th)] = float64(n) / total
	}
	return &Report{
		ID: "fig7", Title: "MacroNode size distribution", Text: tab.String(),
		Measured: measured,
		Paper: map[string]float64{
			"final_frac_gt_1024B": 0.074,
			"final_frac_gt_2048B": 0.012,
			"final_frac_gt_4096B": 0.001,
			"final_frac_gt_8192B": 0.0003,
		},
	}, nil
}

// Fig8 tracks the proportion of oversized MacroNodes across iterations
// (paper: >1KB stays below 7.4%, >8KB below 0.05% throughout).
func Fig8(c *Context) (*Report, error) {
	tr, err := c.DeepTrace()
	if err != nil {
		return nil, err
	}
	tab := &report.Table{
		Title:   "Proportion of MacroNodes exceeding size thresholds per iteration",
		Headers: []string{"iteration", ">1KB", ">2KB", ">4KB", ">8KB"},
	}
	var max1, max8 float64
	step := len(tr.Iterations) / 12
	if step < 1 {
		step = 1
	}
	for it := 0; it < len(tr.Iterations); it++ {
		nodes := tr.Iterations[it].Nodes
		total := float64(len(nodes))
		var f [4]float64
		for _, nd := range nodes {
			sz := int(nd.D1 + nd.D2)
			for i, th := range []int{1024, 2048, 4096, 8192} {
				if sz > th {
					f[i]++
				}
			}
		}
		for i := range f {
			f[i] /= total
		}
		if f[0] > max1 {
			max1 = f[0]
		}
		if f[3] > max8 {
			max8 = f[3]
		}
		if it%step == 0 || it == len(tr.Iterations)-1 {
			tab.AddRow(it, report.Percent(f[0]), report.Percent(f[1]), report.Percent(f[2]), report.Percent(f[3]))
		}
	}
	return &Report{
		ID: "fig8", Title: "Oversized MacroNode proportion over iterations", Text: tab.String(),
		Measured: map[string]float64{"max_frac_gt_1KB": max1, "max_frac_gt_8KB": max8},
		Paper:    map[string]float64{"max_frac_gt_1KB": 0.074, "max_frac_gt_8KB": 0.0005},
	}, nil
}

// Table1 sweeps the batch size and measures contig N50 (paper Table 1:
// 0.5% 875, 1% 1123, 3% 1209, 4% 1107, 5% 3014, 10% 3535 — quality
// degrades as batches shrink).
func Table1(c *Context) (*Report, error) {
	// The paper sequences at 100x coverage (Table 2); the batch-size
	// trade-off depends on per-batch coverage crossing the error-pruning
	// threshold, so this sweep re-sequences the workload's genome at the
	// paper's coverage regardless of the context default.
	reads, err := readsim.Simulate(c.Genome, readsim.Config{
		ReadLen: c.W.ReadLen, Coverage: 100, ErrorRate: c.W.ErrorRate, Seed: c.W.Seed,
	})
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.005, 0.01, 0.03, 0.04, 0.05, 0.10}
	tab := &report.Table{
		Title:   "Contig quality (N50) across batch sizes (100x coverage)",
		Headers: []string{"batch size", "batches", "N50", "contigs", "genome frac"},
	}
	measured := map[string]float64{}
	for _, f := range fractions {
		batches := int(1/f + 0.5)
		out, err := assemble.Run(reads, assemble.Config{
			K: c.W.K, Workers: c.W.Workers, MinCount: c.W.MinCount, Batches: batches,
		})
		if err != nil {
			return nil, err
		}
		sum := metrics.Summarize(out.Contigs, c.Genome.Replicons)
		tab.AddRow(report.Percent(f), batches, sum.N50, sum.Contigs, fmt.Sprintf("%.3f", sum.GenomeFrac))
		measured[fmt.Sprintf("n50_batch_%g%%", f*100)] = float64(sum.N50)
	}
	return &Report{
		ID: "table1", Title: "N50 vs batch size", Text: tab.String(),
		Measured: measured,
		Paper: map[string]float64{
			"n50_batch_0.5%": 875, "n50_batch_1%": 1123, "n50_batch_3%": 1209,
			"n50_batch_4%": 1107, "n50_batch_5%": 3014, "n50_batch_10%": 3535,
		},
	}, nil
}

// SWOpt measures the §4.5 software-optimization speedups: optimized vs
// naive k-mer counting (paper: 416x on k-mer counting, 110x end-to-end;
// our gap is smaller because Go's sort and allocator behave better than
// the unoptimized C++ flow, but the direction and order must hold).
func SWOpt(c *Context) (*Report, error) {
	cfg := kmer.Config{K: c.W.K, Workers: c.W.Workers, MinCount: c.W.MinCount}
	t0 := time.Now()
	optRes, err := kmer.Count(c.Reads, cfg)
	if err != nil {
		return nil, err
	}
	tOpt := time.Since(t0)
	t0 = time.Now()
	naiveRes, err := kmer.CountNaive(c.Reads, cfg)
	if err != nil {
		return nil, err
	}
	tNaive := time.Since(t0)
	if len(optRes.Kmers) != len(naiveRes.Kmers) {
		return nil, fmt.Errorf("swopt: implementations disagree")
	}
	speedup := tNaive.Seconds() / tOpt.Seconds()
	text := fmt.Sprintf("k-mer counting: naive %.3fs, optimized %.3fs -> %.1fx speedup\n"+
		"(paper reports 416x against the original single-vector serial C++ flow;\n"+
		" the Go naive path lacks the repeated-reallocation pathology at full scale)\n",
		tNaive.Seconds(), tOpt.Seconds(), speedup)
	return &Report{
		ID: "swopt", Title: "Software optimization speedup (§4.5)", Text: text,
		Measured: map[string]float64{"kmer_count_speedup": speedup},
		Paper:    map[string]float64{"kmer_count_speedup": 416},
	}, nil
}

// Footprint reproduces the memory-footprint comparison (§3.5/§4.4/§4.5):
// baseline PaKman organization on the whole dataset versus the optimized
// organization with 10% batches (paper: 14x overall, 1.4x from the
// §4.5 memory management alone).
func Footprint(c *Context) (*Report, error) {
	resAll, err := kmer.Count(c.Reads, kmer.Config{K: c.W.K, Workers: c.W.Workers, MinCount: c.W.MinCount})
	if err != nil {
		return nil, err
	}
	gAll, err := pakgraphBuild(resAll)
	if err != nil {
		return nil, err
	}
	batch := c.Reads[:len(c.Reads)/10]
	resBatch, err := kmer.Count(batch, kmer.Config{K: c.W.K, Workers: c.W.Workers, MinCount: c.W.MinCount})
	if err != nil {
		return nil, err
	}
	gBatch, err := pakgraphBuild(resBatch)
	if err != nil {
		return nil, err
	}

	baseline := footprint.Estimate(gAll, resAll.TotalExtracted, 1, footprint.BaselineParams(), 0.02)
	optWhole := footprint.Estimate(gAll, resAll.TotalExtracted, 1, footprint.OptimizedParams(), 0.02)
	optBatched := footprint.Estimate(gBatch, resAll.TotalExtracted, 10, footprint.OptimizedParams(), 0.02)

	mgmt := footprint.Ratio(baseline, optWhole)
	overall := footprint.Ratio(baseline, optBatched)
	text := fmt.Sprintf(
		"baseline (by-value, whole dataset):   %8.1f MB\n"+
			"optimized organization, whole:        %8.1f MB  (%.2fx, paper ~1.4x)\n"+
			"optimized + 10%% batches:              %8.1f MB  (%.1fx, paper 14x)\n"+
			"input reads:                          %8.1f MB -> footprint/input %.1fx (paper 13-25x)\n",
		mb(baseline), mb(optWhole), mgmt, mb(optBatched), overall,
		mb(inputBytes(c)), float64(baseline)/float64(inputBytes(c)))
	return &Report{
		ID: "footprint", Title: "Memory footprint reduction", Text: text,
		Measured: map[string]float64{
			"mgmt_ratio":          mgmt,
			"overall_ratio":       overall,
			"footprint_per_input": float64(baseline) / float64(inputBytes(c)),
		},
		Paper: map[string]float64{"mgmt_ratio": 1.4, "overall_ratio": 14, "footprint_per_input": 19},
	}, nil
}

func mb(b int64) float64 { return float64(b) / 1e6 }

func inputBytes(c *Context) int64 {
	var t int64
	for _, r := range c.Reads {
		t += int64(r.Seq.Len())
	}
	return t
}
