package experiments

import (
	"fmt"

	"nmppak/internal/cpumodel"
	"nmppak/internal/gpumodel"
	"nmppak/internal/hybrid"
	"nmppak/internal/nmp"
	"nmppak/internal/power"
	"nmppak/internal/report"
	"nmppak/internal/sim"
	"nmppak/internal/trace"
)

// SystemRuns bundles the Fig. 12/13/14 system comparison results so the
// three figures share one set of simulations.
type SystemRuns struct {
	WOSWOpt     *cpumodel.Result
	CPUBaseline *cpumodel.Result
	GPUBaseline *gpumodel.Result
	CPUPaK      *cpumodel.Result
	NMPPaK      *nmp.Result
	IdealPE     *nmp.Result
	IdealFwd    *nmp.Result
}

// RunSystems simulates all seven Fig. 12 configurations on the workload's
// compaction trace.
func RunSystems(c *Context) (*SystemRuns, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	runs := &SystemRuns{}

	// W/O SW-opt: the original serial stage-sequential flow, with the
	// by-value copying and reallocation overheads of the unoptimized code
	// (§4.5) reflected in its compute costs.
	cfg := cpumodel.DefaultConfig()
	cfg.Threads = 1
	if runs.WOSWOpt, err = cpumodel.Simulate(tr, cfg); err != nil {
		return nil, err
	}
	// CPU baseline: 64 threads, stage-sequential (§5.3).
	if runs.CPUBaseline, err = cpumodel.Simulate(tr, cpumodel.DefaultConfig()); err != nil {
		return nil, err
	}
	// GPU baseline: A100 40 GB analytic model.
	if runs.GPUBaseline, err = gpumodel.Simulate(tr, gpumodel.A100_40GB()); err != nil {
		return nil, err
	}
	// CPU-PaK: the refined pipelined flow on the CPU.
	pcfg := cpumodel.DefaultConfig()
	pcfg.Flow = cpumodel.FlowPipelined
	if runs.CPUPaK, err = cpumodel.Simulate(tr, pcfg); err != nil {
		return nil, err
	}
	// NMP-PaK and its ideal variants.
	ncfg := nmp.DefaultConfig()
	if runs.NMPPaK, err = nmp.Simulate(tr, ncfg); err != nil {
		return nil, err
	}
	icfg := ncfg
	icfg.IdealPE = true
	if runs.IdealPE, err = nmp.Simulate(tr, icfg); err != nil {
		return nil, err
	}
	// Ideal forwarding reuses the data Stage P1 already read. Only the
	// destination's data1 is P1-resident, and only while it survives in
	// the 4 KB MacroNode buffer; the paper's ideal-fwd read reduction
	// (0.50 -> 0.41) corresponds to reusing about half of the destination
	// read, which is the hit rate modeled here.
	fcfg := ncfg
	fcfg.ForwardingHitRate = 0.8
	if runs.IdealFwd, err = nmp.Simulate(tr, fcfg); err != nil {
		return nil, err
	}
	return runs, nil
}

// Fig12 reports normalized performance (paper: 0.09x, 1x, 2.8x, 2.6x, 16x,
// 16x, 18.2x).
func Fig12(c *Context, runs *SystemRuns) (*Report, error) {
	base := float64(runs.CPUBaseline.Cycles)
	perf := func(cy sim.Cycle) float64 { return base / float64(cy) }
	labels := []string{"W/O SW-opt", "CPU-baseline", "GPU-baseline", "CPU-PaK", "NMP-PaK", "NMP-PaK+ideal-PE", "NMP-PaK+ideal-fwd"}
	values := []float64{
		perf(runs.WOSWOpt.Cycles), 1.0, perf(runs.GPUBaseline.Cycles), perf(runs.CPUPaK.Cycles),
		perf(runs.NMPPaK.Cycles), perf(runs.IdealPE.Cycles), perf(runs.IdealFwd.Cycles),
	}
	text := report.Bar("Performance normalized to the CPU baseline", labels, values, 48)
	return &Report{
		ID: "fig12", Title: "System performance comparison", Text: text,
		Measured: map[string]float64{
			"wo_swopt": values[0], "gpu": values[2], "cpu_pak": values[3],
			"nmp_pak": values[4], "ideal_pe": values[5], "ideal_fwd": values[6],
		},
		Paper: map[string]float64{
			"wo_swopt": 0.09, "gpu": 2.8, "cpu_pak": 2.6,
			"nmp_pak": 16.0, "ideal_pe": 16.0, "ideal_fwd": 18.2,
		},
	}, nil
}

// Fig13 reports memory bandwidth utilization (paper: 6.5%, 7.0%, 44%, 44%,
// 42.8%).
func Fig13(c *Context, runs *SystemRuns) (*Report, error) {
	labels := []string{"CPU-baseline", "CPU-PaK", "NMP-PaK", "NMP-PaK+ideal-PE", "NMP-PaK+ideal-fwd"}
	values := []float64{
		runs.CPUBaseline.Utilization, runs.CPUPaK.Utilization,
		runs.NMPPaK.Utilization, runs.IdealPE.Utilization, runs.IdealFwd.Utilization,
	}
	text := report.Bar("Memory bandwidth utilization", labels, values, 48)
	return &Report{
		ID: "fig13", Title: "Memory bandwidth utilization", Text: text,
		Measured: map[string]float64{
			"cpu_baseline": values[0], "cpu_pak": values[1],
			"nmp_pak": values[2], "ideal_pe": values[3], "ideal_fwd": values[4],
		},
		Paper: map[string]float64{
			"cpu_baseline": 0.065, "cpu_pak": 0.07,
			"nmp_pak": 0.44, "ideal_pe": 0.44, "ideal_fwd": 0.428,
		},
	}, nil
}

// flowTraffic computes the logical (algorithm-level) read/write bytes a
// process flow moves — the quantity Fig. 14 plots. The formulas match
// internal/compact's per-flow accounting: the stage-sequential flow sweeps
// data1 in P1, the full node set again in P2 and P3, spills TransferNodes,
// and rewrites every surviving node; the pipelined flow reads data1 once,
// the wiring of invalidated nodes, and the destinations it updates.
// fwdHit removes the fraction of destination reads ideal forwarding reuses.
func flowTraffic(tr *trace.Trace, sequential bool, fwdHit float64) (reads, writes int64) {
	for i := range tr.Iterations {
		iter := &tr.Iterations[i]
		var sumD1, sumD12, sumInvD2, tn int64
		for j := range iter.Nodes {
			n := &iter.Nodes[j]
			sumD1 += int64(n.D1)
			sumD12 += int64(n.D1 + n.D2)
			if n.Invalidated {
				sumInvD2 += int64(n.D2)
			}
		}
		for j := range iter.Transfers {
			tn += int64(iter.Transfers[j].TNBytes)
		}
		var tgtOld, tgtNew int64
		for j := range iter.Updates {
			u := &iter.Updates[j]
			tgtOld += int64(u.ReadBytes)
			tgtNew += int64(u.WriteBytes)
		}
		if sequential {
			reads += sumD1 + 2*sumD12 + tn
			writes += tn + (sumD12 - tgtOld + tgtNew)
		} else {
			reads += sumD1 + sumInvD2 + int64(float64(tgtOld)*(1-fwdHit))
			writes += tgtNew
		}
	}
	return reads, writes
}

// Fig14 reports read/write memory traffic normalized to the CPU baseline's
// reads (paper: reads 1.0/0.5/0.5/0.5/0.41, writes 0.44/0.11/0.11/0.11/0.11).
func Fig14(c *Context, runs *SystemRuns) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	seqR, seqW := flowTraffic(tr, true, 0)
	pipR, pipW := flowTraffic(tr, false, 0)
	fwdR, fwdW := flowTraffic(tr, false, 0.8) // see RunSystems on the hit rate
	base := float64(seqR)
	tab := &report.Table{
		Title:   "Memory traffic normalized to CPU-baseline reads",
		Headers: []string{"system", "reads", "writes"},
	}
	rows := []struct {
		name string
		r, w float64
	}{
		{"CPU-baseline", 1.0, float64(seqW) / base},
		{"CPU-PaK", float64(pipR) / base, float64(pipW) / base},
		{"NMP-PaK", float64(pipR) / base, float64(pipW) / base},
		{"NMP-PaK+ideal-PE", float64(pipR) / base, float64(pipW) / base},
		{"NMP-PaK+ideal-fwd", float64(fwdR) / base, float64(fwdW) / base},
	}
	for _, r := range rows {
		tab.AddRow(r.name, fmt.Sprintf("%.2f", r.r), fmt.Sprintf("%.2f", r.w))
	}
	return &Report{
		ID: "fig14", Title: "Read/write memory traffic", Text: tab.String(),
		Measured: map[string]float64{
			"cpu_baseline_writes": rows[0].w,
			"nmp_reads":           rows[2].r, "nmp_writes": rows[2].w,
			"ideal_fwd_reads": rows[4].r,
		},
		Paper: map[string]float64{
			"cpu_baseline_writes": 0.44,
			"nmp_reads":           0.50, "nmp_writes": 0.11,
			"ideal_fwd_reads": 0.41,
		},
	}, nil
}

// Fig15 sweeps PEs per channel (paper: 0.3x, 0.7x, 1.4x, 5.6x, 15.9x, 16x,
// 16x for 1..64 PEs/ch, saturating at 32).
func Fig15(c *Context) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	baseRes, err := cpumodel.Simulate(tr, cpumodel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	base := float64(baseRes.Cycles)
	var labels []string
	var values []float64
	measured := map[string]float64{}
	for _, pes := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := nmp.DefaultConfig()
		cfg.PEsPerChannel = pes
		res, err := nmp.Simulate(tr, cfg)
		if err != nil {
			return nil, err
		}
		v := base / float64(res.Cycles)
		labels = append(labels, fmt.Sprintf("%dPE/ch", pes))
		values = append(values, v)
		measured[fmt.Sprintf("perf_%dpe", pes)] = v
	}
	text := report.Bar("NMP-PaK performance vs PEs per channel (normalized to CPU baseline)", labels, values, 48)
	return &Report{
		ID: "fig15", Title: "PE/channel sensitivity", Text: text,
		Measured: measured,
		Paper: map[string]float64{
			"perf_1pe": 0.3, "perf_2pe": 0.7, "perf_4pe": 1.4, "perf_8pe": 5.6,
			"perf_16pe": 15.9, "perf_32pe": 16.0, "perf_64pe": 16.0,
		},
	}, nil
}

// Fig6 reports the Iterative Compaction stall breakdown on the CPU
// baseline (paper: dram 54.2%, futex 39.4%, branch 3.0%, l3 1.2%, base
// 1.1%, other 1.1%).
func Fig6(c *Context) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	res, err := cpumodel.Simulate(tr, cpumodel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	base, branch, l3, dramF, futex, other := res.Breakdown.Fractions()
	text := report.Bar("Iterative Compaction stall-time breakdown (CPU baseline, 64 threads)",
		[]string{"base", "branch", "mem-l3", "mem-dram", "sync-futex", "other"},
		[]float64{base, branch, l3, dramF, futex, other}, 48)
	return &Report{
		ID: "fig6", Title: "Stall-time breakdown", Text: text,
		Measured: map[string]float64{
			"frac_dram": dramF, "frac_futex": futex, "frac_base": base,
			"frac_branch": branch, "frac_l3": l3,
		},
		Paper: map[string]float64{
			"frac_dram": 0.542, "frac_futex": 0.394, "frac_base": 0.011,
			"frac_branch": 0.030, "frac_l3": 0.012,
		},
	}, nil
}

// Comm reports the TransferNode communication split (§6.3: intra-DIMM
// 12.5%, inter-DIMM 87.5%; within intra-DIMM, 6% same PE / 94% cross-PE at
// 16 PEs).
func Comm(c *Context) (*Report, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	cfg := nmp.DefaultConfig()
	cfg.PEsPerChannel = 16
	res, err := nmp.Simulate(tr, cfg)
	if err != nil {
		return nil, err
	}
	total := float64(res.TNSamePE + res.TNIntraDIMM + res.TNInterDIMM)
	intra := float64(res.TNSamePE+res.TNIntraDIMM) / total
	inter := float64(res.TNInterDIMM) / total
	samePE := 0.0
	if res.TNSamePE+res.TNIntraDIMM > 0 {
		samePE = float64(res.TNSamePE) / float64(res.TNSamePE+res.TNIntraDIMM)
	}
	text := fmt.Sprintf("TransferNodes routed: %d\n  intra-DIMM: %s (same PE %s of intra)\n  inter-DIMM: %s\n",
		int64(total), report.Percent(intra), report.Percent(samePE), report.Percent(inter))
	return &Report{
		ID: "comm", Title: "Intra-/inter-DIMM communication (§6.3)", Text: text,
		Measured: map[string]float64{"intra_dimm": intra, "inter_dimm": inter, "same_pe_of_intra": samePE},
		Paper:    map[string]float64{"intra_dimm": 0.125, "inter_dimm": 0.875, "same_pe_of_intra": 0.06},
	}, nil
}

// Super reproduces the §6.4 supercomputer comparison. The comparison is an
// arithmetic argument over the paper's own measurements (4,813 s for one
// NMP-PaK node on the full human genome — an end-to-end figure including
// the software pipeline stages on the paper's dual-Xeon host — against
// PaKman's reported 39 s on 16,384 cores / 1,024 nodes), so we reproduce
// that arithmetic exactly and additionally report the compaction-speedup
// side our simulation contributes: the single-node time is consistent with
// the paper's only if NMP acceleration removes the Iterative Compaction
// bottleneck, which our Fig. 12 result substantiates.
func Super(c *Context, runs *SystemRuns) (*Report, error) {
	const (
		paperNMPSeconds   = 4813.0
		paperSuperSeconds = 39.0
		paperNodes        = 1024.0
	)
	superSpeed := paperNMPSeconds / paperSuperSeconds
	throughputGain := paperNodes / superSpeed
	nmpSpeedup := float64(runs.CPUBaseline.Cycles) / float64(runs.NMPPaK.Cycles)
	text := fmt.Sprintf(
		"paper single-node NMP-PaK full-human time: %.0f s; PaKman on 1,024 nodes: %.0f s\n"+
			"supercomputer raw-speed advantage: %.1fx (paper: 123x)\n"+
			"throughput at equal resources (1,024 NMP nodes vs the supercomputer): %.1fx (paper: 8.3x)\n"+
			"our simulated compaction speedup underpinning the single-node time: %.1fx (paper: 16x)\n"+
			"with compaction at 63%% of supercomputer runtime, integrating NMP-PaK there\n"+
			"would yield 1/(1-0.63+0.63/%.0f) = %.2fx (paper: 2.46x)\n",
		paperNMPSeconds, paperSuperSeconds, superSpeed, throughputGain, nmpSpeedup,
		nmpSpeedup, 1/(1-0.63+0.63/nmpSpeedup))
	return &Report{
		ID: "super", Title: "Supercomputer comparison (§6.4)", Text: text,
		Measured: map[string]float64{
			"throughput_gain":   throughputGain,
			"raw_speed_deficit": superSpeed,
			"sc_integration":    1 / (1 - 0.63 + 0.63/nmpSpeedup),
		},
		Paper: map[string]float64{"throughput_gain": 8.3, "raw_speed_deficit": 123, "sc_integration": 2.46},
	}, nil
}

// Table3 renders the area/power table.
func Table3(c *Context) (*Report, error) {
	tab := &report.Table{
		Title:   "Area and power at 28 nm (Table 3)",
		Headers: []string{"component", "area mm^2", "power mW"},
	}
	for _, r := range power.Table3() {
		tab.AddRow(r.Name, fmt.Sprintf("%.3f", r.AreaMM2), fmt.Sprintf("%.1f", r.PowerMW))
	}
	s := power.Analyze(16)
	tab.AddRow("area overhead vs 100mm^2 buffer chip", report.Percent(s.AreaOverhead), "")
	tab.AddRow("power overhead vs 13W DIMM", "", report.Percent(s.PowerOverhead))
	area, pw := s.PEAreaMM2, s.PEPowerMW
	return &Report{
		ID: "table3", Title: "Area and power overhead", Text: tab.String(),
		Measured: map[string]float64{"pe_area_mm2": area, "pe_power_mw": pw,
			"area_overhead": s.AreaOverhead, "power_overhead": s.PowerOverhead},
		Paper: map[string]float64{"pe_area_mm2": 0.110, "pe_power_mw": 30.6,
			"area_overhead": 0.018, "power_overhead": 0.038},
	}, nil
}

// HybridReport analyzes the CPU-NMP split (§4.3: >1KB offload keeps CPU
// work at ~49.8% of NMP time, fully overlapped).
func HybridReport(c *Context) (*Report, error) {
	// Oversized MacroNodes emerge late in compaction, so the offload
	// analysis uses the fixed-point trace (as Fig. 7/8 do).
	tr, err := c.DeepTrace()
	if err != nil {
		return nil, err
	}
	tab := &report.Table{
		Title:   "Hybrid CPU-NMP split vs offload threshold",
		Headers: []string{"threshold", "CPU nodes", "CPU node frac", "CPU byte frac", "CPU/NMP time (model)"},
	}
	m := hybrid.DefaultOverlapModel()
	measured := map[string]float64{}
	for _, th := range []int{512, 1024, 2048, 4096} {
		s := hybrid.Split(tr, th)
		ratio := m.CPUOverNMP(s)
		tab.AddRow(fmt.Sprintf("%dB", th), s.NodesCPU, report.Percent(s.FracCPUNodes),
			report.Percent(s.FracCPUBytes), fmt.Sprintf("%.2f", ratio))
		if th == 1024 {
			measured["cpu_over_nmp_1KB"] = ratio
			measured["cpu_node_frac_1KB"] = s.FracCPUNodes
		}
	}
	// Simulated overlap at the paper's 1 KB threshold.
	res, err := nmp.Simulate(tr, nmp.DefaultConfig())
	if err != nil {
		return nil, err
	}
	hiddenFrac := float64(res.HiddenCPUIters) / float64(res.Iterations)
	simRatio := 0.0
	if res.NMPBusyCycles > 0 {
		simRatio = float64(res.CPUBusyCycles) / float64(res.NMPBusyCycles)
	}
	measured["sim_cpu_over_nmp"] = simRatio
	measured["hidden_iter_frac"] = hiddenFrac
	text := tab.String() + fmt.Sprintf(
		"simulated at 1KB threshold: CPU busy / NMP busy = %.2f; CPU hidden in %s of iterations\n",
		simRatio, report.Percent(hiddenFrac))
	return &Report{
		ID: "hybrid", Title: "Hybrid CPU-NMP processing (§4.3)", Text: text,
		Measured: measured,
		Paper:    map[string]float64{"cpu_over_nmp_1KB": 0.498},
	}, nil
}

// GPUCap reproduces the §6.6 capacity analysis: the largest batch fraction
// that fits GPU memory, using our measured footprint-per-input ratio at
// paper scale.
func GPUCap(c *Context) (*Report, error) {
	fpReport, err := Footprint(c)
	if err != nil {
		return nil, err
	}
	perInput := fpReport.Measured["footprint_per_input"]
	const humanInputGB = 383.0
	full := humanInputGB * perInput // GB footprint for the whole genome
	f40 := gpumodel.MaxBatchFraction(gpumodel.A100_40GB(), full*1e9)
	cfg80 := gpumodel.A100_40GB()
	cfg80.MemoryGB = 80
	f80 := gpumodel.MaxBatchFraction(cfg80, full*1e9)
	text := fmt.Sprintf(
		"measured footprint/input ratio: %.1fx -> full human footprint %.0f GB\n"+
			"max batch under A100-40GB: %s   under 80GB: %s (paper: <4%%)\n"+
			"Table 1 maps such batches to N50 ~1100-1200 vs 3535 at 10%% batches.\n",
		perInput, full, report.Percent(f40), report.Percent(f80))
	return &Report{
		ID: "gpucap", Title: "GPU memory-capacity analysis (§6.6)", Text: text,
		Measured: map[string]float64{"max_batch_40GB": f40, "max_batch_80GB": f80},
		Paper:    map[string]float64{"max_batch_80GB": 0.04},
	}, nil
}
