// Package kmer implements k-mer extraction and counting, the first stage of
// the PaKman pipeline (Fig. 2 A/B).
//
// Two implementations are provided:
//
//   - Count: the paper's refined algorithm (§4.5) — parallel sliding-window
//     extraction with per-worker vectors (precomputed read offsets),
//     preallocated merges, parallel radix sort, then duplicate counting.
//     This is the path behind the 416× k-mer counting speedup the paper
//     reports; every buffer is sized up front from read counts so the hot
//     loop performs no growth allocations.
//   - CountNaive: the prior-work flow the paper profiles as "W/O SW-opt" —
//     a single growing vector, serial extraction and serial comparison
//     sort.
//
// Counting also records read-terminal (k-1)-mers (how many reads begin and
// end at each (k-1)-mer), which MacroNode construction needs to place
// terminal prefix/suffix markers, and supports an error-pruning threshold
// (k-mers observed fewer than MinCount times are discarded), the mechanism
// that links batch size to contig quality in Table 1.
package kmer

import (
	"fmt"
	"slices"
	"sort"

	"nmppak/internal/dna"
	"nmppak/internal/par"
	"nmppak/internal/readsim"
)

// Config controls counting.
type Config struct {
	K        int // k-mer length; the paper uses 32
	Workers  int // parallel workers (<=0: GOMAXPROCS)
	MinCount uint32
}

// Counted is one distinct k-mer with its multiplicity.
type Counted struct {
	Km    dna.Kmer
	Count uint32
}

// TermCounts is a terminal-(k-1)-mer multiplicity table stored as a flat
// (kmer, count) vector sorted ascending by Km — built in one pass from the
// already-sorted terminal stream, replacing the hash maps the counting
// pass previously grew entry by entry.
type TermCounts []Counted

// Get returns the count recorded for km (0 when absent) by binary search.
func (t TermCounts) Get(km dna.Kmer) uint32 {
	lo, hi := 0, len(t)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t[mid].Km < km {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t) && t[lo].Km == km {
		return t[lo].Count
	}
	return 0
}

// Total sums all recorded counts.
func (t TermCounts) Total() uint64 {
	var s uint64
	for _, e := range t {
		s += uint64(e.Count)
	}
	return s
}

// Result is the outcome of a counting pass.
type Result struct {
	K     int
	Kmers []Counted // sorted ascending (lexicographic under A<C<T<G)
	// TermPrefix records, per (k-1)-mer x, the number of reads whose first
	// (k-1)-mer is x; TermSuffix the number whose last (k-1)-mer is x.
	// These become terminal extension counts in MacroNode construction.
	TermPrefix TermCounts
	TermSuffix TermCounts

	TotalExtracted int64 // raw k-mer instances before dedup
	PrunedKinds    int64 // distinct k-mers dropped by MinCount
	PrunedMass     int64 // instances dropped by MinCount
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 2 || c.K > dna.MaxK {
		return fmt.Errorf("kmer: K=%d out of range [2,%d]", c.K, dna.MaxK)
	}
	return nil
}

// Count runs the optimized parallel counting pass over reads.
func Count(reads []readsim.Read, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := par.Threads(cfg.Workers)

	// (a) Parallel sliding window with per-worker vectors, sizes
	// precomputed so each vector is allocated exactly once (§4.5 a, b).
	nChunks := w
	if nChunks > len(reads) {
		nChunks = len(reads)
	}
	if nChunks == 0 {
		nChunks = 1
	}
	type shard struct {
		kmers []uint64
		tp    []uint64 // raw terminal-prefix words, one per counted read
		ts    []uint64
	}
	shards := make([]shard, nChunks)
	chunk := (len(reads) + nChunks - 1) / nChunks
	par.For(nChunks, w, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			rlo, rhi := ci*chunk, (ci+1)*chunk
			if rhi > len(reads) {
				rhi = len(reads)
			}
			if rlo > rhi {
				rlo = rhi
			}
			total, terms := 0, 0
			for _, rd := range reads[rlo:rhi] {
				if n := rd.Seq.Len() - cfg.K + 1; n > 0 {
					total += n
					terms++
				}
			}
			sh := shard{
				kmers: make([]uint64, 0, total),
				tp:    make([]uint64, 0, terms),
				ts:    make([]uint64, 0, terms),
			}
			for _, rd := range reads[rlo:rhi] {
				ExtractInto(&sh.kmers, &sh.tp, &sh.ts, rd.Seq, cfg.K)
			}
			shards[ci] = sh
		}
	})

	// (b) Preallocated merge of the per-worker vectors.
	total, terms := 0, 0
	for i := range shards {
		total += len(shards[i].kmers)
		terms += len(shards[i].tp)
	}
	all := make([]uint64, 0, total)
	tpRaw := make([]uint64, 0, terms)
	tsRaw := make([]uint64, 0, terms)
	for i := range shards {
		all = append(all, shards[i].kmers...)
		tpRaw = append(tpRaw, shards[i].tp...)
		tsRaw = append(tsRaw, shards[i].ts...)
		shards[i] = shard{}
	}

	// (c) Parallel radix sort (the __gnu_parallel::sort substitute).
	ParallelSortUint64(all, w)

	res := &Result{
		K:              cfg.K,
		TotalExtracted: int64(total),
	}
	res.TermPrefix = countTerms(tpRaw, w)
	res.TermSuffix = countTerms(tsRaw, w)
	res.Kmers, res.PrunedKinds, res.PrunedMass = dedup(all, cfg.MinCount)
	return res, nil
}

// CountNaive runs the unoptimized flow: one growing vector, serial
// everything. Functionally identical to Count.
func CountNaive(reads []readsim.Read, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{K: cfg.K}
	var all, tpRaw, tsRaw []uint64 // deliberately not preallocated
	for _, rd := range reads {
		ExtractInto(&all, &tpRaw, &tsRaw, rd.Seq, cfg.K)
	}
	res.TotalExtracted = int64(len(all))
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(tpRaw, func(i, j int) bool { return tpRaw[i] < tpRaw[j] })
	sort.Slice(tsRaw, func(i, j int) bool { return tsRaw[i] < tsRaw[j] })
	res.TermPrefix = termsFromSorted(tpRaw)
	res.TermSuffix = termsFromSorted(tsRaw)
	res.Kmers, res.PrunedKinds, res.PrunedMass = dedup(all, cfg.MinCount)
	return res, nil
}

// ExtractInto appends all k-mers of seq to dst and the read's terminal
// (k-1)-mers to tp/ts (one word each per read of length >= k). Exported
// for internal/scaleout, whose per-node extraction must match this pass
// exactly for the sharded merge to reproduce the single-node result.
func ExtractInto(dst, tp, ts *[]uint64, seq dna.Seq, k int) {
	n := seq.Len()
	if n < k {
		return
	}
	km := dna.KmerFromSeq(seq, 0, k)
	*dst = append(*dst, uint64(km))
	*tp = append(*tp, uint64(km.Prefix()))
	for i := k; i < n; i++ {
		km = km.Roll(k, seq.At(i))
		*dst = append(*dst, uint64(km))
	}
	*ts = append(*ts, uint64(km.Suffix(k)))
}

// countTerms sorts a raw terminal word stream and collapses it into a
// TermCounts vector.
func countTerms(raw []uint64, workers int) TermCounts {
	ParallelSortUint64(raw, workers)
	return termsFromSorted(raw)
}

// CountTerms sorts a raw terminal word stream in place and collapses it
// into a TermCounts vector. Exported for internal/scaleout's per-node
// pre-aggregation, which must match Count's terminal accounting exactly.
func CountTerms(raw []uint64, workers int) TermCounts {
	return countTerms(raw, workers)
}

// MergeTerms combines several TermCounts vectors (each sorted, possibly
// overlapping) into one sorted vector with summed counts; nil when empty.
func MergeTerms(lists []TermCounts) TermCounts {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	all := make(TermCounts, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	sortCounted(all)
	w := 0
	for i := 0; i < len(all); {
		j, c := i+1, all[i].Count
		for j < len(all) && all[j].Km == all[i].Km {
			c += all[j].Count
			j++
		}
		all[w] = Counted{Km: all[i].Km, Count: c}
		w++
		i = j
	}
	return all[:w]
}

// sortCounted sorts a (kmer, count) vector ascending by Km.
func sortCounted(v []Counted) {
	slices.SortFunc(v, func(a, b Counted) int {
		switch {
		case a.Km < b.Km:
			return -1
		case a.Km > b.Km:
			return 1
		default:
			return 0
		}
	})
}

// SortCounted sorts a (kmer, count) vector ascending by Km; exported for
// the sharded counting path.
func SortCounted(v []Counted) { sortCounted(v) }

// termsFromSorted collapses an already-sorted terminal stream into an
// exactly-sized TermCounts vector (nil when empty).
func termsFromSorted(sorted []uint64) TermCounts {
	if len(sorted) == 0 {
		return nil
	}
	out := make(TermCounts, 0, countRuns(sorted))
	i := 0
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, Counted{Km: dna.Kmer(sorted[i]), Count: uint32(j - i)})
		i = j
	}
	return out
}

// countRuns returns the number of distinct values in a sorted slice.
func countRuns(sorted []uint64) int {
	if len(sorted) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			runs++
		}
	}
	return runs
}

// dedup collapses a sorted k-mer vector into (kmer, count) pairs, applying
// the MinCount pruning threshold. A counting pre-pass sizes the output
// exactly, so the result vector never grows.
func dedup(sorted []uint64, minCount uint32) (out []Counted, prunedKinds, prunedMass int64) {
	if minCount < 1 {
		minCount = 1
	}
	kept := 0
	i := 0
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if c := uint32(j - i); c >= minCount {
			kept++
		} else {
			prunedKinds++
			prunedMass += int64(c)
		}
		i = j
	}
	if kept == 0 {
		return nil, prunedKinds, prunedMass
	}
	out = make([]Counted, 0, kept)
	i = 0
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if c := uint32(j - i); c >= minCount {
			out = append(out, Counted{Km: dna.Kmer(sorted[i]), Count: c})
		}
		i = j
	}
	return out, prunedKinds, prunedMass
}

// Histogram returns counts bucketed by multiplicity (index = multiplicity,
// capped at len-1), useful for coverage diagnostics.
func Histogram(kmers []Counted, maxMult int) []int64 {
	h := make([]int64, maxMult+1)
	for _, kc := range kmers {
		m := int(kc.Count)
		if m > maxMult {
			m = maxMult
		}
		h[m]++
	}
	return h
}
