// Package kmer implements k-mer extraction and counting, the first stage of
// the PaKman pipeline (Fig. 2 A/B).
//
// Two implementations are provided:
//
//   - Count: the paper's refined algorithm (§4.5) — parallel sliding-window
//     extraction with per-worker vectors (precomputed read offsets),
//     preallocated merges, parallel sort, then duplicate counting. This is
//     the path behind the 416× k-mer counting speedup the paper reports.
//   - CountNaive: the prior-work flow the paper profiles as "W/O SW-opt" —
//     a single growing vector, serial extraction and serial sort.
//
// Counting also records read-terminal (k-1)-mers (how many reads begin and
// end at each (k-1)-mer), which MacroNode construction needs to place
// terminal prefix/suffix markers, and supports an error-pruning threshold
// (k-mers observed fewer than MinCount times are discarded), the mechanism
// that links batch size to contig quality in Table 1.
package kmer

import (
	"fmt"
	"sort"

	"nmppak/internal/dna"
	"nmppak/internal/par"
	"nmppak/internal/readsim"
)

// Config controls counting.
type Config struct {
	K        int // k-mer length; the paper uses 32
	Workers  int // parallel workers (<=0: GOMAXPROCS)
	MinCount uint32
}

// Counted is one distinct k-mer with its multiplicity.
type Counted struct {
	Km    dna.Kmer
	Count uint32
}

// Result is the outcome of a counting pass.
type Result struct {
	K     int
	Kmers []Counted // sorted ascending (lexicographic under A<C<T<G)
	// TermPrefix[x] is the number of reads whose first (k-1)-mer is x;
	// TermSuffix[x] the number whose last (k-1)-mer is x. These become
	// terminal extension counts in MacroNode construction.
	TermPrefix map[dna.Kmer]uint32
	TermSuffix map[dna.Kmer]uint32

	TotalExtracted int64 // raw k-mer instances before dedup
	PrunedKinds    int64 // distinct k-mers dropped by MinCount
	PrunedMass     int64 // instances dropped by MinCount
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 2 || c.K > dna.MaxK {
		return fmt.Errorf("kmer: K=%d out of range [2,%d]", c.K, dna.MaxK)
	}
	return nil
}

// Count runs the optimized parallel counting pass over reads.
func Count(reads []readsim.Read, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := par.Threads(cfg.Workers)

	// (a) Parallel sliding window with per-worker vectors, sizes
	// precomputed so each vector is allocated exactly once (§4.5 a, b).
	nChunks := w
	if nChunks > len(reads) {
		nChunks = len(reads)
	}
	if nChunks == 0 {
		nChunks = 1
	}
	type shard struct {
		kmers []uint64
		tp    map[dna.Kmer]uint32
		ts    map[dna.Kmer]uint32
	}
	shards := make([]shard, nChunks)
	chunk := (len(reads) + nChunks - 1) / nChunks
	par.For(nChunks, w, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			rlo, rhi := ci*chunk, (ci+1)*chunk
			if rhi > len(reads) {
				rhi = len(reads)
			}
			if rlo > rhi {
				rlo = rhi
			}
			total := 0
			for _, rd := range reads[rlo:rhi] {
				if n := rd.Seq.Len() - cfg.K + 1; n > 0 {
					total += n
				}
			}
			sh := shard{
				kmers: make([]uint64, 0, total),
				tp:    make(map[dna.Kmer]uint32),
				ts:    make(map[dna.Kmer]uint32),
			}
			for _, rd := range reads[rlo:rhi] {
				ExtractInto(&sh.kmers, sh.tp, sh.ts, rd.Seq, cfg.K)
			}
			shards[ci] = sh
		}
	})

	// (b) Preallocated merge of the per-worker vectors.
	total := 0
	for i := range shards {
		total += len(shards[i].kmers)
	}
	all := make([]uint64, 0, total)
	for i := range shards {
		all = append(all, shards[i].kmers...)
		shards[i].kmers = nil
	}

	// (c) Parallel sort (the __gnu_parallel::sort substitute).
	ParallelSortUint64(all, w)

	res := &Result{
		K:              cfg.K,
		TermPrefix:     make(map[dna.Kmer]uint32),
		TermSuffix:     make(map[dna.Kmer]uint32),
		TotalExtracted: int64(total),
	}
	for i := range shards {
		for k, c := range shards[i].tp {
			res.TermPrefix[k] += c
		}
		for k, c := range shards[i].ts {
			res.TermSuffix[k] += c
		}
	}
	res.Kmers, res.PrunedKinds, res.PrunedMass = dedup(all, cfg.MinCount)
	return res, nil
}

// CountNaive runs the unoptimized flow: one growing vector, serial
// everything. Functionally identical to Count.
func CountNaive(reads []readsim.Read, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		K:          cfg.K,
		TermPrefix: make(map[dna.Kmer]uint32),
		TermSuffix: make(map[dna.Kmer]uint32),
	}
	var all []uint64 // deliberately not preallocated
	for _, rd := range reads {
		ExtractInto(&all, res.TermPrefix, res.TermSuffix, rd.Seq, cfg.K)
	}
	res.TotalExtracted = int64(len(all))
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.Kmers, res.PrunedKinds, res.PrunedMass = dedup(all, cfg.MinCount)
	return res, nil
}

// ExtractInto appends all k-mers of seq to dst and records the terminal
// (k-1)-mers of the read in tp/ts. Exported for internal/scaleout, whose
// per-node extraction must match this pass exactly for the sharded merge
// to reproduce the single-node result.
func ExtractInto(dst *[]uint64, tp, ts map[dna.Kmer]uint32, seq dna.Seq, k int) {
	n := seq.Len()
	if n < k {
		return
	}
	km := dna.KmerFromSeq(seq, 0, k)
	*dst = append(*dst, uint64(km))
	tp[km.Prefix()]++
	for i := k; i < n; i++ {
		km = km.Roll(k, seq.At(i))
		*dst = append(*dst, uint64(km))
	}
	ts[km.Suffix(k)]++
}

// dedup collapses a sorted k-mer vector into (kmer, count) pairs, applying
// the MinCount pruning threshold.
func dedup(sorted []uint64, minCount uint32) (out []Counted, prunedKinds, prunedMass int64) {
	if minCount < 1 {
		minCount = 1
	}
	i := 0
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		c := uint32(j - i)
		if c >= minCount {
			out = append(out, Counted{Km: dna.Kmer(sorted[i]), Count: c})
		} else {
			prunedKinds++
			prunedMass += int64(c)
		}
		i = j
	}
	return out, prunedKinds, prunedMass
}

// Histogram returns counts bucketed by multiplicity (index = multiplicity,
// capped at len-1), useful for coverage diagnostics.
func Histogram(kmers []Counted, maxMult int) []int64 {
	h := make([]int64, maxMult+1)
	for _, kc := range kmers {
		m := int(kc.Count)
		if m > maxMult {
			m = maxMult
		}
		h[m]++
	}
	return h
}
