package kmer

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

// FuzzRadixVsSortSlice cross-checks the radix sort against sort.Slice on
// arbitrary word streams, including the short slices.Sort fallback and the
// skipped-pass path (high bytes all zero).
func FuzzRadixVsSortSlice(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(4))
	f.Add(func() []byte {
		// Large deterministic seed crossing the radixMinLen threshold, with
		// the top 16 bits zero so at least one pass is skipped.
		b := make([]byte, 8*(radixMinLen+100))
		r := rand.New(rand.NewSource(42))
		for i := 0; i+8 <= len(b); i += 8 {
			binary.LittleEndian.PutUint64(b[i:], r.Uint64()>>16)
		}
		return b
	}(), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		v := make([]uint64, len(data)/8)
		for i := range v {
			v[i] = binary.LittleEndian.Uint64(data[8*i:])
		}
		want := append([]uint64(nil), v...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		ParallelSortUint64(v, int(workers))
		for i := range v {
			if v[i] != want[i] {
				t.Fatalf("mismatch at %d: %#x want %#x (n=%d workers=%d)", i, v[i], want[i], len(v), workers)
			}
		}
	})
}

// TestRadixLargeRandom forces the parallel radix path (above radixMinLen)
// across worker counts and bit widths.
func TestRadixLargeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, shift := range []uint{0, 16, 40, 63} {
		for _, w := range []int{1, 3, 8, 64} {
			n := radixMinLen*2 + r.Intn(1000)
			v := make([]uint64, n)
			for i := range v {
				v[i] = r.Uint64() >> shift
			}
			want := append([]uint64(nil), v...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			ParallelSortUint64(v, w)
			for i := range v {
				if v[i] != want[i] {
					t.Fatalf("shift=%d w=%d: mismatch at %d", shift, w, i)
				}
			}
		}
	}
}

func benchWords(n int) []uint64 {
	r := rand.New(rand.NewSource(3))
	v := make([]uint64, n)
	for i := range v {
		v[i] = r.Uint64()
	}
	return v
}

// BenchmarkRadixSort measures the production sort on a counting-sized
// input (1M words ~ a 1M-instance k-mer batch).
func BenchmarkRadixSort(b *testing.B) {
	src := benchWords(1 << 20)
	v := make([]uint64, len(src))
	b.SetBytes(8 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(v, src)
		ParallelSortUint64(v, 0)
	}
}

// BenchmarkComparatorSort is the pre-radix baseline (sort.Slice with a
// closure comparator) on the same input, kept for the regression table.
func BenchmarkComparatorSort(b *testing.B) {
	src := benchWords(1 << 20)
	v := make([]uint64, len(src))
	b.SetBytes(8 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(v, src)
		sort.Slice(v, func(x, y int) bool { return v[x] < v[y] })
	}
}
