package kmer

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nmppak/internal/dna"
	"nmppak/internal/genome"
	"nmppak/internal/readsim"
)

func simReads(t testing.TB, length int, cov float64, errRate float64, seed int64) []readsim.Read {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: length, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: cov, ErrorRate: errRate, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return reads
}

// naiveMapCount is the reference implementation: a plain hash map.
func naiveMapCount(reads []readsim.Read, k int) map[dna.Kmer]uint32 {
	m := make(map[dna.Kmer]uint32)
	for _, rd := range reads {
		s := rd.Seq
		for i := 0; i+k <= s.Len(); i++ {
			m[dna.KmerFromSeq(s, i, k)]++
		}
	}
	return m
}

func TestCountMatchesNaiveMap(t *testing.T) {
	reads := simReads(t, 4000, 8, 0.01, 5)
	cfg := Config{K: 31, Workers: 4}
	res, err := Count(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveMapCount(reads, 31)
	if len(res.Kmers) != len(want) {
		t.Fatalf("distinct kmers %d want %d", len(res.Kmers), len(want))
	}
	for _, kc := range res.Kmers {
		if want[kc.Km] != kc.Count {
			t.Fatalf("kmer %s count %d want %d", kc.Km.StringK(31), kc.Count, want[kc.Km])
		}
	}
	// Sorted ascending.
	for i := 1; i < len(res.Kmers); i++ {
		if res.Kmers[i-1].Km >= res.Kmers[i].Km {
			t.Fatal("result not sorted strictly ascending")
		}
	}
}

func TestCountMatchesCountNaive(t *testing.T) {
	reads := simReads(t, 3000, 6, 0.005, 6)
	for _, minCount := range []uint32{0, 1, 2, 3} {
		cfg := Config{K: 32, Workers: 3, MinCount: minCount}
		a, err := Count(reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CountNaive(reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Kmers) != len(b.Kmers) {
			t.Fatalf("minCount=%d: distinct %d vs %d", minCount, len(a.Kmers), len(b.Kmers))
		}
		for i := range a.Kmers {
			if a.Kmers[i] != b.Kmers[i] {
				t.Fatalf("minCount=%d: entry %d differs", minCount, i)
			}
		}
		if a.TotalExtracted != b.TotalExtracted || a.PrunedKinds != b.PrunedKinds || a.PrunedMass != b.PrunedMass {
			t.Fatalf("stats differ: %+v vs %+v", a, b)
		}
	}
}

func TestTotalExtracted(t *testing.T) {
	reads := simReads(t, 2000, 4, 0, 7)
	res, err := Count(reads, Config{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(reads) * (100 - 32 + 1))
	if res.TotalExtracted != want {
		t.Fatalf("TotalExtracted = %d want %d", res.TotalExtracted, want)
	}
	var mass int64
	for _, kc := range res.Kmers {
		mass += int64(kc.Count)
	}
	if mass+res.PrunedMass != want {
		t.Fatalf("mass conservation: %d + %d != %d", mass, res.PrunedMass, want)
	}
}

func TestTerminalCounts(t *testing.T) {
	reads := simReads(t, 2000, 5, 0, 8)
	res, err := Count(reads, Config{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	tp, ts := res.TermPrefix.Total(), res.TermSuffix.Total()
	if int(tp) != len(reads) || int(ts) != len(reads) {
		t.Fatalf("terminal totals tp=%d ts=%d want %d", tp, ts, len(reads))
	}
	// Both vectors sorted strictly ascending.
	for i := 1; i < len(res.TermPrefix); i++ {
		if res.TermPrefix[i-1].Km >= res.TermPrefix[i].Km {
			t.Fatal("TermPrefix not sorted strictly ascending")
		}
	}
	for i := 1; i < len(res.TermSuffix); i++ {
		if res.TermSuffix[i-1].Km >= res.TermSuffix[i].Km {
			t.Fatal("TermSuffix not sorted strictly ascending")
		}
	}
	// Spot-check: the first read's first 31-mer must appear in TermPrefix.
	first := dna.KmerFromSeq(reads[0].Seq, 0, 31)
	if res.TermPrefix.Get(first) == 0 {
		t.Fatal("first read's leading 31-mer missing from TermPrefix")
	}
}

func TestPruningDropsErrorKmers(t *testing.T) {
	reads := simReads(t, 20000, 30, 0.01, 9)
	unpruned, err := Count(reads, Config{K: 32, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Count(reads, Config{K: 32, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.PrunedKinds == 0 {
		t.Fatal("expected some pruning with 1% errors")
	}
	if len(pruned.Kmers) >= len(unpruned.Kmers) {
		t.Fatal("pruning did not reduce distinct kmers")
	}
	// At 30x coverage, genuine k-mers survive: distinct count after pruning
	// should be near the genome's distinct 32-mers (~20000).
	if len(pruned.Kmers) < 15000 || len(pruned.Kmers) > 25000 {
		t.Fatalf("pruned distinct = %d, expected near 20000", len(pruned.Kmers))
	}
}

func TestCountValidation(t *testing.T) {
	if _, err := Count(nil, Config{K: 1}); err == nil {
		t.Fatal("expected error for K=1")
	}
	if _, err := Count(nil, Config{K: 33}); err == nil {
		t.Fatal("expected error for K=33")
	}
	res, err := Count(nil, Config{K: 32})
	if err != nil || len(res.Kmers) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
}

func TestTermCountsGet(t *testing.T) {
	tc := TermCounts{{Km: 2, Count: 1}, {Km: 5, Count: 3}, {Km: 9, Count: 2}}
	for km, want := range map[dna.Kmer]uint32{0: 0, 2: 1, 3: 0, 5: 3, 9: 2, 10: 0} {
		if got := tc.Get(km); got != want {
			t.Errorf("Get(%d) = %d, want %d", km, got, want)
		}
	}
	if TermCounts(nil).Get(1) != 0 {
		t.Error("nil TermCounts lookup must be 0")
	}
	if tc.Total() != 6 {
		t.Errorf("Total = %d, want 6", tc.Total())
	}
}

// TestCountAllocs pins the allocation count of one optimized counting
// pass: every buffer is pre-sized from read counts, so allocs/op must stay
// a small constant regardless of the k-mer volume.
func TestCountAllocs(t *testing.T) {
	reads := simReads(t, 20000, 10, 0.005, 12)
	cfg := Config{K: 31, Workers: 1, MinCount: 2}
	if _, err := Count(reads, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Count(reads, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// ~59k reads produce ~4M raw k-mer instances; the pass itself needs
	// only the shard vectors, the merge vectors, the radix scratch and the
	// three result vectors. 40 leaves headroom over the measured count
	// without letting per-element growth regressions through.
	if allocs > 40 {
		t.Errorf("Count allocated %v times per pass, want <= 40", allocs)
	}
}

func TestHistogram(t *testing.T) {
	kmers := []Counted{{1, 1}, {2, 1}, {3, 2}, {4, 9}}
	h := Histogram(kmers, 4)
	if h[1] != 2 || h[2] != 1 || h[4] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestParallelSortUint64(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 100, 4095, 4096, 100000} {
		for _, w := range []int{1, 2, 7, 16} {
			v := make([]uint64, n)
			for i := range v {
				v[i] = r.Uint64() % 1000
			}
			want := append([]uint64(nil), v...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			ParallelSortUint64(v, w)
			for i := range v {
				if v[i] != want[i] {
					t.Fatalf("n=%d w=%d: mismatch at %d", n, w, i)
				}
			}
		}
	}
}

func TestParallelSortProperty(t *testing.T) {
	f := func(v []uint64) bool {
		ParallelSortUint64(v, 8)
		return sort.SliceIsSorted(v, func(i, j int) bool { return v[i] < v[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
