package kmer

import (
	"sort"
	"sync"
)

// ParallelSortUint64 sorts v ascending using a chunked parallel sort
// followed by pairwise parallel merges — the stdlib-only substitute for the
// __gnu_parallel::sort the paper's optimized k-mer counting uses (§4.5 c).
func ParallelSortUint64(v []uint64, workers int) {
	if workers <= 1 || len(v) < 4096 {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return
	}
	// Round chunk count down to a power of two so merges pair cleanly.
	chunks := 1
	for chunks*2 <= workers {
		chunks *= 2
	}
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = len(v) * i / chunks
	}
	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := v[lo:hi]
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()

	// log2(chunks) rounds of pairwise merges, each round in parallel.
	buf := make([]uint64, len(v))
	src, dst := v, buf
	for width := 1; width < chunks; width *= 2 {
		var mwg sync.WaitGroup
		for i := 0; i+width <= chunks; i += 2 * width {
			lo, mid := bounds[i], bounds[i+width]
			hi := len(v)
			if i+2*width <= chunks {
				hi = bounds[i+2*width]
			}
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				mergeUint64(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(lo, mid, hi)
		}
		mwg.Wait()
		src, dst = dst, src
	}
	if &src[0] != &v[0] {
		copy(v, src)
	}
}

// mergeUint64 merges two sorted runs a and b into out (len(out) must equal
// len(a)+len(b)).
func mergeUint64(out, a, b []uint64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}
