// Parallel radix sort for packed k-mer words — the stdlib-only substitute
// for the __gnu_parallel::sort the paper's optimized k-mer counting uses
// (§4.5 c), rebuilt as a least-significant-digit radix sort so the hot
// counting path performs no comparator calls at all.
package kmer

import (
	"slices"

	"nmppak/internal/par"
)

const (
	radixBits    = 11
	radixBuckets = 1 << radixBits // 2048 buckets per pass
	radixMask    = radixBuckets - 1

	// Below this size a comparison sort wins over the histogram setup.
	radixMinLen = 4096
)

// ParallelSortUint64 sorts v ascending. Large inputs take a parallel LSD
// radix sort: per-worker 2048-bucket histograms, a prefix-summed scatter
// into disjoint output regions, and one ping-pong buffer reused across all
// passes. Passes above the highest set bit of the input are skipped, as
// are passes whose digit is zero everywhere, so k<32 k-mer sets pay only
// for the bits they use. Small inputs fall back to slices.Sort.
func ParallelSortUint64(v []uint64, workers int) {
	if len(v) < radixMinLen {
		slices.Sort(v)
		return
	}
	w := par.Threads(workers)
	// Keep per-worker chunks comfortably larger than the bucket table.
	if maxW := len(v) / (radixBuckets * 8); w > maxW {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	radixSortUint64(v, w)
}

// radixSortUint64 is the multi-pass scatter kernel behind
// ParallelSortUint64.
func radixSortUint64(v []uint64, w int) {
	n := len(v)
	bounds := make([]int, w+1)
	for i := 0; i <= w; i++ {
		bounds[i] = n * i / w
	}

	// Highest used bit determines the pass count (parallel OR-reduction).
	ors := make([]uint64, w)
	par.For(w, w, func(lo, hi int) {
		for wi := lo; wi < hi; wi++ {
			var o uint64
			for _, x := range v[bounds[wi]:bounds[wi+1]] {
				o |= x
			}
			ors[wi] = o
		}
	})
	var or uint64
	for _, o := range ors {
		or |= o
	}
	passes := 0
	for m := or; m != 0; m >>= radixBits {
		passes++
	}
	if passes == 0 {
		return // all zero: already sorted
	}

	buf := make([]uint64, n)
	// counts[wi*radixBuckets+b] is worker wi's histogram count for bucket
	// b, converted in place into its scatter cursor by the prefix sum.
	counts := make([]int, w*radixBuckets)
	src, dst := v, buf
	for p := 0; p < passes; p++ {
		shift := uint(p) * radixBits
		if or>>shift&radixMask == 0 {
			continue // no element has a nonzero digit in this pass
		}
		par.For(w, w, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				cnt := counts[wi*radixBuckets : (wi+1)*radixBuckets : (wi+1)*radixBuckets]
				clear(cnt)
				for _, x := range src[bounds[wi]:bounds[wi+1]] {
					cnt[x>>shift&radixMask]++
				}
			}
		})
		// Prefix sum in bucket-major order: all of bucket b's elements come
		// before bucket b+1's, and within a bucket worker wi's elements come
		// before worker wi+1's (chunks are scanned in index order).
		running := 0
		for b := 0; b < radixBuckets; b++ {
			for wi := 0; wi < w; wi++ {
				i := wi*radixBuckets + b
				c := counts[i]
				counts[i] = running
				running += c
			}
		}
		par.For(w, w, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				cur := counts[wi*radixBuckets : (wi+1)*radixBuckets : (wi+1)*radixBuckets]
				for _, x := range src[bounds[wi]:bounds[wi+1]] {
					b := x >> shift & radixMask
					dst[cur[b]] = x
					cur[b]++
				}
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &v[0] {
		copy(v, src)
	}
}
