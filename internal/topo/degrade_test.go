package topo

import (
	"strings"
	"testing"
)

// An untouched Degraded wrapper must be invisible: identical exchange
// stats on every topology, and re-wrapping returns the same instance.
func TestDegradedHealthyIsTransparent(t *testing.T) {
	bytes := mat(8)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d {
				bytes[s][d] = 5_000
			}
		}
	}
	for _, c := range []Config{testLink(FullMesh), testLink(Torus2D), testLink(Dragonfly)} {
		net := build(t, c, 8)
		d := NewDegraded(net)
		if NewDegraded(d) != d {
			t.Fatalf("%s: re-wrapping must return the same Degraded", net.Name())
		}
		want := Exchange(net, bytes)
		if got := Exchange(d, bytes); got != want {
			t.Fatalf("%s: healthy Degraded exchange %+v, want %+v", net.Name(), got, want)
		}
		if d.Name() != net.Name() || d.BarrierCycles() != net.BarrierCycles() {
			t.Fatalf("%s: wrapper changed name or barrier", net.Name())
		}
	}
}

// Slowing a route stretches exactly the reservations on its links: on the
// two-node mesh every number is computable by hand, and degradations of
// the same link compound.
func TestSlowStretchesExchange(t *testing.T) {
	bytes := mat(2)
	bytes[0][1] = 1000
	d := NewDegraded(build(t, testLink(FullMesh), 2))
	// Healthy: egress 101 + latency 100 + ingress 101 = 302.
	if st := Exchange(d, bytes); st.Cycles != 302 {
		t.Fatalf("healthy cycles = %d, want 302", st.Cycles)
	}
	// Half bandwidth on egress0 and ingress1: 202 + 100 + 202 = 504.
	if err := d.Slow(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if st := Exchange(d, bytes); st.Cycles != 504 {
		t.Fatalf("degraded cycles = %d, want 504", st.Cycles)
	}
	// Compounding: another halving quarters the bandwidth, 404 + 100 + 404.
	if err := d.Slow(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if st := Exchange(d, bytes); st.Cycles != 908 {
		t.Fatalf("doubly degraded cycles = %d, want 908", st.Cycles)
	}
	// The reverse channel is untouched.
	back := mat(2)
	back[1][0] = 1000
	if st := Exchange(d, back); st.Cycles != 302 {
		t.Fatalf("reverse cycles = %d, want 302", st.Cycles)
	}
	for _, tc := range []struct {
		name string
		err  error
		want string
	}{
		{"factor 0", d.Slow(0, 1, 0), "factor"},
		{"factor >1", d.Slow(0, 1, 1.5), "factor"},
		{"out of range", d.Slow(0, 9, 0.5), "outside"},
		{"self", d.Slow(1, 1, 0.5), "local path"},
	} {
		if tc.err == nil || !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, tc.err, tc.want)
		}
	}
}

// Cutting a torus channel reroutes traffic deterministically around the
// cut without touching the endpoints' ports, and the detoured network
// still completes a full exchange.
func TestCutReroutesOnTorus(t *testing.T) {
	d := NewDegraded(build(t, testLink(Torus2D), 8)) // torus4x2
	base := d.AppendRoute(nil, 0, 1)
	if err := d.CutRoute(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(nil); err != nil {
		t.Fatalf("single channel cut must not disconnect the torus: %v", err)
	}
	detour := d.AppendRoute(nil, 0, 1)
	if len(detour) <= len(base) {
		t.Fatalf("detour %v not longer than base route %v", detour, base)
	}
	if detour[0] != base[0] || detour[len(detour)-1] != base[len(base)-1] {
		t.Fatalf("detour %v does not keep the endpoints of %v", detour, base)
	}
	for _, l := range detour {
		if d.cut[l] {
			t.Fatalf("detour %v crosses cut link %d", detour, l)
		}
	}
	again := d.AppendRoute(nil, 0, 1)
	for i := range detour {
		if again[i] != detour[i] {
			t.Fatalf("detour not deterministic: %v vs %v", again, detour)
		}
	}
	if !d.Routable(0, 1) || !d.Routable(1, 0) {
		t.Fatal("cut pair must remain routable")
	}
	bytes := mat(8)
	for s := 0; s < 8; s++ {
		for dst := 0; dst < 8; dst++ {
			if s != dst {
				bytes[s][dst] = 5_000
			}
		}
	}
	healthy := Exchange(build(t, testLink(Torus2D), 8), bytes)
	cut := Exchange(d, bytes)
	if cut.TotalBytes != healthy.TotalBytes || cut.Messages != healthy.Messages {
		t.Fatalf("cut network moved different traffic: %+v vs %+v", cut, healthy)
	}
	if cut.Cycles < healthy.Cycles {
		t.Fatalf("detoured exchange %d cycles beat the healthy %d", cut.Cycles, healthy.Cycles)
	}
	if rerun := Exchange(d, bytes); rerun != cut {
		t.Fatalf("cut exchange not deterministic: %+v vs %+v", rerun, cut)
	}
}

// A full-mesh route is port-to-port, so cutting it severs the endpoints:
// Verify reports the disconnection, a live mask excluding both endpoints
// clears it, and routing across the cut panics.
func TestCutDisconnectsOnFullMesh(t *testing.T) {
	d := NewDegraded(build(t, testLink(FullMesh), 4))
	if err := d.CutRoute(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Routable(0, 1) {
		t.Fatal("cut mesh pair should not be routable")
	}
	err := d.Verify(nil)
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("Verify = %v, want a disconnection error", err)
	}
	// Node 0 lost its egress port and node 1 its ingress port; with both
	// out of the run the survivors are whole.
	if err := d.Verify([]bool{false, false, true, true}); err != nil {
		t.Fatalf("survivors 2,3 should verify: %v", err)
	}
	// Node 1 can still send (egress intact) but never receive.
	if err := d.Verify([]bool{false, true, true, true}); err == nil {
		t.Fatal("node 1 lost its ingress; Verify should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRoute across a disconnected pair must panic")
		}
	}()
	d.AppendRoute(nil, 0, 1)
}
