// Package topo models the scale-out interconnect as a routed network of
// serializing links, replacing the flat full-mesh LinkConfig that
// internal/scaleout started with. A Network is a static set of directed
// links plus a minimal-routing function; messages traverse their route
// store-and-forward, holding each link for bytes/BytesPerCycle cycles and
// paying LatencyCycles between consecutive links, with per-link
// contention resolved in deterministic arrival order on the internal/sim
// event kernel. Three topologies are provided:
//
//   - FullMesh: every node pair joined by a dedicated wire; a message
//     crosses only its source's egress port and its destination's ingress
//     port. This is cycle-exact with the pre-refactor LinkConfig model
//     (golden-pinned by the scaleout and experiments tests).
//   - Torus2D: an X×Y wraparound grid with dimension-order (x then y)
//     routing; messages share the per-node directed channels of every
//     intermediate hop, so neighboring traffic contends even when sources
//     and destinations differ.
//   - Dragonfly: groups of GroupSize nodes, each group an all-to-all
//     clique, with one global channel per ordered group pair hosted by a
//     deterministic gateway node; minimal routing goes local → global →
//     local, concentrating inter-group traffic on the global channels.
//
// The same occupancy discipline prices both the analytic all-to-all
// exchanges (Exchange) and the event-driven streaming of the overlapped
// scale-out runtime (Flight), so BSP and overlapped replays see one
// consistent network model.
package topo

import (
	"fmt"

	"nmppak/internal/sim"
)

// Kind selects a topology family.
type Kind int

const (
	// FullMesh is a dedicated wire per node pair (the PR 3 model).
	FullMesh Kind = iota
	// Torus2D is an X×Y wraparound grid with dimension-order routing.
	Torus2D
	// Dragonfly is all-to-all groups joined by per-group-pair global links.
	Dragonfly
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case FullMesh:
		return "fullmesh"
	case Torus2D:
		return "torus2d"
	case Dragonfly:
		return "dragonfly"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config declares an interconnect: a topology family, its shape, and the
// per-link parameters every topology shares. The zero shape fields select
// an automatic shape (near-square torus, near-square dragonfly groups),
// so the same Config can be reused across machine sizes.
type Config struct {
	Kind Kind
	// LatencyCycles is the wire/router latency paid between consecutive
	// links of a route (1600 cy = 1 us at 1.6 GHz).
	LatencyCycles sim.Cycle
	// BytesPerCycle is the per-link bandwidth (15.625 B/cy = 25 GB/s).
	BytesPerCycle float64
	// TorusX, TorusY are the Torus2D dimensions; both zero auto-factors
	// the node count into the most nearly square grid.
	TorusX, TorusY int
	// GroupSize is the Dragonfly group size; zero picks the smallest
	// divisor of the node count that is >= sqrt(node count).
	GroupSize int
}

// Default returns the default interconnect: a 25 GB/s, 1 us full mesh —
// a 200 Gb/s-class NIC with RDMA-ish latency, identical to the
// pre-refactor DefaultLink.
func Default() Config {
	return Config{Kind: FullMesh, LatencyCycles: 1600, BytesPerCycle: 15.625}
}

// Torus returns the default link parameters on an X×Y torus (zero dims:
// auto near-square).
func Torus(x, y int) Config {
	c := Default()
	c.Kind = Torus2D
	c.TorusX, c.TorusY = x, y
	return c
}

// DragonflyGroups returns the default link parameters on a dragonfly with
// the given group size (zero: auto).
func DragonflyGroups(groupSize int) Config {
	c := Default()
	c.Kind = Dragonfly
	c.GroupSize = groupSize
	return c
}

// torusShape resolves the configured torus dimensions for n nodes: both
// zero picks the most nearly square factoring of n (X >= Y).
func (c Config) torusShape(n int) (x, y int) {
	x, y = c.TorusX, c.TorusY
	if x == 0 && y == 0 {
		for y = intSqrt(n); y > 1; y-- {
			if n%y == 0 {
				break
			}
		}
		if y < 1 {
			y = 1
		}
		x = n / y
	}
	return x, y
}

// dragonflyShape resolves the configured group size for n nodes: zero
// picks the smallest divisor of n that is >= sqrt(n) (so groups are at
// least as wide as they are many, the canonical dragonfly balance).
func (c Config) dragonflyShape(n int) (groupSize int) {
	g := c.GroupSize
	if g == 0 {
		start := intSqrt(n)
		if start*start < n {
			start++ // ceil(sqrt(n))
		}
		for g = start; g < n; g++ {
			if n%g == 0 {
				break
			}
		}
		if g < 1 || n%g != 0 {
			g = n
		}
	}
	return g
}

// Validate checks the configuration against a machine size, rejecting
// impossible shapes: a torus whose dimensions do not multiply to the node
// count (including half-specified dimensions) and a dragonfly group size
// that does not divide it.
func (c Config) Validate(nodes int) error {
	if nodes < 1 {
		return fmt.Errorf("topo: node count must be >= 1, got %d", nodes)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("topo: link bandwidth must be positive, got %v", c.BytesPerCycle)
	}
	if c.LatencyCycles < 0 {
		return fmt.Errorf("topo: link latency must be non-negative, got %d", c.LatencyCycles)
	}
	switch c.Kind {
	case FullMesh:
	case Torus2D:
		if c.TorusX < 0 || c.TorusY < 0 {
			return fmt.Errorf("topo: torus dimensions must be non-negative, got %dx%d", c.TorusX, c.TorusY)
		}
		x, y := c.torusShape(nodes)
		if x < 1 || y < 1 || x*y != nodes {
			return fmt.Errorf("topo: torus %dx%d is not a rectangular tiling of %d nodes", x, y, nodes)
		}
	case Dragonfly:
		if c.GroupSize < 0 {
			return fmt.Errorf("topo: dragonfly group size must be non-negative, got %d", c.GroupSize)
		}
		g := c.dragonflyShape(nodes)
		if g < 1 || nodes%g != 0 {
			return fmt.Errorf("topo: dragonfly group size %d does not divide %d nodes", g, nodes)
		}
	default:
		return fmt.Errorf("topo: unknown topology kind %d", int(c.Kind))
	}
	return nil
}

// Build validates the configuration and constructs the Network instance
// for an n-node machine.
func (c Config) Build(nodes int) (Network, error) {
	if err := c.Validate(nodes); err != nil {
		return nil, err
	}
	ls := linkSpec{n: nodes, lat: c.LatencyCycles, bpc: c.BytesPerCycle}
	switch c.Kind {
	case Torus2D:
		x, y := c.torusShape(nodes)
		ls.links = 2*nodes + 4*nodes
		return &torus2D{linkSpec: ls, x: x, y: y}, nil
	case Dragonfly:
		g := c.dragonflyShape(nodes)
		groups := nodes / g
		ls.links = 2*nodes + groups*g*(g-1) + groups*(groups-1)
		return &dragonfly{linkSpec: ls, g: g, groups: groups}, nil
	default:
		ls.links = 2 * nodes
		return &fullMesh{linkSpec: ls}, nil
	}
}

// intSqrt returns floor(sqrt(n)) for small non-negative n.
func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// ceilLog2 returns ceil(log2 n), 0 for n <= 1.
func ceilLog2(n int) int {
	h := 0
	for c := 1; c < n; c <<= 1 {
		h++
	}
	return h
}
