package topo

import (
	"slices"
	"testing"

	"nmppak/internal/sim"
)

// FuzzRoute drives arbitrary (topology, machine size, src, dst, message
// size) tuples through the routing and occupancy layer and asserts the
// structural invariants every topology must uphold:
//
//   - the returned path is walkable: it starts at src's egress port, ends
//     at dst's ingress port, and every intermediate channel leaves the
//     node the previous hop arrived at (adjacency, checked by decoding
//     each topology's link numbering and walking a cursor from src to
//     dst);
//   - link IDs are in range and never repeat (routes are minimal);
//   - paths are deterministic for (src, dst), across calls and across
//     independently built Network instances;
//   - store-and-forward occupancy conserves the message: every hop holds
//     its link for exactly Dur(bytes) — the full message crosses every
//     link of the path — while Exchange accounts the payload once
//     (TotalBytes equals the message bytes, not bytes × hops), and an
//     uncontended delivery lands at the closed-form time
//     Dur + (hops-1) × (Latency + Dur).
func FuzzRoute(f *testing.F) {
	f.Add(uint8(0), uint8(8), uint16(0), uint16(5), uint32(4096))
	f.Add(uint8(1), uint8(8), uint16(3), uint16(6), uint32(1))
	f.Add(uint8(1), uint8(12), uint16(11), uint16(4), uint32(100_000))
	f.Add(uint8(2), uint8(8), uint16(1), uint16(7), uint32(777))
	f.Add(uint8(2), uint8(16), uint16(15), uint16(2), uint32(64))
	f.Add(uint8(2), uint8(63), uint16(9), uint16(41), uint32(8))
	f.Fuzz(func(t *testing.T, kind, n uint8, src, dst uint16, msgBytes uint32) {
		nodes := int(n)%64 + 1
		var cfg Config
		switch kind % 3 {
		case 0:
			cfg = Default()
		case 1:
			cfg = Torus(0, 0)
		case 2:
			cfg = DragonflyGroups(0)
		}
		net, err := cfg.Build(nodes)
		if err != nil {
			t.Fatalf("auto-shaped %v rejected %d nodes: %v", cfg.Kind, nodes, err)
		}
		s, d := int(src)%nodes, int(dst)%nodes
		if s == d {
			return // local data never enters the network
		}

		path := net.AppendRoute(nil, s, d)
		if len(path) < 2 {
			t.Fatalf("%s: route %d->%d has %d links", net.Name(), s, d, len(path))
		}
		for _, l := range path {
			if l < 0 || l >= net.NumLinks() {
				t.Fatalf("%s: route %d->%d uses link %d of %d", net.Name(), s, d, l, net.NumLinks())
			}
		}
		seen := make(map[int]bool, len(path))
		for _, l := range path {
			if seen[l] {
				t.Fatalf("%s: route %d->%d crosses link %d twice", net.Name(), s, d, l)
			}
			seen[l] = true
		}
		walkRoute(t, net, path, s, d)

		// Determinism: same instance and an independently built twin.
		if again := net.AppendRoute(nil, s, d); !slices.Equal(path, again) {
			t.Fatalf("%s: route %d->%d not deterministic: %v vs %v", net.Name(), s, d, path, again)
		}
		twin, err := cfg.Build(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if tp := twin.AppendRoute(nil, s, d); !slices.Equal(path, tp) {
			t.Fatalf("%s: route %d->%d differs across instances: %v vs %v", net.Name(), s, d, path, tp)
		}

		// The per-pair PDES lookahead bound is the closed-form minimum of
		// the pair's actual route: len(path) links of at least one cycle
		// each, LatencyCycles between consecutive links.
		pm := net.PairMinLatency(s, d)
		if want := routeBound(len(path), net.LatencyCycles()); pm != want {
			t.Fatalf("%s: PairMinLatency(%d,%d) = %d, route has %d links -> want %d",
				net.Name(), s, d, pm, len(path), want)
		}
		if min := net.MinLatency(); pm < min {
			t.Fatalf("%s: PairMinLatency(%d,%d) = %d below MinLatency %d", net.Name(), s, d, pm, min)
		}

		// Occupancy: a single uncontended message holds every path link for
		// exactly Dur(b), store-and-forward, and lands at the closed-form
		// delivery time.
		b := int64(msgBytes%1_000_000) + 1
		eng := &sim.Engine{}
		fl := NewFlight(net, eng)
		delivered := sim.Cycle(-1)
		fl.Send(s, d, b, func() { delivered = eng.Now() })
		eng.Run()
		dur := fl.Dur(b)
		end := dur // link 0 is reserved at Send time, from cycle 0
		for h := 1; h < len(path); h++ {
			if fl.free[path[h-1]] != end {
				t.Fatalf("%s: link %d held until %d, want %d (hop bytes must equal message bytes)",
					net.Name(), path[h-1], fl.free[path[h-1]], end)
			}
			end += net.LatencyCycles() + dur
		}
		if fl.free[path[len(path)-1]] != end {
			t.Fatalf("%s: final link %d held until %d, want %d", net.Name(), path[len(path)-1], fl.free[path[len(path)-1]], end)
		}
		if delivered != end {
			t.Fatalf("%s: %d bytes %d->%d delivered at %d, want Dur+(hops-1)*(lat+Dur) = %d",
				net.Name(), b, s, d, delivered, end)
		}
		if delivered < pm {
			t.Fatalf("%s: %d bytes %d->%d delivered at %d, below PairMinLatency %d",
				net.Name(), b, s, d, delivered, pm)
		}
		for l, free := range fl.free {
			if free != 0 && !seen[l] {
				t.Fatalf("%s: off-route link %d was reserved until %d", net.Name(), l, free)
			}
		}

		// Exchange accounts the payload once, not once per hop.
		m := make([][]int64, nodes)
		for i := range m {
			m[i] = make([]int64, nodes)
		}
		m[s][d] = b
		st := Exchange(net, m)
		if st.TotalBytes != b || st.Messages != 1 {
			t.Fatalf("%s: Exchange counted %d bytes / %d messages for one %d-byte message",
				net.Name(), st.TotalBytes, st.Messages, b)
		}
		if st.Cycles != end {
			t.Fatalf("%s: Exchange finished at %d, single-message delivery is at %d", net.Name(), st.Cycles, end)
		}
	})
}

// walkRoute validates adjacency by decoding the topology's link numbering
// and walking a cursor along the path: every hop must leave the node the
// previous hop arrived at, and the walk must end at dst.
func walkRoute(t *testing.T, net Network, path []int, src, dst int) {
	t.Helper()
	n := net.Nodes()
	if path[0] != src {
		t.Fatalf("%s: route %d->%d starts at link %d, want egress port %d", net.Name(), src, dst, path[0], src)
	}
	if last := path[len(path)-1]; last != n+dst {
		t.Fatalf("%s: route %d->%d ends at link %d, want ingress port %d", net.Name(), src, dst, last, n+dst)
	}
	mid := path[1 : len(path)-1]
	cur := src
	switch m := net.(type) {
	case *fullMesh:
		if len(mid) != 0 {
			t.Fatalf("fullmesh: route %d->%d has intermediate links %v", src, dst, mid)
		}
		cur = dst // every node pair is joined by a dedicated wire
	case *torus2D:
		cx, cy := cur%m.x, cur/m.x
		for _, l := range mid {
			off := l - 2*n
			if off < 0 || off >= 4*n {
				t.Fatalf("%s: link %d is not a torus channel", net.Name(), l)
			}
			node, dir := off/4, off%4
			if node != cy*m.x+cx {
				t.Fatalf("%s: hop leaves node %d but cursor is at node %d — not adjacent", net.Name(), node, cy*m.x+cx)
			}
			switch dir {
			case dirXPlus:
				cx = (cx + 1) % m.x
			case dirXMinus:
				cx = (cx + m.x - 1) % m.x
			case dirYPlus:
				cy = (cy + 1) % m.y
			case dirYMinus:
				cy = (cy + m.y - 1) % m.y
			}
		}
		cur = cy*m.x + cx
	case *dragonfly:
		if len(mid) == 0 {
			if src/m.g != dst/m.g {
				t.Fatalf("%s: inter-group route %d->%d crosses no channels", net.Name(), src, dst)
			}
			cur = dst // intra-group pairs are a clique: dedicated wire
			break
		}
		locals := m.groups * m.g * (m.g - 1)
		for _, l := range mid {
			off := l - 2*n
			switch {
			case off >= 0 && off < locals:
				grp := off / (m.g * (m.g - 1))
				rem := off % (m.g * (m.g - 1))
				u, v := rem/(m.g-1), rem%(m.g-1)
				if v >= u {
					v++
				}
				if cur != grp*m.g+u {
					t.Fatalf("%s: local channel leaves node %d but cursor is at %d — not adjacent", net.Name(), grp*m.g+u, cur)
				}
				cur = grp*m.g + v
			case off >= locals && off < locals+m.groups*(m.groups-1):
				goff := off - locals
				a, bb := goff/(m.groups-1), goff%(m.groups-1)
				if bb >= a {
					bb++
				}
				if gw := a*m.g + bb%m.g; cur != gw {
					t.Fatalf("%s: global channel %d->%d leaves gateway %d but cursor is at %d — not adjacent", net.Name(), a, bb, gw, cur)
				}
				cur = bb*m.g + a%m.g
			default:
				t.Fatalf("%s: link %d is neither a local nor a global channel", net.Name(), l)
			}
		}
	default:
		t.Fatalf("unknown topology type %T", net)
	}
	if cur != dst {
		t.Fatalf("%s: route %d->%d walks to node %d instead", net.Name(), src, dst, cur)
	}
}
