package topo

import (
	"strings"
	"testing"

	"nmppak/internal/sim"
)

func mat(n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	return m
}

func build(t *testing.T, c Config, n int) Network {
	t.Helper()
	net, err := c.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testLink is the 10 B/cy, 100 cy configuration the pre-refactor
// LinkConfig exchange test pinned its numbers against.
func testLink(k Kind) Config {
	return Config{Kind: k, LatencyCycles: 100, BytesPerCycle: 10}
}

// The full mesh must reproduce the pre-refactor LinkConfig exchange model
// cycle for cycle: these are the exact numbers the old
// scaleout.TestExchangeModel pinned.
func TestFullMeshExchangeModel(t *testing.T) {
	lc := testLink(FullMesh)
	if st := Exchange(build(t, lc, 1), mat(1)); st.Cycles != 0 || st.TotalBytes != 0 {
		t.Fatalf("1-node exchange should be free, got %+v", st)
	}
	// Two nodes, one message each way: 1000 B -> 101 cy egress (100 + 1
	// launch) + 100 latency + 101 cy ingress = 302.
	bytes := mat(2)
	bytes[0][1] = 1000
	bytes[1][0] = 1000
	st := Exchange(build(t, lc, 2), bytes)
	if st.Cycles != 302 {
		t.Fatalf("exchange cycles = %d, want 302", st.Cycles)
	}
	if st.TotalBytes != 2000 || st.Messages != 2 || st.MaxEgressBytes != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	// Ingress contention: two senders to one receiver serialize at the
	// receiver, 302 + 101 = 403.
	bytes = mat(3)
	bytes[0][2] = 1000
	bytes[1][2] = 1000
	st = Exchange(build(t, lc, 3), bytes)
	if st.Cycles != 403 {
		t.Fatalf("contended exchange cycles = %d, want 403", st.Cycles)
	}
	if build(t, lc, 1).BarrierCycles() != 0 {
		t.Fatal("1-node barrier must be free")
	}
	if got := build(t, lc, 8).BarrierCycles(); got != 2*3*100 {
		t.Fatalf("8-node barrier = %d, want 600", got)
	}
	if build(t, lc, 5).BarrierCycles() != build(t, lc, 8).BarrierCycles() {
		t.Fatal("5 nodes needs the same tree depth as 8")
	}
	// Degenerate dragonfly shapes collapse to their actual worst routes:
	// single-node groups skip the local forwarding hops (2 latency
	// transitions: egress -> global -> ingress), a single group is a
	// clique priced like the mesh (1).
	dfly := func(g int) Config {
		c := testLink(Dragonfly)
		c.GroupSize = g
		return c
	}
	if got := build(t, dfly(1), 8).BarrierCycles(); got != 2*3*100*2 {
		t.Fatalf("single-node-group dragonfly barrier = %d, want 1200", got)
	}
	if got := build(t, dfly(8), 8).BarrierCycles(); got != 2*3*100 {
		t.Fatalf("single-group dragonfly barrier = %d, want 600", got)
	}
	if got := build(t, dfly(4), 8).BarrierCycles(); got != 2*3*100*4 {
		t.Fatalf("two-group dragonfly barrier = %d, want 2400", got)
	}
}

// Validate must reject impossible shapes with telling errors and accept
// the shapes the studies use.
func TestConfigValidateShapes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cfg   Config
		nodes int
		want  string
	}{
		{"zero bandwidth", Config{Kind: FullMesh}, 4, "bandwidth"},
		{"negative latency", Config{Kind: FullMesh, BytesPerCycle: 1, LatencyCycles: -1}, 4, "latency"},
		{"bad node count", Default(), 0, "node count"},
		{"non-rectangular torus", Torus(3, 2), 8, "rectangular"},
		{"half-specified torus", Torus(4, 0), 8, "rectangular"},
		{"negative torus dim", Torus(-4, -2), 8, "non-negative"},
		{"prime auto torus is a ring", Torus(0, 0), 7, ""}, // 7x1 is legal
		{"dragonfly group too big", DragonflyGroups(16), 8, "divide"},
		{"dragonfly group non-divisor", DragonflyGroups(3), 8, "divide"},
		{"negative dragonfly group", DragonflyGroups(-2), 8, "non-negative"},
		{"unknown kind", Config{Kind: Kind(99), BytesPerCycle: 1}, 4, "unknown"},
	} {
		err := tc.cfg.Validate(tc.nodes)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate accepted an impossible shape", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		// Build must refuse the same shapes.
		if _, berr := tc.cfg.Build(tc.nodes); berr == nil {
			t.Errorf("%s: Build accepted what Validate rejects", tc.name)
		}
	}
	for _, tc := range []struct {
		cfg   Config
		nodes int
		name  string
	}{
		{Default(), 8, "fullmesh"},
		{Torus(4, 2), 8, "torus4x2"},
		{Torus(0, 0), 8, "torus4x2"},
		{Torus(0, 0), 16, "torus4x4"},
		{DragonflyGroups(4), 8, "dragonfly2x4"},
		{DragonflyGroups(0), 8, "dragonfly2x4"},
		{DragonflyGroups(0), 64, "dragonfly8x8"},
		{DragonflyGroups(8), 8, "dragonfly1x8"}, // single group: a clique
	} {
		net, err := tc.cfg.Build(tc.nodes)
		if err != nil {
			t.Fatalf("%v on %d nodes: %v", tc.cfg.Kind, tc.nodes, err)
		}
		if net.Name() != tc.name {
			t.Errorf("%v on %d nodes: name %q, want %q", tc.cfg.Kind, tc.nodes, net.Name(), tc.name)
		}
	}
}

// Routes must begin at the source's egress port, end at the destination's
// ingress port, be minimal in length, and be deterministic.
func TestRouteStructure(t *testing.T) {
	for _, c := range []Config{Default(), Torus(4, 2), DragonflyGroups(4)} {
		net := build(t, c, 8)
		for src := 0; src < 8; src++ {
			for dst := 0; dst < 8; dst++ {
				if src == dst {
					continue
				}
				path := net.AppendRoute(nil, src, dst)
				if len(path) < 2 {
					t.Fatalf("%s: %d->%d route too short: %v", net.Name(), src, dst, path)
				}
				if path[0] != src {
					t.Fatalf("%s: %d->%d does not start at egress %d: %v", net.Name(), src, dst, src, path)
				}
				if path[len(path)-1] != 8+dst {
					t.Fatalf("%s: %d->%d does not end at ingress: %v", net.Name(), src, dst, path)
				}
				for _, l := range path {
					if l < 0 || l >= net.NumLinks() {
						t.Fatalf("%s: %d->%d link %d out of range [0,%d)", net.Name(), src, dst, l, net.NumLinks())
					}
				}
				again := net.AppendRoute(nil, src, dst)
				for i := range path {
					if again[i] != path[i] {
						t.Fatalf("%s: %d->%d route not deterministic", net.Name(), src, dst)
					}
				}
			}
		}
	}
}

// Dimension-order torus routes must have exactly manhattan-distance
// channel hops (shortest wraparound per dimension).
func TestTorusRouteLength(t *testing.T) {
	net := build(t, Torus(4, 4), 16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			sx, sy := src%4, src/4
			dx, dy := dst%4, dst/4
			hx := (dx - sx + 4) % 4
			if hx > 2 {
				hx = 4 - hx
			}
			hy := (dy - sy + 4) % 4
			if hy > 2 {
				hy = 4 - hy
			}
			path := net.AppendRoute(nil, src, dst)
			if got := len(path) - 2; got != hx+hy {
				t.Fatalf("torus %d->%d: %d channel hops, want %d (path %v)", src, dst, got, hx+hy, path)
			}
		}
	}
}

// Dragonfly: intra-group messages cross only the ports (a clique wire);
// inter-group messages cross exactly one global channel, and all traffic
// between the same group pair shares it.
func TestDragonflyRoutes(t *testing.T) {
	net := build(t, DragonflyGroups(4), 8)
	d := net.(*dragonfly)
	if got := net.AppendRoute(nil, 0, 1); len(got) != 2 {
		t.Fatalf("intra-group route %v should be direct", got)
	}
	glob := d.global(0, 1)
	seen := map[int]bool{}
	for src := 0; src < 4; src++ {
		for dst := 4; dst < 8; dst++ {
			path := net.AppendRoute(nil, src, dst)
			found := false
			for _, l := range path {
				if l == glob {
					found = true
				}
			}
			if !found {
				t.Fatalf("route %d->%d %v misses the group 0->1 global channel %d", src, dst, path, glob)
			}
			for _, l := range path {
				seen[l] = true
			}
		}
	}
	if back := d.global(1, 0); seen[back] {
		t.Fatal("forward traffic used the reverse global channel")
	}
}

// On a uniform all-to-all load, the multi-hop topologies must be strictly
// slower than the full mesh (shared channels serialize what dedicated
// wires run in parallel), and a repeat run must be identical.
func TestToposlowerThanMeshAndDeterministic(t *testing.T) {
	bytes := mat(8)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d {
				bytes[s][d] = 10_000
			}
		}
	}
	mesh := Exchange(build(t, testLink(FullMesh), 8), bytes)
	for _, c := range []Config{testLink(Torus2D), testLink(Dragonfly)} {
		net := build(t, c, 8)
		st := Exchange(net, bytes)
		if st.Cycles <= mesh.Cycles {
			t.Errorf("%s exchange %d cycles not slower than fullmesh %d", net.Name(), st.Cycles, mesh.Cycles)
		}
		if st.TotalBytes != mesh.TotalBytes || st.Messages != mesh.Messages {
			t.Errorf("%s moved different traffic: %+v vs %+v", net.Name(), st, mesh)
		}
		if again := Exchange(net, bytes); again != st {
			t.Errorf("%s exchange not deterministic: %+v vs %+v", net.Name(), again, st)
		}
		if net.BarrierCycles() <= build(t, testLink(FullMesh), 8).BarrierCycles() {
			t.Errorf("%s barrier not costlier than fullmesh", net.Name())
		}
	}
}

// A Flight must serialize messages on a shared channel: two simultaneous
// sends through the same torus channel finish one hold apart.
func TestFlightChannelContention(t *testing.T) {
	net := build(t, testLink(Torus2D), 8) // torus4x2
	eng := &sim.Engine{}
	f := NewFlight(net, eng)
	var first, second sim.Cycle
	// On the 4x2 torus, 0->1 routes [egress0, chan(0,+x), ingress1] and
	// 0->2 routes [egress0, chan(0,+x), chan(1,+x), ingress2]: the two
	// messages share the egress port and node 0's +x channel.
	f.Send(0, 1, 1000, func() { first = eng.Now() })
	f.Send(0, 2, 1000, func() { second = eng.Now() })
	eng.Run()
	if first == 0 || second == 0 {
		t.Fatal("messages not delivered")
	}
	// Message 1: egress 101 + lat 100 + chan 101 + lat 100 + ingress 101 = 503.
	if first != 503 {
		t.Fatalf("first delivery at %d, want 503", first)
	}
	// Message 2 queues behind message 1 on the egress port (starts at 101)
	// and behind it on node 0's +x channel, then crosses a second channel:
	// egress [101,202] + lat -> chan0 [302,403] + lat -> chan1 [503,604]
	// + lat -> ingress [704,805].
	if second != 805 {
		t.Fatalf("second delivery at %d, want 805", second)
	}
}

// TestMinLatencyIsDeliveryLowerBound checks the PDES lookahead contract
// empirically: on an unloaded network, no src -> dst message of any size
// arrives sooner than MinLatency after it is sent, and some pair achieves
// the bound exactly with a minimal message (the bound is tight, not just
// safe). The per-pair refinement is held to a stronger contract: an
// unloaded minimal message arrives at exactly PairMinLatency(src, dst) —
// the bound is tight for every pair, on every topology — and on
// distance-varying topologies at least one pair's bound strictly exceeds
// the global minimum (the widening the parallel runtime's windows feed
// on).
func TestMinLatencyIsDeliveryLowerBound(t *testing.T) {
	cases := []struct {
		cfg Config
		n   int
	}{
		{testLink(FullMesh), 8},
		{testLink(Torus2D), 8},
		{Config{Kind: Torus2D, LatencyCycles: 100, BytesPerCycle: 10, TorusX: 4, TorusY: 2}, 8},
		{testLink(Dragonfly), 8},
		{Config{Kind: Dragonfly, LatencyCycles: 100, BytesPerCycle: 10, GroupSize: 1}, 4},
		{Config{Kind: FullMesh, LatencyCycles: 0, BytesPerCycle: 10}, 4},
	}
	for _, tc := range cases {
		net := build(t, tc.cfg, tc.n)
		min := net.MinLatency()
		if min <= 0 {
			t.Fatalf("%s: MinLatency = %d, want > 0", net.Name(), min)
		}
		tight := false
		widened := false
		for src := 0; src < tc.n; src++ {
			if pm := net.PairMinLatency(src, src); pm != 0 {
				t.Fatalf("%s: PairMinLatency(%d,%d) = %d, want 0 for the unrouted local pair",
					net.Name(), src, src, pm)
			}
			for dst := 0; dst < tc.n; dst++ {
				if dst == src {
					continue
				}
				pm := net.PairMinLatency(src, dst)
				if pm < min {
					t.Fatalf("%s: PairMinLatency(%d,%d) = %d below MinLatency %d",
						net.Name(), src, dst, pm, min)
				}
				if pm > min {
					widened = true
				}
				var eng sim.Engine
				f := NewFlight(net, &eng) // fresh flight: unloaded links
				got := sim.Cycle(-1)
				f.Send(src, dst, 1, func() { got = eng.Now() })
				eng.Run()
				if got < min {
					t.Fatalf("%s: %d -> %d delivered after %d cycles, below MinLatency %d",
						net.Name(), src, dst, got, min)
				}
				if got != pm {
					t.Fatalf("%s: %d -> %d minimal message delivered at %d, want PairMinLatency %d exactly",
						net.Name(), src, dst, got, pm)
				}
				if got == min {
					tight = true
				}
			}
		}
		if !tight {
			t.Errorf("%s: MinLatency %d never achieved — bound is not tight", net.Name(), min)
		}
		if kind := tc.cfg.Kind; (kind == Torus2D || kind == Dragonfly) && tc.n > 4 && !widened {
			t.Errorf("%s: no pair bound exceeds the global MinLatency %d — the per-pair matrix degenerated",
				net.Name(), min)
		}
	}
}

// TestMinLatencyDegraded: the wrapper delegates, and degradation (slowed
// links, cut detours) never delivers below the healthy bound. The
// per-pair bounds are monotone under degradation — a healthy wrapper
// delegates them untouched, cutting routes never shrinks any pair's
// bound, and a detoured pair's bound strictly widens (the detour is a
// longer route) while staying a valid lower bound on its deliveries.
func TestMinLatencyDegraded(t *testing.T) {
	const n = 8
	net := build(t, testLink(Torus2D), n)
	d := NewDegraded(net)
	if d.MinLatency() != net.MinLatency() {
		t.Fatalf("degraded MinLatency %d != inner %d", d.MinLatency(), net.MinLatency())
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if got, want := d.PairMinLatency(src, dst), net.PairMinLatency(src, dst); got != want {
				t.Fatalf("healthy wrapper PairMinLatency(%d,%d) = %d, inner %d", src, dst, got, want)
			}
		}
	}
	if err := d.Slow(0, 1, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := d.CutRoute(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(nil); err != nil {
		t.Fatal(err)
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			got, healthy := d.PairMinLatency(src, dst), net.PairMinLatency(src, dst)
			if got < healthy {
				t.Fatalf("degraded PairMinLatency(%d,%d) = %d shrank below healthy %d",
					src, dst, got, healthy)
			}
		}
	}
	if got, healthy := d.PairMinLatency(2, 3), net.PairMinLatency(2, 3); got <= healthy {
		t.Fatalf("cut pair 2 -> 3: degraded bound %d not strictly above healthy %d despite the detour",
			got, healthy)
	}
	min := d.MinLatency()
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {5, 6}} {
		var eng sim.Engine
		f := NewFlight(d, &eng)
		got := sim.Cycle(-1)
		f.Send(pair[0], pair[1], 64, func() { got = eng.Now() })
		eng.Run()
		if got < min {
			t.Fatalf("degraded %d -> %d delivered after %d, below MinLatency %d",
				pair[0], pair[1], got, min)
		}
		if pm := d.PairMinLatency(pair[0], pair[1]); got < pm {
			t.Fatalf("degraded %d -> %d delivered after %d, below its pair bound %d",
				pair[0], pair[1], got, pm)
		}
	}
}
