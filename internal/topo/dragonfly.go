package topo

import (
	"fmt"

	"nmppak/internal/sim"
)

// dragonfly is `groups` all-to-all cliques of g nodes each. Intra-group
// messages cross a dedicated wire (egress -> ingress, like the full
// mesh). Each ordered group pair (A, B) shares one global channel, hosted
// by gateway node A*g + (B mod g) and landing at B*g + (A mod g); minimal
// routing goes src -> gateway (local forwarding channel) -> global
// channel -> landing node -> dst (local forwarding channel), so all A->B
// traffic serializes on one global channel and the gateways' forwarding
// channels — the classic dragonfly hotspot the full mesh cannot express.
//
// Link IDs: egress(i) = i, ingress(i) = n + i; local forwarding channels
// are one per ordered intra-group pair starting at 2n; global channels
// are one per ordered group pair after the locals.
type dragonfly struct {
	linkSpec
	g      int // nodes per group
	groups int
}

func (d *dragonfly) Name() string { return fmt.Sprintf("dragonfly%dx%d", d.groups, d.g) }

// local returns the forwarding channel from node u to node v, both in
// group grp (u != v), as ordered-pair index within the group's block.
func (d *dragonfly) local(grp, u, v int) int {
	j := v
	if v > u {
		j--
	}
	return 2*d.n + grp*d.g*(d.g-1) + u*(d.g-1) + j
}

// global returns the channel from group a to group b (a != b).
func (d *dragonfly) global(a, b int) int {
	j := b
	if b > a {
		j--
	}
	return 2*d.n + d.groups*d.g*(d.g-1) + a*(d.groups-1) + j
}

func (d *dragonfly) AppendRoute(path []int, src, dst int) []int {
	path = append(path, src) // egress port
	ga, gb := src/d.g, dst/d.g
	if ga != gb {
		hSrc := ga*d.g + gb%d.g // gateway hosting the ga -> gb channel
		hDst := gb*d.g + ga%d.g // its landing node in gb
		if src != hSrc {
			path = append(path, d.local(ga, src%d.g, hSrc%d.g))
		}
		path = append(path, d.global(ga, gb))
		if hDst != dst {
			path = append(path, d.local(gb, hDst%d.g, dst%d.g))
		}
	}
	return append(path, d.n+dst) // ingress port
}

// BarrierCycles prices each tree hop at the worst-case unloaded route:
// local -> global -> local -> ingress (4 latency transitions) once the
// machine spans more than one multi-node group; with single-node groups
// the local forwarding hops vanish (every node is its own gateway, 2
// transitions), and a single group is a clique (1 wire crossing).
func (d *dragonfly) BarrierCycles() sim.Cycle {
	switch {
	case d.groups > 1 && d.g > 1:
		return d.treeBarrier(4)
	case d.groups > 1:
		return d.treeBarrier(2)
	}
	return d.treeBarrier(1)
}

// MinLatency: with multi-node groups the shortest route is intra-group —
// a dedicated wire, [egress, ingress] like the full mesh. Single-node
// groups only route inter-group, and the shortest such route (src is the
// gateway, dst the landing node) is [egress, global, ingress].
func (d *dragonfly) MinLatency() sim.Cycle {
	if d.g > 1 {
		return d.lat + 2
	}
	return 2*d.lat + 3
}

// PairMinLatency: intra-group pairs ride a dedicated two-link wire;
// inter-group routes cross egress + global + ingress plus a local
// forwarding hop on each side whose endpoint is not the gateway or the
// landing node, mirroring AppendRoute's link count exactly.
func (d *dragonfly) PairMinLatency(src, dst int) sim.Cycle {
	if src == dst {
		return 0
	}
	ga, gb := src/d.g, dst/d.g
	if ga == gb {
		return routeBound(2, d.lat)
	}
	links := 3
	if src != ga*d.g+gb%d.g { // src is not the gateway hosting ga -> gb
		links++
	}
	if dst != gb*d.g+ga%d.g { // dst is not the landing node in gb
		links++
	}
	return routeBound(links, d.lat)
}
