package topo

import (
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
)

// Network is a routed interconnect instance bound to a machine size: a
// static set of serializing directed links (identified by dense integer
// IDs) plus a deterministic minimal-routing function. Implementations are
// immutable; all scheduling state lives in a Flight.
type Network interface {
	// Name identifies the topology and shape in reports ("fullmesh",
	// "torus4x2", "dragonfly2x4").
	Name() string
	// Nodes is the machine size the network was built for.
	Nodes() int
	// NumLinks is the number of distinct contended links.
	NumLinks() int
	// LatencyCycles is the latency paid between consecutive route links.
	LatencyCycles() sim.Cycle
	// BytesPerCycle is the per-link bandwidth.
	BytesPerCycle() float64
	// AppendRoute appends the ordered link IDs a src -> dst message
	// traverses. Routes are minimal and deterministic; src == dst is not
	// routed (local data never enters the network).
	AppendRoute(path []int, src, dst int) []int
	// BarrierCycles is the cost of a full barrier: a reduce-then-broadcast
	// tree of ceil(log2 n) message hops each way, each hop paying the
	// topology's worst-case unloaded route latency. A single node
	// synchronizes for free.
	BarrierCycles() sim.Cycle
	// MinLatency is a conservative lower bound on send-to-delivery time
	// for ANY message on ANY route of this network, loaded or not: the
	// shortest route's link count L (each link occupied >= 1 cycle,
	// store-and-forward) plus L-1 inter-link latency transitions. It is
	// the lookahead window of the conservative-PDES parallel runtime — a
	// node whose inbound neighbors have advanced to cycle t cannot
	// receive anything before t + MinLatency. Contention and degradation
	// only delay messages further, so the bound survives both.
	MinLatency() sim.Cycle
	// PairMinLatency is MinLatency specialized to one ordered pair: a
	// conservative lower bound on send-to-delivery time for any src -> dst
	// message, computed from that pair's actual route length L as
	// L + (L-1)*LatencyCycles. On distance-varying topologies (torus,
	// inter-group dragonfly) this is strictly wider than the global
	// MinLatency for distant pairs, which is exactly what lets the
	// parallel runtime's per-pair lookahead matrix open larger windows.
	// src == dst is never routed and returns 0. For every routed pair,
	// PairMinLatency(src, dst) >= MinLatency().
	PairMinLatency(src, dst int) sim.Cycle
}

// routeBound is the conservative delivery lower bound of an L-link route:
// every link is occupied at least one cycle (store-and-forward, Flight's
// Dur is >= 1 even for tiny messages) and consecutive links pay one
// latency transition, so no message on the route can deliver in fewer
// than L + (L-1)*lat cycles after its send. Contention, degradation
// multipliers (>= 1), and backlog only push delivery later.
func routeBound(links int, lat sim.Cycle) sim.Cycle {
	if links <= 0 {
		return 0
	}
	return sim.Cycle(links) + sim.Cycle(links-1)*lat
}

// linkSpec carries the shared per-link parameters and implements the
// trivial accessors of Network.
type linkSpec struct {
	n     int
	lat   sim.Cycle
	bpc   float64
	links int
}

func (l *linkSpec) Nodes() int               { return l.n }
func (l *linkSpec) NumLinks() int            { return l.links }
func (l *linkSpec) LatencyCycles() sim.Cycle { return l.lat }
func (l *linkSpec) BytesPerCycle() float64   { return l.bpc }

// treeBarrier prices a log-tree barrier whose every hop crosses routes
// with hopLat latency transitions.
func (l *linkSpec) treeBarrier(hopLat int) sim.Cycle {
	if l.n <= 1 {
		return 0
	}
	return 2 * sim.Cycle(ceilLog2(l.n)) * sim.Cycle(hopLat) * l.lat
}

// Flight schedules messages through a Network hop by hop on a sim.Engine,
// tracking per-link busy-until times across every message it sends. The
// first link of a route is reserved inline at Send time (senders issue
// their messages serially, so issue order resolves first-link contention
// deterministically); each subsequent link is reserved by an arrival
// event, so downstream contention resolves in deterministic
// (time, issue-order) arrival order. A message holds each link for
// bytes/BytesPerCycle (+1 launch) cycles, store-and-forward, and pays
// LatencyCycles between consecutive links; deliver fires when the final
// link releases it. On a FullMesh this reproduces the pre-refactor
// egress/ingress port discipline cycle for cycle.
type Flight struct {
	net  Network
	eng  *sim.Engine
	n    int
	lat  sim.Cycle
	bpc  float64
	free []sim.Cycle // per-link busy-until
	// routes lazily caches the minimal route per ordered node pair
	// (routes are static for the network's lifetime); in-flight message
	// closures borrow the cached slices.
	routes [][]int
	// slow holds per-link occupancy multipliers when the network is a
	// Degraded wrapper with degraded links; nil (every healthy network,
	// and a Degraded one nothing has happened to yet) keeps the hot path
	// a single branch.
	slow []float64
	pr   *Probe
}

// Probe mirrors every link reservation a Flight makes onto telemetry
// tracks. Links is indexed by dense link ID; Offset shifts the Flight's
// local engine clock into global time at record time, so spans land in
// the run's timeline directly.
type Probe struct {
	Links  []*telemetry.Track
	Offset sim.Cycle
}

// record emits one occupancy window: the reserved [start, end) slot on
// the link, the message bytes, and the cycle the reservation was asked
// for (End - Arg2 is the link's booked-ahead backlog at that moment).
func (p *Probe) record(link int, start, end sim.Cycle, b int64, req sim.Cycle) {
	p.Links[link].Add(telemetry.SpanLink, p.Offset+start, p.Offset+end, b, int64(p.Offset+req))
}

// SetProbe attaches (or, with nil, detaches) a link-occupancy probe.
func (f *Flight) SetProbe(p *Probe) { f.pr = p }

// NewFlight prepares a Flight over net scheduling on eng. A Degraded
// network's per-link slowdowns are captured here, so the Flight must be
// created after the degradation events it should observe (the scaleout
// runtime builds a fresh Flight per exchange or schedule segment).
func NewFlight(net Network, eng *sim.Engine) *Flight {
	n := net.Nodes()
	f := &Flight{
		net:    net,
		eng:    eng,
		n:      n,
		lat:    net.LatencyCycles(),
		bpc:    net.BytesPerCycle(),
		free:   make([]sim.Cycle, net.NumLinks()),
		routes: make([][]int, n*n),
	}
	if d, ok := net.(*Degraded); ok {
		f.slow = d.slowdowns()
	}
	return f
}

// linkDur scales the base store-and-forward occupancy by link l's
// degradation multiplier; the nil fast path keeps healthy networks
// cycle-exact and branch-cheap.
func (f *Flight) linkDur(l int, dur sim.Cycle) sim.Cycle {
	if f.slow == nil {
		return dur
	}
	if s := f.slow[l]; s != 1 {
		return sim.Cycle(float64(dur) * s)
	}
	return dur
}

// route returns the (cached) minimal route from src to dst.
func (f *Flight) route(src, dst int) []int {
	i := src*f.n + dst
	r := f.routes[i]
	if r == nil {
		r = f.net.AppendRoute(make([]int, 0, 8), src, dst)
		f.routes[i] = r
	}
	return r
}

// Dur is the per-link store-and-forward occupancy of a b-byte message.
func (f *Flight) Dur(b int64) sim.Cycle {
	return sim.Cycle(float64(b)/f.bpc) + 1
}

// Send routes one b-byte message from src to dst, calling deliver when
// the final link completes. Messages with src == dst or b <= 0 are the
// caller's responsibility to skip.
func (f *Flight) Send(src, dst int, b int64, deliver func()) {
	path := f.route(src, dst)
	dur := f.Dur(b)
	req := f.eng.Now()
	slot := f.free[path[0]]
	if req > slot {
		slot = req
	}
	d0 := f.linkDur(path[0], dur)
	f.free[path[0]] = slot + d0
	if f.pr != nil {
		f.pr.record(path[0], slot, slot+d0, b, req)
	}
	f.hop(path, 1, slot+d0, dur, b, deliver)
}

// hop advances the message past link h-1 (released at prevEnd): it either
// delivers, or schedules the reservation of link h after the inter-link
// latency.
func (f *Flight) hop(path []int, h int, prevEnd, dur sim.Cycle, b int64, deliver func()) {
	if h == len(path) {
		f.eng.At(prevEnd, deliver)
		return
	}
	f.eng.At(prevEnd+f.lat, func() {
		l := path[h]
		req := f.eng.Now()
		slot := f.free[l]
		if req > slot {
			slot = req
		}
		ld := f.linkDur(l, dur)
		f.free[l] = slot + ld
		if f.pr != nil {
			f.pr.record(l, slot, slot+ld, b, req)
		}
		f.hop(path, h+1, slot+ld, dur, b, deliver)
	})
}

// ExchangeStats summarizes one all-to-all exchange.
type ExchangeStats struct {
	Cycles         sim.Cycle // completion time of the whole exchange
	TotalBytes     int64     // bytes crossing the interconnect
	MaxEgressBytes int64     // heaviest sender (the injection bottleneck)
	Messages       int64
}

// Exchange runs an all-to-all personalized exchange of bytes[src][dst]
// over the network and returns its completion time. Senders issue their
// messages in the classic shifted schedule (node s sends to s+1, s+2, ...
// mod n) so that early rounds do not all target the same receiver;
// contention beyond the first link resolves in arrival order on the event
// kernel, which keeps the result deterministic. Diagonal entries (local
// data) cost nothing.
func Exchange(net Network, bytes [][]int64) ExchangeStats {
	return ExchangeProbed(net, bytes, nil)
}

// ExchangeProbed is Exchange with link-occupancy recording: when pr is
// non-nil every per-link reservation of the exchange is mirrored onto
// pr.Links, shifted by pr.Offset into global time. The returned stats are
// identical to Exchange's.
func ExchangeProbed(net Network, bytes [][]int64, pr *Probe) ExchangeStats {
	var st ExchangeStats
	n := net.Nodes()
	if n <= 1 {
		return st
	}
	eng := &sim.Engine{}
	f := NewFlight(net, eng)
	f.SetProbe(pr)
	msgs := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst != src && bytes[src][dst] > 0 {
				msgs++
			}
		}
	}
	// Pre-size the event heap: a message schedules one arrival event per
	// route link past the first plus its delivery (two events on the full
	// mesh; longer routes grow the heap once, amortized).
	eng.Reserve(2 * msgs)
	finish := sim.Cycle(0)
	for src := 0; src < n; src++ {
		for off := 1; off < n; off++ {
			dst := (src + off) % n
			b := bytes[src][dst]
			if b <= 0 {
				continue
			}
			st.TotalBytes += b
			st.Messages++
			f.Send(src, dst, b, func() {
				if now := eng.Now(); now > finish {
					finish = now
				}
			})
		}
	}
	eng.Run()
	st.Cycles = finish
	for src := 0; src < n; src++ {
		var eb int64
		for dst := 0; dst < n; dst++ {
			if dst != src && bytes[src][dst] > 0 {
				eb += bytes[src][dst]
			}
		}
		if eb > st.MaxEgressBytes {
			st.MaxEgressBytes = eb
		}
	}
	return st
}
