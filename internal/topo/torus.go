package topo

import (
	"fmt"

	"nmppak/internal/sim"
)

// torus2D is an x×y wraparound grid. Node i sits at (i mod x, i div x);
// every node owns four directed channels (+x, -x, +y, -y) to its grid
// neighbors plus its injection (egress) and ejection (ingress) ports.
// Routing is dimension-order — the shorter wraparound direction along x,
// then along y — so all traffic between two columns funnels through the
// same row channels and contends, which is exactly the fidelity the flat
// full mesh lacked.
//
// Link IDs: egress(i) = i, ingress(i) = n + i,
// channel(i, dir) = 2n + 4i + dir with dir in {+x=0, -x=1, +y=2, -y=3}.
type torus2D struct {
	linkSpec
	x, y int
}

func (t *torus2D) Name() string { return fmt.Sprintf("torus%dx%d", t.x, t.y) }

const (
	dirXPlus = iota
	dirXMinus
	dirYPlus
	dirYMinus
)

func (t *torus2D) channel(node, dir int) int { return 2*t.n + 4*node + dir }

func (t *torus2D) AppendRoute(path []int, src, dst int) []int {
	path = append(path, src) // egress port
	cx, cy := src%t.x, src/t.x
	dx, dy := dst%t.x, dst/t.x
	// Walk x via the shorter wraparound (ties break toward +x), then y.
	steps := (dx - cx + t.x) % t.x
	dir, move := dirXPlus, 1
	if steps > t.x-steps {
		steps, dir, move = t.x-steps, dirXMinus, t.x-1
	}
	for ; steps > 0; steps-- {
		path = append(path, t.channel(cy*t.x+cx, dir))
		cx = (cx + move) % t.x
	}
	steps = (dy - cy + t.y) % t.y
	dir, move = dirYPlus, 1
	if steps > t.y-steps {
		steps, dir, move = t.y-steps, dirYMinus, t.y-1
	}
	for ; steps > 0; steps-- {
		path = append(path, t.channel(cy*t.x+cx, dir))
		cy = (cy + move) % t.y
	}
	return append(path, t.n+dst) // ingress port
}

// BarrierCycles prices each tree hop at the torus's worst-case unloaded
// route latency: the diameter in channel crossings plus the final wire
// into the ingress port.
func (t *torus2D) BarrierCycles() sim.Cycle {
	return t.treeBarrier(t.x/2 + t.y/2 + 1)
}

// MinLatency: the shortest route is to a grid neighbor — egress, one
// channel, ingress: three links, two latency transitions.
func (t *torus2D) MinLatency() sim.Cycle { return 2*t.lat + 3 }

// hops is the wraparound Manhattan distance between src and dst — the
// number of grid channels a dimension-order route crosses.
func (t *torus2D) hops(src, dst int) int {
	sx, sy := src%t.x, src/t.x
	dx, dy := dst%t.x, dst/t.x
	hx := (dx - sx + t.x) % t.x
	if t.x-hx < hx {
		hx = t.x - hx
	}
	hy := (dy - sy + t.y) % t.y
	if t.y-hy < hy {
		hy = t.y - hy
	}
	return hx + hy
}

// PairMinLatency: a dimension-order route is egress + one channel per
// wraparound-Manhattan hop + ingress, so distant pairs get a strictly
// wider bound than the neighbor-distance MinLatency.
func (t *torus2D) PairMinLatency(src, dst int) sim.Cycle {
	if src == dst {
		return 0
	}
	return routeBound(t.hops(src, dst)+2, t.lat)
}
