package topo

import "nmppak/internal/sim"

// fullMesh joins every node pair with a dedicated wire: the only
// contended resources are the per-node serializing egress and ingress
// ports, so a message's route is [egress(src), ingress(dst)] with one
// latency transition between them. This reproduces the pre-refactor
// LinkConfig occupancy discipline exactly.
//
// Link IDs: egress(i) = i, ingress(i) = n + i.
type fullMesh struct {
	linkSpec
}

func (m *fullMesh) Name() string { return "fullmesh" }

func (m *fullMesh) AppendRoute(path []int, src, dst int) []int {
	return append(path, src, m.n+dst)
}

// BarrierCycles keeps the pre-refactor formula: ceil(log2 n) message hops
// each way, one wire crossing per hop.
func (m *fullMesh) BarrierCycles() sim.Cycle { return m.treeBarrier(1) }

// MinLatency: every route is exactly [egress, ingress] — two links held
// for at least one cycle each with one latency transition between them.
func (m *fullMesh) MinLatency() sim.Cycle { return m.lat + 2 }

// PairMinLatency: every routed pair crosses the same two links, so the
// per-pair bound coincides with the global one (and is tight — an
// uncontended minimal message delivers at exactly lat + 2).
func (m *fullMesh) PairMinLatency(src, dst int) sim.Cycle {
	if src == dst {
		return 0
	}
	return routeBound(2, m.lat)
}
