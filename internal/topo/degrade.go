// Degradable links: a Degraded wrapper turns any immutable Network into
// one whose links can lose bandwidth or go down mid-run, the topology
// half of the scaleout fault model (internal/fault). Degradation is
// expressed against the underlying topology's minimal routes — the
// physical channels a src -> dst message would cross — and observed by
// every Flight created afterwards:
//
//   - Slow multiplies the store-and-forward occupancy of each route link
//     by 1/factor (factor = surviving bandwidth fraction), so messages
//     sharing a degraded channel queue behind proportionally longer
//     reservations.
//   - CutRoute removes the route's links outright; AppendRoute then
//     detours through the lowest-numbered intermediate node whose two
//     legs avoid every cut link (deterministic, minimal-plus-one-stop
//     rerouting). Verify reports whether any live pair has been
//     disconnected — callers apply it after every outage, before traffic
//     flows.
//
// BarrierCycles is inherited unchanged: the log-tree barrier rides the
// latency plane, which bandwidth loss does not touch. The wrapper keeps
// no Flight state; like the underlying networks it only describes the
// machine, so one Degraded instance can price many exchanges as its link
// state evolves between them.
package topo

import (
	"fmt"

	"nmppak/internal/sim"
)

// Degraded wraps a Network with mutable per-link health: bandwidth
// multipliers and cut links. The zero state (nothing slowed, nothing
// cut) is indistinguishable from the wrapped network, including the
// Flight hot path.
type Degraded struct {
	Network
	// slow[l] is link l's occupancy multiplier (>= 1); nil until the
	// first Slow call, which is what keeps healthy Flights on their
	// single-branch fast path.
	slow []float64
	// cut[l] marks a downed link; nil until the first CutRoute call.
	cut []bool
	// scratch backs allocation-free route inspection.
	scratch []int
}

// NewDegraded wraps net; wrapping a Degraded network returns it
// unchanged (link state composes on one wrapper).
func NewDegraded(net Network) *Degraded {
	if d, ok := net.(*Degraded); ok {
		return d
	}
	return &Degraded{Network: net}
}

// slowdowns exposes the multiplier table to NewFlight (nil while no link
// has been slowed).
func (d *Degraded) slowdowns() []float64 { return d.slow }

// MinLatency delegates to the wrapped network. Degradation can only make
// messages later — Slow multiplies link occupancy by factors >= 1 and cut
// detours add route links — so the healthy network's lower bound remains
// a valid lookahead for the degraded one.
func (d *Degraded) MinLatency() sim.Cycle { return d.Network.MinLatency() }

// PairMinLatency recomputes the pair bound from the route the degraded
// network actually uses: while the underlying minimal route survives it
// matches the healthy bound, and once a cut forces the one-stop detour
// the longer route widens the bound (detours are never shorter than the
// minimal route, so the bound is monotone non-decreasing as links fail).
// Slow factors only stretch link occupancy beyond the one-cycle floor,
// so route length alone still lower-bounds delivery.
func (d *Degraded) PairMinLatency(src, dst int) sim.Cycle {
	if src == dst {
		return 0
	}
	if d.cut == nil {
		return d.Network.PairMinLatency(src, dst)
	}
	d.scratch = d.AppendRoute(d.scratch[:0], src, dst)
	return routeBound(len(d.scratch), d.LatencyCycles())
}

// checkPair validates a routed channel endpoint pair.
func (d *Degraded) checkPair(src, dst int) error {
	n := d.Nodes()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("topo: route %d -> %d outside %d nodes", src, dst, n)
	}
	if src == dst {
		return fmt.Errorf("topo: cannot degrade the local path %d -> %d", src, dst)
	}
	return nil
}

// Slow multiplies the occupancy of every link on the underlying minimal
// src -> dst route by 1/factor, factor being the surviving bandwidth
// fraction in (0, 1]. Repeated degradations of a shared link compound.
func (d *Degraded) Slow(src, dst int, factor float64) error {
	if err := d.checkPair(src, dst); err != nil {
		return err
	}
	if !(factor > 0 && factor <= 1) {
		return fmt.Errorf("topo: degrade factor %g outside (0, 1]", factor)
	}
	if d.slow == nil {
		d.slow = make([]float64, d.NumLinks())
		for i := range d.slow {
			d.slow[i] = 1
		}
	}
	d.scratch = d.Network.AppendRoute(d.scratch[:0], src, dst)
	for _, l := range d.scratch {
		d.slow[l] *= 1 / factor
	}
	return nil
}

// CutRoute takes down the src -> dst channel. On a multi-hop topology it
// removes the route's intermediate channel links while sparing the
// endpoint NIC ports (every route a node owns crosses its egress port, so
// cutting ports would sever the node outright rather than the channel);
// detours around the cut remain possible. A direct port-to-port route
// (full mesh, dragonfly intra-group) has only the two ports to remove, so
// cutting it severs the endpoints — model a flaky mesh wire with Slow
// instead. Call Verify afterwards: a cut that disconnects two live nodes
// is an unrecoverable configuration, and AppendRoute panics if asked to
// route across one.
func (d *Degraded) CutRoute(src, dst int) error {
	if err := d.checkPair(src, dst); err != nil {
		return err
	}
	if d.cut == nil {
		d.cut = make([]bool, d.NumLinks())
	}
	d.scratch = d.Network.AppendRoute(d.scratch[:0], src, dst)
	seg := d.scratch
	if len(seg) > 2 {
		seg = seg[1 : len(seg)-1]
	}
	for _, l := range seg {
		d.cut[l] = true
	}
	return nil
}

// clean reports whether no link of the segment is cut.
func (d *Degraded) clean(seg []int) bool {
	for _, l := range seg {
		if d.cut[l] {
			return false
		}
	}
	return true
}

// legClean reports whether the underlying minimal src -> dst route avoids
// every cut link.
func (d *Degraded) legClean(src, dst int) bool {
	d.scratch = d.Network.AppendRoute(d.scratch[:0], src, dst)
	return d.clean(d.scratch)
}

// detour returns the lowest-numbered intermediate node w whose src -> w
// and w -> dst legs both avoid the cut links, or -1 if none exists.
func (d *Degraded) detour(src, dst int) int {
	for w := 0; w < d.Nodes(); w++ {
		if w == src || w == dst {
			continue
		}
		if d.legClean(src, w) && d.legClean(w, dst) {
			return w
		}
	}
	return -1
}

// AppendRoute implements Network: the underlying minimal route while it
// survives, otherwise the deterministic one-stop detour around the cut
// links. Routing across a disconnected pair is a caller error (Verify
// catches it at fault-application time) and panics.
func (d *Degraded) AppendRoute(path []int, src, dst int) []int {
	n0 := len(path)
	path = d.Network.AppendRoute(path, src, dst)
	if d.cut == nil || d.clean(path[n0:]) {
		return path
	}
	path = path[:n0]
	w := d.detour(src, dst)
	if w < 0 {
		panic(fmt.Sprintf("topo: no route %d -> %d survives the cut links (Verify after every outage)", src, dst))
	}
	path = d.Network.AppendRoute(path, src, w)
	return d.Network.AppendRoute(path, w, dst)
}

// Routable reports whether src can still reach dst (directly or via the
// one-stop detour).
func (d *Degraded) Routable(src, dst int) bool {
	if src == dst {
		return true
	}
	if d.cut == nil || d.legClean(src, dst) {
		return true
	}
	return d.detour(src, dst) >= 0
}

// Verify checks that every ordered pair of live nodes (all nodes when
// live is nil) can still route; the first disconnected pair is returned
// as an error.
func (d *Degraded) Verify(live []bool) error {
	n := d.Nodes()
	for src := 0; src < n; src++ {
		if live != nil && !live[src] {
			continue
		}
		for dst := 0; dst < n; dst++ {
			if dst == src || (live != nil && !live[dst]) {
				continue
			}
			if !d.Routable(src, dst) {
				return fmt.Errorf("topo: nodes %d and %d are disconnected by the cut links", src, dst)
			}
		}
	}
	return nil
}
