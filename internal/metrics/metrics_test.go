package metrics

import (
	"testing"

	"nmppak/internal/dna"
)

func TestN50Known(t *testing.T) {
	// Classic example: lengths 80,70,50,40,30,20 total 290; half = 145;
	// 80+70=150 >= 145 -> N50 = 70, L50 = 2.
	lengths := []int{80, 70, 50, 40, 30, 20}
	if got := N50(lengths); got != 70 {
		t.Fatalf("N50 = %d want 70", got)
	}
	_, l50 := nxx(lengths, totalOf(lengths), 50)
	if l50 != 2 {
		t.Fatalf("L50 = %d want 2", l50)
	}
}

func TestN50SingleContig(t *testing.T) {
	if got := N50([]int{1234}); got != 1234 {
		t.Fatalf("N50 = %d", got)
	}
}

func TestN50Empty(t *testing.T) {
	if got := N50(nil); got != 0 {
		t.Fatalf("N50(nil) = %d", got)
	}
}

func TestN50EqualContigs(t *testing.T) {
	if got := N50([]int{100, 100, 100, 100}); got != 100 {
		t.Fatalf("N50 = %d", got)
	}
}

func TestNG50UsesReference(t *testing.T) {
	// Assembly shorter than reference: NG50 < N50.
	lengths := []int{100, 50}
	if n := N50(lengths); n != 100 {
		t.Fatalf("N50 = %d", n)
	}
	// Reference 400: need >= 200 covered; 100+50=150 < 200 -> NG50 falls
	// to the last contig.
	if ng := NG50(lengths, 400); ng != 50 {
		t.Fatalf("NG50 = %d want 50", ng)
	}
}

func TestSummarize(t *testing.T) {
	contigs := []dna.Seq{
		dna.MustParseSeq("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"), // 40
		dna.MustParseSeq("TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA"),         // 32
	}
	s := Summarize(contigs, nil)
	if s.Contigs != 2 || s.TotalBases != 72 || s.LongestLen != 40 {
		t.Fatalf("summary %+v", s)
	}
	if s.N50 != 40 {
		t.Fatalf("N50 = %d", s.N50)
	}
	if s.MeanLen != 36 {
		t.Fatalf("MeanLen = %v", s.MeanLen)
	}
}

func TestGenomeFraction(t *testing.T) {
	ref := dna.MustParseSeq("ACGTTGCAACGGTCATTGCCAGTACCATGGCATCAGTTACGGATCGATTA")
	full := Summarize([]dna.Seq{ref}, []dna.Seq{ref})
	if full.GenomeFrac != 1.0 {
		t.Fatalf("self coverage = %v want 1", full.GenomeFrac)
	}
	half := Summarize([]dna.Seq{ref.Slice(0, 40)}, []dna.Seq{ref})
	if half.GenomeFrac >= 1.0 || half.GenomeFrac <= 0.2 {
		t.Fatalf("partial coverage = %v", half.GenomeFrac)
	}
	none := Summarize(nil, []dna.Seq{ref})
	if none.GenomeFrac != 0 {
		t.Fatalf("empty coverage = %v", none.GenomeFrac)
	}
}

func TestLengths(t *testing.T) {
	got := Lengths([]dna.Seq{dna.MustParseSeq("ACG"), dna.MustParseSeq("TTTTT")})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Lengths = %v", got)
	}
}
