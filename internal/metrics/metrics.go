// Package metrics computes assembly quality metrics. The paper's Table 1
// uses N50, "the length of the smallest contig such that contigs of this
// length or longer cover at least 50% of the total assembly" (QUAST's
// definition).
package metrics

import (
	"sort"

	"nmppak/internal/dna"
)

// Summary aggregates assembly statistics.
type Summary struct {
	Contigs    int
	TotalBases int64
	LongestLen int
	N50        int
	L50        int // number of contigs at or above the N50 length
	NG50       int // N50 against the reference genome length (0 if unknown)
	MeanLen    float64
	GenomeFrac float64 // fraction of reference 31-mers present in contigs
	RefLength  int64
}

// Lengths extracts contig lengths.
func Lengths(contigs []dna.Seq) []int {
	out := make([]int, len(contigs))
	for i, c := range contigs {
		out[i] = c.Len()
	}
	return out
}

// N50 computes the N50 of a set of lengths (0 for an empty set).
func N50(lengths []int) int {
	n50, _ := nxx(lengths, totalOf(lengths), 50)
	return n50
}

// NG50 computes N50 against a reference length instead of the assembly
// total.
func NG50(lengths []int, refLen int64) int {
	ng50, _ := nxx(lengths, refLen, 50)
	return ng50
}

func totalOf(lengths []int) int64 {
	var t int64
	for _, l := range lengths {
		t += int64(l)
	}
	return t
}

// nxx returns the smallest length such that contigs of at least that length
// cover xx% of base, and the number of contigs used.
func nxx(lengths []int, base int64, xx int) (int, int) {
	if len(lengths) == 0 || base <= 0 {
		return 0, 0
	}
	sorted := append([]int(nil), lengths...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	target := (base*int64(xx) + 99) / 100
	var cum int64
	for i, l := range sorted {
		cum += int64(l)
		if cum >= target {
			return l, i + 1
		}
	}
	return sorted[len(sorted)-1], len(sorted)
}

// Summarize computes the full metric set. ref may be nil (reference-based
// metrics are then zero).
func Summarize(contigs []dna.Seq, ref []dna.Seq) Summary {
	lengths := Lengths(contigs)
	s := Summary{Contigs: len(contigs), TotalBases: totalOf(lengths)}
	if len(lengths) > 0 {
		s.N50, s.L50 = nxx(lengths, s.TotalBases, 50)
		for _, l := range lengths {
			if l > s.LongestLen {
				s.LongestLen = l
			}
		}
		s.MeanLen = float64(s.TotalBases) / float64(len(lengths))
	}
	if len(ref) > 0 {
		for _, r := range ref {
			s.RefLength += int64(r.Len())
		}
		s.NG50 = NG50(lengths, s.RefLength)
		s.GenomeFrac = genomeFraction(contigs, ref, 31)
	}
	return s
}

// genomeFraction approximates reference coverage as the fraction of
// reference k-mers present in the contigs (a stdlib-only stand-in for
// QUAST's alignment-based genome fraction).
func genomeFraction(contigs, ref []dna.Seq, k int) float64 {
	have := make(map[dna.Kmer]struct{})
	for _, c := range contigs {
		if c.Len() < k {
			continue
		}
		km := dna.KmerFromSeq(c, 0, k)
		have[km] = struct{}{}
		for i := k; i < c.Len(); i++ {
			km = km.Roll(k, c.At(i))
			have[km] = struct{}{}
		}
	}
	var total, hit int64
	seen := make(map[dna.Kmer]struct{})
	for _, r := range ref {
		if r.Len() < k {
			continue
		}
		km := dna.KmerFromSeq(r, 0, k)
		for i := k - 1; ; i++ {
			if _, dup := seen[km]; !dup {
				seen[km] = struct{}{}
				total++
				if _, ok := have[km]; ok {
					hit++
				}
			}
			if i+1 >= r.Len() {
				break
			}
			km = km.Roll(k, r.At(i+1))
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
