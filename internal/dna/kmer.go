package dna

import "fmt"

// MaxK is the largest k-mer length representable in a single Kmer word.
const MaxK = 32

// Kmer is a fixed-length DNA word of up to 32 bases packed MSB-first into a
// uint64: the first base occupies bits [2k-2, 2k) so that uint64 comparison
// of two k-mers of equal k is lexicographic comparison under A<C<T<G. The
// length k is carried externally (it is uniform across a graph).
type Kmer uint64

// KmerMask returns the mask covering the low 2k bits of a k-mer.
func KmerMask(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 32 {
		return ^uint64(0)
	}
	return (uint64(1) << (2 * uint(k))) - 1
}

// KmerFromSeq packs bases [off, off+k) of q into a Kmer.
func KmerFromSeq(q Seq, off, k int) Kmer {
	if k < 1 || k > MaxK {
		panic(fmt.Sprintf("dna: k=%d out of range [1,32]", k))
	}
	var v uint64
	for i := 0; i < k; i++ {
		v = v<<2 | uint64(q.At(off+i))
	}
	return Kmer(v)
}

// ParseKmer packs an ASCII string of length ≤32 into a Kmer.
func ParseKmer(s string) (Kmer, error) {
	if len(s) > MaxK {
		return 0, fmt.Errorf("dna: k-mer %q longer than %d", s, MaxK)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		b, ok := BaseFromByte(s[i])
		if !ok {
			return 0, fmt.Errorf("dna: invalid base %q in k-mer", s[i])
		}
		v = v<<2 | uint64(b)
	}
	return Kmer(v), nil
}

// MustParseKmer is ParseKmer that panics on error.
func MustParseKmer(s string) Kmer {
	km, err := ParseKmer(s)
	if err != nil {
		panic(err)
	}
	return km
}

// Roll slides the window one base to the right: it drops the leftmost base
// of a k-mer and appends b.
func (km Kmer) Roll(k int, b Base) Kmer {
	return Kmer((uint64(km)<<2 | uint64(b&3)) & KmerMask(k))
}

// At returns base i (0 = leftmost) of a k-mer of length k.
func (km Kmer) At(k, i int) Base {
	return Base(uint64(km) >> (2 * uint(k-1-i)) & 3)
}

// First returns the leftmost base of a k-mer of length k.
func (km Kmer) First(k int) Base { return km.At(k, 0) }

// Last returns the rightmost base.
func (km Kmer) Last() Base { return Base(km & 3) }

// Prefix returns the leading (k-1)-mer of a k-mer of length k.
func (km Kmer) Prefix() Kmer { return km >> 2 }

// Suffix returns the trailing (k-1)-mer of a k-mer of length k.
func (km Kmer) Suffix(k int) Kmer { return km & Kmer(KmerMask(k-1)) }

// String renders a k-mer of length k as ASCII letters.
func (km Kmer) StringK(k int) string {
	out := make([]byte, k)
	for i := 0; i < k; i++ {
		out[i] = km.At(k, i).Byte()
	}
	return string(out)
}

// Seq converts a k-mer of length k into a packed Seq.
func (km Kmer) Seq(k int) Seq {
	q := Seq{w: make([]uint64, (k+31)/32), n: k}
	for i := 0; i < k; i++ {
		q.w[i/32] |= uint64(km.At(k, i)) << (2 * uint(i%32))
	}
	return q
}

// AppendSeq returns the Seq q extended by the bases of km (length k).
func (km Kmer) AppendTo(q Seq, k int) Seq {
	out := q
	for i := 0; i < k; i++ {
		out = out.Append(km.At(k, i))
	}
	return out
}

// NeighborViaPrefix computes the (k1)-mer of the node reached by following
// prefix extension p backwards from node key (a k1-mer): the first k1 bases
// of p+key. This is the paper's Fig. 4(b) step 1 generalized to multi-base
// extensions accumulated during compaction.
func NeighborViaPrefix(key Kmer, k1 int, p Seq) Kmer {
	lp := p.Len()
	if lp >= k1 {
		return KmerFromSeq(p, 0, k1)
	}
	var top uint64
	for i := 0; i < lp; i++ {
		top = top<<2 | uint64(p.At(i))
	}
	return Kmer((top<<(2*uint(k1-lp)) | uint64(key)>>(2*uint(lp))) & KmerMask(k1))
}

// NeighborViaSuffix computes the (k1)-mer of the node reached by following
// suffix extension s forwards from node key: the last k1 bases of key+s.
func NeighborViaSuffix(key Kmer, k1 int, s Seq) Kmer {
	ls := s.Len()
	if ls >= k1 {
		return KmerFromSeq(s, ls-k1, k1)
	}
	var low uint64
	for i := 0; i < ls; i++ {
		low = low<<2 | uint64(s.At(i))
	}
	return Kmer((uint64(key)<<(2*uint(ls)) | low) & KmerMask(k1))
}
