package dna

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randSeqString(r *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(Alphabet[r.Intn(4)])
	}
	return sb.String()
}

func TestBaseFromByte(t *testing.T) {
	cases := []struct {
		in   byte
		want Base
		ok   bool
	}{
		{'A', A, true}, {'C', C, true}, {'T', T, true}, {'G', G, true},
		{'a', A, true}, {'g', G, true}, {'N', 0, false}, {'x', 0, false},
	}
	for _, tc := range cases {
		got, ok := BaseFromByte(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("BaseFromByte(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestBaseComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, T: A, C: G, G: C}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("Complement(%c) = %c want %c", b.Byte(), got.Byte(), want.Byte())
		}
	}
}

func TestSeqRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		s := randSeqString(r, r.Intn(100))
		q, err := ParseSeq(s)
		if err != nil {
			t.Fatalf("ParseSeq(%q): %v", s, err)
		}
		if q.String() != s {
			t.Fatalf("round trip %q -> %q", s, q.String())
		}
		if q.Len() != len(s) {
			t.Fatalf("Len=%d want %d", q.Len(), len(s))
		}
	}
}

func TestSeqParseInvalid(t *testing.T) {
	if _, err := ParseSeq("ACGTN"); err == nil {
		t.Fatal("expected error for N")
	}
}

func TestSeqAppendMatchesString(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		s := randSeqString(r, r.Intn(80))
		var q Seq
		for i := 0; i < len(s); i++ {
			b, _ := BaseFromByte(s[i])
			q = q.Append(b)
		}
		if q.String() != s {
			t.Fatalf("append-built %q want %q", q.String(), s)
		}
	}
}

func TestSeqAppendDoesNotAliasDestructively(t *testing.T) {
	base := MustParseSeq("ACGT")
	x := base.Append(A)
	y := base.Append(G)
	if x.String() != "ACGTA" || y.String() != "ACGTG" {
		t.Fatalf("aliasing: x=%s y=%s", x, y)
	}
	if base.String() != "ACGT" {
		t.Fatalf("receiver mutated: %s", base)
	}
}

func TestSeqConcatSlice(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a := randSeqString(r, r.Intn(70))
		b := randSeqString(r, r.Intn(70))
		qa, qb := MustParseSeq(a), MustParseSeq(b)
		cat := qa.Concat(qb)
		if cat.String() != a+b {
			t.Fatalf("concat %q+%q = %q", a, b, cat.String())
		}
		if len(a+b) > 0 {
			lo := r.Intn(len(a + b))
			hi := lo + r.Intn(len(a+b)-lo)
			if got := cat.Slice(lo, hi).String(); got != (a + b)[lo:hi] {
				t.Fatalf("slice[%d:%d] = %q want %q", lo, hi, got, (a + b)[lo:hi])
			}
		}
	}
}

// TestSeqConcatSliceWordBoundaries drives the word-level blit paths of
// Concat and Slice across multi-word sequences and every alignment of the
// 32-base word boundary, including operands whose packed tail words carry
// garbage bits (allowed by Equal's masking, so the blits must mask too).
func TestSeqConcatSliceWordBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		a := randSeqString(r, r.Intn(200))
		b := randSeqString(r, r.Intn(200))
		qa, qb := MustParseSeq(a), MustParseSeq(b)
		// Poison the unused tail bits: results must be unaffected.
		if rem := qa.n % 32; rem != 0 {
			qa.w[len(qa.w)-1] |= ^((uint64(1) << (2 * uint(rem))) - 1)
		}
		if rem := qb.n % 32; rem != 0 {
			qb.w[len(qb.w)-1] |= ^((uint64(1) << (2 * uint(rem))) - 1)
		}
		cat := qa.Concat(qb)
		if cat.String() != a+b {
			t.Fatalf("concat len %d+%d diverges from reference", len(a), len(b))
		}
		if !cat.Equal(MustParseSeq(a + b)) {
			t.Fatalf("concat len %d+%d not Equal to parsed reference", len(a), len(b))
		}
		if n := len(a + b); n > 0 {
			lo := r.Intn(n)
			hi := lo + r.Intn(n-lo)
			sl := cat.Slice(lo, hi)
			if sl.String() != (a + b)[lo:hi] {
				t.Fatalf("slice[%d:%d] diverges from reference", lo, hi)
			}
			// The fresh slice must have clean tail bits (other word-level
			// consumers rely on the masking).
			if rem := sl.n % 32; rem != 0 && len(sl.w) > 0 {
				if sl.w[len(sl.w)-1]&^((uint64(1)<<(2*uint(rem)))-1) != 0 {
					t.Fatalf("slice[%d:%d] left garbage tail bits", lo, hi)
				}
			}
		}
	}
}

func TestSeqCmpMatchesStringCompare(t *testing.T) {
	// Under the custom alphabet order A<C<T<G, Seq.Cmp must match string
	// comparison of the code-mapped strings.
	mapCode := func(s string) string {
		out := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			b, _ := BaseFromByte(s[i])
			out[i] = byte(b)
		}
		return string(out)
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		a := randSeqString(r, r.Intn(20))
		b := randSeqString(r, r.Intn(20))
		got := MustParseSeq(a).Cmp(MustParseSeq(b))
		want := strings.Compare(mapCode(a), mapCode(b))
		if got != want {
			t.Fatalf("Cmp(%q,%q)=%d want %d", a, b, got, want)
		}
	}
}

func TestSeqEqualAndHash(t *testing.T) {
	a := MustParseSeq("ACGTACGTACGTACGTACGTACGTACGTACGTACG")
	b := MustParseSeq("ACGTACGTACGTACGTACGTACGTACGTACGTACG")
	c := MustParseSeq("ACGTACGTACGTACGTACGTACGTACGTACGTACT")
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Fatal("equal sequences must be Equal and hash identically")
	}
	if a.Equal(c) {
		t.Fatal("unequal sequences reported Equal")
	}
}

func TestReverseComplement(t *testing.T) {
	q := MustParseSeq("AACGTG")
	if got := q.ReverseComplement().String(); got != "CACGTT" {
		t.Fatalf("RC = %q want CACGTT", got)
	}
	// Property: RC(RC(x)) == x.
	f := func(n uint8) bool {
		r := rand.New(rand.NewSource(int64(n)))
		s := MustParseSeq(randSeqString(r, int(n)%64))
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackedBytes(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{0, 0}, {1, 1}, {4, 1}, {5, 2}, {31, 8}, {32, 8}, {33, 9}} {
		r := rand.New(rand.NewSource(int64(tc.n)))
		q := MustParseSeq(randSeqString(r, tc.n))
		if got := q.PackedBytes(); got != tc.want {
			t.Errorf("PackedBytes(len=%d) = %d want %d", tc.n, got, tc.want)
		}
	}
}

func TestKmerRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(32)
		s := randSeqString(r, k)
		km := MustParseKmer(s)
		if got := km.StringK(k); got != s {
			t.Fatalf("k-mer round trip %q -> %q", s, got)
		}
		if got := km.Seq(k).String(); got != s {
			t.Fatalf("Kmer.Seq %q -> %q", s, got)
		}
	}
}

func TestKmerCompareIsLexicographic(t *testing.T) {
	mapCode := func(s string) string {
		out := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			b, _ := BaseFromByte(s[i])
			out[i] = byte(b)
		}
		return string(out)
	}
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 500; trial++ {
		k := 1 + r.Intn(32)
		a, b := randSeqString(r, k), randSeqString(r, k)
		ka, kb := MustParseKmer(a), MustParseKmer(b)
		wantLess := mapCode(a) < mapCode(b)
		if (ka < kb) != wantLess {
			t.Fatalf("kmer order mismatch %q vs %q", a, b)
		}
	}
}

func TestKmerRoll(t *testing.T) {
	const k = 5
	s := "ACGTTGCA"
	km := MustParseKmer(s[:k])
	for i := k; i < len(s); i++ {
		b, _ := BaseFromByte(s[i])
		km = km.Roll(k, b)
		if got, want := km.StringK(k), s[i-k+1:i+1]; got != want {
			t.Fatalf("roll at %d: %q want %q", i, got, want)
		}
	}
}

func TestKmerPrefixSuffixFirstLast(t *testing.T) {
	km := MustParseKmer("AGTCA")
	if got := km.Prefix().StringK(4); got != "AGTC" {
		t.Errorf("Prefix = %q", got)
	}
	if got := km.Suffix(5).StringK(4); got != "GTCA" {
		t.Errorf("Suffix = %q", got)
	}
	if km.First(5) != A || km.Last() != A {
		t.Errorf("First/Last mismatch")
	}
	if km.At(5, 1) != G || km.At(5, 3) != C {
		t.Errorf("At mismatch")
	}
}

// TestNeighborViaPrefixSuffix verifies the compaction neighbor arithmetic
// against plain string manipulation, for extension lengths both below and
// above k-1 (the paper's Fig. 4(b) example included).
func TestNeighborViaPrefixSuffix(t *testing.T) {
	// Paper example (Fig. 4b): node GTCA (k-1 = 4), prefixes A and CA ->
	// preceding nodes AGTC and CAGT; suffixes T,G -> succeeding TCAT, TCAG.
	key := MustParseKmer("GTCA")
	if got := NeighborViaPrefix(key, 4, MustParseSeq("A")).StringK(4); got != "AGTC" {
		t.Fatalf("prefix A neighbor = %q want AGTC", got)
	}
	if got := NeighborViaPrefix(key, 4, MustParseSeq("CA")).StringK(4); got != "CAGT" {
		t.Fatalf("prefix CA neighbor = %q want CAGT", got)
	}
	if got := NeighborViaSuffix(key, 4, MustParseSeq("T")).StringK(4); got != "TCAT" {
		t.Fatalf("suffix T neighbor = %q want TCAT", got)
	}
	if got := NeighborViaSuffix(key, 4, MustParseSeq("G")).StringK(4); got != "TCAG" {
		t.Fatalf("suffix G neighbor = %q want TCAG", got)
	}

	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		k1 := 2 + r.Intn(30)
		keyS := randSeqString(r, k1)
		extLen := 1 + r.Intn(2*k1)
		ext := randSeqString(r, extLen)
		key := MustParseKmer(keyS)

		wantP := (ext + keyS)[:k1]
		if got := NeighborViaPrefix(key, k1, MustParseSeq(ext)).StringK(k1); got != wantP {
			t.Fatalf("NeighborViaPrefix(%q,%q) = %q want %q", keyS, ext, got, wantP)
		}
		cat := keyS + ext
		wantS := cat[len(ext):]
		if got := NeighborViaSuffix(key, k1, MustParseSeq(ext)).StringK(k1); got != wantS {
			t.Fatalf("NeighborViaSuffix(%q,%q) = %q want %q", keyS, ext, got, wantS)
		}
	}
}

func TestKmerFromSeqOffset(t *testing.T) {
	q := MustParseSeq("TTACGTGGA")
	if got := KmerFromSeq(q, 2, 5).StringK(5); got != "ACGTG" {
		t.Fatalf("KmerFromSeq = %q want ACGTG", got)
	}
}

func TestAppendTo(t *testing.T) {
	q := MustParseSeq("TT")
	km := MustParseKmer("ACG")
	if got := km.AppendTo(q, 3).String(); got != "TTACG" {
		t.Fatalf("AppendTo = %q", got)
	}
}
