// Package dna provides 2-bit packed DNA sequence and k-mer primitives.
//
// The base encoding follows the paper's Fig. 4 ordering (A=0, C=1, T=2,
// G=3), so that integer comparison of packed values equals lexicographic
// comparison under that alphabet order. K-mers of up to 32 bases pack into a
// single uint64 MSB-first: the first base occupies the highest-order bit
// pair, which preserves lexicographic order under uint64 comparison for
// equal-length k-mers.
package dna

import (
	"fmt"
	"strings"
)

// Base is a 2-bit encoded nucleotide: A=0, C=1, T=2, G=3 (paper ordering).
type Base uint8

// Nucleotide codes in the paper's comparison order.
const (
	A Base = 0
	C Base = 1
	T Base = 2
	G Base = 3
)

// Alphabet lists the base letters indexed by their code.
const Alphabet = "ACTG"

// baseOf maps ASCII to Base; 0xFF marks invalid letters.
var baseOf [256]uint8

func init() {
	for i := range baseOf {
		baseOf[i] = 0xFF
	}
	for code, letter := range []byte(Alphabet) {
		baseOf[letter] = uint8(code)
		baseOf[letter|0x20] = uint8(code) // lowercase
	}
}

// BaseFromByte decodes an ASCII nucleotide letter. ok is false for letters
// outside ACGT (e.g. the ambiguity code N).
func BaseFromByte(b byte) (Base, bool) {
	v := baseOf[b]
	return Base(v), v != 0xFF
}

// Byte returns the ASCII letter for b.
func (b Base) Byte() byte { return Alphabet[b&3] }

// Complement returns the Watson-Crick complement of b.
func (b Base) Complement() Base {
	// A<->T (0<->2), C<->G (1<->3): xor with 2 under this encoding.
	return b ^ 2
}

// Seq is an immutable-by-convention 2-bit packed DNA sequence of arbitrary
// length. Base i is stored in bits [2*(i%32), 2*(i%32)+2) of word i/32.
// The zero value is the empty sequence.
type Seq struct {
	w []uint64
	n int
}

// MakeSeq returns an empty sequence with capacity for n bases.
func MakeSeq(n int) Seq {
	return Seq{w: make([]uint64, 0, (n+31)/32)}
}

// ParseSeq builds a Seq from an ASCII string; it returns an error on the
// first non-ACGT letter.
func ParseSeq(s string) (Seq, error) {
	q := Seq{w: make([]uint64, (len(s)+31)/32)}
	for i := 0; i < len(s); i++ {
		b, ok := BaseFromByte(s[i])
		if !ok {
			return Seq{}, fmt.Errorf("dna: invalid base %q at offset %d", s[i], i)
		}
		q.w[i/32] |= uint64(b) << (2 * uint(i%32))
	}
	q.n = len(s)
	return q, nil
}

// MustParseSeq is ParseSeq that panics on error; intended for tests and
// literals.
func MustParseSeq(s string) Seq {
	q, err := ParseSeq(s)
	if err != nil {
		panic(err)
	}
	return q
}

// FromBases builds a Seq from a base slice.
func FromBases(bs []Base) Seq {
	q := Seq{w: make([]uint64, (len(bs)+31)/32), n: len(bs)}
	for i, b := range bs {
		q.w[i/32] |= uint64(b&3) << (2 * uint(i%32))
	}
	return q
}

// Len returns the number of bases.
func (q Seq) Len() int { return q.n }

// At returns base i; it panics if i is out of range.
func (q Seq) At(i int) Base {
	if i < 0 || i >= q.n {
		panic(fmt.Sprintf("dna: index %d out of range [0,%d)", i, q.n))
	}
	return Base(q.w[i/32] >> (2 * uint(i%32)) & 3)
}

// String renders the sequence as ASCII letters.
func (q Seq) String() string {
	var sb strings.Builder
	sb.Grow(q.n)
	for i := 0; i < q.n; i++ {
		sb.WriteByte(q.At(i).Byte())
	}
	return sb.String()
}

// Append returns a new sequence equal to q with b appended. The receiver is
// not modified; storage is shared only when safe (append semantics).
func (q Seq) Append(b Base) Seq {
	out := Seq{n: q.n + 1}
	if q.n%32 == 0 {
		out.w = append(q.w[:len(q.w):len(q.w)], uint64(b&3))
	} else {
		out.w = append([]uint64(nil), q.w...)
		out.w[q.n/32] |= uint64(b&3) << (2 * uint(q.n%32))
	}
	return out
}

// Concat returns the concatenation q+r as a fresh sequence.
func (q Seq) Concat(r Seq) Seq {
	out := Seq{w: make([]uint64, (q.n+r.n+31)/32), n: q.n + r.n}
	copy(out.w, q.w[:(q.n+31)/32])
	if rem := q.n % 32; rem != 0 {
		out.w[q.n/32] &= (uint64(1) << (2 * uint(rem))) - 1
	}
	blitPacked(out.w, q.n, r.w, r.n)
	return out
}

// blitPacked ORs the first n bases of src into dst starting at base
// position `at`, whole words at a time. dst must be zero from bit 2*at
// on; bits of src at or past 2*n may hold garbage (they are masked off).
func blitPacked(dst []uint64, at int, src []uint64, n int) {
	if n == 0 {
		return
	}
	sw := (n + 31) / 32
	tail := ^uint64(0)
	if rem := n % 32; rem != 0 {
		tail = (uint64(1) << (2 * uint(rem))) - 1
	}
	wi, off := at/32, uint(2*(at%32))
	for i := 0; i < sw; i++ {
		v := src[i]
		if i == sw-1 {
			v &= tail
		}
		dst[wi+i] |= v << off
		if off != 0 && wi+i+1 < len(dst) {
			dst[wi+i+1] |= v >> (64 - off)
		}
	}
}

// Slice returns the subsequence [lo, hi) as a fresh sequence.
func (q Seq) Slice(lo, hi int) Seq {
	if lo < 0 || hi > q.n || lo > hi {
		panic(fmt.Sprintf("dna: slice [%d,%d) out of range [0,%d]", lo, hi, q.n))
	}
	n := hi - lo
	out := Seq{w: make([]uint64, (n+31)/32), n: n}
	if n == 0 {
		return out
	}
	wi, shift := lo/32, uint(2*(lo%32))
	if shift == 0 {
		copy(out.w, q.w[wi:wi+len(out.w)])
	} else {
		for i := range out.w {
			v := q.w[wi+i] >> shift
			if wi+i+1 < len(q.w) {
				v |= q.w[wi+i+1] << (64 - shift)
			}
			out.w[i] = v
		}
	}
	if rem := n % 32; rem != 0 {
		out.w[len(out.w)-1] &= (uint64(1) << (2 * uint(rem))) - 1
	}
	return out
}

// Equal reports whether q and r hold the same bases.
func (q Seq) Equal(r Seq) bool {
	if q.n != r.n {
		return false
	}
	full := q.n / 32
	for i := 0; i < full; i++ {
		if q.w[i] != r.w[i] {
			return false
		}
	}
	if rem := q.n % 32; rem != 0 {
		mask := (uint64(1) << (2 * uint(rem))) - 1
		if q.w[full]&mask != r.w[full]&mask {
			return false
		}
	}
	return true
}

// Cmp compares q and r lexicographically under the A<C<T<G order, returning
// -1, 0 or +1. A proper prefix sorts before its extensions.
func (q Seq) Cmp(r Seq) int {
	n := q.n
	if r.n < n {
		n = r.n
	}
	for i := 0; i < n; i++ {
		a, b := q.At(i), r.At(i)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
	}
	switch {
	case q.n < r.n:
		return -1
	case q.n > r.n:
		return 1
	}
	return 0
}

// PackedBytes returns the number of bytes the packed representation
// occupies (4 bases per byte, rounded up). Used by the memory-footprint and
// trace models.
func (q Seq) PackedBytes() int { return (q.n + 3) / 4 }

// ReverseComplement returns the reverse complement of q.
func (q Seq) ReverseComplement() Seq {
	out := Seq{w: make([]uint64, (q.n+31)/32), n: q.n}
	for i := 0; i < q.n; i++ {
		j := q.n - 1 - i
		out.w[j/32] |= uint64(q.At(i).Complement()) << (2 * uint(j%32))
	}
	return out
}

// Bases returns the sequence as a base slice.
func (q Seq) Bases() []Base {
	out := make([]Base, q.n)
	for i := range out {
		out[i] = q.At(i)
	}
	return out
}

// Hash returns a 64-bit FNV-1a style hash of the packed content, suitable
// for sharding. Sequences that are Equal hash identically.
func (q Seq) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ uint64(q.n)
	full := q.n / 32
	for i := 0; i < full; i++ {
		h = (h ^ q.w[i]) * prime
	}
	if rem := q.n % 32; rem != 0 {
		mask := (uint64(1) << (2 * uint(rem))) - 1
		h = (h ^ (q.w[full] & mask)) * prime
	}
	return h
}
