// Package telemetry is the cycle-domain instrumentation layer of the
// simulator: a recorded stream of spans — time windows on named resource
// tracks (node engines, interconnect links, DRAM channel data buses, the
// runtime's phase schedule) — plus the dependency records that let a
// critical-path pass explain where the end-to-end cycles went.
//
// The design contract is zero overhead when disabled: producers hold a
// nil probe/track pointer on their hot paths and recording sites compile
// to a single predictable branch, so a telemetry-disabled run is
// cycle-exact and allocation-identical with the uninstrumented code (the
// internal/sim and internal/kmer AllocsPerRun tests pin this).
//
// Collection is deterministic: every track is written by exactly one
// goroutine at a time (per-node tracks by that node's engine step, link
// and runtime tracks by the single-threaded event loop), tracks are
// created in a fixed order before any parallel section, and the exporters
// iterate in creation/append order with integer formatting only — the
// same run always produces a byte-identical trace.
package telemetry

import "nmppak/internal/sim"

// TrackKind classifies the resource a track models.
type TrackKind uint8

const (
	// TrackRuntime is the runtime's phase schedule (one per run).
	TrackRuntime TrackKind = iota
	// TrackNode is one node's engine (compute/stall/idle windows).
	TrackNode
	// TrackLink is one interconnect link (occupancy reservations).
	TrackLink
	// TrackDRAM is one DRAM channel's data bus (burst-train windows).
	TrackDRAM
	// TrackFleet is a multi-tenant fleet resource: the scheduler's
	// per-fleet-node possession timeline or one tenant's lifecycle track
	// (see internal/tenancy). Excluded from the single-run utilization
	// aggregates — fleet accounting is the scheduler's own.
	TrackFleet
)

// String names the kind (used as the Chrome-trace process name).
func (k TrackKind) String() string {
	switch k {
	case TrackRuntime:
		return "runtime"
	case TrackNode:
		return "nodes"
	case TrackLink:
		return "links"
	case TrackDRAM:
		return "dram"
	case TrackFleet:
		return "fleet"
	}
	return "unknown"
}

// SpanKind classifies one recorded time window. The Arg1/Arg2 meaning is
// per kind (documented on each constant).
type SpanKind uint8

const (
	// SpanIter is one node-engine compaction iteration.
	// Arg1 = iteration index, Arg2 = DRAM data-bus busy cycles summed over
	// the node's channels during the iteration.
	SpanIter SpanKind = iota
	// SpanIdle is time a node spends with nothing to do (waiting on
	// stragglers, or drained after its last iteration). Arg1 = iteration.
	SpanIdle
	// SpanSyncBarrier is the NMP runtime's per-iteration lockstep sync
	// (exists on a single node too, so it is not communication).
	// Arg1 = iteration.
	SpanSyncBarrier
	// SpanLinkBarrier is the interconnect share of a barrier (the
	// log-tree reduce/broadcast). Arg1 = iteration. Counted as comm.
	SpanLinkBarrier
	// SpanExchangeWait is a node (or the runtime) parked while a bulk
	// all-to-all exchange runs. Arg1 = iteration (-1 for the software
	// phases). Counted as comm.
	SpanExchangeWait
	// SpanDeliveryWait is overlapped-mode time a node waits for halo
	// deliveries beyond its own compute-side readiness. Arg1 = iteration.
	SpanDeliveryWait
	// SpanCompute is a runtime-track compute segment (slowest-node
	// compute of a phase or superstep). Arg1 = iteration (-1 software).
	SpanCompute
	// SpanMigration is a rebalance migration exchange (MacroNode bytes
	// moving to new owners). Arg1 = iteration, Arg2 = bytes. Counted as
	// comm.
	SpanMigration
	// SpanLink is one link occupancy reservation.
	// Arg1 = message bytes, Arg2 = reservation time (the cycle the
	// message asked for the link; End - Arg2 is the booked-ahead backlog).
	SpanLink
	// SpanBus is one DRAM burst train's data-bus reservation window.
	// Arg1 = bytes moved, Arg2 = 1 for writes, 0 for reads.
	SpanBus
	// SpanCheckpoint is an instant marker: a checkpoint blob was captured
	// at this point. Arg1 = resume iteration.
	SpanCheckpoint
	// SpanFault is an instant marker: a fault event was injected.
	// Arg1 = affected node (the dying node, or the Src of a link event),
	// Arg2 = fault.Kind.
	SpanFault
	// SpanDetect is the failure-detection window charged before the
	// runtime acts on a node loss (heartbeat timeout, membership
	// agreement). Arg1 = the iteration boundary where the loss surfaced,
	// Arg2 = the dead node.
	SpanDetect
	// SpanRestore is the survivors reloading the recovery checkpoint.
	// Arg1 = resume iteration, Arg2 = blob bytes.
	SpanRestore
	// SpanRepartition is the recovery migration: the dead node's shard
	// re-partitioned across survivors over the (degraded) interconnect.
	// Arg1 = resume iteration, Arg2 = migrated bytes. Counted as comm.
	SpanRepartition
	// SpanTenant is one tenant's possession slice on a fleet-node track
	// (or its whole service window on its own tenant track). The Chrome
	// exporter renders it under the tenant's registered label (see
	// Collector.SetLabel), so each tenant gets its own color.
	// Arg1 = tenant ID, Arg2 = iterations executed in the slice.
	SpanTenant
	// SpanTenantWait is time a tenant spends admitted but not running
	// (queued, or parked preempted). Arg1 = tenant ID.
	SpanTenantWait
	// SpanTenantCheckpoint is a preemption capture stall: the victim's
	// state draining to a blob at its iteration boundary.
	// Arg1 = tenant ID, Arg2 = blob bytes.
	SpanTenantCheckpoint
	// SpanTenantRestore is a placement restore stall: the resuming
	// tenant's blob streaming back in. Arg1 = tenant ID, Arg2 = blob
	// bytes.
	SpanTenantRestore
)

// String names the span kind (used as the Chrome-trace event name).
func (k SpanKind) String() string {
	switch k {
	case SpanIter:
		return "iter"
	case SpanIdle:
		return "idle"
	case SpanSyncBarrier:
		return "sync_barrier"
	case SpanLinkBarrier:
		return "link_barrier"
	case SpanExchangeWait:
		return "exchange"
	case SpanDeliveryWait:
		return "halo_wait"
	case SpanCompute:
		return "compute"
	case SpanMigration:
		return "migration"
	case SpanLink:
		return "flight"
	case SpanBus:
		return "bus"
	case SpanCheckpoint:
		return "checkpoint"
	case SpanFault:
		return "fault"
	case SpanDetect:
		return "detect"
	case SpanRestore:
		return "restore"
	case SpanRepartition:
		return "repartition"
	case SpanTenant:
		return "tenant"
	case SpanTenantWait:
		return "tenant_wait"
	case SpanTenantCheckpoint:
		return "tenant_checkpoint"
	case SpanTenantRestore:
		return "tenant_restore"
	}
	return "span"
}

// comm reports whether the kind counts as interconnect time in the
// comm-fraction accounting (mirrors scaleout's CommCycles: exchanges,
// link barriers, migrations and recovery re-partitions; the NMP sync
// barrier, detection and restore windows stay out — they are protocol
// overhead, not interconnect occupancy).
func (k SpanKind) comm() bool {
	return k == SpanExchangeWait || k == SpanLinkBarrier || k == SpanMigration ||
		k == SpanRepartition
}

// Span is one recorded time window [Start, End) on a track.
type Span struct {
	Kind       SpanKind
	Start, End sim.Cycle
	Arg1, Arg2 int64
}

// Track is one resource's span stream. A track is single-writer: the
// producer that owns the resource appends in simulation order. The zero
// ID convention is kind-specific (node index, dense link ID, node *
// channels + channel).
type Track struct {
	Kind  TrackKind
	Name  string
	ID    int
	Spans []Span
}

// Add appends one span.
func (t *Track) Add(kind SpanKind, start, end sim.Cycle, a1, a2 int64) {
	t.Spans = append(t.Spans, Span{Kind: kind, Start: start, End: end, Arg1: a1, Arg2: a2})
}

// Len returns the number of recorded spans (used with ShiftTail to
// re-base a batch recorded on a local clock).
func (t *Track) Len() int { return len(t.Spans) }

// Truncate drops every span from index n on: the rollback step for a
// speculative recording window that a fault discarded (the elastic
// overlapped runtime records a whole inter-checkpoint segment, then
// rewinds it when a node loss invalidates the segment's work).
func (t *Track) Truncate(n int) {
	if n < len(t.Spans) {
		t.Spans = t.Spans[:n]
	}
}

// ShiftTail adds delta to every span from index `from` on: the
// local-to-global re-basing step for spans recorded on a node engine's
// local clock during one iteration.
func (t *Track) ShiftTail(from int, delta sim.Cycle) {
	if delta == 0 {
		return
	}
	for i := from; i < len(t.Spans); i++ {
		t.Spans[i].Start += delta
		t.Spans[i].End += delta
	}
}

// ShiftRange adds delta to the spans in [from, to) only. The parallel
// runtime re-bases with this instead of ShiftTail: a worker may have
// appended spans of LATER iterations past `to` before the scheduler gets
// to re-base this one, and those must keep their local clock until their
// own placement. Each batch is shifted exactly once, by its own delta, so
// the result is identical to serial ShiftTail re-basing span for span.
func (t *Track) ShiftRange(from, to int, delta sim.Cycle) {
	if delta == 0 {
		return
	}
	if to > len(t.Spans) {
		to = len(t.Spans)
	}
	for i := from; i < to; i++ {
		t.Spans[i].Start += delta
		t.Spans[i].End += delta
	}
}

// Bound says which dependency gated the start of a node's iteration.
type Bound uint8

const (
	// BoundNone: nothing gated it (iteration 0).
	BoundNone Bound = iota
	// BoundSync: the node's own previous iteration plus the sync barrier
	// resolved last (compute-bound).
	BoundSync
	// BoundDelivery: a halo message delivery resolved last (the sender is
	// Dep.Src) — the interconnect was the bounding resource.
	BoundDelivery
	// BoundBarrier: a BSP superstep boundary (exchange + barriers) gated
	// it; Dep.Src is the slowest node of the previous superstep.
	BoundBarrier
)

// String names the bound.
func (b Bound) String() string {
	switch b {
	case BoundNone:
		return "start"
	case BoundSync:
		return "compute"
	case BoundDelivery:
		return "halo"
	case BoundBarrier:
		return "barrier"
	}
	return "bound"
}

// Dep records why node Node's iteration Iter started when it did: the
// dependency that resolved last, and who satisfied it.
type Dep struct {
	Node, Iter int
	Bound      Bound
	// Src is the sender node for BoundDelivery and the slowest node of
	// the previous superstep for BoundBarrier; -1 otherwise.
	Src int
}

// Counter is one named scalar recorded at the end of a run (event-loop
// statistics and similar aggregates that are not time windows).
type Counter struct {
	Name  string
	Value int64
}

// Collector accumulates one run's telemetry: tracks, dependency records
// and counters. It is not safe for concurrent track creation — create
// every track up front, before any parallel section; appending to
// distinct tracks from distinct goroutines is safe (each track is
// single-writer).
type Collector struct {
	tracks   []*Track
	deps     []Dep
	counters []Counter
	labels   map[int64]string
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// NewTrack registers a track. Creation order is the export order, so it
// must be deterministic.
func (c *Collector) NewTrack(kind TrackKind, id int, name string) *Track {
	t := &Track{Kind: kind, ID: id, Name: name}
	c.tracks = append(c.tracks, t)
	return t
}

// Tracks returns every registered track in creation order.
func (c *Collector) Tracks() []*Track { return c.tracks }

// SetLabel registers a display label for an entity ID (a tenant, keyed by
// its SpanTenant Arg1). The Chrome exporter names tenant spans by label,
// which is what colors a fleet timeline per tenant — Perfetto assigns
// colors by event name.
func (c *Collector) SetLabel(id int64, name string) {
	if c.labels == nil {
		c.labels = make(map[int64]string)
	}
	c.labels[id] = name
}

// Label resolves a registered label; ok is false if none was set.
func (c *Collector) Label(id int64) (string, bool) {
	name, ok := c.labels[id]
	return name, ok
}

// AddDep records one iteration-start dependency.
func (c *Collector) AddDep(node, iter int, bound Bound, src int) {
	c.deps = append(c.deps, Dep{Node: node, Iter: iter, Bound: bound, Src: src})
}

// Deps returns the recorded dependency stream.
func (c *Collector) Deps() []Dep { return c.deps }

// NumDeps returns the number of recorded dependencies (the counterpart of
// Track.Len for TruncateDeps-based rollback).
func (c *Collector) NumDeps() int { return len(c.deps) }

// TruncateDeps drops every dependency from index n on — the rollback step
// for a speculative recording window, paired with Track.Truncate.
func (c *Collector) TruncateDeps(n int) {
	if n < len(c.deps) {
		c.deps = c.deps[:n]
	}
}

// AddCounter records one named scalar.
func (c *Collector) AddCounter(name string, v int64) {
	c.counters = append(c.counters, Counter{Name: name, Value: v})
}

// Counters returns the recorded counters in record order.
func (c *Collector) Counters() []Counter { return c.counters }

// Reset drops all recorded state while keeping the collector reusable.
func (c *Collector) Reset() {
	c.tracks = c.tracks[:0]
	c.deps = c.deps[:0]
	c.counters = c.counters[:0]
	c.labels = nil
}
