package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTrackShiftTail(t *testing.T) {
	tr := &Track{Kind: TrackDRAM, Name: "ch0"}
	tr.Add(SpanBus, 10, 20, 64, 0)
	from := tr.Len()
	tr.Add(SpanBus, 5, 9, 64, 0)
	tr.Add(SpanBus, 12, 15, 32, 1)

	tr.ShiftTail(from, 100)
	want := []Span{
		{SpanBus, 10, 20, 64, 0},
		{SpanBus, 105, 109, 64, 0},
		{SpanBus, 112, 115, 32, 1},
	}
	for i, w := range want {
		if tr.Spans[i] != w {
			t.Fatalf("span %d = %+v, want %+v", i, tr.Spans[i], w)
		}
	}
	// Zero delta must be a no-op.
	tr.ShiftTail(0, 0)
	if tr.Spans[0] != want[0] {
		t.Fatalf("zero-delta ShiftTail moved spans: %+v", tr.Spans[0])
	}
}

// chromeDoc is the subset of the trace-event schema the tests decode.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string `json:"ph"`
		Pid  int    `json:"pid"`
		Tid  int    `json:"tid"`
		Ts   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
		Name string `json:"name"`
	} `json:"traceEvents"`
}

func TestWriteChromeValidDeterministicJSON(t *testing.T) {
	build := func() *Collector {
		c := New()
		rt := c.NewTrack(TrackRuntime, 0, "phases")
		rt.Add(SpanCompute, 0, 50, -1, 0)
		rt.Add(SpanCheckpoint, 50, 50, 3, 0) // zero-length -> instant event
		nd := c.NewTrack(TrackNode, 0, "node0")
		nd.Add(SpanIter, 0, 40, 0, 7)
		nd.Add(SpanIdle, 40, 50, 0, 0)
		return c
	}

	var a, b bytes.Buffer
	if err := build().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical collectors produced different Chrome JSON")
	}

	var doc chromeDoc
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 process_name + 2*(thread_name + thread_sort_index) metadata, then
	// 3 complete spans + 1 instant.
	meta, complete, instant := 0, 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur <= 0 {
				t.Fatalf("complete event %q has dur %d", e.Name, e.Dur)
			}
		case "i":
			instant++
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if meta != 6 || complete != 3 || instant != 1 {
		t.Fatalf("got %d metadata / %d complete / %d instant events, want 6/3/1", meta, complete, instant)
	}
}

func TestAnalyze(t *testing.T) {
	c := New()
	rt := c.NewTrack(TrackRuntime, 0, "phases")
	rt.Add(SpanCompute, 0, 50, -1, 0)
	rt.Add(SpanExchangeWait, 50, 80, -1, 0)
	rt.Add(SpanLinkBarrier, 80, 90, 0, 0)
	rt.Add(SpanMigration, 90, 100, 1, 4096)

	nd := c.NewTrack(TrackNode, 0, "node0")
	nd.Add(SpanIter, 0, 40, 0, 7)
	nd.Add(SpanIdle, 40, 60, 0, 0)
	nd.Add(SpanExchangeWait, 60, 100, 0, 0)

	lk := c.NewTrack(TrackLink, 0, "mesh/link0")
	lk.Add(SpanLink, 0, 10, 100, 0)
	lk.Add(SpanLink, 10, 30, 200, 5)

	dr := c.NewTrack(TrackDRAM, 0, "node0/ch0")
	dr.Add(SpanBus, 0, 4, 64, 0)
	dr.Add(SpanBus, 6, 8, 32, 1)

	u := Analyze(c)
	if u.Total != 100 {
		t.Fatalf("Total = %d, want 100", u.Total)
	}
	if u.CommCycles != 50 || u.CommFraction != 0.5 {
		t.Fatalf("comm = %d cycles / %v, want 50 / 0.5", u.CommCycles, u.CommFraction)
	}
	if u.ComputeCycles != 50 {
		t.Fatalf("ComputeCycles = %d, want 50", u.ComputeCycles)
	}
	n := u.Nodes[0]
	if n.Busy != 40 || n.Idle != 20 || n.Stall != 40 || n.Iters != 1 || n.DRAMBusy != 7 {
		t.Fatalf("node util = %+v", n)
	}
	l := u.Links[0]
	if l.Busy != 30 || l.Bytes != 300 || l.Messages != 2 || l.PeakBacklog != 25 {
		t.Fatalf("link util = %+v", l)
	}
	if l.Utilization != 0.3 {
		t.Fatalf("link utilization = %v, want 0.3", l.Utilization)
	}
	d := u.DRAM[0]
	if d.Busy != 6 || d.Bytes != 96 {
		t.Fatalf("dram util = %+v", d)
	}
}

func TestCriticalPath(t *testing.T) {
	c := New()
	n0 := c.NewTrack(TrackNode, 0, "node0")
	n0.Add(SpanIter, 0, 10, 0, 0)
	n0.Add(SpanIter, 30, 40, 1, 0)
	n1 := c.NewTrack(TrackNode, 1, "node1")
	n1.Add(SpanIter, 0, 20, 0, 0)
	n1.Add(SpanIter, 30, 45, 1, 0)
	// node1's second iteration was gated by a halo delivery from node0.
	c.AddDep(1, 1, BoundDelivery, 0)

	cp := CriticalPath(c)
	if len(cp) != 2 {
		t.Fatalf("path has %d entries, want 2", len(cp))
	}
	// The path ends at node1 (finishes at 45) and steps back to the halo
	// sender node0 for iteration 0.
	want1 := CPEntry{Iter: 1, Node: 1, Compute: 15, Wait: 20, Bound: BoundDelivery, Src: 0}
	if cp[1] != want1 {
		t.Fatalf("entry 1 = %+v, want %+v", cp[1], want1)
	}
	want0 := CPEntry{Iter: 0, Node: 0, Compute: 10, Wait: 0, Bound: BoundNone, Src: -1}
	if cp[0] != want0 {
		t.Fatalf("entry 0 = %+v, want %+v", cp[0], want0)
	}

	if got := CriticalPath(New()); got != nil {
		t.Fatalf("empty collector critical path = %v, want nil", got)
	}
}
