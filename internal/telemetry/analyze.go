// Aggregate accounting over a recorded span stream: per-node
// busy/idle/stall breakdowns, per-link utilization and backlog, DRAM
// channel busy time, the comm-vs-compute split (defined to reconcile
// exactly with scaleout's CommFraction), and the critical-path pass that
// attributes end-to-end cycles to the bounding resource per iteration.
package telemetry

import "nmppak/internal/sim"

// NodeUtil is one node's time breakdown over the compaction phase.
// Busy + Idle + Stall tiles the phase exactly (a conservation invariant
// the scaleout tests pin).
type NodeUtil struct {
	Node  int
	Busy  sim.Cycle // executing iterations
	Idle  sim.Cycle // stragglers ahead / drained after the last iteration
	Stall sim.Cycle // exchanges, barriers, halo-delivery waits, migrations
	Iters int
	// DRAMBusy is the node's summed per-channel data-bus busy cycles
	// attributed by its iteration spans (DRAM-bound share of Busy).
	DRAMBusy sim.Cycle
}

// LinkUtil is one link's occupancy aggregate.
type LinkUtil struct {
	Link     int
	Name     string
	Busy     sim.Cycle // summed reservation windows
	Bytes    int64
	Messages int
	// PeakBacklog is the largest booked-ahead distance observed at
	// reservation time (how far past "now" the link was already committed
	// when a message asked for it) — the queue-depth signal in cycles.
	PeakBacklog sim.Cycle
	// Utilization is Busy over the full timeline horizon.
	Utilization float64
}

// DRAMUtil is one DRAM channel data bus' occupancy aggregate.
type DRAMUtil struct {
	Track string
	Busy  sim.Cycle
	Bytes int64
}

// Utilization is the aggregate counter set derived from one collector.
type Utilization struct {
	// Total is the timeline horizon (== the run's TotalCycles when the
	// runtime phase track was recorded).
	Total sim.Cycle
	// CommCycles / CommFraction reproduce scaleout's accounting exactly:
	// exchange + link-barrier + migration spans on the runtime track over
	// Total.
	CommCycles   sim.Cycle
	CommFraction float64
	// ComputeCycles is the runtime track's compute time; the remainder of
	// Total is sync barriers.
	ComputeCycles sim.Cycle

	Nodes []NodeUtil
	Links []LinkUtil
	DRAM  []DRAMUtil

	Counters []Counter
}

// Analyze folds a collector's span stream into the aggregate counters.
func Analyze(c *Collector) *Utilization {
	u := &Utilization{Total: c.End(), Counters: c.Counters()}
	for _, t := range c.tracks {
		switch t.Kind {
		case TrackRuntime:
			for i := range t.Spans {
				s := &t.Spans[i]
				d := s.End - s.Start
				if s.Kind.comm() {
					u.CommCycles += d
				}
				if s.Kind == SpanCompute {
					u.ComputeCycles += d
				}
			}
		case TrackNode:
			nu := NodeUtil{Node: t.ID}
			for i := range t.Spans {
				s := &t.Spans[i]
				d := s.End - s.Start
				switch s.Kind {
				case SpanIter:
					nu.Busy += d
					nu.Iters++
					nu.DRAMBusy += sim.Cycle(s.Arg2)
				case SpanIdle:
					nu.Idle += d
				default:
					nu.Stall += d
				}
			}
			u.Nodes = append(u.Nodes, nu)
		case TrackLink:
			lu := LinkUtil{Link: t.ID, Name: t.Name}
			for i := range t.Spans {
				s := &t.Spans[i]
				lu.Busy += s.End - s.Start
				lu.Bytes += s.Arg1
				lu.Messages++
				if backlog := s.End - sim.Cycle(s.Arg2); backlog > lu.PeakBacklog {
					lu.PeakBacklog = backlog
				}
			}
			if u.Total > 0 {
				lu.Utilization = float64(lu.Busy) / float64(u.Total)
			}
			u.Links = append(u.Links, lu)
		case TrackDRAM:
			du := DRAMUtil{Track: t.Name}
			for i := range t.Spans {
				s := &t.Spans[i]
				du.Busy += s.End - s.Start
				du.Bytes += s.Arg1
			}
			u.DRAM = append(u.DRAM, du)
		}
	}
	if u.Total > 0 {
		u.CommFraction = float64(u.CommCycles) / float64(u.Total)
	}
	return u
}

// CPEntry attributes one compaction iteration's share of the end-to-end
// critical path: the node whose compute bounded it, and the wait (sync /
// halo delivery / superstep barrier) that preceded it on the path.
type CPEntry struct {
	Iter    int
	Node    int       // node whose compute lies on the path this iteration
	Compute sim.Cycle // that node's compute cycles
	Wait    sim.Cycle // path cycles spent waiting before the compute began
	Bound   Bound     // what the wait was for (BoundNone for iteration 0)
	// Src is the halo sender (BoundDelivery) or the slowest node of the
	// previous superstep (BoundBarrier); -1 otherwise.
	Src int
}

// CriticalPath walks the recorded dependency graph backwards from the
// last-finishing node iteration and returns one entry per iteration on
// the path (iteration order). The sum of Compute+Wait over the entries
// plus the lead-in and trailing-delivery tail equals the compaction
// phase's makespan, so the report is a complete attribution: it names,
// per iteration, the resource that bounded the run — a straggler node's
// compute, the sync barrier, a contended halo route, or the BSP
// exchange+barrier boundary.
func CriticalPath(c *Collector) []CPEntry {
	// Index iteration spans by (node, iter) and find the grid shape.
	nodes := 0
	iters := 0
	for _, t := range c.tracks {
		if t.Kind != TrackNode {
			continue
		}
		if t.ID+1 > nodes {
			nodes = t.ID + 1
		}
		for i := range t.Spans {
			if s := &t.Spans[i]; s.Kind == SpanIter && int(s.Arg1)+1 > iters {
				iters = int(s.Arg1) + 1
			}
		}
	}
	if nodes == 0 || iters == 0 {
		return nil
	}
	type cell struct {
		start, end sim.Cycle
		ok         bool
	}
	grid := make([]cell, nodes*iters)
	for _, t := range c.tracks {
		if t.Kind != TrackNode {
			continue
		}
		for i := range t.Spans {
			s := &t.Spans[i]
			if s.Kind == SpanIter {
				grid[t.ID*iters+int(s.Arg1)] = cell{start: s.Start, end: s.End, ok: true}
			}
		}
	}
	deps := make([]Dep, nodes*iters)
	for i := range deps {
		deps[i] = Dep{Bound: BoundNone, Src: -1}
	}
	for _, d := range c.deps {
		if d.Node >= 0 && d.Node < nodes && d.Iter >= 0 && d.Iter < iters {
			deps[d.Node*iters+d.Iter] = d
		}
	}
	// The path ends at the node whose last iteration finishes latest
	// (ties break on the lower node index for determinism).
	last := -1
	var lastEnd sim.Cycle
	for n := 0; n < nodes; n++ {
		if cl := grid[n*iters+iters-1]; cl.ok && (last == -1 || cl.end > lastEnd) {
			last, lastEnd = n, cl.end
		}
	}
	if last == -1 {
		return nil
	}
	entries := make([]CPEntry, iters)
	n := last
	for it := iters - 1; it >= 0; it-- {
		cl := grid[n*iters+it]
		e := CPEntry{Iter: it, Node: n, Compute: cl.end - cl.start, Src: -1}
		if it > 0 {
			d := deps[n*iters+it]
			pred := n
			switch d.Bound {
			case BoundDelivery, BoundBarrier:
				if d.Src >= 0 {
					pred = d.Src
				}
			}
			e.Bound = d.Bound
			e.Src = d.Src
			if pcl := grid[pred*iters+it-1]; pcl.ok {
				e.Wait = cl.start - pcl.end
			}
			n = pred
		}
		entries[it] = e
	}
	return entries
}
