// Chrome-trace (Perfetto-loadable) JSON export of a recorded span
// stream: one trace-event process per track kind, one thread per track,
// complete ("X") events for spans and instant ("i") events for markers.
// Timestamps are emitted as raw cycle counts (1 cycle = 0.625 ns at
// 1.6 GHz) so the output is integer-only and byte-identical across runs;
// the unit is recorded in the trace metadata.
package telemetry

import (
	"bufio"
	"fmt"
	"io"

	"nmppak/internal/sim"
)

// chromePID maps a track kind to a stable trace-event process ID.
func chromePID(k TrackKind) int { return int(k) + 1 }

// WriteChrome writes the collector's tracks as Chrome trace-event JSON.
// Output is deterministic: tracks in creation order, spans in append
// order, integer timestamps only.
func (c *Collector) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ns","otherData":{"clock":"1 ts = 1 cycle = 0.625 ns (1.6 GHz)"},"traceEvents":[`)
	first := true
	ev := func(s string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
		fmt.Fprintf(bw, s, args...)
	}
	// Process/thread naming metadata: one process per kind present, one
	// thread per track.
	seen := [5]bool{}
	for _, t := range c.tracks {
		if !seen[t.Kind] {
			seen[t.Kind] = true
			ev(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%q}}`,
				chromePID(t.Kind), t.Kind.String())
		}
		ev(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			chromePID(t.Kind), t.ID+1, t.Name)
		ev(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			chromePID(t.Kind), t.ID+1, t.ID)
	}
	for _, t := range c.tracks {
		pid, tid := chromePID(t.Kind), t.ID+1
		for i := range t.Spans {
			s := &t.Spans[i]
			// Tenant possession slices render under the tenant's label so
			// Perfetto (which colors by event name) paints each tenant its
			// own color across the fleet timeline.
			name := s.Kind.String()
			if s.Kind == SpanTenant {
				if l, ok := c.Label(s.Arg1); ok {
					name = l
				}
			}
			if s.Start == s.End {
				ev(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"name":%q,"args":{"arg1":%d,"arg2":%d}}`,
					pid, tid, s.Start, name, s.Arg1, s.Arg2)
				continue
			}
			ev(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{"arg1":%d,"arg2":%d}}`,
				pid, tid, s.Start, s.End-s.Start, name, s.Arg1, s.Arg2)
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// End returns the latest span end across every track (the recorded
// timeline's horizon).
func (c *Collector) End() sim.Cycle {
	var end sim.Cycle
	for _, t := range c.tracks {
		for i := range t.Spans {
			if t.Spans[i].End > end {
				end = t.Spans[i].End
			}
		}
	}
	return end
}
