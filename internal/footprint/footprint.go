// Package footprint models the assembly's runtime memory footprint — the
// quantity behind the paper's 14x reduction claim (§3.5, §4.4, §4.5) and
// the GPU capacity analysis (§6.6).
//
// Two software organizations are modeled:
//
//   - Baseline PaKman: MacroNode structs stored by value in MN_map and
//     passed by value through the call stack, duplicating node payloads;
//     std::vector growth slack; invalidated nodes compacted/moved every
//     iteration; the whole dataset processed at once.
//   - NMP-PaK (§4.4/§4.5): pointer-indirected map (one copy of each node),
//     deferred deletion, and batch processing so only one batch's graph is
//     live at a time.
//
// The model takes measured per-node byte sizes from real graphs, so the
// reported ratio reflects the actual workload rather than constants.
package footprint

import (
	"nmppak/internal/pakgraph"
)

// Params captures the software-organization overheads.
type Params struct {
	// MapEntryOverhead is the per-node hash-map bookkeeping (bucket,
	// hash, key copy).
	MapEntryOverhead int
	// ValueCopies is how many transient copies of a node payload the
	// by-value baseline keeps live on the call stack / in temporaries
	// during construction and compaction (the §4.5 analysis).
	ValueCopies float64
	// VectorSlack is the capacity/size ratio of exponentially grown
	// vectors (std::vector doubles: average slack 1.5x was measured ~1.4x
	// in §4.5's 528->379 GB improvement).
	VectorSlack float64
	// KmerBufferBytesPerKmer is the k-mer counting buffer (packed k-mer +
	// sort workspace).
	KmerBufferBytesPerKmer int
}

// BaselineParams models the original PaKman organization.
func BaselineParams() Params {
	return Params{
		MapEntryOverhead:       48,
		ValueCopies:            1.0, // one extra live copy from by-value calls
		VectorSlack:            1.4,
		KmerBufferBytesPerKmer: 16, // single giant vector, repeated doubling
	}
}

// OptimizedParams models the §4.5 pointer-based organization.
func OptimizedParams() Params {
	return Params{
		MapEntryOverhead:       48,
		ValueCopies:            0, // pointers: no duplicate payloads
		VectorSlack:            1.0,
		KmerBufferBytesPerKmer: 9, // preallocated exact-size per-thread vectors
	}
}

// Estimate computes the peak resident bytes for assembling a dataset of
// totalKmers whose per-batch graph is g, processed in `batches` sequential
// batches under params p. The compacted-graph residue each batch leaves
// behind (tens of MB in the paper) is approximated by residueFraction of
// the batch graph.
func Estimate(g *pakgraph.Graph, totalKmers int64, batches int, p Params, residueFraction float64) int64 {
	if batches < 1 {
		batches = 1
	}
	var graphBytes int64
	for _, n := range g.Nodes {
		payload := float64(n.SizeBytes())
		perNode := payload*(1+p.ValueCopies)*p.VectorSlack + float64(p.MapEntryOverhead)
		graphBytes += int64(perNode)
	}
	kmerBytes := totalKmers / int64(batches) * int64(p.KmerBufferBytesPerKmer)
	residue := int64(residueFraction * float64(graphBytes) * float64(batches-1))
	return graphBytes + kmerBytes + residue
}

// Ratio compares two estimates.
func Ratio(baseline, optimized int64) float64 {
	if optimized <= 0 {
		return 0
	}
	return float64(baseline) / float64(optimized)
}

// GraphBytes returns the raw (single-copy, slack-free) graph payload, the
// quantity the hardware working set uses.
func GraphBytes(g *pakgraph.Graph) int64 {
	var b int64
	for _, n := range g.Nodes {
		b += int64(n.SizeBytes())
	}
	return b
}
