package footprint

import (
	"testing"

	"nmppak/internal/dna"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
)

func buildGraph(t testing.TB) (*pakgraph.Graph, int64) {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmer.Count(reads, kmer.Config{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return pg, res.TotalExtracted
}

func TestOptimizedSmallerThanBaseline(t *testing.T) {
	g, kmers := buildGraph(t)
	base := Estimate(g, kmers, 1, BaselineParams(), 0.02)
	opt := Estimate(g, kmers, 1, OptimizedParams(), 0.02)
	if opt >= base {
		t.Fatalf("optimized %d >= baseline %d", opt, base)
	}
	// §4.5 reports ~1.4x from pointer indirection + deferred deletion.
	r := Ratio(base, opt)
	if r < 1.2 || r > 3 {
		t.Fatalf("organization ratio %.2f outside plausible range", r)
	}
}

func TestBatchingReducesFootprintRoughlyLinearly(t *testing.T) {
	g, kmers := buildGraph(t)
	// Batching shrinks the per-batch graph: model it by scaling the graph
	// itself is not possible here, so we check the k-mer buffer component
	// scales and the combined §4.4+§4.5 ratio lands near the paper's 14x
	// when the graph also shrinks 10x (simulated via a subgraph).
	whole := Estimate(g, kmers, 1, BaselineParams(), 0.02)
	sub := subgraph(g, 10)
	batched := Estimate(sub, kmers, 10, OptimizedParams(), 0.02)
	r := Ratio(whole, batched)
	if r < 6 || r > 30 {
		t.Fatalf("combined reduction %.1fx outside plausible range (paper: 14x)", r)
	}
}

// subgraph keeps roughly 1/n of the nodes (footprint modeling only).
func subgraph(g *pakgraph.Graph, n int) *pakgraph.Graph {
	out := &pakgraph.Graph{K: g.K, Nodes: make(map[dna.Kmer]*pakgraph.MacroNode)}
	i := 0
	for k, node := range g.Nodes {
		if i%n == 0 {
			out.Nodes[k] = node
		}
		i++
	}
	return out
}
