// Package nmp models the NMP-PaK hardware (§4.1–§4.3, Figs. 9–11): a
// channel-level near-memory-processing system with pipelined systolic
// processing elements (PEs) in each DIMM's buffer chip, an inter-PE
// crossbar switch, DIMM-Link-style network bridges between DIMMs, and the
// hybrid CPU-NMP runtime that offloads oversized MacroNodes.
//
// The simulator is trace-driven (§5.2): it replays the per-iteration
// MacroNode event stream captured from the actual assembly execution
// (internal/trace) against the DDR4 timing model (internal/dram),
// processing iterations in lockstep exactly as the paper's runtime
// requires ("both the CPU and NMP engines must operate on the same
// iteration in lockstep").
//
// Per-PE execution follows Fig. 10: Stage P1 loads "MN data1" (key,
// prefixes, suffixes) and performs the invalidation check; Stage P2 loads
// "MN data2" (wiring) for invalidated nodes and extracts TransferNodes;
// Stage P3 routes TransferNodes (local scratchpad, crossbar, or network
// bridge) and applies them to destination MacroNodes, writing the updated
// node back to memory. Stage compute times follow an instruction-count
// model (appends, comparisons and bitwise ops scale with the number of
// extensions/wires), matching the paper's "we faithfully model PEs within
// Ramulator ... based on the RTL design and the instruction count
// statistics for each stage".
package nmp

import (
	"fmt"

	"nmppak/internal/dram"
	"nmppak/internal/sim"
)

// Config parameterizes the NMP system.
type Config struct {
	Channels      int // DIMMs == channels (Fig. 9; paper: 8)
	PEsPerChannel int // paper starts at 32; 16 is the cost-effective point
	DRAM          dram.Config

	// PE buffer sizing (Table 2). Nodes larger than MNBufBytes cannot be
	// processed by a PE at all; with hybrid processing disabled they are
	// streamed with a stall penalty.
	MNBufBytes     int // 4096
	TNScratchBytes int // 1024

	// Interconnect.
	CrossbarLatency    sim.Cycle // port-to-port latency
	CrossbarBytesPerCy float64   // per output port
	BridgeLatency      sim.Cycle // DIMM-to-DIMM latency
	BridgeBytesPerCy   float64   // 25 GB/s at 1.6 GHz = 15.625 B/cycle

	// Stage compute model (cycles), from the per-stage instruction counts:
	// appending base pairs is shift+OR, plus comparisons per extension.
	P1Base, P1PerExt  sim.Cycle
	P2Base, P2PerWire sim.Cycle
	P3Base, P3PerTN   sim.Cycle

	// PELoadQueueDepth is the number of in-flight MacroNode loads a PE's
	// Stage P1 load unit sustains (Fig. 10's "Buffer for next MNs"
	// prefetching); P3QueueDepth likewise overlaps destination
	// read/update/write chains.
	PELoadQueueDepth int
	P3QueueDepth     int

	// IdealPE makes every stage compute in a single cycle (§5.3).
	IdealPE bool
	// ForwardingHitRate is the fraction of Stage P3 destination reads
	// eliminated by P1->P3 forwarding; 0 for NMP-PaK, 1 for the
	// "ideal forwarding logic" configuration (§5.3).
	ForwardingHitRate float64

	// Hybrid CPU-NMP processing (§4.3): nodes larger than
	// HybridThresholdBytes are processed by the host CPU, overlapped with
	// NMP work, synchronized at each iteration boundary. 0 disables
	// offload.
	HybridThresholdBytes int
	CPUThreads           int
	CPUExtraLatency      sim.Cycle // controller/interconnect round trip
	CPUNodeBaseCycles    sim.Cycle // software overhead per node visit
	CPUCyclesPerByte     float64   // software processing cost

	// SyncBarrierCycles is the per-iteration lockstep synchronization
	// cost.
	SyncBarrierCycles sim.Cycle

	// StaticMapping pins the DIMM range table to the iteration-0
	// partition instead of refreshing it each iteration (ablation).
	// Because Iterative Compaction preferentially removes
	// lexicographically large keys, a static table drains the high-key
	// DIMMs over time and funnels the surviving population into DIMM 0 —
	// the load-imbalance pathology the per-iteration remap (performed
	// during the reallocation pass compaction does anyway) avoids.
	StaticMapping bool
}

// DefaultConfig returns the paper's system (Table 2) with the calibrated
// compute model.
func DefaultConfig() Config {
	return Config{
		Channels:      8,
		PEsPerChannel: 32,
		DRAM:          dram.DDR4_3200(),

		MNBufBytes:     4096,
		TNScratchBytes: 1024,

		CrossbarLatency:    4,
		CrossbarBytesPerCy: 16,
		BridgeLatency:      40,
		BridgeBytesPerCy:   15.625, // 25 GB/s (DIMM-Link)

		// Double-buffered load unit (Fig. 10 "Buffer for next MNs") and
		// one destination chain in flight behind the current one.
		PELoadQueueDepth: 2,
		P3QueueDepth:     2,

		// Per-stage instruction-count model: appending/comparing a
		// (k-1)-mer against each extension costs tens of ALU operations
		// on the PE's narrow datapath. At these rates a channel's 25.6
		// GB/s saturates at roughly 32 PEs (Fig. 15's knee), and once
		// saturated, infinitely fast PEs gain nothing (the ideal-PE
		// result of §6.1).
		P1Base: 50, P1PerExt: 25,
		P2Base: 50, P2PerWire: 25,
		P3Base: 50, P3PerTN: 25,

		HybridThresholdBytes: 1024,
		CPUThreads:           64,
		CPUExtraLatency:      60,
		CPUNodeBaseCycles:    400,
		CPUCyclesPerByte:     0.2,

		SyncBarrierCycles: 200,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels < 1 || c.PEsPerChannel < 1 {
		return fmt.Errorf("nmp: need at least 1 channel and 1 PE, got %d/%d", c.Channels, c.PEsPerChannel)
	}
	if c.BridgeBytesPerCy <= 0 || c.CrossbarBytesPerCy <= 0 {
		return fmt.Errorf("nmp: interconnect bandwidth must be positive")
	}
	return nil
}

// Result summarizes a simulation.
type Result struct {
	Cycles  sim.Cycle
	Seconds float64

	// Memory-system aggregates.
	Mem         []dram.Stats
	BytesRead   int64
	BytesWrite  int64
	Utilization float64 // achieved / peak bandwidth over the whole run

	// TransferNode routing split (§6.3).
	TNSamePE    int64
	TNIntraDIMM int64 // different PE, same DIMM (crossbar)
	TNInterDIMM int64 // network bridge

	// Hybrid offload accounting (§4.3).
	NodesNMP       int64
	NodesCPU       int64
	CPUBusyCycles  sim.Cycle // summed per-iteration CPU spans
	NMPBusyCycles  sim.Cycle // summed per-iteration NMP spans
	HiddenCPUIters int64     // iterations where CPU finished before NMP

	// Scratchpad pressure.
	ScratchPeakBytes int64
	ScratchOverflows int64

	Iterations int
	PerIter    []IterTiming
}

// IterTiming records one iteration's timing split.
type IterTiming struct {
	Start, NMPDone, CPUDone, End sim.Cycle
	NodesNMP, NodesCPU           int
}

// BandwidthGBs converts the utilization base to an absolute figure.
func (r *Result) BandwidthGBs() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.BytesRead+r.BytesWrite) / r.Seconds / 1e9
}
