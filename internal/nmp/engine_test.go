package nmp

import (
	"reflect"
	"testing"
)

// Simulate is a thin loop over the stepwise Engine; driving the engine by
// hand with the same schedule must reproduce it field for field.
func TestEngineStepwiseMatchesSimulate(t *testing.T) {
	tr := getTrace(t)
	want, err := Simulate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.Iterations() != len(tr.Iterations) || e.Done() || e.Next() != 0 {
		t.Fatalf("fresh engine state: iters=%d done=%v next=%d", e.Iterations(), e.Done(), e.Next())
	}
	for !e.Done() {
		it := e.Next()
		ti := e.StepIteration(e.NextStart())
		if ti != want.PerIter[it] {
			t.Fatalf("iteration %d timing %+v, Simulate %+v", it, ti, want.PerIter[it])
		}
		if e.Now() != ti.End {
			t.Fatalf("iteration %d: engine clock %d, timing end %d", it, e.Now(), ti.End)
		}
	}
	got := e.Result()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stepwise result differs from Simulate:\n%+v\nvs\n%+v", got, want)
	}
}

// External events may interleave between iterations: holding an iteration
// back (a later notBefore, as the scale-out runtime does while halo
// traffic is in flight) must delay its start without corrupting the
// replay — the engine still completes, conserves iteration count, and the
// delay is visible in the timing.
func TestEngineDelayedStart(t *testing.T) {
	tr := getTrace(t)
	e, err := NewEngine(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const hold = 12_345
	var prevEnd int64
	for !e.Done() {
		ti := e.StepIteration(e.NextStart() + hold)
		if ti.Start < prevEnd+hold {
			t.Fatalf("iteration started at %d despite hold-back to >= %d", ti.Start, prevEnd+hold)
		}
		if ti.End < ti.Start {
			t.Fatalf("iteration ends %d before it starts %d", ti.End, ti.Start)
		}
		prevEnd = ti.End
	}
	res := e.Result()
	if res.Iterations != len(tr.Iterations) {
		t.Fatalf("iterations %d, want %d", res.Iterations, len(tr.Iterations))
	}
	// notBefore earlier than the local clock must clamp, not rewind.
	e2, err := NewEngine(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e2.StepIteration(0)
	ti := e2.StepIteration(0) // before NextStart; clamps to the engine clock
	if ti.Start < e2.Now()-(ti.End-ti.Start) {
		t.Fatalf("iteration rewound the clock: start %d", ti.Start)
	}
}

func TestEngineMisuse(t *testing.T) {
	if _, err := NewEngine(nil, DefaultConfig()); err == nil {
		t.Fatal("NewEngine accepted a nil trace")
	}
	bad := DefaultConfig()
	bad.Channels = 0
	if _, err := NewEngine(getTrace(t), bad); err == nil {
		t.Fatal("NewEngine accepted an invalid config")
	}
	e, err := NewEngine(getTrace(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		e.StepIteration(e.NextStart())
	}
	mustPanic(t, "step past end", func() { e.StepIteration(0) })
	e.Result()
	if got := e.Result(); got.Iterations != e.Iterations() {
		t.Fatal("Result not idempotent")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
