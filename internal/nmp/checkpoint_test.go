package nmp

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// Snapshotting an engine at every iteration boundary and resuming from the
// snapshot must finish with a result bit-identical to the uninterrupted
// replay: the engine's behaviour is a pure function of (trace, config,
// state), including the DRAM bank timing carried across the boundary.
func TestEngineSnapshotResumeEquivalence(t *testing.T) {
	tr := getTrace(t)
	cfg := DefaultConfig()
	want, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(tr.Iterations); cut++ {
		e, err := NewEngine(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i++ {
			e.StepIteration(e.NextStart())
		}
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		// Mutating the donor afterwards must not leak into the snapshot.
		for !e.Done() {
			e.StepIteration(e.NextStart())
		}
		r, err := ResumeEngine(tr, cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		if r.Next() != cut || r.Now() != st.Clock {
			t.Fatalf("cut %d: resumed at next=%d clock=%d", cut, r.Next(), r.Now())
		}
		for !r.Done() {
			r.StepIteration(r.NextStart())
		}
		if got := r.Result(); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: resumed result differs from uninterrupted run:\n%+v\nvs\n%+v", cut, got, want)
		}
	}
}

// Snapshot must deep-copy: stepping the donor engine after the snapshot
// cannot change the snapshot's contents. The reference is a serialized
// copy taken before the donor advances, so a shallow Snapshot — whose
// slices would alias the engine's live arrays — is actually caught.
func TestEngineSnapshotIsolation(t *testing.T) {
	tr := getTrace(t)
	cfg := DefaultConfig()
	e, err := NewEngine(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.StepIteration(e.NextStart())
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := gob.NewEncoder(&before).Encode(st); err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		e.StepIteration(e.NextStart())
	}
	var after bytes.Buffer
	if err := gob.NewEncoder(&after).Encode(st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("snapshot mutated by stepping the donor engine")
	}
}

func TestEngineResumeErrors(t *testing.T) {
	tr := getTrace(t)
	cfg := DefaultConfig()
	e, err := NewEngine(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.StepIteration(e.NextStart())
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ResumeEngine(nil, cfg, st); err == nil {
		t.Error("ResumeEngine accepted a nil trace")
	}
	bad := st
	bad.Next = len(tr.Iterations) + 1
	if _, err := ResumeEngine(tr, cfg, bad); err == nil {
		t.Error("ResumeEngine accepted an out-of-range cursor")
	}
	bad = st
	bad.Next = -1
	if _, err := ResumeEngine(tr, cfg, bad); err == nil {
		t.Error("ResumeEngine accepted a negative cursor")
	}
	narrow := cfg
	narrow.Channels = cfg.Channels / 2
	if _, err := ResumeEngine(tr, narrow, st); err == nil {
		t.Error("ResumeEngine accepted a channel-count mismatch")
	}
	// A sealed engine has folded channel stats into the result; a snapshot
	// of it would double-count on resume.
	for !e.Done() {
		e.StepIteration(e.NextStart())
	}
	e.Result()
	if _, err := e.Snapshot(); err == nil {
		t.Error("Snapshot allowed on a sealed engine")
	}
}
