package nmp

import (
	"nmppak/internal/dram"
	"nmppak/internal/sim"
	"nmppak/internal/trace"
)

// nodeLoc is a MacroNode's placement in its home DIMM for one iteration:
// consecutive 64 B blocks in one bank starting at (row, blk), never
// straddling a row unless the node exceeds the row size. This realizes the
// paper's layout assumption that MacroNodes sit inside the 8 KB row buffer.
type nodeLoc struct {
	rank, bank, row, blk, blocks int
}

// allocator packs nodes into a DIMM's rows, rotating across banks so
// consecutive nodes enjoy bank-level parallelism.
type allocator struct {
	ranks, banks, rowBlocks int
	nextBank                int
	fill                    [][]int // [rank*banks]: blocks used in current row
	rowAt                   []int   // current row per bank
}

func newAllocator(cfg dram.Config) *allocator {
	n := cfg.Ranks * cfg.BanksPerRank
	a := &allocator{
		ranks:     cfg.Ranks,
		banks:     cfg.BanksPerRank,
		rowBlocks: cfg.RowBytes / dram.BlockBytes,
	}
	a.rowAt = make([]int, n)
	a.fill = make([][]int, 1)
	a.fill[0] = make([]int, n)
	return a
}

func (a *allocator) alloc(blocks int) nodeLoc {
	n := a.ranks * a.banks
	b := a.nextBank
	a.nextBank = (a.nextBank + 1) % n
	if blocks > a.rowBlocks {
		// Oversized node: occupies whole consecutive rows of one bank.
		rows := (blocks + a.rowBlocks - 1) / a.rowBlocks
		loc := nodeLoc{rank: b / a.banks, bank: b % a.banks, row: a.rowAt[b], blk: 0, blocks: blocks}
		a.rowAt[b] += rows
		a.fill[0][b] = 0
		return loc
	}
	if a.fill[0][b]+blocks > a.rowBlocks {
		a.rowAt[b]++
		a.fill[0][b] = 0
	}
	loc := nodeLoc{rank: b / a.banks, bank: b % a.banks, row: a.rowAt[b], blk: a.fill[0][b], blocks: blocks}
	a.fill[0][b] += blocks
	return loc
}

// access reads or writes `blocks` blocks of a node starting at its
// location, splitting across rows for oversized nodes.
func access(ch *dram.Channel, earliest sim.Cycle, loc nodeLoc, blocks int, write bool) sim.Cycle {
	if blocks <= 0 {
		return earliest
	}
	rowBlocks := ch.Config().RowBytes / dram.BlockBytes
	t := earliest
	row, blk := loc.row, loc.blk
	for blocks > 0 {
		n := rowBlocks - blk
		if n > blocks {
			n = blocks
		}
		t = ch.AccessRow(t, loc.rank, loc.bank, row, n, write)
		blocks -= n
		row++
		blk = 0
	}
	return t
}

const cpuHome = -1 // nodePE value for CPU-offloaded nodes

// iterSim is the per-iteration simulation state.
type iterSim struct {
	eng     *sim.Engine
	chs     []*dram.Channel
	cfg     Config
	tr      *trace.Trace
	iter    *trace.Iteration
	startAt sim.Cycle
	res     *Result

	loc     []nodeLoc
	dimm    []int
	homePE  []int // PE index within DIMM, or cpuHome
	pes     [][]*pe
	tnBySrc map[int32][]trace.TransferOp
	upd     []updState // indexed by node idx

	xbarFree  [][]sim.Cycle // [dimm][pe] output-port free time
	bridgeOut []sim.Cycle
	bridgeIn  []sim.Cycle

	cpuQueue []cpuJob
	cpuIdle  int
	cpuNodes []int
	nmpNodes int
	lastNMP  sim.Cycle
	lastCPU  sim.Cycle
}

type updState struct {
	expected, arrived int
	op                *trace.UpdateOp
	tnBytes           int64
}

type pe struct {
	dimm, idx   int
	queue       []int
	qpos        int
	outstanding int // in-flight Stage P1 loads
	p1CompFree  sim.Cycle
	p2Queue     []int
	p2Busy      bool
	p3Queue     []int
	p3Busy      int // in-flight Stage P3 chains
	scratch     int64
}

type cpuJob struct {
	node        int
	read, write int // bytes
	compute     sim.Cycle
	extract     bool // invalidated node: emits its TransferNodes at completion
}

func newIterSim(eng *sim.Engine, chs []*dram.Channel, cfg Config, tr *trace.Trace, iter *trace.Iteration, start sim.Cycle, res *Result) *iterSim {
	is := &iterSim{
		eng: eng, chs: chs, cfg: cfg, tr: tr, iter: iter, startAt: start, res: res,
		loc:     make([]nodeLoc, len(iter.Nodes)),
		dimm:    make([]int, len(iter.Nodes)),
		homePE:  make([]int, len(iter.Nodes)),
		upd:     make([]updState, len(iter.Nodes)),
		tnBySrc: make(map[int32][]trace.TransferOp),
		cpuIdle: cfg.CPUThreads,
		lastNMP: start,
		lastCPU: start,
	}
	// Layout + PE assignment.
	allocs := make([]*allocator, cfg.Channels)
	dimmCount := make([]int, cfg.Channels)
	for i := range allocs {
		allocs[i] = newAllocator(cfg.DRAM)
	}
	is.pes = make([][]*pe, cfg.Channels)
	for d := range is.pes {
		is.pes[d] = make([]*pe, cfg.PEsPerChannel)
		for p := range is.pes[d] {
			is.pes[d][p] = &pe{dimm: d, idx: p}
		}
	}
	for i := range iter.Nodes {
		n := &iter.Nodes[i]
		var d int
		if cfg.StaticMapping {
			d = tr.DIMMOf(n.Key, cfg.Channels)
		} else {
			d = iter.DIMMOf(n.Key, cfg.Channels)
		}
		is.dimm[i] = d
		size := int(n.D1 + n.D2)
		is.loc[i] = allocs[d].alloc(dram.BlocksFor(size))
		if cfg.HybridThresholdBytes > 0 && size > cfg.HybridThresholdBytes {
			is.homePE[i] = cpuHome
			is.cpuNodes = append(is.cpuNodes, i)
			res.NodesCPU++
			continue
		}
		peIdx := dimmCount[d] % cfg.PEsPerChannel
		dimmCount[d]++
		is.homePE[i] = peIdx
		is.pes[d][peIdx].queue = append(is.pes[d][peIdx].queue, i)
		is.nmpNodes++
		res.NodesNMP++
	}
	// Transfers and updates.
	for _, tn := range iter.Transfers {
		is.tnBySrc[tn.SrcIdx] = append(is.tnBySrc[tn.SrcIdx], tn)
		is.upd[tn.DstIdx].expected++
	}
	for i := range iter.Updates {
		u := &iter.Updates[i]
		is.upd[u.DstIdx].op = u
	}
	// Interconnect ports.
	is.xbarFree = make([][]sim.Cycle, cfg.Channels)
	for d := range is.xbarFree {
		is.xbarFree[d] = make([]sim.Cycle, cfg.PEsPerChannel)
	}
	is.bridgeOut = make([]sim.Cycle, cfg.Channels)
	is.bridgeIn = make([]sim.Cycle, cfg.Channels)
	return is
}

func (is *iterSim) kickoff() {
	is.eng.At(is.startAt, func() {
		for d := range is.pes {
			for _, p := range is.pes[d] {
				if len(p.queue) > 0 {
					is.peNext(p)
				}
			}
		}
		// CPU-offloaded scans.
		for _, i := range is.cpuNodes {
			n := &is.iter.Nodes[i]
			job := cpuJob{
				node:    i,
				read:    int(n.D1 + n.D2),
				compute: is.cfg.CPUNodeBaseCycles + sim.Cycle(is.cfg.CPUCyclesPerByte*float64(n.D1+n.D2)),
				extract: n.Invalidated,
			}
			is.cpuSubmit(job)
		}
		// Updates that expect no routed TransferNodes start immediately.
		for i := range is.upd {
			if is.upd[i].op != nil && is.upd[i].expected == 0 {
				is.startUpdate(int32(i))
			}
		}
	})
}

func maxc(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}

func (is *iterSim) p1Cycles(n *trace.NodeOp) sim.Cycle {
	if is.cfg.IdealPE {
		return 1
	}
	return is.cfg.P1Base + is.cfg.P1PerExt*sim.Cycle(n.Exts)
}

func (is *iterSim) p2Cycles(n *trace.NodeOp) sim.Cycle {
	if is.cfg.IdealPE {
		return 1
	}
	return is.cfg.P2Base + is.cfg.P2PerWire*sim.Cycle(n.Wires)
}

func (is *iterSim) p3Cycles(tns int) sim.Cycle {
	if is.cfg.IdealPE {
		return 1
	}
	return is.cfg.P3Base + is.cfg.P3PerTN*sim.Cycle(tns)
}

// peNext pumps the PE's Stage P1: up to PELoadQueueDepth MacroNode loads
// in flight ("Buffer for next MNs" in Fig. 10), with the invalidation-check
// ALU running behind the load stream.
func (is *iterSim) peNext(p *pe) {
	depth := is.cfg.PELoadQueueDepth
	if depth < 1 {
		depth = 1
	}
	for p.outstanding < depth && p.qpos < len(p.queue) {
		i := p.queue[p.qpos]
		p.qpos++
		p.outstanding++
		n := &is.iter.Nodes[i]
		ch := is.chs[p.dimm]
		d1Blocks := dram.BlocksFor(int(n.D1))
		loadDone := access(ch, is.eng.Now(), is.loc[i], d1Blocks, false)
		compDone := maxc(loadDone, p.p1CompFree) + is.p1Cycles(n)
		p.p1CompFree = compDone
		is.noteNMP(compDone)
		inval := n.Invalidated
		is.eng.At(loadDone, func() {
			p.outstanding--
			is.peNext(p)
		})
		if inval {
			is.eng.At(compDone, func() { is.peP2(p, i) })
		}
	}
}

// peP2 enqueues TransferNode extraction for an invalidated node; the P2
// unit serves one node at a time: load the wiring (data2), compute the
// outgoing TransferNodes, route them. DRAM state is only touched at the
// current simulation time so bank bookings stay causally ordered.
func (is *iterSim) peP2(p *pe, i int) {
	p.p2Queue = append(p.p2Queue, i)
	is.pumpP2(p)
}

func (is *iterSim) pumpP2(p *pe) {
	if p.p2Busy || len(p.p2Queue) == 0 {
		return
	}
	p.p2Busy = true
	i := p.p2Queue[0]
	p.p2Queue = p.p2Queue[1:]
	n := &is.iter.Nodes[i]
	ch := is.chs[p.dimm]
	total := dram.BlocksFor(int(n.D1 + n.D2))
	d2Blocks := total - dram.BlocksFor(int(n.D1))
	loc := is.loc[i]
	loc.blk += dram.BlocksFor(int(n.D1))
	d2Done := access(ch, is.eng.Now(), loc, d2Blocks, false)
	p2Done := d2Done + is.p2Cycles(n)
	is.noteNMP(p2Done)
	is.eng.At(p2Done, func() {
		is.routeTNs(p, i)
		p.p2Busy = false
		is.pumpP2(p)
	})
}

// routeTNs sends node i's TransferNodes to their destinations through the
// local scratchpad, the crossbar, or the network bridge (Fig. 9/10 Stage
// P3 routing).
func (is *iterSim) routeTNs(p *pe, i int) {
	now := is.eng.Now()
	for _, tn := range is.tnBySrc[int32(i)] {
		dst := int(tn.DstIdx)
		dstDimm := is.dimm[dst]
		dstPE := is.homePE[dst]
		bytes := int(tn.TNBytes)
		var arrival sim.Cycle
		switch {
		case dstPE == cpuHome:
			// Offloaded destination: the TransferNode is handed to the
			// host through the channel interface.
			arrival = now + is.cfg.CPUExtraLatency
			is.res.TNInterDIMM++ // leaves the DIMM either way
		case dstDimm == p.dimm && dstPE == p.idx:
			arrival = now + 1
			is.res.TNSamePE++
		case dstDimm == p.dimm:
			port := &is.xbarFree[dstDimm][dstPE]
			slot := maxc(now, *port)
			dur := sim.Cycle(float64(bytes)/is.cfg.CrossbarBytesPerCy) + 1
			*port = slot + dur
			arrival = slot + dur + is.cfg.CrossbarLatency
			is.res.TNIntraDIMM++
		default:
			out := &is.bridgeOut[p.dimm]
			slot := maxc(now, *out)
			dur := sim.Cycle(float64(bytes)/is.cfg.BridgeBytesPerCy) + 1
			*out = slot + dur
			in := &is.bridgeIn[dstDimm]
			slot2 := maxc(slot+dur+is.cfg.BridgeLatency, *in)
			*in = slot2 + dur
			arrival = slot2 + dur + is.cfg.CrossbarLatency
			is.res.TNInterDIMM++
		}
		is.noteNMP(arrival)
		is.eng.At(arrival, func() { is.deliverTN(dst, bytes) })
	}
}

// deliverTN lands one TransferNode in the destination's scratchpad (or CPU
// mailbox); once all TransferNodes for a destination have arrived, its
// Stage P3 update is eligible.
func (is *iterSim) deliverTN(dst, bytes int) {
	st := &is.upd[dst]
	st.arrived++
	st.tnBytes += int64(bytes)
	if is.homePE[dst] != cpuHome {
		p := is.pes[is.dimm[dst]][is.homePE[dst]]
		p.scratch += int64(bytes)
		if p.scratch > is.res.ScratchPeakBytes {
			is.res.ScratchPeakBytes = p.scratch
		}
		if p.scratch > int64(is.cfg.TNScratchBytes) {
			is.res.ScratchOverflows++
		}
	}
	if st.arrived == st.expected && st.op != nil {
		is.startUpdate(int32(dst))
	}
}

// startUpdate dispatches a destination update to its home PE's Stage P3 or
// to the CPU pool for offloaded nodes.
func (is *iterSim) startUpdate(dst int32) {
	d := int(dst)
	if is.homePE[d] == cpuHome {
		op := is.upd[d].op
		is.cpuSubmit(cpuJob{
			node:    d,
			read:    int(op.ReadBytes),
			write:   int(op.WriteBytes),
			compute: is.cfg.CPUNodeBaseCycles + sim.Cycle(is.cfg.CPUCyclesPerByte*float64(op.ReadBytes+op.WriteBytes)),
		})
		return
	}
	p := is.pes[is.dimm[d]][is.homePE[d]]
	p.p3Queue = append(p.p3Queue, d)
	is.pumpP3(p)
}

// pumpP3 runs the PE's Stage P3 server: read the destination node, apply
// the TransferNodes, write the node back; up to P3QueueDepth destination
// chains overlap.
func (is *iterSim) pumpP3(p *pe) {
	depth := is.cfg.P3QueueDepth
	if depth < 1 {
		depth = 1
	}
	for p.p3Busy < depth && len(p.p3Queue) > 0 {
		p.p3Busy++
		d := p.p3Queue[0]
		p.p3Queue = p.p3Queue[1:]
		st := &is.upd[d]
		ch := is.chs[p.dimm]
		readBytes := float64(st.op.ReadBytes) * (1 - is.cfg.ForwardingHitRate)
		rd := access(ch, is.eng.Now(), is.loc[d], dram.BlocksFor(int(readBytes)), false)
		comp := rd + is.p3Cycles(st.expected)
		tnBytes := st.tnBytes
		loc := is.loc[d]
		wrBlocks := dram.BlocksFor(int(st.op.WriteBytes))
		is.eng.At(comp, func() {
			// The write-back is posted: it reserves bank and bus time (at
			// the moment it is issued) but the PE does not stall on it.
			wr := access(ch, is.eng.Now(), loc, wrBlocks, true)
			is.noteNMP(wr)
			p.scratch -= tnBytes
			p.p3Busy--
			is.pumpP3(p)
		})
	}
}

// cpuSubmit queues work for the host CPU thread pool (§4.3 hybrid
// processing).
func (is *iterSim) cpuSubmit(job cpuJob) {
	is.cpuQueue = append(is.cpuQueue, job)
	if is.cpuIdle > 0 {
		is.cpuIdle--
		is.eng.At(is.eng.Now(), is.cpuRun)
	}
}

// cpuRun services one CPU job at a time per logical thread.
func (is *iterSim) cpuRun() {
	if len(is.cpuQueue) == 0 {
		is.cpuIdle++
		return
	}
	job := is.cpuQueue[0]
	is.cpuQueue = is.cpuQueue[1:]
	ch := is.chs[is.dimm[job.node]]
	t := access(ch, is.eng.Now(), is.loc[job.node], dram.BlocksFor(job.read), false)
	t += is.cfg.CPUExtraLatency + job.compute
	node := job.node
	extract := job.extract
	write := job.write
	is.eng.At(t, func() {
		done := is.eng.Now()
		if write > 0 {
			done = access(ch, done, is.loc[node], dram.BlocksFor(write), true) + is.cfg.CPUExtraLatency
		}
		is.noteCPU(done)
		is.eng.At(done, func() {
			if extract {
				is.cpuExtract(node)
			}
			is.cpuRun()
		})
	})
}

// cpuExtract emits an offloaded invalidated node's TransferNodes; they
// reach NMP-resident destinations through the channel interface without
// crossbar contention.
func (is *iterSim) cpuExtract(i int) {
	now := is.eng.Now()
	for _, tn := range is.tnBySrc[int32(i)] {
		dst := int(tn.DstIdx)
		bytes := int(tn.TNBytes)
		arrival := now + is.cfg.CPUExtraLatency
		is.noteCPU(arrival)
		is.eng.At(arrival, func() { is.deliverTN(dst, bytes) })
	}
}

func (is *iterSim) noteNMP(t sim.Cycle) {
	if t > is.lastNMP {
		is.lastNMP = t
	}
}

func (is *iterSim) noteCPU(t sim.Cycle) {
	if t > is.lastCPU {
		is.lastCPU = t
	}
}
