package nmp

import (
	"fmt"

	"nmppak/internal/dram"
	"nmppak/internal/sim"
	"nmppak/internal/trace"
)

// EngineState is a complete snapshot of a quiescent Engine between
// StepIteration calls: the trace cursor, the local clock, the accumulated
// (unsealed) result, and every DRAM channel's timing state. An engine's
// intra-iteration behaviour is a pure function of (trace, Config,
// EngineState), so ResumeEngine continues a replay bit-identically to the
// uninterrupted run — the foundation internal/scaleout's distributed
// checkpoint/restore builds on.
type EngineState struct {
	// Next is the index of the first iteration still to be stepped.
	Next int
	// Clock is the local end time of the last stepped iteration.
	Clock sim.Cycle
	// Res is the mid-run accumulated result (aggregate fields unsealed:
	// Result() has not been called).
	Res Result
	// Channels holds one timing snapshot per DRAM channel.
	Channels []dram.ChannelState
}

// Snapshot deep-copies the engine's state. The engine must be quiescent
// (it always is between StepIteration calls) and not yet sealed by
// Result().
func (e *Engine) Snapshot() (EngineState, error) {
	if e.final {
		return EngineState{}, fmt.Errorf("nmp: Snapshot after Result")
	}
	st := EngineState{
		Next:     e.next,
		Clock:    e.clock,
		Res:      e.res,
		Channels: make([]dram.ChannelState, len(e.channels)),
	}
	st.Res.PerIter = append([]IterTiming(nil), e.res.PerIter...)
	st.Res.Mem = append([]dram.Stats(nil), e.res.Mem...)
	for i, ch := range e.channels {
		st.Channels[i] = ch.State()
	}
	return st, nil
}

// ResumeEngine reconstructs an Engine mid-replay from a snapshot: the same
// trace and configuration the snapshot was taken under, positioned to step
// iteration st.Next. Iterations before st.Next are never read again, so a
// caller that reconstructs tr may substitute empty placeholders for them.
func ResumeEngine(tr *trace.Trace, cfg Config, st EngineState) (*Engine, error) {
	e, err := NewEngine(tr, cfg)
	if err != nil {
		return nil, err
	}
	if st.Next < 0 || st.Next > len(tr.Iterations) {
		return nil, fmt.Errorf("nmp: resume cursor %d outside trace of %d iterations", st.Next, len(tr.Iterations))
	}
	if len(st.Channels) != len(e.channels) {
		return nil, fmt.Errorf("nmp: state has %d channels, config has %d", len(st.Channels), len(e.channels))
	}
	for i, ch := range e.channels {
		if err := ch.SetState(st.Channels[i]); err != nil {
			return nil, err
		}
	}
	e.next = st.Next
	e.clock = st.Clock
	e.res = st.Res
	e.res.PerIter = append([]IterTiming(nil), st.Res.PerIter...)
	e.res.Mem = append([]dram.Stats(nil), st.Res.Mem...)
	return e, nil
}
