package nmp

import (
	"fmt"

	"nmppak/internal/dram"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/trace"
)

// Engine is a resumable trace replay: one NMP-PaK node whose simulation
// advances one compaction iteration per StepIteration call instead of
// running to completion. Between steps the engine is quiescent — no
// pending events, all DRAM bank state settled into absolute cycle times —
// so an external driver (the scale-out runtime, internal/scaleout) can
// interleave its own events between iterations and impose per-iteration
// start times without perturbing the intra-iteration outcome. Simulate is
// a thin loop over StepIteration and produces bit-identical results to
// the pre-refactor monolithic simulator.
//
// Time inside an Engine is the node's local clock. StepIteration's
// notBefore argument is expressed on that clock; drivers that run many
// engines on a shared global timeline (each with its own local clock)
// translate between the two by offsetting durations, never by rewinding
// an engine.
type Engine struct {
	cfg      Config
	tr       *trace.Trace
	channels []*dram.Channel
	kernel   sim.Engine
	res      Result
	next     int       // index of the next iteration to step
	clock    sim.Cycle // local end time of the last stepped iteration
	final    bool      // Result() has sealed the aggregate fields
}

// NewEngine validates the configuration and prepares a stepwise replay of
// tr. No simulation work happens until the first StepIteration.
func NewEngine(tr *trace.Trace, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("nmp: nil trace")
	}
	e := &Engine{cfg: cfg, tr: tr, channels: make([]*dram.Channel, cfg.Channels)}
	for i := range e.channels {
		e.channels[i] = dram.NewChannel(cfg.DRAM)
	}
	return e, nil
}

// Iterations returns the total iteration count of the trace.
func (e *Engine) Iterations() int { return len(e.tr.Iterations) }

// Next returns the index of the iteration the next StepIteration will run.
func (e *Engine) Next() int { return e.next }

// Done reports whether every iteration has been stepped.
func (e *Engine) Done() bool { return e.next >= len(e.tr.Iterations) }

// Now returns the local end time of the last stepped iteration (0 before
// the first step).
func (e *Engine) Now() sim.Cycle { return e.clock }

// SetKernelProbe attaches an event-loop probe to the engine's internal
// event kernel (nil detaches; disabled costs one branch per event).
func (e *Engine) SetKernelProbe(p *sim.Probe) { e.kernel.SetProbe(p) }

// SetDRAMProbes attaches one data-bus occupancy track per DRAM channel
// (tracks[i] to channel i; a short or nil slice leaves the rest
// unprobed). Spans land on the engine's local clock; drivers re-base them
// with Track.ShiftTail after each step.
func (e *Engine) SetDRAMProbes(tracks []*telemetry.Track) {
	for i, ch := range e.channels {
		if i < len(tracks) {
			ch.SetProbe(tracks[i])
		} else {
			ch.SetProbe(nil)
		}
	}
}

// AppendBusBusy appends each channel's cumulative data-bus busy cycles to
// dst (drivers diff successive calls to attribute DRAM-bound time to one
// iteration).
func (e *Engine) AppendBusBusy(dst []int64) []int64 {
	for _, ch := range e.channels {
		dst = append(dst, ch.Stats.BusBusyCycles)
	}
	return dst
}

// NextStart returns the earliest local time the next iteration may begin:
// the end of the previous one plus the runtime's lockstep sync barrier
// (iteration 0 starts at 0). Passing this to StepIteration reproduces the
// back-to-back schedule of Simulate.
func (e *Engine) NextStart() sim.Cycle {
	if e.next == 0 {
		return 0
	}
	return e.clock + e.cfg.SyncBarrierCycles
}

// StepIteration simulates the next iteration, beginning no earlier than
// notBefore on the engine's local clock, and returns its timing. The
// caller controls inter-iteration time: NextStart() gives the single-node
// schedule, while a distributed driver may hold an iteration back until
// halo traffic has been delivered. Stepping a finished engine panics.
func (e *Engine) StepIteration(notBefore sim.Cycle) IterTiming {
	if e.Done() {
		panic("nmp: StepIteration past the end of the trace")
	}
	if e.final {
		panic("nmp: StepIteration after Result")
	}
	start := notBefore
	if start < e.clock {
		start = e.clock
	}
	iter := &e.tr.Iterations[e.next]
	is := newIterSim(&e.kernel, e.channels, e.cfg, e.tr, iter, start, &e.res)
	is.kickoff()
	e.kernel.Run()
	end := e.kernel.Now()
	ti := IterTiming{
		Start: start, NMPDone: is.lastNMP, CPUDone: is.lastCPU, End: end,
		NodesNMP: is.nmpNodes, NodesCPU: len(is.cpuNodes),
	}
	e.res.PerIter = append(e.res.PerIter, ti)
	e.res.NMPBusyCycles += is.lastNMP - start
	if is.lastCPU > start {
		e.res.CPUBusyCycles += is.lastCPU - start
	}
	if is.lastCPU <= is.lastNMP {
		e.res.HiddenCPUIters++
	}
	e.clock = end
	e.next++
	return ti
}

// Result seals and returns the accumulated simulation result. It may be
// called once all desired iterations are stepped (normally when Done);
// the engine cannot be stepped afterwards.
func (e *Engine) Result() *Result {
	if !e.final {
		e.final = true
		e.res.Iterations = e.next
		e.res.Cycles = e.clock
		e.res.Seconds = sim.Seconds(e.res.Cycles)
		for _, ch := range e.channels {
			e.res.Mem = append(e.res.Mem, ch.Stats)
			e.res.BytesRead += ch.Stats.BytesRead
			e.res.BytesWrite += ch.Stats.BytesWritten
		}
		peak := e.cfg.DRAM.PeakBytesPerCycle() * float64(e.res.Cycles) * float64(e.cfg.Channels)
		if peak > 0 {
			e.res.Utilization = float64(e.res.BytesRead+e.res.BytesWrite) / peak
		}
	}
	return &e.res
}

// Simulate replays a compaction trace on the NMP system: a stepwise
// Engine driven back-to-back (each iteration starts one sync barrier
// after the previous one ends).
func Simulate(tr *trace.Trace, cfg Config) (*Result, error) {
	e, err := NewEngine(tr, cfg)
	if err != nil {
		return nil, err
	}
	for !e.Done() {
		e.StepIteration(e.NextStart())
	}
	return e.Result(), nil
}

// String renders a short result summary.
func (r *Result) String() string {
	return fmt.Sprintf("nmp: %d iters, %.3f ms, util %.1f%%, TN same-PE/intra/inter = %d/%d/%d, CPU nodes %d",
		r.Iterations, r.Seconds*1e3, r.Utilization*100, r.TNSamePE, r.TNIntraDIMM, r.TNInterDIMM, r.NodesCPU)
}
