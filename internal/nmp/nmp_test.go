package nmp

import (
	"testing"

	"nmppak/internal/compact"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
	"nmppak/internal/trace"
)

func recordTrace(t testing.TB, length int, seed int64) *trace.Trace {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: length, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 10, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmer.Count(reads, kmer.Config{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder(32)
	if _, err := compact.Run(pg, compact.Options{Observer: b, Workers: 4, Threshold: pg.Len() / 100}); err != nil {
		t.Fatal(err)
	}
	return b.Trace()
}

var sharedTrace *trace.Trace

func getTrace(t testing.TB) *trace.Trace {
	if sharedTrace == nil {
		sharedTrace = recordTrace(t, 20000, 7)
	}
	return sharedTrace
}

func TestSimulateCompletes(t *testing.T) {
	tr := getTrace(t)
	res, err := Simulate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.Iterations != len(tr.Iterations) {
		t.Fatalf("iterations %d want %d", res.Iterations, len(tr.Iterations))
	}
	if res.BytesRead == 0 || res.BytesWrite == 0 {
		t.Fatal("no memory traffic")
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v out of (0,1]", res.Utilization)
	}
}

func TestDeterministic(t *testing.T) {
	tr := getTrace(t)
	a, err := Simulate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TNInterDIMM != b.TNInterDIMM {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.TNInterDIMM, b.Cycles, b.TNInterDIMM)
	}
}

// TestCommunicationSplit reproduces §6.3's expectation: with 8 DIMMs and
// ascending-key range partitioning, ~87.5% of TransferNodes cross DIMMs;
// within a DIMM, most target a different PE.
func TestCommunicationSplit(t *testing.T) {
	tr := getTrace(t)
	cfg := DefaultConfig()
	cfg.PEsPerChannel = 16
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(res.TNSamePE + res.TNIntraDIMM + res.TNInterDIMM)
	if total == 0 {
		t.Fatal("no transfers routed")
	}
	inter := float64(res.TNInterDIMM) / total
	if inter < 0.75 || inter > 0.95 {
		t.Fatalf("inter-DIMM fraction %.2f, expected ~0.875", inter)
	}
	intra := float64(res.TNSamePE+res.TNIntraDIMM) / total
	if intra < 0.05 || intra > 0.25 {
		t.Fatalf("intra-DIMM fraction %.2f, expected ~0.125", intra)
	}
}

// TestMorePEsFaster: the Fig. 15 premise — throughput scales with PEs per
// channel until saturation.
func TestMorePEsFaster(t *testing.T) {
	tr := getTrace(t)
	var prev *Result
	for _, pes := range []int{1, 4, 16} {
		cfg := DefaultConfig()
		cfg.PEsPerChannel = pes
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && res.Cycles >= prev.Cycles {
			t.Fatalf("%d PEs (%d cycles) not faster than fewer (%d)", pes, res.Cycles, prev.Cycles)
		}
		prev = res
	}
}

// TestIdealPECloseToReal: the paper's finding that PEs are not the
// bottleneck — ideal (single-cycle) PEs barely help.
func TestIdealPECloseToReal(t *testing.T) {
	tr := getTrace(t)
	real, err := Simulate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.IdealPE = true
	ideal, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's finding: infinitely fast PEs do not improve performance
	// at the default PE count (the channel is the bottleneck). Our model
	// reproduces that within contention noise: the ratio must stay near
	// 1 in both directions (ideal compute removes the natural pacing of
	// requests, so it can even lose slightly to burst contention).
	ratio := float64(real.Cycles) / float64(ideal.Cycles)
	if ratio > 1.35 {
		t.Fatalf("ideal PE speedup %.2fx: PEs are a bottleneck, contradicting the design point", ratio)
	}
	if ratio < 0.6 {
		t.Fatalf("ideal PE %.2fx slower than real: model artifact too large", 1/ratio)
	}
}

// TestIdealForwardingReducesReads: Fig. 14's ideal-fwd bar.
func TestIdealForwardingReducesReads(t *testing.T) {
	tr := getTrace(t)
	real, err := Simulate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ForwardingHitRate = 1
	fwd, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.BytesRead >= real.BytesRead {
		t.Fatalf("forwarding did not cut reads: %d vs %d", fwd.BytesRead, real.BytesRead)
	}
	if fwd.BytesWrite != real.BytesWrite {
		t.Fatalf("forwarding changed writes: %d vs %d", fwd.BytesWrite, real.BytesWrite)
	}
	if fwd.Cycles > real.Cycles {
		t.Fatal("forwarding slowed the system down")
	}
}

// TestHybridOffload: nodes above the threshold go to the CPU and their
// processing overlaps NMP work (§4.3).
func TestHybridOffload(t *testing.T) {
	tr := getTrace(t)
	cfg := DefaultConfig()
	cfg.HybridThresholdBytes = 64 // aggressive, to get a population at this scale
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesCPU == 0 {
		t.Fatal("no nodes offloaded at a 64 B threshold")
	}
	if res.NodesCPU+res.NodesNMP == 0 || res.NodesNMP == 0 {
		t.Fatal("all nodes offloaded")
	}
	off, err := Simulate(tr, func() Config { c := DefaultConfig(); c.HybridThresholdBytes = 0; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if off.NodesCPU != 0 {
		t.Fatal("offload disabled but CPU nodes present")
	}
}

func TestScratchpadTracked(t *testing.T) {
	tr := getTrace(t)
	res, err := Simulate(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ScratchPeakBytes <= 0 {
		t.Fatal("scratch occupancy never tracked")
	}
}

func TestValidation(t *testing.T) {
	tr := getTrace(t)
	bad := DefaultConfig()
	bad.Channels = 0
	if _, err := Simulate(tr, bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestAllocatorPacksRows(t *testing.T) {
	a := newAllocator(DefaultConfig().DRAM)
	seen := map[[3]int]int{}
	for i := 0; i < 1000; i++ {
		loc := a.alloc(4) // 256 B nodes
		if loc.blk+4 > 128 {
			t.Fatalf("node straddles row: %+v", loc)
		}
		seen[[3]int{loc.rank, loc.bank, loc.row}] += 4
	}
	for k, used := range seen {
		if used > 128 {
			t.Fatalf("row %v overfilled: %d blocks", k, used)
		}
	}
	// Oversized allocation spans rows.
	big := a.alloc(300)
	if big.blocks != 300 || big.blk != 0 {
		t.Fatalf("oversized alloc %+v", big)
	}
}
