package conformance

import "testing"

// TestFaultMatrix sweeps topology × discipline × fault position ×
// checkpoint cadence, asserting completion, output conservation, visible
// recovery overhead and bit-exact determinism for every cell. In -short
// mode only the no-checkpoint column runs.
func TestFaultMatrix(t *testing.T) {
	f := fixture(t)
	for _, c := range FaultMatrix(4) {
		c := c
		if testing.Short() && c.Every != 0 {
			continue
		}
		t.Run(c.Name(), func(t *testing.T) {
			if err := VerifyFault(f, c); err != nil {
				t.Fatal(err)
			}
		})
	}
}
