package conformance

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"nmppak/internal/topo"
)

var (
	fxOnce sync.Once
	fx     *Fixture
	fxErr  error
)

// fixture builds the shared workload once per test binary (trace capture
// is the expensive part; every cell of the sweep replays it).
func fixture(t *testing.T) *Fixture {
	t.Helper()
	fxOnce.Do(func() { fx, fxErr = NewFixture(12_000) })
	if fxErr != nil {
		t.Fatal(fxErr)
	}
	return fx
}

// TestMatrix sweeps topology × discipline × partitioner × node count with
// a mid-trace checkpoint, asserting resume equivalence, blob determinism
// and round-trip stability for every cell (and that the one illegal cell
// family, overlap × rebalance, is rejected by validation). In -short mode
// only the 4-node column runs.
func TestMatrix(t *testing.T) {
	f := fixture(t)
	nodes := []int{1, 4, 8}
	if testing.Short() {
		nodes = []int{4}
	}
	for _, c := range Matrix(nodes) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := Verify(f, c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckpointIterationSweep pins resume equivalence at every legal
// checkpoint boundary — including 0 (before any compaction iteration) and
// the trace end (after the last one) — on one representative cell per
// discipline, plus the rebalancing runtime whose state machine is the
// richest.
func TestCheckpointIterationSweep(t *testing.T) {
	f := fixture(t)
	iters := len(f.Trace.Iterations)
	if iters < 2 {
		t.Fatalf("fixture trace has only %d iterations; the sweep needs at least 2", iters)
	}
	cells := []Case{
		{Topo: topo.Torus2D, Overlap: false, Part: PartMinimizer, Nodes: 4},
		{Topo: topo.FullMesh, Overlap: true, Part: PartHash, Nodes: 4},
		{Topo: topo.Dragonfly, Overlap: false, Part: PartRebalance, Nodes: 4},
	}
	step := 1
	if testing.Short() {
		step = (iters + 2) / 3
	}
	var probes []int
	for at := 0; at <= iters; at += step {
		probes = append(probes, at)
	}
	if probes[len(probes)-1] != iters {
		probes = append(probes, iters) // never lose the trace-end boundary
	}
	for _, base := range cells {
		for _, at := range probes {
			c := base
			c.At = at
			t.Run(c.Name(), func(t *testing.T) {
				if err := Verify(f, c); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// parallelDepths returns the pre-step depth column(s) of the parallel
// sweep. The CI race matrix pins one depth per job via the
// NMPPAK_PRESTEP_DEPTH environment variable; unset, both the default
// depth and a deeper window run in-process. A malformed value fails the
// test instead of silently falling back — a typo in the CI matrix would
// otherwise run the wrong sweep and still report green.
func parallelDepths(t *testing.T) []int {
	t.Helper()
	v := os.Getenv("NMPPAK_PRESTEP_DEPTH")
	if v == "" {
		return []int{1, 3}
	}
	d, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("NMPPAK_PRESTEP_DEPTH=%q is not an integer: %v", v, err)
	}
	if d <= 0 {
		t.Fatalf("NMPPAK_PRESTEP_DEPTH=%q must be a positive pre-step depth", v)
	}
	return []int{d}
}

// TestParallelMatrix sweeps the serial-vs-parallel equivalence matrix:
// topology × discipline (BSP, overlap, rebalance, elastic with a
// mid-phase node loss) × node count × pre-step depth, asserting
// bit-identical Results, byte-identical telemetry traces, byte-identical
// checkpoint blobs and cross-mode (parallel-captured/serially-restored
// and vice versa) resume equivalence for Workers ∈ {1, 4}. In -short
// mode only the 4-node column runs; the full sweep includes the 64-node
// column the speedup benchmarks target.
func TestParallelMatrix(t *testing.T) {
	f := fixture(t)
	nodes := []int{1, 4, 8, 64}
	if testing.Short() {
		nodes = []int{4}
	}
	for _, c := range ParallelMatrix(nodes, parallelDepths(t)) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := VerifyParallel(f, c, 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}
