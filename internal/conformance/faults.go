// Fault conformance: the elastic-recovery analogue of the resume sweep.
// Every cell of topology × discipline × fault position × checkpoint
// cadence injects a deterministic node loss into the compaction replay
// and asserts the recovery contract the elastic runtime promises:
//
//  1. Completion: the run finishes (no hang, no error) with the casualty
//     frozen and exactly one recovery performed.
//  2. Output conservation: the committed work — the global MacroNodes
//     processed on the NMP and CPU paths, summed over every node — equals
//     the fault-free run's, i.e. each global iteration is committed
//     exactly once despite the discard/re-execute cycle.
//  3. Recovery is paid for, never free: the recovered run is strictly
//     slower than the fault-free one, detection and restore cycles are
//     charged, and the dead node's shard moves bytes to the survivors.
//  4. Determinism: repeating the cell reproduces the Result bit for bit
//     (the CI matrix runs this under -race -shuffle=on).
package conformance

import (
	"fmt"
	"reflect"

	"nmppak/internal/fault"
	"nmppak/internal/scaleout"
	"nmppak/internal/sim"
	"nmppak/internal/topo"
)

// FaultCase is one cell of the fault conformance matrix.
type FaultCase struct {
	Topo    topo.Kind
	Overlap bool
	Nodes   int
	// Lost is the node the plan kills.
	Lost int
	// AtFrac positions the loss on the compaction-phase clock as a
	// fraction of the fault-free phase length (0.5 = mid-phase).
	AtFrac float64
	// Every is the periodic checkpoint cadence in iterations; 0 recovers
	// by restarting the phase on the survivors.
	Every int
}

// Name renders the cell for subtest names and error messages.
func (c FaultCase) Name() string {
	disc := "bsp"
	if c.Overlap {
		disc = "overlap"
	}
	return fmt.Sprintf("%s/%s/n%d/lose%d@%.0f%%/ckpt%d",
		c.Topo, disc, c.Nodes, c.Lost, c.AtFrac*100, c.Every)
}

// Config materializes the cell against a fixture (hash partitioning — the
// failover assignment composes with any static partitioner, and the
// resume sweep already covers the partitioner dimension).
func (c FaultCase) Config(fx *Fixture) (scaleout.Config, error) {
	base := Case{Topo: c.Topo, Overlap: c.Overlap, Part: PartHash, Nodes: c.Nodes}
	cfg, err := base.Config(fx)
	if err != nil {
		return cfg, err
	}
	cfg.CheckpointEvery = c.Every
	return cfg, nil
}

// FaultMatrix enumerates the sweep: every topology, both disciplines, an
// early and a late loss, with and without periodic checkpoints.
func FaultMatrix(nodes int) []FaultCase {
	var cases []FaultCase
	for _, kind := range []topo.Kind{topo.FullMesh, topo.Torus2D, topo.Dragonfly} {
		for _, overlap := range []bool{false, true} {
			for _, frac := range []float64{0.25, 0.75} {
				for _, every := range []int{0, 2} {
					cases = append(cases, FaultCase{
						Topo: kind, Overlap: overlap, Nodes: nodes,
						Lost: nodes / 2, AtFrac: frac, Every: every,
					})
				}
			}
		}
	}
	return cases
}

// VerifyFault runs one cell end to end and returns the first violated
// recovery property as an error (nil when the cell conforms).
func VerifyFault(fx *Fixture, c FaultCase) error {
	cfg, err := c.Config(fx)
	if err != nil {
		return err
	}
	golden, err := scaleout.Simulate(fx.Reads, fx.Trace, cfg)
	if err != nil {
		return fmt.Errorf("%s: fault-free run: %w", c.Name(), err)
	}
	const detect = 500
	at := sim.Cycle(float64(golden.Compact.Total()) * c.AtFrac)
	cfg.Faults = fault.NodeLossAt(c.Lost, at, detect)

	res, err := scaleout.Simulate(fx.Reads, fx.Trace, cfg)
	if err != nil {
		return fmt.Errorf("%s: recovered run: %w", c.Name(), err)
	}

	// Property 1: completion with exactly one loss and one recovery.
	if res.NodesLost != 1 || res.Recoveries != 1 || res.FaultsInjected != 1 {
		return fmt.Errorf("%s: lost=%d recoveries=%d injected=%d, want 1/1/1",
			c.Name(), res.NodesLost, res.Recoveries, res.FaultsInjected)
	}

	// Property 2: output conservation.
	var wantWork, gotWork int64
	for _, r := range golden.NMP {
		wantWork += r.NodesNMP + r.NodesCPU
	}
	for _, r := range res.NMP {
		gotWork += r.NodesNMP + r.NodesCPU
	}
	if gotWork != wantWork {
		return fmt.Errorf("%s: committed work %d MacroNodes, fault-free run committed %d",
			c.Name(), gotWork, wantWork)
	}

	// Property 3: recovery overhead is visible in the accounting.
	if res.TotalCycles <= golden.TotalCycles {
		return fmt.Errorf("%s: recovered run (%d cycles) not slower than fault-free (%d)",
			c.Name(), res.TotalCycles, golden.TotalCycles)
	}
	if res.RecoveryCycles < detect {
		return fmt.Errorf("%s: recovery cycles %d below the %d-cycle detection latency",
			c.Name(), res.RecoveryCycles, detect)
	}
	if res.RepartitionBytes <= 0 {
		return fmt.Errorf("%s: recovery re-partitioned no shard bytes", c.Name())
	}
	if c.Every > 0 && res.Checkpoints == 0 {
		return fmt.Errorf("%s: cadence %d captured no checkpoints", c.Name(), c.Every)
	}

	// Property 4: determinism.
	again, err := scaleout.Simulate(fx.Reads, fx.Trace, cfg)
	if err != nil {
		return fmt.Errorf("%s: repeat run: %w", c.Name(), err)
	}
	if !reflect.DeepEqual(again, res) {
		return fmt.Errorf("%s: recovered run is not deterministic", c.Name())
	}
	return nil
}
