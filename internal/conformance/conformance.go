// Package conformance is the resume-equivalence test layer for the
// distributed runtime's checkpoint/restore (internal/scaleout): it sweeps
// the configuration matrix — topology × replay discipline × partitioner ×
// node count × checkpoint iteration — and, for every cell, asserts the
// three properties the blob format promises:
//
//  1. Resume equivalence: a run checkpointed mid-way and restored finishes
//     with a Result bit-identical (reflect.DeepEqual, floats included) to
//     the uninterrupted run.
//  2. Blob determinism: checkpointing the same (reads, trace, config,
//     iteration) twice yields byte-identical blobs.
//  3. Round-trip stability: decoding a blob and re-encoding it reproduces
//     the same bytes.
//
// The harness is ordinary library code so other packages (and future
// conformance dimensions, e.g. multi-tenant interleaving) can reuse the
// matrix and the verifier; conformance_test.go drives it under `go test`.
package conformance

import (
	"bytes"
	"fmt"
	"reflect"

	"nmppak/internal/assemble"
	"nmppak/internal/compact"
	"nmppak/internal/fault"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/readsim"
	"nmppak/internal/scaleout"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// Fixture is the shared workload a sweep runs against: reads, their
// captured compaction trace, and the counting result the weight-aware
// partitioner is built from. The genome carries a repeat family so the
// rebalancing partitioner has real skew to react to.
type Fixture struct {
	Reads []readsim.Read
	Trace *trace.Trace
	Kmers *kmer.Result
	K     int
}

// NewFixture builds the workload: a repeat-skewed synthetic genome,
// simulated short reads, one traced single-batch assembly and the counting
// result.
func NewFixture(genomeLen int) (*Fixture, error) {
	const k, minCount = 32, 3
	g, err := genome.Generate(genome.Config{
		Length: genomeLen, Seed: 13, RepeatFraction: 0.3, RepeatUnit: 600,
	})
	if err != nil {
		return nil, err
	}
	reads, err := readsim.Simulate(g, readsim.Config{
		ReadLen: 100, Coverage: 12, ErrorRate: 0.005, Seed: 13,
	})
	if err != nil {
		return nil, err
	}
	b := trace.NewBuilder(k)
	if _, err := assemble.Run(reads, assemble.Config{
		K: k, MinCount: minCount, Flow: compact.FlowPipelined, Observer: b,
	}); err != nil {
		return nil, err
	}
	kres, err := kmer.Count(reads, kmer.Config{K: k, MinCount: minCount})
	if err != nil {
		return nil, err
	}
	return &Fixture{Reads: reads, Trace: b.Trace(), Kmers: kres, K: k}, nil
}

// Partitioners enumerated by the sweep.
const (
	PartHash      = "hash"
	PartMinimizer = "minimizer"
	PartBalanced  = "balanced"
	PartRebalance = "rebalance"
)

// Case is one cell of the conformance matrix.
type Case struct {
	Topo    topo.Kind
	Overlap bool
	Part    string
	Nodes   int
	// At is the checkpoint iteration (the first iteration the restored run
	// executes); negative means "the middle of the trace".
	At int
	// Depth is the parallel runtime's pre-step depth (Config.PrestepDepth);
	// 0 means the default of 1.
	Depth int
	// Elastic turns the cell into an elastic-runtime cell: a periodic
	// checkpoint cadence plus (on multi-node machines) a mid-phase node
	// loss, so the parallel sweep exercises captures, fault boundaries and
	// the recovery rollback under the window protocol.
	Elastic bool
}

// Name renders the cell for subtest names and error messages.
func (c Case) Name() string {
	disc := "bsp"
	if c.Overlap {
		disc = "overlap"
	}
	if c.Elastic {
		disc = "elastic-" + disc
	}
	at := "mid"
	if c.At >= 0 {
		at = fmt.Sprintf("it%d", c.At)
	}
	name := fmt.Sprintf("%s/%s/%s/n%d/%s", c.Topo, disc, c.Part, c.Nodes, at)
	if c.Depth > 1 {
		name += fmt.Sprintf("/d%d", c.Depth)
	}
	return name
}

// Config materializes the cell's scale-out configuration against a
// fixture.
func (c Case) Config(fx *Fixture) (scaleout.Config, error) {
	cfg := scaleout.DefaultConfig(c.Nodes)
	switch c.Topo {
	case topo.FullMesh:
		cfg.Topo = topo.Default()
	case topo.Torus2D:
		cfg.Topo = topo.Torus(0, 0)
	case topo.Dragonfly:
		cfg.Topo = topo.DragonflyGroups(0)
	default:
		return cfg, fmt.Errorf("conformance: unknown topology kind %v", c.Topo)
	}
	cfg.Overlap = c.Overlap
	switch c.Part {
	case PartHash:
		cfg.Partitioner = scaleout.HashPartitioner{}
	case PartMinimizer:
		cfg.Partitioner = scaleout.NewMinimizerPartitioner(12)
	case PartBalanced:
		cfg.Partitioner = scaleout.NewBalancedPartitioner(fx.Kmers, 12, c.Nodes)
	case PartRebalance:
		cfg.Partitioner = scaleout.NewRebalancePartitioner(12, 1)
	default:
		return cfg, fmt.Errorf("conformance: unknown partitioner %q", c.Part)
	}
	cfg.PrestepDepth = c.Depth
	if c.Elastic {
		cfg.CheckpointEvery = 2
	}
	return cfg, nil
}

// Valid reports whether the cell is a legal configuration; the illegal
// regions of the matrix are overlap × rebalance (migration is a global
// synchronization, so the rebalancer requires BSP) and elastic ×
// rebalance (recovery re-partitioning owns the table) — Validate rejects
// both, which the sweep asserts separately.
func (c Case) Valid() bool {
	if c.Part == PartRebalance && (c.Overlap || c.Elastic) {
		return false
	}
	return true
}

// Matrix enumerates the full sweep: every topology, both disciplines, all
// four partitioners, the given node counts, mid-trace checkpoints.
func Matrix(nodes []int) []Case {
	var cases []Case
	for _, kind := range []topo.Kind{topo.FullMesh, topo.Torus2D, topo.Dragonfly} {
		for _, overlap := range []bool{false, true} {
			for _, part := range []string{PartHash, PartMinimizer, PartBalanced, PartRebalance} {
				for _, n := range nodes {
					cases = append(cases, Case{Topo: kind, Overlap: overlap, Part: part, Nodes: n, At: -1})
				}
			}
		}
	}
	return cases
}

// Verify runs one cell end to end and returns the first violated property
// as an error (nil when the cell conforms). For an invalid cell it
// asserts that configuration validation rejects it.
func Verify(fx *Fixture, c Case) error {
	cfg, err := c.Config(fx)
	if err != nil {
		return err
	}
	if !c.Valid() {
		if err := cfg.Validate(); err == nil {
			return fmt.Errorf("%s: invalid cell accepted by Config.Validate", c.Name())
		}
		return nil
	}
	at := c.At
	if at < 0 {
		at = len(fx.Trace.Iterations) / 2
	}

	want, err := scaleout.Simulate(fx.Reads, fx.Trace, cfg)
	if err != nil {
		return fmt.Errorf("%s: uninterrupted run: %w", c.Name(), err)
	}
	blob, err := scaleout.Checkpoint(fx.Reads, fx.Trace, cfg, at)
	if err != nil {
		return fmt.Errorf("%s: checkpoint: %w", c.Name(), err)
	}

	// Property 2: blob determinism.
	blob2, err := scaleout.Checkpoint(fx.Reads, fx.Trace, cfg, at)
	if err != nil {
		return fmt.Errorf("%s: second checkpoint: %w", c.Name(), err)
	}
	if !bytes.Equal(blob, blob2) {
		return fmt.Errorf("%s: checkpoint blob is not byte-deterministic (%d vs %d bytes)", c.Name(), len(blob), len(blob2))
	}

	// Property 3: round-trip stability.
	ck, err := scaleout.UnmarshalCheckpoint(blob)
	if err != nil {
		return fmt.Errorf("%s: unmarshal: %w", c.Name(), err)
	}
	rt, err := ck.Marshal()
	if err != nil {
		return fmt.Errorf("%s: re-marshal: %w", c.Name(), err)
	}
	if !bytes.Equal(blob, rt) {
		return fmt.Errorf("%s: decode/encode round trip changed the blob", c.Name())
	}

	// Property 1: resume equivalence, bit for bit.
	got, err := scaleout.Restore(fx.Trace, cfg, blob)
	if err != nil {
		return fmt.Errorf("%s: restore: %w", c.Name(), err)
	}
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("%s: restored result differs from uninterrupted run: %s", c.Name(), diffSummary(got, want))
	}
	return nil
}

// ParallelMatrix enumerates the serial-vs-parallel equivalence sweep
// across every discipline the parallel runtime covers:
//
//   - the hash columns (BSP and overlap) at every node count — depth 1 at
//     every column, deeper pre-stepping on the small multi-node columns
//     where the full verifier cost is affordable;
//   - the rebalancing runtime (BSP only — migration is a global
//     synchronization) on the small columns, across depths;
//   - the elastic runtime (both disciplines, periodic captures plus a
//     mid-phase node loss) on the small columns, across depths.
//
// The hash partitioner keeps the sweep's cost on the runtime under test
// rather than on partitioning variety — VerifyParallel holds for any.
func ParallelMatrix(nodes, depths []int) []Case {
	var small []int
	for _, n := range nodes {
		if n > 1 && n <= 8 {
			small = append(small, n)
		}
	}
	isSmall := func(n int) bool {
		for _, s := range small {
			if s == n {
				return true
			}
		}
		return false
	}
	var cases []Case
	for _, kind := range []topo.Kind{topo.FullMesh, topo.Torus2D, topo.Dragonfly} {
		for _, overlap := range []bool{false, true} {
			for _, n := range nodes {
				for _, d := range depths {
					if d > 1 && !isSmall(n) {
						continue
					}
					cases = append(cases, Case{Topo: kind, Overlap: overlap, Part: PartHash, Nodes: n, At: -1, Depth: d})
				}
			}
		}
		for _, n := range small {
			for _, d := range depths {
				cases = append(cases, Case{Topo: kind, Overlap: false, Part: PartRebalance, Nodes: n, At: -1, Depth: d})
				for _, overlap := range []bool{false, true} {
					cases = append(cases, Case{Topo: kind, Overlap: overlap, Part: PartHash, Nodes: n, At: -1, Depth: d, Elastic: true})
				}
			}
		}
	}
	return cases
}

// VerifyParallel asserts that the conservative-PDES parallel runtime is
// indistinguishable from the serial one on a cell, beyond wall-clock:
//
//  1. Result equivalence: Workers=1 and Workers=workers runs produce
//     bit-identical Results (reflect.DeepEqual, floats included).
//  2. Telemetry equivalence: both runs export byte-identical Chrome
//     traces — every span, on every node/DRAM/link track, lands at the
//     same cycle with the same payload in the same order.
//  3. Checkpoint equivalence: blobs captured under either worker count
//     are byte-identical, and a blob captured under one mode restored
//     under the other (both directions) resumes to the serial Result.
func VerifyParallel(fx *Fixture, c Case, workers int) error {
	cfg, err := c.Config(fx)
	if err != nil {
		return err
	}
	if !c.Valid() {
		return nil
	}
	name := fmt.Sprintf("%s/w%d", c.Name(), workers)

	// An elastic cell injects a mid-phase node loss so the equivalence
	// holds across captures, fault boundaries and the recovery rollback —
	// the loss cycle comes from a fault-free serial run of the same cell.
	if c.Elastic && c.Nodes > 1 {
		golden, err := scaleout.Simulate(fx.Reads, fx.Trace, cfg)
		if err != nil {
			return fmt.Errorf("%s: fault-free elastic run: %w", name, err)
		}
		at := sim.Cycle(float64(golden.Compact.Total()) / 2)
		cfg.Faults = fault.NodeLossAt(c.Nodes/2, at, 500)
	}

	run := func(w int) (*scaleout.Result, []byte, error) {
		rcfg := cfg
		rcfg.Workers = w
		rcfg.Telemetry = telemetry.New()
		res, err := scaleout.Simulate(fx.Reads, fx.Trace, rcfg)
		if err != nil {
			return nil, nil, err
		}
		var buf bytes.Buffer
		if err := rcfg.Telemetry.WriteChrome(&buf); err != nil {
			return nil, nil, err
		}
		return res, buf.Bytes(), nil
	}
	serial, strace, err := run(1)
	if err != nil {
		return fmt.Errorf("%s: serial run: %w", name, err)
	}
	parallel, ptrace, err := run(workers)
	if err != nil {
		return fmt.Errorf("%s: parallel run: %w", name, err)
	}
	if !reflect.DeepEqual(parallel, serial) {
		return fmt.Errorf("%s: parallel result differs from serial: %s", name, diffSummary(parallel, serial))
	}
	if !bytes.Equal(ptrace, strace) {
		return fmt.Errorf("%s: telemetry traces diverge (%d vs %d bytes)", name, len(ptrace), len(strace))
	}

	// The elastic runtime owns its checkpoint lifecycle (periodic ring
	// captures inside the run — their byte-identity across worker counts
	// is covered by the Result and trace comparisons above, which include
	// the restored-from-ring recovery); the external Checkpoint API
	// rejects elastic configurations, so the cross-mode blob section only
	// applies to the static and rebalancing runtimes.
	if c.Elastic {
		return nil
	}

	// Checkpoint identity and cross-mode restore at the cell's boundary.
	at := c.At
	if at < 0 {
		at = len(fx.Trace.Iterations) / 2
	}
	scfg, pcfg := cfg, cfg
	scfg.Workers, pcfg.Workers = 1, workers
	sblob, err := scaleout.Checkpoint(fx.Reads, fx.Trace, scfg, at)
	if err != nil {
		return fmt.Errorf("%s: serial checkpoint: %w", name, err)
	}
	pblob, err := scaleout.Checkpoint(fx.Reads, fx.Trace, pcfg, at)
	if err != nil {
		return fmt.Errorf("%s: parallel checkpoint: %w", name, err)
	}
	if !bytes.Equal(sblob, pblob) {
		return fmt.Errorf("%s: checkpoint blobs diverge across worker counts (%d vs %d bytes)", name, len(sblob), len(pblob))
	}
	fromParallel, err := scaleout.Restore(fx.Trace, scfg, pblob)
	if err != nil {
		return fmt.Errorf("%s: serial restore of parallel-captured blob: %w", name, err)
	}
	if !reflect.DeepEqual(fromParallel, serial) {
		return fmt.Errorf("%s: parallel-captured blob restored serially diverges: %s", name, diffSummary(fromParallel, serial))
	}
	fromSerial, err := scaleout.Restore(fx.Trace, pcfg, sblob)
	if err != nil {
		return fmt.Errorf("%s: parallel restore of serial-captured blob: %w", name, err)
	}
	if !reflect.DeepEqual(fromSerial, serial) {
		return fmt.Errorf("%s: serial-captured blob restored in parallel diverges: %s", name, diffSummary(fromSerial, serial))
	}
	return nil
}

// diffSummary points at the first diverging Result field so a conformance
// failure is actionable without a debugger.
func diffSummary(got, want *scaleout.Result) string {
	switch {
	case got.TotalCycles != want.TotalCycles:
		return fmt.Sprintf("TotalCycles %d vs %d", got.TotalCycles, want.TotalCycles)
	case got.Compact != want.Compact:
		return fmt.Sprintf("Compact %+v vs %+v", got.Compact, want.Compact)
	case got.CommCycles != want.CommCycles:
		return fmt.Sprintf("CommCycles %d vs %d", got.CommCycles, want.CommCycles)
	case got.ExchangedBytes != want.ExchangedBytes:
		return fmt.Sprintf("ExchangedBytes %d vs %d", got.ExchangedBytes, want.ExchangedBytes)
	case got.Rebalances != want.Rebalances || got.MigratedBytes != want.MigratedBytes:
		return fmt.Sprintf("migrations %d/%d vs %d/%d", got.Rebalances, got.MigratedBytes, want.Rebalances, want.MigratedBytes)
	case !reflect.DeepEqual(got.PerNode, want.PerNode):
		return "PerNode stats diverge"
	case !reflect.DeepEqual(got.NMP, want.NMP):
		return "per-node NMP results diverge"
	default:
		return "aggregate fields diverge (Seconds/CommFraction/Imbalance)"
	}
}
