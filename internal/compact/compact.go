// Package compact implements PaKman's Iterative Compaction (Fig. 2D and
// Fig. 4 of the paper), the stage NMP-PaK accelerates.
//
// Each iteration performs three conceptual stages, mirroring the paper's PE
// pipeline (Fig. 10):
//
//	P1 (invalidation check)      — a node is invalidated when its (k-1)-mer
//	                               is strictly the lexicographically largest
//	                               among all its neighbors' keys.
//	P2 (TransferNode extraction) — each wire (prefix p, suffix s, count c)
//	                               of an invalidated node v becomes up to two
//	                               TransferNodes: one rewrites the
//	                               predecessor's suffix extension, one the
//	                               successor's prefix extension, so the
//	                               neighbors connect directly and v can be
//	                               deleted without losing sequence.
//	P3 (routing and update)      — TransferNodes are applied to their
//	                               destination MacroNodes.
//
// Two engine flows are provided with identical graph semantics but
// different memory-traffic profiles (the distinction behind Fig. 14):
// FlowSequential models the original stage-by-stage algorithm (every stage
// sweeps all MacroNodes and the intermediate TransferNodes are materialized
// in memory), while FlowPipelined models the refined node-granular flow of
// §4.5 (data read in P1 is reused by P2/P3; TransferNodes stay on chip).
//
// Because every invalidated node is strictly larger than all of its
// neighbors, no two adjacent nodes are ever invalidated in the same
// iteration; all updates of an iteration are computed against the
// iteration-start state and are commutative, which is exactly what lets the
// paper's hardware process MacroNodes in a pipelined systolic fashion.
package compact

import (
	"fmt"
	"slices"

	"nmppak/internal/dna"
	"nmppak/internal/pakgraph"
	"nmppak/internal/par"
)

// Flow selects the memory/process-flow model; graph results are identical.
type Flow int

const (
	// FlowPipelined is the refined node-granular flow (§4.5) used by
	// CPU-PaK and NMP-PaK.
	FlowPipelined Flow = iota
	// FlowSequential is the original stage-sequential flow (the paper's
	// CPU baseline).
	FlowSequential
)

// Options configures a compaction run.
type Options struct {
	Workers int
	// Threshold stops compaction once the live node count drops below it
	// (the paper iterates "until # MN < threshold (100,000)"); <=0 means
	// compact until no node is invalidatable.
	Threshold int
	// MaxIters bounds the iteration count as a safety net; <=0 means
	// unbounded.
	MaxIters int
	Flow     Flow
	// Observer receives per-node events for trace generation; may be nil.
	Observer Observer
}

// IterStats summarizes one compaction iteration.
type IterStats struct {
	Iter        int
	LiveNodes   int
	Invalidated int
	Transfers   int   // TransferNodes routed (target-side updates)
	Contigs     int   // both-terminal wires emitted as finished contigs
	ReadBytes   int64 // flow-dependent memory reads
	WriteBytes  int64 // flow-dependent memory writes
	TNBytes     int64 // total TransferNode payload routed
	DroppedTN   int   // updates whose match extension was missing
}

// Observer receives the per-node event stream of a compaction run. All
// callbacks for one iteration happen between BeginIteration and
// EndIteration; ScanNode is called once per live node in ascending key
// order; Transfer/UpdateNode are called in deterministic order. Implemented
// by trace.Builder.
type Observer interface {
	BeginIteration(iter, liveNodes int)
	// ScanNode reports the P1 visit of one node: its key, the data1/data2
	// sizes, extension count, wire count, and the invalidation decision.
	ScanNode(key dna.Kmer, d1, d2, exts, wires int, invalidated bool)
	// Transfer reports one TransferNode routed from src to dst.
	Transfer(src, dst dna.Kmer, tnBytes int, suffixSide bool)
	// UpdateNode reports the P3 update of a destination node with the
	// bytes read (old node) and written (new node).
	UpdateNode(key dna.Kmer, readBytes, writeBytes int)
	EndIteration(IterStats)
}

// Result of a compaction run.
type Result struct {
	Iterations int
	Stats      []IterStats
	// Completed holds contigs finished during compaction (wires whose both
	// sides were terminal when their node was invalidated).
	Completed []dna.Seq
}

// Update is one TransferNode application: replace the extension of Target
// that equals Match (on the given side) with NewSeq/NewTerminal/Count.
// Fig. 4(c)-(d) of the paper shows exactly this operation.
type Update struct {
	Target      dna.Kmer
	SuffixSide  bool
	Match       dna.Seq
	NewSeq      dna.Seq
	NewTerminal bool
	Count       uint32 // structural multiplicity (wire count)
	Weight      uint32 // coverage weight carried into the new extension
}

// TNBytes models the serialized TransferNode size: destination key, the
// match extension, the replacement extension, count and flags.
func (u *Update) TNBytes() int {
	return 8 + u.Match.PackedBytes() + u.NewSeq.PackedBytes() + 6
}

// Run compacts g in place until Options.Threshold/MaxIters or a fixed
// point, returning per-iteration statistics and any finished contigs.
func Run(g *pakgraph.Graph, opt Options) (*Result, error) {
	if g.K < 2 {
		return nil, fmt.Errorf("compact: invalid graph k=%d", g.K)
	}
	res := &Result{}
	// Compaction only ever deletes nodes, so the ascending key order every
	// iteration sweeps in can be computed once and filtered incrementally —
	// the per-iteration re-sort the sequential algorithm performed is pure
	// overhead. Likewise, a node's P1 decision and data1/data2 sizes depend
	// only on its own extensions, and the only nodes an iteration mutates
	// are the update targets — so both are cached across iterations and
	// recomputed just for the nodes the previous iteration touched.
	keys := g.SortedKeys()
	states := make([]nodeState, len(keys))
	nodes := make([]*pakgraph.MacroNode, len(keys))
	for i, key := range keys {
		nodes[i] = g.Nodes[key]
	}
	for iter := 0; ; iter++ {
		if opt.MaxIters > 0 && iter >= opt.MaxIters {
			break
		}
		if opt.Threshold > 0 && g.Len() < opt.Threshold {
			break
		}
		var st IterStats
		st, keys, states, nodes = runIteration(g, keys, states, nodes, iter, opt, res)
		res.Stats = append(res.Stats, st)
		res.Iterations++
		if st.Invalidated == 0 {
			break
		}
	}
	return res, nil
}

// nodeState carries one live node's cached P1 decision and serialized
// sizes between iterations; the zero value means "unknown, recompute".
// Node pointers ride along in a parallel slice, so steady-state iterations
// never touch the graph map except to apply updates and delete.
type nodeState struct {
	status int8  // 0 unknown, 1 invalidation target, 2 survivor
	d1, d2 int32 // Data1Bytes/Data2Bytes, valid when status != 0
}

// runIteration executes one iteration: parallel invalidation check over the
// iteration-start state, extraction, grouped update application, then
// deletion of invalidated nodes. keys must hold the graph's live keys in
// ascending order with states parallel to it; the surviving keys and
// states are returned (filtered in place, update targets reset to
// unknown).
func runIteration(g *pakgraph.Graph, keys []dna.Kmer, states []nodeState, nodes []*pakgraph.MacroNode, iter int, opt Options, res *Result) (IterStats, []dna.Kmer, []nodeState, []*pakgraph.MacroNode) {
	k1 := g.K1()
	st := IterStats{Iter: iter, LiveNodes: len(keys)}
	if opt.Observer != nil {
		opt.Observer.BeginIteration(iter, len(keys))
	}

	// Phase A+B fused: decide invalidation (cached unless the node was
	// updated last iteration) and extract updates per node.
	type nodeOut struct {
		invalidated bool
		updates     []Update
		contigs     []dna.Seq
	}
	outs := make([]nodeOut, len(keys))
	par.For(len(keys), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := nodes[i]
			if states[i].status == 0 {
				states[i].status = 2
				if n.IsInvalidationTarget(k1) {
					states[i].status = 1
				}
				states[i].d1 = int32(n.Data1Bytes())
				states[i].d2 = int32(n.Data2Bytes())
			}
			if states[i].status != 1 {
				continue
			}
			outs[i].invalidated = true
			outs[i].updates, outs[i].contigs = Extract(n, k1)
		}
	})

	// Deterministic observer pass + accounting, in ascending key order.
	// sumD1/sumD12 aggregate the P1 ("MN data1") and full-node footprints
	// of all live nodes, the quantities the two flows' traffic models are
	// built from.
	nUpdates := 0
	for i := range outs {
		nUpdates += len(outs[i].updates)
	}
	updates := make([]Update, 0, nUpdates)
	var sumD1, sumD12, sumInvD2 int64
	for i, key := range keys {
		n := nodes[i]
		d1, d2 := int(states[i].d1), int(states[i].d2)
		sumD1 += int64(d1)
		sumD12 += int64(d1 + d2)
		if opt.Observer != nil {
			opt.Observer.ScanNode(key, d1, d2, len(n.Prefixes)+len(n.Suffixes), len(n.Wires), outs[i].invalidated)
		}
		if outs[i].invalidated {
			st.Invalidated++
			sumInvD2 += int64(d2)
			res.Completed = append(res.Completed, outs[i].contigs...)
			st.Contigs += len(outs[i].contigs)
			for ui := range outs[i].updates {
				u := &outs[i].updates[ui]
				st.TNBytes += int64(u.TNBytes())
				if opt.Observer != nil {
					opt.Observer.Transfer(key, u.Target, u.TNBytes(), u.SuffixSide)
				}
			}
			updates = append(updates, outs[i].updates...)
		}
	}
	st.Transfers = len(updates)

	// Phase C: group updates by target and apply. Updates for distinct
	// targets are independent; within a target they are applied in the
	// deterministic order accumulated above. Grouping uses a CSR layout —
	// first-appearance target order, a count pass, then a scatter into one
	// flat slice — instead of a map of individually grown slices.
	slot := make(map[dna.Kmer]int32, len(updates))
	var targetOrder []dna.Kmer
	var counts []int32
	for i := range updates {
		t := updates[i].Target
		if s, ok := slot[t]; ok {
			counts[s]++
		} else {
			slot[t] = int32(len(targetOrder))
			targetOrder = append(targetOrder, t)
			counts = append(counts, 1)
		}
	}
	offsets := make([]int32, len(targetOrder)+1)
	for i, c := range counts {
		offsets[i+1] = offsets[i] + c
	}
	grouped := make([]Update, len(updates))
	cursor := append([]int32(nil), offsets[:len(targetOrder)]...)
	for i := range updates {
		s := slot[updates[i].Target]
		grouped[cursor[s]] = updates[i]
		cursor[s]++
	}
	type updOut struct {
		readBytes, writeBytes int
		dropped               int
	}
	uouts := make([]updOut, len(targetOrder))
	par.ForIdx(len(targetOrder), opt.Workers, func(i int) {
		ups := grouped[offsets[i]:offsets[i+1]]
		n := g.Nodes[targetOrder[i]]
		if n == nil {
			uouts[i].dropped = len(ups)
			return
		}
		uouts[i].readBytes = n.Data1Bytes() + n.Data2Bytes()
		uouts[i].dropped = Apply(n, ups)
		uouts[i].writeBytes = n.Data1Bytes() + n.Data2Bytes()
	})
	var sumTgtOld, sumTgtNew int64
	for i, key := range targetOrder {
		st.DroppedTN += uouts[i].dropped
		sumTgtOld += int64(uouts[i].readBytes)
		sumTgtNew += int64(uouts[i].writeBytes)
		if opt.Observer != nil {
			opt.Observer.UpdateNode(key, uouts[i].readBytes, uouts[i].writeBytes)
		}
	}

	// Delete invalidated nodes (the optimized algorithm defers physical
	// deletion; semantically they are gone either way) and compact the live
	// key and state lists in place — ascending order is preserved for the
	// next iteration.
	live := 0
	for i, key := range keys {
		if outs[i].invalidated {
			// Clear the node so its extension/wire arrays are collectable
			// even while its slab (pakgraph.Build allocates nodes in
			// blocks) is pinned by surviving neighbors.
			*nodes[i] = pakgraph.MacroNode{}
			delete(g.Nodes, key)
		} else {
			keys[live] = key
			states[live] = states[i]
			nodes[live] = nodes[i]
			live++
		}
	}
	keys = keys[:live]
	states = states[:live]
	nodes = nodes[:live]
	// Applied targets were mutated: drop their cached state so the next
	// iteration recomputes it (keys is sorted, so a binary search finds
	// each survivor; deleted or dropped targets simply miss).
	for _, t := range targetOrder {
		if i, ok := slices.BinarySearch(keys, t); ok {
			states[i] = nodeState{}
		}
	}

	// Memory-traffic model (Fig. 14):
	switch opt.Flow {
	case FlowPipelined:
		// P1 reads data1 of every live node; P2 reuses it and adds only the
		// wiring (data2) of invalidated nodes; TransferNodes travel through
		// the crossbar/scratchpads, never through memory; P3 reads and
		// rewrites only the destination nodes.
		st.ReadBytes = sumD1 + sumInvD2 + sumTgtOld
		st.WriteBytes = sumTgtNew
	case FlowSequential:
		// The original flow sweeps the full MacroNode set in each of the
		// three stages (P2 and P3 re-read what P1 already read), spills the
		// TransferNode list to memory between P2 and P3, and rewrites all
		// surviving nodes during the per-iteration reallocation/move.
		st.ReadBytes = sumD1 + 2*sumD12 + st.TNBytes
		st.WriteBytes = st.TNBytes + (sumD12 - sumTgtOld + sumTgtNew)
	}
	if opt.Observer != nil {
		opt.Observer.EndIteration(st)
	}
	return st, keys, states, nodes
}
