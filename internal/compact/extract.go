package compact

import (
	"nmppak/internal/dna"
	"nmppak/internal/pakgraph"
)

// Extract computes the TransferNodes of an invalidated node v (Stage P2,
// Fig. 4c). For each wire (prefix p, suffix s, count c):
//
//   - predecessor u = (p+v)[:k-1] holds a suffix extension equal to
//     (p+v)[k-1:] that points at v; it must become that extension with s
//     appended, carrying s's terminal flag (Fig. 4d: new_ext = pred_ext +
//     suffix);
//   - successor w = (v+s)[|s|:] holds a prefix extension equal to
//     (v+s)[:|s|]; it must become p + that extension, carrying p's terminal
//     flag.
//
// A terminal side has no corresponding neighbor, so its transfer is
// skipped; a wire terminal on both sides has no surviving home at all and
// is emitted as a finished contig p+v+s.
func Extract(v *pakgraph.MacroNode, k1 int) (updates []Update, contigs []dna.Seq) {
	keySeq := v.Key.Seq(k1)
	// Each wire yields at most two updates; size the slice once.
	updates = make([]Update, 0, 2*len(v.Wires))
	for _, w := range v.Wires {
		if w.Count == 0 {
			continue
		}
		p := v.Prefixes[w.P]
		s := v.Suffixes[w.S]
		if p.Terminal && s.Terminal {
			contigs = append(contigs, p.Seq.Concat(keySeq).Concat(s.Seq))
			continue
		}
		weight := p.Weight
		if s.Weight < weight {
			weight = s.Weight
		}
		if !p.Terminal {
			u := dna.NeighborViaPrefix(v.Key, k1, p.Seq)
			pv := p.Seq.Concat(keySeq)
			match := pv.Slice(k1, pv.Len()) // == (p+v)[k-1:], length |p|
			updates = append(updates, Update{
				Target:      u,
				SuffixSide:  true,
				Match:       match,
				NewSeq:      match.Concat(s.Seq),
				NewTerminal: s.Terminal,
				Count:       w.Count,
				Weight:      weight,
			})
		}
		if !s.Terminal {
			wk := dna.NeighborViaSuffix(v.Key, k1, s.Seq)
			vs := keySeq.Concat(s.Seq)
			match := vs.Slice(0, s.Seq.Len()) // == (v+s)[:|s|]
			updates = append(updates, Update{
				Target:      wk,
				SuffixSide:  false,
				Match:       match,
				NewSeq:      p.Seq.Concat(match),
				NewTerminal: p.Terminal,
				Count:       w.Count,
				Weight:      weight,
			})
		}
	}
	return updates, contigs
}
