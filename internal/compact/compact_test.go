package compact

import (
	"math/rand"
	"strings"
	"testing"

	"nmppak/internal/dna"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
)

func graphFromStrings(t testing.TB, k int, seqs ...string) *pakgraph.Graph {
	t.Helper()
	var reads []readsim.Read
	for _, s := range seqs {
		reads = append(reads, readsim.Read{Seq: dna.MustParseSeq(s)})
	}
	res, err := kmer.Count(reads, kmer.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	g, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randDNA(r *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(dna.Alphabet[r.Intn(4)])
	}
	return sb.String()
}

// spell reconstructs the single contig of a pure path graph by walking from
// its terminal prefix; it fails the test if the graph is not a single path.
func spell(t testing.TB, g *pakgraph.Graph, completed []dna.Seq) string {
	t.Helper()
	if len(completed) == 1 && g.Len() == 0 {
		return completed[0].String()
	}
	if len(completed) != 0 {
		t.Fatalf("unexpected completed contigs: %d (graph len %d)", len(completed), g.Len())
	}
	k1 := g.K1()
	// Find the node holding the terminal prefix.
	var start *pakgraph.MacroNode
	for _, n := range g.Nodes {
		for _, e := range n.Prefixes {
			if e.Terminal {
				if start != nil {
					t.Fatal("multiple terminal prefixes in path graph")
				}
				start = n
			}
		}
	}
	if start == nil {
		t.Fatal("no terminal prefix found")
	}
	n := start
	var w pakgraph.Wire
	found := false
	for _, wire := range n.Wires {
		if n.Prefixes[wire.P].Terminal {
			w, found = wire, true
			break
		}
	}
	if !found {
		t.Fatal("terminal prefix not wired")
	}
	contig := n.Prefixes[w.P].Seq.Concat(n.Key.Seq(k1))
	for steps := 0; steps < 10_000_000; steps++ {
		s := n.Suffixes[w.S]
		contig = contig.Concat(s.Seq)
		if s.Terminal {
			return contig.String()
		}
		next := g.Nodes[dna.NeighborViaSuffix(n.Key, k1, s.Seq)]
		if next == nil {
			t.Fatal("dangling suffix during spell")
		}
		arr := n.Key.Seq(k1).Concat(s.Seq).Slice(0, s.Seq.Len())
		found = false
		for _, wire := range next.Wires {
			if !next.Prefixes[wire.P].Terminal && next.Prefixes[wire.P].Seq.Equal(arr) {
				w, found = wire, true
				break
			}
		}
		if !found {
			t.Fatal("lost the path during spell")
		}
		n = next
	}
	t.Fatal("spell did not terminate")
	return ""
}

// TestCompactionPreservesSingleReadContig is the core correctness test: a
// graph built from one read is a simple path; compacting it to any depth
// must still spell exactly that read.
func TestCompactionPreservesSingleReadContig(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		k := 4 + r.Intn(10)
		n := k + 1 + r.Intn(300)
		s := randDNA(r, n)
		g := graphFromStrings(t, k, s)
		// Repeated (k-1)-mers make the graph non-path; skip those draws.
		if g.Len() != n-k+2 {
			continue
		}
		for _, flow := range []Flow{FlowPipelined, FlowSequential} {
			gg := graphFromStrings(t, k, s)
			res, err := Run(gg, Options{Flow: flow})
			if err != nil {
				t.Fatal(err)
			}
			if err := gg.Validate(); err != nil {
				t.Fatalf("k=%d seq=%s flow=%v: %v\n", k, s, flow, err)
			}
			if got := spell(t, gg, res.Completed); got != s {
				t.Fatalf("k=%d flow=%v: spelled %q want %q", k, flow, got, s)
			}
			if res.Iterations < 1 {
				t.Fatal("expected at least one iteration")
			}
		}
	}
}

// TestCompactionShrinksPathToFixedPoint checks that a long path compacts
// geometrically and reaches a fixed point with no invalidation targets.
func TestCompactionShrinksPathToFixedPoint(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := randDNA(r, 4000)
	g := graphFromStrings(t, 8, s)
	before := g.Len()
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() >= before/4 {
		t.Fatalf("poor compaction: %d -> %d", before, g.Len())
	}
	// Fixed point: no node is an invalidation target anymore.
	for _, n := range g.Nodes {
		if n.IsInvalidationTarget(g.K1()) {
			t.Fatal("fixed point not reached")
		}
	}
	last := res.Stats[len(res.Stats)-1]
	if last.Invalidated != 0 {
		t.Fatal("last iteration should invalidate nothing")
	}
}

// TestNoAdjacentInvalidations verifies the paper's independence property:
// an invalidated node is strictly larger than its neighbors, so no two
// adjacent nodes are removed in the same iteration. We check it on the
// iteration-start state via a custom observer.
func TestNoAdjacentInvalidations(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := graphFromStrings(t, 6, randDNA(r, 800), randDNA(r, 800))
	k1 := g.K1()

	obs := &adjacencyChecker{t: t, g: g, k1: k1}
	if _, err := Run(g, Options{Observer: obs, MaxIters: 3}); err != nil {
		t.Fatal(err)
	}
	if obs.iters == 0 {
		t.Fatal("observer saw no iterations")
	}
}

type adjacencyChecker struct {
	t     *testing.T
	g     *pakgraph.Graph
	k1    int
	inval map[dna.Kmer]bool
	iters int
}

func (a *adjacencyChecker) BeginIteration(iter, live int) {
	a.inval = make(map[dna.Kmer]bool)
	a.iters++
}
func (a *adjacencyChecker) ScanNode(key dna.Kmer, d1, d2, exts, wires int, invalidated bool) {
	if invalidated {
		a.inval[key] = true
	}
}
func (a *adjacencyChecker) Transfer(src, dst dna.Kmer, tnBytes int, suffixSide bool) {
	if a.inval[dst] {
		a.t.Errorf("transfer targets invalidated node %v", dst)
	}
}
func (a *adjacencyChecker) UpdateNode(key dna.Kmer, r, w int) {
	if a.inval[key] {
		a.t.Errorf("update targets invalidated node %v", key)
	}
}
func (a *adjacencyChecker) EndIteration(IterStats) {}

// TestTerminalConservation: compaction never creates or destroys sequence
// start/end markers (terminal counts), except for both-terminal wires that
// leave the graph as completed contigs.
func TestTerminalConservation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		var seqs []string
		for i := 0; i < 5; i++ {
			seqs = append(seqs, randDNA(r, 200+r.Intn(400)))
		}
		g := graphFromStrings(t, 7, seqs...)
		tp0, ts0 := g.TotalTerminals()
		res, err := Run(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tp1, ts1 := g.TotalTerminals()
		done := uint64(len(res.Completed))
		if tp1+done != tp0 || ts1+done != ts0 {
			t.Fatalf("terminals not conserved: (%d,%d) -> (%d,%d) with %d completed",
				tp0, ts0, tp1, ts1, done)
		}
	}
}

// TestFlowsProduceIdenticalGraphs: the two engine flows must be
// semantically identical; only traffic accounting differs.
func TestFlowsProduceIdenticalGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	seqs := []string{randDNA(r, 1000), randDNA(r, 700), randDNA(r, 500)}
	gA := graphFromStrings(t, 8, seqs...)
	gB := graphFromStrings(t, 8, seqs...)
	resA, err := Run(gA, Options{Flow: FlowPipelined, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(gB, Options{Flow: FlowSequential, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Iterations != resB.Iterations {
		t.Fatalf("iterations differ: %d vs %d", resA.Iterations, resB.Iterations)
	}
	if gA.Len() != gB.Len() {
		t.Fatalf("final sizes differ: %d vs %d", gA.Len(), gB.Len())
	}
	for key, na := range gA.Nodes {
		nb := gB.Nodes[key]
		if nb == nil {
			t.Fatalf("node %v missing in sequential result", key)
		}
		if na.SizeBytes() != nb.SizeBytes() || len(na.Wires) != len(nb.Wires) {
			t.Fatalf("node %v differs between flows", key)
		}
	}
	if len(resA.Completed) != len(resB.Completed) {
		t.Fatal("completed contigs differ")
	}
}

// TestSequentialFlowHasMoreTraffic: the Fig. 14 premise — the original
// stage-sequential flow moves strictly more bytes than the pipelined flow,
// with roughly 2x reads and 4x writes.
func TestSequentialFlowHasMoreTraffic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	seqs := []string{randDNA(r, 3000), randDNA(r, 3000)}
	gA := graphFromStrings(t, 10, seqs...)
	gB := graphFromStrings(t, 10, seqs...)
	resA, _ := Run(gA, Options{Flow: FlowPipelined})
	resB, _ := Run(gB, Options{Flow: FlowSequential})
	var rA, wA, rB, wB int64
	for _, st := range resA.Stats {
		rA += st.ReadBytes
		wA += st.WriteBytes
	}
	for _, st := range resB.Stats {
		rB += st.ReadBytes
		wB += st.WriteBytes
	}
	if rB <= rA || wB <= wA {
		t.Fatalf("sequential flow not heavier: reads %d vs %d, writes %d vs %d", rB, rA, wB, wA)
	}
	readRatio := float64(rB) / float64(rA)
	writeRatio := float64(wB) / float64(wA)
	if readRatio < 1.5 || readRatio > 4 {
		t.Errorf("read ratio %.2f outside plausible range [1.5,4] (paper ~2)", readRatio)
	}
	if writeRatio < 2 || writeRatio > 10 {
		t.Errorf("write ratio %.2f outside plausible range [2,10] (paper ~4)", writeRatio)
	}
}

// TestNoDroppedTransfers: on structurally consistent graphs every
// TransferNode finds its match extension.
func TestNoDroppedTransfers(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		g := graphFromStrings(t, 6, randDNA(r, 1500))
		res, err := Run(g, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range res.Stats {
			if st.DroppedTN != 0 {
				t.Fatalf("iteration %d dropped %d transfers", st.Iter, st.DroppedTN)
			}
		}
	}
}

// TestValidityThroughEveryIteration validates graph invariants after each
// iteration via MaxIters stepping.
func TestValidityThroughEveryIteration(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s := randDNA(r, 1200)
	for iters := 1; iters <= 6; iters++ {
		g := graphFromStrings(t, 7, s)
		if _, err := Run(g, Options{MaxIters: iters}); err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("after %d iterations: %v", iters, err)
		}
	}
}

// TestThresholdStopsEarly verifies the paper's termination condition
// ("iterate until #MN < threshold").
func TestThresholdStopsEarly(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	s := randDNA(r, 2000)
	g := graphFromStrings(t, 8, s)
	n0 := g.Len()
	res, err := Run(g, Options{Threshold: n0 / 2})
	if err != nil {
		t.Fatal(err)
	}
	gFull := graphFromStrings(t, 8, s)
	resFull, _ := Run(gFull, Options{})
	if res.Iterations >= resFull.Iterations {
		t.Fatalf("threshold did not stop early: %d vs %d iterations", res.Iterations, resFull.Iterations)
	}
	if g.Len() >= n0 {
		t.Fatal("no compaction happened")
	}
}

// TestCompactionWithBranches: graphs with shared k-mers across reads
// (branching) must stay valid through compaction.
func TestCompactionWithBranches(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	core := randDNA(r, 120)
	// Three reads sharing a common core -> branch in, branch out.
	seqs := []string{
		randDNA(r, 60) + core + randDNA(r, 60),
		randDNA(r, 60) + core + randDNA(r, 60),
		core,
	}
	g := graphFromStrings(t, 6, seqs...)
	if _, err := Run(g, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestHomopolymerSelfLoopSurvives: self-loop nodes are never invalidated
// and must not corrupt the run.
func TestHomopolymerSelfLoopSurvives(t *testing.T) {
	g := graphFromStrings(t, 4, "AAAAAAAAAACGT")
	if _, err := Run(g, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Nodes[dna.MustParseKmer("AAA")] == nil {
		t.Fatal("self-loop node AAA must survive")
	}
}

func TestExtractPaperExample(t *testing.T) {
	// Fig. 4(c)-(d): invalidating node GTCA with prefix A wired to suffix T
	// (count 6) sends the predecessor AGTC an update replacing its suffix
	// "A" with "AT" at count 6.
	v := &pakgraph.MacroNode{Key: dna.MustParseKmer("GTCA")}
	v.Prefixes = []pakgraph.Ext{{Seq: dna.MustParseSeq("A"), Weight: 6}}
	v.Suffixes = []pakgraph.Ext{{Seq: dna.MustParseSeq("T"), Weight: 6}}
	v.Rewire()
	updates, contigs := Extract(v, 4)
	if len(contigs) != 0 {
		t.Fatal("no contigs expected")
	}
	if len(updates) != 2 {
		t.Fatalf("updates = %d want 2", len(updates))
	}
	var toPred *Update
	for i := range updates {
		if updates[i].SuffixSide {
			toPred = &updates[i]
		}
	}
	if toPred == nil {
		t.Fatal("no suffix-side update")
	}
	if got := toPred.Target.StringK(4); got != "AGTC" {
		t.Fatalf("pred target = %s want AGTC", got)
	}
	if toPred.Match.String() != "A" || toPred.NewSeq.String() != "AT" || toPred.Weight != 6 {
		t.Fatalf("pred update = match %q new %q weight %d", toPred.Match, toPred.NewSeq, toPred.Weight)
	}
	// Successor TCAT gets prefix "G" -> "AG".
	var toSucc *Update
	for i := range updates {
		if !updates[i].SuffixSide {
			toSucc = &updates[i]
		}
	}
	if got := toSucc.Target.StringK(4); got != "TCAT" {
		t.Fatalf("succ target = %s want TCAT", got)
	}
	if toSucc.Match.String() != "G" || toSucc.NewSeq.String() != "AG" || toSucc.Weight != 6 {
		t.Fatalf("succ update = match %q new %q weight %d", toSucc.Match, toSucc.NewSeq, toSucc.Weight)
	}
}

func TestApplySplitsSharedPrefix(t *testing.T) {
	// Node u = AGTC whose suffix "A" carries two paths (count 2) pointing
	// at GTCA; two updates split it into "AT" and "AG", one path each.
	u := &pakgraph.MacroNode{Key: dna.MustParseKmer("AGTC")}
	u.Prefixes = []pakgraph.Ext{{Seq: dna.MustParseSeq("T"), Count: 2, Weight: 10}}
	u.Suffixes = []pakgraph.Ext{{Seq: dna.MustParseSeq("A"), Count: 2, Weight: 10}}
	u.Wires = []pakgraph.Wire{{P: 0, S: 0, Count: 2}}
	ups := []Update{
		{Target: u.Key, SuffixSide: true, Match: dna.MustParseSeq("A"), NewSeq: dna.MustParseSeq("AT"), Count: 1, Weight: 6},
		{Target: u.Key, SuffixSide: true, Match: dna.MustParseSeq("A"), NewSeq: dna.MustParseSeq("AG"), Count: 1, Weight: 4},
	}
	if dropped := Apply(u, ups); dropped != 0 {
		t.Fatalf("dropped %d", dropped)
	}
	if len(u.Suffixes) != 2 {
		t.Fatalf("suffixes = %+v", u.Suffixes)
	}
	if u.TotalSuffixCount() != 2 || u.TotalPrefixCount() != 2 {
		t.Fatal("counts not conserved")
	}
	if len(u.Wires) != 2 {
		t.Fatalf("wires = %+v", u.Wires)
	}
}

func TestApplyMissingMatchIsDropped(t *testing.T) {
	u := &pakgraph.MacroNode{Key: dna.MustParseKmer("AGTC")}
	u.Prefixes = []pakgraph.Ext{{Seq: dna.MustParseSeq("T"), Weight: 1}}
	u.Suffixes = []pakgraph.Ext{{Seq: dna.MustParseSeq("A"), Weight: 1}}
	u.Rewire()
	ups := []Update{{Target: u.Key, SuffixSide: true, Match: dna.MustParseSeq("G"), NewSeq: dna.MustParseSeq("GT"), Count: 1}}
	if dropped := Apply(u, ups); dropped != 1 {
		t.Fatalf("dropped = %d want 1", dropped)
	}
}
