package compact

import (
	"nmppak/internal/dna"
	"nmppak/internal/pakgraph"
)

// Apply folds a batch of TransferNode updates into destination node n
// (Stage P3, Fig. 4d). Updates on the suffix side and prefix side are
// independent. For each distinct match extension, the matching extension is
// consumed and replaced by one new extension per update (a prefix of the
// invalidated node that was wired to two suffixes splits the predecessor's
// extension in two), and the wires that referenced the consumed extension
// are redistributed over the replacements proportionally to their counts.
// The node is then normalized: dead extensions are removed, duplicate
// extensions and parallel wires are merged, and balance is restored in case
// counts disagreed.
//
// It returns the number of updates dropped because their match extension
// was not present (zero on structurally consistent graphs; asserted by
// tests).
//
// Apply runs once per update target per compaction iteration — the P3 hot
// path — so the side split, match grouping and wire scratch work through
// stack-backed index buffers over the shared updates slice instead of
// copying updates into per-side and per-group slices.
func Apply(n *pakgraph.MacroNode, updates []Update) (dropped int) {
	dropped += applySide(n, true, updates)
	dropped += applySide(n, false, updates)
	normalize(n)
	return dropped
}

// applySide performs the replacement on one side's extension list and
// redistributes the wires referencing each consumed extension; updates on
// the other side are skipped.
func applySide(n *pakgraph.MacroNode, suffixSide bool, updates []Update) (dropped int) {
	any := false
	for i := range updates {
		if updates[i].SuffixSide == suffixSide {
			any = true
			break
		}
	}
	if !any {
		return 0
	}
	exts := &n.Suffixes
	if !suffixSide {
		exts = &n.Prefixes
	}
	sideIdx := func(w *pakgraph.Wire) *int32 {
		if suffixSide {
			return &w.S
		}
		return &w.P
	}
	origLen := len(*exts)
	// Scratch stays on the stack for typical node and update-batch sizes.
	var cbuf [32]bool
	var consumed []bool
	if origLen <= len(cbuf) {
		consumed = cbuf[:origLen]
	} else {
		consumed = make([]bool, origLen)
	}

	// Group this side's updates by their match extension, preserving
	// order: matches[g] is group g's match sequence and gids[i] the group
	// of updates[i] (-1 for the other side's updates).
	var mbuf [8]dna.Seq
	var gbuf [16]int32
	matches := mbuf[:0]
	gids := gbuf[:0]
	if len(updates) > cap(gids) {
		gids = make([]int32, 0, len(updates))
	}
	for i := range updates {
		if updates[i].SuffixSide != suffixSide {
			gids = append(gids, -1)
			continue
		}
		gi := int32(-1)
		for m := range matches {
			if matches[m].Equal(updates[i].Match) {
				gi = int32(m)
				break
			}
		}
		if gi < 0 {
			gi = int32(len(matches))
			matches = append(matches, updates[i].Match)
		}
		gids = append(gids, gi)
	}

	var ibuf [8]int32
	var rbuf [8]uint32
	var wbuf [8]pakgraph.Wire
	newIdx := ibuf[:0]
	newRem := rbuf[:0]
	rebuilt := wbuf[:0]
	for g := range matches {
		gi := int32(g)
		// Locate the (unique, non-terminal) extension equal to the match
		// among the original entries.
		j := -1
		for i := 0; i < origLen; i++ {
			e := &(*exts)[i]
			if !e.Terminal && !consumed[i] && e.Seq.Equal(matches[g]) {
				j = i
				break
			}
		}
		if j < 0 {
			for i := range gids {
				if gids[i] == gi {
					dropped++
				}
			}
			continue
		}
		consumed[j] = true

		// Append the replacement extensions (in update order).
		newIdx = newIdx[:0]
		newRem = newRem[:0]
		for i := range updates {
			if gids[i] != gi {
				continue
			}
			u := &updates[i]
			*exts = append(*exts, pakgraph.Ext{Seq: u.NewSeq, Count: u.Count, Weight: u.Weight, Terminal: u.NewTerminal})
			newIdx = append(newIdx, int32(len(*exts)-1))
			newRem = append(newRem, u.Count)
		}

		// Redistribute the wires that referenced j across the replacements
		// with a count-matching two-pointer sweep (same scheme as Rewire).
		// Old wires are zeroed; their traffic reappears as fresh wires.
		rebuilt = rebuilt[:0]
		ni := 0
		for wi := range n.Wires {
			w := &n.Wires[wi]
			if *sideIdx(w) != int32(j) || w.Count == 0 {
				continue
			}
			remaining := w.Count
			w.Count = 0
			for remaining > 0 {
				for ni < len(newIdx) && newRem[ni] == 0 {
					ni++
				}
				slot := ni
				if slot >= len(newIdx) {
					slot = len(newIdx) - 1 // residual from count mismatch
				}
				take := remaining
				if slot == ni && newRem[ni] < take {
					take = newRem[ni]
				}
				nw := *w
				nw.Count = take
				*sideIdx(&nw) = newIdx[slot]
				rebuilt = append(rebuilt, nw)
				if slot == ni {
					newRem[ni] -= take
				}
				remaining -= take
			}
		}
		n.Wires = append(n.Wires, rebuilt...)
	}

	// Mark consumed extensions dead; normalize() removes them and remaps
	// wire indices.
	for i := 0; i < origLen; i++ {
		if consumed[i] {
			(*exts)[i].Count = 0
			(*exts)[i].Seq = dna.Seq{}
		}
	}
	return dropped
}
