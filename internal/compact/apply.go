package compact

import (
	"nmppak/internal/dna"
	"nmppak/internal/pakgraph"
)

// Apply folds a batch of TransferNode updates into destination node n
// (Stage P3, Fig. 4d). Updates on the suffix side and prefix side are
// independent. For each distinct match extension, the matching extension is
// consumed and replaced by one new extension per update (a prefix of the
// invalidated node that was wired to two suffixes splits the predecessor's
// extension in two), and the wires that referenced the consumed extension
// are redistributed over the replacements proportionally to their counts.
// The node is then normalized: dead extensions are removed, duplicate
// extensions and parallel wires are merged, and balance is restored in case
// counts disagreed.
//
// It returns the number of updates dropped because their match extension
// was not present (zero on structurally consistent graphs; asserted by
// tests).
func Apply(n *pakgraph.MacroNode, updates []Update) (dropped int) {
	var suf, pre []Update
	for _, u := range updates {
		if u.SuffixSide {
			suf = append(suf, u)
		} else {
			pre = append(pre, u)
		}
	}
	dropped += applySide(n, true, suf)
	dropped += applySide(n, false, pre)
	normalize(n)
	return dropped
}

// applySide performs the replacement on one side's extension list and
// redistributes the wires referencing each consumed extension.
func applySide(n *pakgraph.MacroNode, suffixSide bool, updates []Update) (dropped int) {
	if len(updates) == 0 {
		return 0
	}
	exts := &n.Suffixes
	if !suffixSide {
		exts = &n.Prefixes
	}
	sideIdx := func(w *pakgraph.Wire) *int32 {
		if suffixSide {
			return &w.S
		}
		return &w.P
	}
	origLen := len(*exts)
	consumed := make([]bool, origLen)

	// Group updates by their match extension, preserving order.
	type group struct {
		match dna.Seq
		ups   []Update
	}
	var groups []group
	for _, u := range updates {
		found := false
		for gi := range groups {
			if groups[gi].match.Equal(u.Match) {
				groups[gi].ups = append(groups[gi].ups, u)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, group{match: u.Match, ups: []Update{u}})
		}
	}

	for _, grp := range groups {
		// Locate the (unique, non-terminal) extension equal to the match
		// among the original entries.
		j := -1
		for i := 0; i < origLen; i++ {
			e := (*exts)[i]
			if !e.Terminal && !consumed[i] && e.Seq.Equal(grp.match) {
				j = i
				break
			}
		}
		if j < 0 {
			dropped += len(grp.ups)
			continue
		}
		consumed[j] = true

		// Append the replacement extensions.
		newIdx := make([]int32, 0, len(grp.ups))
		newRem := make([]uint32, 0, len(grp.ups))
		for _, u := range grp.ups {
			*exts = append(*exts, pakgraph.Ext{Seq: u.NewSeq, Count: u.Count, Weight: u.Weight, Terminal: u.NewTerminal})
			newIdx = append(newIdx, int32(len(*exts)-1))
			newRem = append(newRem, u.Count)
		}

		// Redistribute the wires that referenced j across the replacements
		// with a count-matching two-pointer sweep (same scheme as Rewire).
		// Old wires are zeroed; their traffic reappears as fresh wires.
		var rebuilt []pakgraph.Wire
		ni := 0
		for wi := range n.Wires {
			w := &n.Wires[wi]
			if *sideIdx(w) != int32(j) || w.Count == 0 {
				continue
			}
			remaining := w.Count
			w.Count = 0
			for remaining > 0 {
				for ni < len(newIdx) && newRem[ni] == 0 {
					ni++
				}
				slot := ni
				if slot >= len(newIdx) {
					slot = len(newIdx) - 1 // residual from count mismatch
				}
				take := remaining
				if slot == ni && newRem[ni] < take {
					take = newRem[ni]
				}
				nw := *w
				nw.Count = take
				*sideIdx(&nw) = newIdx[slot]
				rebuilt = append(rebuilt, nw)
				if slot == ni {
					newRem[ni] -= take
				}
				remaining -= take
			}
		}
		n.Wires = append(n.Wires, rebuilt...)
	}

	// Mark consumed extensions dead; normalize() removes them and remaps
	// wire indices.
	for i := 0; i < origLen; i++ {
		if consumed[i] {
			(*exts)[i].Count = 0
			(*exts)[i].Seq = dna.Seq{}
		}
	}
	return dropped
}
