package compact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nmppak/internal/dna"
	"nmppak/internal/pakgraph"
	"nmppak/internal/walk"
)

// TestPropertyCompactionPreservesSpelledContent is the repository's
// strongest property test: for random read sets, the set of k-mers spelled
// by the graph's contigs (walk output plus compaction-completed contigs)
// must be invariant under compaction depth. (The exact contig partition at
// ambiguous path crossings may legally differ between depths — both are
// valid spellings of the same path system — so the invariant is over
// content, not contig boundaries.)
func TestPropertyCompactionPreservesSpelledContent(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		k := 5 + r.Intn(8)
		var seqs []string
		for i := 0; i < 1+r.Intn(4); i++ {
			seqs = append(seqs, randDNA(r, 100+r.Intn(400)))
		}
		ref := spellKmerSet(t, k, seqs, 0)
		for depth := 1; depth <= 4; depth++ {
			got := spellKmerSet(t, k, seqs, depth)
			if len(got) != len(ref) {
				t.Fatalf("k=%d depth=%d: spelled k-mer count changed %d -> %d", k, depth, len(ref), len(got))
			}
			for km := range ref {
				if !got[km] {
					t.Fatalf("k=%d depth=%d: k-mer %s lost", k, depth, km)
				}
			}
		}
	}
}

// spellKmerSet builds, compacts to the given depth (0 = none) and returns
// the set of k-mers appearing in any spelled contig.
func spellKmerSet(t *testing.T, k int, seqs []string, depth int) map[string]bool {
	t.Helper()
	g := graphFromStrings(t, k, seqs...)
	var completed []dna.Seq
	if depth > 0 {
		res, err := Run(g, Options{MaxIters: depth, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		completed = res.Completed
	}
	contigs := append(walk.Contigs(g, walk.Options{}), completed...)
	set := make(map[string]bool)
	for _, c := range contigs {
		s := c.String()
		for i := 0; i+k <= len(s); i++ {
			set[s[i:i+k]] = true
		}
	}
	return set
}

// TestPropertyWireConservation: compaction preserves, per iteration, the
// total wire count minus completed contigs and merged wires; more simply,
// the total traversal units (wires) spelled by walks never grows.
func TestPropertyWireConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graphFromStrings(t, 6, randDNA(r, 300))
		before := totalWireCount(g)
		res, err := Run(g, Options{})
		if err != nil {
			return false
		}
		after := totalWireCount(g) + int64(len(res.Completed))
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func totalWireCount(g *pakgraph.Graph) int64 {
	var n int64
	for _, node := range g.Nodes {
		n += int64(len(node.Wires))
	}
	return n
}

// TestPropertyNoAdjacentInvalidationByConstruction re-checks the
// independence argument directly on graph state for random inputs: the set
// of invalidation targets computed on any graph is an independent set.
func TestPropertyInvalidationSetIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graphFromStrings(t, 7, randDNA(r, 250), randDNA(r, 250))
		k1 := g.K1()
		targets := make(map[dna.Kmer]bool)
		for key, n := range g.Nodes {
			if n.IsInvalidationTarget(k1) {
				targets[key] = true
			}
		}
		for key := range targets {
			keys, _ := g.Nodes[key].NeighborKeys(k1)
			for _, nb := range keys {
				if targets[nb] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIterationsShrinkMonotonically: live node count never grows.
func TestPropertyIterationsShrinkMonotonically(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graphFromStrings(t, 6, randDNA(r, 400))
		res, err := Run(g, Options{})
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Stats); i++ {
			if res.Stats[i].LiveNodes > res.Stats[i-1].LiveNodes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
