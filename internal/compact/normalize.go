package compact

import (
	"nmppak/internal/pakgraph"
)

// normalize restores node invariants after Apply: dead (count-zero)
// extensions and wires are removed, duplicate extensions (same sequence and
// terminal flag) are merged, parallel wires are merged, and — only if the
// transfer counts disagreed with the consumed extension's count, which
// cannot happen on structurally consistent graphs — balance and wiring are
// rebuilt from scratch.
func normalize(n *pakgraph.MacroNode) {
	// Remap scratch stays on the stack for typical node sizes (the slices
	// are passed down and returned, never retained).
	var rpbuf, rsbuf [24]int32
	remapP := compactExts(rpbuf[:0], &n.Prefixes)
	remapS := compactExts(rsbuf[:0], &n.Suffixes)

	wires := n.Wires[:0]
	for _, w := range n.Wires {
		if w.Count == 0 {
			continue
		}
		w.P = remapP[w.P]
		w.S = remapS[w.S]
		if w.P < 0 || w.S < 0 {
			// Wire referenced a removed extension: count mismatch path.
			continue
		}
		wires = append(wires, w)
	}
	// Merge parallel wires.
	merged := wires[:0]
	for _, w := range wires {
		found := false
		for i := range merged {
			if merged[i].P == w.P && merged[i].S == w.S {
				merged[i].Count += w.Count
				found = true
				break
			}
		}
		if !found {
			merged = append(merged, w)
		}
	}
	n.Wires = merged

	if !consistent(n) {
		// Count-mismatch fallback (unreachable on structurally consistent
		// graphs): rebuild the wiring from scratch.
		n.Rewire()
	}
}

// compactExts removes count-zero entries and merges duplicates, returning
// the old-index -> new-index mapping (-1 for removed entries).
func compactExts(buf []int32, exts *[]pakgraph.Ext) []int32 {
	old := *exts
	remap := buf[:0]
	if len(old) <= cap(buf) {
		remap = buf[:len(old)]
	} else {
		remap = make([]int32, len(old))
	}
	out := old[:0:len(old)]
	var kbuf [24]pakgraph.Ext
	kept := kbuf[:0]
	for i := range old {
		e := old[i]
		if e.Count == 0 {
			remap[i] = -1
			continue
		}
		dup := -1
		for j := range kept {
			if kept[j].Terminal == e.Terminal && kept[j].Seq.Equal(e.Seq) {
				dup = j
				break
			}
		}
		if dup >= 0 {
			kept[dup].Count += e.Count
			kept[dup].Weight += e.Weight
			remap[i] = int32(dup)
			continue
		}
		kept = append(kept, e)
		remap[i] = int32(len(kept) - 1)
	}
	out = append(out, kept...)
	*exts = out
	return remap
}

// consistent reports whether every extension's count is exactly covered by
// its wires and the node is balanced.
func consistent(n *pakgraph.MacroNode) bool {
	var pbuf, sbuf [24]uint64
	var wiredP, wiredS []uint64
	if len(n.Prefixes) <= len(pbuf) {
		wiredP = pbuf[:len(n.Prefixes)]
	} else {
		wiredP = make([]uint64, len(n.Prefixes))
	}
	if len(n.Suffixes) <= len(sbuf) {
		wiredS = sbuf[:len(n.Suffixes)]
	} else {
		wiredS = make([]uint64, len(n.Suffixes))
	}
	for _, w := range n.Wires {
		if int(w.P) >= len(n.Prefixes) || int(w.S) >= len(n.Suffixes) {
			return false
		}
		wiredP[w.P] += uint64(w.Count)
		wiredS[w.S] += uint64(w.Count)
	}
	for i, e := range n.Prefixes {
		if wiredP[i] != uint64(e.Count) {
			return false
		}
	}
	for i, e := range n.Suffixes {
		if wiredS[i] != uint64(e.Count) {
			return false
		}
	}
	return true
}
