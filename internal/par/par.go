// Package par provides small parallel-execution helpers used throughout the
// assembly pipeline: a blocked parallel for-loop and sharded mutexes. These
// stand in for the OpenMP constructs the paper's refined PaKman algorithm
// (§4.5) relies on (parallel sliding windows, per-thread vectors,
// omp_set_lock around shared MacroNode updates).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Threads returns the worker count to use: n if positive, otherwise
// GOMAXPROCS.
func Threads(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs body(lo, hi) over contiguous blocks of [0, n) on workers
// goroutines (GOMAXPROCS when workers <= 0) and waits for completion. Blocks
// are contiguous and near-equal, mirroring OpenMP's static schedule, which
// is what makes workload imbalance from long-tailed node sizes observable.
func For(n, workers int, body func(lo, hi int)) {
	w := Threads(workers)
	if w > n {
		w = n
	}
	if n <= 0 {
		return
	}
	if w <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForIdx runs body(i) for each i in [0, n) using a dynamic work queue;
// suitable when per-item cost varies wildly.
func ForIdx(n, workers int, body func(i int)) {
	w := Threads(workers)
	if w > n {
		w = n
	}
	if n <= 0 {
		return
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	// The dispatch counter is the one piece of shared state on this path;
	// claiming a batch with a single atomic add keeps the fine-grained
	// dispatch it exists for from serializing on a lock.
	var next atomic.Int64
	take := func(batch int) (int, int) {
		lo := int(next.Add(int64(batch))) - batch
		hi := lo + batch
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	var wg sync.WaitGroup
	batch := n / (w * 8)
	if batch < 1 {
		batch = 1
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi := take(batch)
				if lo >= n {
					return
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Locks is a power-of-two sharded mutex set keyed by hash, the analogue of
// PaKman's omp_set_lock protecting concurrent MacroNode updates.
type Locks struct {
	mus  []sync.Mutex
	mask uint64
}

// NewLocks returns a sharded lock set with at least n shards (rounded up to
// a power of two, minimum 1).
func NewLocks(n int) *Locks {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Locks{mus: make([]sync.Mutex, size), mask: uint64(size - 1)}
}

// Lock locks the shard for key.
func (l *Locks) Lock(key uint64) { l.mus[key&l.mask].Lock() }

// Unlock unlocks the shard for key.
func (l *Locks) Unlock(key uint64) { l.mus[key&l.mask].Unlock() }
