package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, w := range []int{0, 1, 3, 16} {
			seen := make([]int32, n)
			For(n, w, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestForIdxCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		for _, w := range []int{0, 1, 5} {
			seen := make([]int32, n)
			ForIdx(n, w, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestForBlocksAreContiguous(t *testing.T) {
	var mu sync.Mutex
	var blocks [][2]int
	For(100, 7, func(lo, hi int) {
		mu.Lock()
		blocks = append(blocks, [2]int{lo, hi})
		mu.Unlock()
	})
	total := 0
	for _, b := range blocks {
		if b[1] <= b[0] {
			t.Fatalf("empty or inverted block %v", b)
		}
		total += b[1] - b[0]
	}
	if total != 100 {
		t.Fatalf("blocks cover %d want 100", total)
	}
}

func TestLocksProtectCounter(t *testing.T) {
	l := NewLocks(8)
	counters := make([]int, 4)
	ForIdx(4000, 8, func(i int) {
		key := uint64(i % 4)
		l.Lock(key)
		counters[key]++
		l.Unlock(key)
	})
	for k, c := range counters {
		if c != 1000 {
			t.Fatalf("counter %d = %d want 1000", k, c)
		}
	}
}

func TestThreads(t *testing.T) {
	if Threads(5) != 5 {
		t.Fatal("Threads(5) != 5")
	}
	if Threads(0) < 1 {
		t.Fatal("Threads(0) < 1")
	}
}
