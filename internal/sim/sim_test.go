package sim

import (
	"math/rand"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 0) })
	e.At(10, func() { order = append(order, 2) }) // FIFO at equal time
	end := e.Run()
	if end != 10 {
		t.Fatalf("end = %d", end)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits []Cycle
	e.At(1, func() {
		hits = append(hits, e.Now())
		e.After(4, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 5 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var e Engine
	ran := false
	e.At(100, func() {
		e.At(50, func() { // in the past: clamp to now
			if e.Now() != 100 {
				t.Errorf("clamped event at %d", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("clamped event never ran")
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(CyclesPerSecond) != 1.0 {
		t.Fatal("1.6e9 cycles must be 1 second")
	}
}

func TestPending(t *testing.T) {
	var e Engine
	e.At(1, func() {})
	if e.Pending() != 1 {
		t.Fatal("pending != 1")
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatal("pending after run")
	}
}

func TestReset(t *testing.T) {
	var e Engine
	e.At(3, func() { t.Error("dropped event ran") })
	e.Reset()
	if e.Pending() != 0 {
		t.Fatal("pending after reset")
	}
	ran := false
	e.At(7, func() { ran = true })
	if end := e.Run(); end != 7 || !ran {
		t.Fatalf("end = %d, ran = %v", end, ran)
	}
}

// refEngine is a straightforward reference scheduler — a flat list scanned
// for the (time, seq) minimum — replicating the semantics the previous
// container/heap implementation had. The 4-ary heap must fire events in
// exactly this order.
type refEngine struct {
	now  Cycle
	seq  int64
	evs  []event
	done bool
}

func (r *refEngine) Now() Cycle { return r.now }

func (r *refEngine) At(t Cycle, fn func()) {
	if t < r.now {
		t = r.now
	}
	r.seq++
	r.evs = append(r.evs, event{at: t, seq: r.seq, fn: fn})
}

func (r *refEngine) After(d Cycle, fn func()) { r.At(r.now+d, fn) }

func (r *refEngine) Run() Cycle {
	for len(r.evs) > 0 {
		m := 0
		for i := 1; i < len(r.evs); i++ {
			if lessEv(&r.evs[i], &r.evs[m]) {
				m = i
			}
		}
		ev := r.evs[m]
		r.evs = append(r.evs[:m], r.evs[m+1:]...)
		r.now = ev.at
		ev.fn()
	}
	return r.now
}

// scheduler is the engine surface the equivalence scenario drives.
type scheduler interface {
	Now() Cycle
	At(Cycle, func())
	After(Cycle, func())
	Run() Cycle
}

// runScenario drives a deterministic pseudo-random self-rescheduling event
// population and records (id, firing time) pairs, including FIFO ties and
// past-time clamps.
func runScenario(s scheduler, seed int64) []([2]int64) {
	rng := rand.New(rand.NewSource(seed))
	var log []([2]int64)
	id := int64(0)
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		me := id
		id++
		return func() {
			log = append(log, [2]int64{me, s.Now()})
			if depth >= 6 {
				return
			}
			kids := rng.Intn(3)
			for c := 0; c < kids; c++ {
				// Mix of future offsets, ties and past times (clamped).
				off := Cycle(rng.Intn(9)) - 2
				s.At(s.Now()+off, spawn(depth+1))
			}
		}
	}
	for i := 0; i < 24; i++ {
		s.At(Cycle(rng.Intn(11)), spawn(0))
	}
	s.Run()
	return log
}

func TestEngineMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		got := runScenario(&Engine{}, seed)
		want := runScenario(&refEngine{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: event %d = %v, reference %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestEngineAllocs pins the scheduler's allocation behaviour: once the heap
// has grown to its working size, At+Run must not allocate at all.
func TestEngineAllocs(t *testing.T) {
	var e Engine
	fn := func() {}
	round := func() {
		for i := 0; i < 512; i++ {
			e.At(e.Now()+Cycle(i*13%97), fn)
		}
		e.Run()
	}
	round() // grow the heap once
	if a := testing.AllocsPerRun(50, round); a != 0 {
		t.Errorf("allocs per 512-event round = %v, want 0", a)
	}
}

// TestRunUntilWindowsMatchRun verifies that slicing a schedule into
// RunUntil windows dispatches the same events, in the same order, at the
// same clock readings as one uninterrupted Run — the property the parallel
// runtime's window loop depends on.
func TestRunUntilWindowsMatchRun(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		want := runScenario(&Engine{}, seed)

		// Same scenario, but drained through advancing horizons.
		var e Engine
		rng := rand.New(rand.NewSource(seed))
		var log []([2]int64)
		id := int64(0)
		var spawn func(depth int) func()
		spawn = func(depth int) func() {
			me := id
			id++
			return func() {
				log = append(log, [2]int64{me, e.Now()})
				if depth >= 6 {
					return
				}
				kids := rng.Intn(3)
				for c := 0; c < kids; c++ {
					off := Cycle(rng.Intn(9)) - 2
					e.At(e.Now()+off, spawn(depth+1))
				}
			}
		}
		for i := 0; i < 24; i++ {
			e.At(Cycle(rng.Intn(11)), spawn(0))
		}
		for h := Cycle(1); e.Pending() > 0 && h < 64; h++ {
			e.RunUntil(h)
			if at, ok := e.NextAt(); ok && at < h {
				t.Fatalf("seed %d: event at %d left pending below horizon %d", seed, at, h)
			}
		}
		e.Run() // drain any stragglers past the last horizon
		if len(log) != len(want) {
			t.Fatalf("seed %d: windows fired %d events, Run fired %d", seed, len(log), len(want))
		}
		for i := range log {
			if log[i] != want[i] {
				t.Fatalf("seed %d: event %d = %v, Run %v", seed, i, log[i], want[i])
			}
		}
	}
}

// TestRunUntilHorizonExclusive pins the boundary semantics: an event exactly
// at the horizon must NOT run, and the clock must not advance past the last
// dispatched event.
func TestRunUntilHorizonExclusive(t *testing.T) {
	var e Engine
	var fired []Cycle
	e.At(3, func() { fired = append(fired, 3) })
	e.At(5, func() { fired = append(fired, 5) })
	e.At(9, func() { fired = append(fired, 9) })
	if now := e.RunUntil(5); now != 3 {
		t.Fatalf("now after RunUntil(5) = %d, want 3", now)
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired = %v, want [3]", fired)
	}
	if at, ok := e.NextAt(); !ok || at != 5 {
		t.Fatalf("NextAt = %d,%v, want 5,true", at, ok)
	}
	e.RunUntil(10)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want all three", fired)
	}
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt ok on empty heap")
	}
}

// TestRunUntilAllocs pins zero steady-state allocations for the bounded-run
// primitive, mirroring TestEngineAllocs for Run: once the heap has grown,
// windowed draining must not allocate either.
func TestRunUntilAllocs(t *testing.T) {
	var e Engine
	fn := func() {}
	round := func() {
		for i := 0; i < 512; i++ {
			e.At(e.Now()+Cycle(i*13%97), fn)
		}
		for h := e.Now() + 1; e.Pending() > 0; h += 16 {
			e.RunUntil(h)
		}
	}
	round() // grow the heap once
	if a := testing.AllocsPerRun(50, round); a != 0 {
		t.Errorf("allocs per windowed 512-event round = %v, want 0", a)
	}
}

// TestReserveAllocs verifies Reserve makes even the first round
// allocation-free beyond the single pre-grow.
func TestReserveAllocs(t *testing.T) {
	fn := func() {}
	a := testing.AllocsPerRun(20, func() {
		var e Engine
		e.Reserve(256)
		for i := 0; i < 256; i++ {
			e.At(Cycle(i%31), fn)
		}
		e.Run()
	})
	// One allocation: the Reserve pre-grow itself.
	if a > 1 {
		t.Errorf("allocs per reserved round = %v, want <= 1", a)
	}
}
