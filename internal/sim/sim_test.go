package sim

import "testing"

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 0) })
	e.At(10, func() { order = append(order, 2) }) // FIFO at equal time
	end := e.Run()
	if end != 10 {
		t.Fatalf("end = %d", end)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits []Cycle
	e.At(1, func() {
		hits = append(hits, e.Now())
		e.After(4, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 5 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var e Engine
	ran := false
	e.At(100, func() {
		e.At(50, func() { // in the past: clamp to now
			if e.Now() != 100 {
				t.Errorf("clamped event at %d", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("clamped event never ran")
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(CyclesPerSecond) != 1.0 {
		t.Fatal("1.6e9 cycles must be 1 second")
	}
}

func TestPending(t *testing.T) {
	var e Engine
	e.At(1, func() {})
	if e.Pending() != 1 {
		t.Fatal("pending != 1")
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatal("pending after run")
	}
}

// BenchmarkEventKernel is the perf baseline for scheduler work: a
// self-refilling event population (as the hardware models produce) with a
// scattered timestamp pattern, exercising heap push/pop and the FIFO
// tie-break.
func BenchmarkEventKernel(b *testing.B) {
	const window = 512
	b.ReportAllocs()
	for b.Loop() {
		var e Engine
		n := 0
		var spawn func()
		spawn = func() {
			n++
			if n >= 100_000 {
				return
			}
			// Two children at pseudo-random offsets keep the heap near
			// the window size without shrinking to a trivial population.
			if n%2 == 0 {
				e.After(Cycle(n*7919%window)+1, spawn)
			}
			e.After(Cycle(n*104729%window)+1, spawn)
		}
		e.At(0, spawn)
		e.Run()
	}
}
