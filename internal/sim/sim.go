// Package sim provides a minimal deterministic discrete-event simulation
// kernel shared by the DRAM, NMP and CPU timing models.
//
// Time is counted in memory-controller clock cycles. For the paper's
// configuration this is convenient: DDR4-3200 runs its command clock at
// 1600 MHz and the NMP processing elements run at 1.6 GHz (Table 2), so one
// simulator cycle is one PE cycle and one DRAM command slot (0.625 ns).
//
// The scheduler is an unboxed 4-ary min-heap over a typed event slice:
// pushing and popping never go through an interface, so the only
// allocations are slice growth (amortized, and reusable across Run calls
// via Reserve/Reset). Events are totally ordered by (time, sequence
// number), which makes the pop order — and therefore every simulation
// outcome — independent of heap layout details.
package sim

// Cycle is a point in simulated time (1 cycle = 0.625 ns at 1.6 GHz).
type Cycle = int64

// CyclesPerSecond for the 1.6 GHz domain.
const CyclesPerSecond = 1_600_000_000

// Seconds converts a cycle count to seconds.
func Seconds(c Cycle) float64 { return float64(c) / CyclesPerSecond }

type event struct {
	at  Cycle
	seq int64 // FIFO tie-break for determinism
	fn  func()
}

// lessEv is the total event order: earlier time first, FIFO at equal time.
func lessEv(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Probe collects event-loop statistics when attached to an Engine. A nil
// probe (the default) disables collection; the hot paths then pay one
// predictable branch and zero allocations.
type Probe struct {
	// Dispatched counts events popped and executed by Run.
	Dispatched int64
	// MaxPending is the high-water mark of the event heap.
	MaxPending int
}

// Engine is a single-threaded event scheduler. The zero value is ready to
// use.
type Engine struct {
	now    Cycle
	seq    int64
	events []event // 4-ary min-heap ordered by lessEv
	probe  *Probe
}

// SetProbe attaches (or, with nil, detaches) an event-loop probe.
func (e *Engine) SetProbe(p *Probe) { e.probe = p }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of unprocessed events.
func (e *Engine) Pending() int { return len(e.events) }

// Reserve pre-grows the event heap so the next n At/After calls do not
// reallocate.
func (e *Engine) Reserve(n int) {
	if cap(e.events)-len(e.events) >= n {
		return
	}
	grown := make([]event, len(e.events), len(e.events)+n)
	copy(grown, e.events)
	e.events = grown
}

// Reset drops all pending events while keeping the current time, sequence
// counter and heap capacity, so one Engine can be reused across
// independent scheduling rounds without reallocating.
func (e *Engine) Reset() {
	clear(e.events) // release closure references
	e.events = e.events[:0]
}

// At schedules fn at absolute time t (clamped to now).
func (e *Engine) At(t Cycle, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events = append(e.events, event{at: t, seq: e.seq, fn: fn})
	e.siftUp(len(e.events) - 1)
	if e.probe != nil && len(e.events) > e.probe.MaxPending {
		e.probe.MaxPending = len(e.events)
	}
}

// After schedules fn d cycles from now.
func (e *Engine) After(d Cycle, fn func()) { e.At(e.now+d, fn) }

// Run processes events until none remain, returning the final time.
func (e *Engine) Run() Cycle {
	for len(e.events) > 0 {
		at, fn := e.pop()
		e.now = at
		if e.probe != nil {
			e.probe.Dispatched++
		}
		fn()
	}
	return e.now
}

// RunUntil processes events strictly before horizon, advancing the clock to
// each event's time as usual, and returns the current time afterwards. The
// clock is NOT advanced to the horizon: events at or after it stay pending
// with their order intact, so interleaving RunUntil windows with a final
// Run produces exactly the same dispatch sequence as a single Run. This is
// the bounded-run primitive for conservative-PDES windows, where horizon is
// the caller's proven lookahead bound.
func (e *Engine) RunUntil(horizon Cycle) Cycle {
	for len(e.events) > 0 && e.events[0].at < horizon {
		at, fn := e.pop()
		e.now = at
		if e.probe != nil {
			e.probe.Dispatched++
		}
		fn()
	}
	return e.now
}

// NextAt returns the time of the earliest pending event. ok is false when
// the heap is empty.
func (e *Engine) NextAt() (at Cycle, ok bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// siftUp restores the heap property after appending at index i.
func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		p := (i - 1) / 4
		if !lessEv(&ev, &e.events[p]) {
			break
		}
		e.events[i] = e.events[p]
		i = p
	}
	e.events[i] = ev
}

// pop removes and returns the minimum event's time and callback.
func (e *Engine) pop() (Cycle, func()) {
	root := e.events[0]
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = event{} // release the closure reference
	e.events = e.events[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return root.at, root.fn
}

// siftDown places ev starting from the root, walking the 4-ary tree.
func (e *Engine) siftDown(ev event) {
	n := len(e.events)
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lessEv(&e.events[j], &e.events[m]) {
				m = j
			}
		}
		if !lessEv(&e.events[m], &ev) {
			break
		}
		e.events[i] = e.events[m]
		i = m
	}
	e.events[i] = ev
}
