// Package sim provides a minimal deterministic discrete-event simulation
// kernel shared by the DRAM, NMP and CPU timing models.
//
// Time is counted in memory-controller clock cycles. For the paper's
// configuration this is convenient: DDR4-3200 runs its command clock at
// 1600 MHz and the NMP processing elements run at 1.6 GHz (Table 2), so one
// simulator cycle is one PE cycle and one DRAM command slot (0.625 ns).
package sim

import "container/heap"

// Cycle is a point in simulated time (1 cycle = 0.625 ns at 1.6 GHz).
type Cycle = int64

// CyclesPerSecond for the 1.6 GHz domain.
const CyclesPerSecond = 1_600_000_000

// Seconds converts a cycle count to seconds.
func Seconds(c Cycle) float64 { return float64(c) / CyclesPerSecond }

type event struct {
	at  Cycle
	seq int64 // FIFO tie-break for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded event scheduler. The zero value is ready to
// use.
type Engine struct {
	now    Cycle
	seq    int64
	events eventHeap
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// At schedules fn at absolute time t (clamped to now).
func (e *Engine) At(t Cycle, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d cycles from now.
func (e *Engine) After(d Cycle, fn func()) { e.At(e.now+d, fn) }

// Run processes events until none remain, returning the final time.
func (e *Engine) Run() Cycle {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Pending reports the number of unprocessed events.
func (e *Engine) Pending() int { return len(e.events) }
