package sim_test

import (
	"testing"

	"nmppak/internal/benchsuite"
)

// BenchmarkEventKernel exercises the scheduler under a self-refilling
// event population; the body lives in internal/benchsuite so cmd/bench
// regenerates the same number for BENCH_*.json.
func BenchmarkEventKernel(b *testing.B) { benchsuite.EventKernel(b) }
