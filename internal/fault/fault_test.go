package fault

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name  string
		plan  Plan
		nodes int
		want  string // substring of the error, "" for valid
	}{
		{"empty", Plan{}, 4, ""},
		{"loss ok", *NodeLossAt(2, 100, 50), 4, ""},
		{"loss out of range", Plan{Events: []Event{{Kind: NodeLoss, Node: 4}}}, 4, "kills node 4"},
		{"loss negative node", Plan{Events: []Event{{Kind: NodeLoss, Node: -1}}}, 4, "kills node -1"},
		{"double kill", Plan{Events: []Event{
			{Kind: NodeLoss, Node: 1}, {Kind: NodeLoss, Node: 1, Cycle: 9},
		}}, 4, "twice"},
		{"all dead", Plan{Events: []Event{
			{Kind: NodeLoss, Node: 0}, {Kind: NodeLoss, Node: 1},
		}}, 2, "survivor"},
		{"negative cycle", Plan{Events: []Event{{Kind: NodeLoss, Node: 0, Cycle: -1}}}, 4, "negative cycle"},
		{"negative detect", Plan{DetectCycles: -5}, 4, "DetectCycles"},
		{"degrade ok", Plan{Events: []Event{{Kind: LinkDegrade, Src: 0, Dst: 1, Factor: 0.5}}}, 4, ""},
		{"degrade factor zero", Plan{Events: []Event{{Kind: LinkDegrade, Src: 0, Dst: 1}}}, 4, "factor"},
		{"degrade factor big", Plan{Events: []Event{{Kind: LinkDegrade, Src: 0, Dst: 1, Factor: 1.5}}}, 4, "factor"},
		{"degrade self", Plan{Events: []Event{{Kind: LinkDegrade, Src: 1, Dst: 1, Factor: 0.5}}}, 4, "local path"},
		{"outage ok", Plan{Events: []Event{{Kind: LinkOutage, Src: 3, Dst: 0}}}, 4, ""},
		{"outage out of range", Plan{Events: []Event{{Kind: LinkOutage, Src: 0, Dst: 7}}}, 4, "outside"},
		{"unknown kind", Plan{Events: []Event{{Kind: Kind(9)}}}, 4, "unknown kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate(c.nodes)
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v does not mention %q", err, c.want)
			}
		})
	}
}

func TestSortedIsStableByCycle(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: NodeLoss, Node: 2, Cycle: 500},
		{Kind: LinkDegrade, Src: 0, Dst: 1, Factor: 0.5, Cycle: 100},
		{Kind: NodeLoss, Node: 1, Cycle: 100},
	}}
	got := p.Sorted()
	if got[0].Kind != LinkDegrade || got[1].Node != 1 || got[2].Node != 2 {
		t.Fatalf("unexpected order: %v", got)
	}
	// The plan itself is untouched.
	if p.Events[0].Node != 2 {
		t.Fatalf("Sorted mutated the plan")
	}
}

func TestFingerprintDistinguishesPlans(t *testing.T) {
	a := NodeLossAt(1, 100, 0).Fingerprint()
	b := NodeLossAt(1, 200, 0).Fingerprint()
	c := NodeLossAt(2, 100, 0).Fingerprint()
	if a == b || a == c || b == c {
		t.Fatalf("fingerprints collide: %q %q %q", a, b, c)
	}
	var nilPlan *Plan
	if nilPlan.Fingerprint() != "none" || !nilPlan.Empty() {
		t.Fatalf("nil plan should fingerprint as none and be empty")
	}
}
