// Package fault models deterministic infrastructure failures injected
// into a scale-out simulation: node loss, link bandwidth degradation and
// link outage, each pinned to a chosen cycle of the compaction phase.
// A Plan is pure data — the scaleout elastic runtime consumes it, detects
// losses at the next iteration boundary, restores survivors from the last
// periodic checkpoint and re-partitions the dead node's shard (see
// internal/scaleout). Keeping the model here, free of runtime
// dependencies, lets experiments and tests build plans without touching
// the runtime and keeps the event vocabulary in one place.
package fault

import (
	"fmt"
	"sort"

	"nmppak/internal/sim"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// NodeLoss kills a node: its engine stops producing results past the
	// last checkpoint and its shard is re-partitioned across survivors.
	NodeLoss Kind = iota
	// LinkDegrade multiplies the occupancy of every link on the minimal
	// Src -> Dst route by 1/Factor (Factor is the surviving bandwidth
	// fraction), modeling a flapping cable or a congested oversubscribed
	// path.
	LinkDegrade
	// LinkOutage removes every link on the minimal Src -> Dst route from
	// the topology; later traffic detours around the cut (internal/topo's
	// Degraded wrapper reroutes via an intermediate node). A plan that
	// disconnects two live nodes is rejected when the event applies.
	LinkOutage
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NodeLoss:
		return "node-loss"
	case LinkDegrade:
		return "link-degrade"
	case LinkOutage:
		return "link-outage"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault. Cycle is measured on the compaction-phase
// clock (cycle 0 = the first compaction iteration's start): the runtime
// applies the event at the first iteration boundary whose completion time
// reaches Cycle, which is where a lockstep distributed run can first act
// on it.
type Event struct {
	Kind  Kind
	Cycle sim.Cycle
	// Node is the dying node (NodeLoss only).
	Node int
	// Src, Dst identify the routed channel of a link event: the links of
	// the topology's minimal Src -> Dst route degrade or go down.
	Src, Dst int
	// Factor is the surviving bandwidth fraction of a LinkDegrade, in
	// (0, 1]; 1 is a no-op, 0.5 halves the route's link bandwidth.
	Factor float64
}

// String renders the event for logs and error messages.
func (e Event) String() string {
	switch e.Kind {
	case NodeLoss:
		return fmt.Sprintf("node-loss(node%d@%d)", e.Node, e.Cycle)
	case LinkDegrade:
		return fmt.Sprintf("link-degrade(%d->%d x%g@%d)", e.Src, e.Dst, e.Factor, e.Cycle)
	case LinkOutage:
		return fmt.Sprintf("link-outage(%d->%d@%d)", e.Src, e.Dst, e.Cycle)
	}
	return fmt.Sprintf("event(kind=%d)", int(e.Kind))
}

// Plan is a deterministic fault schedule for one run.
type Plan struct {
	Events []Event
	// DetectCycles is the failure-detection latency charged when a node
	// loss is acted on (heartbeat timeout, membership agreement). Link
	// events apply silently — degraded bandwidth is simply observed.
	DetectCycles sim.Cycle
}

// NodeLossAt returns a single-node-loss plan, the common case.
func NodeLossAt(node int, cycle sim.Cycle, detect sim.Cycle) *Plan {
	return &Plan{
		Events:       []Event{{Kind: NodeLoss, Cycle: cycle, Node: node}},
		DetectCycles: detect,
	}
}

// Validate checks the plan against a machine size: every referenced node
// in range, degrade factors in (0, 1], non-negative cycles and detection
// latency, no node lost twice, and at least one survivor.
func (p *Plan) Validate(nodes int) error {
	if p == nil {
		return nil
	}
	if p.DetectCycles < 0 {
		return fmt.Errorf("fault: DetectCycles must be >= 0, got %d", p.DetectCycles)
	}
	lost := make(map[int]bool)
	for i, e := range p.Events {
		if e.Cycle < 0 {
			return fmt.Errorf("fault: event %d (%s) has negative cycle", i, e)
		}
		switch e.Kind {
		case NodeLoss:
			if e.Node < 0 || e.Node >= nodes {
				return fmt.Errorf("fault: event %d kills node %d of %d", i, e.Node, nodes)
			}
			if lost[e.Node] {
				return fmt.Errorf("fault: event %d kills node %d twice", i, e.Node)
			}
			lost[e.Node] = true
		case LinkDegrade, LinkOutage:
			if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes {
				return fmt.Errorf("fault: event %d routes %d -> %d outside %d nodes", i, e.Src, e.Dst, nodes)
			}
			if e.Src == e.Dst {
				return fmt.Errorf("fault: event %d degrades the local path %d -> %d", i, e.Src, e.Dst)
			}
			if e.Kind == LinkDegrade && !(e.Factor > 0 && e.Factor <= 1) {
				return fmt.Errorf("fault: event %d degrade factor %g outside (0, 1]", i, e.Factor)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	if len(lost) >= nodes && nodes > 0 {
		return fmt.Errorf("fault: plan kills all %d nodes; at least one survivor is required", nodes)
	}
	return nil
}

// Sorted returns the events ordered by (Cycle, original index) — the
// deterministic application order the runtime consumes.
func (p *Plan) Sorted() []Event {
	ev := append([]Event(nil), p.Events...)
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].Cycle < ev[j].Cycle })
	return ev
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Fingerprint renders the plan's full identity as a stable string (the
// scaleout checkpoint config digest folds it in, so a blob cannot be
// restored under a different fault schedule).
func (p *Plan) Fingerprint() string {
	if p.Empty() {
		return "none"
	}
	s := fmt.Sprintf("detect=%d", p.DetectCycles)
	for _, e := range p.Events {
		s += ";" + e.String()
	}
	return s
}
