// Package gpumodel is the analytic GPU baseline of §5.3/§6.6: an NVIDIA
// A100-class device modeled as a massively parallel latency-hiding
// processor whose iteration time is bounded by effective random-access HBM
// bandwidth plus per-iteration kernel launch/synchronization overhead, with
// a hard device-memory capacity limit.
//
// The paper itself models the GPU "using parameters similar to those of the
// A100" over a trace subset; this package does the same arithmetic at
// repository scale. The capacity constraint is what drives the paper's
// §6.6/Table 1 analysis: batches whose working set exceeds device memory
// cannot run, forcing smaller batches and degraded N50.
package gpumodel

import (
	"fmt"

	"nmppak/internal/sim"
	"nmppak/internal/trace"
)

// Config describes the modeled device.
type Config struct {
	// PeakBWGBs is the HBM peak bandwidth (A100 40 GB: 1555 GB/s).
	PeakBWGBs float64
	// RandomAccessEff is the fraction of peak achieved on the irregular,
	// 64 B-granular MacroNode access pattern ("fine-grained, irregular
	// memory access patterns", §6.1). Uncoalesced sector accesses on HBM
	// typically land at 10-25% of peak.
	RandomAccessEff float64
	// LaunchOverheadUs is the kernel launch + device synchronization cost
	// charged per compaction iteration (the lockstep structure forces one
	// kernel round per iteration).
	LaunchOverheadUs float64
	// MemoryGB is the device memory capacity (A100 variants: 40/80).
	MemoryGB float64
}

// A100_40GB returns the paper's GPU baseline device. RandomAccessEff is
// calibrated so the model lands at the paper's 2.8x over the CPU baseline:
// the implied effective throughput (a few GB/s) is what dependent 64 B
// gathers plus atomically synchronized scattered updates achieve on HBM —
// the paper's own explanation for why the GPU "still significantly
// underperforms relative to NMP-PaK" on this access pattern.
func A100_40GB() Config {
	return Config{
		PeakBWGBs:        1555,
		RandomAccessEff:  0.0024,
		LaunchOverheadUs: 15,
		MemoryGB:         40,
	}
}

// Result of a GPU-model run.
type Result struct {
	Cycles      sim.Cycle
	Seconds     float64
	BytesMoved  int64
	PeakBytes   int64 // largest per-iteration working set
	Feasible    bool  // working set fits device memory
	Iterations  int
	LaunchShare float64 // fraction of time in launch overhead
}

// Simulate computes the GPU baseline time for a compaction trace. The GPU
// runs the refined (pipelined-flow) algorithm: data1 for every node, data2
// for invalidated nodes, destination read+write for every update.
func Simulate(tr *trace.Trace, cfg Config) (*Result, error) {
	if cfg.PeakBWGBs <= 0 || cfg.RandomAccessEff <= 0 {
		return nil, fmt.Errorf("gpumodel: bandwidth parameters must be positive")
	}
	effBW := cfg.PeakBWGBs * 1e9 * cfg.RandomAccessEff // bytes/s
	var total float64
	var bytes, peak int64
	for i := range tr.Iterations {
		iter := &tr.Iterations[i]
		var b, ws int64
		for j := range iter.Nodes {
			n := &iter.Nodes[j]
			b += int64(n.D1)
			ws += int64(n.D1 + n.D2)
			if n.Invalidated {
				b += int64(n.D2)
			}
		}
		for j := range iter.Updates {
			u := &iter.Updates[j]
			b += int64(u.ReadBytes + u.WriteBytes)
		}
		for j := range iter.Transfers {
			b += int64(iter.Transfers[j].TNBytes) // device-global TN exchange
		}
		bytes += b
		if ws > peak {
			peak = ws
		}
		total += float64(b)/effBW + cfg.LaunchOverheadUs*1e-6
	}
	res := &Result{
		Seconds:    total,
		Cycles:     sim.Cycle(total * sim.CyclesPerSecond),
		BytesMoved: bytes,
		PeakBytes:  peak,
		Feasible:   float64(peak) <= cfg.MemoryGB*1e9,
		Iterations: len(tr.Iterations),
	}
	if total > 0 {
		res.LaunchShare = float64(len(tr.Iterations)) * cfg.LaunchOverheadUs * 1e-6 / total
	}
	return res, nil
}

// MaxBatchFraction returns the largest batch fraction (of a dataset whose
// full-assembly working set is fullFootprintBytes) that fits the device,
// assuming footprint scales linearly with batch size — the §6.6 analysis
// that caps GPUs at <4% batches for the human genome.
func MaxBatchFraction(cfg Config, fullFootprintBytes float64) float64 {
	if fullFootprintBytes <= 0 {
		return 1
	}
	f := cfg.MemoryGB * 1e9 / fullFootprintBytes
	if f > 1 {
		return 1
	}
	return f
}
