package gpumodel

import (
	"testing"

	"nmppak/internal/compact"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
	"nmppak/internal/trace"
)

func getTrace(t testing.TB) *trace.Trace {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: 10000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmer.Count(reads, kmer.Config{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder(32)
	if _, err := compact.Run(pg, compact.Options{Observer: b}); err != nil {
		t.Fatal(err)
	}
	return b.Trace()
}

func TestSimulateBasics(t *testing.T) {
	tr := getTrace(t)
	res, err := Simulate(tr, A100_40GB())
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.BytesMoved == 0 {
		t.Fatalf("degenerate %+v", res)
	}
	if !res.Feasible {
		t.Fatal("tiny trace must fit 40 GB")
	}
	if res.Iterations != len(tr.Iterations) {
		t.Fatal("iteration mismatch")
	}
	if res.LaunchShare <= 0 || res.LaunchShare >= 1 {
		t.Fatalf("launch share %v", res.LaunchShare)
	}
}

func TestHigherBandwidthFaster(t *testing.T) {
	tr := getTrace(t)
	slow := A100_40GB()
	slow.PeakBWGBs = 200
	fast := A100_40GB()
	a, _ := Simulate(tr, slow)
	b, _ := Simulate(tr, fast)
	if b.Seconds >= a.Seconds {
		t.Fatal("more bandwidth must be faster")
	}
}

func TestInfeasibleWhenTiny(t *testing.T) {
	tr := getTrace(t)
	cfg := A100_40GB()
	cfg.MemoryGB = 1e-6
	res, err := Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("must be infeasible with ~0 memory")
	}
}

func TestMaxBatchFraction(t *testing.T) {
	cfg := A100_40GB() // 40 GB
	// Paper: full human assembly needs ~379 GB -> max batch just above 10%.
	f := MaxBatchFraction(cfg, 379e9)
	if f < 0.09 || f > 0.12 {
		t.Fatalf("max batch fraction %.3f, expected ~0.105", f)
	}
	if MaxBatchFraction(cfg, 1e9) != 1 {
		t.Fatal("small dataset must allow full batch")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(&trace.Trace{}, Config{}); err == nil {
		t.Fatal("expected validation error")
	}
}
