package cpumodel

import (
	"testing"

	"nmppak/internal/compact"
	"nmppak/internal/genome"
	"nmppak/internal/kmer"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
	"nmppak/internal/trace"
)

var sharedTrace *trace.Trace

func getTrace(t testing.TB) *trace.Trace {
	t.Helper()
	if sharedTrace != nil {
		return sharedTrace
	}
	g, err := genome.Generate(genome.Config{Length: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmer.Count(reads, kmer.Config{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pakgraph.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder(32)
	if _, err := compact.Run(pg, compact.Options{Observer: b, Workers: 4, Threshold: pg.Len() / 100}); err != nil {
		t.Fatal(err)
	}
	sharedTrace = b.Trace()
	return sharedTrace
}

func TestSimulateCompletes(t *testing.T) {
	res, err := Simulate(getTrace(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.BytesRead == 0 || res.BytesWrite == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

func TestDRAMStallDominates(t *testing.T) {
	// Fig. 6's headline: the baseline is memory-latency-bound. DRAM wait
	// must be the largest bucket, with sync-futex second.
	res, err := Simulate(getTrace(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b.MemDRAM <= b.Base || b.MemDRAM <= b.SyncFutex || b.MemDRAM <= b.MemL3 {
		t.Fatalf("DRAM not dominant: %+v", b)
	}
	_, _, _, dramF, futex, _ := b.Fractions()
	if dramF < 0.35 {
		t.Fatalf("dram fraction %.2f too low (paper: 54%%)", dramF)
	}
	if futex <= 0 {
		t.Fatal("no futex stall recorded despite barriers")
	}
}

func TestPipelinedFasterThanSequential(t *testing.T) {
	// CPU-PaK vs CPU baseline (Fig. 12: 2.6x).
	seq, err := Simulate(getTrace(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Flow = FlowPipelined
	pip, err := Simulate(getTrace(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(seq.Cycles) / float64(pip.Cycles)
	if speedup < 1.5 || speedup > 5 {
		t.Fatalf("CPU-PaK speedup %.2fx outside plausible range (paper: 2.6x)", speedup)
	}
	if pip.BytesRead >= seq.BytesRead || pip.BytesWrite >= seq.BytesWrite {
		t.Fatal("pipelined flow must move fewer bytes")
	}
}

func TestMoreThreadsFaster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 8
	slow, err := Simulate(getTrace(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Threads = 64
	fast, err := Simulate(getTrace(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= slow.Cycles {
		t.Fatalf("64 threads (%d) not faster than 8 (%d)", fast.Cycles, slow.Cycles)
	}
}

func TestLowBandwidthUtilization(t *testing.T) {
	// §3.3: the CPU baseline leaves bandwidth on the table (paper: 2.5%).
	res, err := Simulate(getTrace(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization > 0.25 {
		t.Fatalf("baseline utilization %.2f unrealistically high", res.Utilization)
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Simulate(getTrace(t), DefaultConfig())
	b, _ := Simulate(getTrace(t), DefaultConfig())
	if a.Cycles != b.Cycles || a.Breakdown != b.Breakdown {
		t.Fatal("nondeterministic CPU model")
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	res, err := Simulate(getTrace(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, branch, l3, dramF, futex, other := res.Breakdown.Fractions()
	sum := base + branch + l3 + dramF + futex + other
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
}
