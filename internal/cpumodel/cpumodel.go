// Package cpumodel is a trace-driven multicore timing model for the
// software baselines — the repository's substitute for the paper's
// perf/Sniper profiling (§3.3, Fig. 6) and the CPU side of Fig. 12.
//
// Threads replay the compaction trace against the shared DDR4 channels.
// Each MacroNode visit performs the software artifacts the paper's §4.5
// analysis identifies: a dependent pointer-chase (hash-map probe plus one
// dereference per extension vector — baseline PaKman stores MacroNodes as
// nested std::vectors), a streaming read of the node payload, and compute
// whose cost covers the copy-by-value overhead of the original code.
// Iterations end with a barrier; the imbalance between threads' finish
// times is the sync-futex stall the paper measures at 39.4%.
//
// Two flows mirror internal/compact's engines: FlowSequential (the paper's
// CPU baseline — three full sweeps per iteration with TransferNodes
// spilled to memory and all nodes rewritten) and FlowPipelined (the
// refined node-granular flow, the "CPU-PaK" configuration).
package cpumodel

import (
	"nmppak/internal/dram"
	"nmppak/internal/sim"
	"nmppak/internal/trace"
)

// Flow selects the process flow, mirroring compact.Flow.
type Flow int

const (
	FlowPipelined Flow = iota
	FlowSequential
)

// Config parameterizes the CPU model.
type Config struct {
	Threads  int // paper baseline: 64
	Channels int
	DRAM     dram.Config
	Flow     Flow

	// ExtraLatency is the controller + on-chip interconnect round trip
	// added to every DRAM access seen from a core.
	ExtraLatency sim.Cycle
	// Pointer-chase model: dependent single-line accesses per node visit.
	ChaseBase   int // hash probe + struct header
	ChasePerExt float64
	// L3: chase accesses hit with L3HitRate at L3Latency.
	L3HitRate float64
	L3Latency sim.Cycle
	// Compute model (cycles; covers the software constant factors).
	ComputeBase    sim.Cycle
	ComputePerByte float64
	// BranchFrac adds branch-misprediction time as a fraction of compute.
	BranchFrac float64
	// BarrierCycles is the fixed cost of each stage barrier.
	BarrierCycles sim.Cycle
}

// DefaultConfig returns the calibrated 64-thread dual-socket model
// (2x Xeon 8380 equivalent, Table 2).
func DefaultConfig() Config {
	return Config{
		Threads:        64,
		Channels:       8,
		DRAM:           dram.DDR4_3200(),
		Flow:           FlowSequential,
		ExtraLatency:   60,
		ChaseBase:      2,
		ChasePerExt:    1,
		L3HitRate:      0.8, // hash-table index and hot vector headers cache well
		L3Latency:      40,
		ComputeBase:    40,
		ComputePerByte: 0.3,
		BranchFrac:     0.04,
		BarrierCycles:  500,
	}
}

// Breakdown attributes run time to the Fig. 6 stall categories.
type Breakdown struct {
	Base, Branch, MemL3, MemDRAM, SyncFutex, Other sim.Cycle
}

// Total sums all buckets.
func (b Breakdown) Total() sim.Cycle {
	return b.Base + b.Branch + b.MemL3 + b.MemDRAM + b.SyncFutex + b.Other
}

// Fractions returns each bucket as a fraction of the total.
func (b Breakdown) Fractions() (base, branch, l3, dramF, futex, other float64) {
	t := float64(b.Total())
	if t == 0 {
		return
	}
	return float64(b.Base) / t, float64(b.Branch) / t, float64(b.MemL3) / t,
		float64(b.MemDRAM) / t, float64(b.SyncFutex) / t, float64(b.Other) / t
}

// Result of a CPU-model run.
type Result struct {
	Cycles      sim.Cycle
	Seconds     float64
	Breakdown   Breakdown
	Mem         []dram.Stats
	BytesRead   int64
	BytesWrite  int64
	Utilization float64
	Iterations  int
}

type workItem struct {
	kind kindT
	node int
}

type kindT int

const (
	kScan     kindT = iota // read data1 (+data2 in later passes)
	kScanFull              // read data1+data2
	kExtract               // re-read node, write TransferNodes
	kUpdate                // read target, compute, write back
	kMove                  // rewrite node (reallocation)
)

// Simulate replays the trace on the CPU model.
func Simulate(tr *trace.Trace, cfg Config) (*Result, error) {
	channels := make([]*dram.Channel, cfg.Channels)
	for i := range channels {
		channels[i] = dram.NewChannel(cfg.DRAM)
	}
	m := &machine{cfg: cfg, chs: channels, tr: tr, rngState: 0x9e3779b97f4a7c15}
	var now sim.Cycle
	for it := range tr.Iterations {
		now = m.runIteration(&tr.Iterations[it], now)
	}
	res := &Result{
		Cycles:     now,
		Seconds:    sim.Seconds(now),
		Breakdown:  m.bd,
		Iterations: len(tr.Iterations),
	}
	for _, ch := range channels {
		res.Mem = append(res.Mem, ch.Stats)
		res.BytesRead += ch.Stats.BytesRead
		res.BytesWrite += ch.Stats.BytesWritten
	}
	peak := cfg.DRAM.PeakBytesPerCycle() * float64(now) * float64(cfg.Channels)
	if peak > 0 {
		res.Utilization = float64(res.BytesRead+res.BytesWrite) / peak
	}
	return res, nil
}

type machine struct {
	cfg Config
	chs []*dram.Channel
	tr  *trace.Trace
	bd  Breakdown
	// eng is reused across passes (Reset keeps heap capacity), so steady-
	// state scheduling does not allocate.
	eng sim.Engine
	// Per-iteration TransferNode byte totals by source / destination.
	tnOut map[int32]int
	tnIn  map[int32]int
	// Deterministic L3-hit pseudo-randomness.
	rngState uint64
}

// runIteration executes one compaction iteration's passes and returns the
// new global time.
func (m *machine) runIteration(iter *trace.Iteration, start sim.Cycle) sim.Cycle {
	m.tnOut = make(map[int32]int)
	m.tnIn = make(map[int32]int)
	for _, tn := range iter.Transfers {
		m.tnOut[tn.SrcIdx] += int(tn.TNBytes)
		m.tnIn[tn.DstIdx] += int(tn.TNBytes)
	}
	switch m.cfg.Flow {
	case FlowSequential:
		// Pass 1: P1 sweep over all nodes (data1 only).
		t := m.pass(iter, start, itemsScan(iter, kScan))
		// Pass 2: P2 sweep re-reading invalidated nodes and spilling
		// TransferNodes to memory.
		t = m.pass(iter, t, itemsExtract(iter))
		// Pass 3: P3 sweep: re-read everything, apply updates, and move
		// (rewrite) all surviving nodes.
		items := itemsScan(iter, kScanFull)
		items = append(items, itemsUpdates(iter)...)
		items = append(items, itemsMove(iter)...)
		return m.pass(iter, t, items)
	default: // FlowPipelined
		items := itemsScan(iter, kScan)
		items = append(items, itemsExtractFused(iter)...)
		items = append(items, itemsUpdates(iter)...)
		return m.pass(iter, start, items)
	}
}

func itemsScan(iter *trace.Iteration, kind kindT) []workItem {
	items := make([]workItem, len(iter.Nodes))
	for i := range iter.Nodes {
		items[i] = workItem{kind: kind, node: i}
	}
	return items
}

func itemsExtract(iter *trace.Iteration) []workItem {
	var items []workItem
	for i := range iter.Nodes {
		if iter.Nodes[i].Invalidated {
			items = append(items, workItem{kind: kExtract, node: i})
		}
	}
	return items
}

// itemsExtractFused marks extraction in the fused flow: data1 is reused
// from the scan, only data2 is read and TransferNodes stay in cache.
func itemsExtractFused(iter *trace.Iteration) []workItem {
	return itemsExtract(iter) // same items; cost differs by flow in runItem
}

func itemsUpdates(iter *trace.Iteration) []workItem {
	items := make([]workItem, len(iter.Updates))
	for i := range iter.Updates {
		items[i] = workItem{kind: kUpdate, node: i} // index into Updates
	}
	return items
}

func itemsMove(iter *trace.Iteration) []workItem {
	items := make([]workItem, len(iter.Nodes))
	for i := range iter.Nodes {
		items[i] = workItem{kind: kMove, node: i}
	}
	return items
}

// pass statically partitions items over threads (OpenMP static schedule)
// and runs them interleaved through the event engine so the threads
// contend for the shared channels realistically; the barrier at the end
// turns per-thread finish-time differences into sync-futex stall.
func (m *machine) pass(iter *trace.Iteration, start sim.Cycle, items []workItem) sim.Cycle {
	if len(items) == 0 {
		return start + m.cfg.BarrierCycles
	}
	threads := m.cfg.Threads
	ends := make([]sim.Cycle, threads)
	eng := &m.eng
	eng.Reset()
	eng.Reserve(threads)
	for th := 0; th < threads; th++ {
		lo, hi := len(items)*th/threads, len(items)*(th+1)/threads
		if lo >= hi {
			ends[th] = start
			continue
		}
		th := th
		pos := lo
		var step func()
		step = func() {
			if pos >= hi {
				ends[th] = eng.Now()
				return
			}
			it := items[pos]
			pos++
			done := m.runItem(iter, th, eng.Now(), it)
			eng.At(done, step)
		}
		eng.At(start, step)
	}
	eng.Run()
	var maxEnd sim.Cycle
	for _, e := range ends {
		if e > maxEnd {
			maxEnd = e
		}
	}
	for _, e := range ends {
		m.bd.SyncFutex += maxEnd - e
	}
	m.bd.Other += m.cfg.BarrierCycles * sim.Cycle(threads)
	return maxEnd + m.cfg.BarrierCycles
}

// runItem executes one work item on thread th, returning its completion
// time and accounting stall buckets.
func (m *machine) runItem(iter *trace.Iteration, th int, start sim.Cycle, it workItem) sim.Cycle {
	cfg := &m.cfg
	t := start
	var node *trace.NodeOp
	var readBytes, writeBytes int
	var exts int
	switch it.kind {
	case kScan:
		node = &iter.Nodes[it.node]
		readBytes = int(node.D1)
		exts = int(node.Exts)
	case kScanFull:
		node = &iter.Nodes[it.node]
		readBytes = int(node.D1 + node.D2)
		exts = int(node.Exts)
	case kExtract:
		node = &iter.Nodes[it.node]
		exts = int(node.Exts)
		if cfg.Flow == FlowSequential {
			readBytes = int(node.D1 + node.D2)
			writeBytes = m.tnOut[int32(it.node)] // spill TransferNodes
		} else {
			readBytes = int(node.D2) // data1 reused from the fused scan
		}
	case kUpdate:
		up := &iter.Updates[it.node]
		node = &iter.Nodes[up.DstIdx]
		exts = int(node.Exts)
		readBytes = int(up.ReadBytes)
		writeBytes = int(up.WriteBytes)
		if cfg.Flow == FlowSequential {
			readBytes += m.tnIn[up.DstIdx] // read spilled TNs back
		}
	case kMove:
		node = &iter.Nodes[it.node]
		writeBytes = int(node.D1 + node.D2)
	}

	ch := m.chs[iter.DIMMOf(node.Key, cfg.Channels)]

	// Dependent pointer chase. Pure rewrites (moves) skip it, and in the
	// fused pipelined flow extraction reuses the node the thread just
	// scanned, so only scans and destination updates pay the lookup.
	skipChase := it.kind == kMove || (cfg.Flow == FlowPipelined && it.kind == kExtract)
	if !skipChase {
		chase := cfg.ChaseBase + int(cfg.ChasePerExt*float64(exts))
		for c := 0; c < chase; c++ {
			if m.nextRand() < cfg.L3HitRate {
				t += cfg.L3Latency
				m.bd.MemL3 += cfg.L3Latency
			} else {
				issue := t
				done := ch.AccessRow(issue, int(node.Key)&1, int(node.Key>>1)&15, int(node.Key>>5)&0x3fff, 1, false)
				done += cfg.ExtraLatency
				m.bd.MemDRAM += done - issue
				t = done
			}
		}
	}

	// Streaming payload read.
	if readBytes > 0 {
		issue := t
		done := ch.AccessRow(issue, int(node.Key)&1, int(node.Key>>1)&15, int(node.Key>>5)&0x3fff, dram.BlocksFor(readBytes), false)
		done += cfg.ExtraLatency
		m.bd.MemDRAM += done - issue
		t = done
	}

	// Compute (+ branch misprediction share).
	comp := cfg.ComputeBase + sim.Cycle(cfg.ComputePerByte*float64(readBytes+writeBytes))
	branch := sim.Cycle(float64(comp) * cfg.BranchFrac)
	m.bd.Base += comp
	m.bd.Branch += branch
	t += comp + branch

	// Write-back.
	if writeBytes > 0 {
		issue := t
		done := ch.AccessRow(issue, int(node.Key)&1, int(node.Key>>1)&15, int(node.Key>>5)&0x3fff, dram.BlocksFor(writeBytes), true)
		done += cfg.ExtraLatency
		m.bd.MemDRAM += done - issue
		t = done
	}
	return t
}

// nextRand is a small deterministic xorshift in [0,1).
func (m *machine) nextRand() float64 {
	m.rngState ^= m.rngState << 13
	m.rngState ^= m.rngState >> 7
	m.rngState ^= m.rngState << 17
	if m.rngState == 0 {
		m.rngState = 0x9e3779b97f4a7c15
	}
	return float64(m.rngState%1_000_000) / 1_000_000
}
