package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.AddRow("a", 1)
	tab.AddRow("longer-name", 123.456)
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Fatalf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header: %q", lines[1])
	}
	if !strings.Contains(s, "123") {
		t.Fatalf("missing float cell: %s", s)
	}
}

func TestBarScaling(t *testing.T) {
	s := Bar("chart", []string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if strings.Count(lines[2], "#") != 10 {
		t.Fatalf("max bar must fill width: %q", lines[2])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Fatalf("half bar: %q", lines[1])
	}
}

func TestBarZeroValues(t *testing.T) {
	s := Bar("", []string{"x"}, []float64{0}, 10)
	if strings.Contains(s, "#") {
		t.Fatalf("zero bar rendered marks: %q", s)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.125); got != "12.5%" {
		t.Fatalf("Percent = %q", got)
	}
}
