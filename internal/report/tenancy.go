package report

import (
	"fmt"
	"strings"

	"nmppak/internal/sim"
	"nmppak/internal/tenancy"
)

// Tenancy renders a fleet schedule: the fleet summary (makespan,
// throughput, utilization, preemption traffic) followed by one row per
// tenant with its latency decomposition (service + checkpoint/restore
// overhead + queueing wait).
func Tenancy(s *tenancy.Schedule) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf(
		"fleet: %d nodes, policy %s, %d jobs, makespan %d cycles (%.3g ms), %.3g jobs/s\n",
		s.Nodes, s.Policy, s.Jobs, s.Makespan, sim.Seconds(s.Makespan)*1e3, s.Throughput()))
	sb.WriteString(fmt.Sprintf(
		"utilization %s (%d busy + %d stall node-cycles), %d preemptions moving %d checkpoint bytes\n\n",
		Percent(s.Utilization), s.BusyNodeCycles, s.StallNodeCycles, s.Preemptions, s.CheckpointBytes))
	t := &Table{
		Title: "per-tenant outcome",
		Headers: []string{"tenant", "prio", "demand", "kind", "arrive", "start",
			"finish", "latency", "service", "overhead", "wait", "preempt", "slices"},
	}
	for i := range s.Tenants {
		ts := &s.Tenants[i]
		kind := "shared"
		if ts.Dedicated {
			kind = "dedicated"
		}
		t.AddRow(ts.Name, ts.Priority, ts.Demand, kind,
			fmt.Sprintf("%d", ts.Arrival), fmt.Sprintf("%d", ts.Started),
			fmt.Sprintf("%d", ts.Finish), fmt.Sprintf("%d", ts.Latency),
			fmt.Sprintf("%d", ts.ServiceCycles), fmt.Sprintf("%d", ts.OverheadCycles),
			fmt.Sprintf("%d", ts.WaitCycles), ts.Preemptions, ts.Slices)
	}
	sb.WriteString(t.String())
	return sb.String()
}
