// Package report renders experiment results as aligned text tables and
// simple ASCII bar charts, the output format of cmd/experiments and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"nmppak/internal/telemetry"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (formatted with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders a labeled horizontal ASCII bar chart scaled to maxWidth
// columns.
func Bar(title string, labels []string, values []float64, maxWidth int) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	lw, max := 0, 0.0
	for i, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
		if values[i] > max {
			max = values[i]
		}
	}
	if max == 0 {
		max = 1
	}
	for i, l := range labels {
		n := int(values[i] / max * float64(maxWidth))
		sb.WriteString(fmt.Sprintf("%s  %s %.3g\n", pad(l, lw), strings.Repeat("#", n), values[i]))
	}
	return sb.String()
}

// Percent formats a fraction as a percentage.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Ratio formats a speedup-style ratio (base over value, e.g. "1.34x");
// a zero denominator renders as "-".
func Ratio(base, value float64) string {
	if value == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", base/value)
}

// Utilization renders a telemetry aggregate as tables: the run-level
// comm/compute summary, the per-node busy/idle/stall breakdown, and the
// per-link occupancy with peak backlog (hot links sort themselves out by
// the util column).
func Utilization(u *telemetry.Utilization) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("utilization: %d cycles total, comm %s (%d cycles), runtime compute %d cycles\n\n",
		u.Total, Percent(u.CommFraction), u.CommCycles, u.ComputeCycles))

	if len(u.Nodes) > 0 {
		nt := &Table{Title: "per-node breakdown", Headers: []string{"node", "iters", "busy", "idle", "stall", "busy%", "dram_busy"}}
		for _, n := range u.Nodes {
			span := n.Busy + n.Idle + n.Stall
			frac := 0.0
			if span > 0 {
				frac = float64(n.Busy) / float64(span)
			}
			nt.AddRow(n.Node, n.Iters, n.Busy, n.Idle, n.Stall, Percent(frac), n.DRAMBusy)
		}
		sb.WriteString(nt.String())
		sb.WriteString("\n")
	}
	if len(u.Links) > 0 {
		lt := &Table{Title: "per-link occupancy", Headers: []string{"link", "msgs", "bytes", "busy", "util", "peak_backlog"}}
		for _, l := range u.Links {
			lt.AddRow(l.Name, l.Messages, l.Bytes, l.Busy, Percent(l.Utilization), l.PeakBacklog)
		}
		sb.WriteString(lt.String())
		sb.WriteString("\n")
	}
	if len(u.DRAM) > 0 {
		dt := &Table{Title: "dram channel buses", Headers: []string{"channel", "busy", "bytes"}}
		for _, d := range u.DRAM {
			dt.AddRow(d.Track, d.Busy, d.Bytes)
		}
		sb.WriteString(dt.String())
		sb.WriteString("\n")
	}
	if len(u.Counters) > 0 {
		ct := &Table{Title: "counters", Headers: []string{"name", "value"}}
		for _, c := range u.Counters {
			ct.AddRow(c.Name, c.Value)
		}
		sb.WriteString(ct.String())
	}
	return sb.String()
}

// CriticalPath renders a critical-path attribution: one row per
// iteration on the path, naming the node whose compute lay on it and the
// wait that preceded it.
func CriticalPath(entries []telemetry.CPEntry) string {
	if len(entries) == 0 {
		return "critical path: no iteration spans recorded\n"
	}
	t := &Table{Title: "critical path (bounding resource per iteration)",
		Headers: []string{"iter", "node", "compute", "wait", "bound", "src"}}
	var compute, wait int64
	for _, e := range entries {
		src := "-"
		if e.Src >= 0 {
			src = fmt.Sprintf("node%d", e.Src)
		}
		t.AddRow(e.Iter, e.Node, e.Compute, e.Wait, e.Bound.String(), src)
		compute += e.Compute
		wait += e.Wait
	}
	s := t.String()
	return s + fmt.Sprintf("path: %d compute + %d wait cycles over %d iterations\n",
		compute, wait, len(entries))
}

// Scaling renders a scaling study as a table: one row per node count with
// total cycles, speedup and parallel efficiency relative to the first row,
// and the communication fraction. For a strong-scaling study pass the same
// workload at every node count; for weak scaling pass the proportionally
// grown workloads, where the speedup column (T1/TN) is the weak-scaling
// efficiency and the per-node efficiency column is not meaningful.
func Scaling(title string, nodes []int, cycles []float64, commFrac []float64) string {
	t := &Table{
		Title:   title,
		Headers: []string{"nodes", "cycles", "speedup", "efficiency", "comm"},
	}
	for i, n := range nodes {
		speedup := 0.0
		if cycles[i] > 0 {
			speedup = cycles[0] / cycles[i]
		}
		eff := speedup * float64(nodes[0]) / float64(n)
		t.AddRow(n, fmt.Sprintf("%.4g", cycles[i]), fmt.Sprintf("%.2fx", speedup),
			Percent(eff), Percent(commFrac[i]))
	}
	return t.String()
}
