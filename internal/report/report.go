// Package report renders experiment results as aligned text tables and
// simple ASCII bar charts, the output format of cmd/experiments and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (formatted with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders a labeled horizontal ASCII bar chart scaled to maxWidth
// columns.
func Bar(title string, labels []string, values []float64, maxWidth int) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	lw, max := 0, 0.0
	for i, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
		if values[i] > max {
			max = values[i]
		}
	}
	if max == 0 {
		max = 1
	}
	for i, l := range labels {
		n := int(values[i] / max * float64(maxWidth))
		sb.WriteString(fmt.Sprintf("%s  %s %.3g\n", pad(l, lw), strings.Repeat("#", n), values[i]))
	}
	return sb.String()
}

// Percent formats a fraction as a percentage.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Ratio formats a speedup-style ratio (base over value, e.g. "1.34x");
// a zero denominator renders as "-".
func Ratio(base, value float64) string {
	if value == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", base/value)
}

// Scaling renders a scaling study as a table: one row per node count with
// total cycles, speedup and parallel efficiency relative to the first row,
// and the communication fraction. For a strong-scaling study pass the same
// workload at every node count; for weak scaling pass the proportionally
// grown workloads, where the speedup column (T1/TN) is the weak-scaling
// efficiency and the per-node efficiency column is not meaningful.
func Scaling(title string, nodes []int, cycles []float64, commFrac []float64) string {
	t := &Table{
		Title:   title,
		Headers: []string{"nodes", "cycles", "speedup", "efficiency", "comm"},
	}
	for i, n := range nodes {
		speedup := 0.0
		if cycles[i] > 0 {
			speedup = cycles[0] / cycles[i]
		}
		eff := speedup * float64(nodes[0]) / float64(n)
		t.AddRow(n, fmt.Sprintf("%.4g", cycles[i]), fmt.Sprintf("%.2fx", speedup),
			Percent(eff), Percent(commFrac[i]))
	}
	return t.String()
}
