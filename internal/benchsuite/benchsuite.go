// Package benchsuite hosts the benchmark bodies behind both `go test
// -bench` (thin wrappers in the repo root and internal/sim) and the
// cmd/bench driver, which replays them through testing.Benchmark and
// writes the machine-readable BENCH_*.json regression baseline. Keeping
// the bodies in one importable package guarantees the JSON numbers and
// the -bench numbers come from identical code.
package benchsuite

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"nmppak/internal/cpumodel"
	"nmppak/internal/experiments"
	"nmppak/internal/fault"
	"nmppak/internal/gpumodel"
	"nmppak/internal/kmer"
	"nmppak/internal/nmp"
	"nmppak/internal/scaleout"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/tenancy"
	"nmppak/internal/topo"
	"nmppak/internal/trace"
)

// Case is one named benchmark.
type Case struct {
	Name string
	F    func(b *testing.B)
}

var (
	once sync.Once
	ctx  *experiments.Context
	tr   *trace.Trace
)

// setup builds the shared quick-workload context and trace once; the
// preparation cost is excluded from every benchmark body via ResetTimer.
func setup() (*experiments.Context, *trace.Trace) {
	once.Do(func() {
		c, err := experiments.NewContext(experiments.QuickWorkload())
		if err != nil {
			panic(err)
		}
		t, err := c.Trace()
		if err != nil {
			panic(err)
		}
		ctx, tr = c, t
	})
	return ctx, tr
}

// Run executes the named case on b; unknown names fail the benchmark.
func Run(b *testing.B, name string) {
	for _, c := range Suite() {
		if c.Name == name {
			c.F(b)
			return
		}
	}
	b.Fatalf("benchsuite: unknown case %q", name)
}

// Suite returns every benchmark in stable order: one per paper artifact
// (matching the Benchmark* wrappers in bench_test.go) plus the hot-path
// microbenchmarks the perf work is judged against.
func Suite() []Case {
	return []Case{
		{"Fig5Breakdown", benchFig5Breakdown},
		{"Fig6StallModel", benchFig6StallModel},
		{"Fig7SizeDistribution", benchFig7SizeDistribution},
		{"Fig8OversizeProportion", benchFig8OversizeProportion},
		{"Table1BatchSweep", benchTable1BatchSweep},
		{"Fig12NMP", benchFig12NMP},
		{"Fig12GPU", benchFig12GPU},
		{"Fig13Utilization", benchFig13Utilization},
		{"Fig14Traffic", benchFig14Traffic},
		{"Fig15PESweep", benchFig15PESweep},
		{"Table3AreaPower", benchTable3AreaPower},
		{"CommSplit", benchCommSplit},
		{"Footprint", benchFootprint},
		{"AblationStaticMapping", benchAblationStaticMapping},
		{"AblationNoHybrid", benchAblationNoHybrid},
		{"EventKernel", EventKernel},
		{"KmerCount", benchKmerCount},
		{"RadixSort1M", benchRadixSort1M},
		{"ScaleOut8xBSP", benchScaleOut8xBSP},
		{"ScaleOut8xOverlap", benchScaleOut8xOverlap},
		{"ScaleOut8xTorus", benchScaleOut8xTorus},
		{"ScaleOut8xDragonfly", benchScaleOut8xDragonfly},
		{"ScaleOut64xMeshParallel", benchScaleOut64xMeshParallel},
		{"ScaleOut64xTorusParallel", benchScaleOut64xTorusParallel},
		{"ScaleOut64xDragonflyParallel", benchScaleOut64xDragonflyParallel},
		{"ScaleOut64xBSPParallel", benchScaleOut64xBSPParallel},
		{"ScaleOut64xRebalanceParallel", benchScaleOut64xRebalanceParallel},
		{"ScaleOut64xElasticParallel", benchScaleOut64xElasticParallel},
		{"TenancyFleet", benchTenancyFleet},
	}
}

func benchFig5Breakdown(b *testing.B) {
	c, _ := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(c); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig6StallModel(b *testing.B) {
	_, t := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpumodel.Simulate(t, cpumodel.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig7SizeDistribution(b *testing.B) {
	c, _ := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(c); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig8OversizeProportion(b *testing.B) {
	c, _ := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(c); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable1BatchSweep(b *testing.B) {
	c, _ := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Assemble(10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig12NMP(b *testing.B) {
	_, t := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmp.Simulate(t, nmp.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig12GPU(b *testing.B) {
	_, t := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpumodel.Simulate(t, gpumodel.A100_40GB()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig13Utilization(b *testing.B) {
	_, t := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nmp.Simulate(t, nmp.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Utilization <= 0 {
			b.Fatal("no utilization")
		}
	}
}

func benchFig14Traffic(b *testing.B) {
	c, t := setup()
	runs := &experiments.SystemRuns{}
	var err error
	runs.CPUBaseline, err = cpumodel.Simulate(t, cpumodel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(c, runs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig15PESweep(b *testing.B) {
	_, t := setup()
	cfg := nmp.DefaultConfig()
	cfg.PEsPerChannel = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmp.Simulate(t, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable3AreaPower(b *testing.B) {
	c, _ := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(c); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCommSplit(b *testing.B) {
	_, t := setup()
	cfg := nmp.DefaultConfig()
	cfg.PEsPerChannel = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nmp.Simulate(t, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TNInterDIMM == 0 {
			b.Fatal("no routing")
		}
	}
}

func benchFootprint(b *testing.B) {
	c, _ := setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Footprint(c); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAblationStaticMapping(b *testing.B) {
	_, t := setup()
	cfg := nmp.DefaultConfig()
	cfg.StaticMapping = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmp.Simulate(t, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAblationNoHybrid(b *testing.B) {
	_, t := setup()
	cfg := nmp.DefaultConfig()
	cfg.HybridThresholdBytes = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmp.Simulate(t, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// EventKernel is the perf baseline for scheduler work: a self-refilling
// event population (as the hardware models produce) with a scattered
// timestamp pattern, exercising heap push/pop and the FIFO tie-break. It
// is exported so internal/sim's benchmark wrapper shares the body.
func EventKernel(b *testing.B) {
	const window = 512
	b.ReportAllocs()
	for b.Loop() {
		var e sim.Engine
		n := 0
		var spawn func()
		spawn = func() {
			n++
			if n >= 100_000 {
				return
			}
			// Two children at pseudo-random offsets keep the heap near
			// the window size without shrinking to a trivial population.
			if n%2 == 0 {
				e.After(sim.Cycle(n*7919%window)+1, spawn)
			}
			e.After(sim.Cycle(n*104729%window)+1, spawn)
		}
		e.At(0, spawn)
		e.Run()
	}
}

func benchKmerCount(b *testing.B) {
	c, _ := setup()
	cfg := kmer.Config{K: c.W.K, Workers: c.W.Workers, MinCount: c.W.MinCount}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmer.Count(c.Reads, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScaleOut8x measures the full 8-node distributed pipeline —
// sharded counting, shard-graph construction, and the compaction replay
// on the event-driven runtime — under the given replay discipline and
// interconnect topology, reporting the communication fraction and total
// simulated cycles of the modeled machine alongside the wall-clock cost
// of simulating it.
func benchScaleOut8x(b *testing.B, overlap bool, tc topo.Config) {
	c, t := setup()
	cfg := scaleout.DefaultConfig(8)
	cfg.K = c.W.K
	cfg.MinCount = c.W.MinCount
	cfg.Workers = c.W.Workers
	cfg.Overlap = overlap
	cfg.Topo = tc
	b.ReportAllocs()
	b.ResetTimer()
	var last *scaleout.Result
	for i := 0; i < b.N; i++ {
		res, err := scaleout.Simulate(c.Reads, t, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.CommFraction, "comm_frac")
	b.ReportMetric(float64(last.TotalCycles), "model_cycles")

	// Cross-check the reported comm_frac against the telemetry layer's
	// independent accounting: re-run once instrumented (off the clock)
	// and require the span-derived communication fraction to agree with
	// the runtime's own to float precision. A drift here means the
	// instrumentation no longer covers every communication cycle and the
	// published metric can't be trusted.
	b.StopTimer()
	icfg := cfg
	icfg.Telemetry = telemetry.New()
	ires, err := scaleout.Simulate(c.Reads, t, icfg)
	if err != nil {
		b.Fatal(err)
	}
	u := telemetry.Analyze(icfg.Telemetry)
	if d := math.Abs(u.CommFraction - ires.CommFraction); d > 1e-9 {
		b.Fatalf("telemetry comm fraction %.12f does not reconcile with runtime %.12f (|d|=%g)",
			u.CommFraction, ires.CommFraction, d)
	}
	if ires.TotalCycles != last.TotalCycles {
		b.Fatalf("instrumented run changed the model: %d cycles vs. %d uninstrumented",
			ires.TotalCycles, last.TotalCycles)
	}
	b.StartTimer()
}

// benchTenancyFleet times one multi-tenant fleet simulation: six jobs
// (two of them wide) time-sharing an 8-node fleet under fair-share
// checkpoint preemption. The per-demand iteration-0 seed blobs are built
// once off the clock — exactly how the experiments load sweep memoizes
// identical-shape jobs — so the timed body is the fleet scheduler plus
// the sliced runs themselves.
func benchTenancyFleet(b *testing.B) {
	c, t := setup()
	mkcfg := func(n int) scaleout.Config {
		cfg := scaleout.DefaultConfig(n)
		cfg.K = c.W.K
		cfg.MinCount = c.W.MinCount
		cfg.Workers = c.W.Workers
		return cfg
	}
	seeds := map[int][]byte{}
	for _, n := range []int{2, 6} {
		blob, err := scaleout.Checkpoint(c.Reads, t, mkcfg(n), 0)
		if err != nil {
			b.Fatal(err)
		}
		seeds[n] = blob
	}
	demands := []int{2, 6, 2, 2, 6, 2}
	jobs := make([]tenancy.Job, len(demands))
	for i, d := range demands {
		jobs[i] = tenancy.Job{
			Name:    fmt.Sprintf("j%d-n%d", i, d),
			Arrival: sim.Cycle(i * 50_000),
			Trace:   t,
			Config:  mkcfg(d),
			Seed:    seeds[d],
		}
	}
	f := tenancy.Fleet{Nodes: 8, Policy: tenancy.FairShare{}, Quantum: 1 << 18}
	b.ReportAllocs()
	b.ResetTimer()
	var last *tenancy.Schedule
	for i := 0; i < b.N; i++ {
		sched, err := f.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		last = sched
	}
	b.ReportMetric(float64(last.Preemptions), "preemptions")
	b.ReportMetric(last.Utilization, "fleet_util")
	b.ReportMetric(float64(last.Makespan), "makespan_cycles")
}

func benchScaleOut8xBSP(b *testing.B) { benchScaleOut8x(b, false, topo.Default()) }

func benchScaleOut8xOverlap(b *testing.B) { benchScaleOut8x(b, true, topo.Default()) }

func benchScaleOut8xTorus(b *testing.B) { benchScaleOut8x(b, false, topo.Torus(0, 0)) }

func benchScaleOut8xDragonfly(b *testing.B) { benchScaleOut8x(b, false, topo.DragonflyGroups(0)) }

// measureParallel64 is the shared body of the 64-node parallel
// benchmarks. A Workers=1 run — the sequential scheduler, regardless of
// GOMAXPROCS — is timed off the benchmark clock as the anchor; the timed
// loop runs with Workers=0 (one worker per GOMAXPROCS thread) and the
// ratio is published as speedup_vs_serial, alongside an off-clock
// fixed-width sweep (speedup_w2, speedup_w4) showing how the window
// protocol scales with the pool. Cycle-exactness is part of the bench
// contract: every parallel result must be identical to the anchor or the
// benchmark fails. The ratios are only meaningful when GOMAXPROCS is
// backed by real cores; on a single-core host the gate
// (par.Threads(0)==1) routes both runs through the serial scheduler and
// they hover near 1.
func measureParallel64(b *testing.B, cfg scaleout.Config) {
	c, t := setup()
	scfg := cfg
	scfg.Workers = 1
	start := time.Now()
	want, err := scaleout.Simulate(c.Reads, t, scfg)
	if err != nil {
		b.Fatal(err)
	}
	serial := time.Since(start)

	wcfg := cfg
	wcfg.Workers = 0
	b.ReportAllocs()
	b.ResetTimer()
	var last *scaleout.Result
	for i := 0; i < b.N; i++ {
		res, err := scaleout.Simulate(c.Reads, t, wcfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if !reflect.DeepEqual(last, want) {
		b.Fatal("parallel result diverges from the serial anchor")
	}
	per := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(serial.Nanoseconds())/per, "speedup_vs_serial")
	b.ReportMetric(float64(last.TotalCycles), "model_cycles")

	// Fixed-width sweep, one off-clock shot per pool size. Reported after
	// the timed section — ResetTimer clears earlier extra metrics.
	for _, w := range []int{2, 4} {
		wcfg.Workers = w
		ws := time.Now()
		res, err := scaleout.Simulate(c.Reads, t, wcfg)
		if err != nil {
			b.Fatal(err)
		}
		if !reflect.DeepEqual(res, want) {
			b.Fatalf("Workers=%d result diverges from the serial anchor", w)
		}
		b.ReportMetric(float64(serial.Nanoseconds())/float64(time.Since(ws).Nanoseconds()),
			fmt.Sprintf("speedup_w%d", w))
	}
}

// scale64Config is the shared 64-node scale-out configuration of the
// parallel benchmark family.
func scale64Config(tc topo.Config, overlap bool) scaleout.Config {
	c, _ := setup()
	cfg := scaleout.DefaultConfig(64)
	cfg.K = c.W.K
	cfg.MinCount = c.W.MinCount
	cfg.Overlap = overlap
	cfg.Topo = tc
	return cfg
}

func benchScaleOut64xParallel(b *testing.B, tc topo.Config) {
	measureParallel64(b, scale64Config(tc, true))
}

func benchScaleOut64xMeshParallel(b *testing.B) { benchScaleOut64xParallel(b, topo.Default()) }

func benchScaleOut64xTorusParallel(b *testing.B) { benchScaleOut64xParallel(b, topo.Torus(0, 0)) }

func benchScaleOut64xDragonflyParallel(b *testing.B) {
	benchScaleOut64xParallel(b, topo.DragonflyGroups(0))
}

// benchScaleOut64xBSPParallel: the windowed chunked superstep driver on
// the 64-node BSP machine.
func benchScaleOut64xBSPParallel(b *testing.B) {
	measureParallel64(b, scale64Config(topo.Default(), false))
}

// benchScaleOut64xRebalanceParallel: the rebalancing runtime (migration
// barriers bounding every window) under the parallel scheduler.
func benchScaleOut64xRebalanceParallel(b *testing.B) {
	cfg := scale64Config(topo.Default(), false)
	cfg.Partitioner = scaleout.NewRebalancePartitioner(12, 1)
	measureParallel64(b, cfg)
}

// benchScaleOut64xElasticParallel: the elastic overlapped runtime —
// periodic captures plus a mid-phase node loss and its recovery — under
// the parallel scheduler. The fault cycle comes from an off-clock
// fault-free run of the same machine.
func benchScaleOut64xElasticParallel(b *testing.B) {
	c, t := setup()
	cfg := scale64Config(topo.Default(), true)
	cfg.CheckpointEvery = 2
	golden, err := scaleout.Simulate(c.Reads, t, cfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Faults = fault.NodeLossAt(32, sim.Cycle(float64(golden.Compact.Total())/2), 500)
	measureParallel64(b, cfg)
}

func benchRadixSort1M(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	src := make([]uint64, 1<<20)
	for i := range src {
		src[i] = r.Uint64()
	}
	v := make([]uint64, len(src))
	b.SetBytes(8 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(v, src)
		kmer.ParallelSortUint64(v, 0)
	}
}
