package assemble

import (
	"strings"
	"testing"

	"nmppak/internal/compact"
	"nmppak/internal/genome"
	"nmppak/internal/metrics"
	"nmppak/internal/readsim"
	"nmppak/internal/trace"
)

func workload(t testing.TB, length int, cov, errRate float64, seed int64) (*genome.Genome, []readsim.Read) {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: length, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: cov, ErrorRate: errRate, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g, reads
}

func TestEndToEndErrorFree(t *testing.T) {
	gen, reads := workload(t, 10000, 25, 0, 21)
	out, err := Run(reads, Config{K: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref := gen.Replicons[0].String()
	for _, c := range out.Contigs {
		if !strings.Contains(ref, c.String()) {
			t.Fatalf("contig (len %d) not a genome substring", c.Len())
		}
	}
	sum := metrics.Summarize(out.Contigs, gen.Replicons)
	if sum.GenomeFrac < 0.999 {
		t.Fatalf("genome fraction %v", sum.GenomeFrac)
	}
	if sum.N50 < len(ref)/3 {
		t.Fatalf("N50 %d too low for error-free assembly of %d bp", sum.N50, len(ref))
	}
	if out.Times.Total() <= 0 {
		t.Fatal("no stage times recorded")
	}
}

func TestEndToEndWithErrorsAndPruning(t *testing.T) {
	gen, reads := workload(t, 20000, 30, 0.01, 22)
	out, err := Run(reads, Config{K: 32, Workers: 4, MinCount: 3, MinContigLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	sum := metrics.Summarize(out.Contigs, gen.Replicons)
	if sum.GenomeFrac < 0.95 {
		t.Fatalf("genome fraction %v too low", sum.GenomeFrac)
	}
	if sum.N50 < 500 {
		t.Fatalf("N50 %d too low", sum.N50)
	}
	if out.KmerPruned == 0 {
		t.Fatal("expected error k-mers to be pruned")
	}
}

// TestBatchingDegradesN50 reproduces the Table 1 mechanism: smaller batches
// mean lower per-batch coverage, so the pruning threshold removes genuine
// k-mers and fragments contigs.
func TestBatchingDegradesN50(t *testing.T) {
	gen, reads := workload(t, 30000, 30, 0.01, 23)
	n50 := func(batches int) int {
		out, err := Run(reads, Config{K: 32, Workers: 4, MinCount: 3, Batches: batches})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Summarize(out.Contigs, gen.Replicons).N50
	}
	one := n50(1)
	many := n50(30)
	if many >= one {
		t.Fatalf("batching did not degrade N50: 1 batch %d vs 30 batches %d", one, many)
	}
	if many > one/2 {
		t.Logf("note: mild degradation only (%d -> %d)", one, many)
	}
}

func TestBatchedStillCoversGenome(t *testing.T) {
	gen, reads := workload(t, 10000, 25, 0, 24)
	out, err := Run(reads, Config{K: 32, Workers: 4, Batches: 5})
	if err != nil {
		t.Fatal(err)
	}
	sum := metrics.Summarize(out.Contigs, gen.Replicons)
	// Error-free: batching must not lose genome content.
	if sum.GenomeFrac < 0.999 {
		t.Fatalf("genome fraction %v after batching", sum.GenomeFrac)
	}
	if out.FinalGraph == nil || out.FinalGraph.Len() == 0 {
		t.Fatal("missing final graph")
	}
	if err := out.FinalGraph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactThresholdRespected(t *testing.T) {
	_, reads := workload(t, 8000, 20, 0, 25)
	out, err := Run(reads, Config{K: 32, Workers: 4, CompactThreshold: 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Compaction stops above the threshold, so the final graph stays big.
	if out.FinalGraph.Len() < 2000 {
		t.Fatalf("graph compacted past threshold: %d nodes", out.FinalGraph.Len())
	}
}

func TestObserverReceivesTrace(t *testing.T) {
	_, reads := workload(t, 5000, 15, 0, 26)
	b := trace.NewBuilder(32)
	_, err := Run(reads, Config{K: 32, Workers: 2, Observer: b})
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Trace()
	if len(tr.Iterations) == 0 {
		t.Fatal("no iterations traced")
	}
	if tr.TotalNodeOps() == 0 || tr.TotalTransfers() == 0 {
		t.Fatal("empty trace")
	}
	// Iteration 0 scans roughly one node per genome position.
	if n := len(tr.Iterations[0].Nodes); n < 3000 {
		t.Fatalf("iteration 0 has %d nodes", n)
	}
}

func TestNaiveAndOptimizedAgree(t *testing.T) {
	_, reads := workload(t, 3000, 10, 0, 27)
	a, err := Run(reads, Config{K: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(reads, Config{K: 32, Workers: 1, NaiveKmerCounting: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.TotalBases != b.Summary.TotalBases || a.Summary.N50 != b.Summary.N50 {
		t.Fatalf("naive and optimized paths disagree: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestFlowsAgreeEndToEnd(t *testing.T) {
	_, reads := workload(t, 4000, 12, 0, 28)
	a, err := Run(reads, Config{K: 32, Flow: compact.FlowPipelined})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(reads, Config{K: 32, Flow: compact.FlowSequential})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.N50 != b.Summary.N50 || a.Summary.Contigs != b.Summary.Contigs {
		t.Fatalf("flows disagree: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{K: 1}); err == nil {
		t.Fatal("expected K validation error")
	}
	out, err := Run(nil, Config{K: 32})
	if err != nil || len(out.Contigs) != 0 {
		t.Fatalf("empty input: %v %v", out, err)
	}
}

func TestSplitBatches(t *testing.T) {
	reads := make([]readsim.Read, 10)
	b := splitBatches(reads, 3)
	if len(b) != 3 {
		t.Fatalf("batches = %d", len(b))
	}
	total := 0
	for _, bb := range b {
		total += len(bb)
	}
	if total != 10 {
		t.Fatalf("split lost reads: %d", total)
	}
	if len(splitBatches(reads, 1)) != 1 {
		t.Fatal("single batch")
	}
}
