// Package assemble orchestrates the end-to-end PaKman pipeline (Fig. 2):
// (A) access and distribute reads into batches, (B) k-mer counting, (C)
// MacroNode construction and wiring, (D) Iterative Compaction, and (E)
// graph walk and contig generation — with the paper's customized batch
// processing (§4.4): each batch is counted, built and compacted
// independently; the small compacted PaK-graphs are merged; and contig
// generation runs once over the merged graph.
package assemble

import (
	"fmt"
	"time"

	"nmppak/internal/compact"
	"nmppak/internal/dna"
	"nmppak/internal/kmer"
	"nmppak/internal/metrics"
	"nmppak/internal/pakgraph"
	"nmppak/internal/readsim"
	"nmppak/internal/walk"
)

// Config parameterizes an assembly run.
type Config struct {
	K        int    // k-mer length (paper: 32)
	Workers  int    // <=0: GOMAXPROCS
	MinCount uint32 // per-batch k-mer pruning threshold (error filtering)
	// Batches splits the read set into this many sequentially processed
	// batches (1 = whole-dataset processing). The paper's default batch
	// size is 10% of the input (Batches=10).
	Batches int
	// CompactThreshold stops per-batch and final compaction when the live
	// node count falls below it (paper: 100,000; scale to workload).
	CompactThreshold int
	// MaxIters bounds each compaction run (safety net; <=0 unbounded).
	MaxIters int
	Flow     compact.Flow
	// MinContigLen filters the reported contigs.
	MinContigLen int
	// Observer, when set, receives compaction events (used for trace
	// capture; attach only with Batches==1 so iteration indices are
	// unambiguous).
	Observer compact.Observer
	// NaiveKmerCounting selects the unoptimized single-vector serial
	// counting path (the "W/O SW-opt" configuration of Fig. 12).
	NaiveKmerCounting bool
}

// StageTimes records wall-clock per pipeline stage (Fig. 5's breakdown).
type StageTimes struct {
	Distribute time.Duration // A: access & distribute reads
	KmerCount  time.Duration // B
	Construct  time.Duration // C: MacroNode construction & wiring
	Compact    time.Duration // D: Iterative Compaction (incl. merge)
	Walk       time.Duration // E: graph walk & contig generation
}

// Total sums all stages.
func (s StageTimes) Total() time.Duration {
	return s.Distribute + s.KmerCount + s.Construct + s.Compact + s.Walk
}

// Output is the result of an assembly run.
type Output struct {
	Contigs []dna.Seq
	Summary metrics.Summary
	Times   StageTimes
	// CompactStats concatenates iteration stats from every compaction run
	// (per batch, then the final merged pass).
	CompactStats []compact.IterStats
	// FinalGraph is the merged, fully compacted graph (post-walk contents
	// are unchanged by walking).
	FinalGraph *pakgraph.Graph
	// KmerDistinct/KmerPruned aggregate counting statistics over batches.
	KmerDistinct int64
	KmerPruned   int64
	// PeakGraphNodes is the largest per-batch graph size observed, the
	// proxy for the in-flight memory footprint under batching.
	PeakGraphNodes int
}

// Run executes the pipeline.
func Run(reads []readsim.Read, cfg Config) (*Output, error) {
	if cfg.K < 2 || cfg.K > dna.MaxK {
		return nil, fmt.Errorf("assemble: K=%d out of range [2,%d]", cfg.K, dna.MaxK)
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 1
	}
	if cfg.Batches > len(reads) && len(reads) > 0 {
		cfg.Batches = len(reads)
	}
	out := &Output{}

	// Stage A: distribute reads into batches.
	t0 := time.Now()
	batches := splitBatches(reads, cfg.Batches)
	out.Times.Distribute = time.Since(t0)

	var merged *pakgraph.Graph
	for bi, batch := range batches {
		// Stage B: k-mer counting.
		t0 = time.Now()
		var res *kmer.Result
		var err error
		kcfg := kmer.Config{K: cfg.K, Workers: cfg.Workers, MinCount: cfg.MinCount}
		if cfg.NaiveKmerCounting {
			res, err = kmer.CountNaive(batch, kcfg)
		} else {
			res, err = kmer.Count(batch, kcfg)
		}
		if err != nil {
			return nil, fmt.Errorf("assemble: batch %d: %w", bi, err)
		}
		out.Times.KmerCount += time.Since(t0)
		out.KmerDistinct += int64(len(res.Kmers))
		out.KmerPruned += res.PrunedKinds

		// Stage C: MacroNode construction and wiring.
		t0 = time.Now()
		g, err := pakgraph.Build(res)
		if err != nil {
			return nil, fmt.Errorf("assemble: batch %d: %w", bi, err)
		}
		out.Times.Construct += time.Since(t0)
		if g.Len() > out.PeakGraphNodes {
			out.PeakGraphNodes = g.Len()
		}

		// Stage D: per-batch Iterative Compaction.
		t0 = time.Now()
		cres, err := compact.Run(g, compact.Options{
			Workers:   cfg.Workers,
			Threshold: cfg.CompactThreshold,
			MaxIters:  cfg.MaxIters,
			Flow:      cfg.Flow,
			Observer:  cfg.Observer,
		})
		if err != nil {
			return nil, fmt.Errorf("assemble: batch %d: %w", bi, err)
		}
		out.CompactStats = append(out.CompactStats, cres.Stats...)
		out.Contigs = append(out.Contigs, cres.Completed...)

		// Merge the compacted batch graph (§4.4: "The compacted PaK-graphs
		// from all batches are merged for contig generation").
		if merged == nil {
			merged = g
		} else if err := merged.Merge(g); err != nil {
			return nil, err
		}
		out.Times.Compact += time.Since(t0)
	}

	// Final compaction over the merged graph, then Stage E: walk.
	t0 = time.Now()
	if cfg.Batches > 1 {
		cres, err := compact.Run(merged, compact.Options{
			Workers:   cfg.Workers,
			Threshold: cfg.CompactThreshold,
			MaxIters:  cfg.MaxIters,
			Flow:      cfg.Flow,
		})
		if err != nil {
			return nil, err
		}
		out.CompactStats = append(out.CompactStats, cres.Stats...)
		out.Contigs = append(out.Contigs, cres.Completed...)
	}
	out.Times.Compact += time.Since(t0)

	t0 = time.Now()
	out.Contigs = append(out.Contigs, walk.Contigs(merged, walk.Options{})...)
	if cfg.MinContigLen > 0 {
		kept := out.Contigs[:0]
		for _, c := range out.Contigs {
			if c.Len() >= cfg.MinContigLen {
				kept = append(kept, c)
			}
		}
		out.Contigs = kept
	}
	out.Times.Walk = time.Since(t0)

	out.FinalGraph = merged
	out.Summary = metrics.Summarize(out.Contigs, nil)
	return out, nil
}

// splitBatches partitions reads into n contiguous batches.
func splitBatches(reads []readsim.Read, n int) [][]readsim.Read {
	if n <= 1 || len(reads) == 0 {
		return [][]readsim.Read{reads}
	}
	out := make([][]readsim.Read, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := len(reads)*i/n, len(reads)*(i+1)/n
		if lo < hi {
			out = append(out, reads[lo:hi])
		}
	}
	return out
}
