package tenancy

import (
	"bytes"
	"reflect"
	"testing"

	"nmppak/internal/assemble"
	"nmppak/internal/compact"
	"nmppak/internal/fault"
	"nmppak/internal/genome"
	"nmppak/internal/readsim"
	"nmppak/internal/scaleout"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/trace"
)

// testWorkload builds one small shared assembly workload: reads, the
// compaction trace, and per-node-count iteration-0 seed blobs plus the
// uninterrupted reference results the fleet outcomes must match exactly.
type testWorkload struct {
	reads []readsim.Read
	tr    *trace.Trace
	seeds map[int][]byte
	want  map[int]*scaleout.Result
}

func newTestWorkload(t *testing.T) *testWorkload {
	t.Helper()
	g, err := genome.Generate(genome.Config{Length: 20_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g, readsim.Config{ReadLen: 100, Coverage: 15, ErrorRate: 0.005, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder(32)
	if _, err := assemble.Run(reads, assemble.Config{
		K: 32, MinCount: 3, Flow: compact.FlowPipelined, Observer: b,
	}); err != nil {
		t.Fatal(err)
	}
	w := &testWorkload{reads: reads, tr: b.Trace(),
		seeds: map[int][]byte{}, want: map[int]*scaleout.Result{}}
	if len(w.tr.Iterations) < 3 {
		t.Fatalf("workload too small: %d iterations", len(w.tr.Iterations))
	}
	return w
}

func (w *testWorkload) cfg(nodes int) scaleout.Config { return scaleout.DefaultConfig(nodes) }

// seed memoizes the iteration-0 blob per node count (the same
// memoization the experiments sweep uses).
func (w *testWorkload) seed(t *testing.T, nodes int) []byte {
	t.Helper()
	if s, ok := w.seeds[nodes]; ok {
		return s
	}
	s, err := scaleout.Checkpoint(w.reads, w.tr, w.cfg(nodes), 0)
	if err != nil {
		t.Fatal(err)
	}
	w.seeds[nodes] = s
	return s
}

// uninterrupted memoizes the reference Result per node count.
func (w *testWorkload) uninterrupted(t *testing.T, nodes int) *scaleout.Result {
	t.Helper()
	if r, ok := w.want[nodes]; ok {
		return r
	}
	r, err := scaleout.Restore(w.tr, w.cfg(nodes), w.seed(t, nodes))
	if err != nil {
		t.Fatal(err)
	}
	w.want[nodes] = r
	return r
}

func (w *testWorkload) job(t *testing.T, name string, prio int, arrival int64, nodes int) Job {
	return Job{Name: name, Priority: prio, Arrival: sim.Cycle(arrival),
		Trace: w.tr, Config: w.cfg(nodes), Seed: w.seed(t, nodes)}
}

// The acceptance criterion: for every policy, every preempted-and-resumed
// tenant's Result is reflect.DeepEqual to its uninterrupted run, and the
// scenarios actually exercise preemption where the policy allows it.
func TestPreemptionRoundTripExact(t *testing.T) {
	w := newTestWorkload(t)
	for _, tc := range []struct {
		name           string
		fleet          Fleet
		jobs           []Job
		wantPreemption bool
	}{
		{
			name:  "fifo",
			fleet: Fleet{Nodes: 4, Policy: FIFO{}},
			jobs: []Job{
				w.job(t, "a", 0, 0, 2),
				w.job(t, "b", 0, 0, 2),
				w.job(t, "c", 0, 0, 4),
			},
		},
		{
			name:  "priority",
			fleet: Fleet{Nodes: 4, Policy: Priority{}},
			jobs: []Job{
				w.job(t, "low", 0, 0, 4),
				w.job(t, "high", 5, 1_000, 2),
			},
			wantPreemption: true,
		},
		{
			name:  "fair",
			fleet: Fleet{Nodes: 2, Policy: FairShare{}, Quantum: 1},
			jobs: []Job{
				w.job(t, "a", 0, 0, 2),
				w.job(t, "b", 0, 0, 2),
				w.job(t, "c", 0, 500, 2),
			},
			wantPreemption: true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sched, err := tc.fleet.Run(tc.jobs)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantPreemption && sched.Preemptions == 0 {
				t.Fatalf("%s scenario ran without preemptions", tc.name)
			}
			if !tc.wantPreemption && sched.Preemptions != 0 {
				t.Fatalf("%s scenario preempted %d times", tc.name, sched.Preemptions)
			}
			for _, ts := range sched.Tenants {
				want := w.uninterrupted(t, ts.Demand)
				if !reflect.DeepEqual(ts.Result, want) {
					t.Fatalf("tenant %s result differs from uninterrupted run after %d preemptions",
						ts.Name, ts.Preemptions)
				}
				if ts.ServiceCycles != want.TotalCycles {
					t.Fatalf("tenant %s service %d != uninterrupted total %d",
						ts.Name, ts.ServiceCycles, want.TotalCycles)
				}
				if ts.Latency != ts.ServiceCycles+ts.OverheadCycles+ts.WaitCycles {
					t.Fatalf("tenant %s latency does not decompose", ts.Name)
				}
				if ts.Finish < ts.Started || ts.Started < ts.Arrival {
					t.Fatalf("tenant %s timeline out of order: %+v", ts.Name, ts)
				}
			}
			if sched.Utilization <= 0 || sched.Utilization > 1 {
				t.Fatalf("utilization %v outside (0, 1]", sched.Utilization)
			}
		})
	}
}

// Two identical fleet simulations must produce byte-identical tenant
// schedules and Chrome traces.
func TestScheduleDeterminism(t *testing.T) {
	w := newTestWorkload(t)
	run := func() (string, []byte) {
		col := telemetry.New()
		f := Fleet{Nodes: 4, Policy: Priority{}, Telemetry: col}
		jobs := []Job{
			w.job(t, "low", 0, 0, 4),
			w.job(t, "high", 5, 1_000, 2),
			w.job(t, "mid", 2, 2_000, 2),
		}
		sched, err := f.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := col.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return sched.String(), buf.Bytes()
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 {
		t.Fatalf("schedules differ:\n%s\nvs\n%s", s1, s2)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("chrome traces differ between identical runs")
	}
	if len(c1) == 0 || !bytes.Contains(c1, []byte(`"low"`)) || !bytes.Contains(c1, []byte(`"fleet0"`)) {
		t.Fatal("chrome trace missing tenant-labeled fleet spans")
	}
}

// An elastic (fault-plan) job is detected through the ErrElasticConfig
// sentinel, queued on dedicated nodes, never preempted, and still
// finishes bit-identically to its own uninterrupted elastic run.
func TestElasticTenantDedicated(t *testing.T) {
	w := newTestWorkload(t)
	ecfg := scaleout.DefaultConfig(2)
	ecfg.CheckpointEvery = 2
	ecfg.Faults = &fault.Plan{Events: []fault.Event{{
		Kind: fault.NodeLoss, Node: 1, Cycle: 1,
	}}}
	want, err := scaleout.Simulate(w.reads, w.tr, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	f := Fleet{Nodes: 4, Policy: FairShare{}, Quantum: 1}
	jobs := []Job{
		w.job(t, "shared", 0, 0, 2),
		{Name: "faulty", Arrival: 0, Trace: w.tr, Config: ecfg, Reads: w.reads},
	}
	sched, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var faulty *TenantStats
	for i := range sched.Tenants {
		if sched.Tenants[i].Name == "faulty" {
			faulty = &sched.Tenants[i]
		}
	}
	if faulty == nil || !faulty.Dedicated {
		t.Fatalf("fault-plan tenant not classified dedicated: %+v", faulty)
	}
	if faulty.Preemptions != 0 || faulty.Slices != 1 {
		t.Fatalf("dedicated tenant was sliced: %+v", faulty)
	}
	if !reflect.DeepEqual(faulty.Result, want) {
		t.Fatal("dedicated elastic result differs from uninterrupted Simulate")
	}
}

// Admission validation: bad demands, missing inputs, per-job telemetry.
func TestFleetValidation(t *testing.T) {
	w := newTestWorkload(t)
	f := Fleet{Nodes: 2}
	cases := []struct {
		name string
		jobs []Job
	}{
		{"no jobs", nil},
		{"oversized demand", []Job{w.job(t, "big", 0, 0, 4)}},
		{"no trace", []Job{{Name: "x", Config: scaleout.DefaultConfig(1)}}},
		{"no inputs", []Job{{Name: "x", Trace: w.tr, Config: scaleout.DefaultConfig(1)}}},
	}
	for _, tc := range cases {
		if _, err := f.Run(tc.jobs); err == nil {
			t.Fatalf("%s: Run succeeded", tc.name)
		}
	}
	bad := Fleet{Nodes: 0}
	if _, err := bad.Run([]Job{w.job(t, "a", 0, 0, 1)}); err == nil {
		t.Fatal("zero-node fleet accepted")
	}
	cfg := scaleout.DefaultConfig(1)
	cfg.Telemetry = telemetry.New()
	if _, err := f.Run([]Job{{Name: "x", Trace: w.tr, Config: cfg, Reads: w.reads}}); err == nil {
		t.Fatal("per-job telemetry accepted")
	}
}
