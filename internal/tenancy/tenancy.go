// Package tenancy is the multi-tenant assembly service: a deterministic,
// event-driven fleet scheduler that time-shares a fixed fleet of
// simulated NMP nodes among many concurrent assembly jobs — the
// "millions of users" layer over the single-job scale-out simulator.
//
// A Fleet admits a stream of Jobs (workload trace + scale-out config +
// node demand + priority + deterministic arrival cycle), places each on a
// subset of fleet nodes, and preempts at iteration boundaries through the
// checkpoint machinery: on quantum expiry or a higher-priority arrival,
// the victim's scaleout.Session is snapshotted to a blob at its next
// boundary (the capture stall and blob bytes are charged on the fleet
// timeline), the nodes hand over, and the blob later resumes
// bit-identically — a preempted-and-resumed tenant's Result is
// reflect.DeepEqual to its uninterrupted run, because the Session layer
// composes partial supersteps exactly.
//
// Scheduling policy is pluggable (Policy): FIFO (non-preemptive, strict
// arrival order), strict priority (preemptive), and fair-share (deficit
// round-robin over measured machine cycles) ship built in. Jobs whose
// configuration cannot be checkpointed — elastic fault-plan runs, which
// scaleout.Checkpoint rejects with ErrElasticConfig, and the overlapped
// discipline, which has no mid-run global clock — are detected at
// admission and run to completion on dedicated nodes instead of being
// time-sliced.
//
// Everything is deterministic: the same Fleet and job list produce a
// byte-identical Schedule rendering and, when a telemetry.Collector is
// attached, a byte-identical tenant-colored Chrome trace.
package tenancy

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nmppak/internal/readsim"
	"nmppak/internal/scaleout"
	"nmppak/internal/sim"
	"nmppak/internal/telemetry"
	"nmppak/internal/trace"
)

// DefaultQuantum is the fair-share possession budget (machine cycles)
// when Fleet.Quantum is unset: roughly one mid-size compaction iteration
// of the paper-default workload, so a quantum spans a few boundaries.
const DefaultQuantum sim.Cycle = 1 << 20

// Job is one tenant's admission request. Config.Nodes is the node
// demand; the job runs on exactly that many fleet nodes.
type Job struct {
	// Name labels the tenant in reports and traces; defaults to "job<i>".
	Name string
	// Priority orders tenants under the strict-priority policy (higher
	// preempts lower); other policies ignore it.
	Priority int
	// Arrival is the fleet-clock cycle the job is admitted at.
	Arrival sim.Cycle
	// Trace is the job's compaction trace (same role as in
	// scaleout.Simulate).
	Trace *trace.Trace
	// Config is the job's scale-out configuration. Config.Nodes is the
	// demand. Elastic configs (CheckpointEvery/Faults) and the overlapped
	// discipline are admitted but non-preemptible: they run whole on
	// dedicated nodes.
	Config scaleout.Config
	// Reads are the job's input reads. Optional when Seed is set.
	Reads []readsim.Read
	// Seed is an optional iteration-0 checkpoint blob for this exact
	// (Trace, Config) — scaleout.Checkpoint(reads, tr, cfg, 0). Supplying
	// it skips re-running the software prelude at admission, which is how
	// a load sweep memoizes many identical-shape jobs.
	Seed []byte
}

// Fleet is a fixed pool of simulated NMP nodes shared by many jobs.
type Fleet struct {
	// Nodes is the fleet size; every job's demand must fit it.
	Nodes int
	// Policy picks and preempts tenants; nil means FIFO.
	Policy Policy
	// Quantum is the fair-share possession budget in machine cycles;
	// <= 0 means DefaultQuantum. FIFO and priority ignore it.
	Quantum sim.Cycle
	// BytesPerCycle prices preemption checkpoint/restore I/O on the fleet
	// timeline; <= 0 means scaleout.DefaultCheckpointBytesPerCycle.
	BytesPerCycle float64
	// Telemetry, when non-nil, records the fleet timeline: one track per
	// fleet node (tenant possession slices, colored per tenant in the
	// Chrome export), one lifecycle track per tenant, and a scheduler
	// track of arrival/finish markers.
	Telemetry *telemetry.Collector
}

// TenantStats is one tenant's measured outcome on the fleet.
type TenantStats struct {
	ID        int
	Name      string
	Priority  int
	Demand    int
	Dedicated bool // ran whole on dedicated nodes (non-preemptible config)

	Arrival sim.Cycle
	Started sim.Cycle // first placement
	Finish  sim.Cycle
	Latency sim.Cycle // Finish - Arrival

	// ServiceCycles is the job's own machine-cycle total (equals its
	// uninterrupted Result.TotalCycles); OverheadCycles the checkpoint and
	// restore stalls charged on top; WaitCycles the queued remainder of
	// the latency.
	ServiceCycles   sim.Cycle
	OverheadCycles  sim.Cycle
	WaitCycles      sim.Cycle
	Preemptions     int
	Slices          int // placements (possessions)
	CheckpointBytes int64

	// Result is the finished run, reflect.DeepEqual to the uninterrupted
	// scaleout.Simulate of the same job.
	Result *scaleout.Result
}

// Schedule is a fleet simulation outcome.
type Schedule struct {
	Policy   string
	Nodes    int
	Quantum  sim.Cycle
	Jobs     int
	Makespan sim.Cycle

	Preemptions     int
	CheckpointBytes int64

	// BusyNodeCycles sums service × demand over tenants; StallNodeCycles
	// the checkpoint/restore stalls × demand. Utilization is
	// BusyNodeCycles / (Nodes × Makespan).
	BusyNodeCycles  sim.Cycle
	StallNodeCycles sim.Cycle
	Utilization     float64

	Tenants []TenantStats // in job order
}

// Throughput returns completed jobs per simulated second.
func (s *Schedule) Throughput() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.Jobs) / sim.Seconds(s.Makespan)
}

// String renders a deterministic summary: the fleet line plus one line
// per tenant. Two identical fleet simulations produce byte-identical
// strings (the determinism test pins this).
func (s *Schedule) String() string {
	out := fmt.Sprintf("tenancy: policy=%s nodes=%d jobs=%d makespan=%d util=%.4f preemptions=%d ckpt_bytes=%d\n",
		s.Policy, s.Nodes, s.Jobs, s.Makespan, s.Utilization, s.Preemptions, s.CheckpointBytes)
	for i := range s.Tenants {
		t := &s.Tenants[i]
		kind := "shared"
		if t.Dedicated {
			kind = "dedicated"
		}
		out += fmt.Sprintf("  %s: prio=%d demand=%d %s arrive=%d start=%d finish=%d latency=%d service=%d overhead=%d wait=%d preempt=%d slices=%d\n",
			t.Name, t.Priority, t.Demand, kind, t.Arrival, t.Started, t.Finish,
			t.Latency, t.ServiceCycles, t.OverheadCycles, t.WaitCycles, t.Preemptions, t.Slices)
	}
	return out
}

// tenant state machine.
type tstate uint8

const (
	tPending tstate = iota
	tRunning
	tDraining // capture stall after a yield, nodes still held
	tDone
)

// Tenant is one admitted job's live scheduling state. Policies read the
// exported fields; everything else belongs to the fleet loop.
type Tenant struct {
	ID        int
	Name      string
	Priority  int
	Arrival   sim.Cycle
	Demand    int
	Dedicated bool

	// ServiceCycles is the machine-cycle progress consumed so far;
	// Deficit the fair-share credit (refilled by Quantum per placement,
	// drained by measured slice cycles); Preemptions the yields so far.
	ServiceCycles sim.Cycle
	Deficit       sim.Cycle
	Preemptions   int

	spec  *Job
	state tstate
	blob  []byte            // checkpoint to resume from (nil once running)
	ses   *scaleout.Session // live while running (preemptible tenants)

	service sim.Cycle        // dedicated only: precomputed total
	result  *scaleout.Result // dedicated: precomputed; preemptible: set at finish

	nodes      []int // held fleet nodes
	lastDelta  sim.Cycle
	sliceIters int
	runStart   sim.Cycle // placement time plus restore stall
	waitFrom   sim.Cycle // arrival, or the release time of the last yield

	started         bool
	startAt         sim.Cycle
	finishAt        sim.Cycle
	overhead        sim.Cycle
	checkpointBytes int64
	slices          int

	track *telemetry.Track // lifecycle track (nil without telemetry)
}

// fleetRun is one Fleet.Run execution.
type fleetRun struct {
	f       Fleet
	pol     Policy
	quantum sim.Cycle
	bpc     float64

	eng     *sim.Engine
	tenants []*Tenant
	pending []*Tenant // sorted by (Arrival, ID)
	running []*Tenant // sorted by ID
	free    []bool
	nfree   int

	err error // first tenant error; aborts result assembly

	sched      *telemetry.Track   // scheduler marker track
	nodeTracks []*telemetry.Track // one per fleet node
}

// price converts blob bytes to a stall, ceiling division like the elastic
// runtime's checkpoint charge.
func (r *fleetRun) price(bytes int) sim.Cycle {
	if bytes <= 0 {
		return 0
	}
	return sim.Cycle(math.Ceil(float64(bytes) / r.bpc))
}

// fail records the first error and lets the event loop drain.
func (r *fleetRun) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Run simulates the fleet over the job list and returns the schedule.
// Jobs may be passed in any order; arrival cycles drive admission. The
// simulation is fully deterministic.
func (f Fleet) Run(jobs []Job) (*Schedule, error) {
	if f.Nodes < 1 {
		return nil, fmt.Errorf("tenancy: fleet needs at least one node, got %d", f.Nodes)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("tenancy: no jobs")
	}
	r := &fleetRun{
		f:       f,
		pol:     f.Policy,
		quantum: f.Quantum,
		bpc:     f.BytesPerCycle,
		eng:     &sim.Engine{},
		free:    make([]bool, f.Nodes),
		nfree:   f.Nodes,
	}
	if r.pol == nil {
		r.pol = FIFO{}
	}
	if r.quantum <= 0 {
		r.quantum = DefaultQuantum
	}
	if r.bpc <= 0 {
		r.bpc = scaleout.DefaultCheckpointBytesPerCycle
	}
	for i := range r.free {
		r.free[i] = true
	}
	for i := range jobs {
		t, err := r.admitSpec(&jobs[i], i)
		if err != nil {
			return nil, err
		}
		r.tenants = append(r.tenants, t)
	}
	if c := f.Telemetry; c != nil {
		// Track creation order is fixed before the event loop: scheduler,
		// fleet nodes, tenants in job order — the Chrome export is
		// byte-identical across runs.
		r.sched = c.NewTrack(telemetry.TrackFleet, 0, "scheduler")
		r.nodeTracks = make([]*telemetry.Track, f.Nodes)
		for i := range r.nodeTracks {
			r.nodeTracks[i] = c.NewTrack(telemetry.TrackFleet, 1+i, fmt.Sprintf("fleet%d", i))
		}
		for _, t := range r.tenants {
			t.track = c.NewTrack(telemetry.TrackFleet, 1+f.Nodes+t.ID, t.Name)
			c.SetLabel(int64(t.ID), t.Name)
		}
	}
	for _, t := range r.tenants {
		tt := t
		r.eng.At(tt.Arrival, func() { r.admit(tt) })
	}
	r.eng.Run()
	if r.err != nil {
		return nil, r.err
	}
	for _, t := range r.tenants {
		if t.state != tDone {
			return nil, fmt.Errorf("tenancy: tenant %s never finished (scheduler stalled)", t.Name)
		}
	}
	return r.schedule(), nil
}

// admitSpec validates one job and classifies it preemptible or dedicated.
// Non-preemptible configurations are detected through the checkpoint
// layer's sentinel: scaleout.Checkpoint wraps ErrElasticConfig for
// elastic (fault-plan) runs, which then execute whole via
// scaleout.Simulate on dedicated nodes; the overlapped discipline (no
// mid-run global clock to slice on) is likewise dedicated, its service
// priced by a full restore or simulate.
func (r *fleetRun) admitSpec(j *Job, id int) (*Tenant, error) {
	t := &Tenant{
		ID:       id,
		Name:     j.Name,
		Priority: j.Priority,
		Arrival:  j.Arrival,
		Demand:   j.Config.Nodes,
		spec:     j,
		waitFrom: j.Arrival,
	}
	if t.Name == "" {
		t.Name = fmt.Sprintf("job%d", id)
	}
	if j.Trace == nil {
		return nil, fmt.Errorf("tenancy: job %s has no trace", t.Name)
	}
	if t.Demand < 1 || t.Demand > r.f.Nodes {
		return nil, fmt.Errorf("tenancy: job %s demands %d nodes of a %d-node fleet", t.Name, t.Demand, r.f.Nodes)
	}
	if t.Arrival < 0 {
		return nil, fmt.Errorf("tenancy: job %s arrives at negative cycle %d", t.Name, t.Arrival)
	}
	cfg := j.Config
	if j.Seed == nil {
		if j.Reads == nil {
			return nil, fmt.Errorf("tenancy: job %s needs Reads or a Seed blob", t.Name)
		}
		blob, err := scaleout.Checkpoint(j.Reads, j.Trace, cfg, 0)
		switch {
		case errors.Is(err, scaleout.ErrElasticConfig):
			// A fault-plan tenant: not externally checkpointable, so it is
			// queued for dedicated nodes and runs uninterrupted.
			res, err := scaleout.Simulate(j.Reads, j.Trace, cfg)
			if err != nil {
				return nil, fmt.Errorf("tenancy: job %s: %w", t.Name, err)
			}
			t.Dedicated, t.service, t.result = true, res.TotalCycles, res
			return t, nil
		case err != nil:
			return nil, fmt.Errorf("tenancy: job %s: %w", t.Name, err)
		}
		t.blob = blob
	} else {
		t.blob = j.Seed
	}
	if cfg.Overlap {
		res, err := scaleout.Restore(j.Trace, cfg, t.blob)
		if err != nil {
			return nil, fmt.Errorf("tenancy: job %s: %w", t.Name, err)
		}
		t.Dedicated, t.service, t.result = true, res.TotalCycles, res
		t.blob = nil
		return t, nil
	}
	if cfg.Telemetry != nil {
		return nil, fmt.Errorf("tenancy: job %s carries per-run telemetry; the fleet owns the timeline", t.Name)
	}
	return t, nil
}

// admit puts an arrived tenant on the pending queue.
func (r *fleetRun) admit(t *Tenant) {
	if r.err != nil {
		return
	}
	t.state = tPending
	r.enqueue(t)
	if r.sched != nil {
		now := r.eng.Now()
		r.sched.Add(telemetry.SpanTenant, now, now, int64(t.ID), 0)
	}
	r.reschedule()
}

// enqueue inserts into pending, keeping (Arrival, ID) order.
func (r *fleetRun) enqueue(t *Tenant) {
	i := sort.Search(len(r.pending), func(i int) bool {
		p := r.pending[i]
		if p.Arrival != t.Arrival {
			return p.Arrival > t.Arrival
		}
		return p.ID > t.ID
	})
	r.pending = append(r.pending, nil)
	copy(r.pending[i+1:], r.pending[i:])
	r.pending[i] = t
}

// reschedule greedily places pending tenants per the policy until nothing
// else fits.
func (r *fleetRun) reschedule() {
	if r.err != nil {
		return
	}
	for len(r.pending) > 0 && r.nfree > 0 {
		i := r.pol.Pick(r.pending, r.nfree)
		if i < 0 || i >= len(r.pending) || r.pending[i].Demand > r.nfree {
			return
		}
		t := r.pending[i]
		r.pending = append(r.pending[:i], r.pending[i+1:]...)
		r.place(t)
		if r.err != nil {
			return
		}
	}
}

// allocate claims the lowest-numbered free nodes.
func (r *fleetRun) allocate(t *Tenant) {
	t.nodes = t.nodes[:0]
	for i := 0; i < len(r.free) && len(t.nodes) < t.Demand; i++ {
		if r.free[i] {
			r.free[i] = false
			t.nodes = append(t.nodes, i)
		}
	}
	r.nfree -= t.Demand
}

// release frees a tenant's nodes and drops it from the running set.
func (r *fleetRun) release(t *Tenant) {
	for _, i := range t.nodes {
		r.free[i] = true
	}
	r.nfree += len(t.nodes)
	t.nodes = t.nodes[:0]
	for i, q := range r.running {
		if q == t {
			r.running = append(r.running[:i], r.running[i+1:]...)
			break
		}
	}
}

// place gives a tenant its nodes at the current cycle: a dedicated tenant
// runs whole; a preemptible one pays the restore stall for its blob,
// resumes a Session from it, and enters the per-iteration boundary chain.
func (r *fleetRun) place(t *Tenant) {
	now := r.eng.Now()
	r.allocate(t)
	i := sort.Search(len(r.running), func(i int) bool { return r.running[i].ID > t.ID })
	r.running = append(r.running, nil)
	copy(r.running[i+1:], r.running[i:])
	r.running[i] = t
	t.state = tRunning
	t.slices++
	if !t.started {
		t.started, t.startAt = true, now
	}
	if t.track != nil && now > t.waitFrom {
		t.track.Add(telemetry.SpanTenantWait, t.waitFrom, now, int64(t.ID), 0)
	}
	if t.Dedicated {
		t.runStart = now
		r.eng.After(t.service, func() { r.finishDedicated(t) })
		return
	}
	stall := r.price(len(t.blob))
	blobBytes := len(t.blob)
	ses, err := scaleout.ResumeSession(t.spec.Trace, t.spec.Config, t.blob)
	if err != nil {
		r.fail(fmt.Errorf("tenancy: resuming %s: %w", t.Name, err))
		return
	}
	t.ses, t.blob = ses, nil
	t.runStart = now + stall
	t.overhead += stall
	t.Deficit += r.quantum
	t.sliceIters = 0
	if stall > 0 {
		for _, n := range t.nodes {
			if r.nodeTracks != nil {
				r.nodeTracks[n].Add(telemetry.SpanTenantRestore, now, now+stall, int64(t.ID), int64(blobBytes))
			}
		}
		if t.track != nil {
			t.track.Add(telemetry.SpanTenantRestore, now, now+stall, int64(t.ID), int64(blobBytes))
		}
	}
	r.nextBoundary(t, now+stall)
}

// nextBoundary advances the tenant's session by one iteration (host-side;
// the fleet clock pays the measured machine cycles) and schedules the
// boundary decision event.
func (r *fleetRun) nextBoundary(t *Tenant, at sim.Cycle) {
	executed := t.ses.Step(1)
	t.sliceIters += executed
	p := t.ses.Progress()
	t.lastDelta = p - t.ServiceCycles
	t.ServiceCycles = p
	r.eng.At(at+t.lastDelta, func() { r.boundary(t) })
}

// boundary is the per-iteration decision point: finish, yield (checkpoint
// and hand the nodes over), or continue into the next iteration.
func (r *fleetRun) boundary(t *Tenant) {
	if r.err != nil {
		return
	}
	now := r.eng.Now()
	t.Deficit -= t.lastDelta
	if t.ses.Remaining() == 0 {
		res, err := t.ses.Finish()
		if err != nil {
			r.fail(fmt.Errorf("tenancy: finishing %s: %w", t.Name, err))
			return
		}
		t.result, t.ses = res, nil
		r.recordSlice(t, now)
		t.state = tDone
		t.finishAt = now
		if r.sched != nil {
			r.sched.Add(telemetry.SpanTenant, now, now, int64(t.ID), 1)
		}
		r.release(t)
		r.reschedule()
		return
	}
	if r.pol.Yield(t, r.pending, r.running, r.nfree) {
		r.preempt(t, now)
		return
	}
	r.nextBoundary(t, now)
}

// preempt checkpoints the tenant at the boundary it is paused on, charges
// the capture stall, and releases the nodes when the blob has drained.
func (r *fleetRun) preempt(t *Tenant, now sim.Cycle) {
	blob, err := t.ses.Checkpoint()
	if err != nil {
		r.fail(fmt.Errorf("tenancy: checkpointing %s: %w", t.Name, err))
		return
	}
	t.blob, t.ses = blob, nil
	t.Preemptions++
	t.checkpointBytes += int64(len(blob))
	stall := r.price(len(blob))
	t.overhead += stall
	t.state = tDraining
	r.recordSlice(t, now)
	if stall > 0 {
		for _, n := range t.nodes {
			if r.nodeTracks != nil {
				r.nodeTracks[n].Add(telemetry.SpanTenantCheckpoint, now, now+stall, int64(t.ID), int64(len(blob)))
			}
		}
		if t.track != nil {
			t.track.Add(telemetry.SpanTenantCheckpoint, now, now+stall, int64(t.ID), int64(len(blob)))
		}
	}
	r.eng.After(stall, func() {
		t.state = tPending
		t.waitFrom = r.eng.Now()
		r.release(t)
		r.enqueue(t)
		r.reschedule()
	})
}

// finishDedicated seals a dedicated tenant's single possession.
func (r *fleetRun) finishDedicated(t *Tenant) {
	if r.err != nil {
		return
	}
	now := r.eng.Now()
	t.ServiceCycles = t.service
	t.sliceIters = len(t.spec.Trace.Iterations)
	r.recordSlice(t, now)
	t.state = tDone
	t.finishAt = now
	if r.sched != nil {
		r.sched.Add(telemetry.SpanTenant, now, now, int64(t.ID), 1)
	}
	r.release(t)
	r.reschedule()
}

// recordSlice emits the possession's run span on every held node track
// and the tenant's lifecycle track.
func (r *fleetRun) recordSlice(t *Tenant, end sim.Cycle) {
	if end <= t.runStart {
		return
	}
	if r.nodeTracks != nil {
		for _, n := range t.nodes {
			r.nodeTracks[n].Add(telemetry.SpanTenant, t.runStart, end, int64(t.ID), int64(t.sliceIters))
		}
	}
	if t.track != nil {
		t.track.Add(telemetry.SpanTenant, t.runStart, end, int64(t.ID), int64(t.sliceIters))
	}
}

// schedule assembles the outcome.
func (r *fleetRun) schedule() *Schedule {
	s := &Schedule{
		Policy:  r.pol.Name(),
		Nodes:   r.f.Nodes,
		Quantum: r.quantum,
		Jobs:    len(r.tenants),
	}
	for _, t := range r.tenants {
		if t.finishAt > s.Makespan {
			s.Makespan = t.finishAt
		}
		ts := TenantStats{
			ID:              t.ID,
			Name:            t.Name,
			Priority:        t.Priority,
			Demand:          t.Demand,
			Dedicated:       t.Dedicated,
			Arrival:         t.Arrival,
			Started:         t.startAt,
			Finish:          t.finishAt,
			Latency:         t.finishAt - t.Arrival,
			ServiceCycles:   t.ServiceCycles,
			OverheadCycles:  t.overhead,
			Preemptions:     t.Preemptions,
			Slices:          t.slices,
			CheckpointBytes: t.checkpointBytes,
			Result:          t.result,
		}
		ts.WaitCycles = ts.Latency - ts.ServiceCycles - ts.OverheadCycles
		s.Tenants = append(s.Tenants, ts)
		s.Preemptions += t.Preemptions
		s.CheckpointBytes += t.checkpointBytes
		s.BusyNodeCycles += t.ServiceCycles * sim.Cycle(t.Demand)
		s.StallNodeCycles += t.overhead * sim.Cycle(t.Demand)
	}
	if s.Makespan > 0 {
		s.Utilization = float64(s.BusyNodeCycles) / (float64(s.Nodes) * float64(s.Makespan))
	}
	return s
}
