// Scheduling policies: who gets free nodes, and who gives theirs up.
// All three built-ins are deterministic — every tie breaks on (arrival,
// ID) — so the fleet timeline is a pure function of the job list.
package tenancy

// Policy decides placement and preemption. The fleet loop calls Pick on
// every scheduling pass (admissions, releases, finishes) and Yield at
// every running preemptible tenant's iteration boundary.
//
// Pick returns an index into pending — ordered by (arrival, ID) — whose
// tenant's Demand fits the free node count, or -1 to leave the nodes
// idle. Yield reports whether the running tenant must checkpoint and
// release its nodes at this boundary; running lists every tenant
// currently holding nodes (sorted by ID), including t itself.
type Policy interface {
	Name() string
	Pick(pending []*Tenant, free int) int
	Yield(t *Tenant, pending, running []*Tenant, free int) bool
}

// FIFO is strict arrival order, non-preemptive: the head of the queue
// places when (and only when) its demand fits — smaller jobs never jump
// a blocked head — and a placed job runs to completion.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Pick implements Policy: the queue head, head-of-line blocking and all.
func (FIFO) Pick(pending []*Tenant, free int) int {
	if len(pending) > 0 && pending[0].Demand <= free {
		return 0
	}
	return -1
}

// Yield implements Policy: never.
func (FIFO) Yield(*Tenant, []*Tenant, []*Tenant, int) bool { return false }

// Priority is strict-priority, preemptive: the highest-priority pending
// job places first (ties by arrival, then ID), and a higher-priority
// arrival preempts enough lower-priority tenants at their next iteration
// boundaries to fit — each victim is checkpointed and re-queued.
type Priority struct{}

// Name implements Policy.
func (Priority) Name() string { return "priority" }

// Pick implements Policy: highest priority that fits.
func (Priority) Pick(pending []*Tenant, free int) int {
	best := -1
	for i, p := range pending {
		if p.Demand > free {
			continue
		}
		if best < 0 || p.Priority > pending[best].Priority {
			best = i
		}
	}
	return best
}

// Yield implements Policy: give way when a strictly higher-priority
// pending job could fit once the lower-priority tenants' nodes free up.
// Every lower-priority tenant whose release contributes yields, so a
// wide high-priority job can displace several narrow victims at once.
func (Priority) Yield(t *Tenant, pending, running []*Tenant, free int) bool {
	// Nodes reclaimable from tenants at or below t's priority (including
	// t itself): what the pending job could get without touching anyone
	// more important.
	for _, p := range pending {
		if p.Priority <= t.Priority {
			continue
		}
		reclaimable := free
		for _, q := range running {
			if q.Priority < p.Priority && !q.Dedicated {
				reclaimable += q.Demand
			}
		}
		if p.Demand <= reclaimable {
			return true
		}
	}
	return false
}

// FairShare is deficit round-robin over measured machine cycles: each
// placement grants the tenant one Quantum of credit, every boundary
// drains the slice's measured cycles, and a tenant whose credit is
// exhausted yields as soon as another job could use its nodes (the
// overrun carries as a negative deficit, so a coarse-grained iteration
// pays it back later — classic DRR). Placement order is least attained
// service first, so short and starved jobs catch up.
type FairShare struct{}

// Name implements Policy.
func (FairShare) Name() string { return "fair" }

// Pick implements Policy: least ServiceCycles that fits (ties by
// arrival, then ID — the pending order).
func (FairShare) Pick(pending []*Tenant, free int) int {
	best := -1
	for i, p := range pending {
		if p.Demand > free {
			continue
		}
		if best < 0 || p.ServiceCycles < pending[best].ServiceCycles {
			best = i
		}
	}
	return best
}

// Yield implements Policy: quantum exhausted and somebody could run.
func (FairShare) Yield(t *Tenant, pending, running []*Tenant, free int) bool {
	if t.Deficit > 0 {
		return false
	}
	for _, p := range pending {
		if p.Demand <= free+t.Demand {
			return true
		}
	}
	return false
}
